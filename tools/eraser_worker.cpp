// eraser_worker: out-of-process campaign executor of the distributed
// fabric (eraser/remote.h).
//
//   eraser_worker [--port N]
//
// Listens on 127.0.0.1:N (N=0 picks an ephemeral port), prints
// "LISTENING <port>" on stdout once bound (launchers parse this line —
// bench/bench_distributed.cpp and the CI smoke job both do), then serves
// connections forever: one thread per connection, all sharing one
// compile-once design cache. The process has no graceful shutdown beyond
// SIGTERM/SIGKILL — clients say goodbye per connection (Shutdown frame or
// clean EOF), and a killed worker is exactly the failure mode the
// scheduler's re-dispatch path is built for.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "eraser/remote.h"
#include "suite/suite.h"
#include "util/wire.h"

int main(int argc, char** argv) {
    uint16_t port = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
            port = static_cast<uint16_t>(std::atoi(argv[++i]));
        } else if (std::strcmp(argv[i], "--help") == 0) {
            std::printf("usage: %s [--port N]\n", argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown argument '%s'\n", argv[i]);
            return 2;
        }
    }

    // Clients may ship suite stimuli ("suite"/"random" kinds); custom kinds
    // would need a custom worker binary linking their builders.
    eraser::suite::register_remote_stimuli();

    eraser::util::UniqueFd listener;
    try {
        listener = eraser::util::listen_loopback(port);
    } catch (const eraser::util::WireError& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
    std::printf("LISTENING %u\n", static_cast<unsigned>(port));
    std::fflush(stdout);

    eraser::core::WorkerDesignCache cache;
    for (;;) {
        eraser::util::UniqueFd fd;
        try {
            fd = eraser::util::accept_connection(listener.get());
        } catch (const eraser::util::WireError& e) {
            std::fprintf(stderr, "accept: %s\n", e.what());
            continue;
        }
        std::thread([fd = std::move(fd), &cache]() mutable {
            eraser::util::WireConn conn(std::move(fd));
            try {
                (void)eraser::core::serve_connection(conn, cache);
            } catch (const std::exception& e) {
                // A vanished client only costs this connection.
                std::fprintf(stderr, "connection: %s\n", e.what());
            }
        }).detach();
    }
}
