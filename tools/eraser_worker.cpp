// eraser_worker: out-of-process campaign executor of the distributed
// fabric (eraser/remote.h).
//
//   eraser_worker [--port N] [chaos flags]
//
// Listens on 127.0.0.1:N (N=0 picks an ephemeral port), prints
// "LISTENING <port>" on stdout once bound (launchers parse this line —
// eraser/supervisor.h and the CI smoke job both do), then serves
// connections forever: one thread per connection, all sharing one
// compile-once design cache.
//
// Graceful shutdown: SIGTERM sets a stop flag checked between accepts and
// between protocol messages (WorkerHooks::stop). In-flight units finish —
// each RunUnit bumps WorkerHooks::busy_units for its duration — then every
// connection closes at a frame boundary (clean EOF, which clients treat as
// a re-dispatchable link death, not an error) and the process exits 0.
// SIGKILL remains the abrupt path the scheduler's re-dispatch and the
// campaign journal are built to absorb.
//
// Chaos flags (test/bench fleets only; see ChaosHooks in eraser/remote.h):
//   --chaos-seed S       enable seeded injection (S != 0)
//   --chaos-kill PCT     close the connection instead of answering
//   --chaos-stall PCT    wedge silently for --chaos-stall-ms before reply
//   --chaos-corrupt PCT  answer with a CRC-corrupted frame
//   --chaos-drop PCT     execute the unit but never send the result
//   --chaos-delay PCT    sleep --chaos-delay-ms while heartbeats run
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>

#include "eraser/remote.h"
#include "suite/suite.h"
#include "util/wire.h"

namespace {
// Signal-handler state: SIGTERM flips g_stop; the accept loop and every
// serving connection observe it through WorkerHooks.
std::atomic<bool> g_stop{false};
std::atomic<uint32_t> g_busy{0};

extern "C" void handle_term(int) {
    g_stop.store(true, std::memory_order_relaxed);
}
}  // namespace

int main(int argc, char** argv) {
    uint16_t port = 0;
    eraser::core::WorkerHooks hooks;
    hooks.stop = &g_stop;
    hooks.busy_units = &g_busy;
    const auto u32_arg = [&](int& i) {
        return static_cast<uint32_t>(std::strtoul(argv[++i], nullptr, 10));
    };
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
            port = static_cast<uint16_t>(std::atoi(argv[++i]));
        } else if (std::strcmp(argv[i], "--chaos-seed") == 0 && i + 1 < argc) {
            hooks.chaos.seed = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--chaos-kill") == 0 && i + 1 < argc) {
            hooks.chaos.kill_pct = u32_arg(i);
        } else if (std::strcmp(argv[i], "--chaos-stall") == 0 &&
                   i + 1 < argc) {
            hooks.chaos.stall_pct = u32_arg(i);
        } else if (std::strcmp(argv[i], "--chaos-stall-ms") == 0 &&
                   i + 1 < argc) {
            hooks.chaos.stall_ms = u32_arg(i);
        } else if (std::strcmp(argv[i], "--chaos-corrupt") == 0 &&
                   i + 1 < argc) {
            hooks.chaos.corrupt_pct = u32_arg(i);
        } else if (std::strcmp(argv[i], "--chaos-drop") == 0 && i + 1 < argc) {
            hooks.chaos.drop_pct = u32_arg(i);
        } else if (std::strcmp(argv[i], "--chaos-delay") == 0 &&
                   i + 1 < argc) {
            hooks.chaos.delay_pct = u32_arg(i);
        } else if (std::strcmp(argv[i], "--chaos-delay-ms") == 0 &&
                   i + 1 < argc) {
            hooks.chaos.delay_ms = u32_arg(i);
        } else if (std::strcmp(argv[i], "--help") == 0) {
            std::printf("usage: %s [--port N] [--chaos-seed S "
                        "--chaos-{kill,stall,corrupt,drop,delay} PCT "
                        "--chaos-{stall,delay}-ms MS]\n",
                        argv[0]);
            return 0;
        } else {
            std::fprintf(stderr, "unknown argument '%s'\n", argv[i]);
            return 2;
        }
    }

    // Clients may ship suite stimuli ("suite"/"random" kinds); custom kinds
    // would need a custom worker binary linking their builders.
    eraser::suite::register_remote_stimuli();

    eraser::util::UniqueFd listener;
    try {
        listener = eraser::util::listen_loopback(port);
    } catch (const eraser::util::WireError& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
    std::printf("LISTENING %u\n", static_cast<unsigned>(port));
    std::fflush(stdout);

    struct sigaction sa = {};
    sa.sa_handler = handle_term;
    sigemptyset(&sa.sa_mask);
    sigaction(SIGTERM, &sa, nullptr);

    eraser::core::WorkerDesignCache cache;
    while (!g_stop.load(std::memory_order_relaxed)) {
        eraser::util::UniqueFd fd;
        try {
            // Short timeout so SIGTERM is noticed promptly even when idle.
            fd = eraser::util::accept_connection(listener.get(), 200);
        } catch (const eraser::util::WireError&) {
            // Timeout or transient accept failure — re-check the stop flag.
            continue;
        }
        std::thread([fd = std::move(fd), &cache, hooks]() mutable {
            eraser::util::WireConn conn(std::move(fd));
            try {
                (void)eraser::core::serve_connection(conn, cache, hooks);
            } catch (const std::exception& e) {
                // A vanished client only costs this connection.
                std::fprintf(stderr, "connection: %s\n", e.what());
            }
        }).detach();
    }

    // Let in-flight units run to completion before exiting: their results
    // still reach the client, so graceful shutdown loses no work.
    while (g_busy.load(std::memory_order_acquire) != 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    return 0;
}
