#!/usr/bin/env python3
"""Perf-regression gate over BENCH_*.json artifacts.

Compares the geomean of a per-circuit metric for a chosen engine mode
between a freshly produced artifact and the committed baseline under
bench/baselines/. Both default metrics are within-run ratios, so host speed
largely cancels:

* BENCH_fig6.json (default): `speedup` of mode `eraser` — the IFsim*-
  relative speedup of the batched production engine; higher is better; the
  gate trips when the geomean drops more than --tolerance below baseline.
* BENCH_sharding.json: `serial_ratio` of mode `cost-balanced` at
  `--threads 1` — sharded-campaign wall over the unsharded blocking run on
  the same host, i.e. the scheduler + sharding overhead; lower is better
  (--direction lower), so the gate trips when the geomean RISES more than
  --tolerance above baseline.

The two artifacts must cover the same circuits — a circuit appearing in
only one of them is an error, not a silent skip (dropping a slow circuit
would otherwise raise the geomean and mask a real regression).
--min-wall-ms drops circuits whose BASELINE row is faster than the floor
(sub-millisecond rows are scheduler-noise-dominated on shared CI runners);
the filter keys off the committed baseline so both sides drop the same set.
--threads keeps only rows with that thread count (sharding artifacts carry
one row per thread point; without the filter the last row wins).

Usage:
  tools/check_perf_regression.py CURRENT.json BASELINE.json \
      [--mode eraser] [--metric speedup] [--direction higher] \
      [--threads N] [--tolerance 0.10] [--min-wall-ms 0]

Exit status: 0 = within tolerance, 1 = regression, 2 = bad input.
"""

import argparse
import json
import math
import sys


def load_mode_rows(path, mode, metric, threads):
    """circuit -> (metric value, wall_ms) for every matching row."""
    with open(path, "r", encoding="utf-8") as f:
        rows = json.load(f)
    out = {}
    for row in rows:
        if row.get("mode") != mode:
            continue
        if threads is not None and row.get("threads") != threads:
            continue
        value = float(row[metric])
        if value <= 0.0:
            raise ValueError(
                f"{path}: non-positive {metric} {value} for "
                f"circuit '{row.get('circuit')}'")
        out[row["circuit"]] = (value, float(row["wall_ms"]))
    if not out:
        raise ValueError(
            f"{path}: no rows with mode '{mode}'"
            + (f" at threads={threads}" if threads is not None else ""))
    return out


def geomean(values):
    return math.exp(sum(math.log(v) for v in values) / len(values))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="freshly produced BENCH json")
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("--mode", default="eraser",
                        help="row mode to gate (default: eraser)")
    parser.add_argument("--metric", default="speedup",
                        help="row field to gate (default: speedup)")
    parser.add_argument("--direction", choices=["higher", "lower"],
                        default="higher",
                        help="which way is better for --metric "
                             "(default: higher)")
    parser.add_argument("--threads", type=int, default=None,
                        help="keep only rows with this thread count "
                             "(default: all; last row per circuit wins)")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed fractional geomean drift against the "
                             "better direction (default 0.10)")
    parser.add_argument("--min-wall-ms", type=float, default=0.0,
                        help="drop circuits whose baseline row is faster "
                             "than this floor (noise guard; default 0)")
    args = parser.parse_args()

    try:
        cur = load_mode_rows(args.current, args.mode, args.metric,
                             args.threads)
        base = load_mode_rows(args.baseline, args.mode, args.metric,
                              args.threads)
        if set(cur) != set(base):
            only_cur = sorted(set(cur) - set(base))
            only_base = sorted(set(base) - set(cur))
            raise ValueError(
                "circuit sets differ — refresh the committed baseline "
                f"(only in current: {only_cur}; only in baseline: "
                f"{only_base})")
    except (OSError, ValueError, KeyError, json.JSONDecodeError) as e:
        print(f"error: {e}", file=sys.stderr)
        return 2

    gated = [c for c in sorted(base)
             if base[c][1] >= args.min_wall_ms]
    skipped = [c for c in sorted(base) if c not in gated]
    if not gated:
        print(f"error: --min-wall-ms {args.min_wall_ms} excludes every "
              "circuit", file=sys.stderr)
        return 2

    print(f"mode '{args.mode}' {args.metric} (current / baseline, "
          f"{args.direction} is better):")
    for circuit in gated:
        c, b = cur[circuit][0], base[circuit][0]
        print(f"  {circuit:<12} {c:8.2f} {b:8.2f}  {c / b:5.2f}x")
    for circuit in skipped:
        print(f"  {circuit:<12} (skipped: baseline wall "
              f"{base[circuit][1]:.3f} ms < {args.min_wall_ms} ms floor)")
    cur_geo = geomean([cur[c][0] for c in gated])
    base_geo = geomean([base[c][0] for c in gated])
    print(f"  {'geomean':<12} {cur_geo:8.2f} {base_geo:8.2f}  "
          f"{cur_geo / base_geo:5.2f}x")

    if args.direction == "higher":
        floor = base_geo * (1.0 - args.tolerance)
        if cur_geo < floor:
            print(f"REGRESSION: geomean {cur_geo:.2f} below floor "
                  f"{floor:.2f} (baseline {base_geo:.2f} - "
                  f"{args.tolerance:.0%})", file=sys.stderr)
            return 1
        print(f"OK: geomean {cur_geo:.2f} >= floor {floor:.2f} "
              f"(baseline {base_geo:.2f} - {args.tolerance:.0%})")
    else:
        ceiling = base_geo * (1.0 + args.tolerance)
        if cur_geo > ceiling:
            print(f"REGRESSION: geomean {cur_geo:.2f} above ceiling "
                  f"{ceiling:.2f} (baseline {base_geo:.2f} + "
                  f"{args.tolerance:.0%})", file=sys.stderr)
            return 1
        print(f"OK: geomean {cur_geo:.2f} <= ceiling {ceiling:.2f} "
              f"(baseline {base_geo:.2f} + {args.tolerance:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
