// Durable campaign journal: an append-only, CRC-framed write-ahead log of
// campaign admissions and per-unit completions, the crash-recovery
// substrate of the Session API.
//
// Why a journal is cheap here: ERASER's determinism invariant (verdict
// bitmaps are bit-identical at any shard/thread/batching/placement
// configuration) means replaying journaled unit verdicts and re-executing
// only the remainder provably reproduces the uninterrupted result — the
// journal never has to capture execution order, engine state, or partial
// shard progress, only which global fault ids have verdicts.
//
// File format (all little-endian, util::wire framing —
// `varint(len) | payload | crc32`):
//
//   frame 0:  "ERJL" magic + u32 version
//   frame N:  u8 record type, then
//     Admit(1):    campaign id (u64), design hash (u64), StimulusSpec
//                  (kind + payload), EngineOptions, scheduling fields
//                  (num_shards/policy/priority/max_workers/weight/
//                  epoch_split), stimulus epoch count, fault list
//                  (canonical::put_fault)
//     Unit(2):     campaign id, shard index, epoch window [begin, end),
//                  global fault ids (varint deltas), verdict bitmap,
//                  breakdown (wall / behavioral / rtl seconds)
//     Complete(3): campaign id — the campaign finished (or was refused /
//                  canceled); recovery must not resurrect it.
//
// 2D (fault, epoch) campaigns journal one Unit record per window; replay
// tracks per-fault covered epochs by absolute epoch index, so a fault is
// resumable-as-done only when its windows jointly cover every epoch —
// robust to a resumed campaign choosing a different epoch split. Window
// verdicts OR together (detection in any epoch detects the fault).
//
// A torn tail — the partial frame a crash or a disk fault leaves behind —
// fails CRC or length decode and is simply where replay stops; reopening
// for append truncates it away. Any write or fsync failure disables the
// journal for the rest of the process (counted, never thrown): campaigns
// keep running without durability rather than crashing, and the file is
// left replay-safe.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "eraser/campaign.h"
#include "eraser/instrumentation.h"
#include "fault/fault.h"

namespace eraser::util {
class FileIo;
}

namespace eraser::core {

/// v2 added the Admit epoch metadata (CampaignOptions::epoch_split, the
/// stimulus's epoch count) and the Unit epoch window — plus the engine-
/// options pipeline flag via the shared canonical codec. Version-skewed
/// files replay empty (recovery starts the campaigns over; verdicts are
/// deterministic, so that is only wasted work, never wrong results).
inline constexpr uint32_t kJournalVersion = 2;

struct JournalStats {
    uint64_t appends = 0;          // records durably handed to the OS
    uint64_t fsyncs = 0;           // group-commit barriers issued
    uint64_t replayed_units = 0;   // units served from the log on recovery
    uint64_t append_failures = 0;  // write/fsync failures (disk faults)
    bool disabled = false;         // true once a disk fault stopped logging
};

struct JournalOptions {
    std::string path;
    /// Group commit: fsync once every N appended records. 1 = every
    /// append (safest, slowest), 0 = never (OS page cache only — still
    /// survives SIGKILL of the client, not power loss).
    uint32_t fsync_interval = 8;
    /// File-I/O seam for disk-fault injection; null = FileIo::real().
    util::FileIo* io = nullptr;
};

/// One campaign reconstructed from the log by CampaignJournal::replay.
struct JournalCampaign {
    uint64_t campaign_id = 0;
    uint64_t design_hash = 0;
    StimulusSpec stimulus;
    CampaignOptions options;
    std::vector<fault::Fault> faults;
    /// Epoch count the stimulus declared at admission (1 = unepoched).
    uint32_t num_epochs = 1;
    /// A Complete record was seen — finished or abandoned, do not resume.
    bool complete = false;
    /// Parallel to `faults`: true where journaled units hold the fault's
    /// *complete* verdict — every epoch covered (then `verdicts` has the
    /// OR-folded bit). Partially-covered faults re-run in full on resume.
    std::vector<bool> unit_done;
    std::vector<bool> verdicts;
    /// Unit records replayed for this campaign.
    uint32_t units_replayed = 0;
};

/// The write side. Thread-safe: the scheduler appends unit records from
/// many worker threads; a mutex serializes record framing and the fd.
class CampaignJournal {
  public:
    explicit CampaignJournal(JournalOptions opts);
    ~CampaignJournal();
    CampaignJournal(const CampaignJournal&) = delete;
    CampaignJournal& operator=(const CampaignJournal&) = delete;

    /// False once the file could not be opened or a disk fault disabled
    /// appending. Append calls on a disabled journal are counted no-ops.
    [[nodiscard]] bool enabled() const;

    /// Appends an Admit record; returns the assigned campaign id (ids are
    /// unique across reopens of one file) or 0 if the append failed.
    [[nodiscard]] uint64_t append_admission(
        uint64_t design_hash, const StimulusSpec& stimulus,
        const CampaignOptions& options, std::span<const fault::Fault> faults,
        uint32_t num_epochs = 1);

    /// Appends a Unit record: the verdict slice of one completed unit
    /// (its epoch window rides in breakdown.epoch_begin/end).
    void append_unit(uint64_t campaign_id, uint32_t shard_index,
                     const std::vector<uint32_t>& global_ids,
                     const std::vector<bool>& verdicts,
                     const ShardBreakdown& breakdown);

    /// Appends a Complete record: the campaign is finished (or refused /
    /// canceled) and must not be resumed.
    void append_complete(uint64_t campaign_id);

    /// Group-commit barrier: fsync now regardless of the interval.
    void flush();

    /// Recovery observability hook: units served from the log.
    void note_replayed(uint64_t units);

    [[nodiscard]] JournalStats stats() const;
    [[nodiscard]] const std::string& path() const { return opts_.path; }

    /// Reads every decodable record of `path`, stopping at the first torn
    /// frame. Missing or unrecognizable files yield an empty vector. Unit
    /// records for unknown campaign ids are tolerated (an Admit lost to a
    /// disk fault); duplicate verdicts for one fault agree by determinism,
    /// the last one wins.
    [[nodiscard]] static std::vector<JournalCampaign> replay(
        const std::string& path);

  private:
    bool append_record_locked(std::span<const uint8_t> payload);
    void fsync_locked();
    void disable_locked();

    JournalOptions opts_;
    util::FileIo* io_;
    mutable std::mutex mu_;
    int fd_ = -1;
    bool disabled_ = false;
    uint32_t unsynced_ = 0;
    uint64_t next_id_ = 1;
    uint64_t appends_ = 0;
    uint64_t fsyncs_ = 0;
    uint64_t replayed_units_ = 0;
    uint64_t append_failures_ = 0;
};

}  // namespace eraser::core
