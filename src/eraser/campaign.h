// Campaign option/result types shared by the Session API (eraser/session.h)
// and the legacy free-function entry points kept below as deprecated
// wrappers.
//
// The modern flow (paper Fig. 4 driven over the whole testbench):
//
//   auto compiled = core::CompiledDesign::build(design);   // compile once
//   core::Session session(compiled);
//   auto handle = session.submit(faults, factory, opts);   // async
//   const auto& result = handle.wait();
//
// Determinism: faults are independent under concurrent fault simulation, so
// every configuration (shard count, policy, thread count, submission order)
// produces bit-identical detection bitmaps. Per-shard results are merged in
// shard-index order. Instrumentation counters merge additively and keep
// every per-engine invariant (executed + skipped == candidates, candidates
// mode-independent), but their absolute totals depend on the partition —
// each shard replays the good network once (see Instrumentation::merge_from).
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "eraser/concurrent_sim.h"
#include "eraser/remote.h"
#include "eraser/shard.h"
#include "fault/fault.h"
#include "rtl/design.h"
#include "sim/stimulus.h"

namespace eraser::core {

class VerdictCache;
class CampaignJournal;

/// How Session::shutdown / CampaignScheduler::shutdown winds work down.
/// All three stop admission (further submits throw) and return once no
/// engine work is in flight; they differ in what happens to admitted work:
///
/// - Drain:      run everything already admitted to completion (alias for
///               drain()).
/// - Checkpoint: stop at unit boundaries. In-flight units finish (their
///               verdicts are journaled); queued and remaining work is
///               left in the journal WITHOUT a Complete record, so a later
///               Session::recover resumes exactly the unfinished part.
/// - Abort:     additionally cancel in-flight units at the next cycle
///               boundary (their partial work is discarded, not journaled);
///               remaining work stays recoverable like Checkpoint.
enum class ShutdownMode : uint8_t { Drain = 0, Checkpoint = 1, Abort = 2 };

/// Scheduling class of a campaign (see eraser/scheduler.h). Strict across
/// classes: whenever a worker reaches a shard boundary, any dispatchable
/// High shard starts before any Normal one, and Normal before Low.
/// Admission from a full queue is FIFO within a class; workers are split
/// weighted-fair-share among concurrently running campaigns of one class.
enum class Priority : uint8_t { Low = 0, Normal = 1, High = 2 };

struct CampaignOptions {
    EngineOptions engine;
    /// Worker threads. Session campaigns run on the Session's persistent
    /// pool (sized by SessionOptions), which ignores this field; the legacy
    /// wrappers size their temporary Session with it (0 = hardware
    /// concurrency).
    uint32_t num_threads = 1;
    /// Fault shards. 0 = one per worker thread. More shards than threads is
    /// useful with CostBalanced: smaller shards steal-balance better — and,
    /// under the scheduler, smaller shards tighten the preemption grain
    /// (higher-priority campaigns overtake at shard boundaries).
    uint32_t num_shards = 0;
    ShardPolicy shard_policy = ShardPolicy::CostBalanced;
    /// Scheduling class relative to other campaigns of the same Session.
    Priority priority = Priority::Normal;
    /// Per-campaign worker quota: at most this many of the campaign's
    /// shards run concurrently (0 = no quota). Lets a bulk background
    /// campaign coexist with latency-sensitive ones without saturating the
    /// pool. Verdicts are quota-independent.
    uint32_t max_workers = 0;
    /// Fair-share weight among concurrently running campaigns of the same
    /// priority class: workers are split roughly proportionally to weight
    /// (ignored across classes — higher classes always win). Must be >= 1.
    uint32_t weight = 1;
    /// 2D (fault, epoch) packing: how many windows the stimulus's epoch
    /// axis is split into. Only meaningful when the stimulus declares
    /// more than one epoch (sim::Stimulus::num_epochs). 0 = automatic —
    /// the scheduler's learned CostModel picks the split that minimizes
    /// predicted makespan; 1 = no epoch split (each unit runs every epoch
    /// serially); N = force N windows (clamped to the epoch count).
    /// Verdicts are split-independent: per-window verdicts OR back to the
    /// serial epoch loop's bits exactly.
    uint32_t epoch_split = 0;
};

/// Configuration of a Session's CampaignScheduler (eraser/scheduler.h).
/// The defaults preserve the historical submit() contract: non-blocking
/// admission, every campaign active immediately.
struct SchedulerOptions {
    /// Bounded admission queue: campaigns beyond `max_active` wait here;
    /// once `queue_capacity` campaigns are waiting, submit() blocks and
    /// try_submit() returns an invalid handle (backpressure). 0 = unbounded
    /// (submit never blocks). Only meaningful together with `max_active` —
    /// with unlimited active campaigns the queue is pass-through and never
    /// fills, so backpressure never engages.
    uint32_t queue_capacity = 0;
    /// Campaigns running concurrently; further submissions wait in the
    /// admission queue in (priority, FIFO) order. 0 = unlimited.
    uint32_t max_active = 0;
    /// Weighted fair share across running campaigns of one priority class.
    /// Off = strict FIFO by submission order within a class (the
    /// bench_multitenant "fifo" baseline).
    bool fair_share = true;
    /// Feed measured ShardBreakdown::wall_seconds back into the CostModel
    /// and partition subsequent submits with the learned per-signal costs.
    /// Off = always the static VDG estimate.
    bool learn_costs = true;
    /// Under FaultBatching::Word, order faults by learned lane-deferral
    /// rate before 64-lane grouping, clustering control-correlated faults
    /// into the same unit (needs learn_costs and at least one observation).
    bool learned_packing = true;
    /// EWMA smoothing of the cost feedback (0 < alpha <= 1).
    double cost_alpha = 0.25;
    /// Distributed campaign fabric (eraser/remote.h): worker processes the
    /// scheduler may place whole units on. Empty = local-only. Only
    /// campaigns submitted with a serializable StimulusSpec are
    /// remote-eligible; plain-factory campaigns always run locally.
    RemoteOptions remote = {};
    /// Content-addressed verdict cache with persistent warm-start store
    /// (eraser/verdict_cache.h). Shareable across Sessions (and across
    /// processes via its store file). Null = no caching. Only campaigns
    /// submitted with a StimulusSpec are cacheable — the key must
    /// fingerprint the stimulus, which an opaque factory closure cannot.
    std::shared_ptr<VerdictCache> verdict_cache = {};
    /// Durable write-ahead campaign journal (eraser/journal.h): admissions
    /// and unit completions are appended before results surface, making
    /// campaigns crash-safe — Session::recover(path) resumes interrupted
    /// ones re-executing only un-journaled units. Null = no journaling.
    /// Like the verdict cache, only StimulusSpec submissions are journaled
    /// (a factory closure cannot be replayed from disk).
    std::shared_ptr<CampaignJournal> journal = {};
};

struct CampaignResult {
    std::vector<bool> detected;   // indexed by global fault id
    uint32_t num_faults = 0;
    uint32_t num_detected = 0;
    double coverage_percent = 0.0;
    double seconds = 0.0;
    /// Time spent building the CompiledDesign *for this call*: the legacy
    /// wrappers pay it per call; Session campaigns report 0 here because
    /// compilation is amortized (see CompiledDesign::compile_seconds()).
    double compile_seconds = 0.0;
    /// True when the campaign was canceled before every shard completed;
    /// `detected` then holds the partial verdicts accumulated so far.
    bool canceled = false;
    Instrumentation stats;
    uint32_t num_shards = 1;      // shards actually run
    uint32_t num_threads = 1;     // worker threads actually used
    /// Faults served from the verdict cache (merged into `detected`
    /// without simulation); 0 when no cache is configured. Cached shards
    /// contribute no Instrumentation counters — they never ran.
    uint32_t cache_hits = 0;
    /// Units whose verdicts were replayed from a campaign journal by
    /// Session::recover instead of re-executed; 0 for campaigns submitted
    /// normally. Like cache hits, replayed units contribute no
    /// Instrumentation counters.
    uint32_t resumed_units = 0;
};

/// Builds one replayable stimulus instance per shard. Must be safe to call
/// concurrently; every returned instance must drive the identical sequence.
using StimulusFactory = std::function<std::unique_ptr<sim::Stimulus>()>;

/// Deprecated pre-Session entry point: compiles the design, runs the whole
/// campaign single-threaded on the calling thread, and throws the compiled
/// artifacts away. Thin wrapper over a temporary Session — prefer
/// Session::run, which amortizes compilation across campaigns.
ERASER_DEPRECATED(
    "use core::Session::run — a Session compiles the design once for any "
    "number of campaigns")
[[nodiscard]] CampaignResult run_concurrent_campaign(
    const rtl::Design& design, std::span<const fault::Fault> faults,
    sim::Stimulus& stim, const CampaignOptions& opts);

/// Deprecated pre-Session entry point: compiles the design, runs one
/// sharded campaign on a temporary thread pool, and throws the compiled
/// artifacts away. `fault_costs` is superseded by the CompiledDesign-cached
/// cost model and is ignored. Thin wrapper over a temporary Session —
/// prefer Session::submit.
ERASER_DEPRECATED(
    "use core::Session::submit — a Session compiles the design once and "
    "keeps a persistent worker pool")
[[nodiscard]] CampaignResult run_sharded_campaign(
    const rtl::Design& design, std::span<const fault::Fault> faults,
    const StimulusFactory& make_stimulus, const CampaignOptions& opts,
    const std::vector<uint64_t>* fault_costs = nullptr);

}  // namespace eraser::core
