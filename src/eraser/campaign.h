// FaultCampaign: runs a stimulus against the concurrent engine and reports
// coverage plus instrumentation — the top-level entry point of the Eraser
// framework (paper Fig. 4 steps ①-⑧ driven over the whole testbench).
//
// Two entry points:
//  * run_concurrent_campaign — one ConcurrentSim over the whole fault list
//    on the calling thread, driven by a caller-owned Stimulus.
//  * run_sharded_campaign    — the fault list is partitioned into K shards
//    (see eraser/shard.h), one ConcurrentSim per shard, executed on a
//    work-stealing thread pool. Each shard replays its own Stimulus built
//    by the factory, so the factory must be callable from multiple threads
//    and every instance must produce the identical input sequence.
//
// Determinism: faults are independent under concurrent fault simulation, so
// both entry points produce bit-identical detection bitmaps for any shard
// count, policy, or thread count. Per-shard results are merged in shard-
// index order. Instrumentation counters merge additively and keep every
// per-engine invariant (executed + skipped == candidates, candidates
// mode-independent), but their absolute totals depend on the partition —
// each shard replays the good network once (see Instrumentation::merge_from).
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "eraser/concurrent_sim.h"
#include "eraser/shard.h"
#include "fault/fault.h"
#include "rtl/design.h"
#include "sim/stimulus.h"

namespace eraser::core {

struct CampaignOptions {
    EngineOptions engine;
    /// Worker threads for the sharded runner. 0 = hardware concurrency.
    /// run_concurrent_campaign ignores this (it is the 1-thread path).
    uint32_t num_threads = 1;
    /// Fault shards. 0 = one per worker thread. More shards than threads is
    /// useful with CostBalanced: smaller shards steal-balance better.
    uint32_t num_shards = 0;
    ShardPolicy shard_policy = ShardPolicy::CostBalanced;
};

struct CampaignResult {
    std::vector<bool> detected;   // indexed by global fault id
    uint32_t num_faults = 0;
    uint32_t num_detected = 0;
    double coverage_percent = 0.0;
    double seconds = 0.0;
    Instrumentation stats;
    uint32_t num_shards = 1;      // shards actually run
    uint32_t num_threads = 1;     // worker threads actually used
};

/// Builds one replayable stimulus instance per shard. Must be safe to call
/// concurrently; every returned instance must drive the identical sequence.
using StimulusFactory = std::function<std::unique_ptr<sim::Stimulus>()>;

/// Runs the full concurrent fault-simulation campaign single-threaded:
/// reset, stimulus initialization, one clocked cycle per stimulus step with
/// output observation (fault detection + dropping) after each cycle.
[[nodiscard]] CampaignResult run_concurrent_campaign(
    const rtl::Design& design, std::span<const fault::Fault> faults,
    sim::Stimulus& stim, const CampaignOptions& opts);

/// Runs the campaign sharded across a thread pool per `opts.num_threads`,
/// `opts.num_shards`, and `opts.shard_policy`. Detection results are
/// bit-identical to run_concurrent_campaign for every configuration.
/// `fault_costs` optionally supplies precomputed estimate_fault_costs()
/// output so sweeps over many configurations build the cost model once;
/// nullptr computes it internally.
[[nodiscard]] CampaignResult run_sharded_campaign(
    const rtl::Design& design, std::span<const fault::Fault> faults,
    const StimulusFactory& make_stimulus, const CampaignOptions& opts,
    const std::vector<uint64_t>* fault_costs = nullptr);

}  // namespace eraser::core
