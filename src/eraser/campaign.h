// Campaign option/result types shared by the Session API (eraser/session.h)
// and the legacy free-function entry points kept below as deprecated
// wrappers.
//
// The modern flow (paper Fig. 4 driven over the whole testbench):
//
//   auto compiled = core::CompiledDesign::build(design);   // compile once
//   core::Session session(compiled);
//   auto handle = session.submit(faults, factory, opts);   // async
//   const auto& result = handle.wait();
//
// Determinism: faults are independent under concurrent fault simulation, so
// every configuration (shard count, policy, thread count, submission order)
// produces bit-identical detection bitmaps. Per-shard results are merged in
// shard-index order. Instrumentation counters merge additively and keep
// every per-engine invariant (executed + skipped == candidates, candidates
// mode-independent), but their absolute totals depend on the partition —
// each shard replays the good network once (see Instrumentation::merge_from).
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "eraser/concurrent_sim.h"
#include "eraser/shard.h"
#include "fault/fault.h"
#include "rtl/design.h"
#include "sim/stimulus.h"

namespace eraser::core {

struct CampaignOptions {
    EngineOptions engine;
    /// Worker threads. Session campaigns run on the Session's persistent
    /// pool (sized by SessionOptions), which ignores this field; the legacy
    /// wrappers size their temporary Session with it (0 = hardware
    /// concurrency).
    uint32_t num_threads = 1;
    /// Fault shards. 0 = one per worker thread. More shards than threads is
    /// useful with CostBalanced: smaller shards steal-balance better.
    uint32_t num_shards = 0;
    ShardPolicy shard_policy = ShardPolicy::CostBalanced;
};

struct CampaignResult {
    std::vector<bool> detected;   // indexed by global fault id
    uint32_t num_faults = 0;
    uint32_t num_detected = 0;
    double coverage_percent = 0.0;
    double seconds = 0.0;
    /// Time spent building the CompiledDesign *for this call*: the legacy
    /// wrappers pay it per call; Session campaigns report 0 here because
    /// compilation is amortized (see CompiledDesign::compile_seconds()).
    double compile_seconds = 0.0;
    /// True when the campaign was canceled before every shard completed;
    /// `detected` then holds the partial verdicts accumulated so far.
    bool canceled = false;
    Instrumentation stats;
    uint32_t num_shards = 1;      // shards actually run
    uint32_t num_threads = 1;     // worker threads actually used
};

/// Builds one replayable stimulus instance per shard. Must be safe to call
/// concurrently; every returned instance must drive the identical sequence.
using StimulusFactory = std::function<std::unique_ptr<sim::Stimulus>()>;

/// Deprecated pre-Session entry point: compiles the design, runs the whole
/// campaign single-threaded on the calling thread, and throws the compiled
/// artifacts away. Thin wrapper over a temporary Session — prefer
/// Session::run, which amortizes compilation across campaigns.
ERASER_DEPRECATED(
    "use core::Session::run — a Session compiles the design once for any "
    "number of campaigns")
[[nodiscard]] CampaignResult run_concurrent_campaign(
    const rtl::Design& design, std::span<const fault::Fault> faults,
    sim::Stimulus& stim, const CampaignOptions& opts);

/// Deprecated pre-Session entry point: compiles the design, runs one
/// sharded campaign on a temporary thread pool, and throws the compiled
/// artifacts away. `fault_costs` is superseded by the CompiledDesign-cached
/// cost model and is ignored. Thin wrapper over a temporary Session —
/// prefer Session::submit.
ERASER_DEPRECATED(
    "use core::Session::submit — a Session compiles the design once and "
    "keeps a persistent worker pool")
[[nodiscard]] CampaignResult run_sharded_campaign(
    const rtl::Design& design, std::span<const fault::Fault> faults,
    const StimulusFactory& make_stimulus, const CampaignOptions& opts,
    const std::vector<uint64_t>* fault_costs = nullptr);

}  // namespace eraser::core
