// FaultCampaign: runs a stimulus against the concurrent engine and reports
// coverage plus instrumentation — the top-level entry point of the Eraser
// framework (paper Fig. 4 steps ①-⑧ driven over the whole testbench).
#pragma once

#include <span>
#include <vector>

#include "eraser/concurrent_sim.h"
#include "fault/fault.h"
#include "rtl/design.h"
#include "sim/stimulus.h"

namespace eraser::core {

struct CampaignOptions {
    EngineOptions engine;
};

struct CampaignResult {
    std::vector<bool> detected;
    uint32_t num_faults = 0;
    uint32_t num_detected = 0;
    double coverage_percent = 0.0;
    double seconds = 0.0;
    Instrumentation stats;
};

/// Runs the full concurrent fault-simulation campaign: reset, stimulus
/// initialization, one clocked cycle per stimulus step with output
/// observation (fault detection + dropping) after each cycle.
[[nodiscard]] CampaignResult run_concurrent_campaign(
    const rtl::Design& design, std::span<const fault::Fault> faults,
    sim::Stimulus& stim, const CampaignOptions& opts);

}  // namespace eraser::core
