// Distributed campaign fabric: the message schema and the two endpoints of
// the out-of-process execution path.
//
// A *worker* (tools/eraser_worker, or an in-process server thread in tests)
// executes whole shards — under FaultBatching::Word these are unions of
// 64-lane units, so lane packing survives the process boundary: the client
// ships the shard's faults in partition order and the worker's ConcurrentSim
// re-derives the identical lane assignment (fault i -> group i>>6, lane
// i&63). The worker returns the serialized verdict bitmap slice, the
// ShardBreakdown timings, and the Instrumentation counters; because fault
// simulation is deterministic, a unit re-dispatched after a worker failure
// produces the bit-identical slice on any other executor, so retries are
// free and the campaign merge stays index-ordered and bit-identical.
//
// Transport: length-prefixed CRC-checked frames over loopback stream
// sockets (util/wire.h). Protocol, all little-endian, one message per
// frame, first payload byte = MsgType:
//
//   client                          worker
//   ------                          ------
//   Hello{version,
//         heartbeat_interval_ms} ->
//                               <-  HelloAck{version}       (or Error)
//   CompileDesign{hash,top,src} ->
//                               <-  CompileAck{hash, structural_hash,
//                                              compile_seconds}
//   RunUnit{req_id, hash, shard,
//           engine opts, stimulus
//           spec, faults}       ->
//                               <-  Heartbeat{req_id}  (every interval while
//                               <-  Heartbeat{req_id}   the unit executes)
//                               <-  UnitResult{req_id, verdicts, counts,
//                                              timings, counters}
//   ...                             (one RunUnit in flight per connection)
//   Shutdown                    ->  (worker closes; also accepts clean EOF)
//
// Heartbeats (schema v2) are worker->client liveness pings during unit
// execution: the client's receive loop re-arms its `heartbeat_timeout_ms`
// deadline on each matching ping, so a wedged worker is detected in ~2s
// instead of waiting out the whole `unit_timeout_ms`. A client hello with
// heartbeat_interval_ms = 0 disables them (v1 behavior).
//
// Version skew is refused at the hello; design skew is caught by comparing
// the worker's CompiledDesign::design_hash() (a structural fingerprint of
// the elaborated design) against the client's — frontend compilation is
// deterministic, so equal sources yield equal SignalId spaces and raw
// (signal, bit, polarity) fault triples are valid across the boundary.
// Workers cache compiled designs by the spec hash, so a fleet of campaigns
// over one design compiles once per worker process, not once per unit.
//
// Failure semantics: every transport error (EOF, CRC mismatch, receive or
// heartbeat deadline, stale request id) classifies the *connection* as gone
// — the client abandons it and re-dispatches the claimed unit to another
// executor. Abandoning on the first error is what makes duplicate or
// corrupted result frames safe: a late duplicate can never be read as a
// second unit's result because nothing is ever read from that connection
// again. The *worker slot*, however, is not abandoned: the scheduler's link
// lifecycle (LinkState below) reconnects with capped exponential backoff,
// re-handshakes, re-warms the design cache, and keeps the learned
// shipping-overhead EWMA — only a flapper that trips the failure-rate
// window repeatedly is quarantined and eventually ejected.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "eraser/canonical.h"
#include "eraser/concurrent_sim.h"
#include "eraser/instrumentation.h"
#include "fault/fault.h"
#include "sim/stimulus.h"
#include "util/wire.h"

namespace eraser::rtl {
class Design;
}  // namespace eraser::rtl

namespace eraser::core {

class CompiledDesign;

/// Bumped on any frame-layout change; a worker refuses a mismatched hello
/// rather than guessing at field offsets. v2 added the hello's
/// heartbeat_interval_ms field and the Heartbeat frame. v3 added the
/// RunUnit frame's StimulusSpec epoch-window fields, the engine-options
/// pipeline flag, and the UnitResult stimulus-wall field (2D parallelism).
inline constexpr uint32_t kWireSchemaVersion = 3;

/// First payload byte of every frame.
enum class MsgType : uint8_t {
    Hello = 1,
    HelloAck = 2,
    CompileDesign = 3,
    CompileAck = 4,
    RunUnit = 5,
    UnitResult = 6,
    Error = 7,
    Shutdown = 8,
    Heartbeat = 9,   // worker -> client liveness ping during unit execution
};

/// What the client ships so a worker can build the identical design:
/// Verilog source text plus the top module. hash() keys the worker-side
/// compile-once cache.
struct DesignSpec {
    std::string source;
    std::string top;

    [[nodiscard]] uint64_t hash() const {
        return canonical::design_spec_hash(source, top);
    }
};

// --- serializable stimuli ----------------------------------------------------

/// A stimulus a worker can rebuild from bytes. Arbitrary StimulusFactory
/// closures cannot cross a process boundary, so remote-eligible campaigns
/// name a registered `kind` plus an opaque payload that kind's builder
/// decodes. The suite registers "random" (RandomStimulus config) and
/// "suite" (benchmark name + cycle count) via
/// suite::register_remote_stimuli().
struct StimulusSpec {
    std::string kind;
    std::vector<uint8_t> payload;

    // 2D parallelism: when `epochs` > 0 the spec denotes the built stimulus
    // restricted to the epoch window [epoch_begin, epoch_end) of its
    // `epochs` declared epochs (build_stimulus wraps the builder's product
    // in sim::EpochWindowStimulus). epochs == 0 (the default) is the
    // classic whole-stimulus spec — its canonical hash is unchanged, so
    // verdict-cache contexts from before the 2D work stay valid.
    uint32_t epochs = 0;
    uint32_t epoch_begin = 0;
    uint32_t epoch_end = 0;

    /// True when the spec covers a strict sub-window of its epochs.
    [[nodiscard]] bool windowed() const {
        return epochs > 0 && !(epoch_begin == 0 && epoch_end == epochs);
    }
};

/// Decodes one StimulusSpec payload into a fresh stimulus instance. Must be
/// safe to call concurrently; every instance must drive the identical
/// sequence (the determinism contract of StimulusFactory).
using StimulusBuilder = std::function<std::unique_ptr<sim::Stimulus>(
    std::span<const uint8_t> payload)>;

/// Registers `builder` for `kind` process-wide (later registrations of the
/// same kind replace earlier ones). Every process that *executes* specs —
/// worker binaries, and clients, which also build local instances — must
/// register the kinds it receives.
void register_stimulus_kind(const std::string& kind, StimulusBuilder builder);

/// Builds a stimulus from a spec; throws SimError for an unregistered kind,
/// WireError for an undecodable payload.
[[nodiscard]] std::unique_ptr<sim::Stimulus> build_stimulus(
    const StimulusSpec& spec);

// --- worker side -------------------------------------------------------------

/// Seeded probabilistic fault injection for the chaos soak: each unit rolls
/// all five dice (in this field order, one `below(100)` draw each, so the
/// stream stays aligned no matter which faults fire) against a per-connection
/// Prng seeded with `seed`. A given seed therefore produces the identical
/// fault schedule on every run — the harness is chaos you can replay.
/// seed == 0 disables everything.
struct ChaosHooks {
    uint64_t seed = 0;
    /// Close the connection instead of answering (simulated crash).
    uint32_t kill_pct = 0;
    /// Wedge silently for `stall_ms` BEFORE heartbeats start (the client's
    /// heartbeat deadline must catch it).
    uint32_t stall_pct = 0;
    uint32_t stall_ms = 1000;
    /// Answer with a frame whose CRC trailer is wrong (client must refuse).
    uint32_t corrupt_pct = 0;
    /// Execute the unit but never send the result (client times out).
    uint32_t drop_pct = 0;
    /// Sleep `delay_ms` WHILE heartbeats run — a slow-but-alive worker the
    /// heartbeat path must NOT classify as dead.
    uint32_t delay_pct = 0;
    uint32_t delay_ms = 50;

    [[nodiscard]] bool enabled() const { return seed != 0; }
};

/// Fault-injection switches for the distributed determinism suite (ordinals
/// are 1-based unit counts on one connection; 0 = never). Production
/// workers pass the default.
struct WorkerHooks {
    /// Close the connection instead of answering this unit (worker "dies"
    /// mid-campaign; the client sees EOF and re-dispatches).
    uint32_t die_before_result_unit = 0;
    /// Answer this unit with a well-framed garbage payload (exercises the
    /// client's request-id / decode rejection).
    uint32_t garbage_result_unit = 0;
    /// Send this unit's result frame twice (the duplicate must be rejected
    /// as stale by the next request's id check, never merged twice).
    uint32_t duplicate_result_unit = 0;
    /// Sleep this long before answering unit `stall_before_result_unit`
    /// (exercises the client's receive deadline -> re-dispatch path).
    uint32_t stall_before_result_unit = 0;
    uint32_t stall_ms = 0;
    /// Seeded probabilistic injection on top of the ordinal hooks above.
    ChaosHooks chaos;

    // --- graceful-shutdown plumbing (tools/eraser_worker) -----------------
    /// When set and raised (SIGTERM handler), serve_connection returns
    /// after the message currently in flight: the client sees a clean EOF
    /// at a frame boundary and re-dispatches any remaining units — no unit
    /// is ever half-answered.
    const std::atomic<bool>* stop = nullptr;
    /// When set, incremented while a unit executes and decremented after
    /// its result frame is sent, so the worker main can wait for in-flight
    /// work to drain before exiting.
    std::atomic<uint32_t>* busy_units = nullptr;
};

/// Worker-side compile-once cache, shared across the connections of one
/// worker process: spec hash -> owned rtl::Design + CompiledDesign.
class WorkerDesignCache {
  public:
    /// Returns the compiled artifact for the spec, compiling at most once
    /// per hash. Throws EraserError subclasses on parse/elab failure.
    [[nodiscard]] std::shared_ptr<const CompiledDesign> compile(
        uint64_t hash, const std::string& source, const std::string& top);

    /// Cache lookup only (RunUnit path: the client always compiles first).
    [[nodiscard]] std::shared_ptr<const CompiledDesign> find(
        uint64_t hash) const;

  private:
    struct Entry {
        std::unique_ptr<rtl::Design> design;   // compiled_ points into it
        std::shared_ptr<const CompiledDesign> compiled;
    };
    mutable std::mutex mu_;
    std::unordered_map<uint64_t, Entry> entries_;
};

/// Serves one client connection until clean EOF or Shutdown: hello
/// handshake, design compilation, then one unit per request. Returns the
/// number of units executed; throws WireError when the transport dies
/// (caller decides whether to keep accepting).
uint64_t serve_connection(util::WireConn& conn, WorkerDesignCache& cache,
                          const WorkerHooks& hooks = {});

// --- client side -------------------------------------------------------------

/// The worker fleet a Session's scheduler places units on
/// (SchedulerOptions::remote). Empty `workers` = local-only (the default).
struct RemoteOptions {
    /// Loopback TCP ports of running eraser_worker processes.
    std::vector<uint16_t> workers;
    /// Shipped to every worker at connect time; the worker's compiled
    /// structural hash must match the Session's CompiledDesign or the
    /// worker is refused (design skew would mistranslate SignalIds).
    DesignSpec design;
    int connect_timeout_ms = 5000;
    /// Per-unit receive deadline; exceeding it abandons the connection and
    /// re-dispatches the unit (<= 0 waits forever).
    int unit_timeout_ms = 120000;
    /// Covers the handshake's CompileAck (workers compile on first
    /// contact).
    int compile_timeout_ms = 120000;
    /// Smoothing of the per-worker shipping-overhead EWMA the placement
    /// gate uses (remote cost = predicted wall + this EWMA).
    double rtt_alpha = 0.25;

    // -- fleet health (link lifecycle; see LinkState) --
    /// Interval at which a worker pings during unit execution; shipped in
    /// the hello. 0 disables heartbeats (unit_timeout_ms alone applies).
    uint32_t heartbeat_interval_ms = 500;
    /// Max silence mid-unit before the worker counts as wedged and the unit
    /// re-dispatches; only meaningful when heartbeats are enabled. Keep it
    /// several intervals wide.
    int heartbeat_timeout_ms = 2000;
    /// Reconnect backoff after a link failure: capped exponential with
    /// deterministic jitter (util::Backoff), base doubling up to max.
    uint32_t reconnect_base_ms = 50;
    uint32_t reconnect_max_ms = 2000;
    /// Failure-rate window: `failure_threshold` failures (handshake or
    /// link loss) within `failure_window_ms` quarantines the worker for
    /// `quarantine_cooldown_ms`; `max_quarantines` quarantines ejects it
    /// permanently (0 = never eject).
    uint32_t failure_threshold = 3;
    uint32_t failure_window_ms = 10000;
    uint32_t quarantine_cooldown_ms = 1000;
    uint32_t max_quarantines = 3;

    [[nodiscard]] bool enabled() const { return !workers.empty(); }
};

/// One executed unit as reported by a worker.
struct RemoteUnitReply {
    bool ran = false;
    bool canceled = false;
    std::vector<bool> detected;   // parallel to the shipped fault list
    uint32_t num_detected = 0;
    Instrumentation stats;
    ShardBreakdown breakdown;     // wall/behavioral/rtl + remote/rtt filled
};

/// Client endpoint of one worker connection. One request in flight at a
/// time; not internally synchronized (each scheduler dispatcher thread owns
/// one link). Every thrown WireError means "this connection is gone" — the
/// owner must stop using the current connection and re-dispatch the unit;
/// it may then call open() again to reconnect the same link object, which
/// keeps the learned shipping-overhead EWMA and the request-id counter
/// (late frames from a previous incarnation can never satisfy a new
/// request's id check).
class RemoteWorkerLink {
  public:
    RemoteWorkerLink(const RemoteOptions& opts, uint16_t port)
        : opts_(opts), port_(port) {}

    /// Connect + hello + ship the design; `expected_hash` is the client
    /// Session's CompiledDesign::design_hash(). Throws WireError on
    /// transport failure, version skew, or structural-hash mismatch.
    /// Re-callable after a failure: closes any previous connection first
    /// (the worker-side design cache makes the re-handshake's compile a
    /// lookup, not a recompile).
    void open(uint64_t expected_hash);

    /// Drops the current connection without a goodbye (reconnect path).
    void close() noexcept { conn_.close(); }

    /// Executes one unit remotely. `shard_index` is diagnostic (worker
    /// logs); verdicts come back parallel to `faults`. Updates the
    /// shipping-overhead EWMA on success.
    [[nodiscard]] RemoteUnitReply run_unit(
        std::span<const fault::Fault> faults, const EngineOptions& engine,
        const StimulusSpec& stimulus, uint32_t shard_index);

    /// Best-effort goodbye (lets an idle worker drop the connection
    /// cleanly); never throws.
    void shutdown() noexcept;

    /// EWMA of observed shipping overhead (round trip minus worker wall);
    /// 0 until the first completed unit.
    [[nodiscard]] double overhead_ewma() const { return overhead_ewma_; }

    /// Warm-start hook (eraser/verdict_cache.h): primes the shipping-
    /// overhead EWMA with a value persisted by a previous Session, so the
    /// first placement decision is gated on history instead of "unknown,
    /// ship it and learn". Only applies while the EWMA is unobserved — a
    /// measured value always wins over a persisted one.
    void seed_overhead(double seconds) {
        if (overhead_ewma_ == 0.0 && seconds > 0.0) overhead_ewma_ = seconds;
    }
    [[nodiscard]] uint16_t port() const { return port_; }

  private:
    void open_impl(uint64_t expected_hash);

    RemoteOptions opts_;
    uint16_t port_;
    util::WireConn conn_;
    uint64_t next_request_ = 1;
    double overhead_ewma_ = 0.0;
};

/// Link lifecycle (tentpole of the self-healing fleet): where one worker
/// slot currently is.
enum class LinkState : uint8_t {
    Connecting,   // first connection attempt in progress
    Healthy,      // handshaken, serving units
    Suspect,      // failure observed; waiting out reconnect backoff
    Down,         // quarantined (cooldown) or permanently ejected
    Probing,      // reconnection attempt in progress
};

[[nodiscard]] const char* to_string(LinkState s);

/// Per-worker health counters (RemoteFleetStats::workers).
struct RemoteWorkerStats {
    uint16_t port = 0;
    LinkState state = LinkState::Connecting;
    bool ejected = false;
    uint32_t handshake_failures = 0;  // connect/hello/compile failures
    uint32_t links_lost = 0;          // established links that later died
    uint32_t reconnects = 0;          // successful re-handshakes
    uint32_t quarantines = 0;         // failure-rate window trips
    uint64_t units_completed = 0;
    double overhead_ewma_seconds = 0.0;
};

/// Fleet-level counters (SchedulerStats::remote): placement and failure
/// diagnostics for the distributed path. The failure counters are split by
/// phase — a handshake that never produced a usable link, an established
/// link that died, a reconnect that healed it, a quarantine that benched
/// the worker — because they demand different operator responses.
struct RemoteFleetStats {
    uint32_t workers_configured = 0;
    uint32_t workers_connected = 0;   // currently usable links
    uint32_t workers_ejected = 0;     // permanently removed flappers
    uint32_t handshake_failures = 0;  // sum over workers
    uint32_t links_lost = 0;
    uint32_t reconnects = 0;
    uint32_t quarantines = 0;
    uint64_t units_dispatched = 0;    // units claimed by remote links
    uint64_t units_completed = 0;
    uint64_t units_redispatched = 0;  // worker failures -> requeued units
    /// Placement-gate refusals: times a remote link passed over a campaign
    /// because the predicted unit wall was below the link's shipping
    /// overhead (counted per evaluation, so this grows while links idle).
    uint64_t units_skipped_cost = 0;
    /// Mean shipping-overhead EWMA across links that completed a unit.
    double overhead_ewma_seconds = 0.0;
    /// One entry per configured worker, index-aligned with
    /// RemoteOptions::workers.
    std::vector<RemoteWorkerStats> workers;
};

}  // namespace eraser::core
