// Fault-list sharding for parallel campaigns: partitions the fault universe
// into K independent sub-campaigns, one ConcurrentSim each. Faults are
// mutually independent in concurrent fault simulation (every fault diverges
// from the same good network), so any partition yields bit-identical
// per-fault verdicts; sharding only changes how the work is spread over
// engines and threads.
//
// Two policies:
//  * RoundRobin    — fault i goes to shard i mod K; good enough when fault
//                    costs are uniform.
//  * CostBalanced  — greedy LPT assignment keyed off an estimated per-fault
//                    cost: the fault site's RTL fan-out plus the VDG size of
//                    every behavioral node the site feeds. Faults on
//                    high-fan-out control signals dominate campaign time, so
//                    balancing their spread cuts the longest-shard tail.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fault/fault.h"
#include "rtl/design.h"

namespace eraser::core {

enum class ShardPolicy : uint8_t { RoundRobin, CostBalanced };

/// One shard of the fault list. `faults[i]` is the global fault
/// `global_ids[i]`; global_ids is strictly ascending so every engine sees
/// its faults in the same relative order as the unsharded campaign.
struct Shard {
    std::vector<fault::Fault> faults;
    std::vector<uint32_t> global_ids;
    uint64_t est_cost = 0;
};

/// Estimated simulation cost of each fault: 1 + |RTL fan-out of the site| +
/// the summed VDG weight of every behavioral node reading or clocked by the
/// site. The VDG weights come from `behavior_vdg_weights`.
[[nodiscard]] std::vector<uint64_t> estimate_fault_costs(
    const rtl::Design& design, std::span<const fault::Fault> faults);

/// Per-behavior weight used by the cost model: 1 + number of VDG nodes
/// (decision + dependency) of the behavior's visibility dependency graph.
[[nodiscard]] std::vector<uint64_t> behavior_vdg_weights(
    const rtl::Design& design);

/// Partitions `faults` into at most `num_shards` non-empty shards under
/// `policy`. Deterministic: identical inputs give identical shards.
/// `costs` optionally supplies precomputed estimate_fault_costs() output
/// (parallel to `faults`) so sweeps over many shard counts build the
/// per-behavior VDGs once; pass nullptr to compute internally. Shard
/// est_cost is always reported in estimated-cost units, under either
/// policy.
[[nodiscard]] std::vector<Shard> make_shards(
    const rtl::Design& design, std::span<const fault::Fault> faults,
    uint32_t num_shards, ShardPolicy policy,
    const std::vector<uint64_t>* costs = nullptr);

}  // namespace eraser::core
