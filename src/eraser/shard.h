// Fault-list sharding for parallel campaigns: partitions the fault universe
// into K independent sub-campaigns, one ConcurrentSim each. Faults are
// mutually independent in concurrent fault simulation (every fault diverges
// from the same good network), so any partition yields bit-identical
// per-fault verdicts; sharding only changes how the work is spread over
// engines and threads.
//
// Two policies:
//  * RoundRobin    — fault i goes to shard i mod K; good enough when fault
//                    costs are uniform.
//  * CostBalanced  — greedy LPT assignment keyed off an estimated per-fault
//                    cost: the fault site's RTL fan-out plus the VDG size of
//                    every behavioral node the site feeds. Faults on
//                    high-fan-out control signals dominate campaign time, so
//                    balancing their spread cuts the longest-shard tail.
//
// The cost model lives in core::CompiledDesign (built once, shared by every
// campaign of a Session); the design-taking entry points that recompute it
// per call survive only as deprecated wrappers.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "fault/fault.h"
#include "rtl/design.h"

/// Deprecation marker for the pre-Session free-function API. TUs that
/// intentionally exercise the legacy surface (compat tests) define
/// ERASER_ALLOW_LEGACY_API before any eraser include to stay warning-free;
/// everyone else gets [[deprecated]] steering them to Session/CompiledDesign.
#if defined(ERASER_ALLOW_LEGACY_API)
#define ERASER_DEPRECATED(msg)
#else
#define ERASER_DEPRECATED(msg) [[deprecated(msg)]]
#endif

namespace eraser::cfg {
class Vdg;
}  // namespace eraser::cfg

namespace eraser::core {

class CompiledDesign;

enum class ShardPolicy : uint8_t { RoundRobin, CostBalanced };

/// One shard of the fault list. `faults[i]` is the global fault
/// `global_ids[i]`; global_ids is strictly ascending so every engine sees
/// its faults in the same relative order as the unsharded campaign.
struct Shard {
    std::vector<fault::Fault> faults;
    std::vector<uint32_t> global_ids;
    uint64_t est_cost = 0;
    /// Stimulus-epoch window [epoch_begin, epoch_end) this shard covers —
    /// the second dimension of 2D (fault, epoch) packing. Classic
    /// one-dimensional shards cover [0, 1), i.e. the whole (single-epoch)
    /// stimulus; under an epoch split the same fault appears in one shard
    /// per window and the merge ORs the window verdicts back together.
    uint32_t epoch_begin = 0;
    uint32_t epoch_end = 1;
};

/// Cost-model weight of one behavior from its already-built VDG: 1 +
/// number of VDG nodes (decision + dependency). The single definition of
/// the weight formula — both the per-call path below and CompiledDesign's
/// cache go through it.
[[nodiscard]] uint64_t behavior_vdg_weight(const cfg::Vdg& vdg);

/// Per-behavior weights, building each CFG/VDG on the fly.
/// CompiledDesign::behavior_weights() is the cached equivalent.
[[nodiscard]] std::vector<uint64_t> behavior_vdg_weights(
    const rtl::Design& design);

/// Folds per-behavior weights into the per-signal fault cost: 1 + |RTL
/// fan-out of the signal| + the summed weight of every behavioral node
/// reading or clocked by it. Shared by estimate_fault_costs and
/// CompiledDesign's cached model.
[[nodiscard]] std::vector<uint64_t> signal_fault_costs(
    const rtl::Design& design, std::span<const uint64_t> behavior_weights);

/// Estimated simulation cost of each fault. Rebuilds the per-behavior VDGs
/// on every call — CompiledDesign::fault_costs() is the compile-once
/// replacement.
[[nodiscard]] std::vector<uint64_t> estimate_fault_costs(
    const rtl::Design& design, std::span<const fault::Fault> faults);

/// Partitions `faults` into at most `num_shards` non-empty shards under
/// `policy`, with `costs` (parallel to `faults`) supplying the per-fault
/// cost estimates. Deterministic: identical inputs give identical shards.
/// Shard est_cost is always reported in estimated-cost units, under either
/// policy.
[[nodiscard]] std::vector<Shard> make_shards(
    std::span<const fault::Fault> faults, std::span<const uint64_t> costs,
    uint32_t num_shards, ShardPolicy policy);

/// Partitions `faults` using the CompiledDesign's cached cost model — the
/// primary entry point; a sweep over shard counts never recomputes costs.
[[nodiscard]] std::vector<Shard> make_shards(
    const CompiledDesign& compiled, std::span<const fault::Fault> faults,
    uint32_t num_shards, ShardPolicy policy);

/// Packer hook for make_shards_grouped: given the fault list and its costs,
/// returns the fault order (a permutation of [0, faults.size())) that unit
/// chunking consumes — consecutive runs of the returned order share a
/// 64-lane unit. The seam lets a learned packer cluster control-correlated
/// faults (similar lane-deferral rates, see core::CostModel) into the same
/// unit so the superword pass defers less. Verdicts are
/// partition-independent regardless of the order returned.
using GroupPacker = std::function<std::vector<uint32_t>(
    std::span<const fault::Fault>, std::span<const uint64_t>)>;

/// Group-aware partition for batched (FaultBatching::Word) campaigns: the
/// LPT balances 64-lane *groups*, not individual faults. Faults are first
/// packed into units of at most 64 (cost-balanced packing under
/// CostBalanced, consecutive chunks under RoundRobin; the unit width
/// shrinks below 64 when the requested shard count needs more units than
/// full groups exist), then whole units are assigned to shards. Shards thus
/// receive lane-aligned work: at most one partial group each instead of a
/// ragged remainder per shard, which is what the engine's superword pass
/// packs against. A non-null `packer` overrides the policy's fault order
/// for unit chunking (unit-to-shard assignment is unchanged). Verdicts are
/// partition-independent as always.
[[nodiscard]] std::vector<Shard> make_shards_grouped(
    std::span<const fault::Fault> faults, std::span<const uint64_t> costs,
    uint32_t num_shards, ShardPolicy policy,
    const GroupPacker& packer = nullptr);
[[nodiscard]] std::vector<Shard> make_shards_grouped(
    const CompiledDesign& compiled, std::span<const fault::Fault> faults,
    uint32_t num_shards, ShardPolicy policy,
    const GroupPacker& packer = nullptr);

/// 2D (fault, epoch) partition step: replicates fault-dimension shards
/// across `splits` contiguous, balanced windows of the stimulus's
/// [0, num_epochs) epoch axis. Each input shard becomes one output shard
/// per window (same faults/global_ids, window stamped, est_cost scaled by
/// the window's epoch share); with splits <= 1 the input shards are
/// returned stamped with the full window [0, num_epochs). Window w covers
/// epochs [w*E/S, (w+1)*E/S) — deterministic, ascending, never empty for
/// splits <= num_epochs (splits is clamped to num_epochs).
[[nodiscard]] std::vector<Shard> replicate_epoch_windows(
    std::vector<Shard> fault_shards, uint32_t num_epochs, uint32_t splits);

/// Deprecated pre-Session entry point: recomputes the cost model per call
/// (or trusts a caller-maintained `costs` pointer). Delegates to the
/// span-based overloads above.
ERASER_DEPRECATED(
    "use make_shards(const CompiledDesign&, ...) — the cached cost model "
    "replaces the raw costs pointer")
[[nodiscard]] std::vector<Shard> make_shards(
    const rtl::Design& design, std::span<const fault::Fault> faults,
    uint32_t num_shards, ShardPolicy policy,
    const std::vector<uint64_t>* costs = nullptr);

}  // namespace eraser::core
