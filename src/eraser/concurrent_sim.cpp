#include "eraser/concurrent_sim.h"

#include <algorithm>
#include <cassert>

#include "cfg/cfg.h"
#include "eraser/compiled_design.h"
#include "sim/interp.h"
#include "util/diagnostics.h"

namespace eraser::core {

using fault::DivergenceList;
using fault::FaultId;
using rtl::ArrayId;
using rtl::BehavId;
using rtl::BehavNode;
using rtl::Design;
using rtl::NodeId;
using rtl::SignalId;

namespace {
constexpr int kMaxSettleRounds = 4096;
}  // namespace

// SmallMap (eraser/small_map.h) backs both the scalar Activations below and
// the batched lane activations.
using detail::ArrKey;
using detail::SmallMap;

/// Per-activation result of one behavioral execution (good or faulty).
struct ConcurrentSim::Activation {
    SmallMap<SignalId, Value> blocking;
    SmallMap<ArrKey, uint64_t> arr_blocking;
    std::vector<std::pair<SignalId, Value>> nba;
    std::vector<std::tuple<ArrayId, uint64_t, uint64_t>> arr_nba;

    void clear() {
        blocking.clear();
        arr_blocking.clear();
        nba.clear();
        arr_nba.clear();
    }
    [[nodiscard]] bool same_writes(const Activation& other) const {
        return blocking == other.blocking &&
               arr_blocking == other.arr_blocking && nba == other.nba &&
               arr_nba == other.arr_nba;
    }
};

/// One faulty execution's result, pooled across activations (the Activation
/// keeps its buffer capacity between reuses).
struct ConcurrentSim::FaultRun {
    FaultId f = 0;
    Activation act;
};

/// Per-candidate pre-activation views of every target the good execution
/// wrote (see the commit phase of process_behavior). Pooled like FaultRun.
struct ConcurrentSim::PreView {
    FaultId f = 0;
    std::vector<Value> sig_views;      // parallel to good blocking writes
    std::vector<uint64_t> arr_views;   // parallel to good array writes
};

/// Reused scratch for the NBA record phase of process_behavior.
struct ConcurrentSim::NbaScratch {
    SmallMap<SignalId, Value> sig_last;     // one run's last NBA value/sig
    SmallMap<ArrKey, uint64_t> arr_last;    // one run's last NBA value/elem
    std::vector<SignalId> good_sigs;        // sorted good NBA targets
    std::vector<ArrKey> good_keys;          // sorted good array NBA targets
    // Lane-run equivalents: last NBA write per target as an index into the
    // lane act's record list (the cell is shared by every surviving lane).
    SmallMap<SignalId, uint32_t> lane_sig_last;
    SmallMap<ArrKey, uint32_t> lane_arr_last;
};

/// Good-network evaluation context: reads the activation overlay then global
/// good state; buffers writes in the activation.
class ConcurrentSim::GoodCtx final : public sim::EvalContext {
  public:
    GoodCtx(ConcurrentSim& sim, Activation& act) : sim_(sim), act_(act) {}

    Value read_signal(SignalId sig) override {
        if (const Value* v = act_.blocking.find(sig)) return *v;
        return sim_.good_values_[sig];
    }
    Value read_array(ArrayId arr, uint64_t idx) override {
        if (const uint64_t* v = act_.arr_blocking.find({arr, idx})) {
            return Value(*v, sim_.design_.arrays[arr].width);
        }
        return read_array_unwritten(arr, idx);
    }
    Value read_signal_unwritten(SignalId sig) override {
        return sim_.good_values_[sig];
    }
    Value read_array_unwritten(ArrayId arr, uint64_t idx) override {
        const auto& storage = sim_.good_arrays_[arr];
        return Value(idx < storage.size() ? storage[idx] : 0,
                     sim_.design_.arrays[arr].width);
    }
    void write_signal(SignalId sig, Value v, bool nonblocking) override {
        if (nonblocking) {
            act_.nba.emplace_back(sig, v);
        } else {
            act_.blocking.upsert(sig, v);
        }
    }
    void write_array(ArrayId arr, uint64_t idx, Value v,
                     bool nonblocking) override {
        if (nonblocking) {
            act_.arr_nba.emplace_back(arr, idx, v.bits());
        } else {
            act_.arr_blocking.upsert({arr, idx}, v.bits());
        }
    }
    Value read_for_nba_update(SignalId sig) override {
        for (auto it = act_.nba.rbegin(); it != act_.nba.rend(); ++it) {
            if (it->first == sig) return it->second;
        }
        return read_signal(sig);
    }

  private:
    ConcurrentSim& sim_;
    Activation& act_;
};

/// Faulty-network evaluation context: reads the fault's activation overlay,
/// then the fault's global view (divergence entry or good value).
class ConcurrentSim::FaultCtx final : public sim::EvalContext {
  public:
    FaultCtx(ConcurrentSim& sim, Activation& act, FaultId f)
        : sim_(sim), act_(act), fault_(f) {}

    Value read_signal(SignalId sig) override {
        if (const Value* v = act_.blocking.find(sig)) return *v;
        return sim_.fault_view(sig, fault_);
    }
    Value read_array(ArrayId arr, uint64_t idx) override {
        if (const uint64_t* v = act_.arr_blocking.find({arr, idx})) {
            return Value(*v, sim_.design_.arrays[arr].width);
        }
        return read_array_unwritten(arr, idx);
    }
    Value read_signal_unwritten(SignalId sig) override {
        return sim_.fault_view(sig, fault_);
    }
    Value read_array_unwritten(ArrayId arr, uint64_t idx) override {
        return Value(sim_.fault_array_view(arr, idx, fault_),
                     sim_.design_.arrays[arr].width);
    }
    void write_signal(SignalId sig, Value v, bool nonblocking) override {
        if (nonblocking) {
            act_.nba.emplace_back(sig, v);
        } else {
            act_.blocking.upsert(sig, v);
        }
    }
    void write_array(ArrayId arr, uint64_t idx, Value v,
                     bool nonblocking) override {
        if (nonblocking) {
            act_.arr_nba.emplace_back(arr, idx, v.bits());
        } else {
            act_.arr_blocking.upsert({arr, idx}, v.bits());
        }
    }
    Value read_for_nba_update(SignalId sig) override {
        for (auto it = act_.nba.rbegin(); it != act_.nba.rend(); ++it) {
            if (it->first == sig) return it->second;
        }
        return read_signal(sig);
    }

  private:
    ConcurrentSim& sim_;
    Activation& act_;
    FaultId fault_;
};

/// Lane-group evaluation context of the superword pass: the lane-vector
/// analogue of FaultCtx. Reads resolve through the activation's lane
/// overlay, then each lane's global view (block-store entry or good value);
/// writes buffer lane cells in the LaneAct.
class ConcurrentSim::BatchLaneCtx final : public sim::LaneEvalContext {
  public:
    BatchLaneCtx(ConcurrentSim& sim, LaneAct& act, uint32_t g)
        : sim_(sim), act_(act), g_(g) {}

    void read_signal(SignalId sig, uint64_t lanes, sim::LaneCell& cell,
                     uint64_t* plane) override {
        if (const LaneStoredCell* own = act_.find_sig(sig)) {
            own->load(lanes, cell, plane);
            return;
        }
        read_signal_unwritten(sig, lanes, cell, plane);
    }
    void read_signal_unwritten(SignalId sig, uint64_t lanes,
                               sim::LaneCell& cell,
                               uint64_t* plane) override {
        cell.base = sim_.good_values_[sig];
        const fault::DivergenceBlockStore& store = sim_.bsig_div_[sig];
        uint64_t m = store.mask(g_) & lanes;
        cell.dmask = m;
        if (m != 0) {
            const fault::DivergenceBlock* blk = store.block(g_);
            while (m != 0) {
                const uint32_t l =
                    static_cast<uint32_t>(std::countr_zero(m));
                m &= m - 1;
                plane[l] = blk->bits[l];
            }
        }
    }
    void read_array(ArrayId arr, const sim::LaneCell& idx,
                    const uint64_t* idx_plane, uint64_t lanes,
                    sim::LaneCell& out, uint64_t* out_plane) override {
        do_read_array(arr, idx, idx_plane, lanes, out, out_plane, true);
    }
    void read_array_unwritten(ArrayId arr, const sim::LaneCell& idx,
                              const uint64_t* idx_plane, uint64_t lanes,
                              sim::LaneCell& out,
                              uint64_t* out_plane) override {
        do_read_array(arr, idx, idx_plane, lanes, out, out_plane, false);
    }
    void write_signal(SignalId sig, const sim::LaneCell& cell,
                      const uint64_t* plane, bool nonblocking) override {
        if (nonblocking) {
            act_.nba.emplace_back(sig, LaneStoredCell{});
            act_.nba.back().second.store(cell, plane);
            return;
        }
        if (const uint32_t* i = act_.sig_idx.find(sig)) {
            act_.sigs[*i].second.store(cell, plane);
            return;
        }
        act_.sig_idx.upsert(sig, static_cast<uint32_t>(act_.sigs.size()));
        act_.sigs.emplace_back(sig, LaneStoredCell{});
        act_.sigs.back().second.store(cell, plane);
    }
    void write_array(ArrayId arr, uint64_t idx, const sim::LaneCell& cell,
                     const uint64_t* plane, bool nonblocking) override {
        const ArrKey key{arr, idx};
        if (nonblocking) {
            act_.arr_nba.emplace_back(key, LaneStoredCell{});
            act_.arr_nba.back().second.store(cell, plane);
            return;
        }
        if (const uint32_t* i = act_.arr_idx.find(key)) {
            act_.arrs[*i].second.store(cell, plane);
            return;
        }
        act_.arr_idx.upsert(key, static_cast<uint32_t>(act_.arrs.size()));
        act_.arrs.emplace_back(key, LaneStoredCell{});
        act_.arrs.back().second.store(cell, plane);
    }
    void read_for_nba_update(SignalId sig, uint64_t lanes,
                             sim::LaneCell& cell, uint64_t* plane) override {
        for (auto it = act_.nba.rbegin(); it != act_.nba.rend(); ++it) {
            if (it->first == sig) {
                it->second.load(lanes, cell, plane);
                return;
            }
        }
        read_signal(sig, lanes, cell, plane);
    }

  private:
    void do_read_array(ArrayId arr, const sim::LaneCell& idx,
                       const uint64_t* idx_plane, uint64_t lanes,
                       sim::LaneCell& out, uint64_t* out_plane,
                       bool overlay) {
        const unsigned w = sim_.design_.arrays[arr].width;
        const uint64_t base_idx = idx.base.bits();
        // Lanes that can differ from base: index divergence, global array
        // divergence, or any lane-divergent overlay write to this array.
        uint64_t own_dmask = 0;
        if (overlay && !act_.arrs.empty()) {
            for (const auto& [key, cell] : act_.arrs) {
                if (key.first == arr) own_dmask |= cell.dmask;
            }
        }
        uint64_t base_bits;
        const LaneStoredCell* own_base =
            overlay ? act_.find_arr({arr, base_idx}) : nullptr;
        if (own_base != nullptr) {
            base_bits = own_base->base.bits();
        } else {
            const auto& storage = sim_.good_arrays_[arr];
            base_bits = base_idx < storage.size() ? storage[base_idx] : 0;
        }
        out.base = Value(base_bits, w);
        uint64_t cand =
            (idx.dmask | sim_.arr_div_mask_[arr][g_] | own_dmask) & lanes;
        uint64_t out_mask = 0;
        while (cand != 0) {
            const uint32_t l = static_cast<uint32_t>(std::countr_zero(cand));
            cand &= cand - 1;
            const uint64_t idx_l =
                (idx.dmask >> l) & 1 ? idx_plane[l] : base_idx;
            uint64_t v;
            const LaneStoredCell* own =
                overlay ? act_.find_arr({arr, idx_l}) : nullptr;
            if (own != nullptr) {
                v = own->lane_bits(l);
            } else {
                v = sim_.fault_array_view(arr, idx_l,
                                          fault::fault_id(g_, l));
            }
            if (v != base_bits) {
                out_mask |= uint64_t{1} << l;
                out_plane[l] = v;
            }
        }
        out.dmask = out_mask;
    }

    ConcurrentSim& sim_;
    LaneAct& act_;
    uint32_t g_;
};

ConcurrentSim::ConcurrentSim(const Design& design,
                             std::span<const fault::Fault> faults,
                             const EngineOptions& opts)
    : ConcurrentSim(CompiledDesign::build(design), faults, opts) {}

ConcurrentSim::ConcurrentSim(std::shared_ptr<const CompiledDesign> owned,
                             std::span<const fault::Fault> faults,
                             const EngineOptions& opts)
    : ConcurrentSim(*owned, faults, opts) {
    owned_compiled_ = std::move(owned);
}

ConcurrentSim::ConcurrentSim(const CompiledDesign& compiled,
                             std::span<const fault::Fault> faults,
                             const EngineOptions& opts)
    : compiled_(compiled),
      design_(compiled.design()),
      faults_(faults.begin(), faults.end()),
      opts_(opts),
      vm_(compiled.design()) {
    const Design& design = design_;
    good_values_.reserve(design.signals.size());
    for (const auto& s : design.signals) {
        good_values_.emplace_back(0, s.width);
    }
    good_arrays_.reserve(design.arrays.size());
    for (const auto& a : design.arrays) {
        good_arrays_.emplace_back(a.size, uint64_t{0});
    }
    batched_ = opts.batching == FaultBatching::Word;
    lane_exec_ = batched_ && opts.interp == sim::InterpMode::Bytecode;
    groups_ = fault::num_groups(faults_.size());
    arr_div_.resize(design.arrays.size());
    pins_.resize(design.signals.size());
    for (FaultId f = 0; f < faults_.size(); ++f) {
        pins_[faults_[f].sig].push_back(f);
    }
    edge_prev_good_.assign(design.signals.size(), 0);
    if (batched_) {
        bsig_div_.resize(design.signals.size());
        bedge_prev_div_.resize(design.signals.size());
        for (auto& s : bsig_div_) s.reset(groups_);
        for (auto& s : bedge_prev_div_) s.reset(groups_);
        arr_div_mask_.assign(design.arrays.size(),
                             std::vector<uint64_t>(groups_, 0));
        pin_mask_.resize(design.signals.size());
        for (rtl::SignalId sig = 0; sig < design.signals.size(); ++sig) {
            if (pins_[sig].empty()) continue;
            pin_mask_[sig].assign(groups_, 0);
            for (FaultId f : pins_[sig]) {
                pin_mask_[sig][fault::group_of(f)] |=
                    fault::lane_bit(fault::lane_of(f));
            }
        }
        detected_mask_.assign(groups_, 0);
        scr_vis_sig_.assign(groups_, 0);
        scr_vis_arr_.assign(groups_, 0);
        scr_cand_mask_.assign(groups_, 0);
        scr_exec_mask_.assign(groups_, 0);
        scr_lane_idx_.assign(faults_.size(), UINT32_MAX);
    } else {
        sig_div_.resize(design.signals.size());
        edge_prev_div_.resize(design.signals.size());
    }

    scr_good_act_ = std::make_unique<Activation>();
    scr_shadow_act_ = std::make_unique<Activation>();
    scr_nba_ = std::make_unique<NbaScratch>();
    scr_fact_of_.assign(faults_.size(), nullptr);
    scr_pre_idx_.assign(faults_.size(), UINT32_MAX);
    scr_mark_.assign(faults_.size(), 0);
    nba_pending_.assign(faults_.size(), 0);

    const size_t num_elems = design.nodes.size() + design.behaviors.size();
    in_queue_.assign(num_elems, false);
    rank_buckets_.resize(design.rank_levels());
    detected_.assign(faults_.size(), false);
}

ConcurrentSim::~ConcurrentSim() = default;

uint64_t ConcurrentSim::fault_array_view(ArrayId arr, uint64_t idx,
                                         FaultId f) const {
    const auto fit = arr_div_[arr].find(f);
    if (fit != arr_div_[arr].end()) {
        const auto eit = fit->second.find(idx);
        if (eit != fit->second.end()) return eit->second;
    }
    const auto& storage = good_arrays_[arr];
    return idx < storage.size() ? storage[idx] : 0;
}

Value ConcurrentSim::peek_fault(SignalId sig, FaultId f) const {
    return fault_view(sig, f);
}

void ConcurrentSim::poke(SignalId sig, uint64_t value) {
    commit_good_signal(sig, Value(value, design_.signals[sig].width));
}

void ConcurrentSim::load_array(ArrayId arr, std::span<const uint64_t> words) {
    auto& storage = good_arrays_[arr];
    const uint64_t mask = Value::mask(design_.arrays[arr].width);
    for (size_t i = 0; i < words.size() && i < storage.size(); ++i) {
        storage[i] = words[i] & mask;
    }
    for (BehavId b : design_.arrays[arr].reader_behavs) {
        schedule_element(static_cast<uint32_t>(design_.nodes.size()) + b);
    }
}

void ConcurrentSim::commit_good_signal(SignalId sig, Value v) {
    const Value old = good_values_[sig];
    const bool changed = old != v;
    if (changed) {
        good_values_[sig] = v;
        schedule_signal_fanout(sig);
    }
    // Re-assert pins. A fault with no recorded divergence follows the good
    // network exactly, so its unpinned bits must track the *new* good value
    // (basing them on a possibly-stale entry would freeze an intermediate
    // value). An entry that is anything other than the pin shadow of the
    // *previous* good value is the fault's own written divergence — leave it
    // alone: the fault is a candidate at this signal's writer and gets
    // reconciled right after this commit. (Clobbering it here used to
    // ping-pong with that reconcile and blow the settle limit whenever a
    // pinned signal's faulty value also diverged on unpinned bits.)
    for (FaultId f : pins_[sig]) {
        if (detected_[f]) continue;
        const Value pinned = apply_pin(f, sig, v);
        if (batched_) {
            const uint32_t g = fault::group_of(f);
            const uint32_t l = fault::lane_of(f);
            const uint64_t* existing = bsig_div_[sig].find(g, l);
            if (existing != nullptr &&
                *existing != apply_pin(f, sig, old).bits()) {
                continue;
            }
            if (pinned != v) {
                if (bsig_div_[sig].set(g, l, pinned.bits()) && !changed) {
                    schedule_signal_fanout(sig);
                }
            } else if (bsig_div_[sig].erase(g, l) && !changed) {
                schedule_signal_fanout(sig);
            }
            continue;
        }
        const Value* existing = sig_div_[sig].find(f);
        if (existing != nullptr && *existing != apply_pin(f, sig, old)) {
            continue;
        }
        if (pinned != v) {
            if (sig_div_[sig].set(f, pinned) && !changed) {
                schedule_signal_fanout(sig);
            }
        } else if (sig_div_[sig].erase(f) && !changed) {
            schedule_signal_fanout(sig);
        }
    }
}

void ConcurrentSim::commit_good_array(ArrayId arr, uint64_t idx,
                                      uint64_t val) {
    auto& storage = good_arrays_[arr];
    if (idx >= storage.size()) return;
    const uint64_t masked = val & Value::mask(design_.arrays[arr].width);
    if (storage[idx] == masked) return;
    storage[idx] = masked;
    for (BehavId b : design_.arrays[arr].reader_behavs) {
        schedule_element(static_cast<uint32_t>(design_.nodes.size()) + b);
    }
}

void ConcurrentSim::reconcile_array(FaultId f, ArrayId arr, uint64_t idx,
                                    uint64_t fault_val) {
    const auto& storage = good_arrays_[arr];
    const uint64_t good = idx < storage.size() ? storage[idx] : 0;
    auto& per_fault = arr_div_[arr];
    bool changed = false;
    if (fault_val != good) {
        auto& overlay = per_fault[f];
        auto it = overlay.find(idx);
        if (it == overlay.end() || it->second != fault_val) {
            overlay[idx] = fault_val;
            changed = true;
        }
        if (batched_) {
            arr_div_mask_[arr][fault::group_of(f)] |=
                fault::lane_bit(fault::lane_of(f));
        }
    } else {
        auto fit = per_fault.find(f);
        if (fit != per_fault.end() && fit->second.erase(idx) > 0) {
            if (fit->second.empty()) {
                per_fault.erase(fit);
                if (batched_) {
                    arr_div_mask_[arr][fault::group_of(f)] &=
                        ~fault::lane_bit(fault::lane_of(f));
                }
            }
            changed = true;
        }
    }
    if (changed) {
        for (BehavId b : design_.arrays[arr].reader_behavs) {
            schedule_element(static_cast<uint32_t>(design_.nodes.size()) + b);
        }
    }
}

void ConcurrentSim::comb_propagate() {
    int batches = 0;
    for (;;) {
        uint32_t r = lowest_dirty_rank_;
        while (r < rank_buckets_.size() && rank_buckets_[r].empty()) ++r;
        if (r >= rank_buckets_.size()) break;
        lowest_dirty_rank_ = r;
        // Double-buffer with the member scratch so both vectors keep their
        // capacity across drains (no per-batch allocation).
        scr_batch_.clear();
        scr_batch_.swap(rank_buckets_[r]);
        for (uint32_t e : scr_batch_) {
            in_queue_[e] = false;
            if (e < design_.nodes.size()) {
                eval_rtl_node(e);
            } else {
                eval_comb_behavior(
                    static_cast<BehavId>(e - design_.nodes.size()));
            }
        }
        if (++batches > kMaxSettleRounds * 64) {
            throw SimError("combinational loop did not converge (concurrent)");
        }
    }
    lowest_dirty_rank_ = static_cast<uint32_t>(rank_buckets_.size());
}

void ConcurrentSim::eval_rtl_node(NodeId n_id) {
    if (batched_) {
        beval_rtl_node(n_id);
        return;
    }
    TimeAccumulator::Section section(stats_.time_rtl, opts_.time_phases);
    const rtl::RtlNode& n = design_.nodes[n_id];
    const unsigned out_w = design_.signals[n.output].width;
    ++stats_.rtl_good_evals;

    // Candidates: entries on inputs (divergent sources), pre-commit entries
    // on the output (stale state, re-derived or cleared below), and faults
    // pinned on the output (their entries are rebuilt wholesale, so the
    // pin shadow must be re-derived here too).
    std::vector<FaultId>& candidates = scr_rtl_candidates_;
    candidates.clear();
    for (SignalId in : n.inputs) {
        for (const auto& e : sig_div_[in].entries()) {
            if (!detected_[e.fault]) candidates.push_back(e.fault);
        }
    }
    for (const auto& e : sig_div_[n.output].entries()) {
        if (!detected_[e.fault]) candidates.push_back(e.fault);
    }
    for (FaultId f : pins_[n.output]) {
        if (!detected_[f]) candidates.push_back(f);
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());

    // Good evaluation. Operands go through the reused scratch buffer — RTL
    // nodes are already flat (one op each), so this plus the buffer IS the
    // compiled form; no tree remains to bytecode-compile.
    std::vector<Value>& vals = scr_vals_;
    const size_t num_inputs = n.inputs.size();
    Value good_out;
    if (n.op == rtl::Op::Const) {
        good_out = n.cval.resized(out_w);
    } else {
        vals.clear();
        for (SignalId in : n.inputs) vals.push_back(good_values_[in]);
        good_out = rtl::eval_op(n.op, vals, out_w, n.imm);
    }
    commit_good_signal(n.output, good_out);
    const Value good_new = good_values_[n.output];

    if (candidates.empty()) return;

    // Faulty evaluations. Candidates ascend and every divergence list is
    // sorted by fault, so one cursor per input replaces per-fault binary
    // searches, and the output list is rebuilt in a single pass instead of
    // per-fault set/erase (which memmoved the tail on every insertion).
    scr_cursors_.assign(num_inputs, 0);
    auto& rebuilt = scr_entries_;
    rebuilt.clear();
    // Pins on the output are rare; skipping apply_pin outright avoids a
    // scattered faults_[f] load per candidate on the vast majority of nodes.
    const bool output_pinned = !pins_[n.output].empty();
    for (FaultId f : candidates) {
        ++stats_.rtl_fault_evals;
        Value fault_out;
        if (n.op == rtl::Op::Const) {
            fault_out = n.cval.resized(out_w);
        } else {
            vals.clear();
            for (size_t i = 0; i < num_inputs; ++i) {
                const auto& ent = sig_div_[n.inputs[i]].entries();
                uint32_t& c = scr_cursors_[i];
                while (c < ent.size() && ent[c].fault < f) ++c;
                vals.push_back(c < ent.size() && ent[c].fault == f
                                   ? ent[c].value
                                   : good_values_[n.inputs[i]]);
            }
            fault_out = rtl::eval_op(n.op, vals, out_w, n.imm);
        }
        if (output_pinned) fault_out = apply_pin(f, n.output, fault_out);
        if (fault_out != good_new) {
            rebuilt.push_back({f, fault_out});
        }
    }
    DivergenceList& out_div = sig_div_[n.output];
    if (rebuilt != out_div.entries()) {
        out_div.swap_entries(rebuilt);
        schedule_signal_fanout(n.output);
    }
}

void ConcurrentSim::collect_candidates(const BehavNode& behav,
                                       std::vector<FaultId>& out) const {
    out.clear();
    if (batched_) {
        // Candidate collection over masks: one word OR per (signal, group)
        // instead of walking entry lists, then a single expansion pass. The
        // expansion ascends (groups ascending, lanes ascending), so the
        // output is already sorted and unique.
        for (uint32_t g = 0; g < groups_; ++g) {
            uint64_t m = group_sig_mask(behav.reads, g) |
                         group_sig_mask(behav.writes, g) |
                         group_arr_mask(behav.array_reads, g) |
                         group_arr_mask(behav.array_writes, g);
            m &= ~detected_mask_[g];
            expand_mask(m, g, out);
        }
        return;
    }
    auto take_signal = [&](SignalId sig) {
        for (const auto& e : sig_div_[sig].entries()) {
            if (!detected_[e.fault]) out.push_back(e.fault);
        }
    };
    for (SignalId sig : behav.reads) take_signal(sig);
    for (SignalId sig : behav.writes) take_signal(sig);
    auto take_array = [&](ArrayId arr) {
        for (const auto& [f, overlay] : arr_div_[arr]) {
            if (!detected_[f] && !overlay.empty()) out.push_back(f);
        }
    };
    for (ArrayId arr : behav.array_reads) take_array(arr);
    for (ArrayId arr : behav.array_writes) take_array(arr);
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
}

void ConcurrentSim::eval_comb_behavior(BehavId b) {
    static const std::vector<FaultId> kNone;
    process_behavior(b, /*good_active=*/true, kNone, kNone);
}

void ConcurrentSim::exec_body(BehavId b, sim::EvalContext& ctx) {
    if (opts_.interp == sim::InterpMode::Bytecode) {
        vm_.exec(compiled_.body_programs()[b], ctx);
    } else if (design_.behaviors[b].body) {
        sim::exec_stmt(*design_.behaviors[b].body, design_, ctx);
    }
}

void ConcurrentSim::process_behavior(
    BehavId b, bool good_active, const std::vector<FaultId>& solo_active,
    const std::vector<FaultId>& missed) {
    TimeAccumulator::Section section(stats_.time_behavioral,
                                     opts_.time_phases);
    const BehavNode& behav = design_.behaviors[b];
    const cfg::Cfg& cfg = compiled_.cfgs()[b];
    const bool bytecode = opts_.interp == sim::InterpMode::Bytecode;

    // ---- candidate collection --------------------------------------------
    std::vector<FaultId>& candidates = scr_candidates_;
    collect_candidates(behav, candidates);
    auto contains = [](const std::vector<FaultId>& v, FaultId f) {
        return std::binary_search(v.begin(), v.end(), f);
    };
    for (FaultId f : solo_active) {
        if (!contains(candidates, f)) candidates.push_back(f);
    }
    for (FaultId f : missed) {
        if (!contains(candidates, f)) candidates.push_back(f);
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());

    // Normal candidates: activity follows the good network.
    std::vector<FaultId>& normal = scr_normal_;
    normal.clear();
    for (FaultId f : candidates) {
        if (!contains(solo_active, f) && !contains(missed, f)) {
            normal.push_back(f);
        }
    }
    if (!good_active) {
        // Fault-only activations: only solo faults execute here.
        normal.clear();
    }

    // ---- good execution fused with the redundancy walk --------------------
    Activation& good_act = *scr_good_act_;
    good_act.clear();
    std::vector<FaultId>& explicit_skip = scr_explicit_skip_;
    explicit_skip.clear();
    std::vector<FaultId>& implicit_alive = scr_implicit_alive_;
    implicit_alive.clear();   // survivors = implicit-redundant
    std::vector<FaultId>& to_execute = scr_to_execute_;
    to_execute.clear();

    if (good_active) {
        ++stats_.bn_good_execs;
        stats_.bn_candidates += normal.size() + solo_active.size();

        // Explicit filter (prior art): a fault whose read inputs are all
        // consistent with good executes identically — skip it.
        if (batched_) {
            // Visibility over masks: one word OR per (signal, group), one
            // bit test per candidate.
            for (uint32_t g = 0; g < groups_; ++g) {
                scr_vis_sig_[g] = group_sig_mask(behav.reads, g) |
                                  group_arr_mask(behav.array_reads, g);
            }
            for (FaultId f : normal) {
                const bool visible =
                    (scr_vis_sig_[fault::group_of(f)] &
                     fault::lane_bit(fault::lane_of(f))) != 0;
                if (opts_.mode != RedundancyMode::None && !visible) {
                    explicit_skip.push_back(f);
                } else if (opts_.mode == RedundancyMode::Full && visible) {
                    implicit_alive.push_back(f);
                } else {
                    to_execute.push_back(f);
                }
            }
        } else {
            // Only the read signals that carry any divergence at all can
            // make a fault visible; that subset is typically tiny, so
            // hoist it.
            std::vector<SignalId>& divergent_reads = scr_div_reads_;
            divergent_reads.clear();
            for (SignalId sig : behav.reads) {
                if (!sig_div_[sig].empty()) divergent_reads.push_back(sig);
            }
            std::vector<ArrayId>& divergent_arrays = scr_div_arrays_;
            divergent_arrays.clear();
            for (ArrayId arr : behav.array_reads) {
                if (!arr_div_[arr].empty()) divergent_arrays.push_back(arr);
            }
            // One pass over the divergence entries marks every visible
            // fault — this replaces a per-(fault, signal) binary-search
            // loop.
            for (SignalId sig : divergent_reads) {
                for (const auto& e : sig_div_[sig].entries()) {
                    if (scr_mark_[e.fault] == 0) {
                        scr_marked_.push_back(e.fault);
                    }
                    scr_mark_[e.fault] |= 1;
                }
            }
            for (ArrayId arr : divergent_arrays) {
                for (const auto& [f, overlay] : arr_div_[arr]) {
                    if (overlay.empty()) continue;
                    if (scr_mark_[f] == 0) scr_marked_.push_back(f);
                    scr_mark_[f] |= 1;
                }
            }
            for (FaultId f : normal) {
                const bool visible = scr_mark_[f] != 0;
                if (opts_.mode != RedundancyMode::None && !visible) {
                    explicit_skip.push_back(f);
                } else if (opts_.mode == RedundancyMode::Full && visible) {
                    implicit_alive.push_back(f);
                } else {
                    to_execute.push_back(f);
                }
            }
            for (FaultId f : scr_marked_) scr_mark_[f] = 0;
            scr_marked_.clear();
        }

        GoodCtx gctx(*this, good_act);
        if (!behav.body) {
            implicit_alive.clear();
        } else if (implicit_alive.empty()) {
            // No fused walk needed: run the whole body straight through
            // (the compiled body program and the CFG are equivalent).
            if (bytecode) {
                vm_.exec(compiled_.body_programs()[b], gctx);
            } else {
                cfg.execute(design_, gctx);
            }
        } else {
            // Fused walk (Algorithm 1): traverse the CFG, executing the good
            // path and pruning faults whose path or dependencies diverge.
            const cfg::CompiledCfg* ccfg =
                bytecode ? &compiled_.compiled_cfgs()[b] : nullptr;
            std::vector<SignalId>& node_div_reads = scr_node_div_reads_;
            std::vector<ArrayId>& node_div_arrays = scr_node_div_arrays_;
            // Visibility of fault f at the current node: bit 0 = divergent
            // signal read, bit 1 = divergent array read. Batched mode
            // answers from the per-group mask buffers, scalar mode from the
            // per-fault marks.
            auto vis_bits = [&](FaultId f) -> unsigned {
                if (batched_) {
                    const uint32_t g = fault::group_of(f);
                    const uint64_t bit = fault::lane_bit(fault::lane_of(f));
                    return ((scr_vis_sig_[g] & bit) != 0 ? 1u : 0u) |
                           ((scr_vis_arr_[g] & bit) != 0 ? 2u : 0u);
                }
                return scr_mark_[f];
            };
            uint32_t cur = cfg.entry;
            while (cur != cfg.exit) {
                const cfg::CfgNode& node = cfg.nodes[cur];
                // Hoist the divergence-carrying subset of the node's reads,
                // honoring the locally-written override: a signal the good
                // path already assigned in this activation is consistent for
                // every still-alive fault (their execution so far is
                // provably identical).
                bool any_vis = false;
                if (batched_) {
                    std::fill_n(scr_vis_sig_.begin(), groups_, uint64_t{0});
                    std::fill_n(scr_vis_arr_.begin(), groups_, uint64_t{0});
                    for (SignalId sig : node.reads) {
                        if (bsig_div_[sig].empty() ||
                            good_act.blocking.find(sig) != nullptr) {
                            continue;
                        }
                        for (uint32_t g = 0; g < groups_; ++g) {
                            scr_vis_sig_[g] |= bsig_div_[sig].mask(g);
                        }
                    }
                    for (ArrayId arr : node.array_reads) {
                        const auto& am = arr_div_mask_[arr];
                        for (uint32_t g = 0; g < groups_; ++g) {
                            scr_vis_arr_[g] |= am[g];
                        }
                    }
                    for (uint32_t g = 0; g < groups_ && !any_vis; ++g) {
                        any_vis = (scr_vis_sig_[g] | scr_vis_arr_[g]) != 0;
                    }
                } else {
                    node_div_reads.clear();
                    for (SignalId sig : node.reads) {
                        if (!sig_div_[sig].empty() &&
                            good_act.blocking.find(sig) == nullptr) {
                            node_div_reads.push_back(sig);
                        }
                    }
                    node_div_arrays.clear();
                    for (ArrayId arr : node.array_reads) {
                        if (!arr_div_[arr].empty()) {
                            node_div_arrays.push_back(arr);
                        }
                    }
                    // Mark visible faults in one pass over the divergence
                    // entries (bit 0: signal read, bit 1: array read)
                    // instead of per-(fault, signal) binary searches.
                    for (SignalId sig : node_div_reads) {
                        for (const auto& e : sig_div_[sig].entries()) {
                            if (scr_mark_[e.fault] == 0) {
                                scr_marked_.push_back(e.fault);
                            }
                            scr_mark_[e.fault] |= 1;
                        }
                    }
                    for (ArrayId arr : node_div_arrays) {
                        for (const auto& [f, overlay] : arr_div_[arr]) {
                            if (overlay.empty()) continue;
                            if (scr_mark_[f] == 0) scr_marked_.push_back(f);
                            scr_mark_[f] |= 2;
                        }
                    }
                    any_vis = !scr_marked_.empty();
                }
                if (node.kind == cfg::CfgNode::Kind::Segment) {
                    // Path dependency node: any visible read kills redundancy.
                    if (any_vis) {
                        std::erase_if(implicit_alive, [&](FaultId f) {
                            if (vis_bits(f) != 0) {
                                to_execute.push_back(f);
                                return true;
                            }
                            return false;
                        });
                    }
                    if (ccfg != nullptr) {
                        vm_.exec(ccfg->segments[cur], gctx);
                    } else {
                        for (const rtl::Stmt* a : node.assigns) {
                            sim::exec_assign(*a, design_, gctx);
                        }
                    }
                    cur = node.next;
                } else {
                    // Path decision node: evaluate under good and under each
                    // fault whose condition inputs are visible.
                    const size_t good_next =
                        ccfg != nullptr
                            ? vm_.select(ccfg->decisions[cur], gctx)
                            : cfg::Cfg::evaluate_decision(node, gctx);
                    if (!any_vis) {
                        cur = node.succs[good_next];
                        continue;
                    }
                    std::erase_if(implicit_alive, [&](FaultId f) {
                        const unsigned vis = vis_bits(f);
                        const bool need_eval = (vis & 1) != 0;
                        if (!need_eval) {
                            if ((vis & 2) != 0) {
                                // Conservative: divergent memory feeding
                                // a branch — treat as path divergence.
                                to_execute.push_back(f);
                                return true;
                            }
                            return false;
                        }
                        // FaultCtx over good_act: reads of locally-written
                        // signals see the good overlay (consistent for every
                        // still-alive fault by induction), everything else
                        // falls through to the fault's global view.
                        FaultCtx fctx(*this, good_act, f);
                        const size_t fault_next =
                            ccfg != nullptr
                                ? vm_.select(ccfg->decisions[cur], fctx)
                                : cfg::Cfg::evaluate_decision(node, fctx);
                        if (fault_next != good_next) {
                            to_execute.push_back(f);
                            return true;
                        }
                        return false;
                    });
                    cur = node.succs[good_next];
                }
                for (FaultId f : scr_marked_) scr_mark_[f] = 0;
                scr_marked_.clear();
            }
        }
    } else {
        stats_.bn_candidates += solo_active.size();
    }

    // ---- faulty executions -------------------------------------------------
    std::sort(to_execute.begin(), to_execute.end());
    // Pool of FaultRuns with live-prefix semantics: [0, scr_runs_used_) are
    // this activation's runs; reused entries keep their buffer capacity.
    scr_runs_used_ = 0;
    scr_lane_runs_used_ = 0;
    auto run_fault = [&](FaultId f) {
        ++stats_.bn_executed;
        if (scr_runs_used_ == scr_runs_.size()) scr_runs_.emplace_back();
        FaultRun& run = scr_runs_[scr_runs_used_++];
        run.f = f;
        run.act.clear();
        FaultCtx fctx(*this, run.act, f);
        if (behav.body) exec_body(b, fctx);
    };
    // Superword execution: every execute-set lane of a group runs through
    // ONE walk over the instruction stream (vm_.exec_lanes); lanes whose
    // control flow or store indexing diverges from the base path fall back
    // to the scalar per-fault walk, as does a single-candidate group (the
    // lane-pass setup outweighs one scalar walk) and the audit path (which
    // compares per-fault activations).
    const bool use_lanes = lane_exec_ && !opts_.audit && behav.body != nullptr;
    if (use_lanes && to_execute.size() + solo_active.size() > 1) {
        std::fill_n(scr_exec_mask_.begin(), groups_, uint64_t{0});
        for (FaultId f : to_execute) {
            scr_exec_mask_[fault::group_of(f)] |=
                fault::lane_bit(fault::lane_of(f));
        }
        for (FaultId f : solo_active) {
            scr_exec_mask_[fault::group_of(f)] |=
                fault::lane_bit(fault::lane_of(f));
        }
        const sim::BcProgram& prog = compiled_.body_programs()[b];
        for (uint32_t g = 0; g < groups_; ++g) {
            const uint64_t e = scr_exec_mask_[g];
            if (e == 0) continue;
            if (std::popcount(e) == 1) {
                run_fault(fault::fault_id(
                    g, static_cast<uint32_t>(std::countr_zero(e))));
                continue;
            }
            if (scr_lane_runs_used_ == scr_lane_runs_.size()) {
                scr_lane_runs_.push_back(std::make_unique<LaneRun>());
            }
            LaneRun& lr = *scr_lane_runs_[scr_lane_runs_used_];
            lr.group = g;
            lr.act.clear();
            BatchLaneCtx lctx(*this, lr.act, g);
            lr.survivors = vm_.exec_lanes(prog, lctx, e);
            ++stats_.bn_lane_passes;
            stats_.bn_lane_survivors +=
                static_cast<uint64_t>(std::popcount(lr.survivors));
            stats_.bn_lane_deferred +=
                static_cast<uint64_t>(std::popcount(e & ~lr.survivors));
            stats_.bn_executed +=
                static_cast<uint64_t>(std::popcount(lr.survivors));
            if (lr.survivors != 0) ++scr_lane_runs_used_;
            uint64_t deferred = e & ~lr.survivors;
            while (deferred != 0) {
                const uint32_t l =
                    static_cast<uint32_t>(std::countr_zero(deferred));
                deferred &= deferred - 1;
                run_fault(fault::fault_id(g, l));
            }
        }
    } else {
        for (FaultId f : to_execute) run_fault(f);
        for (FaultId f : solo_active) run_fault(f);
    }
    const std::span<const FaultRun> runs(scr_runs_.data(), scr_runs_used_);
    const std::span<const std::unique_ptr<LaneRun>> lane_runs(
        scr_lane_runs_.data(), scr_lane_runs_used_);

    stats_.bn_skipped_explicit += explicit_skip.size();
    stats_.bn_skipped_implicit += implicit_alive.size();

    // ---- audit: ground-truth classification & soundness check -------------
    if (opts_.audit && good_active) {
        auto shadow_equal = [&](FaultId f) {
            Activation& shadow = *scr_shadow_act_;
            shadow.clear();
            FaultCtx fctx(*this, shadow, f);
            if (behav.body) exec_body(b, fctx);
            return shadow.same_writes(good_act);
        };
        for (FaultId f : explicit_skip) {
            ++stats_.audit_explicit;
            if (!shadow_equal(f)) ++stats_.audit_soundness_violations;
        }
        for (FaultId f : implicit_alive) {
            ++stats_.audit_implicit;
            if (!shadow_equal(f)) ++stats_.audit_soundness_violations;
        }
        for (const FaultRun& run : runs) {
            if (contains(solo_active, run.f)) continue;
            if (run.act.same_writes(good_act)) {
                // Executed although redundant: classify by input consistency.
                bool vis = false;
                for (SignalId sig : behav.reads) {
                    if (contains_div(sig, run.f)) {
                        vis = true;
                        break;
                    }
                }
                if (vis) {
                    ++stats_.audit_implicit;
                } else {
                    ++stats_.audit_explicit;
                }
            } else {
                ++stats_.audit_nonredundant;
            }
        }
    }

    // ---- commit -------------------------------------------------------------
    // Capture per-candidate pre-views of every signal/array element the good
    // execution wrote: a fault that did not itself write such a target keeps
    // its pre-activation value there (missed activations and path-divergent
    // executions), which becomes a divergence once the good value moves on.
    const auto& gw = good_act.blocking.items();
    const auto& gaw = good_act.arr_blocking.items();

    // Per-fault resolution state for the commit loops (O(1) lookups;
    // touched entries are reset at the end of this activation).
    for (const FaultRun& run : runs) scr_fact_of_[run.f] = &run.act;
    for (uint32_t r = 0; r < lane_runs.size(); ++r) {
        uint64_t m = lane_runs[r]->survivors;
        const uint32_t g = lane_runs[r]->group;
        while (m != 0) {
            const uint32_t l = static_cast<uint32_t>(std::countr_zero(m));
            m &= m - 1;
            scr_lane_idx_[fault::fault_id(g, l)] = r;
        }
    }
    auto lane_run_of = [&](FaultId f) -> const LaneRun* {
        if (lane_runs.empty()) return nullptr;
        const uint32_t r = scr_lane_idx_[f];
        return r != UINT32_MAX ? lane_runs[r].get() : nullptr;
    };

    scr_pre_views_used_ = 0;
    auto need_pre_view = [&](FaultId f) {
        // Executed faults may not write everything good wrote; missed faults
        // write nothing. Redundant skips use the good values directly.
        return contains(missed, f) || scr_fact_of_[f] != nullptr ||
               lane_run_of(f) != nullptr;
    };
    for (FaultId f : candidates) {
        if (!need_pre_view(f)) continue;
        if (scr_pre_views_used_ == scr_pre_views_.size()) {
            scr_pre_views_.emplace_back();
        }
        PreView& pv = scr_pre_views_[scr_pre_views_used_++];
        pv.f = f;
        pv.sig_views.clear();
        for (const auto& [sig, v] : gw) {
            pv.sig_views.push_back(fault_view(sig, f));
        }
        pv.arr_views.clear();
        for (const auto& [key, v] : gaw) {
            pv.arr_views.push_back(
                fault_array_view(key.first, key.second, f));
        }
    }
    for (uint32_t i = 0; i < scr_pre_views_used_; ++i) {
        scr_pre_idx_[scr_pre_views_[i].f] = i;
    }

    // Commit good blocking writes (schedules fanout, re-asserts pins).
    for (const auto& [sig, v] : gw) commit_good_signal(sig, v);
    for (const auto& [key, v] : gaw) {
        commit_good_array(key.first, key.second, v);
    }

    // Reconcile every candidate's blocking state. Resolution per target the
    // good execution wrote:
    //   * the fault also wrote it        -> the fault's value;
    //   * fault has a pre-view (missed or executed-without-writing-it)
    //                                    -> its pre-activation value;
    //   * otherwise (redundant skip)     -> the good value (divergence
    //                                       cleared; pins re-applied).
    //
    // Candidates ascend and divergence lists are sorted, so each written
    // signal's list is rebuilt in ONE merge pass: entries of non-candidate
    // faults (pin shadows re-asserted by the commit above, or detected
    // faults awaiting the next prune) are kept verbatim, candidate entries
    // are re-derived. This replaces a per-(fault, target) binary-search +
    // insertion storm with linear work.
    auto& rebuilt = scr_entries_;
    for (size_t i = 0; i < gw.size(); ++i) {
        const SignalId sig = gw[i].first;
        const Value good_v = good_values_[sig];
        if (batched_) {
            // Lane-indexed store: each candidate's entry updates in O(1),
            // non-candidate lanes are untouched by construction — no merge
            // pass needed. Lane-pass survivors resolve their own write from
            // the group's shared lane cell (cached across the ascending
            // candidate walk).
            fault::DivergenceBlockStore& store = bsig_div_[sig];
            bool changed = false;
            const LaneRun* cached_lr = nullptr;
            const LaneStoredCell* cached_cell = nullptr;
            for (FaultId f : candidates) {
                const Activation* fact = scr_fact_of_[f];
                const Value* own =
                    fact != nullptr ? fact->blocking.find(sig) : nullptr;
                Value fval;
                bool have = false;
                if (own != nullptr) {
                    fval = *own;
                    have = true;
                } else if (const LaneRun* lr = lane_run_of(f)) {
                    if (lr != cached_lr) {
                        cached_lr = lr;
                        cached_cell = lr->act.find_sig(sig);
                    }
                    if (cached_cell != nullptr) {
                        fval = cached_cell->lane(fault::lane_of(f));
                        have = true;
                    }
                }
                if (!have) {
                    if (scr_pre_idx_[f] != UINT32_MAX) {
                        fval = scr_pre_views_[scr_pre_idx_[f]].sig_views[i];
                    } else {
                        fval = gw[i].second;
                    }
                }
                fval = apply_pin(f, sig, fval);
                if (fval != good_v) {
                    changed |= store.set(fault::group_of(f),
                                         fault::lane_of(f), fval.bits());
                } else {
                    changed |= store.erase(fault::group_of(f),
                                           fault::lane_of(f));
                }
            }
            if (changed) schedule_signal_fanout(sig);
            continue;
        }
        DivergenceList& div = sig_div_[sig];
        const auto& old = div.entries();
        rebuilt.clear();
        size_t oc = 0;
        for (FaultId f : candidates) {
            while (oc < old.size() && old[oc].fault < f) {
                rebuilt.push_back(old[oc++]);
            }
            const bool has_old = oc < old.size() && old[oc].fault == f;
            const Activation* fact = scr_fact_of_[f];
            const Value* own =
                fact != nullptr ? fact->blocking.find(sig) : nullptr;
            Value fval;
            if (own != nullptr) {
                fval = *own;
            } else if (scr_pre_idx_[f] != UINT32_MAX) {
                fval = scr_pre_views_[scr_pre_idx_[f]].sig_views[i];
            } else {
                fval = gw[i].second;
            }
            fval = apply_pin(f, sig, fval);
            if (fval != good_v) rebuilt.push_back({f, fval});
            if (has_old) ++oc;
        }
        while (oc < old.size()) rebuilt.push_back(old[oc++]);
        if (rebuilt != old) {
            div.swap_entries(rebuilt);
            schedule_signal_fanout(sig);
        }
    }
    // ...plus fault-only blocking writes (targets good did not write).
    for (const FaultRun& run : runs) {
        for (const auto& [sig, v] : run.act.blocking.items()) {
            if (good_act.blocking.find(sig) == nullptr) {
                reconcile(run.f, sig, v);
            }
        }
    }
    for (const auto& lrp : lane_runs) {
        const LaneRun& lr = *lrp;
        for (const auto& [sig, cell] : lr.act.sigs) {
            if (good_act.blocking.find(sig) != nullptr) continue;
            uint64_t m = lr.survivors;
            while (m != 0) {
                const uint32_t l =
                    static_cast<uint32_t>(std::countr_zero(m));
                m &= m - 1;
                reconcile(fault::fault_id(lr.group, l), sig,
                          cell.lane(l));
            }
        }
    }

    // Arrays, same resolution rules (kept per-fault: the sparse per-fault
    // overlays are hash maps, not sorted lists).
    auto reconcile_array_writes = [&](FaultId f, const Activation* fact) {
        const uint32_t pvi = scr_pre_idx_[f];
        for (size_t i = 0; i < gaw.size(); ++i) {
            const ArrKey key = gaw[i].first;
            uint64_t fval;
            const uint64_t* own =
                fact != nullptr ? fact->arr_blocking.find(key) : nullptr;
            if (own != nullptr) {
                fval = *own;
            } else if (pvi != UINT32_MAX) {
                fval = scr_pre_views_[pvi].arr_views[i];
            } else {
                fval = gaw[i].second;
            }
            reconcile_array(f, key.first, key.second, fval);
        }
        if (fact != nullptr) {
            for (const auto& [key, v] : fact->arr_blocking.items()) {
                if (good_act.arr_blocking.find(key) == nullptr) {
                    reconcile_array(f, key.first, key.second, v);
                }
            }
        }
    };
    if (!gaw.empty()) {
        // With no good array writes these three are no-ops; runs still
        // carry fault-only array writes either way.
        for (FaultId f : explicit_skip) reconcile_array_writes(f, nullptr);
        for (FaultId f : implicit_alive) reconcile_array_writes(f, nullptr);
        for (FaultId f : missed) reconcile_array_writes(f, nullptr);
    }
    for (const FaultRun& run : runs) {
        reconcile_array_writes(run.f, &run.act);
    }
    // Lane-pass array writes, same resolution rules per surviving lane.
    for (const auto& lrp : lane_runs) {
        const LaneRun& lr = *lrp;
        uint64_t m = lr.survivors;
        while (m != 0) {
            const uint32_t l = static_cast<uint32_t>(std::countr_zero(m));
            m &= m - 1;
            const FaultId f = fault::fault_id(lr.group, l);
            const uint32_t pvi = scr_pre_idx_[f];
            for (size_t i = 0; i < gaw.size(); ++i) {
                const ArrKey key = gaw[i].first;
                uint64_t fval;
                const LaneStoredCell* own = lr.act.find_arr(key);
                if (own != nullptr) {
                    fval = own->lane_bits(l);
                } else if (pvi != UINT32_MAX) {
                    fval = scr_pre_views_[pvi].arr_views[i];
                } else {
                    fval = gaw[i].second;
                }
                reconcile_array(f, key.first, key.second, fval);
            }
            for (const auto& [key, cell] : lr.act.arrs) {
                if (good_act.arr_blocking.find(key) == nullptr) {
                    reconcile_array(f, key.first, key.second,
                                    cell.lane_bits(l));
                }
            }
        }
    }

    // Reset the per-fault scratch indices (touched entries only).
    for (const FaultRun& run : runs) scr_fact_of_[run.f] = nullptr;
    for (const auto& lrp : lane_runs) {
        uint64_t m = lrp->survivors;
        while (m != 0) {
            const uint32_t l = static_cast<uint32_t>(std::countr_zero(m));
            m &= m - 1;
            scr_lane_idx_[fault::fault_id(lrp->group, l)] = UINT32_MAX;
        }
    }
    for (uint32_t i = 0; i < scr_pre_views_used_; ++i) {
        scr_pre_idx_[scr_pre_views_[i].f] = UINT32_MAX;
    }

    // ---- nonblocking writes -------------------------------------------------
    for (const auto& [sig, v] : good_act.nba) {
        nba_good_sigs_.emplace_back(sig, v);
    }
    for (const auto& [arr, idx, v] : good_act.arr_nba) {
        nba_good_arrs_.emplace_back(arr, idx, v);
    }
    NbaScratch& nsc = *scr_nba_;
    if (!good_act.nba.empty()) {
        nsc.good_sigs.clear();
        for (const auto& [sig, v] : good_act.nba) nsc.good_sigs.push_back(sig);
        std::sort(nsc.good_sigs.begin(), nsc.good_sigs.end());
    }
    if (!good_act.arr_nba.empty()) {
        nsc.good_keys.clear();
        for (const auto& [arr, idx, v] : good_act.arr_nba) {
            nsc.good_keys.emplace_back(arr, idx);
        }
        std::sort(nsc.good_keys.begin(), nsc.good_keys.end());
    }
    // Records for faults that followed the good execution without running
    // (explicit/implicit skips): their NBA value IS the good value, so a
    // record only matters where the fault has stale divergence to clear, a
    // pin to re-assert, or an earlier pending record in this batch to
    // override (a prior activation may have recorded a now-stale faulty
    // value; apply_nba resolves records in order, last one wins) —
    // everywhere else apply_nba's reconcile would be a no-op, so the
    // record is dropped at the source.
    auto skipped_nba_records = [&](FaultId f) {
        const bool pending = nba_pending_[f] != 0;
        bool pushed = false;
        for (const auto& [sig, v] : good_act.nba) {
            if (pending || faults_[f].sig == sig ||
                contains_div(sig, f)) {
                nba_fault_sigs_.emplace_back(f, sig, v);
                pushed = true;
            }
        }
        for (const auto& [arr, idx, v] : good_act.arr_nba) {
            // Arrays have no pins; a stale element entry (or pending
            // record) needs the override.
            const auto fit = arr_div_[arr].find(f);
            if (pending ||
                (fit != arr_div_[arr].end() && fit->second.contains(idx))) {
                nba_fault_arrs_.emplace_back(f, arr, idx, v);
                pushed = true;
            }
        }
        if (pushed && !pending) {
            nba_pending_[f] = 1;
            nba_pending_list_.push_back(f);
        }
    };
    // Records for missed activations (the fault keeps its pre-NBA view) and
    // executed faults (own last write, else pre-NBA view).
    auto fault_nba_records = [&](FaultId f, const Activation* fact) {
        if (nba_pending_[f] == 0 &&
            (!good_act.nba.empty() || !good_act.arr_nba.empty() ||
             (fact != nullptr &&
              (!fact->nba.empty() || !fact->arr_nba.empty())))) {
            nba_pending_[f] = 1;
            nba_pending_list_.push_back(f);
        }
        if (fact != nullptr && !fact->nba.empty()) {
            nsc.sig_last.clear();
            for (const auto& [sig, fv] : fact->nba) {
                nsc.sig_last.upsert(sig, fv);   // last write wins
            }
        }
        for (const auto& [sig, v] : good_act.nba) {
            Value fval;
            const Value* own = fact != nullptr && !fact->nba.empty()
                                   ? nsc.sig_last.find(sig)
                                   : nullptr;
            fval = own != nullptr ? *own : fault_view(sig, f);
            nba_fault_sigs_.emplace_back(f, sig, fval);
        }
        // Fault-only NBA writes.
        if (fact != nullptr) {
            for (const auto& [sig, fv] : fact->nba) {
                if (good_act.nba.empty() ||
                    !std::binary_search(nsc.good_sigs.begin(),
                                        nsc.good_sigs.end(), sig)) {
                    nba_fault_sigs_.emplace_back(f, sig, fv);
                }
            }
        }
        // Array NBA.
        if (fact != nullptr && !fact->arr_nba.empty()) {
            nsc.arr_last.clear();
            for (const auto& [arr, idx, fv] : fact->arr_nba) {
                nsc.arr_last.upsert({arr, idx}, fv);
            }
        }
        for (const auto& [arr, idx, v] : good_act.arr_nba) {
            uint64_t fval;
            const uint64_t* own = fact != nullptr && !fact->arr_nba.empty()
                                      ? nsc.arr_last.find({arr, idx})
                                      : nullptr;
            fval = own != nullptr ? *own : fault_array_view(arr, idx, f);
            nba_fault_arrs_.emplace_back(f, arr, idx, fval);
        }
        if (fact != nullptr) {
            for (const auto& [arr, idx, fv] : fact->arr_nba) {
                if (good_act.arr_nba.empty() ||
                    !std::binary_search(nsc.good_keys.begin(),
                                        nsc.good_keys.end(),
                                        ArrKey{arr, idx})) {
                    nba_fault_arrs_.emplace_back(f, arr, idx, fv);
                }
            }
        }
    };
    // Lane-run records: one shared cell per written target; each surviving
    // lane contributes its lane value under the scalar record rules.
    auto lane_nba_records = [&](const LaneRun& lr) {
        nsc.lane_sig_last.clear();
        for (uint32_t k = 0; k < lr.act.nba.size(); ++k) {
            nsc.lane_sig_last.upsert(lr.act.nba[k].first, k);
        }
        nsc.lane_arr_last.clear();
        for (uint32_t k = 0; k < lr.act.arr_nba.size(); ++k) {
            nsc.lane_arr_last.upsert(lr.act.arr_nba[k].first, k);
        }
        const bool any_nba =
            !good_act.nba.empty() || !good_act.arr_nba.empty() ||
            !lr.act.nba.empty() || !lr.act.arr_nba.empty();
        uint64_t m = lr.survivors;
        while (m != 0) {
            const uint32_t l = static_cast<uint32_t>(std::countr_zero(m));
            m &= m - 1;
            const FaultId f = fault::fault_id(lr.group, l);
            if (nba_pending_[f] == 0 && any_nba) {
                nba_pending_[f] = 1;
                nba_pending_list_.push_back(f);
            }
            for (const auto& [sig, v] : good_act.nba) {
                const uint32_t* ki = nsc.lane_sig_last.find(sig);
                const Value fval = ki != nullptr
                                       ? lr.act.nba[*ki].second.lane(l)
                                       : fault_view(sig, f);
                nba_fault_sigs_.emplace_back(f, sig, fval);
            }
            for (const auto& [sig, cell] : lr.act.nba) {
                if (good_act.nba.empty() ||
                    !std::binary_search(nsc.good_sigs.begin(),
                                        nsc.good_sigs.end(), sig)) {
                    nba_fault_sigs_.emplace_back(f, sig, cell.lane(l));
                }
            }
            for (const auto& [arr, idx, v] : good_act.arr_nba) {
                const uint32_t* ki =
                    nsc.lane_arr_last.find(ArrKey{arr, idx});
                const uint64_t fval =
                    ki != nullptr ? lr.act.arr_nba[*ki].second.lane_bits(l)
                                  : fault_array_view(arr, idx, f);
                nba_fault_arrs_.emplace_back(f, arr, idx, fval);
            }
            for (const auto& [key, cell] : lr.act.arr_nba) {
                if (good_act.arr_nba.empty() ||
                    !std::binary_search(nsc.good_keys.begin(),
                                        nsc.good_keys.end(), key)) {
                    nba_fault_arrs_.emplace_back(f, key.first, key.second,
                                                 cell.lane_bits(l));
                }
            }
        }
    };
    for (FaultId f : explicit_skip) skipped_nba_records(f);
    for (FaultId f : implicit_alive) skipped_nba_records(f);
    for (FaultId f : missed) fault_nba_records(f, nullptr);
    for (const FaultRun& run : runs) fault_nba_records(run.f, &run.act);
    for (const auto& lrp : lane_runs) lane_nba_records(*lrp);
}

void ConcurrentSim::collect_edge_records(std::vector<EdgeRecord>& records) {
    for (SignalId sig = 0; sig < design_.signals.size(); ++sig) {
        const rtl::Signal& s = design_.signals[sig];
        if (s.fanout_edges.empty()) continue;
        const uint64_t prev_good = edge_prev_good_[sig];
        const uint64_t cur_good = good_values_[sig].bits();
        const DivergenceList& prev_div = edge_prev_div_[sig];
        const DivergenceList& cur_div = sig_div_[sig];
        // Unchanged good value AND unchanged divergence: every fault's
        // prev == cur, so no edge (good or faulty) can fire from this
        // signal — skip the record and the list copy entirely.
        if (prev_good == cur_good && prev_div == cur_div) continue;
        EdgeRecord rec;
        rec.sig = sig;
        rec.prev_good = prev_good;
        rec.cur_good = cur_good;
        // Union of faults divergent before or now.
        for (const auto& e : prev_div.entries()) {
            if (detected_[e.fault]) continue;
            const Value* cur = cur_div.find(e.fault);
            rec.fault_prev_cur.emplace_back(
                e.fault, e.value.bits(),
                cur != nullptr ? cur->bits() : cur_good);
        }
        for (const auto& e : cur_div.entries()) {
            if (detected_[e.fault]) continue;
            if (prev_div.find(e.fault) == nullptr) {
                rec.fault_prev_cur.emplace_back(e.fault, prev_good,
                                                e.value.bits());
            }
        }
        // Update the sampled state.
        edge_prev_good_[sig] = cur_good;
        edge_prev_div_[sig] = cur_div;
        if (prev_good != cur_good || !rec.fault_prev_cur.empty()) {
            records.push_back(std::move(rec));
        }
    }
}

bool ConcurrentSim::run_edge_round() {
    std::vector<EdgeRecord> records;
    if (batched_) {
        bcollect_edge_records(records);
    } else {
        collect_edge_records(records);
    }
    if (records.empty()) return false;

    auto fired = [](rtl::EdgeKind kind, uint64_t prev, uint64_t cur) {
        const bool p0 = (prev & 1) == 0, c1 = (cur & 1) == 1;
        const bool p1 = (prev & 1) == 1, c0 = (cur & 1) == 0;
        return kind == rtl::EdgeKind::Pos ? (p0 && c1) : (p1 && c0);
    };
    auto record_for = [&](SignalId sig) -> const EdgeRecord* {
        for (const auto& r : records) {
            if (r.sig == sig) return &r;
        }
        return nullptr;
    };

    // Determine activations per sequential block touched by any record.
    std::vector<BehavId> blocks;
    for (const EdgeRecord& rec : records) {
        for (BehavId b : design_.signals[rec.sig].fanout_edges) {
            if (std::find(blocks.begin(), blocks.end(), b) == blocks.end()) {
                blocks.push_back(b);
            }
        }
    }
    std::sort(blocks.begin(), blocks.end());

    bool any = false;
    for (BehavId b : blocks) {
        const BehavNode& behav = design_.behaviors[b];
        bool good_active = false;
        // Edge-divergent faults of this block and their activity.
        std::vector<std::pair<FaultId, bool>> fault_activity;
        auto note_fault = [&](FaultId f) {
            for (auto& [id, act] : fault_activity) {
                if (id == f) return;
            }
            fault_activity.emplace_back(f, false);
        };
        for (const rtl::EdgeSpec& e : behav.edges) {
            const EdgeRecord* rec = record_for(e.sig);
            const uint64_t prev =
                rec != nullptr ? rec->prev_good : edge_prev_good_[e.sig];
            const uint64_t cur =
                rec != nullptr ? rec->cur_good : edge_prev_good_[e.sig];
            if (fired(e.kind, prev, cur)) good_active = true;
            if (rec != nullptr) {
                for (const auto& [f, fp, fc] : rec->fault_prev_cur) {
                    note_fault(f);
                }
            }
        }
        for (auto& [f, act] : fault_activity) {
            for (const rtl::EdgeSpec& e : behav.edges) {
                const EdgeRecord* rec = record_for(e.sig);
                uint64_t fp, fc;
                bool have = false;
                if (rec != nullptr) {
                    for (const auto& [rf, rp, rc] : rec->fault_prev_cur) {
                        if (rf == f) {
                            fp = rp;
                            fc = rc;
                            have = true;
                            break;
                        }
                    }
                }
                if (!have) {
                    // This fault agrees with good on this edge signal.
                    fp = rec != nullptr ? rec->prev_good
                                        : edge_prev_good_[e.sig];
                    fc = rec != nullptr ? rec->cur_good
                                        : edge_prev_good_[e.sig];
                }
                if (fired(e.kind, fp, fc)) {
                    act = true;
                    break;
                }
            }
        }
        std::vector<FaultId> solo, missed;
        for (const auto& [f, act] : fault_activity) {
            if (act && !good_active) solo.push_back(f);
            if (!act && good_active) missed.push_back(f);
        }
        std::sort(solo.begin(), solo.end());
        std::sort(missed.begin(), missed.end());
        if (good_active || !solo.empty()) {
            process_behavior(b, good_active, solo, missed);
            any = true;
        }
    }
    return any;
}

bool ConcurrentSim::apply_nba() {
    if (nba_good_sigs_.empty() && nba_good_arrs_.empty() &&
        nba_fault_sigs_.empty() && nba_fault_arrs_.empty()) {
        return false;
    }
    auto good_sigs = std::move(nba_good_sigs_);
    auto good_arrs = std::move(nba_good_arrs_);
    auto fault_sigs = std::move(nba_fault_sigs_);
    auto fault_arrs = std::move(nba_fault_arrs_);
    nba_good_sigs_.clear();
    nba_good_arrs_.clear();
    nba_fault_sigs_.clear();
    nba_fault_arrs_.clear();
    // The batch is resolved; pending-record flags start over.
    for (FaultId f : nba_pending_list_) nba_pending_[f] = 0;
    nba_pending_list_.clear();

    for (const auto& [sig, v] : good_sigs) commit_good_signal(sig, v);
    for (const auto& [arr, idx, v] : good_arrs) {
        commit_good_array(arr, idx, v);
    }
    if (batched_) {
        // Lane-indexed store: every record commits in O(1); no merge needed.
        for (const auto& [f, sig, v] : fault_sigs) {
            if (!detected_[f]) reconcile(f, sig, v);
        }
        for (const auto& [f, arr, idx, v] : fault_arrs) {
            if (!detected_[f]) reconcile_array(f, arr, idx, v);
        }
        return true;
    }
    // Fault records commit per signal through DivergenceList::merge_from —
    // one merge pass per touched signal instead of a set/erase call per
    // record (each of which memmoved the list tail). Records are grouped by
    // (signal, fault) stably, so the LAST record of a (fault, signal) pair
    // wins exactly as the sequential reconcile loop resolved it.
    std::stable_sort(fault_sigs.begin(), fault_sigs.end(),
                     [](const auto& a, const auto& b) {
                         return std::tie(std::get<1>(a), std::get<0>(a)) <
                                std::tie(std::get<1>(b), std::get<0>(b));
                     });
    auto& updates = scr_nba_updates_;
    for (size_t i = 0; i < fault_sigs.size();) {
        const SignalId sig = std::get<1>(fault_sigs[i]);
        updates.clear();
        for (; i < fault_sigs.size() && std::get<1>(fault_sigs[i]) == sig;
             ++i) {
            const FaultId f = std::get<0>(fault_sigs[i]);
            // Last record of this (fault, signal) pair wins.
            if (i + 1 < fault_sigs.size() &&
                std::get<0>(fault_sigs[i + 1]) == f &&
                std::get<1>(fault_sigs[i + 1]) == sig) {
                continue;
            }
            if (detected_[f]) continue;
            updates.push_back(
                {f, apply_pin(f, sig, std::get<2>(fault_sigs[i]))});
        }
        if (sig_div_[sig].merge_from(updates, good_values_[sig],
                                     scr_entries_)) {
            schedule_signal_fanout(sig);
        }
    }
    for (const auto& [f, arr, idx, v] : fault_arrs) {
        if (!detected_[f]) reconcile_array(f, arr, idx, v);
    }
    return true;
}

void ConcurrentSim::settle() {
    int rounds = 0;
    for (;;) {
        comb_propagate();
        const bool ran_seq = run_edge_round();
        const bool wrote_nba = apply_nba();
        if (!ran_seq && !wrote_nba) break;
        if (++rounds > kMaxSettleRounds) {
            throw SimError("settle did not reach quiescence (concurrent)");
        }
    }
}

void ConcurrentSim::tick(SignalId clk) {
    poke(clk, 1);
    settle();
    poke(clk, 0);
    settle();
}

void ConcurrentSim::materialize_pins() {
    for (FaultId f = 0; f < faults_.size(); ++f) {
        if (detected_[f]) continue;
        const SignalId sig = faults_[f].sig;
        reconcile(f, sig, fault_view(sig, f));
    }
}

void ConcurrentSim::reset() {
    for (size_t i = 0; i < good_values_.size(); ++i) {
        good_values_[i] = Value(0, design_.signals[i].width);
    }
    for (auto& a : good_arrays_) std::fill(a.begin(), a.end(), 0);
    for (auto& d : sig_div_) d.clear();
    for (auto& d : bsig_div_) d.clear();
    for (auto& d : arr_div_) d.clear();
    for (auto& m : arr_div_mask_) std::fill(m.begin(), m.end(), 0);
    std::fill(edge_prev_good_.begin(), edge_prev_good_.end(), 0);
    for (auto& d : edge_prev_div_) d.clear();
    for (auto& d : bedge_prev_div_) d.clear();
    for (auto& bucket : rank_buckets_) bucket.clear();
    std::fill(in_queue_.begin(), in_queue_.end(), false);
    nba_good_sigs_.clear();
    nba_good_arrs_.clear();
    nba_fault_sigs_.clear();
    nba_fault_arrs_.clear();
    for (FaultId f : nba_pending_list_) nba_pending_[f] = 0;
    nba_pending_list_.clear();
    lowest_dirty_rank_ = 0;

    // Initial blocks run on the good network; pins are then materialized so
    // fault views are stuck from time zero (same as a serial `force`).
    {
        Activation act;
        GoodCtx ctx(*this, act);
        for (size_t i = 0; i < design_.initials.size(); ++i) {
            if (!design_.initials[i].body) continue;
            if (opts_.interp == sim::InterpMode::Bytecode) {
                vm_.exec(compiled_.init_programs()[i], ctx);
            } else {
                sim::exec_stmt(*design_.initials[i].body, design_, ctx);
            }
        }
        for (const auto& [sig, v] : act.blocking.items()) {
            commit_good_signal(sig, v);
        }
        for (const auto& [key, v] : act.arr_blocking.items()) {
            commit_good_array(key.first, key.second, v);
        }
        for (const auto& [sig, v] : act.nba) commit_good_signal(sig, v);
        for (const auto& [arr, idx, v] : act.arr_nba) {
            commit_good_array(arr, idx, v);
        }
    }
    materialize_pins();

    for (uint32_t n = 0; n < design_.nodes.size(); ++n) schedule_element(n);
    for (uint32_t b = 0; b < design_.behaviors.size(); ++b) {
        if (design_.behaviors[b].is_comb) {
            schedule_element(static_cast<uint32_t>(design_.nodes.size()) + b);
        }
    }
    settle();
}

void ConcurrentSim::mark_detected(FaultId f) {
    if (detected_[f]) return;
    detected_[f] = true;
    if (batched_) {
        detected_mask_[fault::group_of(f)] |=
            fault::lane_bit(fault::lane_of(f));
    }
    ++num_detected_;
}

void ConcurrentSim::prune_detected() {
    if (batched_) {
        // Mask subtraction per (signal, group) block — no list rewriting.
        for (auto& s : bsig_div_) {
            for (uint32_t g = 0; g < groups_; ++g) {
                s.erase_lanes(g, detected_mask_[g]);
            }
        }
        for (auto& s : bedge_prev_div_) {
            for (uint32_t g = 0; g < groups_; ++g) {
                s.erase_lanes(g, detected_mask_[g]);
            }
        }
        for (ArrayId arr = 0; arr < arr_div_.size(); ++arr) {
            auto& per_arr = arr_div_[arr];
            for (auto it = per_arr.begin(); it != per_arr.end();) {
                if (detected_[it->first]) {
                    arr_div_mask_[arr][fault::group_of(it->first)] &=
                        ~fault::lane_bit(fault::lane_of(it->first));
                    it = per_arr.erase(it);
                } else {
                    ++it;
                }
            }
        }
        pruned_detected_ = num_detected_;
        return;
    }
    for (auto& d : sig_div_) {
        d.erase_if([&](FaultId f) { return detected_[f]; });
    }
    for (auto& d : edge_prev_div_) {
        d.erase_if([&](FaultId f) { return detected_[f]; });
    }
    for (auto& per_arr : arr_div_) {
        for (auto it = per_arr.begin(); it != per_arr.end();) {
            if (detected_[it->first]) {
                it = per_arr.erase(it);
            } else {
                ++it;
            }
        }
    }
    pruned_detected_ = num_detected_;
}

void ConcurrentSim::observe_outputs() {
    if (batched_) {
        for (SignalId out : design_.outputs) {
            const fault::DivergenceBlockStore& store = bsig_div_[out];
            if (store.empty()) continue;
            for (uint32_t g = 0; g < groups_; ++g) {
                uint64_t m = store.mask(g) & ~detected_mask_[g];
                while (m != 0) {
                    const uint32_t l =
                        static_cast<uint32_t>(std::countr_zero(m));
                    m &= m - 1;
                    mark_detected(fault::fault_id(g, l));
                }
            }
        }
        if (num_detected_ != pruned_detected_) prune_detected();
        return;
    }
    for (SignalId out : design_.outputs) {
        for (const auto& e : sig_div_[out].entries()) {
            mark_detected(e.fault);
        }
    }
    if (num_detected_ != pruned_detected_) prune_detected();
}

}  // namespace eraser::core
