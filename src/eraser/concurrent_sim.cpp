#include "eraser/concurrent_sim.h"

#include <algorithm>
#include <cassert>

#include "sim/interp.h"
#include "util/diagnostics.h"

namespace eraser::core {

using fault::DivergenceList;
using fault::FaultId;
using rtl::ArrayId;
using rtl::BehavId;
using rtl::BehavNode;
using rtl::Design;
using rtl::NodeId;
using rtl::SignalId;

namespace {
constexpr int kMaxSettleRounds = 4096;

/// Ordered upsert map used for activation-local write buffers. Linear scans:
/// behavioral blocks write a handful of signals.
template <typename K, typename V>
class SmallMap {
  public:
    void upsert(const K& k, const V& v) {
        for (auto& [key, val] : items_) {
            if (key == k) {
                val = v;
                return;
            }
        }
        items_.emplace_back(k, v);
    }
    [[nodiscard]] const V* find(const K& k) const {
        for (const auto& [key, val] : items_) {
            if (key == k) return &val;
        }
        return nullptr;
    }
    [[nodiscard]] const std::vector<std::pair<K, V>>& items() const {
        return items_;
    }
    [[nodiscard]] bool empty() const { return items_.empty(); }
    void clear() { items_.clear(); }
    friend bool operator==(const SmallMap& a, const SmallMap& b) {
        return a.items_ == b.items_;
    }

  private:
    std::vector<std::pair<K, V>> items_;
};

using ArrKey = std::pair<uint32_t, uint64_t>;   // (array, index)

}  // namespace

/// Per-activation result of one behavioral execution (good or faulty).
struct ConcurrentSim::Activation {
    SmallMap<SignalId, Value> blocking;
    SmallMap<ArrKey, uint64_t> arr_blocking;
    std::vector<std::pair<SignalId, Value>> nba;
    std::vector<std::tuple<ArrayId, uint64_t, uint64_t>> arr_nba;

    void clear() {
        blocking.clear();
        arr_blocking.clear();
        nba.clear();
        arr_nba.clear();
    }
    [[nodiscard]] bool same_writes(const Activation& other) const {
        return blocking == other.blocking &&
               arr_blocking == other.arr_blocking && nba == other.nba &&
               arr_nba == other.arr_nba;
    }
};

/// Good-network evaluation context: reads the activation overlay then global
/// good state; buffers writes in the activation.
class ConcurrentSim::GoodCtx final : public sim::EvalContext {
  public:
    GoodCtx(ConcurrentSim& sim, Activation& act) : sim_(sim), act_(act) {}

    Value read_signal(SignalId sig) override {
        if (const Value* v = act_.blocking.find(sig)) return *v;
        return sim_.good_values_[sig];
    }
    Value read_array(ArrayId arr, uint64_t idx) override {
        const unsigned w = sim_.design_.arrays[arr].width;
        if (const uint64_t* v = act_.arr_blocking.find({arr, idx})) {
            return Value(*v, w);
        }
        const auto& storage = sim_.good_arrays_[arr];
        return Value(idx < storage.size() ? storage[idx] : 0, w);
    }
    void write_signal(SignalId sig, Value v, bool nonblocking) override {
        if (nonblocking) {
            act_.nba.emplace_back(sig, v);
        } else {
            act_.blocking.upsert(sig, v);
        }
    }
    void write_array(ArrayId arr, uint64_t idx, Value v,
                     bool nonblocking) override {
        if (nonblocking) {
            act_.arr_nba.emplace_back(arr, idx, v.bits());
        } else {
            act_.arr_blocking.upsert({arr, idx}, v.bits());
        }
    }
    Value read_for_nba_update(SignalId sig) override {
        for (auto it = act_.nba.rbegin(); it != act_.nba.rend(); ++it) {
            if (it->first == sig) return it->second;
        }
        return read_signal(sig);
    }

  private:
    ConcurrentSim& sim_;
    Activation& act_;
};

/// Faulty-network evaluation context: reads the fault's activation overlay,
/// then the fault's global view (divergence entry or good value).
class ConcurrentSim::FaultCtx final : public sim::EvalContext {
  public:
    FaultCtx(ConcurrentSim& sim, Activation& act, FaultId f)
        : sim_(sim), act_(act), fault_(f) {}

    Value read_signal(SignalId sig) override {
        if (const Value* v = act_.blocking.find(sig)) return *v;
        return sim_.fault_view(sig, fault_);
    }
    Value read_array(ArrayId arr, uint64_t idx) override {
        const unsigned w = sim_.design_.arrays[arr].width;
        if (const uint64_t* v = act_.arr_blocking.find({arr, idx})) {
            return Value(*v, w);
        }
        return Value(sim_.fault_array_view(arr, idx, fault_), w);
    }
    void write_signal(SignalId sig, Value v, bool nonblocking) override {
        if (nonblocking) {
            act_.nba.emplace_back(sig, v);
        } else {
            act_.blocking.upsert(sig, v);
        }
    }
    void write_array(ArrayId arr, uint64_t idx, Value v,
                     bool nonblocking) override {
        if (nonblocking) {
            act_.arr_nba.emplace_back(arr, idx, v.bits());
        } else {
            act_.arr_blocking.upsert({arr, idx}, v.bits());
        }
    }
    Value read_for_nba_update(SignalId sig) override {
        for (auto it = act_.nba.rbegin(); it != act_.nba.rend(); ++it) {
            if (it->first == sig) return it->second;
        }
        return read_signal(sig);
    }

  private:
    ConcurrentSim& sim_;
    Activation& act_;
    FaultId fault_;
};

ConcurrentSim::ConcurrentSim(const Design& design,
                             std::span<const fault::Fault> faults,
                             const EngineOptions& opts)
    : design_(design), faults_(faults.begin(), faults.end()), opts_(opts) {
    if (!design.finalized()) {
        throw SimError("design must be finalized before simulation");
    }
    good_values_.reserve(design.signals.size());
    for (const auto& s : design.signals) {
        good_values_.emplace_back(0, s.width);
    }
    good_arrays_.reserve(design.arrays.size());
    for (const auto& a : design.arrays) {
        good_arrays_.emplace_back(a.size, uint64_t{0});
    }
    sig_div_.resize(design.signals.size());
    arr_div_.resize(design.arrays.size());
    pins_.resize(design.signals.size());
    for (FaultId f = 0; f < faults_.size(); ++f) {
        pins_[faults_[f].sig].push_back(f);
    }
    edge_prev_good_.assign(design.signals.size(), 0);
    edge_prev_div_.resize(design.signals.size());

    cfgs_.reserve(design.behaviors.size());
    vdgs_.reserve(design.behaviors.size());
    for (const auto& b : design.behaviors) {
        if (b.body) {
            cfgs_.push_back(cfg::Cfg::build(*b.body, design));
        } else {
            cfgs_.emplace_back();
        }
    }
    for (const auto& c : cfgs_) vdgs_.push_back(cfg::Vdg::build(c));

    const size_t num_elems = design.nodes.size() + design.behaviors.size();
    in_queue_.assign(num_elems, false);
    rank_buckets_.resize(design.rank_levels());
    detected_.assign(faults_.size(), false);
}

ConcurrentSim::~ConcurrentSim() = default;

Value ConcurrentSim::fault_view(SignalId sig, FaultId f) const {
    if (const Value* v = sig_div_[sig].find(f)) return *v;
    return good_values_[sig];
}

uint64_t ConcurrentSim::fault_array_view(ArrayId arr, uint64_t idx,
                                         FaultId f) const {
    const auto fit = arr_div_[arr].find(f);
    if (fit != arr_div_[arr].end()) {
        const auto eit = fit->second.find(idx);
        if (eit != fit->second.end()) return eit->second;
    }
    const auto& storage = good_arrays_[arr];
    return idx < storage.size() ? storage[idx] : 0;
}

Value ConcurrentSim::apply_pin(FaultId f, SignalId sig, Value v) const {
    const fault::Fault& flt = faults_[f];
    if (flt.sig != sig) return v;
    return Value((v.bits() & ~flt.mask()) | flt.bits(), v.width());
}

Value ConcurrentSim::peek_fault(SignalId sig, FaultId f) const {
    return fault_view(sig, f);
}

void ConcurrentSim::poke(SignalId sig, uint64_t value) {
    commit_good_signal(sig, Value(value, design_.signals[sig].width));
}

void ConcurrentSim::load_array(ArrayId arr, std::span<const uint64_t> words) {
    auto& storage = good_arrays_[arr];
    const uint64_t mask = Value::mask(design_.arrays[arr].width);
    for (size_t i = 0; i < words.size() && i < storage.size(); ++i) {
        storage[i] = words[i] & mask;
    }
    for (BehavId b : design_.arrays[arr].reader_behavs) {
        schedule_element(static_cast<uint32_t>(design_.nodes.size()) + b);
    }
}

void ConcurrentSim::commit_good_signal(SignalId sig, Value v) {
    const Value old = good_values_[sig];
    const bool changed = old != v;
    if (changed) {
        good_values_[sig] = v;
        schedule_signal_fanout(sig);
    }
    // Re-assert pins. A fault with no recorded divergence follows the good
    // network exactly, so its unpinned bits must track the *new* good value
    // (basing them on a possibly-stale entry would freeze an intermediate
    // value). An entry that is anything other than the pin shadow of the
    // *previous* good value is the fault's own written divergence — leave it
    // alone: the fault is a candidate at this signal's writer and gets
    // reconciled right after this commit. (Clobbering it here used to
    // ping-pong with that reconcile and blow the settle limit whenever a
    // pinned signal's faulty value also diverged on unpinned bits.)
    for (FaultId f : pins_[sig]) {
        if (detected_[f]) continue;
        const Value pinned = apply_pin(f, sig, v);
        const Value* existing = sig_div_[sig].find(f);
        if (existing != nullptr && *existing != apply_pin(f, sig, old)) {
            continue;
        }
        if (pinned != v) {
            if (sig_div_[sig].set(f, pinned) && !changed) {
                schedule_signal_fanout(sig);
            }
        } else if (sig_div_[sig].erase(f) && !changed) {
            schedule_signal_fanout(sig);
        }
    }
}

void ConcurrentSim::commit_good_array(ArrayId arr, uint64_t idx,
                                      uint64_t val) {
    auto& storage = good_arrays_[arr];
    if (idx >= storage.size()) return;
    const uint64_t masked = val & Value::mask(design_.arrays[arr].width);
    if (storage[idx] == masked) return;
    storage[idx] = masked;
    for (BehavId b : design_.arrays[arr].reader_behavs) {
        schedule_element(static_cast<uint32_t>(design_.nodes.size()) + b);
    }
}

void ConcurrentSim::reconcile(FaultId f, SignalId sig, Value fault_val) {
    fault_val = apply_pin(f, sig, fault_val);
    bool changed;
    if (fault_val != good_values_[sig]) {
        changed = sig_div_[sig].set(f, fault_val);
    } else {
        changed = sig_div_[sig].erase(f);
    }
    if (changed) schedule_signal_fanout(sig);
}

void ConcurrentSim::reconcile_array(FaultId f, ArrayId arr, uint64_t idx,
                                    uint64_t fault_val) {
    const auto& storage = good_arrays_[arr];
    const uint64_t good = idx < storage.size() ? storage[idx] : 0;
    auto& per_fault = arr_div_[arr];
    bool changed = false;
    if (fault_val != good) {
        auto& overlay = per_fault[f];
        auto it = overlay.find(idx);
        if (it == overlay.end() || it->second != fault_val) {
            overlay[idx] = fault_val;
            changed = true;
        }
    } else {
        auto fit = per_fault.find(f);
        if (fit != per_fault.end() && fit->second.erase(idx) > 0) {
            if (fit->second.empty()) per_fault.erase(fit);
            changed = true;
        }
    }
    if (changed) {
        for (BehavId b : design_.arrays[arr].reader_behavs) {
            schedule_element(static_cast<uint32_t>(design_.nodes.size()) + b);
        }
    }
}

void ConcurrentSim::schedule_signal_fanout(SignalId sig) {
    const rtl::Signal& s = design_.signals[sig];
    for (NodeId n : s.fanout_nodes) schedule_element(n);
    for (BehavId b : s.fanout_comb) {
        schedule_element(static_cast<uint32_t>(design_.nodes.size()) + b);
    }
}

void ConcurrentSim::schedule_element(uint32_t elem) {
    if (in_queue_[elem]) return;
    in_queue_[elem] = true;
    const uint32_t rank =
        elem < design_.nodes.size()
            ? design_.nodes[elem].rank
            : design_.behaviors[elem - design_.nodes.size()].rank;
    rank_buckets_[rank].push_back(elem);
    lowest_dirty_rank_ = std::min(lowest_dirty_rank_, rank);
}

void ConcurrentSim::comb_propagate() {
    int batches = 0;
    for (;;) {
        uint32_t r = lowest_dirty_rank_;
        while (r < rank_buckets_.size() && rank_buckets_[r].empty()) ++r;
        if (r >= rank_buckets_.size()) break;
        lowest_dirty_rank_ = r;
        std::vector<uint32_t> batch;
        batch.swap(rank_buckets_[r]);
        for (uint32_t e : batch) {
            in_queue_[e] = false;
            if (e < design_.nodes.size()) {
                eval_rtl_node(e);
            } else {
                eval_comb_behavior(
                    static_cast<BehavId>(e - design_.nodes.size()));
            }
        }
        if (++batches > kMaxSettleRounds * 64) {
            throw SimError("combinational loop did not converge (concurrent)");
        }
    }
    lowest_dirty_rank_ = static_cast<uint32_t>(rank_buckets_.size());
}

void ConcurrentSim::eval_rtl_node(NodeId n_id) {
    TimeAccumulator::Section section(stats_.time_rtl);
    const rtl::RtlNode& n = design_.nodes[n_id];
    const unsigned out_w = design_.signals[n.output].width;
    ++stats_.rtl_good_evals;

    // Candidates first: entries on inputs (divergent sources) plus stale
    // entries on the output (must be re-derived or cleared).
    std::vector<FaultId> candidates;
    for (SignalId in : n.inputs) {
        for (const auto& e : sig_div_[in].entries()) {
            if (!detected_[e.fault]) candidates.push_back(e.fault);
        }
    }
    for (const auto& e : sig_div_[n.output].entries()) {
        if (!detected_[e.fault]) candidates.push_back(e.fault);
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());

    // Good evaluation.
    Value good_out;
    if (n.op == rtl::Op::Const) {
        good_out = n.cval.resized(out_w);
    } else {
        std::vector<Value> vals;
        vals.reserve(n.inputs.size());
        for (SignalId in : n.inputs) vals.push_back(good_values_[in]);
        good_out = rtl::eval_op(n.op, vals, out_w, n.imm);
    }
    commit_good_signal(n.output, good_out);

    // Faulty evaluations against each fault's input views.
    std::vector<Value> fvals;
    for (FaultId f : candidates) {
        ++stats_.rtl_fault_evals;
        Value fault_out;
        if (n.op == rtl::Op::Const) {
            fault_out = n.cval.resized(out_w);
        } else {
            fvals.clear();
            for (SignalId in : n.inputs) fvals.push_back(fault_view(in, f));
            fault_out = rtl::eval_op(n.op, fvals, out_w, n.imm);
        }
        reconcile(f, n.output, fault_out);
    }
}

void ConcurrentSim::collect_candidates(const BehavNode& behav,
                                       std::vector<FaultId>& out) const {
    out.clear();
    auto take_signal = [&](SignalId sig) {
        for (const auto& e : sig_div_[sig].entries()) {
            if (!detected_[e.fault]) out.push_back(e.fault);
        }
    };
    for (SignalId sig : behav.reads) take_signal(sig);
    for (SignalId sig : behav.writes) take_signal(sig);
    auto take_array = [&](ArrayId arr) {
        for (const auto& [f, overlay] : arr_div_[arr]) {
            if (!detected_[f] && !overlay.empty()) out.push_back(f);
        }
    };
    for (ArrayId arr : behav.array_reads) take_array(arr);
    for (ArrayId arr : behav.array_writes) take_array(arr);
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
}

void ConcurrentSim::eval_comb_behavior(BehavId b) {
    static const std::vector<FaultId> kNone;
    process_behavior(b, /*good_active=*/true, kNone, kNone);
}

void ConcurrentSim::process_behavior(
    BehavId b, bool good_active, const std::vector<FaultId>& solo_active,
    const std::vector<FaultId>& missed) {
    TimeAccumulator::Section section(stats_.time_behavioral);
    const BehavNode& behav = design_.behaviors[b];
    const cfg::Cfg& cfg = cfgs_[b];

    // ---- candidate collection --------------------------------------------
    std::vector<FaultId> candidates;
    collect_candidates(behav, candidates);
    auto contains = [](const std::vector<FaultId>& v, FaultId f) {
        return std::binary_search(v.begin(), v.end(), f);
    };
    for (FaultId f : solo_active) {
        if (!contains(candidates, f)) candidates.push_back(f);
    }
    for (FaultId f : missed) {
        if (!contains(candidates, f)) candidates.push_back(f);
    }
    std::sort(candidates.begin(), candidates.end());
    candidates.erase(std::unique(candidates.begin(), candidates.end()),
                     candidates.end());

    // Normal candidates: activity follows the good network.
    std::vector<FaultId> normal;
    for (FaultId f : candidates) {
        if (!contains(solo_active, f) && !contains(missed, f)) {
            normal.push_back(f);
        }
    }
    if (!good_active) {
        // Fault-only activations: only solo faults execute here.
        normal.clear();
    }

    // ---- good execution fused with the redundancy walk --------------------
    Activation good_act;
    std::vector<FaultId> explicit_skip;
    std::vector<FaultId> implicit_alive;   // survivors = implicit-redundant
    std::vector<FaultId> to_execute;

    if (good_active) {
        ++stats_.bn_good_execs;
        stats_.bn_candidates += normal.size() + solo_active.size();

        // Explicit filter (prior art): a fault whose read inputs are all
        // consistent with good executes identically — skip it. Only the
        // read signals that carry any divergence at all can make a fault
        // visible; that subset is typically tiny, so hoist it.
        std::vector<SignalId> divergent_reads;
        for (SignalId sig : behav.reads) {
            if (!sig_div_[sig].empty()) divergent_reads.push_back(sig);
        }
        std::vector<ArrayId> divergent_arrays;
        for (ArrayId arr : behav.array_reads) {
            if (!arr_div_[arr].empty()) divergent_arrays.push_back(arr);
        }
        auto reads_visible = [&](FaultId f) {
            for (SignalId sig : divergent_reads) {
                if (sig_div_[sig].contains(f)) return true;
            }
            for (ArrayId arr : divergent_arrays) {
                const auto it = arr_div_[arr].find(f);
                if (it != arr_div_[arr].end() && !it->second.empty()) {
                    return true;
                }
            }
            return false;
        };
        for (FaultId f : normal) {
            const bool visible = reads_visible(f);
            if (opts_.mode != RedundancyMode::None && !visible) {
                explicit_skip.push_back(f);
            } else if (opts_.mode == RedundancyMode::Full && visible) {
                implicit_alive.push_back(f);
            } else {
                to_execute.push_back(f);
            }
        }

        GoodCtx gctx(*this, good_act);
        if (!behav.body) {
            implicit_alive.clear();
        } else if (implicit_alive.empty()) {
            cfg.execute(design_, gctx);
        } else {
            // Fused walk (Algorithm 1): traverse the CFG, executing the good
            // path and pruning faults whose path or dependencies diverge.
            std::vector<SignalId> node_div_reads;
            std::vector<ArrayId> node_div_arrays;
            uint32_t cur = cfg.entry;
            while (cur != cfg.exit) {
                const cfg::CfgNode& node = cfg.nodes[cur];
                // Visibility with the locally-written override: a signal the
                // good path already assigned in this activation is consistent
                // for every still-alive fault (their execution so far is
                // provably identical).
                auto visible = [&](SignalId sig, FaultId f) {
                    if (good_act.blocking.find(sig) != nullptr) return false;
                    return sig_div_[sig].contains(f);
                };
                auto arr_visible = [&](ArrayId arr, FaultId f) {
                    const auto it = arr_div_[arr].find(f);
                    return it != arr_div_[arr].end() && !it->second.empty();
                };
                // Hoist the divergence-carrying subset of the node's reads:
                // per-fault checks then touch only those few signals.
                node_div_reads.clear();
                for (SignalId sig : node.reads) {
                    if (!sig_div_[sig].empty() &&
                        good_act.blocking.find(sig) == nullptr) {
                        node_div_reads.push_back(sig);
                    }
                }
                node_div_arrays.clear();
                for (ArrayId arr : node.array_reads) {
                    if (!arr_div_[arr].empty()) node_div_arrays.push_back(arr);
                }
                if (node.kind == cfg::CfgNode::Kind::Segment) {
                    // Path dependency node: any visible read kills redundancy.
                    if (!node_div_reads.empty() || !node_div_arrays.empty()) {
                        std::erase_if(implicit_alive, [&](FaultId f) {
                            for (SignalId sig : node_div_reads) {
                                if (visible(sig, f)) {
                                    to_execute.push_back(f);
                                    return true;
                                }
                            }
                            for (ArrayId arr : node_div_arrays) {
                                if (arr_visible(arr, f)) {
                                    to_execute.push_back(f);
                                    return true;
                                }
                            }
                            return false;
                        });
                    }
                    for (const rtl::Stmt* a : node.assigns) {
                        sim::exec_assign(*a, design_, gctx);
                    }
                    cur = node.next;
                } else {
                    // Path decision node: evaluate under good and under each
                    // fault whose condition inputs are visible.
                    const size_t good_next =
                        cfg::Cfg::evaluate_decision(node, gctx);
                    if (node_div_reads.empty() && node_div_arrays.empty()) {
                        cur = node.succs[good_next];
                        continue;
                    }
                    std::erase_if(implicit_alive, [&](FaultId f) {
                        bool need_eval = false;
                        for (SignalId sig : node_div_reads) {
                            if (visible(sig, f)) {
                                need_eval = true;
                                break;
                            }
                        }
                        if (!need_eval) {
                            for (ArrayId arr : node_div_arrays) {
                                if (arr_visible(arr, f)) {
                                    // Conservative: divergent memory feeding
                                    // a branch — treat as path divergence.
                                    to_execute.push_back(f);
                                    return true;
                                }
                            }
                            return false;
                        }
                        // FaultCtx over good_act: reads of locally-written
                        // signals see the good overlay (consistent for every
                        // still-alive fault by induction), everything else
                        // falls through to the fault's global view.
                        FaultCtx fctx(*this, good_act, f);
                        const size_t fault_next =
                            cfg::Cfg::evaluate_decision(node, fctx);
                        if (fault_next != good_next) {
                            to_execute.push_back(f);
                            return true;
                        }
                        return false;
                    });
                    cur = node.succs[good_next];
                }
            }
        }
    } else {
        stats_.bn_candidates += solo_active.size();
    }

    // ---- faulty executions -------------------------------------------------
    std::sort(to_execute.begin(), to_execute.end());
    struct FaultRun {
        FaultId f;
        Activation act;
    };
    std::vector<FaultRun> runs;
    auto run_fault = [&](FaultId f) {
        ++stats_.bn_executed;
        FaultRun run;
        run.f = f;
        FaultCtx fctx(*this, run.act, f);
        if (behav.body) sim::exec_stmt(*behav.body, design_, fctx);
        runs.push_back(std::move(run));
    };
    for (FaultId f : to_execute) run_fault(f);
    for (FaultId f : solo_active) run_fault(f);

    stats_.bn_skipped_explicit += explicit_skip.size();
    stats_.bn_skipped_implicit += implicit_alive.size();

    // ---- audit: ground-truth classification & soundness check -------------
    if (opts_.audit && good_active) {
        auto shadow_equal = [&](FaultId f) {
            Activation shadow;
            FaultCtx fctx(*this, shadow, f);
            if (behav.body) sim::exec_stmt(*behav.body, design_, fctx);
            return shadow.same_writes(good_act);
        };
        for (FaultId f : explicit_skip) {
            ++stats_.audit_explicit;
            if (!shadow_equal(f)) ++stats_.audit_soundness_violations;
        }
        for (FaultId f : implicit_alive) {
            ++stats_.audit_implicit;
            if (!shadow_equal(f)) ++stats_.audit_soundness_violations;
        }
        for (const FaultRun& run : runs) {
            if (contains(solo_active, run.f)) continue;
            if (run.act.same_writes(good_act)) {
                // Executed although redundant: classify by input consistency.
                bool vis = false;
                for (SignalId sig : behav.reads) {
                    if (sig_div_[sig].contains(run.f)) {
                        vis = true;
                        break;
                    }
                }
                if (vis) {
                    ++stats_.audit_implicit;
                } else {
                    ++stats_.audit_explicit;
                }
            } else {
                ++stats_.audit_nonredundant;
            }
        }
    }

    // ---- commit -------------------------------------------------------------
    // Capture per-candidate pre-views of every signal/array element the good
    // execution wrote: a fault that did not itself write such a target keeps
    // its pre-activation value there (missed activations and path-divergent
    // executions), which becomes a divergence once the good value moves on.
    const auto& gw = good_act.blocking.items();
    const auto& gaw = good_act.arr_blocking.items();

    struct PreView {
        FaultId f;
        std::vector<Value> sig_views;       // parallel to gw
        std::vector<uint64_t> arr_views;    // parallel to gaw
    };
    std::vector<PreView> pre_views;
    auto need_pre_view = [&](FaultId f) {
        // Executed faults may not write everything good wrote; missed faults
        // write nothing. Redundant skips use the good values directly.
        return contains(missed, f) ||
               std::any_of(runs.begin(), runs.end(),
                           [&](const FaultRun& r) { return r.f == f; });
    };
    for (FaultId f : candidates) {
        if (!need_pre_view(f)) continue;
        PreView pv;
        pv.f = f;
        pv.sig_views.reserve(gw.size());
        for (const auto& [sig, v] : gw) {
            pv.sig_views.push_back(fault_view(sig, f));
        }
        pv.arr_views.reserve(gaw.size());
        for (const auto& [key, v] : gaw) {
            pv.arr_views.push_back(
                fault_array_view(key.first, key.second, f));
        }
        pre_views.push_back(std::move(pv));
    }
    auto find_pre_view = [&](FaultId f) -> const PreView* {
        for (const auto& pv : pre_views) {
            if (pv.f == f) return &pv;
        }
        return nullptr;
    };

    // Commit good blocking writes (schedules fanout, re-asserts pins).
    for (const auto& [sig, v] : gw) commit_good_signal(sig, v);
    for (const auto& [key, v] : gaw) {
        commit_good_array(key.first, key.second, v);
    }

    // Reconcile each candidate's blocking state. Resolution per target the
    // good execution wrote:
    //   * the fault also wrote it        -> the fault's value;
    //   * fault has a pre-view (missed or executed-without-writing-it)
    //                                    -> its pre-activation value;
    //   * otherwise (redundant skip)     -> the good value (divergence
    //                                       cleared; pins re-applied).
    auto reconcile_writes = [&](FaultId f, const Activation* fact) {
        const PreView* pv = find_pre_view(f);
        for (size_t i = 0; i < gw.size(); ++i) {
            const SignalId sig = gw[i].first;
            Value fval;
            const Value* own =
                fact != nullptr ? fact->blocking.find(sig) : nullptr;
            if (own != nullptr) {
                fval = *own;
            } else if (pv != nullptr) {
                fval = pv->sig_views[i];
            } else {
                fval = gw[i].second;
            }
            reconcile(f, sig, fval);
        }
        // ...plus fault-only writes.
        if (fact != nullptr) {
            for (const auto& [sig, v] : fact->blocking.items()) {
                if (good_act.blocking.find(sig) == nullptr) {
                    reconcile(f, sig, v);
                }
            }
        }
        // Arrays, same pattern.
        for (size_t i = 0; i < gaw.size(); ++i) {
            const ArrKey key = gaw[i].first;
            uint64_t fval;
            const uint64_t* own =
                fact != nullptr ? fact->arr_blocking.find(key) : nullptr;
            if (own != nullptr) {
                fval = *own;
            } else if (pv != nullptr) {
                fval = pv->arr_views[i];
            } else {
                fval = gaw[i].second;
            }
            reconcile_array(f, key.first, key.second, fval);
        }
        if (fact != nullptr) {
            for (const auto& [key, v] : fact->arr_blocking.items()) {
                if (good_act.arr_blocking.find(key) == nullptr) {
                    reconcile_array(f, key.first, key.second, v);
                }
            }
        }
    };

    for (FaultId f : explicit_skip) reconcile_writes(f, nullptr);
    for (FaultId f : implicit_alive) reconcile_writes(f, nullptr);
    for (FaultId f : missed) reconcile_writes(f, nullptr);
    for (const FaultRun& run : runs) reconcile_writes(run.f, &run.act);

    // ---- nonblocking writes -------------------------------------------------
    for (const auto& [sig, v] : good_act.nba) {
        nba_good_sigs_.emplace_back(sig, v);
    }
    for (const auto& [arr, idx, v] : good_act.arr_nba) {
        nba_good_arrs_.emplace_back(arr, idx, v);
    }
    auto fault_nba_records = [&](FaultId f, const Activation* fact) {
        // Resolve this fault's value for every signal good NBA-writes.
        for (const auto& [sig, v] : good_act.nba) {
            Value fval;
            if (fact == nullptr) {
                fval = contains(missed, f) ? fault_view(sig, f) : v;
            } else {
                const Value* own = nullptr;
                for (const auto& [fsig, fv] : fact->nba) {
                    if (fsig == sig) own = &fv;   // last write wins
                }
                fval = own != nullptr ? *own : fault_view(sig, f);
            }
            nba_fault_sigs_.emplace_back(f, sig, fval);
        }
        // Fault-only NBA writes.
        if (fact != nullptr) {
            for (const auto& [sig, fv] : fact->nba) {
                bool good_wrote = false;
                for (const auto& [gsig, gv] : good_act.nba) {
                    if (gsig == sig) {
                        good_wrote = true;
                        break;
                    }
                }
                if (!good_wrote) nba_fault_sigs_.emplace_back(f, sig, fv);
            }
        }
        // Array NBA.
        for (const auto& [arr, idx, v] : good_act.arr_nba) {
            uint64_t fval;
            if (fact == nullptr) {
                fval = contains(missed, f) ? fault_array_view(arr, idx, f)
                                           : v;
            } else {
                const uint64_t* own = nullptr;
                for (const auto& [farr, fidx, fv] : fact->arr_nba) {
                    if (farr == arr && fidx == idx) own = &fv;
                }
                fval = own != nullptr ? *own : fault_array_view(arr, idx, f);
            }
            nba_fault_arrs_.emplace_back(f, arr, idx, fval);
        }
        if (fact != nullptr) {
            for (const auto& [arr, idx, fv] : fact->arr_nba) {
                bool good_wrote = false;
                for (const auto& [garr, gidx, gv] : good_act.arr_nba) {
                    if (garr == arr && gidx == idx) {
                        good_wrote = true;
                        break;
                    }
                }
                if (!good_wrote) nba_fault_arrs_.emplace_back(f, arr, idx, fv);
            }
        }
    };
    for (FaultId f : explicit_skip) fault_nba_records(f, nullptr);
    for (FaultId f : implicit_alive) fault_nba_records(f, nullptr);
    for (FaultId f : missed) fault_nba_records(f, nullptr);
    for (const FaultRun& run : runs) fault_nba_records(run.f, &run.act);
}

bool ConcurrentSim::run_edge_round() {
    // Transition records per watched signal, sampled after the combinational
    // fixpoint (postponed evaluation, the fake-event fix).
    struct Record {
        SignalId sig;
        uint64_t prev_good, cur_good;
        std::vector<std::tuple<FaultId, uint64_t, uint64_t>> fault_prev_cur;
    };
    std::vector<Record> records;

    for (SignalId sig = 0; sig < design_.signals.size(); ++sig) {
        const rtl::Signal& s = design_.signals[sig];
        if (s.fanout_edges.empty()) continue;
        const uint64_t prev_good = edge_prev_good_[sig];
        const uint64_t cur_good = good_values_[sig].bits();
        const DivergenceList& prev_div = edge_prev_div_[sig];
        const DivergenceList& cur_div = sig_div_[sig];
        if (prev_good == cur_good && prev_div.empty() && cur_div.empty()) {
            continue;
        }
        Record rec;
        rec.sig = sig;
        rec.prev_good = prev_good;
        rec.cur_good = cur_good;
        // Union of faults divergent before or now.
        for (const auto& e : prev_div.entries()) {
            if (detected_[e.fault]) continue;
            const Value* cur = cur_div.find(e.fault);
            rec.fault_prev_cur.emplace_back(
                e.fault, e.value.bits(),
                cur != nullptr ? cur->bits() : cur_good);
        }
        for (const auto& e : cur_div.entries()) {
            if (detected_[e.fault]) continue;
            if (prev_div.find(e.fault) == nullptr) {
                rec.fault_prev_cur.emplace_back(e.fault, prev_good,
                                                e.value.bits());
            }
        }
        // Update the sampled state.
        edge_prev_good_[sig] = cur_good;
        edge_prev_div_[sig] = cur_div;
        if (prev_good != cur_good || !rec.fault_prev_cur.empty()) {
            records.push_back(std::move(rec));
        }
    }
    if (records.empty()) return false;

    auto fired = [](rtl::EdgeKind kind, uint64_t prev, uint64_t cur) {
        const bool p0 = (prev & 1) == 0, c1 = (cur & 1) == 1;
        const bool p1 = (prev & 1) == 1, c0 = (cur & 1) == 0;
        return kind == rtl::EdgeKind::Pos ? (p0 && c1) : (p1 && c0);
    };
    auto record_for = [&](SignalId sig) -> const Record* {
        for (const auto& r : records) {
            if (r.sig == sig) return &r;
        }
        return nullptr;
    };

    // Determine activations per sequential block touched by any record.
    std::vector<BehavId> blocks;
    for (const Record& rec : records) {
        for (BehavId b : design_.signals[rec.sig].fanout_edges) {
            if (std::find(blocks.begin(), blocks.end(), b) == blocks.end()) {
                blocks.push_back(b);
            }
        }
    }
    std::sort(blocks.begin(), blocks.end());

    bool any = false;
    for (BehavId b : blocks) {
        const BehavNode& behav = design_.behaviors[b];
        bool good_active = false;
        // Edge-divergent faults of this block and their activity.
        std::vector<std::pair<FaultId, bool>> fault_activity;
        auto note_fault = [&](FaultId f) {
            for (auto& [id, act] : fault_activity) {
                if (id == f) return;
            }
            fault_activity.emplace_back(f, false);
        };
        for (const rtl::EdgeSpec& e : behav.edges) {
            const Record* rec = record_for(e.sig);
            const uint64_t prev =
                rec != nullptr ? rec->prev_good : edge_prev_good_[e.sig];
            const uint64_t cur =
                rec != nullptr ? rec->cur_good : edge_prev_good_[e.sig];
            if (fired(e.kind, prev, cur)) good_active = true;
            if (rec != nullptr) {
                for (const auto& [f, fp, fc] : rec->fault_prev_cur) {
                    note_fault(f);
                }
            }
        }
        for (auto& [f, act] : fault_activity) {
            for (const rtl::EdgeSpec& e : behav.edges) {
                const Record* rec = record_for(e.sig);
                uint64_t fp, fc;
                bool have = false;
                if (rec != nullptr) {
                    for (const auto& [rf, rp, rc] : rec->fault_prev_cur) {
                        if (rf == f) {
                            fp = rp;
                            fc = rc;
                            have = true;
                            break;
                        }
                    }
                }
                if (!have) {
                    // This fault agrees with good on this edge signal.
                    fp = rec != nullptr ? rec->prev_good
                                        : edge_prev_good_[e.sig];
                    fc = rec != nullptr ? rec->cur_good
                                        : edge_prev_good_[e.sig];
                }
                if (fired(e.kind, fp, fc)) {
                    act = true;
                    break;
                }
            }
        }
        std::vector<FaultId> solo, missed;
        for (const auto& [f, act] : fault_activity) {
            if (act && !good_active) solo.push_back(f);
            if (!act && good_active) missed.push_back(f);
        }
        std::sort(solo.begin(), solo.end());
        std::sort(missed.begin(), missed.end());
        if (good_active || !solo.empty()) {
            process_behavior(b, good_active, solo, missed);
            any = true;
        }
    }
    return any;
}

bool ConcurrentSim::apply_nba() {
    if (nba_good_sigs_.empty() && nba_good_arrs_.empty() &&
        nba_fault_sigs_.empty() && nba_fault_arrs_.empty()) {
        return false;
    }
    auto good_sigs = std::move(nba_good_sigs_);
    auto good_arrs = std::move(nba_good_arrs_);
    auto fault_sigs = std::move(nba_fault_sigs_);
    auto fault_arrs = std::move(nba_fault_arrs_);
    nba_good_sigs_.clear();
    nba_good_arrs_.clear();
    nba_fault_sigs_.clear();
    nba_fault_arrs_.clear();

    for (const auto& [sig, v] : good_sigs) commit_good_signal(sig, v);
    for (const auto& [arr, idx, v] : good_arrs) {
        commit_good_array(arr, idx, v);
    }
    for (const auto& [f, sig, v] : fault_sigs) {
        if (!detected_[f]) reconcile(f, sig, v);
    }
    for (const auto& [f, arr, idx, v] : fault_arrs) {
        if (!detected_[f]) reconcile_array(f, arr, idx, v);
    }
    return true;
}

void ConcurrentSim::settle() {
    int rounds = 0;
    for (;;) {
        comb_propagate();
        const bool ran_seq = run_edge_round();
        const bool wrote_nba = apply_nba();
        if (!ran_seq && !wrote_nba) break;
        if (++rounds > kMaxSettleRounds) {
            throw SimError("settle did not reach quiescence (concurrent)");
        }
    }
}

void ConcurrentSim::tick(SignalId clk) {
    poke(clk, 1);
    settle();
    poke(clk, 0);
    settle();
}

void ConcurrentSim::materialize_pins() {
    for (FaultId f = 0; f < faults_.size(); ++f) {
        if (detected_[f]) continue;
        const SignalId sig = faults_[f].sig;
        reconcile(f, sig, fault_view(sig, f));
    }
}

void ConcurrentSim::reset() {
    for (size_t i = 0; i < good_values_.size(); ++i) {
        good_values_[i] = Value(0, design_.signals[i].width);
    }
    for (auto& a : good_arrays_) std::fill(a.begin(), a.end(), 0);
    for (auto& d : sig_div_) d.clear();
    for (auto& d : arr_div_) d.clear();
    std::fill(edge_prev_good_.begin(), edge_prev_good_.end(), 0);
    for (auto& d : edge_prev_div_) d.clear();
    for (auto& bucket : rank_buckets_) bucket.clear();
    std::fill(in_queue_.begin(), in_queue_.end(), false);
    nba_good_sigs_.clear();
    nba_good_arrs_.clear();
    nba_fault_sigs_.clear();
    nba_fault_arrs_.clear();
    lowest_dirty_rank_ = 0;

    // Initial blocks run on the good network; pins are then materialized so
    // fault views are stuck from time zero (same as a serial `force`).
    {
        Activation act;
        GoodCtx ctx(*this, act);
        for (const auto& init : design_.initials) {
            if (init.body) sim::exec_stmt(*init.body, design_, ctx);
        }
        for (const auto& [sig, v] : act.blocking.items()) {
            commit_good_signal(sig, v);
        }
        for (const auto& [key, v] : act.arr_blocking.items()) {
            commit_good_array(key.first, key.second, v);
        }
        for (const auto& [sig, v] : act.nba) commit_good_signal(sig, v);
        for (const auto& [arr, idx, v] : act.arr_nba) {
            commit_good_array(arr, idx, v);
        }
    }
    materialize_pins();

    for (uint32_t n = 0; n < design_.nodes.size(); ++n) schedule_element(n);
    for (uint32_t b = 0; b < design_.behaviors.size(); ++b) {
        if (design_.behaviors[b].is_comb) {
            schedule_element(static_cast<uint32_t>(design_.nodes.size()) + b);
        }
    }
    settle();
}

void ConcurrentSim::mark_detected(FaultId f) {
    if (detected_[f]) return;
    detected_[f] = true;
    ++num_detected_;
}

void ConcurrentSim::prune_detected() {
    for (auto& d : sig_div_) {
        d.erase_if([&](FaultId f) { return detected_[f]; });
    }
    for (auto& d : edge_prev_div_) {
        d.erase_if([&](FaultId f) { return detected_[f]; });
    }
    for (auto& per_arr : arr_div_) {
        for (auto it = per_arr.begin(); it != per_arr.end();) {
            if (detected_[it->first]) {
                it = per_arr.erase(it);
            } else {
                ++it;
            }
        }
    }
    pruned_detected_ = num_detected_;
}

void ConcurrentSim::observe_outputs() {
    for (SignalId out : design_.outputs) {
        for (const auto& e : sig_div_[out].entries()) {
            mark_detected(e.fault);
        }
    }
    if (num_detected_ != pruned_detected_) prune_detected();
}

}  // namespace eraser::core
