// Canonical serialization and content hashing of the value types that
// cross a process or Session boundary: faults, stimulus specs, engine
// configurations, design sources.
//
// One codec, two consumers. The RunUnit frames of the distributed fabric
// (eraser/remote.cpp) and the verdict-cache key derivation
// (eraser/verdict_cache.h) both need a byte-stable form of the same
// values; hashing the canonical wire form ties the two together, so a
// layout change invalidates cached verdicts and wire compatibility in the
// same commit instead of silently diverging. All hashes are FNV-1a 64-bit
// chains (util::fnv1a64) over the canonical encoding — chain by passing
// the previous result as `seed`.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "fault/fault.h"
#include "util/wire.h"

namespace eraser::core {
struct StimulusSpec;
struct EngineOptions;
}  // namespace eraser::core

namespace eraser::core::canonical {

/// Wire form of one fault: varint signal id, u8 bit index, u8 polarity.
void put_fault(util::WireWriter& w, const fault::Fault& f);
[[nodiscard]] fault::Fault get_fault(util::WireReader& r);

/// Wire form of the full EngineOptions (all six fields, time_phases and
/// pipeline_stimulus included — unlike engine_fingerprint below, this is a
/// round-trippable encoding, not a verdict key). Used by the fabric's
/// RunUnit frames and the campaign journal's Admit records.
void put_engine_options(util::WireWriter& w, const EngineOptions& opts);
[[nodiscard]] EngineOptions get_engine_options(util::WireReader& r);

/// Wire form of a verdict bitmap: varint bit count + packed u64 words.
void put_bitmap(util::WireWriter& w, const std::vector<bool>& bits);
[[nodiscard]] std::vector<bool> get_bitmap(util::WireReader& r);

/// Content hash of one fault (over its canonical wire form).
[[nodiscard]] uint64_t fault_hash(const fault::Fault& f, uint64_t seed);

/// Content hash of a fault's 64-lane plane: (signal, polarity) without the
/// bit index. All bits of one signal at one polarity share a plane — the
/// verdict cache's block granularity (lane = bit index), mirroring how the
/// batched engine packs faults 64 lanes to a word.
[[nodiscard]] uint64_t plane_hash(rtl::SignalId sig, bool stuck_one,
                                  uint64_t seed);

/// Content hash of a StimulusSpec (kind + payload bytes, plus the epoch
/// window when the spec is epoch-annotated). The payload is a registered
/// kind's own canonical encoding, so anything that changes the driven
/// sequence — cycle count, PRNG seed, pinned inputs, epoch window —
/// changes it. Specs with epochs == 0 hash exactly as before the 2D work,
/// so pre-existing verdict-cache contexts stay valid.
[[nodiscard]] uint64_t stimulus_hash(const StimulusSpec& spec, uint64_t seed);

/// Fingerprint of the verdict-relevant engine configuration: redundancy
/// mode, interpreter, fault batching, audit. Excludes time_phases and
/// pipeline_stimulus — both only change how work is measured or
/// overlapped and never move a verdict bit.
[[nodiscard]] uint64_t engine_fingerprint(const EngineOptions& opts,
                                          uint64_t seed);

/// Content hash of a shippable design (source text + top module) — keys
/// the worker-side compile-once cache; DesignSpec::hash() delegates here.
[[nodiscard]] uint64_t design_spec_hash(std::string_view source,
                                        std::string_view top);

}  // namespace eraser::core::canonical
