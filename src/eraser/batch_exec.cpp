// Batched (FaultBatching::Word) halves of the concurrent engine: the
// group-level twins of the scalar hot-path pieces in concurrent_sim.cpp.
// Faults are packed 64 lanes to a group (fault/divergence.h); divergence
// membership is one machine word per (signal, group), so candidate
// collection and visibility checks collapse to word ORs and per-lane state
// updates are O(1) indexed stores. The control flow (activation rules,
// commit ordering, pin re-assertion, fake-event avoidance) lives once, in
// concurrent_sim.cpp, and branches here at the store touchpoints — both
// representations run the identical algorithm, which is what makes the
// batched verdicts bit-identical to the scalar oracle.
#include <bit>

#include "eraser/compiled_design.h"
#include "eraser/concurrent_sim.h"
#include "util/timer.h"

namespace eraser::core {

using fault::FaultId;
using rtl::ArrayId;
using rtl::NodeId;
using rtl::SignalId;

uint64_t ConcurrentSim::group_sig_mask(std::span<const SignalId> sigs,
                                       uint32_t g) const {
    uint64_t m = 0;
    for (SignalId s : sigs) m |= bsig_div_[s].mask(g);
    return m;
}

uint64_t ConcurrentSim::group_arr_mask(std::span<const ArrayId> arrs,
                                       uint32_t g) const {
    uint64_t m = 0;
    for (ArrayId a : arrs) m |= arr_div_mask_[a][g];
    return m;
}

void ConcurrentSim::expand_mask(uint64_t mask, uint32_t g,
                                std::vector<FaultId>& out) {
    while (mask != 0) {
        const uint32_t l = static_cast<uint32_t>(std::countr_zero(mask));
        mask &= mask - 1;
        out.push_back(fault::fault_id(g, l));
    }
}

void ConcurrentSim::beval_rtl_node(NodeId n_id) {
    TimeAccumulator::Section section(stats_.time_rtl, opts_.time_phases);
    const rtl::RtlNode& n = design_.nodes[n_id];
    const unsigned out_w = design_.signals[n.output].width;
    ++stats_.rtl_good_evals;

    // Candidate masks per group, sampled pre-commit (same ordering as the
    // scalar path): diverged lanes on any input, stale lanes on the output,
    // and lanes pinned on the output (their pin shadow is re-derived here).
    auto& cand = scr_cand_mask_;
    const std::vector<uint64_t>& out_pins = pin_mask_[n.output];
    uint64_t any = 0;
    for (uint32_t g = 0; g < groups_; ++g) {
        uint64_t m = bsig_div_[n.output].mask(g);
        for (SignalId in : n.inputs) m |= bsig_div_[in].mask(g);
        if (!out_pins.empty()) m |= out_pins[g];
        m &= ~detected_mask_[g];
        cand[g] = m;
        any |= m;
    }

    // Good evaluation. Operands go through the reused scratch buffer — RTL
    // nodes are already flat (one op each).
    std::vector<Value>& vals = scr_vals_;
    const size_t num_inputs = n.inputs.size();
    Value good_out;
    if (n.op == rtl::Op::Const) {
        good_out = n.cval.resized(out_w);
    } else {
        vals.clear();
        for (SignalId in : n.inputs) vals.push_back(good_values_[in]);
        good_out = rtl::eval_op(n.op, vals, out_w, n.imm);
    }
    commit_good_signal(n.output, good_out);
    const Value good_new = good_values_[n.output];

    if (any == 0) return;

    // Faulty evaluations: O(1) operand gather per lane, O(1) store update.
    const bool output_pinned = !pins_[n.output].empty();
    fault::DivergenceBlockStore& out_store = bsig_div_[n.output];
    bool changed = false;
    for (uint32_t g = 0; g < groups_; ++g) {
        uint64_t m = cand[g];
        while (m != 0) {
            const uint32_t l = static_cast<uint32_t>(std::countr_zero(m));
            m &= m - 1;
            const FaultId f = fault::fault_id(g, l);
            ++stats_.rtl_fault_evals;
            Value fault_out;
            if (n.op == rtl::Op::Const) {
                fault_out = n.cval.resized(out_w);
            } else {
                vals.clear();
                for (size_t i = 0; i < num_inputs; ++i) {
                    const SignalId in = n.inputs[i];
                    const uint64_t* d = bsig_div_[in].find(g, l);
                    vals.push_back(d != nullptr
                                       ? Value(*d, good_values_[in].width())
                                       : good_values_[in]);
                }
                fault_out = rtl::eval_op(n.op, vals, out_w, n.imm);
            }
            if (output_pinned) fault_out = apply_pin(f, n.output, fault_out);
            if (fault_out != good_new) {
                changed |= out_store.set(g, l, fault_out.bits());
            } else {
                changed |= out_store.erase(g, l);
            }
        }
    }
    if (changed) schedule_signal_fanout(n.output);
}

void ConcurrentSim::bcollect_edge_records(std::vector<EdgeRecord>& records) {
    for (SignalId sig = 0; sig < design_.signals.size(); ++sig) {
        const rtl::Signal& s = design_.signals[sig];
        if (s.fanout_edges.empty()) continue;
        const uint64_t prev_good = edge_prev_good_[sig];
        const uint64_t cur_good = good_values_[sig].bits();
        fault::DivergenceBlockStore& prev = bedge_prev_div_[sig];
        const fault::DivergenceBlockStore& cur = bsig_div_[sig];
        // Unchanged good value AND unchanged divergence: every lane's
        // prev == cur, so no edge (good or faulty) can fire from this
        // signal — skip the record and the state copy entirely.
        bool same_div = true;
        for (uint32_t g = 0; g < groups_ && same_div; ++g) {
            same_div = prev.group_equals(cur, g);
        }
        if (prev_good == cur_good && same_div) continue;
        EdgeRecord rec;
        rec.sig = sig;
        rec.prev_good = prev_good;
        rec.cur_good = cur_good;
        // Union of lanes divergent before or now.
        for (uint32_t g = 0; g < groups_; ++g) {
            const uint64_t pm = prev.mask(g);
            const uint64_t cm = cur.mask(g);
            uint64_t m = pm;
            while (m != 0) {
                const uint32_t l =
                    static_cast<uint32_t>(std::countr_zero(m));
                m &= m - 1;
                const FaultId f = fault::fault_id(g, l);
                if (detected_[f]) continue;
                rec.fault_prev_cur.emplace_back(
                    f, prev.value(g, l),
                    (cm & fault::lane_bit(l)) != 0 ? cur.value(g, l)
                                                   : cur_good);
            }
            m = cm & ~pm;
            while (m != 0) {
                const uint32_t l =
                    static_cast<uint32_t>(std::countr_zero(m));
                m &= m - 1;
                const FaultId f = fault::fault_id(g, l);
                if (detected_[f]) continue;
                rec.fault_prev_cur.emplace_back(f, prev_good,
                                                cur.value(g, l));
            }
        }
        // Update the sampled state.
        edge_prev_good_[sig] = cur_good;
        for (uint32_t g = 0; g < groups_; ++g) prev.copy_group_from(cur, g);
        if (prev_good != cur_good || !rec.fault_prev_cur.empty()) {
            records.push_back(std::move(rec));
        }
    }
}

}  // namespace eraser::core
