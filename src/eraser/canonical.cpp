#include "eraser/canonical.h"

#include "eraser/concurrent_sim.h"
#include "eraser/remote.h"

namespace eraser::core::canonical {

void put_fault(util::WireWriter& w, const fault::Fault& f) {
    w.varint(f.sig);
    w.u8(static_cast<uint8_t>(f.bit));
    w.u8(f.stuck_one ? 1 : 0);
}

fault::Fault get_fault(util::WireReader& r) {
    fault::Fault f;
    f.sig = static_cast<rtl::SignalId>(r.varint());
    f.bit = r.u8();
    f.stuck_one = r.u8() != 0;
    return f;
}

void put_engine_options(util::WireWriter& w, const EngineOptions& opts) {
    w.u8(static_cast<uint8_t>(opts.mode));
    w.u8(static_cast<uint8_t>(opts.interp));
    w.u8(static_cast<uint8_t>(opts.batching));
    w.u8(opts.audit ? 1 : 0);
    w.u8(opts.time_phases ? 1 : 0);
    w.u8(opts.pipeline_stimulus ? 1 : 0);
}

EngineOptions get_engine_options(util::WireReader& r) {
    EngineOptions opts;
    opts.mode = static_cast<RedundancyMode>(r.u8());
    opts.interp = static_cast<sim::InterpMode>(r.u8());
    opts.batching = static_cast<FaultBatching>(r.u8());
    opts.audit = r.u8() != 0;
    opts.time_phases = r.u8() != 0;
    opts.pipeline_stimulus = r.u8() != 0;
    return opts;
}

void put_bitmap(util::WireWriter& w, const std::vector<bool>& bits) {
    std::vector<uint64_t> words((bits.size() + 63) / 64, 0);
    for (size_t i = 0; i < bits.size(); ++i) {
        if (bits[i]) words[i >> 6] |= uint64_t(1) << (i & 63);
    }
    w.varint(bits.size());
    w.words(words);
}

std::vector<bool> get_bitmap(util::WireReader& r) {
    const uint64_t n = r.varint();
    const std::vector<uint64_t> words = r.words();
    if (words.size() != (n + 63) / 64) {
        throw util::WireError("verdict bitmap word count mismatch");
    }
    std::vector<bool> bits(n, false);
    for (uint64_t i = 0; i < n; ++i) {
        bits[i] = (words[i >> 6] >> (i & 63)) & 1;
    }
    return bits;
}

uint64_t fault_hash(const fault::Fault& f, uint64_t seed) {
    util::WireWriter w;
    put_fault(w, f);
    return util::fnv1a64(w.bytes(), seed);
}

uint64_t plane_hash(rtl::SignalId sig, bool stuck_one, uint64_t seed) {
    util::WireWriter w;
    w.varint(sig);
    w.u8(stuck_one ? 1 : 0);
    return util::fnv1a64(w.bytes(), seed);
}

uint64_t stimulus_hash(const StimulusSpec& spec, uint64_t seed) {
    util::WireWriter w;
    w.str(spec.kind);
    w.varint(spec.payload.size());
    // Epoch-annotated specs drive a different cycle sequence, so the window
    // is part of the identity; folded only when present (epochs > 0) so the
    // hash of every classic spec — and thus every pre-2D cache context —
    // is unchanged.
    if (spec.epochs > 0) {
        w.varint(spec.epochs);
        w.varint(spec.epoch_begin);
        w.varint(spec.epoch_end);
    }
    const uint64_t h = util::fnv1a64(w.bytes(), seed);
    return util::fnv1a64(std::span<const uint8_t>(spec.payload), h);
}

uint64_t engine_fingerprint(const EngineOptions& opts, uint64_t seed) {
    util::WireWriter w;
    w.u8(static_cast<uint8_t>(opts.mode));
    w.u8(static_cast<uint8_t>(opts.interp));
    w.u8(static_cast<uint8_t>(opts.batching));
    w.u8(opts.audit ? 1 : 0);
    return util::fnv1a64(w.bytes(), seed);
}

uint64_t design_spec_hash(std::string_view source, std::string_view top) {
    return util::fnv1a64(source, util::fnv1a64(top));
}

}  // namespace eraser::core::canonical
