// Umbrella public API of the Eraser library.
//
// Typical use — compile once, campaign many times:
//
//   #include "eraser/eraser.h"
//
//   auto design = eraser::frontend::compile_file("my_dut.v", "my_dut");
//   auto faults = eraser::fault::generate_faults(*design, {});
//
//   eraser::core::Session session(*design);   // compiles the design ONCE
//   eraser::core::CampaignOptions opts;       // RedundancyMode::Full = Eraser
//
//   // Blocking, single-engine, caller-owned stimulus:
//   MyStimulus stim;                          // eraser::sim::Stimulus
//   auto report = session.run(faults, stim, opts);
//   std::cout << report.coverage_percent << "%\n";
//
//   // Asynchronous, sharded onto the session's persistent worker pool —
//   // submit any number of campaigns; results stream per shard:
//   auto handle = session.submit(
//       faults, [] { return std::make_unique<MyStimulus>(); }, opts,
//       [](const eraser::core::ShardEvent& e) {
//           std::cout << "shard " << e.shard << " done\n";
//       });
//   // ... handle.progress() / handle.cancel() while it runs ...
//   const auto& merged = handle.wait();       // bit-identical at any K
//
// The pre-Session free functions (core::run_concurrent_campaign,
// core::run_sharded_campaign) survive as deprecated wrappers over a
// temporary Session; see README "Migrating to the Session API".
//
// Layers (each usable on its own):
//   rtl/       elaborated IR: signals, RTL nodes, behavioral ASTs
//   frontend/  Verilog-2005 synthesizable-subset compiler -> rtl::Design
//   sim/       good simulation: event-driven & levelized engines
//   cfg/       control-flow graphs & visibility dependency graphs
//   fault/     stuck-at fault model & divergence storage
//   core/      the Eraser concurrent fault-simulation framework:
//              CompiledDesign (compile-once artifacts) + Session (service)
//   baseline/  serial fault-simulation baselines (IFsim/VFsim stand-ins)
#pragma once

#include "baseline/serial.h"
#include "cfg/cfg.h"
#include "cfg/vdg.h"
#include "eraser/campaign.h"
#include "eraser/canonical.h"
#include "eraser/compiled_design.h"
#include "eraser/concurrent_sim.h"
#include "eraser/scheduler.h"
#include "eraser/session.h"
#include "eraser/verdict_cache.h"
#include "fault/fault.h"
#include "frontend/compile.h"
#include "rtl/design.h"
#include "sim/engine.h"
#include "sim/stimulus.h"
