// Umbrella public API of the Eraser library.
//
// Typical use:
//
//   #include "eraser/eraser.h"
//
//   auto design = eraser::frontend::compile_file("my_dut.v", "my_dut");
//   auto faults = eraser::fault::generate_faults(*design, {});
//   MyStimulus stim;                       // eraser::sim::Stimulus
//   eraser::core::CampaignOptions opts;    // RedundancyMode::Full = Eraser
//   auto report = eraser::core::run_concurrent_campaign(*design, faults,
//                                                       stim, opts);
//   std::cout << report.coverage_percent << "%\n";
//
// Layers (each usable on its own):
//   rtl/       elaborated IR: signals, RTL nodes, behavioral ASTs
//   frontend/  Verilog-2005 synthesizable-subset compiler -> rtl::Design
//   sim/       good simulation: event-driven & levelized engines
//   cfg/       control-flow graphs & visibility dependency graphs
//   fault/     stuck-at fault model & divergence storage
//   core/      the Eraser concurrent fault-simulation framework
//   baseline/  serial fault-simulation baselines (IFsim/VFsim stand-ins)
#pragma once

#include "baseline/serial.h"
#include "cfg/cfg.h"
#include "cfg/vdg.h"
#include "eraser/campaign.h"
#include "eraser/concurrent_sim.h"
#include "fault/fault.h"
#include "frontend/compile.h"
#include "rtl/design.h"
#include "sim/engine.h"
#include "sim/stimulus.h"
