// CompiledDesign: the immutable compile-once artifact of the Session API
// (paper Fig. 4 "Preprocess" — performed once per design, not once per
// engine). It owns everything a campaign engine needs that depends only on
// the rtl::Design:
//
//  * per-behavior control-flow graphs and visibility dependency graphs;
//  * flat bytecode programs for behavior bodies and `initial` blocks
//    (shared read-only with sim::SimEngine via sim::SharedPrograms);
//  * per-CFG-node segment/decision programs for the fused Algorithm 1 walk
//    (cfg::CompiledCfg);
//  * the fault cost model (per-behavior VDG weights folded into per-signal
//    costs) that shard partitioning keys off.
//
// All state is immutable after construction, so one CompiledDesign may be
// shared by any number of concurrently-running engines, shards, and
// campaigns — sharing it is the entire point: a K-shard campaign or an
// N-configuration sweep compiles exactly once instead of K (or N*K) times.
//
// Lifetime: the rtl::Design must outlive the CompiledDesign (programs and
// CFGs keep pointers into its statement trees). Engines and Sessions hold
// the CompiledDesign by shared_ptr, so it outlives any campaign using it.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "cfg/cfg.h"
#include "cfg/vdg.h"
#include "eraser/instrumentation.h"
#include "fault/fault.h"
#include "rtl/design.h"
#include "sim/bytecode.h"

namespace eraser::core {

class CompiledDesign {
  public:
    /// Compiles every artifact from a finalized design. Prefer build() —
    /// the shared_ptr is what engines and Sessions retain.
    explicit CompiledDesign(const rtl::Design& design);

    [[nodiscard]] static std::shared_ptr<const CompiledDesign> build(
        const rtl::Design& design) {
        return std::make_shared<const CompiledDesign>(design);
    }

    CompiledDesign(const CompiledDesign&) = delete;
    CompiledDesign& operator=(const CompiledDesign&) = delete;

    [[nodiscard]] const rtl::Design& design() const { return design_; }

    /// Per-behavior CFGs / VDGs, parallel to design().behaviors.
    [[nodiscard]] const std::vector<cfg::Cfg>& cfgs() const { return cfgs_; }
    [[nodiscard]] const std::vector<cfg::Vdg>& vdgs() const { return vdgs_; }

    /// Compiled whole-body and initial-block programs (shared read-only
    /// with any engine, including sim::SimEngine).
    [[nodiscard]] const sim::SharedPrograms& programs() const {
        return progs_;
    }
    [[nodiscard]] const std::vector<sim::BcProgram>& body_programs() const {
        return *progs_.behaviors;
    }
    [[nodiscard]] const std::vector<sim::BcProgram>& init_programs() const {
        return *progs_.initials;
    }
    /// Per-CFG-node segment/decision programs, parallel to cfgs().
    [[nodiscard]] const std::vector<cfg::CompiledCfg>& compiled_cfgs() const {
        return compiled_cfgs_;
    }

    /// Cost model: per-behavior weight (1 + VDG size) and the per-signal
    /// fault cost derived from it (1 + RTL fan-out + summed weights of the
    /// behavioral readers/clock watchers).
    [[nodiscard]] const std::vector<uint64_t>& behavior_weights() const {
        return behavior_weights_;
    }
    [[nodiscard]] const std::vector<uint64_t>& signal_costs() const {
        return signal_costs_;
    }
    /// Estimated simulation cost per fault, parallel to `faults` — the
    /// cached replacement for estimate_fault_costs().
    [[nodiscard]] std::vector<uint64_t> fault_costs(
        std::span<const fault::Fault> faults) const;

    /// Wall time the construction took (amortized across every campaign
    /// that shares this artifact; bench JSON reports it separately).
    [[nodiscard]] double compile_seconds() const { return compile_seconds_; }

    /// Structural + behavioral fingerprint of the elaborated design:
    /// signal names / widths / directions, arrays, RTL node contents, and
    /// the compiled behavior bytecode. The distributed fabric
    /// (eraser/remote.h) compares it across the process boundary (equal
    /// hashes mean equal SignalId spaces, so raw fault triples translate
    /// verbatim), and the verdict cache (eraser/verdict_cache.h) keys on it
    /// (equal hashes mean equal computed behavior, so cached verdicts are
    /// sound — an RTL edit as small as one operator moves the hash).
    [[nodiscard]] uint64_t design_hash() const { return design_hash_; }

    /// Process-wide count of CompiledDesign constructions — the
    /// instrumentation hook that lets tests assert a whole configuration
    /// sweep through one Session compiled exactly once.
    [[nodiscard]] static uint64_t builds();

  private:
    const rtl::Design& design_;
    std::vector<cfg::Cfg> cfgs_;
    std::vector<cfg::Vdg> vdgs_;
    sim::SharedPrograms progs_;
    std::vector<cfg::CompiledCfg> compiled_cfgs_;
    std::vector<uint64_t> behavior_weights_;
    std::vector<uint64_t> signal_costs_;
    double compile_seconds_ = 0.0;
    uint64_t design_hash_ = 0;
};

/// Portable copy of a CostModel's learned state — the warm-start payload
/// the verdict-cache store (eraser/verdict_cache.h) persists per design
/// hash, so a fresh Session partitions on a previous Session's
/// measurements instead of the static VDG estimate.
struct CostModelSnapshot {
    std::vector<double> cost;    // per-signal learned cost table
    std::vector<double> defer;   // per-signal lane-deferral EWMA
    double unit_scale = 0.0;     // measured seconds per cost unit
    uint64_t observations = 0;
    // Least-squares accumulators of (unit est-cost, wall seconds) pairs —
    // the regression that separates per-unit fixed overhead (intercept)
    // from marginal seconds per cost unit (slope). See
    // CostModel::fixed_overhead_seconds.
    double reg_sx = 0.0;
    double reg_sy = 0.0;
    double reg_sxx = 0.0;
    double reg_sxy = 0.0;
    uint64_t reg_n = 0;
};

/// The measured-cost feedback loop that replaces the static VDG estimate
/// over time. Lives beside the immutable artifact: the CompiledDesign's
/// signal_costs() seed this table, and every completed shard of a scheduled
/// campaign feeds its measured ShardBreakdown::wall_seconds back (see
/// eraser/scheduler.h), so the *next* submit's LPT balances on observed
/// rather than estimated work.
///
/// Learning scheme: a shard predicts cost P = sum of the current per-signal
/// costs of its faults and measures wall time S. The surprise q = (S/P)
/// relative to the EWMA-calibrated seconds-per-unit scale multiplies every
/// distinct signal in the shard by (1 - alpha + alpha*q), clamped — a
/// multiplicative-weights update: signals that keep landing in
/// slower-than-predicted shards drift up, fast ones down, and over shards
/// with different signal mixes the per-signal attribution separates.
///
/// Batched campaigns additionally learn a per-signal lane-deferral rate
/// from Instrumentation::bn_lane_* (what fraction of a shard's lane-pass
/// executions control-diverged back to scalar), which the scheduler's group
/// packer uses to cluster control-correlated faults into the same 64-lane
/// unit.
///
/// Thread-safe: observe_shard lands from worker threads while fault_costs
/// snapshots for the next submit. Learned costs never change verdicts —
/// they only move the partition (pinned by tests/scheduler_test.cpp).
class CostModel {
  public:
    /// Integer resolution of fault_costs(): learned costs are reported in
    /// units of 1/kCostScale of a static VDG cost unit, so fractional EWMA
    /// corrections survive the round-trip to the integer LPT.
    static constexpr uint64_t kCostScale = 16;

    /// Seeds the table from the artifact's static per-signal costs.
    explicit CostModel(const CompiledDesign& compiled, double alpha = 0.25);

    /// Learned per-fault costs, parallel to `faults`, in kCostScale units
    /// (exactly the static estimate until the first observation).
    [[nodiscard]] std::vector<uint64_t> fault_costs(
        std::span<const fault::Fault> faults) const;

    /// Learned lane-deferral rate per fault in [0, 1] (0 until observed).
    [[nodiscard]] std::vector<double> defer_rates(
        std::span<const fault::Fault> faults) const;

    /// Feeds one completed shard back: `faults` is the shard's fault list,
    /// `breakdown` its measured timings, `stats` the engine's counters
    /// (bn_lane_* feed the deferral-rate table). Shards that did not run
    /// (canceled before start, zero wall time) are ignored.
    void observe_shard(std::span<const fault::Fault> faults,
                       const ShardBreakdown& breakdown,
                       const Instrumentation& stats);

    /// Completed shards folded in so far.
    [[nodiscard]] uint64_t observations() const;

    /// Predicted wall seconds of a shard whose est_cost sums to
    /// `cost_units` (fault_costs() units, i.e. 1/kCostScale of a static
    /// unit). 0.0 until the first observation calibrates the
    /// seconds-per-unit scale — the scheduler's remote placement gate
    /// treats 0 as "unknown, ship it and learn".
    [[nodiscard]] double predict_seconds(uint64_t cost_units) const;

    /// Current learned cost / deferral rate of one signal (test hooks).
    [[nodiscard]] double signal_cost(rtl::SignalId sig) const;
    [[nodiscard]] double signal_defer_rate(rtl::SignalId sig) const;

    // --- least-squares cost attribution (2D split decision) ---------------
    //
    // Alongside the multiplicative per-signal EWMA, observe_shard
    // accumulates a least-squares regression of measured unit wall time
    // against unit est_cost: wall ≈ a + b·cost. The intercept `a` is the
    // per-unit fixed overhead (engine construction, reset, dispatch) that
    // the EWMA's pure proportional model folds into the slope — exactly
    // the term that decides how finely an epoch axis is worth splitting.

    /// Regression intercept: fixed seconds every dispatched unit pays
    /// regardless of its cost. 0.0 until two observations with distinct
    /// costs exist.
    [[nodiscard]] double fixed_overhead_seconds() const;

    /// Regression slope: marginal seconds per static cost unit. Falls back
    /// to the EWMA unit scale until the regression is determined.
    [[nodiscard]] double marginal_seconds_per_unit() const;

    /// Picks the epoch-axis split S (number of contiguous epoch windows,
    /// in [1, epochs]) for a campaign of `fault_units` fault-dimension
    /// units totalling `total_cost_units` (fault_costs() units) on
    /// `threads` workers: minimizes predicted makespan
    /// ceil(fault_units·S / threads) · (a + b·W/S) where W is the
    /// per-fault-unit full-stimulus cost. Cold model (no observations):
    /// just enough windows to keep every thread busy.
    [[nodiscard]] uint32_t choose_epoch_split(uint32_t fault_units,
                                              uint64_t total_cost_units,
                                              uint32_t epochs,
                                              uint32_t threads) const;

    /// Copies out the learned state (for the warm-start store).
    [[nodiscard]] CostModelSnapshot snapshot() const;

    /// Adopts a persisted snapshot. Refused (returns false, table
    /// untouched) when the snapshot is empty of observations, its scale is
    /// not positive, or its table sizes disagree with this design's signal
    /// space — a snapshot from a structurally different design must never
    /// skew the partition.
    bool restore(const CostModelSnapshot& snap);

  private:
    /// Solves the accumulated regression; false while underdetermined.
    bool regression_locked(double& a, double& b) const;

    const double alpha_;
    mutable std::mutex mu_;
    std::vector<double> cost_;    // per-signal, seeded from signal_costs()
    std::vector<double> defer_;   // per-signal lane-deferral EWMA
    double unit_scale_ = 0.0;     // EWMA of measured seconds per cost unit
    uint64_t observations_ = 0;
    // Least-squares accumulators (x = unit est_cost in static units,
    // y = unit wall seconds); see fixed_overhead_seconds().
    double reg_sx_ = 0.0;
    double reg_sy_ = 0.0;
    double reg_sxx_ = 0.0;
    double reg_sxy_ = 0.0;
    uint64_t reg_n_ = 0;
};

}  // namespace eraser::core
