// CompiledDesign: the immutable compile-once artifact of the Session API
// (paper Fig. 4 "Preprocess" — performed once per design, not once per
// engine). It owns everything a campaign engine needs that depends only on
// the rtl::Design:
//
//  * per-behavior control-flow graphs and visibility dependency graphs;
//  * flat bytecode programs for behavior bodies and `initial` blocks
//    (shared read-only with sim::SimEngine via sim::SharedPrograms);
//  * per-CFG-node segment/decision programs for the fused Algorithm 1 walk
//    (cfg::CompiledCfg);
//  * the fault cost model (per-behavior VDG weights folded into per-signal
//    costs) that shard partitioning keys off.
//
// All state is immutable after construction, so one CompiledDesign may be
// shared by any number of concurrently-running engines, shards, and
// campaigns — sharing it is the entire point: a K-shard campaign or an
// N-configuration sweep compiles exactly once instead of K (or N*K) times.
//
// Lifetime: the rtl::Design must outlive the CompiledDesign (programs and
// CFGs keep pointers into its statement trees). Engines and Sessions hold
// the CompiledDesign by shared_ptr, so it outlives any campaign using it.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "cfg/cfg.h"
#include "cfg/vdg.h"
#include "fault/fault.h"
#include "rtl/design.h"
#include "sim/bytecode.h"

namespace eraser::core {

class CompiledDesign {
  public:
    /// Compiles every artifact from a finalized design. Prefer build() —
    /// the shared_ptr is what engines and Sessions retain.
    explicit CompiledDesign(const rtl::Design& design);

    [[nodiscard]] static std::shared_ptr<const CompiledDesign> build(
        const rtl::Design& design) {
        return std::make_shared<const CompiledDesign>(design);
    }

    CompiledDesign(const CompiledDesign&) = delete;
    CompiledDesign& operator=(const CompiledDesign&) = delete;

    [[nodiscard]] const rtl::Design& design() const { return design_; }

    /// Per-behavior CFGs / VDGs, parallel to design().behaviors.
    [[nodiscard]] const std::vector<cfg::Cfg>& cfgs() const { return cfgs_; }
    [[nodiscard]] const std::vector<cfg::Vdg>& vdgs() const { return vdgs_; }

    /// Compiled whole-body and initial-block programs (shared read-only
    /// with any engine, including sim::SimEngine).
    [[nodiscard]] const sim::SharedPrograms& programs() const {
        return progs_;
    }
    [[nodiscard]] const std::vector<sim::BcProgram>& body_programs() const {
        return *progs_.behaviors;
    }
    [[nodiscard]] const std::vector<sim::BcProgram>& init_programs() const {
        return *progs_.initials;
    }
    /// Per-CFG-node segment/decision programs, parallel to cfgs().
    [[nodiscard]] const std::vector<cfg::CompiledCfg>& compiled_cfgs() const {
        return compiled_cfgs_;
    }

    /// Cost model: per-behavior weight (1 + VDG size) and the per-signal
    /// fault cost derived from it (1 + RTL fan-out + summed weights of the
    /// behavioral readers/clock watchers).
    [[nodiscard]] const std::vector<uint64_t>& behavior_weights() const {
        return behavior_weights_;
    }
    [[nodiscard]] const std::vector<uint64_t>& signal_costs() const {
        return signal_costs_;
    }
    /// Estimated simulation cost per fault, parallel to `faults` — the
    /// cached replacement for estimate_fault_costs().
    [[nodiscard]] std::vector<uint64_t> fault_costs(
        std::span<const fault::Fault> faults) const;

    /// Wall time the construction took (amortized across every campaign
    /// that shares this artifact; bench JSON reports it separately).
    [[nodiscard]] double compile_seconds() const { return compile_seconds_; }

    /// Process-wide count of CompiledDesign constructions — the
    /// instrumentation hook that lets tests assert a whole configuration
    /// sweep through one Session compiled exactly once.
    [[nodiscard]] static uint64_t builds();

  private:
    const rtl::Design& design_;
    std::vector<cfg::Cfg> cfgs_;
    std::vector<cfg::Vdg> vdgs_;
    sim::SharedPrograms progs_;
    std::vector<cfg::CompiledCfg> compiled_cfgs_;
    std::vector<uint64_t> behavior_weights_;
    std::vector<uint64_t> signal_costs_;
    double compile_seconds_ = 0.0;
};

}  // namespace eraser::core
