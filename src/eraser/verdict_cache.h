// VerdictCache: the content-addressed verdict store and persistent
// warm-start layer between campaign admission and dispatch.
//
// ERASER's determinism invariant makes a fault's verdict a pure function
// of (design, stimulus, fault, engine config) — pinned bit-identical
// across shard counts, thread counts, batching modes, scheduling configs,
// and the distributed fleet by every prior PR's tests. So a verdict proven
// once never needs re-simulating: a service fielding repeat traffic (CI
// reruns, sweep overlap, incremental RTL edits) answers it from a store
// keyed by content, the way the batch-IVerilog related work keys golden
// digests by run identity.
//
// Key composition (all canonical hashes, eraser/canonical.h):
//
//   context = H(design_hash | stimulus kind+payload | engine fingerprint)
//   block   = H(context | fault signal | fault polarity)     lane = bit
//
// The store is organized at 64-lane-unit granularity: one Block holds the
// verdicts of every bit of one (signal, polarity) plane under one context
// — the cache-side mirror of the batched engine's per-signal value planes
// (fault::DivergenceBlockStore), with a membership mask exactly like the
// engine's per-group membership word. Content addressing per fault (not
// per dispatch unit) is what makes warm hits partition-independent: the
// learned-cost feedback loop may re-shard a resubmitted campaign
// completely differently and every fault still hits.
//
// Invalidation is purely structural — there is none to do. Any edit that
// could move a verdict (design structure, stimulus bytes, redundancy mode,
// interpreter, batching, audit, epoch window) changes the context hash, so
// stale entries are simply never addressed again and age out via LRU.
// time_phases and pipeline_stimulus are excluded from the fingerprint:
// they toggle instrumentation / generation overlap, not verdicts. Under a
// 2D epoch split, window units insert under a window-specific context
// (the window is folded into the stimulus hash — a window verdict is NOT
// the fault's campaign verdict) and the completed campaign's OR-folded
// verdicts insert under the full-stimulus context at finalization.
//
// Concurrency: lookups/inserts shard across fixed buckets, each a mutex +
// hash map, so concurrent Sessions share one cache with per-bucket
// contention only. Eviction is per-bucket LRU (global logical clock,
// oldest quarter evicted when a bucket exceeds its share of max_bytes).
//
// Persistence: save() serializes everything through the CRC-framed
// util/wire buffer codecs (header frame with magic+version, then blocks,
// learned CostModel tables per design hash, per-worker shipping-overhead
// EWMAs) and commits with write-temp-then-atomic-rename. load() of a
// missing, corrupted, truncated, or version-skewed file degrades to a cold
// cache — never an error, counted in CacheStats::load_failures. The
// warm-start side tables are what let a fresh Session start with tuned
// partitioning (CostModel::restore) and placement
// (RemoteWorkerLink::seed_overhead) instead of relearning from scratch.
//
// Integration (eraser/scheduler.cpp): SchedulerOptions::verdict_cache
// makes the scheduler partition each StimulusSpec submission into hits
// (merged into the result bitmap immediately, index-ordered) and misses
// (sharded and dispatched as usual); completed shards insert on
// publication — never canceled/partial ones, mirroring the CostModel
// guard. CacheStats surfaces through SchedulerStats::cache.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "eraser/compiled_design.h"
#include "fault/fault.h"

namespace eraser::util {
class FileIo;
}  // namespace eraser::util

namespace eraser::core {

struct StimulusSpec;
struct EngineOptions;

/// Bumped on any store-layout change; a skewed file loads as cold.
/// v2 added the CostModel least-squares regression accumulators to the
/// cost-model frame (2D epoch-split decision warm start).
inline constexpr uint32_t kVerdictStoreVersion = 2;

struct VerdictCacheOptions {
    /// Store file: loaded at construction, written by flush() and (best
    /// effort) at destruction. Empty = in-memory only.
    std::string store_path;
    /// Resident size cap; per-bucket LRU eviction keeps the cache under
    /// it. 0 = minimal (evicts aggressively; useful in tests only).
    uint64_t max_bytes = 64ull << 20;
    /// File-I/O seam for the store's write path (util/fileio.h): save()
    /// fsyncs the temp file and the parent directory around its atomic
    /// rename through this. Null = FileIo::real(); tests inject
    /// FaultyFileIo to prove disk faults degrade cleanly.
    util::FileIo* io = nullptr;
};

/// Point-in-time counters (SchedulerStats::cache). Cache-global: one
/// shared cache accumulates across every Session using it.
struct CacheStats {
    uint64_t hits = 0;           // faults served without simulation
    uint64_t misses = 0;         // faults that had to dispatch
    uint64_t insertions = 0;     // verdicts newly cached
    uint64_t evictions = 0;      // verdicts dropped by the size cap
    uint64_t units = 0;          // resident 64-lane blocks
    uint64_t entries = 0;        // resident verdicts
    uint64_t bytes = 0;          // approximate resident footprint
    uint64_t load_failures = 0;  // corrupt/skewed store files gone cold
    bool warm = false;           // a persisted store was loaded

    [[nodiscard]] double hit_ratio() const {
        const uint64_t total = hits + misses;
        return total == 0 ? 0.0
                          : static_cast<double>(hits) /
                                static_cast<double>(total);
    }
};

class VerdictCache {
  public:
    explicit VerdictCache(VerdictCacheOptions opts = {});
    ~VerdictCache();

    VerdictCache(const VerdictCache&) = delete;
    VerdictCache& operator=(const VerdictCache&) = delete;

    /// The campaign context component of the key. `design_hash` is the
    /// Session's CompiledDesign::design_hash(); the stimulus and the
    /// verdict-relevant engine fields are folded in canonically (cycle
    /// count travels inside the stimulus payload).
    [[nodiscard]] static uint64_t context_key(uint64_t design_hash,
                                              const StimulusSpec& stimulus,
                                              const EngineOptions& engine);

    /// Hit/miss split of one submitted fault list, parallel to `faults`.
    struct Partition {
        std::vector<bool> hit;
        std::vector<bool> verdict;   // valid where hit[i]
        uint32_t hits = 0;
    };

    /// Looks up every fault under `context`, counting hits/misses and
    /// touching hit blocks' LRU ticks.
    [[nodiscard]] Partition lookup(uint64_t context,
                                   std::span<const fault::Fault> faults);

    /// Inserts the verdicts of one completed shard (`detected` parallel to
    /// `faults`). Callers must only insert shards that ran to completion —
    /// a canceled shard's partial bitmap would poison the store.
    void insert(uint64_t context, std::span<const fault::Fault> faults,
                const std::vector<bool>& detected);

    // -- warm-start side tables (persisted with the blocks) --

    /// Learned CostModel state, keyed by design hash.
    void store_cost_model(uint64_t design_hash, const CostModelSnapshot& snap);
    [[nodiscard]] std::optional<CostModelSnapshot> find_cost_model(
        uint64_t design_hash) const;

    /// Shipping-overhead EWMA of one worker, keyed by port.
    void store_worker_overhead(uint16_t port, double ewma_seconds);
    /// 0.0 when nothing is persisted for `port`.
    [[nodiscard]] double worker_overhead(uint16_t port) const;

    // -- persistence --

    /// save() to the configured store_path (false when none, or on I/O
    /// failure). Atomic: readers of the path never see a partial file.
    bool flush();
    bool save(const std::string& path) const;
    /// Replaces the resident contents with the file's. A missing file is a
    /// plain cold start (returns false); a corrupted, truncated, or
    /// version-skewed one additionally counts a load_failure. Never throws.
    bool load(const std::string& path);
    void clear();

    [[nodiscard]] CacheStats stats() const;
    [[nodiscard]] const std::string& store_path() const {
        return opts_.store_path;
    }

  private:
    /// Verdicts of one (context, signal, polarity) plane; lane = bit index.
    struct Block {
        uint64_t mask = 0;   // lanes holding a cached verdict
        uint64_t bits = 0;   // the verdicts (valid under mask)
        uint64_t tick = 0;   // LRU: last touch on the global clock
    };
    struct Bucket {
        mutable std::mutex mu;
        std::unordered_map<uint64_t, Block> blocks;
    };
    static constexpr size_t kNumBuckets = 64;
    /// Accounting size of one resident block (key + Block + map overhead).
    static constexpr uint64_t kBlockBytes = 48;

    Bucket& bucket_of(uint64_t key) {
        return buckets_[key % kNumBuckets];
    }
    const Bucket& bucket_of(uint64_t key) const {
        return buckets_[key % kNumBuckets];
    }

    /// Evicts the oldest quarter of `b` once it exceeds its share of
    /// max_bytes. Caller holds b.mu.
    void evict_locked(Bucket& b);

    VerdictCacheOptions opts_;
    uint64_t bucket_budget_blocks_ = 0;
    std::array<Bucket, kNumBuckets> buckets_;

    std::atomic<uint64_t> tick_{0};
    std::atomic<uint64_t> hits_{0};
    std::atomic<uint64_t> misses_{0};
    std::atomic<uint64_t> insertions_{0};
    std::atomic<uint64_t> evictions_{0};
    std::atomic<uint64_t> blocks_{0};
    std::atomic<uint64_t> entries_{0};
    std::atomic<uint64_t> load_failures_{0};
    std::atomic<bool> warm_{false};

    mutable std::mutex meta_mu_;   // warm-start side tables
    std::unordered_map<uint64_t, CostModelSnapshot> cost_models_;
    std::unordered_map<uint16_t, double> worker_overheads_;
};

}  // namespace eraser::core
