#include "eraser/journal.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <unordered_map>

#include "eraser/canonical.h"
#include "util/fileio.h"
#include "util/wire.h"

namespace eraser::core {

namespace {

constexpr char kMagic[4] = {'E', 'R', 'J', 'L'};

enum class RecordType : uint8_t { Admit = 1, Unit = 2, Complete = 3 };

util::WireWriter header_payload() {
    util::WireWriter w;
    for (const char c : kMagic) w.u8(static_cast<uint8_t>(c));
    w.u32(kJournalVersion);
    return w;
}

bool check_header(std::span<const uint8_t> payload) {
    try {
        util::WireReader r(payload);
        for (const char c : kMagic) {
            if (r.u8() != static_cast<uint8_t>(c)) return false;
        }
        const uint32_t version = r.u32();
        r.expect_end();
        return version == kJournalVersion;
    } catch (const util::WireError&) {
        return false;
    }
}

std::vector<uint8_t> read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return {};
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

/// Walks the frames of `buf`, returning the byte offset just past the last
/// decodable frame (the torn-tail truncation point) and invoking `fn` with
/// each frame's payload. Returns 0 if even the header frame is bad.
template <typename Fn>
size_t walk_frames(std::span<const uint8_t> buf, Fn&& fn) {
    size_t pos = 0;
    std::vector<uint8_t> payload;
    try {
        if (!util::next_frame(buf, pos, payload)) return 0;
    } catch (const util::WireError&) {
        return 0;
    }
    if (!check_header(payload)) return 0;
    size_t valid = pos;
    for (;;) {
        try {
            if (!util::next_frame(buf, pos, payload)) break;
        } catch (const util::WireError&) {
            break;  // torn tail — everything before it is good
        }
        fn(std::span<const uint8_t>(payload));
        valid = pos;
    }
    return valid;
}

}  // namespace

CampaignJournal::CampaignJournal(JournalOptions opts)
    : opts_(std::move(opts)),
      io_(opts_.io != nullptr ? opts_.io : &util::FileIo::real()) {
    if (opts_.path.empty()) {
        disabled_ = true;
        return;
    }
    // Scan whatever a previous incarnation left behind: find the highest
    // assigned campaign id (ids must stay unique across reopens) and the
    // torn-tail truncation point.
    const std::vector<uint8_t> existing = read_file(opts_.path);
    size_t valid = 0;
    if (!existing.empty()) {
        valid = walk_frames(existing, [&](std::span<const uint8_t> payload) {
            try {
                util::WireReader r(payload);
                if (static_cast<RecordType>(r.u8()) == RecordType::Admit) {
                    const uint64_t id = r.u64();
                    if (id >= next_id_) next_id_ = id + 1;
                }
            } catch (const util::WireError&) {
            }
        });
    }
    fd_ = io_->open_append(opts_.path);
    if (fd_ < 0) {
        disabled_ = true;
        ++append_failures_;
        return;
    }
    if (valid == 0) {
        // New file, or one whose header never made it to disk: start over.
        if (io_->truncate(fd_, 0) != 0) {
            disable_locked();
            return;
        }
        std::vector<uint8_t> buf;
        util::append_frame(buf, header_payload().bytes());
        if (!util::write_all(*io_, fd_, buf)) {
            disable_locked();
            return;
        }
        fsync_locked();
    } else if (valid < existing.size()) {
        if (io_->truncate(fd_, valid) != 0) disable_locked();
    }
}

CampaignJournal::~CampaignJournal() {
    flush();
    if (fd_ >= 0) io_->close(fd_);
}

bool CampaignJournal::enabled() const {
    std::lock_guard<std::mutex> lock(mu_);
    return !disabled_;
}

void CampaignJournal::disable_locked() {
    disabled_ = true;
    ++append_failures_;
}

void CampaignJournal::fsync_locked() {
    if (disabled_ || fd_ < 0) return;
    if (io_->fsync(fd_) != 0) {
        // fsyncgate: after a failed fsync the durability of everything
        // written since the last success is unknowable. The file itself is
        // still replay-safe (at worst a torn tail), so degrade to
        // journaling-off rather than poisoning future barriers.
        disable_locked();
        return;
    }
    ++fsyncs_;
    unsynced_ = 0;
}

bool CampaignJournal::append_record_locked(std::span<const uint8_t> payload) {
    if (disabled_ || fd_ < 0) {
        ++append_failures_;
        return false;
    }
    std::vector<uint8_t> buf;
    util::append_frame(buf, payload);
    if (!util::write_all(*io_, fd_, buf)) {
        // A partial frame is a torn tail replay already tolerates; no
        // cleanup is needed (or possible — the disk just failed).
        disable_locked();
        return false;
    }
    ++appends_;
    if (opts_.fsync_interval > 0 && ++unsynced_ >= opts_.fsync_interval) {
        fsync_locked();
        // An fsync failure disables the journal but the record itself was
        // handed to the OS; report success so the caller's id stays live —
        // recovery tolerates its absence either way.
    }
    return true;
}

uint64_t CampaignJournal::append_admission(
    uint64_t design_hash, const StimulusSpec& stimulus,
    const CampaignOptions& options, std::span<const fault::Fault> faults,
    uint32_t num_epochs) {
    std::lock_guard<std::mutex> lock(mu_);
    const uint64_t id = next_id_;
    util::WireWriter w;
    w.u8(static_cast<uint8_t>(RecordType::Admit));
    w.u64(id);
    w.u64(design_hash);
    w.str(stimulus.kind);
    w.varint(stimulus.payload.size());
    for (const uint8_t b : stimulus.payload) w.u8(b);
    canonical::put_engine_options(w, options.engine);
    w.u32(options.num_shards);
    w.u8(static_cast<uint8_t>(options.shard_policy));
    w.u8(static_cast<uint8_t>(options.priority));
    w.u32(options.max_workers);
    w.u32(options.weight);
    w.u32(options.epoch_split);
    w.u32(std::max<uint32_t>(1, num_epochs));
    w.varint(faults.size());
    for (const fault::Fault& f : faults) canonical::put_fault(w, f);
    if (!append_record_locked(w.bytes())) return 0;
    next_id_ = id + 1;
    return id;
}

void CampaignJournal::append_unit(uint64_t campaign_id, uint32_t shard_index,
                                  const std::vector<uint32_t>& global_ids,
                                  const std::vector<bool>& verdicts,
                                  const ShardBreakdown& breakdown) {
    util::WireWriter w;
    w.u8(static_cast<uint8_t>(RecordType::Unit));
    w.u64(campaign_id);
    w.u32(shard_index);
    // Epoch window the unit covered; [0, num_epochs) for classic units.
    w.u32(breakdown.epoch_begin);
    w.u32(breakdown.epoch_end);
    // Global ids are ascending within a unit: delta-varint them.
    w.varint(global_ids.size());
    uint32_t prev = 0;
    for (const uint32_t g : global_ids) {
        w.varint(g - prev);
        prev = g;
    }
    canonical::put_bitmap(w, verdicts);
    w.f64(breakdown.wall_seconds);
    w.f64(breakdown.behavioral_seconds);
    w.f64(breakdown.rtl_seconds);
    std::lock_guard<std::mutex> lock(mu_);
    (void)append_record_locked(w.bytes());
}

void CampaignJournal::append_complete(uint64_t campaign_id) {
    util::WireWriter w;
    w.u8(static_cast<uint8_t>(RecordType::Complete));
    w.u64(campaign_id);
    std::lock_guard<std::mutex> lock(mu_);
    if (append_record_locked(w.bytes())) {
        // A Complete is a commit point readers may act on immediately
        // (recovery skips the campaign); make it durable now.
        fsync_locked();
    }
}

void CampaignJournal::flush() {
    std::lock_guard<std::mutex> lock(mu_);
    if (unsynced_ > 0) fsync_locked();
}

void CampaignJournal::note_replayed(uint64_t units) {
    std::lock_guard<std::mutex> lock(mu_);
    replayed_units_ += units;
}

JournalStats CampaignJournal::stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    JournalStats s;
    s.appends = appends_;
    s.fsyncs = fsyncs_;
    s.replayed_units = replayed_units_;
    s.append_failures = append_failures_;
    s.disabled = disabled_;
    return s;
}

std::vector<JournalCampaign> CampaignJournal::replay(const std::string& path) {
    const std::vector<uint8_t> buf = read_file(path);
    std::vector<JournalCampaign> out;
    if (buf.empty()) return out;
    std::unordered_map<uint64_t, size_t> index;  // campaign id -> out slot
    // Per-campaign (fault, epoch) coverage, parallel to `out` and flattened
    // fault-major; only allocated for epoched campaigns. Keyed by absolute
    // epoch index, so replay is robust to a resume that re-split the epoch
    // axis differently than the crashed run.
    std::vector<std::vector<bool>> cover;
    walk_frames(buf, [&](std::span<const uint8_t> payload) {
        try {
            util::WireReader r(payload);
            switch (static_cast<RecordType>(r.u8())) {
                case RecordType::Admit: {
                    JournalCampaign rec;
                    rec.campaign_id = r.u64();
                    rec.design_hash = r.u64();
                    rec.stimulus.kind = r.str();
                    const uint64_t plen = r.varint();
                    if (plen > r.remaining()) {
                        throw util::WireError("stimulus payload truncated");
                    }
                    rec.stimulus.payload.reserve(plen);
                    for (uint64_t i = 0; i < plen; ++i) {
                        rec.stimulus.payload.push_back(r.u8());
                    }
                    rec.options.engine = canonical::get_engine_options(r);
                    rec.options.num_shards = r.u32();
                    rec.options.shard_policy =
                        static_cast<ShardPolicy>(r.u8());
                    rec.options.priority = static_cast<Priority>(r.u8());
                    rec.options.max_workers = r.u32();
                    rec.options.weight = r.u32();
                    rec.options.epoch_split = r.u32();
                    rec.num_epochs = std::max<uint32_t>(1, r.u32());
                    const uint64_t n = r.varint();
                    if (n > r.remaining()) {
                        throw util::WireError("fault list truncated");
                    }
                    rec.faults.reserve(n);
                    for (uint64_t i = 0; i < n; ++i) {
                        rec.faults.push_back(canonical::get_fault(r));
                    }
                    r.expect_end();
                    rec.unit_done.assign(rec.faults.size(), false);
                    rec.verdicts.assign(rec.faults.size(), false);
                    index[rec.campaign_id] = out.size();
                    cover.emplace_back(
                        rec.num_epochs > 1
                            ? rec.faults.size() * size_t{rec.num_epochs}
                            : 0,
                        false);
                    out.push_back(std::move(rec));
                    break;
                }
                case RecordType::Unit: {
                    const uint64_t id = r.u64();
                    (void)r.u32();  // shard index — diagnostic only
                    const uint32_t win_begin = r.u32();
                    const uint32_t win_end = r.u32();
                    const uint64_t n = r.varint();
                    if (n > r.remaining()) {
                        throw util::WireError("unit id list truncated");
                    }
                    std::vector<uint32_t> ids;
                    ids.reserve(n);
                    uint32_t prev = 0;
                    for (uint64_t i = 0; i < n; ++i) {
                        prev += static_cast<uint32_t>(r.varint());
                        ids.push_back(prev);
                    }
                    const std::vector<bool> bits = canonical::get_bitmap(r);
                    if (bits.size() != ids.size()) {
                        throw util::WireError("unit verdict count mismatch");
                    }
                    const auto it = index.find(id);
                    // Orphan units (their Admit lost to a disk fault) are
                    // tolerated: without the fault list they can't be used.
                    if (it == index.end()) break;
                    JournalCampaign& rec = out[it->second];
                    const uint32_t epochs = rec.num_epochs;
                    // A malformed/legacy window covers everything — the
                    // classic one-record-per-fault semantics.
                    const bool full_window =
                        win_end <= win_begin || epochs <= 1 ||
                        (win_begin == 0 && win_end >= epochs);
                    std::vector<bool>& cv = cover[it->second];
                    for (size_t i = 0; i < ids.size(); ++i) {
                        if (ids[i] >= rec.faults.size()) continue;
                        // Window verdicts OR: detected in any epoch
                        // detects the fault.
                        rec.verdicts[ids[i]] =
                            rec.verdicts[ids[i]] || bits[i];
                        if (full_window) {
                            rec.unit_done[ids[i]] = true;
                            continue;
                        }
                        const size_t base = size_t{ids[i]} * epochs;
                        const uint32_t hi = std::min(win_end, epochs);
                        for (uint32_t e = win_begin; e < hi; ++e) {
                            cv[base + e] = true;
                        }
                        bool all = true;
                        for (uint32_t e = 0; e < epochs && all; ++e) {
                            all = cv[base + e];
                        }
                        if (all) rec.unit_done[ids[i]] = true;
                    }
                    ++rec.units_replayed;
                    break;
                }
                case RecordType::Complete: {
                    const auto it = index.find(r.u64());
                    if (it != index.end()) out[it->second].complete = true;
                    break;
                }
                default:
                    break;  // unknown record type — forward compatibility
            }
        } catch (const util::WireError&) {
            // A record that framed correctly but decodes badly is skipped;
            // the frames after it are still independent.
        }
    });
    return out;
}

}  // namespace eraser::core
