// WorkerSupervisor: fork/exec lifecycle management for locally-spawned
// eraser_worker fleets (bench_distributed, tests, and any embedder that
// wants a same-host fleet without hand-rolling process plumbing).
//
// start() launches `workers` copies of the worker binary on ephemeral
// loopback ports, parsing each child's "LISTENING <port>" line so there is
// no bind race; ports() feeds RemoteOptions::workers. A monitor thread
// then reaps crashed children and respawns each one **on the port it
// already held** (listen_loopback binds with SO_REUSEADDR), so the
// scheduler's link lifecycle reconnects to the same address it already
// knows — the respawn and the reconnect compose into end-to-end
// self-healing. Respawns are bounded by `restart_budget` per slot; a slot
// that exhausts it is given up (the scheduler will quarantine and
// eventually eject its link).
//
// kill_worker() is the chaos harness's process-level fault: SIGKILL a
// live worker mid-campaign and let the supervisor + scheduler heal around
// it. POSIX only, like the rest of the fabric's transport.
#pragma once

#include <sys/types.h>

#include <condition_variable>
#include <csignal>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace eraser::core {

struct SupervisorOptions {
    /// Path to the worker binary (tools/eraser_worker or a custom build).
    std::string binary;
    uint32_t workers = 1;
    /// Respawns allowed per slot before the supervisor gives up on it.
    uint32_t restart_budget = 3;
    /// Crash-detection latency (monitor waitpid poll period).
    uint32_t poll_interval_ms = 20;
    /// Extra argv entries appended after "--port N" (e.g. chaos flags).
    std::vector<std::string> extra_args;
};

class WorkerSupervisor {
  public:
    explicit WorkerSupervisor(SupervisorOptions opts)
        : opts_(std::move(opts)) {}
    ~WorkerSupervisor() { stop(); }

    WorkerSupervisor(const WorkerSupervisor&) = delete;
    WorkerSupervisor& operator=(const WorkerSupervisor&) = delete;

    /// Spawns the fleet and starts the monitor. Throws util::WireError when
    /// any worker fails to launch or report its port.
    void start();

    /// Stops the monitor and SIGKILLs + reaps every live worker. Idempotent.
    void stop() noexcept;

    /// Graceful fleet teardown: stops the monitor (no more respawns), sends
    /// SIGTERM to every live worker, then waits up to `term_deadline_ms`
    /// for them to exit on their own (finishing in-flight units, see
    /// tools/eraser_worker.cpp). Stragglers past the deadline are SIGKILLed
    /// and reaped. Idempotent; a later stop()/destructor is a no-op.
    void stop_fleet(uint32_t term_deadline_ms = 5000) noexcept;

    /// Listening ports, index-aligned with the slots (stable across
    /// respawns). Valid after start().
    [[nodiscard]] std::vector<uint16_t> ports() const;

    /// Current pid of slot `i` (-1 while it is down or given up).
    [[nodiscard]] pid_t pid(size_t i) const;

    /// Sends `sig` to slot `i`'s current process, if any (chaos injection;
    /// the monitor then respawns it under the restart budget).
    void kill_worker(size_t i, int sig = SIGKILL);

    /// Total respawns across all slots so far.
    [[nodiscard]] uint32_t respawns() const;

  private:
    struct Slot {
        pid_t pid = -1;
        uint16_t port = 0;
        uint32_t respawns = 0;
        bool gave_up = false;
    };
    struct Spawned {
        pid_t pid = -1;
        uint16_t port = 0;
    };

    /// fork/exec one worker on `port` (0 = ephemeral) and parse its
    /// "LISTENING <port>" line. Returns pid -1 on failure. No lock held.
    Spawned spawn(uint16_t port);

    void monitor_loop();

    SupervisorOptions opts_;
    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::vector<Slot> slots_;   // sized at start(), never resized after
    bool stop_ = false;
    bool started_ = false;
    std::thread monitor_;
};

}  // namespace eraser::core
