#include "eraser/remote.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <thread>
#include <utility>

#include "eraser/compiled_design.h"
#include "eraser/scheduler.h"
#include "frontend/compile.h"
#include "util/diagnostics.h"
#include "util/prng.h"
#include "util/timer.h"

namespace eraser::core {

using util::WireConn;
using util::WireError;
using util::WireReader;
using util::WireWriter;

const char* to_string(LinkState s) {
    switch (s) {
        case LinkState::Connecting: return "connecting";
        case LinkState::Healthy: return "healthy";
        case LinkState::Suspect: return "suspect";
        case LinkState::Down: return "down";
        case LinkState::Probing: return "probing";
    }
    return "?";
}

// --- stimulus registry -------------------------------------------------------

namespace {

struct StimulusRegistry {
    std::mutex mu;
    std::unordered_map<std::string, StimulusBuilder> builders;
};

StimulusRegistry& stimulus_registry() {
    static StimulusRegistry* reg = new StimulusRegistry();   // never torn down
    return *reg;
}

}  // namespace

void register_stimulus_kind(const std::string& kind, StimulusBuilder builder) {
    StimulusRegistry& reg = stimulus_registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    reg.builders[kind] = std::move(builder);
}

std::unique_ptr<sim::Stimulus> build_stimulus(const StimulusSpec& spec) {
    StimulusBuilder builder;
    {
        StimulusRegistry& reg = stimulus_registry();
        std::lock_guard<std::mutex> lock(reg.mu);
        auto it = reg.builders.find(spec.kind);
        if (it == reg.builders.end()) {
            throw SimError("unregistered stimulus kind '" + spec.kind +
                           "' (call suite::register_remote_stimuli, or "
                           "register_stimulus_kind for custom kinds)");
        }
        builder = it->second;
    }
    return builder(spec.payload);
}

// --- payload codecs ----------------------------------------------------------

namespace {

void put_bytes(WireWriter& w, std::span<const uint8_t> bytes) {
    w.str(std::string_view(reinterpret_cast<const char*>(bytes.data()),
                           bytes.size()));
}

std::vector<uint8_t> get_bytes(WireReader& r) {
    const std::string s = r.str();
    return {s.begin(), s.end()};
}

// EngineOptions and verdict-bitmap codecs live in eraser/canonical.h now —
// the campaign journal's Admit/Unit records share them with these RunUnit
// frames, so the two durability surfaces cannot drift apart.
using canonical::get_bitmap;
using canonical::get_engine_options;
using canonical::put_bitmap;
using canonical::put_engine_options;

void put_faults(WireWriter& w, std::span<const fault::Fault> faults) {
    w.varint(faults.size());
    for (const fault::Fault& f : faults) canonical::put_fault(w, f);
}

std::vector<fault::Fault> get_faults(WireReader& r) {
    const uint64_t n = r.varint();
    // 4 bytes is the floor per encoded fault; bound before allocating.
    if (n > r.remaining()) throw WireError("fault list longer than frame");
    std::vector<fault::Fault> faults;
    faults.reserve(n);
    for (uint64_t i = 0; i < n; ++i) faults.push_back(canonical::get_fault(r));
    return faults;
}

// Every Instrumentation counter crosses the wire so the merged campaign
// stats are executor-independent; field order here IS the schema (bump
// kWireSchemaVersion on change).
void put_stats(WireWriter& w, const Instrumentation& s) {
    w.varint(s.bn_good_execs);
    w.varint(s.bn_candidates);
    w.varint(s.bn_executed);
    w.varint(s.bn_skipped_explicit);
    w.varint(s.bn_skipped_implicit);
    w.varint(s.bn_lane_passes);
    w.varint(s.bn_lane_survivors);
    w.varint(s.bn_lane_deferred);
    w.varint(s.audit_explicit);
    w.varint(s.audit_implicit);
    w.varint(s.audit_nonredundant);
    w.varint(s.audit_soundness_violations);
    w.varint(s.rtl_good_evals);
    w.varint(s.rtl_fault_evals);
    w.varint(static_cast<uint64_t>(s.time_behavioral.total_ns()));
    w.varint(static_cast<uint64_t>(s.time_rtl.total_ns()));
}

Instrumentation get_stats(WireReader& r) {
    Instrumentation s;
    s.bn_good_execs = r.varint();
    s.bn_candidates = r.varint();
    s.bn_executed = r.varint();
    s.bn_skipped_explicit = r.varint();
    s.bn_skipped_implicit = r.varint();
    s.bn_lane_passes = r.varint();
    s.bn_lane_survivors = r.varint();
    s.bn_lane_deferred = r.varint();
    s.audit_explicit = r.varint();
    s.audit_implicit = r.varint();
    s.audit_nonredundant = r.varint();
    s.audit_soundness_violations = r.varint();
    s.rtl_good_evals = r.varint();
    s.rtl_fault_evals = r.varint();
    s.time_behavioral.add_ns(static_cast<int64_t>(r.varint()));
    s.time_rtl.add_ns(static_cast<int64_t>(r.varint()));
    return s;
}

void send_msg(WireConn& conn, const WireWriter& w) {
    conn.send_frame(w.bytes());
}

void send_error(WireConn& conn, const std::string& message) {
    WireWriter w;
    w.u8(static_cast<uint8_t>(MsgType::Error));
    w.str(message);
    send_msg(conn, w);
}

/// Worker-side liveness pinger: sends Heartbeat{request_id} every
/// `interval_ms` until stopped. Started AFTER any stall hook fires (a
/// wedged worker must be silent, that is the point) and stopped + joined
/// BEFORE the result or error frame goes out, so the pump is the only
/// sender while it runs and every heartbeat for request N precedes
/// result N on the wire.
class HeartbeatPump {
  public:
    HeartbeatPump(WireConn& conn, uint64_t request_id, uint32_t interval_ms) {
        if (interval_ms == 0) return;
        thread_ = std::thread([this, &conn, request_id, interval_ms] {
            std::unique_lock<std::mutex> lock(mu_);
            for (;;) {
                if (cv_.wait_for(lock, std::chrono::milliseconds(interval_ms),
                                 [this] { return stop_; })) {
                    return;
                }
                WireWriter w;
                w.u8(static_cast<uint8_t>(MsgType::Heartbeat));
                w.u64(request_id);
                try {
                    conn.send_frame(w.bytes());
                } catch (const WireError&) {
                    return;   // peer gone; the serve loop will see it too
                }
            }
        });
    }

    ~HeartbeatPump() { stop(); }

    void stop() {
        if (!thread_.joinable()) return;
        {
            std::lock_guard<std::mutex> lock(mu_);
            stop_ = true;
        }
        cv_.notify_all();
        thread_.join();
    }

  private:
    std::thread thread_;
    std::mutex mu_;
    std::condition_variable cv_;
    bool stop_ = false;
};

/// One chaos die: true with probability pct/100. Always consumes exactly
/// one draw so the Prng stream stays aligned across runs.
bool chaos_roll(Prng& rng, uint32_t pct) {
    return rng.below(100) < pct;
}

}  // namespace

// --- WorkerDesignCache -------------------------------------------------------

std::shared_ptr<const CompiledDesign> WorkerDesignCache::compile(
    uint64_t hash, const std::string& source, const std::string& top) {
    // The mutex spans compilation on purpose: two connections racing on the
    // same design must not both pay the compile (compile-once is the cache's
    // contract), and worker processes have nothing better to do meanwhile.
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(hash);
    if (it != entries_.end()) return it->second.compiled;
    Entry e;
    e.design = frontend::compile(source, top);
    e.compiled = CompiledDesign::build(*e.design);
    auto compiled = e.compiled;
    entries_.emplace(hash, std::move(e));
    return compiled;
}

std::shared_ptr<const CompiledDesign> WorkerDesignCache::find(
    uint64_t hash) const {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(hash);
    return it == entries_.end() ? nullptr : it->second.compiled;
}

// --- worker serve loop -------------------------------------------------------

namespace {
/// Marks a unit in flight for the worker main's shutdown drain (see
/// WorkerHooks::busy_units); no-op when the hook is unset.
struct BusyGuard {
    std::atomic<uint32_t>* count;
    explicit BusyGuard(std::atomic<uint32_t>* c) : count(c) {
        if (count != nullptr) count->fetch_add(1, std::memory_order_relaxed);
    }
    ~BusyGuard() {
        if (count != nullptr) count->fetch_sub(1, std::memory_order_relaxed);
    }
    BusyGuard(const BusyGuard&) = delete;
    BusyGuard& operator=(const BusyGuard&) = delete;
};
}  // namespace

uint64_t serve_connection(WireConn& conn, WorkerDesignCache& cache,
                          const WorkerHooks& hooks) {
    std::vector<uint8_t> buf;

    // Versioned hello: refuse skew before trusting any field offset.
    uint32_t heartbeat_interval_ms = 0;
    if (!conn.recv_frame(buf)) return 0;
    {
        WireReader r(buf);
        if (static_cast<MsgType>(r.u8()) != MsgType::Hello) {
            send_error(conn, "expected hello");
            return 0;
        }
        const uint32_t version = r.u32();
        if (version != kWireSchemaVersion) {
            send_error(conn, "wire schema version mismatch: worker speaks " +
                                 std::to_string(kWireSchemaVersion) +
                                 ", client sent " + std::to_string(version));
            return 0;
        }
        heartbeat_interval_ms = r.u32();
        r.expect_end();
        WireWriter w;
        w.u8(static_cast<uint8_t>(MsgType::HelloAck));
        w.u32(kWireSchemaVersion);
        send_msg(conn, w);
    }

    // Per-connection chaos dice: the same seed replays the same schedule.
    Prng chaos_rng(hooks.chaos.seed);
    uint64_t units = 0;
    for (;;) {
        if (!conn.recv_frame(buf)) return units;   // clean goodbye
        WireReader r(buf);
        switch (static_cast<MsgType>(r.u8())) {
            case MsgType::CompileDesign: {
                const uint64_t hash = r.u64();
                const std::string top = r.str();
                const std::string source = r.str();
                r.expect_end();
                try {
                    auto compiled = cache.compile(hash, source, top);
                    WireWriter w;
                    w.u8(static_cast<uint8_t>(MsgType::CompileAck));
                    w.u64(hash);
                    w.u64(compiled->design_hash());
                    w.f64(compiled->compile_seconds());
                    send_msg(conn, w);
                } catch (const EraserError& e) {
                    send_error(conn, std::string("compile failed: ") +
                                         e.what());
                }
                break;
            }
            case MsgType::RunUnit: {
                const uint64_t request_id = r.u64();
                const uint64_t hash = r.u64();
                const uint32_t shard_index = r.u32();
                const EngineOptions engine = get_engine_options(r);
                StimulusSpec spec;
                spec.kind = r.str();
                spec.payload = get_bytes(r);
                spec.epochs = r.u32();
                spec.epoch_begin = r.u32();
                spec.epoch_end = r.u32();
                const std::vector<fault::Fault> faults = get_faults(r);
                r.expect_end();
                (void)shard_index;
                const BusyGuard busy(hooks.busy_units);

                ++units;
                if (hooks.die_before_result_unit == units) {
                    conn.close();   // simulated SIGKILL mid-campaign
                    return units;
                }
                // All five chaos dice roll on every unit, in field order,
                // so the schedule for a seed never depends on which faults
                // fired earlier.
                bool c_kill = false, c_stall = false, c_corrupt = false;
                bool c_drop = false, c_delay = false;
                if (hooks.chaos.enabled()) {
                    c_kill = chaos_roll(chaos_rng, hooks.chaos.kill_pct);
                    c_stall = chaos_roll(chaos_rng, hooks.chaos.stall_pct);
                    c_corrupt = chaos_roll(chaos_rng, hooks.chaos.corrupt_pct);
                    c_drop = chaos_roll(chaos_rng, hooks.chaos.drop_pct);
                    c_delay = chaos_roll(chaos_rng, hooks.chaos.delay_pct);
                }
                if (c_kill) {
                    conn.close();   // simulated crash mid-unit
                    return units;
                }
                // Stalls (ordinal and chaos) happen BEFORE the heartbeat
                // pump starts: a wedged worker is silent, and the client's
                // heartbeat deadline is what must catch it.
                if (hooks.stall_before_result_unit == units) {
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(hooks.stall_ms));
                }
                if (c_stall) {
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(hooks.chaos.stall_ms));
                }

                std::shared_ptr<const CompiledDesign> compiled =
                    cache.find(hash);
                if (!compiled) {
                    send_error(conn, "unit for uncompiled design hash");
                    break;
                }
                WireWriter w;
                bool failed = false;
                std::string failure;
                {
                    // Pump covers execution (and the chaos delay — a slow
                    // but alive worker keeps beating and must NOT be
                    // re-dispatched); joined before any frame below goes
                    // out, so it is the sole sender while alive.
                    HeartbeatPump pump(conn, request_id,
                                       heartbeat_interval_ms);
                    if (c_delay) {
                        std::this_thread::sleep_for(
                            std::chrono::milliseconds(hooks.chaos.delay_ms));
                    }
                    try {
                        auto stim = build_stimulus(spec);
                        if (spec.epochs > 0) {
                            // An epoch-annotated unit: the client windowed
                            // an epoched stimulus. Validate the window
                            // against the locally built geometry before
                            // trusting it — a disagreement means the two
                            // sides built different stimuli.
                            const uint32_t declared = stim->num_epochs();
                            if (spec.epochs != declared ||
                                spec.epoch_end <= spec.epoch_begin ||
                                spec.epoch_end > declared) {
                                throw SimError(
                                    "epoch window disagrees with the "
                                    "worker-built stimulus geometry");
                            }
                            if (spec.windowed()) {
                                stim = std::make_unique<
                                    sim::EpochWindowStimulus>(
                                    std::move(stim), spec.epoch_begin,
                                    spec.epoch_end);
                            }
                        }
                        detail::EngineOutcome out = detail::run_engine(
                            *compiled, faults, *stim, engine, nullptr);
                        w.u8(static_cast<uint8_t>(MsgType::UnitResult));
                        w.u64(request_id);
                        w.u8((out.ran ? 1 : 0) |
                             (out.canceled ? 2 : 0));
                        put_bitmap(w, out.detected);
                        w.u32(out.num_detected);
                        w.f64(out.breakdown.wall_seconds);
                        w.f64(out.breakdown.behavioral_seconds);
                        w.f64(out.breakdown.rtl_seconds);
                        w.f64(out.breakdown.stimulus_seconds);
                        put_stats(w, out.stats);
                    } catch (const EraserError& e) {
                        failed = true;
                        failure = e.what();
                    }
                }
                if (failed) {
                    send_error(conn, "unit failed: " + failure);
                    break;
                }
                if (c_drop) break;   // executed, result never sent
                if (c_corrupt) {
                    conn.send_corrupted_frame(w.bytes());
                    break;
                }
                if (hooks.garbage_result_unit == units) {
                    WireWriter garbage;
                    garbage.u8(static_cast<uint8_t>(MsgType::UnitResult));
                    garbage.u64(request_id ^ 0xBAD0BAD0BAD0BAD0ULL);
                    send_msg(conn, garbage);
                    break;
                }
                send_msg(conn, w);
                if (hooks.duplicate_result_unit == units) send_msg(conn, w);
                break;
            }
            case MsgType::Shutdown:
                return units;
            default:
                send_error(conn, "unexpected message type");
                return units;
        }
        if (hooks.stop != nullptr &&
            hooks.stop->load(std::memory_order_relaxed)) {
            // SIGTERM: the message in flight was fully answered, so this
            // return is a clean EOF at a frame boundary — the client
            // re-dispatches whatever it still wanted from us.
            return units;
        }
    }
}

// --- client link -------------------------------------------------------------

void RemoteWorkerLink::open(uint64_t expected_hash) {
    conn_.close();   // re-callable: drop any dead predecessor first
    try {
        open_impl(expected_hash);
    } catch (...) {
        conn_.close();
        throw;
    }
}

void RemoteWorkerLink::open_impl(uint64_t expected_hash) {
    conn_ = WireConn(util::connect_loopback(
        port_, std::max(1, opts_.connect_timeout_ms)));

    WireWriter hello;
    hello.u8(static_cast<uint8_t>(MsgType::Hello));
    hello.u32(kWireSchemaVersion);
    hello.u32(opts_.heartbeat_interval_ms);
    send_msg(conn_, hello);

    std::vector<uint8_t> buf;
    if (!conn_.recv_frame(buf, opts_.connect_timeout_ms)) {
        throw WireError("worker closed during hello");
    }
    {
        WireReader r(buf);
        const MsgType t = static_cast<MsgType>(r.u8());
        if (t == MsgType::Error) throw WireError("worker refused: " + r.str());
        if (t != MsgType::HelloAck) throw WireError("expected hello ack");
        const uint32_t version = r.u32();
        r.expect_end();
        if (version != kWireSchemaVersion) {
            throw WireError("worker wire schema version " +
                            std::to_string(version) + " != " +
                            std::to_string(kWireSchemaVersion));
        }
    }

    WireWriter compile;
    compile.u8(static_cast<uint8_t>(MsgType::CompileDesign));
    compile.u64(opts_.design.hash());
    compile.str(opts_.design.top);
    compile.str(opts_.design.source);
    send_msg(conn_, compile);

    if (!conn_.recv_frame(buf, opts_.compile_timeout_ms)) {
        throw WireError("worker closed during design compilation");
    }
    WireReader r(buf);
    const MsgType t = static_cast<MsgType>(r.u8());
    if (t == MsgType::Error) throw WireError("worker refused: " + r.str());
    if (t != MsgType::CompileAck) throw WireError("expected compile ack");
    if (r.u64() != opts_.design.hash()) {
        throw WireError("compile ack for a different design spec");
    }
    const uint64_t structural = r.u64();
    (void)r.f64();   // worker-side compile seconds (diagnostic)
    r.expect_end();
    if (structural != expected_hash) {
        throw WireError(
            "worker design structural hash mismatch — the shipped source "
            "does not elaborate to this Session's design (SignalIds would "
            "not translate)");
    }
}

RemoteUnitReply RemoteWorkerLink::run_unit(
    std::span<const fault::Fault> faults, const EngineOptions& engine,
    const StimulusSpec& stimulus, uint32_t shard_index) {
    const uint64_t request_id = next_request_++;
    WireWriter w;
    w.u8(static_cast<uint8_t>(MsgType::RunUnit));
    w.u64(request_id);
    w.u64(opts_.design.hash());
    w.u32(shard_index);
    put_engine_options(w, engine);
    w.str(stimulus.kind);
    put_bytes(w, stimulus.payload);
    w.u32(stimulus.epochs);
    w.u32(stimulus.epoch_begin);
    w.u32(stimulus.epoch_end);
    put_faults(w, faults);

    Stopwatch rtt;
    send_msg(conn_, w);

    // Receive loop: heartbeats from the worker re-arm a short liveness
    // deadline, so a wedged worker surfaces in ~heartbeat_timeout_ms while
    // the absolute unit deadline still bounds total wait.
    using clock = std::chrono::steady_clock;
    const auto unit_deadline = opts_.unit_timeout_ms > 0
        ? clock::now() + std::chrono::milliseconds(opts_.unit_timeout_ms)
        : clock::time_point::max();
    const bool heartbeats = opts_.heartbeat_interval_ms > 0 &&
                            opts_.heartbeat_timeout_ms > 0;
    std::vector<uint8_t> buf;
    WireReader r{std::span<const uint8_t>{}};
    for (;;) {
        int wait_ms = -1;
        if (unit_deadline != clock::time_point::max()) {
            const auto left = std::chrono::duration_cast<
                std::chrono::milliseconds>(unit_deadline - clock::now())
                .count();
            if (left <= 0) throw WireError("unit deadline exceeded");
            wait_ms = static_cast<int>(left);
        }
        if (heartbeats) {
            wait_ms = wait_ms < 0
                ? opts_.heartbeat_timeout_ms
                : std::min(wait_ms, opts_.heartbeat_timeout_ms);
        }
        if (!conn_.recv_frame(buf, wait_ms)) {
            throw WireError("worker closed before answering unit");
        }
        r = WireReader(buf);
        const MsgType t = static_cast<MsgType>(r.u8());
        if (t == MsgType::Heartbeat) {
            if (r.u64() != request_id) {
                throw WireError("heartbeat for a different request");
            }
            r.expect_end();
            continue;   // alive — re-arm the liveness deadline
        }
        if (t == MsgType::Error) throw WireError("worker error: " + r.str());
        if (t != MsgType::UnitResult) throw WireError("expected unit result");
        break;
    }
    const double round_trip = rtt.seconds();

    if (r.u64() != request_id) {
        // A stale or duplicated frame: the stream can no longer be trusted
        // to pair requests with results — abandon the worker.
        throw WireError("unit result for a different request "
                        "(duplicate or reordered frame)");
    }
    const uint8_t flags = r.u8();
    RemoteUnitReply reply;
    reply.ran = (flags & 1) != 0;
    reply.canceled = (flags & 2) != 0;
    reply.detected = get_bitmap(r);
    reply.num_detected = r.u32();
    reply.breakdown.wall_seconds = r.f64();
    reply.breakdown.behavioral_seconds = r.f64();
    reply.breakdown.rtl_seconds = r.f64();
    reply.breakdown.stimulus_seconds = r.f64();
    reply.stats = get_stats(r);
    r.expect_end();
    if (reply.detected.size() != faults.size()) {
        throw WireError("verdict bitmap length != shipped fault count");
    }

    reply.breakdown.remote = true;
    reply.breakdown.rtt_seconds =
        std::max(0.0, round_trip - reply.breakdown.wall_seconds);
    overhead_ewma_ =
        overhead_ewma_ == 0.0
            ? reply.breakdown.rtt_seconds
            : (1.0 - opts_.rtt_alpha) * overhead_ewma_ +
                  opts_.rtt_alpha * reply.breakdown.rtt_seconds;
    return reply;
}

void RemoteWorkerLink::shutdown() noexcept {
    if (!conn_.valid()) return;
    try {
        WireWriter w;
        w.u8(static_cast<uint8_t>(MsgType::Shutdown));
        send_msg(conn_, w);
    } catch (...) {
        // Goodbye is best-effort; a vanished worker needs none.
    }
    conn_.close();
}

}  // namespace eraser::core
