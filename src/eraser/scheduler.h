// CampaignScheduler: admission, priority/QoS dispatch, and the measured-cost
// feedback loop behind the Session API (each core::Session owns one).
//
// Session::submit used to bulk-enqueue every shard of every campaign onto
// the work-stealing pool in submission order; under multi-tenant load that
// gives no priority ordering, no per-campaign quota, and no backpressure.
// The scheduler instead owns every submitted campaign and feeds the pool
// one *ticket* per dispatchable shard. A ticket binds to a concrete shard
// only when a worker runs it: the worker picks, under the scheduler lock,
// the best campaign at that instant —
//
//   1. highest Priority class (strict: High > Normal > Low);
//   2. within the class, lowest inflight/weight (weighted fair share across
//      concurrently running campaigns) — or strict submission order when
//      SchedulerOptions::fair_share is off;
//   3. ties break toward the earlier submission (FIFO).
//
// A saturating campaign is therefore overtaken at every shard boundary:
// preemption is shard-granular, exactly as cancellation is cycle-granular.
// Tickets carry their campaign's class into the pool's priority-aware
// deques, so queued high-class tickets also start before queued low-class
// ones when workers free up.
//
// QoS knobs (CampaignOptions): `priority`, `max_workers` (per-campaign
// concurrent-shard quota), `weight` (fair-share proportion). Backpressure
// (SchedulerOptions): at most `max_active` campaigns run concurrently,
// further ones wait in a (priority, FIFO)-ordered admission queue of
// capacity `queue_capacity`; a full queue blocks submit() and refuses
// try_submit(). The defaults (0/0) keep the historical contract: submit is
// non-blocking and every campaign starts immediately.
//
// Cost feedback: completed shards stream their measured wall seconds and
// lane-deferral counters into the Session's CostModel (see
// eraser/compiled_design.h); subsequent submits partition with the learned
// per-signal costs, and batched campaigns order faults by learned deferral
// rate before 64-lane grouping so control-correlated faults co-batch.
//
// Distributed fabric (eraser/remote.h): when SchedulerOptions::remote
// names worker processes, the scheduler is a fleet front-end. One
// dispatcher thread per worker holds the connection and claims shards
// through the same pick policy as local tickets, so placement decisions —
// local thread vs remote worker — happen at the same instant and under the
// same priority/fair-share/quota rules. Remote-eligible campaigns are the
// ones submitted with a serializable StimulusSpec; a placement gate skips
// shipping a unit whose CostModel-predicted wall is below the link's
// observed shipping-overhead EWMA (remote cost = predicted wall + RTT).
// Any transport failure abandons the *connection* and re-dispatches the
// claimed unit: the shard index returns to a requeue list any executor can
// claim, which is sound because fault simulation is deterministic — a
// retried unit reproduces the bit-identical verdict slice, and each
// shard's outcome is still recorded exactly once (an abandoned connection
// is never read again, so duplicate/garbage frames cannot double-record).
//
// The worker *slot* is supervised, not abandoned (the self-healing fleet):
// each dispatcher runs a link lifecycle state machine (LinkState in
// eraser/remote.h) — Connecting -> Healthy -> Suspect -> Probing ->
// Healthy, reconnecting after failures with capped exponential backoff and
// deterministic jitter, re-handshaking, and keeping the link's learned
// shipping-overhead EWMA. A failure-rate window (failure_threshold within
// failure_window_ms) quarantines a flapping worker (state Down) for
// quarantine_cooldown_ms; max_quarantines trips permanent ejection.
// Forward progress never depends on the fleet: every shard also has a
// local pool ticket, so a campaign completes (bit-identically) even with
// every link Down.
//
// Determinism is non-negotiable and none of the above touches it: per-
// campaign verdict bitmaps are merged in shard-index order and are
// bit-identical under every priority / quota / fair-share / learned-cost /
// placement configuration (pinned by tests/scheduler_test.cpp and
// tests/remote_campaign_test.cpp).
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <thread>
#include <vector>

#include "eraser/journal.h"
#include "eraser/session.h"
#include "eraser/verdict_cache.h"

namespace eraser::util {
class ThreadPool;
}  // namespace eraser::util

namespace eraser::core {

class CostModel;

namespace detail {

/// Result of one engine run over one fault subset (local fault indexing).
struct EngineOutcome {
    std::vector<bool> detected;
    uint32_t num_detected = 0;
    Instrumentation stats;
    ShardBreakdown breakdown;
    bool ran = false;        // engine executed (even partially)
    bool canceled = false;   // engine stopped at a cancel check
};

/// The campaign loop for one ConcurrentSim over `faults`: reset, stimulus
/// initialization, one clocked cycle per stimulus step with output
/// observation after each cycle. Early-exits once every fault is detected,
/// or (cooperatively, at the cycle boundary) when `cancel` is raised.
/// Shared by the scheduler's shard jobs and the blocking Session::run path.
EngineOutcome run_engine(const CompiledDesign& compiled,
                         std::span<const fault::Fault> faults,
                         sim::Stimulus& stim, const EngineOptions& opts,
                         const std::atomic<bool>* cancel);

/// Fills the derived result fields (num_faults, coverage, wall seconds).
CampaignResult finish_result(CampaignResult result, uint32_t num_faults,
                             double seconds);

}  // namespace detail

/// Point-in-time counters of a scheduler (diagnostics; individual campaign
/// progress lives on CampaignHandle).
struct SchedulerStats {
    uint32_t active = 0;             // campaigns admitted, not yet finished
    uint32_t queued = 0;             // campaigns waiting for admission
    uint64_t submitted = 0;          // campaigns accepted (incl. finished)
    uint64_t rejected = 0;           // try_submit refusals by a full queue
    uint64_t shards_dispatched = 0;  // shard claims (local + remote, incl.
                                     // re-dispatched units)
    RemoteFleetStats remote;         // distributed-fabric counters
    CacheStats cache;                // verdict-cache counters (cache-global:
                                     // shared caches accumulate across
                                     // every Session using them)
    JournalStats journal;            // campaign-journal counters (journal-
                                     // global, like the cache counters)
};

class CampaignScheduler {
  public:
    /// `pool` must outlive the scheduler's last in-flight ticket (the
    /// Session drains the scheduler, then joins the pool).
    CampaignScheduler(std::shared_ptr<const CompiledDesign> compiled,
                      util::ThreadPool& pool,
                      const SchedulerOptions& opts = {});
    ~CampaignScheduler();

    CampaignScheduler(const CampaignScheduler&) = delete;
    CampaignScheduler& operator=(const CampaignScheduler&) = delete;

    /// Shards `faults` (with the learned cost table when enabled), enqueues
    /// the campaign, and returns a handle. Non-blocking unless a bounded
    /// admission queue is full, in which case it waits for space. Must not
    /// be called from a pool worker (a full queue would deadlock).
    [[nodiscard]] CampaignHandle submit(std::span<const fault::Fault> faults,
                                        StimulusFactory make_stimulus,
                                        const CampaignOptions& opts,
                                        ShardObserver observer);

    /// Like submit(), but a full admission queue refuses instead of
    /// blocking: the returned handle is invalid (`valid() == false`) and
    /// the campaign was not accepted.
    [[nodiscard]] CampaignHandle try_submit(
        std::span<const fault::Fault> faults, StimulusFactory make_stimulus,
        const CampaignOptions& opts, ShardObserver observer);

    /// submit()/try_submit() with a wire-serializable stimulus: verdicts
    /// are identical to the factory form, and the campaign becomes
    /// remote-eligible when a worker fleet is configured. Throws SimError
    /// when the spec's kind is not registered in this process.
    [[nodiscard]] CampaignHandle submit(std::span<const fault::Fault> faults,
                                        const StimulusSpec& stimulus,
                                        const CampaignOptions& opts,
                                        ShardObserver observer);
    [[nodiscard]] CampaignHandle try_submit(
        std::span<const fault::Fault> faults, const StimulusSpec& stimulus,
        const CampaignOptions& opts, ShardObserver observer);

    /// Blocks until every accepted campaign has finished (admitting queued
    /// ones past max_active). The Session destructor's drain step; requires
    /// pool workers to still be running.
    void drain();

    /// Winds work down per `mode` (see ShutdownMode in eraser/campaign.h)
    /// and stops admission: later submits throw SimError. Checkpoint/Abort
    /// publish interrupted campaigns with `canceled = true` and leave them
    /// resumable in the journal (no Complete record). Idempotent.
    void shutdown(ShutdownMode mode);

    /// Resubmits an interrupted journaled campaign: units already in the
    /// log are served from it (no engine work), the remainder is sharded
    /// and dispatched normally, and new unit completions append under the
    /// campaign's original journal id. The merged bitmap is bit-identical
    /// to an uninterrupted run (determinism). Throws SimError when the
    /// record's design hash does not match this scheduler's design.
    [[nodiscard]] CampaignHandle recover(const JournalCampaign& rec);

    [[nodiscard]] const CostModel& cost_model() const { return *cost_model_; }
    [[nodiscard]] SchedulerStats stats() const;

  private:
    std::shared_ptr<detail::CampaignState> make_state(
        std::span<const fault::Fault> faults, StimulusFactory make_stimulus,
        const CampaignOptions& opts, ShardObserver observer,
        const StimulusSpec* remote_spec, const JournalCampaign* resume);

    /// Shared acceptance tail of submit()/try_submit(); caller holds mu_
    /// with backpressure already resolved.
    CampaignHandle accept_locked(std::shared_ptr<detail::CampaignState> st);

    /// Shards of `st` a worker could start right now (remaining undispatched,
    /// capped by the campaign's quota headroom). Caller holds mu_.
    [[nodiscard]] uint32_t dispatchable_locked(
        const detail::CampaignState& st) const;

    /// Admits queued campaigns while the active set has room (always, when
    /// draining), issuing their tickets. Caller holds mu_.
    void admit_locked();

    /// Submits `count` tickets at priority class `cls`. Caller holds mu_.
    void issue_tickets_locked(uint32_t count, unsigned cls);

    /// Withdraws a campaign from the admission queue if it is still
    /// waiting there (cancel-before-admission path); returns null when it
    /// was already admitted or finalized elsewhere.
    std::shared_ptr<detail::CampaignState> take_if_queued(
        detail::CampaignState* raw);

    /// Finalizes a campaign with no shards in place (empty fault list):
    /// it never touches the queue or the pool, wait() returns immediately.
    CampaignHandle finish_empty(std::shared_ptr<detail::CampaignState> st);

    /// One pool ticket: pick the best dispatchable shard, run it, feed the
    /// cost model, update scheduling state.
    void run_ticket();

    /// Claims one shard of `st` (requeued units first, then the cursor)
    /// and bumps the inflight/dispatch counters. Caller holds mu_ and has
    /// checked dispatchable_locked(st) > 0.
    size_t claim_shard_locked(detail::CampaignState& st);

    /// Returns a claim after its job ran (or failed): frees the quota
    /// slot, issues tickets for newly dispatchable shards, and retires the
    /// campaign when this was its last job. Caller holds mu_.
    void release_claim_locked(const std::shared_ptr<detail::CampaignState>& st);

    /// Health record of one configured worker slot, index-aligned with
    /// RemoteOptions::workers. All fields guarded by mu_.
    struct WorkerSlotState {
        LinkState state = LinkState::Connecting;
        bool ever_connected = false;
        bool ejected = false;
        uint32_t handshake_failures = 0;
        uint32_t links_lost = 0;
        uint32_t reconnects = 0;
        uint32_t quarantines = 0;
        uint64_t units_completed = 0;
        double overhead_ewma = 0.0;
        /// Recent failure timestamps inside the sliding window.
        std::deque<std::chrono::steady_clock::time_point> failures;
    };

    /// What the failure-rate window decided for the latest failure.
    enum class FailureAction { kBackoff, kQuarantine, kEject };

    /// Records one failure (handshake or link loss) against slot `w`'s
    /// sliding window and advances its state machine. Caller holds mu_.
    FailureAction record_failure_locked(WorkerSlotState& slot);

    /// Sleeps up to `ms` on work_cv_, returning early when stop_remote_
    /// rises (so backoff/cooldown pauses never delay shutdown).
    void pause_remote_ms(uint32_t ms);

    /// Supervision loop of one remote worker slot: drives the link
    /// lifecycle (connect/reconnect with backoff, quarantine cooldowns,
    /// ejection) and hands healthy links to serve_link().
    void remote_worker_loop(size_t worker_index);

    /// Claims and ships units over an open link until the scheduler stops
    /// (returns true) or the link dies (returns false after requeuing the
    /// claimed unit).
    bool serve_link(size_t worker_index, RemoteWorkerLink& link);

    /// Best remote-eligible campaign right now under the local pick policy
    /// plus the placement gate; null when the link should idle. Caller
    /// holds mu_.
    std::shared_ptr<detail::CampaignState> pick_remote_locked(
        const RemoteWorkerLink& link);

    std::shared_ptr<const CompiledDesign> compiled_;
    util::ThreadPool& pool_;
    SchedulerOptions opts_;
    std::shared_ptr<CostModel> cost_model_;

    mutable std::mutex mu_;
    std::condition_variable space_cv_;   // submitters blocked on a full queue
    std::condition_variable drain_cv_;   // drain() waits for quiescence
    std::condition_variable work_cv_;    // remote dispatchers wait for units
    std::deque<std::shared_ptr<detail::CampaignState>> queued_;
    std::vector<std::shared_ptr<detail::CampaignState>> active_;
    uint64_t next_seq_ = 0;
    uint64_t submitted_ = 0;
    uint64_t rejected_ = 0;
    uint64_t shards_dispatched_ = 0;
    bool draining_ = false;
    bool stopping_ = false;          // shutdown() ran: no dispatch, no admits

    // Distributed fabric (all counters under mu_; threads joined by the
    // destructor after the Session's drain).
    bool stop_remote_ = false;
    uint32_t workers_connected_ = 0;
    uint64_t units_dispatched_ = 0;
    uint64_t units_completed_ = 0;
    uint64_t units_redispatched_ = 0;
    uint64_t units_skipped_cost_ = 0;
    std::vector<WorkerSlotState> worker_slots_;   // per-slot health records
    std::vector<std::thread> remote_threads_;
};

}  // namespace eraser::core
