#include "eraser/scheduler.h"

#include <algorithm>
#include <cmath>
#include <exception>
#include <utility>

#include "sim/stimulus_pipeline.h"
#include "util/diagnostics.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace eraser::core {

// --- engine loop (shared with the blocking Session::run path) ---------------

namespace detail {

namespace {

/// DriveHandle over the concurrent engine (good-network inputs; fault views
/// follow automatically, modulo pinned input faults).
class ConcurrentHandle final : public sim::DriveHandle {
  public:
    explicit ConcurrentHandle(ConcurrentSim& sim) : sim_(sim) {}
    void set_input(rtl::SignalId sig, uint64_t value) override {
        sim_.poke(sig, value);
    }
    void load_array(rtl::ArrayId arr,
                    std::span<const uint64_t> words) override {
        sim_.load_array(arr, words);
    }

  private:
    ConcurrentSim& sim_;
};

/// Below this many cycles a pipeline's thread spawn costs more than the
/// generation it could hide; run the classic inline loop instead.
constexpr uint32_t kPipelineMinCycles = 64;

/// One reset-to-end engine pass over cycles [begin, end): resets the sim,
/// replays the stimulus's initialize, then drives/ticks/observes each
/// cycle — with the stimulus generation overlapped on a helper thread when
/// the pass is long enough to pay for it (the recorded drive calls replay
/// in exact call order, so pipelining is verdict-neutral). Returns true
/// when the pass was canceled mid-way. `stimulus_seconds` accumulates the
/// time the engine sat blocked waiting for generation.
bool run_epoch_pass(ConcurrentSim& sim, sim::Stimulus& stim,
                    sim::DriveHandle& handle, rtl::SignalId clk,
                    uint32_t begin, uint32_t end, size_t nfaults,
                    const EngineOptions& opts,
                    const std::atomic<bool>* cancel,
                    double& stimulus_seconds) {
    sim.reset();
    stim.initialize(handle);
    if (opts.pipeline_stimulus && end - begin >= kPipelineMinCycles) {
        sim::StimulusPipeline pipe(stim, begin, end);
        for (uint32_t c = begin; c < end; ++c) {
            if (cancel != nullptr &&
                cancel->load(std::memory_order_relaxed)) {
                return true;   // destructor stops + joins the producer
            }
            const sim::RecordedCycle* cycle =
                pipe.acquire(&stimulus_seconds);
            if (cycle == nullptr) break;
            cycle->replay(handle);
            pipe.release();
            sim.tick(clk);
            sim.observe_outputs();
            if (sim.num_detected() == nfaults) break;   // all dropped
        }
        return false;
    }
    for (uint32_t c = begin; c < end; ++c) {
        if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
            return true;
        }
        stim.apply(c, handle);
        sim.tick(clk);
        sim.observe_outputs();
        if (sim.num_detected() == nfaults) break;   // all dropped
    }
    return false;
}

}  // namespace

EngineOutcome run_engine(const CompiledDesign& compiled,
                         std::span<const fault::Fault> faults,
                         sim::Stimulus& stim, const EngineOptions& opts,
                         const std::atomic<bool>* cancel) {
    Stopwatch engine_watch;
    const rtl::Design& design = compiled.design();
    stim.bind(design);
    const rtl::SignalId clk = design.signal_id(stim.clock_name());
    const uint32_t epochs = std::max<uint32_t>(1, stim.num_epochs());

    EngineOutcome out;
    out.ran = true;
    if (epochs == 1) {
        ConcurrentSim sim(compiled, faults, opts);
        ConcurrentHandle handle(sim);
        out.canceled = run_epoch_pass(
            sim, stim, handle, clk, 0, stim.num_cycles(), faults.size(),
            opts, cancel, out.breakdown.stimulus_seconds);
        out.detected = sim.detected();
        out.num_detected = sim.num_detected();
        out.stats = sim.stats();
    } else {
        // Epoched stimulus: each epoch is an independent reset-to-end pass
        // (that independence is exactly what num_epochs() > 1 declares),
        // and the fault's verdict is the OR over epochs. Faults detected
        // in an earlier epoch drop out of later passes — sound under OR,
        // and the progressive dropout is where few-fault/long-stimulus
        // campaigns win. This serial loop is the oracle the 2D window
        // split is bit-identical to: a window unit runs the identical
        // passes for its epoch subrange.
        out.detected.assign(faults.size(), false);
        std::vector<fault::Fault> alive(faults.begin(), faults.end());
        std::vector<uint32_t> alive_ids(faults.size());
        for (uint32_t i = 0; i < alive_ids.size(); ++i) alive_ids[i] = i;
        for (uint32_t e = 0; e < epochs && !alive.empty(); ++e) {
            const auto [cb, ce] = stim.epoch_range(e);
            ConcurrentSim sim(compiled, alive, opts);
            ConcurrentHandle handle(sim);
            out.canceled = run_epoch_pass(
                sim, stim, handle, clk, cb, ce, alive.size(), opts, cancel,
                out.breakdown.stimulus_seconds);
            out.stats.merge_from(sim.stats());
            const std::vector<bool>& det = sim.detected();
            std::vector<fault::Fault> next;
            std::vector<uint32_t> next_ids;
            for (size_t i = 0; i < alive.size(); ++i) {
                if (det[i]) {
                    out.detected[alive_ids[i]] = true;
                    ++out.num_detected;
                } else {
                    next.push_back(alive[i]);
                    next_ids.push_back(alive_ids[i]);
                }
            }
            alive.swap(next);
            alive_ids.swap(next_ids);
            if (out.canceled) break;
        }
    }
    out.breakdown.wall_seconds = engine_watch.seconds();
    out.breakdown.behavioral_seconds =
        out.stats.time_behavioral.total_seconds();
    out.breakdown.rtl_seconds = out.stats.time_rtl.total_seconds();
    return out;
}

CampaignResult finish_result(CampaignResult result, uint32_t num_faults,
                             double seconds) {
    result.num_faults = num_faults;
    result.coverage_percent =
        num_faults == 0 ? 0.0
                        : 100.0 * static_cast<double>(result.num_detected) /
                              static_cast<double>(num_faults);
    result.seconds = seconds;
    return result;
}

/// Everything one submitted campaign owns. Kept alive by the handle copies
/// and by every in-flight shard job, so it outlives the Session if needed.
struct CampaignState {
    // Immutable after submit().
    std::shared_ptr<const CompiledDesign> compiled;
    EngineOptions engine_opts;
    StimulusFactory make_stimulus;
    ShardObserver observer;
    std::vector<Shard> shards;
    uint32_t num_faults = 0;
    uint32_t num_threads = 0;   // reported in the result
    /// Wire form of the stimulus when the campaign was submitted with a
    /// StimulusSpec; `remote_ok` marks it eligible for remote placement
    /// (plain-factory campaigns can never cross a process boundary).
    StimulusSpec stim_spec;
    bool remote_ok = false;
    /// Verdict cache binding (campaigns submitted with a StimulusSpec when
    /// the scheduler has one): hits were served at submit time, completed
    /// shards insert their verdicts back under `cache_ctx`.
    std::shared_ptr<VerdictCache> cache;
    uint64_t cache_ctx = 0;
    /// Cache-hit faults (global ids, ascending) and their verdicts — merged
    /// into the result bitmap ahead of the shard outcomes. The shards only
    /// cover the misses.
    std::vector<uint32_t> hit_ids;
    std::vector<bool> hit_verdicts;
    uint32_t hit_detected = 0;
    /// Campaign-journal binding (eraser/journal.h): admission was appended
    /// under `journal_id`; completed units append their verdict slice
    /// before the outcome surfaces, and finalization appends Complete —
    /// unless `checkpointed`, i.e. a shutdown interrupted the campaign and
    /// left it resumable.
    std::shared_ptr<CampaignJournal> journal;
    uint64_t journal_id = 0;
    std::atomic<bool> checkpointed{false};
    /// Faults replayed from the journal (Session::recover): global ids
    /// (ascending) and verdicts, merged like cache hits — served without
    /// engine work. Disjoint from hit_ids and from every shard.
    std::vector<uint32_t> replay_ids;
    std::vector<bool> replay_verdicts;
    uint32_t replay_detected = 0;
    uint32_t resumed_units = 0;
    /// 2D (fault, epoch) packing: the stimulus's declared epoch count and
    /// the split chosen at admission. With epoch_splits > 1 each fault
    /// appears in one shard per epoch window; merged_result ORs the window
    /// verdicts back to per-fault bits.
    uint32_t num_epochs = 1;
    uint32_t epoch_splits = 1;
    /// Exact progress accounting under 2D (guarded by epoch_mu, used only
    /// when epoch_splits > 1): per-fault count of windows still owing a
    /// verdict, and the OR-accumulated detection so far. faults_done /
    /// detected_done bump only when a fault's *last* window lands.
    std::mutex epoch_mu;
    std::vector<uint32_t> windows_left;   // by global fault id
    std::vector<bool> det_acc;            // by global fault id
    /// Exactly-once guard across the finalization paths (last shard job vs
    /// cancel-withdraw vs shutdown's forced finalize).
    std::atomic<bool> finalized{false};

    // Scheduling identity/state, guarded by the scheduler's mutex (never
    // by st->mu — the scheduler may outlive neither).
    Priority priority = Priority::Normal;
    uint32_t weight = 1;
    uint32_t quota = 0;          // max shards in flight, 0 = unlimited
    uint64_t seq = 0;            // admission FIFO order within a class
    uint32_t next_shard = 0;     // first never-claimed shard index
    std::vector<uint32_t> requeued;   // failed remote units awaiting retry
    uint32_t inflight = 0;       // shards currently running
    uint32_t jobs_done = 0;      // shards whose job returned

    // Lock-free progress counters (shard-granular).
    std::atomic<bool> cancel{false};
    std::atomic<uint32_t> shards_done{0};
    std::atomic<uint32_t> faults_done{0};
    std::atomic<uint32_t> detected_done{0};
    std::atomic<bool> finished_flag{false};

    // Written by the owning shard job only (disjoint indices).
    std::vector<EngineOutcome> outcomes;
    std::vector<std::exception_ptr> errors;

    std::mutex observer_mu;   // serializes ShardObserver invocations

    /// Guards the terminal observer event: fired exactly once per campaign
    /// (by whichever finalization path gets there first), always before the
    /// result becomes waitable. An observer throw on the terminal event is
    /// recorded here and rethrown from wait().
    std::atomic<bool> terminal_fired{false};
    std::exception_ptr terminal_error;

    std::mutex mu;            // guards finished/result/finished_jobs
    std::condition_variable cv;
    uint32_t finished_jobs = 0;
    bool finished = false;
    CampaignResult result;

    /// Installed by the scheduler before acceptance, cleared at
    /// finalization under `mu`, consumed and invoked under `mu` by the
    /// first cancel(): withdraws the campaign from the admission queue if
    /// it is still waiting there, returning true so cancel() finalizes it
    /// in place (outside `mu` — the terminal observer callback must not run
    /// under any campaign lock) and wait() returns without needing a
    /// worker. The under-`mu` protocol is what keeps the captured scheduler
    /// pointer safe: a live hook implies an unfinalized campaign, which
    /// keeps the Session's drain (and thus the scheduler's destruction)
    /// blocked while the hook runs.
    std::function<bool()> notify_cancel;

    Stopwatch watch;          // started at submit(); queue_seconds baseline
};

}  // namespace detail

using detail::CampaignState;
using detail::EngineOutcome;

namespace {

/// Deterministic merge: shards in index order, global ids within each
/// shard are ascending, so the bitmap assembly order is fixed regardless
/// of completion order. Partial (canceled) shard outcomes contribute their
/// verdicts-so-far but do not count as completed work. Under a 2D epoch
/// split one fault spans several shards (one per window); the shard pass
/// ORs, which for the classic disjoint layout degenerates to assignment —
/// and num_detected is recounted from the folded bitmap, so a fault
/// detected in two windows counts once.
CampaignResult merged_result(const CampaignState& st) {
    CampaignResult result;
    result.detected.assign(st.num_faults, false);
    // Cache hits first (ascending global ids), then the shard outcomes —
    // hit and miss id sets are disjoint, so the order between the two
    // passes cannot change a bit.
    for (size_t i = 0; i < st.hit_ids.size(); ++i) {
        result.detected[st.hit_ids[i]] = st.hit_verdicts[i];
    }
    result.cache_hits = static_cast<uint32_t>(st.hit_ids.size());
    // Journal-replayed faults (Session::recover): a third disjoint id set,
    // order-independent for the same reason as the cache hits.
    for (size_t i = 0; i < st.replay_ids.size(); ++i) {
        result.detected[st.replay_ids[i]] = st.replay_verdicts[i];
    }
    result.resumed_units = st.resumed_units;
    uint32_t completed = 0;
    for (size_t s = 0; s < st.shards.size(); ++s) {
        const EngineOutcome& out = st.outcomes[s];
        if (!out.ran) continue;
        const Shard& shard = st.shards[s];
        for (size_t i = 0; i < shard.global_ids.size(); ++i) {
            if (out.detected[i]) result.detected[shard.global_ids[i]] = true;
        }
        result.stats.merge_from(out.stats);
        result.stats.shards.push_back(out.breakdown);
        if (!out.canceled) ++completed;
    }
    for (size_t i = 0; i < result.detected.size(); ++i) {
        if (result.detected[i]) ++result.num_detected;
    }
    result.canceled = completed != st.shards.size();
    result.num_shards = static_cast<uint32_t>(st.shards.size());
    result.num_threads = st.num_threads;
    return detail::finish_result(std::move(result), st.num_faults,
                                 st.watch.seconds());
}

/// Publishes the merged result and flips the finished flags. Caller holds
/// st.mu and must notify st.cv afterwards.
void publish_result_locked(CampaignState& st, CampaignResult result) {
    st.result = std::move(result);
    st.finished = true;
    // Under the lock: once a waiter can observe finished, the lock-free
    // flag must agree (cancel()/finished() read it).
    st.finished_flag.store(true, std::memory_order_release);
    st.notify_cancel = nullptr;   // the scheduler is done with us
}

/// Fires the terminal observer event, exactly once per campaign no matter
/// how many finalization paths race (last shard job vs cancel-before-
/// admission vs empty submission). Must be called with NO campaign lock
/// held, and before the result is published — wait() returning implies the
/// observer has seen its last event.
void fire_terminal(CampaignState& st) {
    if (st.terminal_fired.exchange(true, std::memory_order_acq_rel)) return;
    if (!st.observer) return;
    static const std::vector<uint32_t> kNoIds;
    static const std::vector<bool> kNoVerdicts;
    const ShardBreakdown none{};
    const ShardEvent event{ShardEvent::kTerminalShard, true, kNoIds,
                           kNoVerdicts, none};
    try {
        std::lock_guard<std::mutex> lock(st.observer_mu);
        st.observer(event);
    } catch (...) {
        // Rethrown from wait(); must not block finalization.
        st.terminal_error = std::current_exception();
    }
}

void finalize_campaign(CampaignState& st) {
    // Exactly once: the last shard job, a cancel-withdraw, and a
    // shutdown's forced finalize can race here.
    if (st.finalized.exchange(true, std::memory_order_acq_rel)) return;
    if (st.journal && st.journal_id != 0 &&
        !st.checkpointed.load(std::memory_order_relaxed)) {
        // Write-ahead: the Complete record is durable before wait() can
        // observe the result, so recovery never resurrects a finished (or
        // canceled) campaign. Checkpointed campaigns skip it on purpose —
        // the missing Complete is what makes them resumable.
        st.journal->append_complete(st.journal_id);
    }
    fire_terminal(st);   // terminal strictly happens-before finished
    CampaignResult result = merged_result(st);
    if (st.cache && st.epoch_splits > 1 && !result.canceled) {
        // The window units published only window-context verdicts; now that
        // every window is in, the OR-folded per-fault verdicts are the
        // full-campaign truth — insert them under the full context so a
        // repeat campaign (any epoch split, including none) hits.
        std::vector<fault::Fault> folded_faults;
        std::vector<bool> folded_verdicts;
        for (size_t s = 0; s < st.shards.size(); ++s) {
            const Shard& shard = st.shards[s];
            if (shard.epoch_begin != 0) continue;   // one window per fault
            for (size_t i = 0; i < shard.faults.size(); ++i) {
                folded_faults.push_back(shard.faults[i]);
                folded_verdicts.push_back(
                    result.detected[shard.global_ids[i]]);
            }
        }
        st.cache->insert(st.cache_ctx, folded_faults, folded_verdicts);
    }
    {
        std::lock_guard<std::mutex> lock(st.mu);
        publish_result_locked(st, std::move(result));
    }
    st.cv.notify_all();
}

/// Post-run bookkeeping shared by local shard jobs and remote unit
/// replies: stores the outcome, bumps progress counters, streams the shard
/// event, and finalizes the campaign when this was the last job. The
/// caller has stamped `out.breakdown.queue_seconds`; the rest of the
/// breakdown identity is stamped here. Returns true when the shard ran to
/// completion (its outcome should feed the cost model).
bool record_outcome(const std::shared_ptr<CampaignState>& st, size_t s,
                    EngineOutcome out) {
    const Shard& shard = st->shards[s];
    out.breakdown.shard = static_cast<uint32_t>(s);
    out.breakdown.faults = static_cast<uint32_t>(shard.faults.size());
    out.breakdown.detected = out.num_detected;
    out.breakdown.est_cost = shard.est_cost;
    out.breakdown.epoch_begin = shard.epoch_begin;
    out.breakdown.epoch_end = shard.epoch_end;
    st->outcomes[s] = std::move(out);

    const EngineOutcome& stored = st->outcomes[s];
    const bool completed = stored.ran && !stored.canceled;
    if (completed) {
        if (st->journal && st->journal_id != 0) {
            // Write-ahead: the unit's verdict slice is journaled before the
            // cache insert, the progress counters, or the observer can
            // surface it — a crash after any of those finds the unit on
            // disk, never the other way around.
            st->journal->append_unit(st->journal_id,
                                     static_cast<uint32_t>(s),
                                     shard.global_ids, stored.detected,
                                     stored.breakdown);
        }
        // Publication is the insertion point, and only full runs publish —
        // the same guard the CostModel feedback applies: a canceled shard's
        // partial bitmap must never enter the store. A window unit's bitmap
        // is an epoch-subrange verdict, not the fault's verdict, so it goes
        // under a window-specific context key; the full-campaign context
        // only receives OR-folded verdicts at finalization.
        if (st->cache) {
            if (shard.epoch_end - shard.epoch_begin < st->num_epochs) {
                StimulusSpec ws = st->stim_spec;
                ws.epochs = st->num_epochs;
                ws.epoch_begin = shard.epoch_begin;
                ws.epoch_end = shard.epoch_end;
                st->cache->insert(
                    VerdictCache::context_key(st->compiled->design_hash(),
                                              ws, st->engine_opts),
                    shard.faults, stored.detected);
            } else {
                st->cache->insert(st->cache_ctx, shard.faults,
                                  stored.detected);
            }
        }
        st->shards_done.fetch_add(1, std::memory_order_relaxed);
        if (st->epoch_splits > 1) {
            // A fault is *done* only when its last window lands; its
            // detection is the OR over windows. Exact accounting keeps
            // progress() monotonic and ≤ totals under 2D.
            uint32_t fresh = 0;
            uint32_t fresh_detected = 0;
            {
                std::lock_guard<std::mutex> lock(st->epoch_mu);
                for (size_t i = 0; i < shard.global_ids.size(); ++i) {
                    const uint32_t gid = shard.global_ids[i];
                    if (stored.detected[i]) st->det_acc[gid] = true;
                    if (--st->windows_left[gid] == 0) {
                        ++fresh;
                        if (st->det_acc[gid]) ++fresh_detected;
                    }
                }
            }
            st->faults_done.fetch_add(fresh, std::memory_order_relaxed);
            st->detected_done.fetch_add(fresh_detected,
                                        std::memory_order_relaxed);
        } else {
            st->faults_done.fetch_add(
                static_cast<uint32_t>(shard.faults.size()),
                std::memory_order_relaxed);
            st->detected_done.fetch_add(stored.num_detected,
                                        std::memory_order_relaxed);
        }
        if (st->observer) {
            // An observer that throws must not stall the campaign (the
            // finished_jobs increment below is what unblocks wait()); the
            // exception is recorded and rethrown from wait() instead.
            try {
                const ShardEvent event{static_cast<uint32_t>(s), false,
                                       shard.global_ids, stored.detected,
                                       stored.breakdown};
                std::lock_guard<std::mutex> lock(st->observer_mu);
                st->observer(event);
            } catch (...) {
                st->errors[s] = std::current_exception();
            }
        }
    }

    bool last = false;
    {
        std::lock_guard<std::mutex> lock(st->mu);
        last = ++st->finished_jobs == st->shards.size();
    }
    if (last) finalize_campaign(*st);
    return completed;
}

/// Runs shard `s` of `st` on the calling worker thread, then records it.
bool run_shard_job(const std::shared_ptr<CampaignState>& st, size_t s) {
    EngineOutcome out;
    const double queue_seconds = st->watch.seconds();
    if (!st->cancel.load(std::memory_order_relaxed)) {
        try {
            auto stim = st->make_stimulus();
            const Shard& sh = st->shards[s];
            if (sh.epoch_end - sh.epoch_begin < st->num_epochs) {
                stim = std::make_unique<sim::EpochWindowStimulus>(
                    std::move(stim), sh.epoch_begin, sh.epoch_end);
            }
            out = detail::run_engine(*st->compiled, sh.faults, *stim,
                                     st->engine_opts, &st->cancel);
        } catch (...) {
            st->errors[s] = std::current_exception();
            out = EngineOutcome{};
        }
    }
    out.breakdown.queue_seconds = queue_seconds;
    return record_outcome(st, s, std::move(out));
}

/// A campaign whose admission was already journaled but that the scheduler
/// then refused (full queue) or rejected (shutdown) gets a Complete
/// tombstone, so recovery never resurrects work the caller was told did
/// not run.
void journal_refusal(CampaignState& st) {
    if (st.journal && st.journal_id != 0) {
        st.journal->append_complete(st.journal_id);
    }
}

void require_valid(const std::shared_ptr<CampaignState>& state) {
    if (!state) {
        throw SimError("empty CampaignHandle (default-constructed or "
                       "refused by try_submit; only accepted submissions "
                       "produce live handles)");
    }
}

}  // namespace

// --- CampaignHandle ---------------------------------------------------------

const CampaignResult& CampaignHandle::wait() {
    require_valid(state_);
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->cv.wait(lock, [&] { return state_->finished; });
    for (const auto& err : state_->errors) {
        if (err) std::rethrow_exception(err);
    }
    if (state_->terminal_error) {
        std::rethrow_exception(state_->terminal_error);
    }
    return state_->result;
}

bool CampaignHandle::cancel() {
    require_valid(state_);
    const bool already_finished =
        state_->finished_flag.load(std::memory_order_acquire);
    state_->cancel.store(true, std::memory_order_relaxed);
    // Poke the scheduler: a campaign still waiting in the admission queue
    // is withdrawn and finalized right here instead of waiting out the
    // campaigns ahead of it. The hook is consumed and invoked UNDER st->mu:
    // finalization clears it under the same mutex, so a live hook implies
    // the campaign is unfinalized, hence still in the scheduler's
    // queued/active sets, hence Session::~Session's drain has not returned
    // and the captured scheduler is alive for the duration of the call.
    // The hook only *withdraws* (returning whether it did); finalization —
    // terminal observer event, then result publication — happens out here,
    // outside st->mu, because the observer is user code that may itself
    // call cancel()/wait() on this handle.
    bool withdrawn = false;
    {
        std::lock_guard<std::mutex> lock(state_->mu);
        std::function<bool()> notify = std::move(state_->notify_cancel);
        state_->notify_cancel = nullptr;
        if (notify) withdrawn = notify();
    }
    if (withdrawn) finalize_campaign(*state_);
    return !already_finished;
}

CampaignProgress CampaignHandle::progress() const {
    require_valid(state_);
    CampaignProgress p;
    p.shards_total = static_cast<uint32_t>(state_->shards.size());
    p.shards_done = state_->shards_done.load(std::memory_order_relaxed);
    p.faults_total = state_->num_faults;
    p.faults_done = state_->faults_done.load(std::memory_order_relaxed);
    p.detected_so_far =
        state_->detected_done.load(std::memory_order_relaxed);
    p.cancel_requested = state_->cancel.load(std::memory_order_relaxed);
    p.finished = state_->finished_flag.load(std::memory_order_acquire);
    return p;
}

bool CampaignHandle::finished() const {
    require_valid(state_);
    return state_->finished_flag.load(std::memory_order_acquire);
}

// --- CampaignScheduler ------------------------------------------------------

CampaignScheduler::CampaignScheduler(
    std::shared_ptr<const CompiledDesign> compiled, util::ThreadPool& pool,
    const SchedulerOptions& opts)
    : compiled_(std::move(compiled)),
      pool_(pool),
      opts_(opts),
      cost_model_(std::make_shared<CostModel>(*compiled_, opts.cost_alpha)) {
    if (opts_.verdict_cache) {
        // Warm start: adopt the learned cost table a previous Session
        // persisted for this design (restore() refuses mismatched signal
        // spaces, so a different design's table can never leak in).
        if (const auto snap = opts_.verdict_cache->find_cost_model(
                compiled_->design_hash())) {
            (void)cost_model_->restore(*snap);
        }
    }
    if (opts_.remote.enabled()) {
        worker_slots_.resize(opts_.remote.workers.size());
        remote_threads_.reserve(opts_.remote.workers.size());
        for (size_t w = 0; w < opts_.remote.workers.size(); ++w) {
            remote_threads_.emplace_back(
                [this, w] { remote_worker_loop(w); });
        }
    }
}

// The Session drains before tearing the pool down, so by the time the
// scheduler destructs no ticket references it and every remote link is
// idle — the dispatcher threads just need waking and joining.
CampaignScheduler::~CampaignScheduler() {
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_remote_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& t : remote_threads_) t.join();

    if (opts_.verdict_cache) {
        // Warm-start store-back: what this Session learned — the cost
        // table and each worker slot's shipping-overhead EWMA — outlives
        // it. Slots are quiescent here (dispatchers joined above).
        if (cost_model_->observations() > 0) {
            opts_.verdict_cache->store_cost_model(compiled_->design_hash(),
                                                  cost_model_->snapshot());
        }
        for (size_t w = 0; w < worker_slots_.size(); ++w) {
            opts_.verdict_cache->store_worker_overhead(
                opts_.remote.workers[w], worker_slots_[w].overhead_ewma);
        }
    }
}

std::shared_ptr<CampaignState> CampaignScheduler::make_state(
    std::span<const fault::Fault> faults, StimulusFactory make_stimulus,
    const CampaignOptions& opts, ShardObserver observer,
    const StimulusSpec* remote_spec, const JournalCampaign* resume) {
    auto st = std::make_shared<CampaignState>();
    st->compiled = compiled_;
    st->engine_opts = opts.engine;
    st->make_stimulus = std::move(make_stimulus);
    st->observer = std::move(observer);
    if (remote_spec != nullptr) {
        // Validates the kind eagerly: an unregistered spec must throw at
        // submit time, not on a worker thread mid-campaign.
        (void)build_stimulus(*remote_spec);
        st->stim_spec = *remote_spec;
        st->remote_ok = true;
        const StimulusSpec spec = *remote_spec;
        st->make_stimulus = [spec] { return build_stimulus(spec); };
    }
    st->num_faults = static_cast<uint32_t>(faults.size());
    st->priority = opts.priority;
    st->weight = std::max<uint32_t>(1, opts.weight);
    st->quota = opts.max_workers;

    // An empty fault list stays at zero shards: no engine run, no stimulus
    // built, no queue slot — submit finalizes it on the spot
    // (finish_empty). The shared partitioners keep their historical
    // one-empty-shard result for the legacy blocking paths.
    if (faults.empty()) return st;

    // Probe the stimulus's epoch geometry once at admission — it is part
    // of the campaign's shape (the 2D split decision and the journal Admit
    // record both need it), and num_epochs() is bind-independent by
    // contract.
    {
        const auto probe = st->make_stimulus();
        st->num_epochs = std::max<uint32_t>(1, probe->num_epochs());
    }

    // Journal binding. A resumed campaign keeps its original journal id —
    // new unit appends continue the same record stream across crash
    // generations — and serves the already-journaled verdicts without
    // engine work; only the remainder flows on to the cache partition and
    // the sharders. A fresh StimulusSpec campaign appends its Admit record
    // here, before a single unit can possibly complete (write-ahead:
    // admission is durable first). Factory campaigns are unjournalable for
    // the same reason they are uncacheable — an opaque closure cannot be
    // replayed from disk.
    std::vector<fault::Fault> pending_faults;
    std::vector<uint32_t> pending_ids;
    std::span<const fault::Fault> to_shard = faults;
    if (resume != nullptr) {
        st->journal = opts_.journal;
        st->journal_id = resume->campaign_id;
        st->resumed_units = resume->units_replayed;
        if (opts_.journal) {
            opts_.journal->note_replayed(resume->units_replayed);
        }
        pending_faults.reserve(faults.size());
        pending_ids.reserve(faults.size());
        for (uint32_t i = 0; i < faults.size(); ++i) {
            if (resume->unit_done[i]) {
                st->replay_ids.push_back(i);
                st->replay_verdicts.push_back(resume->verdicts[i]);
                if (resume->verdicts[i]) ++st->replay_detected;
            } else {
                pending_faults.push_back(faults[i]);
                pending_ids.push_back(i);
            }
        }
        // Replayed faults are finished work, exactly like cache hits.
        st->faults_done.fetch_add(
            static_cast<uint32_t>(st->replay_ids.size()),
            std::memory_order_relaxed);
        st->detected_done.fetch_add(st->replay_detected,
                                    std::memory_order_relaxed);
        // Every unit already journaled: zero shards, finish_empty.
        if (pending_faults.empty()) return st;
        to_shard = pending_faults;
    } else if (opts_.journal && remote_spec != nullptr) {
        st->journal_id = opts_.journal->append_admission(
            compiled_->design_hash(), *remote_spec, opts, faults,
            st->num_epochs);
        if (st->journal_id != 0) st->journal = opts_.journal;
    }

    // Verdict-cache partition: faults already proven under this exact
    // (design, stimulus, engine) context are served from the cache and
    // merged into the result at finalization; only the misses are sharded
    // and dispatched. Content addressing is per fault, so hits survive any
    // re-partition the learned-cost loop produces between runs — and any
    // journal replay split. Factory campaigns are uncacheable — the key
    // must fingerprint the stimulus.
    std::vector<fault::Fault> miss_faults;
    std::vector<uint32_t> miss_ids;   // global ids of the cache misses
    if (opts_.verdict_cache && remote_spec != nullptr) {
        st->cache = opts_.verdict_cache;
        st->cache_ctx = VerdictCache::context_key(compiled_->design_hash(),
                                                  st->stim_spec, opts.engine);
        const VerdictCache::Partition part =
            st->cache->lookup(st->cache_ctx, to_shard);
        if (part.hits > 0) {
            const uint32_t n = static_cast<uint32_t>(to_shard.size());
            miss_faults.reserve(n - part.hits);
            miss_ids.reserve(n - part.hits);
            st->hit_ids.reserve(part.hits);
            st->hit_verdicts.reserve(part.hits);
            for (uint32_t i = 0; i < n; ++i) {
                const uint32_t gid =
                    resume != nullptr ? pending_ids[i] : i;
                if (part.hit[i]) {
                    st->hit_ids.push_back(gid);
                    st->hit_verdicts.push_back(part.verdict[i]);
                    if (part.verdict[i]) ++st->hit_detected;
                } else {
                    miss_faults.push_back(to_shard[i]);
                    miss_ids.push_back(gid);
                }
            }
            // Hits are finished work: the progress counters start at the
            // served totals so progress() includes them from the outset.
            st->faults_done.fetch_add(part.hits, std::memory_order_relaxed);
            st->detected_done.fetch_add(st->hit_detected,
                                        std::memory_order_relaxed);
            // Every fault hit: zero shards, and the caller finalizes via
            // finish_empty exactly like an empty fault list.
            if (miss_faults.empty()) return st;
            to_shard = miss_faults;
        }
    }

    const uint32_t threads = static_cast<uint32_t>(pool_.num_threads());
    const uint32_t want_shards =
        opts.num_shards > 0 ? opts.num_shards : threads;

    // Partition on the learned cost table when the feedback loop is on
    // (identical to the static estimate until the first observation), the
    // static VDG estimate otherwise. Batched engines pack faults 64 lanes
    // to a group, so their shards are balanced at group granularity
    // (lane-aligned work per shard) — with the learned deferral-rate packer
    // clustering control-correlated faults into the same unit once
    // measurements exist.
    const std::vector<uint64_t> costs =
        opts_.learn_costs ? cost_model_->fault_costs(to_shard)
                          : compiled_->fault_costs(to_shard);

    // 2D (fault, epoch) split decision. The fault dimension packs lanes;
    // the epoch dimension multiplies units without widening any plane —
    // the win when faults are scarce (few lanes) but the stimulus is long
    // (many epochs). epoch_split: 0 = let the learned cost model amortize
    // fixed per-unit overhead against the wave count, otherwise the forced
    // value clamped to the epoch count.
    uint32_t epoch_split = 1;
    if (st->num_epochs > 1) {
        const uint32_t n = static_cast<uint32_t>(to_shard.size());
        const uint32_t fault_units =
            opts.engine.batching == FaultBatching::Word ? (n + 63) / 64 : n;
        if (opts.epoch_split > 0) {
            epoch_split = std::min(opts.epoch_split, st->num_epochs);
        } else {
            uint64_t total_cost = 0;
            for (const uint64_t c : costs) total_cost += c;
            epoch_split = cost_model_->choose_epoch_split(
                fault_units, total_cost, st->num_epochs, threads);
        }
    }
    // With S epoch windows each fault-dim shard spawns S units; shrink the
    // fault dimension so the unit count stays near the caller's target.
    const uint32_t fault_dim_shards =
        epoch_split > 1
            ? std::max<uint32_t>(1, (want_shards + epoch_split - 1) /
                                        epoch_split)
            : want_shards;

    if (opts.engine.batching == FaultBatching::Word) {
        GroupPacker packer;
        if (opts_.learn_costs && opts_.learned_packing &&
            cost_model_->observations() > 0) {
            std::shared_ptr<CostModel> model = cost_model_;
            packer = [model](std::span<const fault::Fault> fs,
                             std::span<const uint64_t> cs) {
                // Cluster by quantized deferral rate (worst first), then
                // cost-descending so unit chunking still feeds the LPT
                // heavy-first within a cluster; ties keep ascending fault
                // order — fully deterministic for a given table state.
                const std::vector<double> rates = model->defer_rates(fs);
                std::vector<uint32_t> order(fs.size());
                for (uint32_t i = 0; i < order.size(); ++i) order[i] = i;
                auto bucket = [&](uint32_t i) {
                    return static_cast<int>(std::lround(rates[i] * 8.0));
                };
                std::stable_sort(order.begin(), order.end(),
                                 [&](uint32_t a, uint32_t b) {
                                     const int ba = bucket(a), bb = bucket(b);
                                     if (ba != bb) return ba > bb;
                                     return cs[a] > cs[b];
                                 });
                return order;
            };
        }
        st->shards = make_shards_grouped(to_shard, costs, fault_dim_shards,
                                         opts.shard_policy, packer);
    } else {
        st->shards = make_shards(to_shard, costs, fault_dim_shards,
                                 opts.shard_policy);
    }

    // Cross the fault-dim shards with the epoch windows (a no-op stamp of
    // the full window when epoch_split == 1). Replication happens before
    // the global-id remap so every window copy gets remapped alike.
    st->shards = replicate_epoch_windows(std::move(st->shards),
                                         st->num_epochs, epoch_split);
    st->epoch_splits = std::max<uint32_t>(1, epoch_split);

    // The shards partitioned a subset (cache misses, journal remainder, or
    // both chained — miss_ids already carries the fully resolved global
    // ids); translate their local ids back to the submitted list's global
    // ids. The id table is ascending and each shard's ids are, so the
    // remapped ids stay ascending and the index-ordered merge is
    // untouched.
    const std::vector<uint32_t>* remap =
        !miss_ids.empty() ? &miss_ids
        : resume != nullptr ? &pending_ids
                            : nullptr;
    if (remap != nullptr) {
        for (Shard& sh : st->shards) {
            for (uint32_t& g : sh.global_ids) g = (*remap)[g];
        }
    }

    // Exact 2D progress accounting: count each fault's windows so the
    // per-fault countdown in record_outcome knows when the last one lands.
    if (st->epoch_splits > 1) {
        st->windows_left.assign(st->num_faults, 0);
        st->det_acc.assign(st->num_faults, false);
        for (const Shard& sh : st->shards) {
            for (const uint32_t g : sh.global_ids) ++st->windows_left[g];
        }
    }

    uint32_t parallelism = std::min<uint32_t>(
        threads, static_cast<uint32_t>(st->shards.size()));
    if (st->quota > 0) parallelism = std::min(parallelism, st->quota);
    st->num_threads = parallelism;
    st->outcomes.resize(st->shards.size());
    st->errors.resize(st->shards.size());
    // st->watch starts in accept_locked: queue_seconds and campaign
    // latency both measure from accepted submission, not from sharding.

    // The cancel-before-admission hook (see CampaignState::notify_cancel).
    // It runs under st->mu (cancel() invokes it there) and only withdraws;
    // cancel() fires the terminal event and publishes outside the lock.
    CampaignState* raw = st.get();
    st->notify_cancel = [this, raw]() -> bool {
        return take_if_queued(raw) != nullptr;
    };
    return st;
}

uint32_t CampaignScheduler::dispatchable_locked(
    const CampaignState& st) const {
    // A stopping scheduler dispatches nothing: in-flight units finish (or
    // cancel), never-claimed ones stay claimable by a future recover().
    if (stopping_) return 0;
    const uint32_t remaining =
        static_cast<uint32_t>(st.shards.size()) - st.next_shard +
        static_cast<uint32_t>(st.requeued.size());
    if (st.quota == 0) return remaining;
    const uint32_t headroom = st.quota > st.inflight ? st.quota - st.inflight
                                                     : 0;
    return std::min(remaining, headroom);
}

size_t CampaignScheduler::claim_shard_locked(CampaignState& st) {
    size_t s;
    if (!st.requeued.empty()) {
        s = st.requeued.back();
        st.requeued.pop_back();
    } else {
        s = st.next_shard++;
    }
    ++st.inflight;
    ++shards_dispatched_;
    return s;
}

void CampaignScheduler::release_claim_locked(
    const std::shared_ptr<CampaignState>& st) {
    const uint32_t before = dispatchable_locked(*st);
    --st->inflight;
    ++st->jobs_done;
    const uint32_t after = dispatchable_locked(*st);
    issue_tickets_locked(after - before,
                         static_cast<unsigned>(st->priority));
    if (after > before) work_cv_.notify_all();
    if (st->jobs_done == st->shards.size()) {
        active_.erase(std::find(active_.begin(), active_.end(), st));
        admit_locked();
        drain_cv_.notify_all();
    } else if (stopping_) {
        // shutdown() waits for every in-flight claim to return.
        drain_cv_.notify_all();
    }
}

void CampaignScheduler::issue_tickets_locked(uint32_t count, unsigned cls) {
    for (uint32_t i = 0; i < count; ++i) {
        pool_.submit([this] { run_ticket(); }, cls);
    }
}

void CampaignScheduler::admit_locked() {
    while (!stopping_ && !queued_.empty() &&
           (draining_ || opts_.max_active == 0 ||
            active_.size() < opts_.max_active)) {
        // Highest class first, FIFO (seq) within a class.
        size_t best = 0;
        for (size_t i = 1; i < queued_.size(); ++i) {
            const CampaignState& c = *queued_[i];
            const CampaignState& b = *queued_[best];
            if (c.priority > b.priority ||
                (c.priority == b.priority && c.seq < b.seq)) {
                best = i;
            }
        }
        std::shared_ptr<CampaignState> st = queued_[best];
        queued_.erase(queued_.begin() + static_cast<ptrdiff_t>(best));
        active_.push_back(st);
        issue_tickets_locked(dispatchable_locked(*st),
                             static_cast<unsigned>(st->priority));
        work_cv_.notify_all();    // idle remote links may claim units now
        space_cv_.notify_all();   // queue shrank; a blocked submit may enter
    }
}

void CampaignScheduler::run_ticket() {
    std::shared_ptr<CampaignState> st;
    size_t shard_index = 0;
    {
        std::lock_guard<std::mutex> lock(mu_);
        CampaignState* best = nullptr;
        for (const auto& c : active_) {
            if (dispatchable_locked(*c) == 0) continue;
            if (best == nullptr) {
                best = c.get();
                st = c;
                continue;
            }
            bool wins = false;
            const bool c_canceled =
                c->cancel.load(std::memory_order_relaxed);
            const bool best_canceled =
                best->cancel.load(std::memory_order_relaxed);
            if (c_canceled != best_canceled) {
                // Canceled campaigns' jobs are no-ops: draining them first
                // unblocks their waiters at zero cost to real work.
                wins = c_canceled;
            } else if (c->priority != best->priority) {
                wins = c->priority > best->priority;
            } else if (opts_.fair_share) {
                const double c_share = static_cast<double>(c->inflight) /
                                       static_cast<double>(c->weight);
                const double b_share =
                    static_cast<double>(best->inflight) /
                    static_cast<double>(best->weight);
                wins = c_share != b_share ? c_share < b_share
                                          : c->seq < best->seq;
            } else {
                wins = c->seq < best->seq;
            }
            if (wins) {
                best = c.get();
                st = c;
            }
        }
        // A remote link may have claimed the units this ticket was issued
        // for (placement races are benign — claims are what count), so an
        // empty pick is a no-op, not an invariant break.
        if (best == nullptr) return;
        shard_index = claim_shard_locked(*best);
    }

    const bool completed = run_shard_job(st, shard_index);
    if (completed && opts_.learn_costs) {
        const EngineOutcome& out = st->outcomes[shard_index];
        cost_model_->observe_shard(st->shards[shard_index].faults,
                                   out.breakdown, out.stats);
    }

    {
        std::lock_guard<std::mutex> lock(mu_);
        release_claim_locked(st);
    }
}

// --- remote dispatch ---------------------------------------------------------

std::shared_ptr<CampaignState> CampaignScheduler::pick_remote_locked(
    const RemoteWorkerLink& link) {
    CampaignState* best = nullptr;
    std::shared_ptr<CampaignState> picked;
    for (const auto& c : active_) {
        if (!c->remote_ok || dispatchable_locked(*c) == 0) continue;
        const bool c_canceled = c->cancel.load(std::memory_order_relaxed);
        if (!c_canceled) {
            // Placement gate: shipping a unit whose predicted wall is
            // below the link's observed overhead would slow the campaign
            // down — leave it to the local pool. Unknown costs (no
            // observation yet, or no completed remote unit) ship freely.
            const size_t s = c->requeued.empty()
                                 ? c->next_shard
                                 : c->requeued.back();
            const double predicted =
                cost_model_->predict_seconds(c->shards[s].est_cost);
            if (predicted > 0.0 && link.overhead_ewma() > 0.0 &&
                predicted < link.overhead_ewma()) {
                ++units_skipped_cost_;
                continue;
            }
        }
        if (best == nullptr) {
            best = c.get();
            picked = c;
            continue;
        }
        bool wins = false;
        const bool best_canceled =
            best->cancel.load(std::memory_order_relaxed);
        if (c_canceled != best_canceled) {
            wins = c_canceled;
        } else if (c->priority != best->priority) {
            wins = c->priority > best->priority;
        } else if (opts_.fair_share) {
            const double c_share = static_cast<double>(c->inflight) /
                                   static_cast<double>(c->weight);
            const double b_share = static_cast<double>(best->inflight) /
                                   static_cast<double>(best->weight);
            wins = c_share != b_share ? c_share < b_share
                                      : c->seq < best->seq;
        } else {
            wins = c->seq < best->seq;
        }
        if (wins) {
            best = c.get();
            picked = c;
        }
    }
    return picked;
}

CampaignScheduler::FailureAction CampaignScheduler::record_failure_locked(
    WorkerSlotState& slot) {
    using std::chrono::steady_clock;
    const auto now = steady_clock::now();
    const auto window =
        std::chrono::milliseconds(opts_.remote.failure_window_ms);
    slot.failures.push_back(now);
    while (!slot.failures.empty() && now - slot.failures.front() > window) {
        slot.failures.pop_front();
    }
    if (opts_.remote.failure_threshold > 0 &&
        slot.failures.size() >= opts_.remote.failure_threshold) {
        // The window tripped: this worker is flapping, not hiccupping.
        slot.failures.clear();
        ++slot.quarantines;
        slot.state = LinkState::Down;
        if (opts_.remote.max_quarantines > 0 &&
            slot.quarantines >= opts_.remote.max_quarantines) {
            slot.ejected = true;
            return FailureAction::kEject;
        }
        return FailureAction::kQuarantine;
    }
    slot.state = LinkState::Suspect;
    return FailureAction::kBackoff;
}

void CampaignScheduler::pause_remote_ms(uint32_t ms) {
    std::unique_lock<std::mutex> lock(mu_);
    work_cv_.wait_for(lock, std::chrono::milliseconds(ms),
                      [&] { return stop_remote_; });
}

bool CampaignScheduler::serve_link(size_t worker_index,
                                   RemoteWorkerLink& link) {
    for (;;) {
        std::shared_ptr<CampaignState> st;
        size_t s = 0;
        {
            std::unique_lock<std::mutex> lock(mu_);
            work_cv_.wait(lock, [&] {
                if (stop_remote_) return true;
                st = pick_remote_locked(link);
                return st != nullptr;
            });
            if (stop_remote_) return true;
            s = claim_shard_locked(*st);
            ++units_dispatched_;
        }

        if (st->cancel.load(std::memory_order_relaxed)) {
            // Same as the local path: a canceled campaign's units are
            // recorded unran without touching the wire.
            EngineOutcome out;
            out.breakdown.queue_seconds = st->watch.seconds();
            record_outcome(st, s, std::move(out));
            std::lock_guard<std::mutex> lock(mu_);
            ++units_completed_;
            release_claim_locked(st);
            continue;
        }

        const double queue_seconds = st->watch.seconds();
        EngineOutcome out;
        bool link_dead = false;
        try {
            // Epoch-annotated wire unit: the worker reconstructs the window
            // by wrapping its locally built stimulus, so the payload ships
            // once per campaign shape and re-dispatch semantics (same spec,
            // any link) are untouched.
            StimulusSpec spec = st->stim_spec;
            const Shard& sh = st->shards[s];
            if (sh.epoch_end - sh.epoch_begin < st->num_epochs) {
                spec.epochs = st->num_epochs;
                spec.epoch_begin = sh.epoch_begin;
                spec.epoch_end = sh.epoch_end;
            }
            RemoteUnitReply reply =
                link.run_unit(sh.faults, st->engine_opts, spec,
                              static_cast<uint32_t>(s));
            out.ran = reply.ran;
            out.canceled = reply.canceled;
            out.detected = std::move(reply.detected);
            out.num_detected = reply.num_detected;
            out.stats = std::move(reply.stats);
            out.breakdown = reply.breakdown;
            out.breakdown.queue_seconds = queue_seconds;
        } catch (const util::WireError&) {
            link_dead = true;
        }

        if (link_dead) {
            // The connection is gone; the claimed unit goes back on the
            // campaign's requeue list and a fresh ticket lets the local
            // pool (or another link) pick it up. Determinism makes the
            // retry free — same faults, same stimulus, same verdicts. The
            // caller decides what happens to the *slot* (backoff /
            // quarantine / ejection).
            std::lock_guard<std::mutex> lock(mu_);
            const uint32_t before = dispatchable_locked(*st);
            st->requeued.push_back(static_cast<uint32_t>(s));
            --st->inflight;
            const uint32_t after = dispatchable_locked(*st);
            issue_tickets_locked(after - before,
                                 static_cast<unsigned>(st->priority));
            work_cv_.notify_all();
            if (stopping_) drain_cv_.notify_all();
            ++units_redispatched_;
            return false;
        }

        const bool completed = record_outcome(st, s, std::move(out));
        if (completed && opts_.learn_costs) {
            const EngineOutcome& stored = st->outcomes[s];
            cost_model_->observe_shard(st->shards[s].faults,
                                       stored.breakdown, stored.stats);
        }
        {
            std::lock_guard<std::mutex> lock(mu_);
            ++units_completed_;
            WorkerSlotState& slot = worker_slots_[worker_index];
            ++slot.units_completed;
            slot.overhead_ewma = link.overhead_ewma();
            release_claim_locked(st);
        }
    }
}

void CampaignScheduler::remote_worker_loop(size_t worker_index) {
    // The link object is hoisted out of the reconnect loop on purpose: its
    // shipping-overhead EWMA and request-id counter survive reconnects.
    RemoteWorkerLink link(opts_.remote,
                          opts_.remote.workers[worker_index]);
    if (opts_.verdict_cache) {
        // Warm start: a persisted shipping-overhead EWMA primes the
        // placement gate before this link completes its first unit, so
        // even the first placement decision is gated on history.
        const double warm =
            opts_.verdict_cache->worker_overhead(link.port());
        if (warm > 0.0) {
            link.seed_overhead(warm);
            std::lock_guard<std::mutex> lock(mu_);
            worker_slots_[worker_index].overhead_ewma = warm;
        }
    }
    util::Backoff backoff(std::max<uint32_t>(1, opts_.remote.reconnect_base_ms),
                          std::max<uint32_t>(1, opts_.remote.reconnect_max_ms),
                          0x5EEDF1EE7ULL ^ (worker_index * 0x9E3779B9ULL));
    for (;;) {
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (stop_remote_) break;
            WorkerSlotState& slot = worker_slots_[worker_index];
            slot.state = slot.ever_connected ? LinkState::Probing
                                             : LinkState::Connecting;
        }

        bool opened = false;
        try {
            link.open(compiled_->design_hash());
            opened = true;
        } catch (const util::WireError&) {
        }

        FailureAction action = FailureAction::kBackoff;
        if (opened) {
            {
                std::lock_guard<std::mutex> lock(mu_);
                WorkerSlotState& slot = worker_slots_[worker_index];
                slot.state = LinkState::Healthy;
                if (slot.ever_connected) ++slot.reconnects;
                slot.ever_connected = true;
                ++workers_connected_;
            }
            backoff.reset();
            const bool stopped = serve_link(worker_index, link);
            std::lock_guard<std::mutex> lock(mu_);
            --workers_connected_;
            if (stopped || stop_remote_) {
                worker_slots_[worker_index].state = LinkState::Down;
                break;
            }
            WorkerSlotState& slot = worker_slots_[worker_index];
            ++slot.links_lost;
            action = record_failure_locked(slot);
        } else {
            std::lock_guard<std::mutex> lock(mu_);
            if (stop_remote_) break;
            WorkerSlotState& slot = worker_slots_[worker_index];
            ++slot.handshake_failures;
            action = record_failure_locked(slot);
        }
        link.close();

        if (action == FailureAction::kEject) break;   // flapper: bench it
        pause_remote_ms(action == FailureAction::kQuarantine
                            ? opts_.remote.quarantine_cooldown_ms
                            : backoff.next_ms());
    }
    link.shutdown();
}

std::shared_ptr<CampaignState> CampaignScheduler::take_if_queued(
    detail::CampaignState* raw) {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto it = queued_.begin(); it != queued_.end(); ++it) {
        if (it->get() != raw) continue;
        std::shared_ptr<CampaignState> st = *it;
        queued_.erase(it);
        // The queue shrank: blocked submitters may enter, and a draining
        // Session may now be quiescent.
        space_cv_.notify_all();
        drain_cv_.notify_all();
        return st;
    }
    return nullptr;
}

/// The shared acceptance tail of submit()/try_submit(): stamps the FIFO
/// sequence, enqueues, and kicks admission. Caller holds `lock` on mu_ and
/// has already resolved backpressure (waited or refused).
CampaignHandle CampaignScheduler::accept_locked(
    std::shared_ptr<CampaignState> st) {
    st->seq = next_seq_++;
    ++submitted_;
    st->watch.reset();   // queue_seconds measures from accepted submission
    queued_.push_back(st);
    admit_locked();
    return CampaignHandle(std::move(st));
}

// An empty fault list shards to zero shards: no ticket would ever run, so
// the campaign must finalize right here or wait()/drain() would hang on a
// finished_jobs count that can never reach a nonzero shard total.
CampaignHandle CampaignScheduler::finish_empty(
    std::shared_ptr<CampaignState> st) {
    {
        std::lock_guard<std::mutex> lock(mu_);
        st->seq = next_seq_++;
        ++submitted_;
    }
    st->watch.reset();
    finalize_campaign(*st);   // fires the terminal event, then publishes
    return CampaignHandle(std::move(st));
}

CampaignHandle CampaignScheduler::submit(std::span<const fault::Fault> faults,
                                         StimulusFactory make_stimulus,
                                         const CampaignOptions& opts,
                                         ShardObserver observer) {
    auto st = make_state(faults, std::move(make_stimulus), opts,
                         std::move(observer), nullptr, nullptr);
    if (st->shards.empty()) return finish_empty(std::move(st));
    std::unique_lock<std::mutex> lock(mu_);
    if (opts_.queue_capacity > 0) {
        space_cv_.wait(lock, [&] {
            return stopping_ || queued_.size() < opts_.queue_capacity;
        });
    }
    if (stopping_) throw SimError("submit after shutdown");
    return accept_locked(std::move(st));
}

CampaignHandle CampaignScheduler::try_submit(
    std::span<const fault::Fault> faults, StimulusFactory make_stimulus,
    const CampaignOptions& opts, ShardObserver observer) {
    const auto queue_full = [this] {
        return opts_.queue_capacity > 0 &&
               queued_.size() >= opts_.queue_capacity;
    };
    // Refuse before sharding: backpressure exists to shed load, so the
    // overload path must not pay the O(n log n) partition it is shedding.
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (stopping_) throw SimError("submit after shutdown");
        if (queue_full()) {
            ++rejected_;
            return CampaignHandle();
        }
    }
    auto st = make_state(faults, std::move(make_stimulus), opts,
                         std::move(observer), nullptr, nullptr);
    if (st->shards.empty()) return finish_empty(std::move(st));
    std::unique_lock<std::mutex> lock(mu_);
    if (stopping_) throw SimError("submit after shutdown");
    if (queue_full()) {   // filled while we sharded — refuse, don't block
        ++rejected_;
        return CampaignHandle();
    }
    return accept_locked(std::move(st));
}

CampaignHandle CampaignScheduler::submit(std::span<const fault::Fault> faults,
                                         const StimulusSpec& stimulus,
                                         const CampaignOptions& opts,
                                         ShardObserver observer) {
    auto st = make_state(faults, nullptr, opts, std::move(observer),
                         &stimulus, nullptr);
    if (st->shards.empty()) return finish_empty(std::move(st));
    std::unique_lock<std::mutex> lock(mu_);
    if (opts_.queue_capacity > 0) {
        space_cv_.wait(lock, [&] {
            return stopping_ || queued_.size() < opts_.queue_capacity;
        });
    }
    if (stopping_) {
        lock.unlock();
        journal_refusal(*st);
        throw SimError("submit after shutdown");
    }
    return accept_locked(std::move(st));
}

CampaignHandle CampaignScheduler::try_submit(
    std::span<const fault::Fault> faults, const StimulusSpec& stimulus,
    const CampaignOptions& opts, ShardObserver observer) {
    const auto queue_full = [this] {
        return opts_.queue_capacity > 0 &&
               queued_.size() >= opts_.queue_capacity;
    };
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (stopping_) throw SimError("submit after shutdown");
        if (queue_full()) {
            ++rejected_;
            return CampaignHandle();
        }
    }
    auto st = make_state(faults, nullptr, opts, std::move(observer),
                         &stimulus, nullptr);
    if (st->shards.empty()) return finish_empty(std::move(st));
    std::unique_lock<std::mutex> lock(mu_);
    const bool refused = stopping_ || queue_full();
    if (refused) {
        const bool threw = stopping_;
        if (!threw) ++rejected_;
        lock.unlock();
        // The admission was already journaled; tombstone it so recovery
        // never resurrects a campaign the caller was told did not run.
        journal_refusal(*st);
        if (threw) throw SimError("submit after shutdown");
        return CampaignHandle();
    }
    return accept_locked(std::move(st));
}

void CampaignScheduler::drain() {
    std::unique_lock<std::mutex> lock(mu_);
    draining_ = true;
    admit_locked();
    drain_cv_.wait(lock, [&] { return queued_.empty() && active_.empty(); });
    draining_ = false;
}

void CampaignScheduler::shutdown(ShutdownMode mode) {
    if (mode == ShutdownMode::Drain) {
        // Run everything admitted to completion, then stop admission.
        drain();
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
        space_cv_.notify_all();
        return;
    }
    std::vector<std::shared_ptr<CampaignState>> interrupted;
    {
        std::unique_lock<std::mutex> lock(mu_);
        stopping_ = true;
        // Mark every admitted-or-queued campaign checkpointed *before*
        // waiting: a last shard job finishing during the wait finalizes its
        // campaign itself, and must already know not to append Complete.
        for (const auto& st : active_) {
            st->checkpointed.store(true, std::memory_order_relaxed);
            if (mode == ShutdownMode::Abort) {
                // Cooperative cancel: in-flight engines stop at the next
                // cycle boundary; their canceled outcomes are never
                // journaled, so the units stay re-executable.
                st->cancel.store(true, std::memory_order_relaxed);
            }
        }
        for (const auto& st : queued_) {
            st->checkpointed.store(true, std::memory_order_relaxed);
        }
        interrupted.assign(queued_.begin(), queued_.end());
        queued_.clear();
        space_cv_.notify_all();   // blocked submitters observe stopping_
        work_cv_.notify_all();    // idle remote links stop picking
        // Unit boundary: wait for every in-flight claim to return.
        // dispatchable_locked is 0 while stopping_, so no new claims start;
        // campaigns whose last job returns during the wait finalize and
        // self-erase from active_ before their inflight reaches 0.
        drain_cv_.wait(lock, [&] {
            for (const auto& st : active_) {
                if (st->inflight > 0) return false;
            }
            return true;
        });
        interrupted.insert(interrupted.end(), active_.begin(), active_.end());
        active_.clear();
    }
    // Force-finalize the interrupted campaigns outside mu_ (the terminal
    // observer is user code): they publish with canceled = true and —
    // having no Complete record — stay resumable from the journal.
    for (const auto& st : interrupted) finalize_campaign(*st);
    if (opts_.journal) opts_.journal->flush();
}

CampaignHandle CampaignScheduler::recover(const JournalCampaign& rec) {
    if (rec.design_hash != compiled_->design_hash()) {
        throw SimError("journal campaign was recorded against a different "
                       "design (hash mismatch)");
    }
    auto st = make_state(rec.faults, nullptr, rec.options, nullptr,
                         &rec.stimulus, &rec);
    if (st->shards.empty()) return finish_empty(std::move(st));
    std::unique_lock<std::mutex> lock(mu_);
    if (stopping_) throw SimError("submit after shutdown");
    if (opts_.queue_capacity > 0) {
        space_cv_.wait(lock, [&] {
            return stopping_ || queued_.size() < opts_.queue_capacity;
        });
        if (stopping_) throw SimError("submit after shutdown");
    }
    return accept_locked(std::move(st));
}

SchedulerStats CampaignScheduler::stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    SchedulerStats s;
    s.active = static_cast<uint32_t>(active_.size());
    s.queued = static_cast<uint32_t>(queued_.size());
    s.submitted = submitted_;
    s.rejected = rejected_;
    s.shards_dispatched = shards_dispatched_;
    s.remote.workers_configured =
        static_cast<uint32_t>(opts_.remote.workers.size());
    s.remote.workers_connected = workers_connected_;
    s.remote.units_dispatched = units_dispatched_;
    s.remote.units_completed = units_completed_;
    s.remote.units_redispatched = units_redispatched_;
    s.remote.units_skipped_cost = units_skipped_cost_;
    s.remote.workers.reserve(worker_slots_.size());
    double sum = 0.0;
    uint32_t n = 0;
    for (size_t w = 0; w < worker_slots_.size(); ++w) {
        const WorkerSlotState& slot = worker_slots_[w];
        RemoteWorkerStats ws;
        ws.port = opts_.remote.workers[w];
        ws.state = slot.state;
        ws.ejected = slot.ejected;
        ws.handshake_failures = slot.handshake_failures;
        ws.links_lost = slot.links_lost;
        ws.reconnects = slot.reconnects;
        ws.quarantines = slot.quarantines;
        ws.units_completed = slot.units_completed;
        ws.overhead_ewma_seconds = slot.overhead_ewma;
        s.remote.workers.push_back(ws);
        s.remote.workers_ejected += slot.ejected ? 1 : 0;
        s.remote.handshake_failures += slot.handshake_failures;
        s.remote.links_lost += slot.links_lost;
        s.remote.reconnects += slot.reconnects;
        s.remote.quarantines += slot.quarantines;
        if (slot.overhead_ewma > 0.0) {
            sum += slot.overhead_ewma;
            ++n;
        }
    }
    s.remote.overhead_ewma_seconds = n > 0 ? sum / n : 0.0;
    if (opts_.verdict_cache) s.cache = opts_.verdict_cache->stats();
    if (opts_.journal) s.journal = opts_.journal->stats();
    return s;
}

}  // namespace eraser::core
