// Session: the long-lived fault-simulation service of the Eraser framework.
//
// The paper's Fig. 4 flow compiles the design once and then drives many
// faulty executions; a Session is that flow as an object. It owns an
// immutable CompiledDesign (bytecode programs, compiled CFGs, VDG cost
// model — see eraser/compiled_design.h), a persistent work-stealing worker
// pool, and a CampaignScheduler (eraser/scheduler.h) that turns submitted
// campaigns into scheduled work:
//
//   core::Session session(design);                  // compiles exactly once
//   auto h1 = session.submit(faults, factory, opts);        // async
//   auto h2 = session.submit(faults, factory, other_opts);  // overlaps h1
//   h1.wait();  h2.wait();                                  // merged results
//
// submit() is non-blocking (under the default unbounded scheduler) and
// thread-safe: campaigns from concurrent callers interleave on the shared
// pool under the scheduler's priority / fair-share / quota policy
// (CampaignOptions::priority, max_workers, weight). A bounded scheduler
// (SessionOptions::scheduler) adds backpressure: submit() then blocks on a
// full admission queue and try_submit() refuses instead. Each campaign is
// sharded exactly like the classic sharded runner and merged in shard-index
// order, so its detection bitmap is bit-identical under every scheduling
// configuration — including the legacy one-shot free functions, which are
// wrappers over a temporary Session.
//
// Streaming: an optional ShardObserver receives each shard's verdict slice
// and ShardBreakdown as it lands (completion order, not shard order);
// observers are serialized by the campaign, so they may be stateful.
// Cancellation: CampaignHandle::cancel() stops engines at the next cycle
// boundary; wait() then returns a partial result flagged `canceled`.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "eraser/campaign.h"
#include "eraser/compiled_design.h"
#include "fault/fault.h"
#include "sim/stimulus.h"

namespace eraser::util {
class ThreadPool;
}  // namespace eraser::util

namespace eraser::core {

class CampaignScheduler;

namespace detail {
struct CampaignState;
}  // namespace detail

/// Point-in-time view of a running (or finished) campaign. Shard-granular:
/// a shard counts as done only once fully simulated, so a canceled campaign
/// reports exactly how much completed work its partial result rests on.
struct CampaignProgress {
    uint32_t shards_total = 0;
    uint32_t shards_done = 0;
    uint32_t faults_total = 0;
    uint32_t faults_done = 0;      // faults in fully-completed shards
    uint32_t detected_so_far = 0;  // detections in fully-completed shards
    bool cancel_requested = false;
    bool finished = false;         // wait() would return without blocking
};

/// One completed shard, streamed to the observer as it lands — or the
/// campaign's terminal event. The references point into campaign-owned
/// storage and are valid only during the callback — copy what you keep.
struct ShardEvent {
    /// `shard` of the terminal event (no shard ran; spans are empty).
    static constexpr uint32_t kTerminalShard = UINT32_MAX;

    uint32_t shard = 0;   // shard index within the campaign
    /// True exactly once per campaign, on the last observer invocation:
    /// the campaign is finalizing (completed or canceled — including a
    /// cancel that lands before any shard ever dispatched) and no further
    /// events will follow. global_ids/detected are empty; read the full
    /// outcome from CampaignHandle::wait().
    bool terminal = false;
    /// Global fault ids of this shard, ascending.
    const std::vector<uint32_t>& global_ids;
    /// This shard's verdicts, parallel to global_ids.
    const std::vector<bool>& detected;
    const ShardBreakdown& breakdown;
};

/// Called once per completed shard, in completion order, then exactly once
/// with `terminal == true`. Invocations are serialized (never concurrent),
/// but arrive on worker threads. An observer that throws does not stall
/// the campaign: the exception is recorded against that shard (or the
/// terminal slot) and rethrown from CampaignHandle::wait().
using ShardObserver = std::function<void(const ShardEvent&)>;

/// Handle to a submitted campaign. Copyable (all copies address the same
/// campaign); outlives the Session safely — the Session destructor drains
/// every outstanding campaign first.
class CampaignHandle {
  public:
    CampaignHandle() = default;

    /// Blocks until every shard has finished (or acknowledged
    /// cancellation), then returns the merged result. Rethrows the first
    /// shard error (by shard index) if any engine threw. The reference
    /// stays valid as long as any handle copy is alive.
    const CampaignResult& wait();

    /// Requests cancellation: running engines stop at the next cycle
    /// boundary, not-yet-started shards are skipped. Returns false when the
    /// campaign had already finished (the result is complete). Idempotent.
    bool cancel();

    [[nodiscard]] CampaignProgress progress() const;
    [[nodiscard]] bool finished() const;
    /// False for default-constructed handles and try_submit refusals.
    [[nodiscard]] bool valid() const { return state_ != nullptr; }

  private:
    friend class Session;
    friend class CampaignScheduler;
    explicit CampaignHandle(std::shared_ptr<detail::CampaignState> state)
        : state_(std::move(state)) {}

    std::shared_ptr<detail::CampaignState> state_;
};

struct SessionOptions {
    /// Worker threads in the persistent pool (0 = hardware concurrency).
    /// The pool is created lazily on the first submit()/try_submit()/
    /// scheduler() access, so Sessions used only through the blocking
    /// run() path never spawn threads.
    uint32_t num_threads = 0;
    /// Scheduler policy: admission-queue bounds (backpressure), fair-share
    /// vs strict FIFO within a priority class, and the measured-cost
    /// feedback loop. Defaults preserve the historical non-blocking submit.
    SchedulerOptions scheduler = {};
};

class Session {
  public:
    /// Adopts an existing compile-once artifact (shareable across
    /// Sessions). The underlying rtl::Design must outlive the artifact.
    explicit Session(std::shared_ptr<const CompiledDesign> compiled,
                     const SessionOptions& opts = {});
    /// Compiles `design` (once, here) and owns the artifact.
    explicit Session(const rtl::Design& design,
                     const SessionOptions& opts = {});
    /// Drains every outstanding campaign, then joins the pool.
    ~Session();

    Session(const Session&) = delete;
    Session& operator=(const Session&) = delete;

    [[nodiscard]] const CompiledDesign& compiled() const { return *compiled_; }
    [[nodiscard]] std::shared_ptr<const CompiledDesign> compiled_ptr() const {
        return compiled_;
    }

    /// Shards `faults` (on the learned cost table once measurements exist)
    /// and hands the campaign to the scheduler, which feeds the persistent
    /// pool shard-by-shard under the (priority, fair-share, quota) policy.
    /// Non-blocking under the default unbounded scheduler; with a bounded
    /// admission queue it blocks until space frees (use try_submit to
    /// refuse instead). Thread-safe: concurrent submitters interleave.
    /// `make_stimulus` builds one replayable stimulus per shard (callable
    /// from multiple threads, every instance driving the identical
    /// sequence). `opts.num_threads` is ignored — the Session pool governs
    /// parallelism; `opts.num_shards == 0` defaults to one shard per pool
    /// thread. Batched campaigns (the default FaultBatching::Word)
    /// partition at 64-lane group granularity (make_shards_grouped), so
    /// shards receive lane-aligned work; verdicts are identical under every
    /// partition and every scheduling configuration either way.
    [[nodiscard]] CampaignHandle submit(std::span<const fault::Fault> faults,
                                        StimulusFactory make_stimulus,
                                        const CampaignOptions& opts = {},
                                        ShardObserver observer = nullptr);

    /// Like submit(), but never blocks: when the scheduler's bounded
    /// admission queue is full the campaign is refused and the returned
    /// handle is invalid (`valid() == false`).
    [[nodiscard]] CampaignHandle try_submit(
        std::span<const fault::Fault> faults, StimulusFactory make_stimulus,
        const CampaignOptions& opts = {}, ShardObserver observer = nullptr);

    /// submit() with a wire-serializable stimulus (eraser/remote.h) instead
    /// of an opaque factory. Verdicts are identical to the factory form —
    /// the spec is just a factory a worker process can also rebuild — and
    /// the campaign becomes *remote-eligible*: when the scheduler was
    /// configured with a worker fleet (SchedulerOptions::remote), its units
    /// may execute out-of-process. The spec's kind must be registered in
    /// this process too (local execution builds instances from the same
    /// spec); throws SimError at submit time when it is not.
    [[nodiscard]] CampaignHandle submit(std::span<const fault::Fault> faults,
                                        const StimulusSpec& stimulus,
                                        const CampaignOptions& opts = {},
                                        ShardObserver observer = nullptr);

    /// try_submit() with a wire-serializable stimulus (see above).
    [[nodiscard]] CampaignHandle try_submit(
        std::span<const fault::Fault> faults, const StimulusSpec& stimulus,
        const CampaignOptions& opts = {}, ShardObserver observer = nullptr);

    /// Blocking single-engine campaign on the calling thread, driven by a
    /// caller-owned stimulus (no factory/replay requirement). Bit-identical
    /// to every sharded configuration of the same fault list. Records a
    /// single shard-0 ShardBreakdown in result.stats.shards, like a
    /// one-shard submit.
    [[nodiscard]] CampaignResult run(std::span<const fault::Fault> faults,
                                     sim::Stimulus& stim,
                                     const CampaignOptions& opts = {});

    /// Winds the scheduler down per `mode` (see ShutdownMode in
    /// eraser/campaign.h): Drain finishes everything, Checkpoint stops at
    /// unit boundaries, Abort also cancels in-flight units. Later submits
    /// throw SimError; with a journal configured, interrupted campaigns
    /// stay resumable via recover(). Idempotent; a no-op on a Session that
    /// never submitted.
    void shutdown(ShutdownMode mode);

    /// Resubmits every incomplete campaign a crashed (or checkpointed)
    /// process left in the journal at `journal_path`: journaled units are
    /// served from the log without engine work, only the remainder is
    /// re-dispatched, and each final bitmap is bit-identical to an
    /// uninterrupted run. Campaigns recorded against a different design
    /// hash are skipped (the journal may be shared). Typically the
    /// Session's own SchedulerOptions::journal points at the same path, so
    /// resumed progress keeps journaling under the original campaign ids.
    [[nodiscard]] std::vector<CampaignHandle> recover(
        const std::string& journal_path);

    /// The Session's scheduler: QoS stats and the learned CostModel live
    /// here. First use creates it TOGETHER WITH the worker pool — calling
    /// this on a blocking-only Session spawns the pool threads just like a
    /// submit would.
    [[nodiscard]] CampaignScheduler& scheduler();

    /// Threads the pool will use once created (resolves 0 to hardware
    /// concurrency without forcing pool creation).
    [[nodiscard]] uint32_t num_threads() const;

  private:
    CampaignScheduler& ensure_scheduler();

    std::shared_ptr<const CompiledDesign> compiled_;
    SessionOptions opts_;
    std::mutex pool_mu_;
    // Destruction order matters: ~Session drains the scheduler, then the
    // pool joins (declared after the scheduler so it destructs first),
    // then the scheduler — no ticket outlives the pool.
    std::unique_ptr<CampaignScheduler> sched_;
    std::unique_ptr<util::ThreadPool> pool_;
};

}  // namespace eraser::core
