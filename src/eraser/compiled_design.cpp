#include "eraser/compiled_design.h"

#include <atomic>

#include "eraser/shard.h"
#include "util/diagnostics.h"
#include "util/timer.h"

namespace eraser::core {

namespace {
std::atomic<uint64_t> g_builds{0};
}  // namespace

CompiledDesign::CompiledDesign(const rtl::Design& design) : design_(design) {
    if (!design.finalized()) {
        throw SimError("design must be finalized before compilation");
    }
    Stopwatch watch;

    cfgs_.reserve(design.behaviors.size());
    for (const auto& b : design.behaviors) {
        if (b.body) {
            cfgs_.push_back(cfg::Cfg::build(*b.body, design));
        } else {
            cfgs_.emplace_back();
        }
    }
    vdgs_.reserve(cfgs_.size());
    for (const auto& c : cfgs_) vdgs_.push_back(cfg::Vdg::build(c));

    progs_ = sim::compile_design_programs(design);
    compiled_cfgs_.reserve(design.behaviors.size());
    for (size_t b = 0; b < design.behaviors.size(); ++b) {
        const rtl::BehavNode& bn = design.behaviors[b];
        compiled_cfgs_.push_back(cfg::CompiledCfg::build(
            cfgs_[b], design,
            {bn.blocking_writes, bn.array_writes, false}));
    }

    behavior_weights_.reserve(vdgs_.size());
    for (const auto& vdg : vdgs_) {
        behavior_weights_.push_back(behavior_vdg_weight(vdg));
    }
    signal_costs_ = signal_fault_costs(design, behavior_weights_);

    compile_seconds_ = watch.seconds();
    g_builds.fetch_add(1, std::memory_order_relaxed);
}

std::vector<uint64_t> CompiledDesign::fault_costs(
    std::span<const fault::Fault> faults) const {
    std::vector<uint64_t> costs;
    costs.reserve(faults.size());
    for (const fault::Fault& f : faults) costs.push_back(signal_costs_[f.sig]);
    return costs;
}

uint64_t CompiledDesign::builds() {
    return g_builds.load(std::memory_order_relaxed);
}

}  // namespace eraser::core
