#include "eraser/compiled_design.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "eraser/shard.h"
#include "util/diagnostics.h"
#include "util/timer.h"
#include "util/wire.h"

namespace eraser::core {

namespace {
std::atomic<uint64_t> g_builds{0};

/// Structural + behavioral FNV-1a over the elaborated design: signal
/// names/widths/directions pin the SignalId space (what the distributed
/// fabric's cross-process fault translation rests on), and RTL node
/// contents plus the compiled bytecode pin the computed behavior (what the
/// verdict cache's soundness rests on — two designs differing only in an
/// operator must never share a hash). Frontend compilation and bytecode
/// emission are deterministic, so equal sources still hash equal across
/// processes.
uint64_t structural_hash(const rtl::Design& d, const sim::SharedPrograms& p) {
    uint64_t h = util::fnv1a64(d.top_name);
    auto mix = [&h](uint64_t v) {
        char bytes[8];
        for (int i = 0; i < 8; ++i) bytes[i] = static_cast<char>(v >> (8 * i));
        h = util::fnv1a64(std::string_view(bytes, 8), h);
    };
    mix(d.signals.size());
    for (const rtl::Signal& s : d.signals) {
        h = util::fnv1a64(s.name, h);
        mix(s.width);
        mix(static_cast<uint64_t>(s.kind));
        mix((s.is_input ? 1u : 0u) | (s.is_output ? 2u : 0u));
    }
    mix(d.arrays.size());
    for (const rtl::Array& a : d.arrays) {
        h = util::fnv1a64(a.name, h);
        mix(a.width);
        mix(a.size);
    }
    mix(d.behaviors.size());
    for (const rtl::BehavNode& b : d.behaviors) {
        h = util::fnv1a64(b.name, h);
        mix((b.is_comb ? 1u : 0u));
        mix(b.edges.size());
        for (const rtl::EdgeSpec& e : b.edges) {
            mix(e.sig);
            mix(static_cast<uint64_t>(e.kind));
        }
    }
    mix(d.nodes.size());
    for (const rtl::RtlNode& n : d.nodes) {
        mix(static_cast<uint64_t>(n.op));
        mix(n.inputs.size());
        for (const rtl::SignalId in : n.inputs) mix(in);
        mix(n.output);
        mix(n.cval.bits());
        mix(n.cval.width());
        mix(n.imm);
    }
    // Behavior bodies / initial blocks via their compiled programs — the
    // flat form covers every statement and expression the tree holds.
    const auto mix_programs = [&](const std::vector<sim::BcProgram>* progs) {
        mix(progs ? progs->size() : 0);
        if (!progs) return;
        for (const sim::BcProgram& prog : *progs) {
            mix(prog.code.size());
            for (const sim::BcInstr& i : prog.code) {
                mix(static_cast<uint64_t>(i.kind) |
                    static_cast<uint64_t>(i.op) << 8 |
                    static_cast<uint64_t>(i.flags) << 16 |
                    static_cast<uint64_t>(i.nargs) << 24 |
                    static_cast<uint64_t>(i.width) << 32 |
                    static_cast<uint64_t>(i.imm) << 48);
                mix(i.a);
            }
            mix(prog.consts.size());
            for (const Value& v : prog.consts) {
                mix(v.bits());
                mix(v.width());
            }
            mix(prog.case_entries.size());
            for (const sim::BcCaseEntry& e : prog.case_entries) {
                mix(e.label);
                mix(e.target);
            }
            mix(prog.case_tables.size());
            for (const sim::BcCaseTable& t : prog.case_tables) {
                mix(t.first);
                mix(t.count);
                mix(t.no_match);
            }
            mix(prog.slot_sigs.size());
            for (const uint32_t s : prog.slot_sigs) mix(s);
        }
    };
    mix_programs(p.behaviors.get());
    mix_programs(p.initials.get());
    return h;
}
}  // namespace

CompiledDesign::CompiledDesign(const rtl::Design& design) : design_(design) {
    if (!design.finalized()) {
        throw SimError("design must be finalized before compilation");
    }
    Stopwatch watch;

    cfgs_.reserve(design.behaviors.size());
    for (const auto& b : design.behaviors) {
        if (b.body) {
            cfgs_.push_back(cfg::Cfg::build(*b.body, design));
        } else {
            cfgs_.emplace_back();
        }
    }
    vdgs_.reserve(cfgs_.size());
    for (const auto& c : cfgs_) vdgs_.push_back(cfg::Vdg::build(c));

    progs_ = sim::compile_design_programs(design);
    compiled_cfgs_.reserve(design.behaviors.size());
    for (size_t b = 0; b < design.behaviors.size(); ++b) {
        const rtl::BehavNode& bn = design.behaviors[b];
        compiled_cfgs_.push_back(cfg::CompiledCfg::build(
            cfgs_[b], design,
            {bn.blocking_writes, bn.array_writes, false}));
    }

    behavior_weights_.reserve(vdgs_.size());
    for (const auto& vdg : vdgs_) {
        behavior_weights_.push_back(behavior_vdg_weight(vdg));
    }
    signal_costs_ = signal_fault_costs(design, behavior_weights_);
    design_hash_ = structural_hash(design, progs_);

    compile_seconds_ = watch.seconds();
    g_builds.fetch_add(1, std::memory_order_relaxed);
}

std::vector<uint64_t> CompiledDesign::fault_costs(
    std::span<const fault::Fault> faults) const {
    std::vector<uint64_t> costs;
    costs.reserve(faults.size());
    for (const fault::Fault& f : faults) costs.push_back(signal_costs_[f.sig]);
    return costs;
}

uint64_t CompiledDesign::builds() {
    return g_builds.load(std::memory_order_relaxed);
}

// --- CostModel ---------------------------------------------------------------

namespace {

/// Distinct signal ids of a fault list, ascending (both stuck-at polarities
/// of one signal share a table entry, so updates must hit each signal once).
std::vector<rtl::SignalId> distinct_signals(
    std::span<const fault::Fault> faults) {
    std::vector<rtl::SignalId> sigs;
    sigs.reserve(faults.size());
    for (const fault::Fault& f : faults) sigs.push_back(f.sig);
    std::sort(sigs.begin(), sigs.end());
    sigs.erase(std::unique(sigs.begin(), sigs.end()), sigs.end());
    return sigs;
}

}  // namespace

CostModel::CostModel(const CompiledDesign& compiled, double alpha)
    : alpha_(alpha) {
    if (!(alpha > 0.0) || alpha > 1.0) {
        throw SimError("CostModel: alpha must be in (0, 1]");
    }
    const std::vector<uint64_t>& seed = compiled.signal_costs();
    cost_.assign(seed.begin(), seed.end());
    defer_.assign(seed.size(), 0.0);
}

std::vector<uint64_t> CostModel::fault_costs(
    std::span<const fault::Fault> faults) const {
    std::vector<uint64_t> costs;
    costs.reserve(faults.size());
    std::lock_guard<std::mutex> lock(mu_);
    for (const fault::Fault& f : faults) {
        const double c = cost_[f.sig] * static_cast<double>(kCostScale);
        costs.push_back(std::max<uint64_t>(1, std::llround(c)));
    }
    return costs;
}

std::vector<double> CostModel::defer_rates(
    std::span<const fault::Fault> faults) const {
    std::vector<double> rates;
    rates.reserve(faults.size());
    std::lock_guard<std::mutex> lock(mu_);
    for (const fault::Fault& f : faults) rates.push_back(defer_[f.sig]);
    return rates;
}

void CostModel::observe_shard(std::span<const fault::Fault> faults,
                              const ShardBreakdown& breakdown,
                              const Instrumentation& stats) {
    if (faults.empty() || breakdown.wall_seconds <= 0.0) return;
    const std::vector<rtl::SignalId> sigs = distinct_signals(faults);

    std::lock_guard<std::mutex> lock(mu_);
    double predicted = 0.0;
    for (const fault::Fault& f : faults) predicted += cost_[f.sig];
    if (predicted <= 0.0) return;

    const double spu = breakdown.wall_seconds / predicted;
    if (observations_ == 0) unit_scale_ = spu;
    // Bounded multiplicative step: one wild shard (scheduler hiccup, cold
    // cache) cannot blow a signal's cost out by more than 2x either way.
    const double surprise = spu / unit_scale_;
    const double gain =
        std::clamp(1.0 - alpha_ + alpha_ * surprise, 0.5, 2.0);
    for (rtl::SignalId sig : sigs) {
        cost_[sig] = std::max(1e-3, cost_[sig] * gain);
    }
    unit_scale_ = (1.0 - alpha_) * unit_scale_ + alpha_ * spu;

    const uint64_t lanes = stats.bn_lane_survivors + stats.bn_lane_deferred;
    if (lanes > 0) {
        const double rate = static_cast<double>(stats.bn_lane_deferred) /
                            static_cast<double>(lanes);
        for (rtl::SignalId sig : sigs) {
            defer_[sig] = (1.0 - alpha_) * defer_[sig] + alpha_ * rate;
        }
    }

    // Least-squares accumulation: x in static cost units (est_cost is in
    // kCostScale units when the scheduler's feedback loop produced it).
    if (breakdown.est_cost > 0) {
        const double x = static_cast<double>(breakdown.est_cost) /
                         static_cast<double>(kCostScale);
        const double y = breakdown.wall_seconds;
        reg_sx_ += x;
        reg_sy_ += y;
        reg_sxx_ += x * x;
        reg_sxy_ += x * y;
        ++reg_n_;
    }
    ++observations_;
}

bool CostModel::regression_locked(double& a, double& b) const {
    if (reg_n_ < 2) return false;
    const double n = static_cast<double>(reg_n_);
    const double den = n * reg_sxx_ - reg_sx_ * reg_sx_;
    if (!(den > 1e-12)) return false;  // all observations at one cost
    b = (n * reg_sxy_ - reg_sx_ * reg_sy_) / den;
    a = (reg_sy_ - b * reg_sx_) / n;
    if (b < 0.0) b = 0.0;
    if (a < 0.0) a = 0.0;
    return true;
}

double CostModel::fixed_overhead_seconds() const {
    std::lock_guard<std::mutex> lock(mu_);
    double a = 0.0;
    double b = 0.0;
    return regression_locked(a, b) ? a : 0.0;
}

double CostModel::marginal_seconds_per_unit() const {
    std::lock_guard<std::mutex> lock(mu_);
    double a = 0.0;
    double b = 0.0;
    if (regression_locked(a, b) && b > 0.0) return b;
    return unit_scale_;
}

uint32_t CostModel::choose_epoch_split(uint32_t fault_units,
                                       uint64_t total_cost_units,
                                       uint32_t epochs,
                                       uint32_t threads) const {
    if (epochs <= 1) return 1;
    fault_units = std::max<uint32_t>(1, fault_units);
    threads = std::max<uint32_t>(1, threads);

    std::lock_guard<std::mutex> lock(mu_);
    double a = 0.0;
    double b = 0.0;
    if (!regression_locked(a, b) || !(b > 0.0)) {
        if (observations_ == 0 || !(unit_scale_ > 0.0)) {
            // Cold: just enough windows to keep every thread busy.
            const uint32_t need =
                (threads + fault_units - 1) / fault_units;
            return std::clamp<uint32_t>(need, 1, epochs);
        }
        a = 0.0;
        b = unit_scale_;
    }
    // Per fault-unit full-stimulus cost, in static units (matching b).
    const double xf = (static_cast<double>(total_cost_units) /
                       static_cast<double>(kCostScale)) /
                      static_cast<double>(fault_units);
    double best_time = 0.0;
    uint32_t best = 0;
    const uint32_t cap = std::min<uint32_t>(epochs, 4096);
    for (uint32_t s = 1; s <= cap; ++s) {
        const double units = static_cast<double>(fault_units) * s;
        const double waves = std::ceil(units / threads);
        const double t = waves * (a + b * xf / s);
        if (best == 0 || t < best_time - 1e-12) {
            best_time = t;
            best = s;
        }
    }
    return best;
}

uint64_t CostModel::observations() const {
    std::lock_guard<std::mutex> lock(mu_);
    return observations_;
}

double CostModel::predict_seconds(uint64_t cost_units) const {
    std::lock_guard<std::mutex> lock(mu_);
    if (observations_ == 0) return 0.0;
    return unit_scale_ * static_cast<double>(cost_units) /
           static_cast<double>(kCostScale);
}

double CostModel::signal_cost(rtl::SignalId sig) const {
    std::lock_guard<std::mutex> lock(mu_);
    return cost_[sig];
}

double CostModel::signal_defer_rate(rtl::SignalId sig) const {
    std::lock_guard<std::mutex> lock(mu_);
    return defer_[sig];
}

CostModelSnapshot CostModel::snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return CostModelSnapshot{cost_,    defer_,   unit_scale_, observations_,
                             reg_sx_,  reg_sy_,  reg_sxx_,    reg_sxy_,
                             reg_n_};
}

bool CostModel::restore(const CostModelSnapshot& snap) {
    std::lock_guard<std::mutex> lock(mu_);
    if (snap.observations == 0 || !(snap.unit_scale > 0.0) ||
        snap.cost.size() != cost_.size() ||
        snap.defer.size() != defer_.size()) {
        return false;
    }
    cost_ = snap.cost;
    defer_ = snap.defer;
    unit_scale_ = snap.unit_scale;
    observations_ = snap.observations;
    reg_sx_ = snap.reg_sx;
    reg_sy_ = snap.reg_sy;
    reg_sxx_ = snap.reg_sxx;
    reg_sxy_ = snap.reg_sxy;
    reg_n_ = snap.reg_n;
    return true;
}

}  // namespace eraser::core
