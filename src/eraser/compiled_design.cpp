#include "eraser/compiled_design.h"

#include <algorithm>
#include <atomic>
#include <cmath>

#include "eraser/shard.h"
#include "util/diagnostics.h"
#include "util/timer.h"
#include "util/wire.h"

namespace eraser::core {

namespace {
std::atomic<uint64_t> g_builds{0};

/// Structural + behavioral FNV-1a over the elaborated design: signal
/// names/widths/directions pin the SignalId space (what the distributed
/// fabric's cross-process fault translation rests on), and RTL node
/// contents plus the compiled bytecode pin the computed behavior (what the
/// verdict cache's soundness rests on — two designs differing only in an
/// operator must never share a hash). Frontend compilation and bytecode
/// emission are deterministic, so equal sources still hash equal across
/// processes.
uint64_t structural_hash(const rtl::Design& d, const sim::SharedPrograms& p) {
    uint64_t h = util::fnv1a64(d.top_name);
    auto mix = [&h](uint64_t v) {
        char bytes[8];
        for (int i = 0; i < 8; ++i) bytes[i] = static_cast<char>(v >> (8 * i));
        h = util::fnv1a64(std::string_view(bytes, 8), h);
    };
    mix(d.signals.size());
    for (const rtl::Signal& s : d.signals) {
        h = util::fnv1a64(s.name, h);
        mix(s.width);
        mix(static_cast<uint64_t>(s.kind));
        mix((s.is_input ? 1u : 0u) | (s.is_output ? 2u : 0u));
    }
    mix(d.arrays.size());
    for (const rtl::Array& a : d.arrays) {
        h = util::fnv1a64(a.name, h);
        mix(a.width);
        mix(a.size);
    }
    mix(d.behaviors.size());
    for (const rtl::BehavNode& b : d.behaviors) {
        h = util::fnv1a64(b.name, h);
        mix((b.is_comb ? 1u : 0u));
        mix(b.edges.size());
        for (const rtl::EdgeSpec& e : b.edges) {
            mix(e.sig);
            mix(static_cast<uint64_t>(e.kind));
        }
    }
    mix(d.nodes.size());
    for (const rtl::RtlNode& n : d.nodes) {
        mix(static_cast<uint64_t>(n.op));
        mix(n.inputs.size());
        for (const rtl::SignalId in : n.inputs) mix(in);
        mix(n.output);
        mix(n.cval.bits());
        mix(n.cval.width());
        mix(n.imm);
    }
    // Behavior bodies / initial blocks via their compiled programs — the
    // flat form covers every statement and expression the tree holds.
    const auto mix_programs = [&](const std::vector<sim::BcProgram>* progs) {
        mix(progs ? progs->size() : 0);
        if (!progs) return;
        for (const sim::BcProgram& prog : *progs) {
            mix(prog.code.size());
            for (const sim::BcInstr& i : prog.code) {
                mix(static_cast<uint64_t>(i.kind) |
                    static_cast<uint64_t>(i.op) << 8 |
                    static_cast<uint64_t>(i.flags) << 16 |
                    static_cast<uint64_t>(i.nargs) << 24 |
                    static_cast<uint64_t>(i.width) << 32 |
                    static_cast<uint64_t>(i.imm) << 48);
                mix(i.a);
            }
            mix(prog.consts.size());
            for (const Value& v : prog.consts) {
                mix(v.bits());
                mix(v.width());
            }
            mix(prog.case_entries.size());
            for (const sim::BcCaseEntry& e : prog.case_entries) {
                mix(e.label);
                mix(e.target);
            }
            mix(prog.case_tables.size());
            for (const sim::BcCaseTable& t : prog.case_tables) {
                mix(t.first);
                mix(t.count);
                mix(t.no_match);
            }
            mix(prog.slot_sigs.size());
            for (const uint32_t s : prog.slot_sigs) mix(s);
        }
    };
    mix_programs(p.behaviors.get());
    mix_programs(p.initials.get());
    return h;
}
}  // namespace

CompiledDesign::CompiledDesign(const rtl::Design& design) : design_(design) {
    if (!design.finalized()) {
        throw SimError("design must be finalized before compilation");
    }
    Stopwatch watch;

    cfgs_.reserve(design.behaviors.size());
    for (const auto& b : design.behaviors) {
        if (b.body) {
            cfgs_.push_back(cfg::Cfg::build(*b.body, design));
        } else {
            cfgs_.emplace_back();
        }
    }
    vdgs_.reserve(cfgs_.size());
    for (const auto& c : cfgs_) vdgs_.push_back(cfg::Vdg::build(c));

    progs_ = sim::compile_design_programs(design);
    compiled_cfgs_.reserve(design.behaviors.size());
    for (size_t b = 0; b < design.behaviors.size(); ++b) {
        const rtl::BehavNode& bn = design.behaviors[b];
        compiled_cfgs_.push_back(cfg::CompiledCfg::build(
            cfgs_[b], design,
            {bn.blocking_writes, bn.array_writes, false}));
    }

    behavior_weights_.reserve(vdgs_.size());
    for (const auto& vdg : vdgs_) {
        behavior_weights_.push_back(behavior_vdg_weight(vdg));
    }
    signal_costs_ = signal_fault_costs(design, behavior_weights_);
    design_hash_ = structural_hash(design, progs_);

    compile_seconds_ = watch.seconds();
    g_builds.fetch_add(1, std::memory_order_relaxed);
}

std::vector<uint64_t> CompiledDesign::fault_costs(
    std::span<const fault::Fault> faults) const {
    std::vector<uint64_t> costs;
    costs.reserve(faults.size());
    for (const fault::Fault& f : faults) costs.push_back(signal_costs_[f.sig]);
    return costs;
}

uint64_t CompiledDesign::builds() {
    return g_builds.load(std::memory_order_relaxed);
}

// --- CostModel ---------------------------------------------------------------

namespace {

/// Distinct signal ids of a fault list, ascending (both stuck-at polarities
/// of one signal share a table entry, so updates must hit each signal once).
std::vector<rtl::SignalId> distinct_signals(
    std::span<const fault::Fault> faults) {
    std::vector<rtl::SignalId> sigs;
    sigs.reserve(faults.size());
    for (const fault::Fault& f : faults) sigs.push_back(f.sig);
    std::sort(sigs.begin(), sigs.end());
    sigs.erase(std::unique(sigs.begin(), sigs.end()), sigs.end());
    return sigs;
}

}  // namespace

CostModel::CostModel(const CompiledDesign& compiled, double alpha)
    : alpha_(alpha) {
    if (!(alpha > 0.0) || alpha > 1.0) {
        throw SimError("CostModel: alpha must be in (0, 1]");
    }
    const std::vector<uint64_t>& seed = compiled.signal_costs();
    cost_.assign(seed.begin(), seed.end());
    defer_.assign(seed.size(), 0.0);
}

std::vector<uint64_t> CostModel::fault_costs(
    std::span<const fault::Fault> faults) const {
    std::vector<uint64_t> costs;
    costs.reserve(faults.size());
    std::lock_guard<std::mutex> lock(mu_);
    for (const fault::Fault& f : faults) {
        const double c = cost_[f.sig] * static_cast<double>(kCostScale);
        costs.push_back(std::max<uint64_t>(1, std::llround(c)));
    }
    return costs;
}

std::vector<double> CostModel::defer_rates(
    std::span<const fault::Fault> faults) const {
    std::vector<double> rates;
    rates.reserve(faults.size());
    std::lock_guard<std::mutex> lock(mu_);
    for (const fault::Fault& f : faults) rates.push_back(defer_[f.sig]);
    return rates;
}

void CostModel::observe_shard(std::span<const fault::Fault> faults,
                              const ShardBreakdown& breakdown,
                              const Instrumentation& stats) {
    if (faults.empty() || breakdown.wall_seconds <= 0.0) return;
    const std::vector<rtl::SignalId> sigs = distinct_signals(faults);

    std::lock_guard<std::mutex> lock(mu_);
    double predicted = 0.0;
    for (const fault::Fault& f : faults) predicted += cost_[f.sig];
    if (predicted <= 0.0) return;

    const double spu = breakdown.wall_seconds / predicted;
    if (observations_ == 0) unit_scale_ = spu;
    // Bounded multiplicative step: one wild shard (scheduler hiccup, cold
    // cache) cannot blow a signal's cost out by more than 2x either way.
    const double surprise = spu / unit_scale_;
    const double gain =
        std::clamp(1.0 - alpha_ + alpha_ * surprise, 0.5, 2.0);
    for (rtl::SignalId sig : sigs) {
        cost_[sig] = std::max(1e-3, cost_[sig] * gain);
    }
    unit_scale_ = (1.0 - alpha_) * unit_scale_ + alpha_ * spu;

    const uint64_t lanes = stats.bn_lane_survivors + stats.bn_lane_deferred;
    if (lanes > 0) {
        const double rate = static_cast<double>(stats.bn_lane_deferred) /
                            static_cast<double>(lanes);
        for (rtl::SignalId sig : sigs) {
            defer_[sig] = (1.0 - alpha_) * defer_[sig] + alpha_ * rate;
        }
    }
    ++observations_;
}

uint64_t CostModel::observations() const {
    std::lock_guard<std::mutex> lock(mu_);
    return observations_;
}

double CostModel::predict_seconds(uint64_t cost_units) const {
    std::lock_guard<std::mutex> lock(mu_);
    if (observations_ == 0) return 0.0;
    return unit_scale_ * static_cast<double>(cost_units) /
           static_cast<double>(kCostScale);
}

double CostModel::signal_cost(rtl::SignalId sig) const {
    std::lock_guard<std::mutex> lock(mu_);
    return cost_[sig];
}

double CostModel::signal_defer_rate(rtl::SignalId sig) const {
    std::lock_guard<std::mutex> lock(mu_);
    return defer_[sig];
}

CostModelSnapshot CostModel::snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return CostModelSnapshot{cost_, defer_, unit_scale_, observations_};
}

bool CostModel::restore(const CostModelSnapshot& snap) {
    std::lock_guard<std::mutex> lock(mu_);
    if (snap.observations == 0 || !(snap.unit_scale > 0.0) ||
        snap.cost.size() != cost_.size() ||
        snap.defer.size() != defer_.size()) {
        return false;
    }
    cost_ = snap.cost;
    defer_ = snap.defer;
    unit_scale_ = snap.unit_scale;
    observations_ = snap.observations;
    return true;
}

}  // namespace eraser::core
