// SmallMap: the ordered upsert map used for activation-local write buffers
// of the concurrent engine (scalar Activations and batched lane
// activations). Items keep program (insertion) order — commits and
// cross-execution comparisons depend on it. Lookup is a linear scan while
// the map is small (the common case: behavioral blocks write a handful of
// signals), switching to a side hash index once it grows (e.g. the SHA-256
// message-schedule block writes every w_mem element in one activation; the
// scan was 30%+ of campaign time). Pooled activations keep both buffers'
// capacity across reuses.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

namespace eraser::core::detail {

using ArrKey = std::pair<uint32_t, uint64_t>;   // (array, index)

struct SmallMapHash {
    size_t operator()(uint32_t k) const { return k; }
    size_t operator()(const ArrKey& k) const {
        return (static_cast<size_t>(k.first) << 40) ^
               (k.second * 0x9E3779B97F4A7C15ull);
    }
};

template <typename K, typename V>
class SmallMap {
  public:
    void upsert(const K& k, const V& v) {
        if (items_.size() <= kLinearLimit) {
            for (auto& [key, val] : items_) {
                if (key == k) {
                    val = v;
                    return;
                }
            }
            items_.emplace_back(k, v);
            if (items_.size() == kLinearLimit + 1) reindex();
            return;
        }
        const auto [it, inserted] =
            index_.try_emplace(k, static_cast<uint32_t>(items_.size()));
        if (inserted) {
            items_.emplace_back(k, v);
        } else {
            items_[it->second].second = v;
        }
    }
    [[nodiscard]] const V* find(const K& k) const {
        if (items_.size() <= kLinearLimit) {
            for (const auto& [key, val] : items_) {
                if (key == k) return &val;
            }
            return nullptr;
        }
        const auto it = index_.find(k);
        return it != index_.end() ? &items_[it->second].second : nullptr;
    }
    [[nodiscard]] const std::vector<std::pair<K, V>>& items() const {
        return items_;
    }
    [[nodiscard]] bool empty() const { return items_.empty(); }
    void clear() {
        items_.clear();
        index_.clear();
    }
    /// Key-wise equality, insertion order ignored. Writes land in
    /// first-write order, which differs between the whole-body program and
    /// the fused walk's per-segment programs (their slot-exclusion sets
    /// differ), so the audit's activation comparison must not depend on it.
    /// Keys are unique, so equal sizes plus a one-way subset check suffice.
    friend bool operator==(const SmallMap& a, const SmallMap& b) {
        if (a.items_.size() != b.items_.size()) return false;
        for (const auto& [key, val] : a.items_) {
            const V* other = b.find(key);
            if (other == nullptr || !(*other == val)) return false;
        }
        return true;
    }

  private:
    static constexpr size_t kLinearLimit = 12;

    void reindex() {
        index_.clear();
        for (uint32_t i = 0; i < items_.size(); ++i) {
            index_.emplace(items_[i].first, i);
        }
    }

    std::vector<std::pair<K, V>> items_;
    /// key -> position in items_; populated past kLinearLimit.
    std::unordered_map<K, uint32_t, SmallMapHash> index_;
};

}  // namespace eraser::core::detail
