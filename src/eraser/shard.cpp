#include "eraser/shard.h"

#include <algorithm>
#include <numeric>

#include "cfg/cfg.h"
#include "cfg/vdg.h"
#include "eraser/compiled_design.h"
#include "fault/divergence.h"
#include "util/diagnostics.h"

namespace eraser::core {

uint64_t behavior_vdg_weight(const cfg::Vdg& vdg) {
    return 1 + vdg.nodes.size();
}

std::vector<uint64_t> behavior_vdg_weights(const rtl::Design& design) {
    std::vector<uint64_t> weights;
    weights.reserve(design.behaviors.size());
    for (const auto& behav : design.behaviors) {
        const cfg::Cfg cfg = cfg::Cfg::build(*behav.body, design);
        weights.push_back(behavior_vdg_weight(cfg::Vdg::build(cfg)));
    }
    return weights;
}

std::vector<uint64_t> signal_fault_costs(
    const rtl::Design& design, std::span<const uint64_t> behavior_weights) {
    // Per-signal cost, shared by both stuck-at polarities of every bit.
    std::vector<uint64_t> sig_cost(design.signals.size(), 0);
    for (rtl::SignalId s = 0; s < design.signals.size(); ++s) {
        const rtl::Signal& sig = design.signals[s];
        uint64_t cost = 1 + sig.fanout_nodes.size();
        for (rtl::BehavId b : sig.fanout_comb) cost += behavior_weights[b];
        for (rtl::BehavId b : sig.fanout_edges) cost += behavior_weights[b];
        sig_cost[s] = cost;
    }
    return sig_cost;
}

std::vector<uint64_t> estimate_fault_costs(
    const rtl::Design& design, std::span<const fault::Fault> faults) {
    const std::vector<uint64_t> sig_cost =
        signal_fault_costs(design, behavior_vdg_weights(design));
    std::vector<uint64_t> costs;
    costs.reserve(faults.size());
    for (const fault::Fault& f : faults) costs.push_back(sig_cost[f.sig]);
    return costs;
}

std::vector<Shard> make_shards(std::span<const fault::Fault> faults,
                               std::span<const uint64_t> costs,
                               uint32_t num_shards, ShardPolicy policy) {
    if (costs.size() != faults.size()) {
        throw SimError("make_shards: costs span must parallel the fault "
                       "list (stale cache after regenerating faults?)");
    }
    const uint32_t n = static_cast<uint32_t>(faults.size());
    uint32_t k = num_shards == 0 ? 1 : num_shards;
    if (k > n && n > 0) k = n;   // no empty shards
    std::vector<Shard> shards(n == 0 ? 1 : k);
    if (n == 0) return shards;

    // Shard id per global fault index.
    std::vector<uint32_t> owner(n);
    switch (policy) {
        case ShardPolicy::RoundRobin: {
            for (uint32_t i = 0; i < n; ++i) owner[i] = i % k;
            break;
        }
        case ShardPolicy::CostBalanced: {
            // LPT: heaviest first into the currently-lightest shard;
            // ties break toward the lower fault index / shard id so the
            // partition is deterministic.
            std::vector<uint32_t> order(n);
            std::iota(order.begin(), order.end(), 0);
            std::stable_sort(order.begin(), order.end(),
                             [&](uint32_t a, uint32_t b) {
                                 return costs[a] > costs[b];
                             });
            std::vector<uint64_t> load(k, 0);
            for (uint32_t idx : order) {
                uint32_t best = 0;
                for (uint32_t s = 1; s < k; ++s) {
                    if (load[s] < load[best]) best = s;
                }
                owner[idx] = best;
                load[best] += costs[idx];
            }
            break;
        }
    }

    // Materialize shards with ascending global ids (engines must see faults
    // in the same relative order as the unsharded campaign).
    for (uint32_t i = 0; i < n; ++i) {
        Shard& shard = shards[owner[i]];
        shard.faults.push_back(faults[i]);
        shard.global_ids.push_back(i);
        shard.est_cost += costs[i];
    }
    return shards;
}

std::vector<Shard> make_shards(const CompiledDesign& compiled,
                               std::span<const fault::Fault> faults,
                               uint32_t num_shards, ShardPolicy policy) {
    return make_shards(faults, compiled.fault_costs(faults), num_shards,
                       policy);
}

std::vector<Shard> make_shards_grouped(std::span<const fault::Fault> faults,
                                       std::span<const uint64_t> costs,
                                       uint32_t num_shards,
                                       ShardPolicy policy,
                                       const GroupPacker& packer) {
    if (costs.size() != faults.size()) {
        throw SimError("make_shards_grouped: costs span must parallel the "
                       "fault list (stale cache after regenerating faults?)");
    }
    const uint32_t n = static_cast<uint32_t>(faults.size());
    uint32_t k = num_shards == 0 ? 1 : num_shards;
    if (k > n && n > 0) k = n;   // no empty shards
    if (n == 0) return std::vector<Shard>(1);

    // Unit width: full 64-lane groups, shrunk when the requested shard
    // count needs more units than full groups exist.
    const uint32_t cap =
        std::min<uint32_t>(fault::kLanesPerGroup, (n + k - 1) / k);
    const uint32_t nunits = (n + cap - 1) / cap;
    if (k > nunits) k = nunits;   // still no empty shards
    std::vector<Shard> shards(k);
    std::vector<std::vector<uint32_t>> units(nunits);
    std::vector<uint64_t> unit_cost(nunits, 0);

    if (packer) {
        // Caller-supplied fault order (e.g. the scheduler's learned
        // deferral-rate clustering): consecutive runs share a unit. The LPT
        // below re-sorts units by cost, so the order only decides
        // co-residency, not balance.
        std::vector<uint32_t> order = packer(faults, costs);
        if (order.size() != n) {
            throw SimError("make_shards_grouped: packer must return a "
                           "permutation of the fault indices");
        }
        std::vector<bool> seen(n, false);
        for (uint32_t idx : order) {
            if (idx >= n || seen[idx]) {
                throw SimError("make_shards_grouped: packer order is not a "
                               "permutation of the fault indices");
            }
            seen[idx] = true;
        }
        for (uint32_t i = 0; i < n; ++i) {
            units[i / cap].push_back(order[i]);
            unit_cost[i / cap] += costs[order[i]];
        }
    } else {
        switch (policy) {
            case ShardPolicy::RoundRobin: {
                for (uint32_t i = 0; i < n; ++i) {
                    units[i / cap].push_back(i);
                    unit_cost[i / cap] += costs[i];
                }
                break;
            }
            case ShardPolicy::CostBalanced: {
                // Units = consecutive chunks of the cost-descending order,
                // so at most ONE unit anywhere is narrower than the lane
                // width (shard sizes stay lane-aligned after whole-unit
                // assignment; the engine re-chunks each shard's ascending
                // fault list into 64-lane groups by position, so only the
                // sizes matter). Unit costs descend chunk over chunk, which
                // is exactly the order the LPT below consumes.
                std::vector<uint32_t> order(n);
                std::iota(order.begin(), order.end(), 0);
                std::stable_sort(order.begin(), order.end(),
                                 [&](uint32_t a, uint32_t b) {
                                     return costs[a] > costs[b];
                                 });
                for (uint32_t i = 0; i < n; ++i) {
                    units[i / cap].push_back(order[i]);
                    unit_cost[i / cap] += costs[order[i]];
                }
                break;
            }
        }
    }

    // Whole units to shards (LPT under CostBalanced, round-robin
    // otherwise), then materialize each shard ascending by global id.
    std::vector<uint32_t> shard_of(nunits);
    if (policy == ShardPolicy::CostBalanced) {
        std::vector<uint32_t> uorder(nunits);
        std::iota(uorder.begin(), uorder.end(), 0);
        std::stable_sort(uorder.begin(), uorder.end(),
                         [&](uint32_t a, uint32_t b) {
                             return unit_cost[a] > unit_cost[b];
                         });
        std::vector<uint64_t> load(k, 0);
        for (uint32_t u : uorder) {
            uint32_t best = 0;
            for (uint32_t s = 1; s < k; ++s) {
                if (load[s] < load[best]) best = s;
            }
            shard_of[u] = best;
            load[best] += unit_cost[u];
        }
    } else {
        for (uint32_t u = 0; u < nunits; ++u) shard_of[u] = u % k;
    }
    std::vector<std::vector<uint32_t>> members(k);
    for (uint32_t u = 0; u < nunits; ++u) {
        auto& m = members[shard_of[u]];
        m.insert(m.end(), units[u].begin(), units[u].end());
    }
    for (uint32_t s = 0; s < k; ++s) {
        std::sort(members[s].begin(), members[s].end());
        Shard& shard = shards[s];
        for (uint32_t i : members[s]) {
            shard.faults.push_back(faults[i]);
            shard.global_ids.push_back(i);
            shard.est_cost += costs[i];
        }
    }
    return shards;
}

std::vector<Shard> make_shards_grouped(const CompiledDesign& compiled,
                                       std::span<const fault::Fault> faults,
                                       uint32_t num_shards,
                                       ShardPolicy policy,
                                       const GroupPacker& packer) {
    return make_shards_grouped(faults, compiled.fault_costs(faults),
                               num_shards, policy, packer);
}

std::vector<Shard> replicate_epoch_windows(std::vector<Shard> fault_shards,
                                           uint32_t num_epochs,
                                           uint32_t splits) {
    const uint32_t epochs = std::max<uint32_t>(1, num_epochs);
    const uint32_t s = std::clamp<uint32_t>(splits, 1, epochs);
    if (s <= 1) {
        for (Shard& sh : fault_shards) {
            sh.epoch_begin = 0;
            sh.epoch_end = epochs;
        }
        return fault_shards;
    }
    std::vector<Shard> out;
    out.reserve(fault_shards.size() * s);
    for (uint32_t w = 0; w < s; ++w) {
        const auto b = static_cast<uint32_t>(uint64_t(w) * epochs / s);
        const auto e = static_cast<uint32_t>(uint64_t(w + 1) * epochs / s);
        for (const Shard& fs : fault_shards) {
            Shard sh = fs;
            sh.epoch_begin = b;
            sh.epoch_end = e;
            // An epoch window carries its epoch share of the fault-unit's
            // full-stimulus cost (the LPT and the placement gate both want
            // per-unit, not per-fault-lifetime, estimates).
            sh.est_cost =
                std::max<uint64_t>(1, fs.est_cost * (e - b) / epochs);
            out.push_back(std::move(sh));
        }
    }
    return out;
}

std::vector<Shard> make_shards(const rtl::Design& design,
                               std::span<const fault::Fault> faults,
                               uint32_t num_shards, ShardPolicy policy,
                               const std::vector<uint64_t>* precomputed) {
    const std::vector<uint64_t> costs =
        precomputed != nullptr && precomputed->size() == faults.size()
            ? *precomputed
            : estimate_fault_costs(design, faults);
    return make_shards(faults, costs, num_shards, policy);
}

}  // namespace eraser::core
