#include "eraser/shard.h"

#include <algorithm>
#include <numeric>

#include "cfg/cfg.h"
#include "cfg/vdg.h"
#include "eraser/compiled_design.h"
#include "util/diagnostics.h"

namespace eraser::core {

uint64_t behavior_vdg_weight(const cfg::Vdg& vdg) {
    return 1 + vdg.nodes.size();
}

std::vector<uint64_t> behavior_vdg_weights(const rtl::Design& design) {
    std::vector<uint64_t> weights;
    weights.reserve(design.behaviors.size());
    for (const auto& behav : design.behaviors) {
        const cfg::Cfg cfg = cfg::Cfg::build(*behav.body, design);
        weights.push_back(behavior_vdg_weight(cfg::Vdg::build(cfg)));
    }
    return weights;
}

std::vector<uint64_t> signal_fault_costs(
    const rtl::Design& design, std::span<const uint64_t> behavior_weights) {
    // Per-signal cost, shared by both stuck-at polarities of every bit.
    std::vector<uint64_t> sig_cost(design.signals.size(), 0);
    for (rtl::SignalId s = 0; s < design.signals.size(); ++s) {
        const rtl::Signal& sig = design.signals[s];
        uint64_t cost = 1 + sig.fanout_nodes.size();
        for (rtl::BehavId b : sig.fanout_comb) cost += behavior_weights[b];
        for (rtl::BehavId b : sig.fanout_edges) cost += behavior_weights[b];
        sig_cost[s] = cost;
    }
    return sig_cost;
}

std::vector<uint64_t> estimate_fault_costs(
    const rtl::Design& design, std::span<const fault::Fault> faults) {
    const std::vector<uint64_t> sig_cost =
        signal_fault_costs(design, behavior_vdg_weights(design));
    std::vector<uint64_t> costs;
    costs.reserve(faults.size());
    for (const fault::Fault& f : faults) costs.push_back(sig_cost[f.sig]);
    return costs;
}

std::vector<Shard> make_shards(std::span<const fault::Fault> faults,
                               std::span<const uint64_t> costs,
                               uint32_t num_shards, ShardPolicy policy) {
    if (costs.size() != faults.size()) {
        throw SimError("make_shards: costs span must parallel the fault "
                       "list (stale cache after regenerating faults?)");
    }
    const uint32_t n = static_cast<uint32_t>(faults.size());
    uint32_t k = num_shards == 0 ? 1 : num_shards;
    if (k > n && n > 0) k = n;   // no empty shards
    std::vector<Shard> shards(n == 0 ? 1 : k);
    if (n == 0) return shards;

    // Shard id per global fault index.
    std::vector<uint32_t> owner(n);
    switch (policy) {
        case ShardPolicy::RoundRobin: {
            for (uint32_t i = 0; i < n; ++i) owner[i] = i % k;
            break;
        }
        case ShardPolicy::CostBalanced: {
            // LPT: heaviest first into the currently-lightest shard;
            // ties break toward the lower fault index / shard id so the
            // partition is deterministic.
            std::vector<uint32_t> order(n);
            std::iota(order.begin(), order.end(), 0);
            std::stable_sort(order.begin(), order.end(),
                             [&](uint32_t a, uint32_t b) {
                                 return costs[a] > costs[b];
                             });
            std::vector<uint64_t> load(k, 0);
            for (uint32_t idx : order) {
                uint32_t best = 0;
                for (uint32_t s = 1; s < k; ++s) {
                    if (load[s] < load[best]) best = s;
                }
                owner[idx] = best;
                load[best] += costs[idx];
            }
            break;
        }
    }

    // Materialize shards with ascending global ids (engines must see faults
    // in the same relative order as the unsharded campaign).
    for (uint32_t i = 0; i < n; ++i) {
        Shard& shard = shards[owner[i]];
        shard.faults.push_back(faults[i]);
        shard.global_ids.push_back(i);
        shard.est_cost += costs[i];
    }
    return shards;
}

std::vector<Shard> make_shards(const CompiledDesign& compiled,
                               std::span<const fault::Fault> faults,
                               uint32_t num_shards, ShardPolicy policy) {
    return make_shards(faults, compiled.fault_costs(faults), num_shards,
                       policy);
}

std::vector<Shard> make_shards(const rtl::Design& design,
                               std::span<const fault::Fault> faults,
                               uint32_t num_shards, ShardPolicy policy,
                               const std::vector<uint64_t>* precomputed) {
    const std::vector<uint64_t> costs =
        precomputed != nullptr && precomputed->size() == faults.size()
            ? *precomputed
            : estimate_fault_costs(design, faults);
    return make_shards(faults, costs, num_shards, policy);
}

}  // namespace eraser::core
