// Counters and phase timers collected by the concurrent engine. These back
// the paper's measurement artifacts: Fig. 1(b) (explicit vs implicit
// redundancy ratio), Table III (redundancy proportions, behavioral time
// share), and the ablation reasoning of Fig. 7.
#pragma once

#include <cstdint>
#include <vector>

#include "util/timer.h"

namespace eraser::core {

/// Per-shard slice of a sharded campaign's work, for imbalance diagnosis
/// (ROADMAP instrumentation item). Filled by run_sharded_campaign; printed
/// by bench_sharding. behavioral/rtl seconds are only meaningful when the
/// campaign ran with EngineOptions::time_phases.
struct ShardBreakdown {
    uint32_t shard = 0;            // shard index within its campaign
    uint32_t faults = 0;
    uint32_t detected = 0;
    /// Cost units of the partition that produced the shard: static VDG
    /// units, or learned CostModel units (1/CostModel::kCostScale of a
    /// static unit) when the scheduler's cost feedback is active.
    uint64_t est_cost = 0;
    /// Campaign submit() -> this shard's engine start: admission-queue wait
    /// plus time spent behind higher-priority / earlier work. Filled by the
    /// scheduler; 0 on the blocking Session::run path.
    double queue_seconds = 0.0;
    double wall_seconds = 0.0;     // this shard's engine run, wall clock
    double behavioral_seconds = 0.0;
    double rtl_seconds = 0.0;
    /// Executor provenance: true when the shard ran as a unit on a remote
    /// worker process (eraser/remote.h). `rtt_seconds` is then the request
    /// round trip minus the worker-reported wall — the pure shipping +
    /// framing overhead the scheduler's placement gate weighs against
    /// predicted compute.
    bool remote = false;
    double rtt_seconds = 0.0;
    /// Time the engine loop spent *blocked* waiting for stimulus
    /// generation (the pipelined producer of sim/stimulus_pipeline.h).
    /// Near-zero when generation fully overlaps execution; 0 when the
    /// unit ran the unpipelined loop.
    double stimulus_seconds = 0.0;
    /// Epoch window this unit covered under 2D (fault, epoch) packing.
    /// [0, 1) for classic unepoched campaigns.
    uint32_t epoch_begin = 0;
    uint32_t epoch_end = 1;
};

struct Instrumentation {
    // NOTE: every counter added here must also be added to merge_from()
    // below, or sharded campaigns will silently drop it from their totals.

    // --- behavioral nodes (BN) --------------------------------------------
    /// Good executions of behavioral bodies.
    uint64_t bn_good_execs = 0;
    /// Faulty behavioral executions that exist under plain concurrent
    /// simulation (the paper's "#Total BN Execution" accounting): one per
    /// candidate fault per activation, before any redundancy elimination.
    uint64_t bn_candidates = 0;
    /// Faulty executions actually run.
    uint64_t bn_executed = 0;
    /// Skips by input-consistency (explicit redundancy, prior art).
    uint64_t bn_skipped_explicit = 0;
    /// Skips by the execution-path walk (implicit redundancy, Algorithm 1).
    uint64_t bn_skipped_implicit = 0;

    // --- superword lane passes (batched mode only) -------------------------
    /// Lane passes run (one per (activation, group) with 2+ execute lanes).
    uint64_t bn_lane_passes = 0;
    /// Faulty executions completed inside a lane pass (subset of
    /// bn_executed).
    uint64_t bn_lane_survivors = 0;
    /// Lanes that diverged out of a pass and re-executed scalar.
    uint64_t bn_lane_deferred = 0;

    // --- audit classification (ground truth, measured by shadow-executing
    // every candidate and comparing results; fills Fig. 1b / Table III) ----
    uint64_t audit_explicit = 0;      // inputs identical -> same result
    uint64_t audit_implicit = 0;      // inputs differ, result identical
    uint64_t audit_nonredundant = 0;  // result differs
    /// Implicit-skip decisions cross-checked against shadow execution
    /// (soundness property); mismatches indicate a detector bug.
    uint64_t audit_soundness_violations = 0;

    // --- RTL nodes ---------------------------------------------------------
    uint64_t rtl_good_evals = 0;
    uint64_t rtl_fault_evals = 0;

    // --- phase timers ------------------------------------------------------
    TimeAccumulator time_behavioral;   // all behavioral-node processing
    TimeAccumulator time_rtl;          // RTL-node evaluation

    // --- per-shard breakdown (sharded campaigns only; engines leave this
    // empty, run_sharded_campaign appends one entry per shard) -------------
    std::vector<ShardBreakdown> shards;

    [[nodiscard]] uint64_t bn_eliminated() const {
        return bn_skipped_explicit + bn_skipped_implicit;
    }

    /// Accumulates another engine's counters (sharded campaigns merge the
    /// per-shard instrumentation in shard-index order). The merged counters
    /// keep every per-engine invariant (executed + skipped == candidates;
    /// candidates mode-independent), but absolute totals are per-evaluation
    /// accounting and depend on the partition: each shard replays the good
    /// network, and a comb behavior re-evaluated by one fault's divergence
    /// traffic re-counts its co-resident candidates.
    void merge_from(const Instrumentation& o) {
        bn_good_execs += o.bn_good_execs;
        bn_candidates += o.bn_candidates;
        bn_executed += o.bn_executed;
        bn_skipped_explicit += o.bn_skipped_explicit;
        bn_skipped_implicit += o.bn_skipped_implicit;
        bn_lane_passes += o.bn_lane_passes;
        bn_lane_survivors += o.bn_lane_survivors;
        bn_lane_deferred += o.bn_lane_deferred;
        audit_explicit += o.audit_explicit;
        audit_implicit += o.audit_implicit;
        audit_nonredundant += o.audit_nonredundant;
        audit_soundness_violations += o.audit_soundness_violations;
        rtl_good_evals += o.rtl_good_evals;
        rtl_fault_evals += o.rtl_fault_evals;
        time_behavioral.merge(o.time_behavioral);
        time_rtl.merge(o.time_rtl);
        shards.insert(shards.end(), o.shards.begin(), o.shards.end());
    }

    void reset() { *this = Instrumentation{}; }
};

}  // namespace eraser::core
