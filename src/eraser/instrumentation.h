// Counters and phase timers collected by the concurrent engine. These back
// the paper's measurement artifacts: Fig. 1(b) (explicit vs implicit
// redundancy ratio), Table III (redundancy proportions, behavioral time
// share), and the ablation reasoning of Fig. 7.
#pragma once

#include <cstdint>

#include "util/timer.h"

namespace eraser::core {

struct Instrumentation {
    // --- behavioral nodes (BN) --------------------------------------------
    /// Good executions of behavioral bodies.
    uint64_t bn_good_execs = 0;
    /// Faulty behavioral executions that exist under plain concurrent
    /// simulation (the paper's "#Total BN Execution" accounting): one per
    /// candidate fault per activation, before any redundancy elimination.
    uint64_t bn_candidates = 0;
    /// Faulty executions actually run.
    uint64_t bn_executed = 0;
    /// Skips by input-consistency (explicit redundancy, prior art).
    uint64_t bn_skipped_explicit = 0;
    /// Skips by the execution-path walk (implicit redundancy, Algorithm 1).
    uint64_t bn_skipped_implicit = 0;

    // --- audit classification (ground truth, measured by shadow-executing
    // every candidate and comparing results; fills Fig. 1b / Table III) ----
    uint64_t audit_explicit = 0;      // inputs identical -> same result
    uint64_t audit_implicit = 0;      // inputs differ, result identical
    uint64_t audit_nonredundant = 0;  // result differs
    /// Implicit-skip decisions cross-checked against shadow execution
    /// (soundness property); mismatches indicate a detector bug.
    uint64_t audit_soundness_violations = 0;

    // --- RTL nodes ---------------------------------------------------------
    uint64_t rtl_good_evals = 0;
    uint64_t rtl_fault_evals = 0;

    // --- phase timers ------------------------------------------------------
    TimeAccumulator time_behavioral;   // all behavioral-node processing
    TimeAccumulator time_rtl;          // RTL-node evaluation

    [[nodiscard]] uint64_t bn_eliminated() const {
        return bn_skipped_explicit + bn_skipped_implicit;
    }

    void reset() { *this = Instrumentation{}; }
};

}  // namespace eraser::core
