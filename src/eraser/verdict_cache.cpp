#include "eraser/verdict_cache.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <fstream>
#include <utility>

#include "eraser/canonical.h"
#include "eraser/concurrent_sim.h"
#include "eraser/remote.h"
#include "util/diagnostics.h"
#include "util/fileio.h"
#include "util/wire.h"

namespace eraser::core {

using util::WireError;
using util::WireReader;
using util::WireWriter;

namespace {

/// First store frame: "ERSC" magic + layout version.
constexpr uint32_t kStoreMagic = 0x43535245;   // 'E','R','S','C' LE

}  // namespace

VerdictCache::VerdictCache(VerdictCacheOptions opts) : opts_(std::move(opts)) {
    bucket_budget_blocks_ =
        std::max<uint64_t>(1, opts_.max_bytes / kNumBuckets / kBlockBytes);
    if (!opts_.store_path.empty()) (void)load(opts_.store_path);
}

VerdictCache::~VerdictCache() {
    if (opts_.store_path.empty()) return;
    try {
        (void)flush();
    } catch (...) {
        // Best effort: a failed flush loses warmth, never correctness.
    }
}

uint64_t VerdictCache::context_key(uint64_t design_hash,
                                   const StimulusSpec& stimulus,
                                   const EngineOptions& engine) {
    WireWriter w;
    w.u64(design_hash);
    uint64_t h = util::fnv1a64(w.bytes());
    h = canonical::stimulus_hash(stimulus, h);
    h = canonical::engine_fingerprint(engine, h);
    return h;
}

VerdictCache::Partition VerdictCache::lookup(
    uint64_t context, std::span<const fault::Fault> faults) {
    Partition p;
    p.hit.assign(faults.size(), false);
    p.verdict.assign(faults.size(), false);
    uint64_t hits = 0;
    for (size_t i = 0; i < faults.size(); ++i) {
        const fault::Fault& f = faults[i];
        if (f.bit >= 64) continue;   // outside lane range: uncacheable
        const uint64_t key =
            canonical::plane_hash(f.sig, f.stuck_one, context);
        const uint64_t lane = 1ull << f.bit;
        Bucket& b = bucket_of(key);
        std::lock_guard<std::mutex> lock(b.mu);
        auto it = b.blocks.find(key);
        if (it == b.blocks.end() || (it->second.mask & lane) == 0) continue;
        p.hit[i] = true;
        p.verdict[i] = (it->second.bits & lane) != 0;
        it->second.tick =
            tick_.fetch_add(1, std::memory_order_relaxed) + 1;
        ++hits;
    }
    p.hits = static_cast<uint32_t>(hits);
    hits_.fetch_add(hits, std::memory_order_relaxed);
    misses_.fetch_add(faults.size() - hits, std::memory_order_relaxed);
    return p;
}

void VerdictCache::insert(uint64_t context,
                          std::span<const fault::Fault> faults,
                          const std::vector<bool>& detected) {
    if (detected.size() != faults.size()) {
        throw SimError("VerdictCache::insert: verdict bitmap size mismatch");
    }
    uint64_t inserted = 0;
    for (size_t i = 0; i < faults.size(); ++i) {
        const fault::Fault& f = faults[i];
        if (f.bit >= 64) continue;
        const uint64_t key =
            canonical::plane_hash(f.sig, f.stuck_one, context);
        const uint64_t lane = 1ull << f.bit;
        Bucket& b = bucket_of(key);
        std::lock_guard<std::mutex> lock(b.mu);
        auto [it, fresh] = b.blocks.try_emplace(key);
        if (fresh) blocks_.fetch_add(1, std::memory_order_relaxed);
        Block& blk = it->second;
        if ((blk.mask & lane) == 0) {
            ++inserted;
            entries_.fetch_add(1, std::memory_order_relaxed);
        }
        blk.mask |= lane;
        blk.bits = detected[i] ? (blk.bits | lane) : (blk.bits & ~lane);
        blk.tick = tick_.fetch_add(1, std::memory_order_relaxed) + 1;
        if (b.blocks.size() > bucket_budget_blocks_) evict_locked(b);
    }
    insertions_.fetch_add(inserted, std::memory_order_relaxed);
}

void VerdictCache::evict_locked(Bucket& b) {
    // Batch eviction: drop the oldest blocks down to 3/4 of the budget, so
    // a hot insert path is not re-sorting the bucket on every overflow.
    const uint64_t target =
        bucket_budget_blocks_ - bucket_budget_blocks_ / 4;
    if (b.blocks.size() <= target) return;
    std::vector<std::pair<uint64_t, uint64_t>> order;   // (tick, key)
    order.reserve(b.blocks.size());
    for (const auto& [key, blk] : b.blocks) order.emplace_back(blk.tick, key);
    const size_t evict = b.blocks.size() - static_cast<size_t>(target);
    std::nth_element(order.begin(),
                     order.begin() + static_cast<ptrdiff_t>(evict),
                     order.end());
    uint64_t dropped = 0;
    for (size_t i = 0; i < evict; ++i) {
        auto it = b.blocks.find(order[i].second);
        dropped += std::popcount(it->second.mask);
        b.blocks.erase(it);
    }
    blocks_.fetch_sub(evict, std::memory_order_relaxed);
    entries_.fetch_sub(dropped, std::memory_order_relaxed);
    evictions_.fetch_add(dropped, std::memory_order_relaxed);
}

void VerdictCache::store_cost_model(uint64_t design_hash,
                                    const CostModelSnapshot& snap) {
    std::lock_guard<std::mutex> lock(meta_mu_);
    cost_models_[design_hash] = snap;
}

std::optional<CostModelSnapshot> VerdictCache::find_cost_model(
    uint64_t design_hash) const {
    std::lock_guard<std::mutex> lock(meta_mu_);
    auto it = cost_models_.find(design_hash);
    if (it == cost_models_.end()) return std::nullopt;
    return it->second;
}

void VerdictCache::store_worker_overhead(uint16_t port, double ewma_seconds) {
    if (!(ewma_seconds > 0.0)) return;
    std::lock_guard<std::mutex> lock(meta_mu_);
    worker_overheads_[port] = ewma_seconds;
}

double VerdictCache::worker_overhead(uint16_t port) const {
    std::lock_guard<std::mutex> lock(meta_mu_);
    auto it = worker_overheads_.find(port);
    return it == worker_overheads_.end() ? 0.0 : it->second;
}

bool VerdictCache::flush() {
    if (opts_.store_path.empty()) return false;
    return save(opts_.store_path);
}

bool VerdictCache::save(const std::string& path) const {
    std::vector<uint8_t> file;

    WireWriter header;
    header.u32(kStoreMagic);
    header.u32(kVerdictStoreVersion);
    util::append_frame(file, header.bytes());

    // Blocks, oldest-touched first: load() re-ticks them in file order, so
    // the LRU ordering survives the round trip.
    std::vector<std::pair<uint64_t, std::pair<uint64_t, Block>>> all;
    for (const Bucket& b : buckets_) {
        std::lock_guard<std::mutex> lock(b.mu);
        for (const auto& [key, blk] : b.blocks) {
            all.emplace_back(blk.tick, std::make_pair(key, blk));
        }
    }
    std::sort(all.begin(), all.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    WireWriter blocks;
    blocks.varint(all.size());
    for (const auto& [tick, kv] : all) {
        blocks.u64(kv.first);
        blocks.u64(kv.second.mask);
        blocks.u64(kv.second.bits);
    }
    util::append_frame(file, blocks.bytes());

    {
        std::lock_guard<std::mutex> lock(meta_mu_);
        WireWriter models;
        models.varint(cost_models_.size());
        for (const auto& [hash, snap] : cost_models_) {
            models.u64(hash);
            models.f64(snap.unit_scale);
            models.varint(snap.observations);
            models.varint(snap.cost.size());
            for (double c : snap.cost) models.f64(c);
            for (double d : snap.defer) models.f64(d);
            models.f64(snap.reg_sx);
            models.f64(snap.reg_sy);
            models.f64(snap.reg_sxx);
            models.f64(snap.reg_sxy);
            models.varint(snap.reg_n);
        }
        util::append_frame(file, models.bytes());

        WireWriter overheads;
        overheads.varint(worker_overheads_.size());
        for (const auto& [port, ewma] : worker_overheads_) {
            overheads.u32(port);
            overheads.f64(ewma);
        }
        util::append_frame(file, overheads.bytes());
    }

    // Write-temp-fsync-rename-fsync-dir: a crash mid-write leaves the
    // previous store intact and no reader ever sees a partial file; the
    // fsync of the temp file makes its *contents* durable before the
    // rename commits them, and the directory fsync makes the rename itself
    // survive power loss (a rename without it can silently revert). All
    // I/O goes through the injectable seam so disk faults are testable.
    util::FileIo& io = opts_.io != nullptr ? *opts_.io : util::FileIo::real();
    const std::string tmp = path + ".tmp";
    const int fd = io.open_trunc(tmp);
    if (fd < 0) return false;
    if (!util::write_all(io, fd, file) || io.fsync(fd) != 0) {
        io.close(fd);
        io.remove(tmp);
        return false;
    }
    if (io.close(fd) != 0 || io.rename(tmp, path) != 0) {
        io.remove(tmp);
        return false;
    }
    return io.fsync_dir(path) == 0;
}

bool VerdictCache::load(const std::string& path) {
    clear();
    {
        // A crash between write and rename strands a `.tmp` next to the
        // store; it is garbage by construction (the rename never happened)
        // and would accumulate forever — reclaim it here.
        util::FileIo& io =
            opts_.io != nullptr ? *opts_.io : util::FileIo::real();
        io.remove(path + ".tmp");
    }
    std::vector<uint8_t> file;
    {
        std::ifstream in(path, std::ios::binary | std::ios::ate);
        if (!in) return false;   // no store yet: plain cold start
        const std::streamsize size = in.tellg();
        in.seekg(0);
        file.resize(static_cast<size_t>(size));
        in.read(reinterpret_cast<char*>(file.data()), size);
        if (!in.good()) {
            load_failures_.fetch_add(1, std::memory_order_relaxed);
            return false;
        }
    }

    try {
        size_t pos = 0;
        std::vector<uint8_t> payload;
        const auto read_frame = [&]() -> WireReader {
            if (!util::next_frame(file, pos, payload)) {
                throw WireError("store ends before all sections");
            }
            return WireReader(payload);
        };

        {
            WireReader r = read_frame();
            if (r.u32() != kStoreMagic) throw WireError("bad store magic");
            if (r.u32() != kVerdictStoreVersion) {
                throw WireError("store version skew");
            }
            r.expect_end();
        }
        {
            WireReader r = read_frame();
            const uint64_t n = r.varint();
            if (n > r.remaining()) throw WireError("block count too large");
            uint64_t loaded_blocks = 0;
            uint64_t loaded_entries = 0;
            for (uint64_t i = 0; i < n; ++i) {
                const uint64_t key = r.u64();
                Block blk;
                blk.mask = r.u64();
                blk.bits = r.u64();
                // File order is oldest-first; re-tick sequentially so the
                // persisted LRU order carries over.
                blk.tick = tick_.fetch_add(1, std::memory_order_relaxed) + 1;
                Bucket& b = bucket_of(key);
                std::lock_guard<std::mutex> lock(b.mu);
                if (b.blocks.insert_or_assign(key, blk).second) {
                    ++loaded_blocks;
                    loaded_entries += std::popcount(blk.mask);
                }
            }
            r.expect_end();
            blocks_.fetch_add(loaded_blocks, std::memory_order_relaxed);
            entries_.fetch_add(loaded_entries, std::memory_order_relaxed);
        }
        {
            WireReader r = read_frame();
            const uint64_t n = r.varint();
            std::lock_guard<std::mutex> lock(meta_mu_);
            for (uint64_t i = 0; i < n; ++i) {
                const uint64_t hash = r.u64();
                CostModelSnapshot snap;
                snap.unit_scale = r.f64();
                snap.observations = r.varint();
                const uint64_t sigs = r.varint();
                if (sigs > r.remaining()) {
                    throw WireError("cost table longer than frame");
                }
                snap.cost.reserve(sigs);
                snap.defer.reserve(sigs);
                for (uint64_t s = 0; s < sigs; ++s) {
                    snap.cost.push_back(r.f64());
                }
                for (uint64_t s = 0; s < sigs; ++s) {
                    snap.defer.push_back(r.f64());
                }
                snap.reg_sx = r.f64();
                snap.reg_sy = r.f64();
                snap.reg_sxx = r.f64();
                snap.reg_sxy = r.f64();
                snap.reg_n = r.varint();
                cost_models_[hash] = std::move(snap);
            }
            r.expect_end();
        }
        {
            WireReader r = read_frame();
            const uint64_t n = r.varint();
            std::lock_guard<std::mutex> lock(meta_mu_);
            for (uint64_t i = 0; i < n; ++i) {
                const uint16_t port = static_cast<uint16_t>(r.u32());
                worker_overheads_[port] = r.f64();
            }
            r.expect_end();
        }
    } catch (const WireError&) {
        // Corrupt, truncated, or version-skewed: degrade to a cold cache.
        clear();
        load_failures_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    warm_.store(true, std::memory_order_relaxed);
    return true;
}

void VerdictCache::clear() {
    for (Bucket& b : buckets_) {
        std::lock_guard<std::mutex> lock(b.mu);
        b.blocks.clear();
    }
    {
        std::lock_guard<std::mutex> lock(meta_mu_);
        cost_models_.clear();
        worker_overheads_.clear();
    }
    blocks_.store(0, std::memory_order_relaxed);
    entries_.store(0, std::memory_order_relaxed);
    warm_.store(false, std::memory_order_relaxed);
}

CacheStats VerdictCache::stats() const {
    CacheStats s;
    s.hits = hits_.load(std::memory_order_relaxed);
    s.misses = misses_.load(std::memory_order_relaxed);
    s.insertions = insertions_.load(std::memory_order_relaxed);
    s.evictions = evictions_.load(std::memory_order_relaxed);
    s.units = blocks_.load(std::memory_order_relaxed);
    s.entries = entries_.load(std::memory_order_relaxed);
    s.bytes = s.units * kBlockBytes;
    s.load_failures = load_failures_.load(std::memory_order_relaxed);
    s.warm = warm_.load(std::memory_order_relaxed);
    return s;
}

}  // namespace eraser::core
