#include "eraser/supervisor.h"

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <utility>

#include "util/wire.h"

namespace eraser::core {

WorkerSupervisor::Spawned WorkerSupervisor::spawn(uint16_t port) {
    int fds[2];
    if (::pipe(fds) != 0) return {};

    // argv is materialized before fork: only async-signal-safe calls are
    // allowed in the child of a threaded process.
    std::vector<std::string> args;
    args.push_back(opts_.binary);
    args.push_back("--port");
    args.push_back(std::to_string(port));
    for (const std::string& a : opts_.extra_args) args.push_back(a);
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid < 0) {
        ::close(fds[0]);
        ::close(fds[1]);
        return {};
    }
    if (pid == 0) {
        ::dup2(fds[1], STDOUT_FILENO);
        ::close(fds[0]);
        ::close(fds[1]);
        ::execv(argv[0], argv.data());
        _exit(127);
    }
    ::close(fds[1]);

    // "LISTENING <port>" is the child's bind confirmation; EOF before the
    // newline means it failed to launch (its stderr says why).
    std::string line;
    char c;
    while (::read(fds[0], &c, 1) == 1 && c != '\n') line.push_back(c);
    ::close(fds[0]);

    Spawned s;
    unsigned parsed = 0;
    if (std::sscanf(line.c_str(), "LISTENING %u", &parsed) != 1) {
        ::kill(pid, SIGKILL);
        ::waitpid(pid, nullptr, 0);
        return {};
    }
    s.pid = pid;
    s.port = static_cast<uint16_t>(parsed);
    return s;
}

void WorkerSupervisor::start() {
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (started_) return;
        started_ = true;
        stop_ = false;
        slots_.assign(opts_.workers, Slot{});
    }
    for (uint32_t i = 0; i < opts_.workers; ++i) {
        Spawned s = spawn(0);
        if (s.pid <= 0) {
            stop();
            throw util::WireError("failed to launch worker '" +
                                  opts_.binary + "'");
        }
        std::lock_guard<std::mutex> lock(mu_);
        slots_[i].pid = s.pid;
        slots_[i].port = s.port;
    }
    monitor_ = std::thread([this] { monitor_loop(); });
}

void WorkerSupervisor::monitor_loop() {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        cv_.wait_for(lock, std::chrono::milliseconds(opts_.poll_interval_ms),
                     [this] { return stop_; });
        if (stop_) return;
        for (size_t i = 0; i < slots_.size(); ++i) {
            Slot& slot = slots_[i];
            if (slot.pid <= 0 || slot.gave_up) continue;
            int status = 0;
            if (::waitpid(slot.pid, &status, WNOHANG) != slot.pid) continue;
            slot.pid = -1;
            if (slot.respawns >= opts_.restart_budget) {
                slot.gave_up = true;
                continue;
            }
            ++slot.respawns;
            const uint16_t port = slot.port;   // same address on purpose
            lock.unlock();
            Spawned s = spawn(port);
            lock.lock();
            if (stop_) {
                if (s.pid > 0) {
                    ::kill(s.pid, SIGKILL);
                    ::waitpid(s.pid, nullptr, 0);
                }
                return;
            }
            // slots_ is never resized after start(); the reference holds.
            if (s.pid > 0) {
                slot.pid = s.pid;
            } else {
                slot.gave_up = true;
            }
        }
    }
}

void WorkerSupervisor::stop() noexcept {
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (!started_) return;
        stop_ = true;
    }
    cv_.notify_all();
    if (monitor_.joinable()) monitor_.join();
    std::lock_guard<std::mutex> lock(mu_);
    for (Slot& slot : slots_) {
        if (slot.pid > 0) {
            ::kill(slot.pid, SIGKILL);
            ::waitpid(slot.pid, nullptr, 0);
            slot.pid = -1;
        }
    }
    started_ = false;
}

void WorkerSupervisor::stop_fleet(uint32_t term_deadline_ms) noexcept {
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (!started_) return;
        stop_ = true;
    }
    // Monitor first: a respawn racing the SIGTERM sweep would resurrect a
    // worker we just asked to die.
    cv_.notify_all();
    if (monitor_.joinable()) monitor_.join();

    std::lock_guard<std::mutex> lock(mu_);
    for (Slot& slot : slots_) {
        if (slot.pid > 0) ::kill(slot.pid, SIGTERM);
    }
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(term_deadline_ms);
    for (;;) {
        bool alive = false;
        for (Slot& slot : slots_) {
            if (slot.pid <= 0) continue;
            if (::waitpid(slot.pid, nullptr, WNOHANG) == slot.pid) {
                slot.pid = -1;
            } else {
                alive = true;
            }
        }
        if (!alive || std::chrono::steady_clock::now() >= deadline) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    // Stragglers exhausted the grace period; escalate.
    for (Slot& slot : slots_) {
        if (slot.pid > 0) {
            ::kill(slot.pid, SIGKILL);
            ::waitpid(slot.pid, nullptr, 0);
            slot.pid = -1;
        }
    }
    started_ = false;
}

std::vector<uint16_t> WorkerSupervisor::ports() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<uint16_t> ps;
    ps.reserve(slots_.size());
    for (const Slot& slot : slots_) ps.push_back(slot.port);
    return ps;
}

pid_t WorkerSupervisor::pid(size_t i) const {
    std::lock_guard<std::mutex> lock(mu_);
    return i < slots_.size() ? slots_[i].pid : -1;
}

void WorkerSupervisor::kill_worker(size_t i, int sig) {
    pid_t p = -1;
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (i < slots_.size()) p = slots_[i].pid;
    }
    if (p > 0) ::kill(p, sig);
}

uint32_t WorkerSupervisor::respawns() const {
    std::lock_guard<std::mutex> lock(mu_);
    uint32_t n = 0;
    for (const Slot& slot : slots_) n += slot.respawns;
    return n;
}

}  // namespace eraser::core
