#include "eraser/session.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>

#include "util/diagnostics.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace eraser::core {

namespace {

/// DriveHandle over the concurrent engine (good-network inputs; fault views
/// follow automatically, modulo pinned input faults).
class ConcurrentHandle final : public sim::DriveHandle {
  public:
    explicit ConcurrentHandle(ConcurrentSim& sim) : sim_(sim) {}
    void set_input(rtl::SignalId sig, uint64_t value) override {
        sim_.poke(sig, value);
    }
    void load_array(rtl::ArrayId arr,
                    std::span<const uint64_t> words) override {
        sim_.load_array(arr, words);
    }

  private:
    ConcurrentSim& sim_;
};

/// Result of one engine run over one fault subset (local fault indexing).
struct EngineOutcome {
    std::vector<bool> detected;
    uint32_t num_detected = 0;
    Instrumentation stats;
    ShardBreakdown breakdown;
    bool ran = false;        // engine executed (even partially)
    bool canceled = false;   // engine stopped at a cancel check
};

/// The campaign loop for one ConcurrentSim over `faults`: reset, stimulus
/// initialization, one clocked cycle per stimulus step with output
/// observation (fault detection + dropping) after each cycle. Early-exits
/// once every fault of this engine is detected, or (cooperatively, at the
/// cycle boundary) when `cancel` is raised.
EngineOutcome run_engine(const CompiledDesign& compiled,
                         std::span<const fault::Fault> faults,
                         sim::Stimulus& stim, const EngineOptions& opts,
                         const std::atomic<bool>* cancel) {
    Stopwatch engine_watch;
    ConcurrentSim sim(compiled, faults, opts);
    ConcurrentHandle handle(sim);
    const rtl::Design& design = compiled.design();
    stim.bind(design);
    const rtl::SignalId clk = design.signal_id(stim.clock_name());

    EngineOutcome out;
    out.ran = true;
    sim.reset();
    stim.initialize(handle);
    const uint32_t cycles = stim.num_cycles();
    for (uint32_t c = 0; c < cycles; ++c) {
        if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
            out.canceled = true;
            break;
        }
        stim.apply(c, handle);
        sim.tick(clk);
        sim.observe_outputs();
        if (sim.num_detected() == faults.size()) break;   // all dropped
    }

    out.detected = sim.detected();
    out.num_detected = sim.num_detected();
    out.stats = sim.stats();
    out.breakdown.wall_seconds = engine_watch.seconds();
    out.breakdown.behavioral_seconds =
        out.stats.time_behavioral.total_seconds();
    out.breakdown.rtl_seconds = out.stats.time_rtl.total_seconds();
    return out;
}

CampaignResult finish(CampaignResult result, uint32_t num_faults,
                      double seconds) {
    result.num_faults = num_faults;
    result.coverage_percent =
        num_faults == 0 ? 0.0
                        : 100.0 * static_cast<double>(result.num_detected) /
                              static_cast<double>(num_faults);
    result.seconds = seconds;
    return result;
}

}  // namespace

namespace detail {

/// Everything one submitted campaign owns. Kept alive by the handle copies
/// and by every enqueued shard job, so it outlives the Session if needed.
struct CampaignState {
    // Immutable after submit().
    std::shared_ptr<const CompiledDesign> compiled;
    EngineOptions engine_opts;
    StimulusFactory make_stimulus;
    ShardObserver observer;
    std::vector<Shard> shards;
    uint32_t num_faults = 0;
    uint32_t num_threads = 0;   // reported in the result

    // Lock-free progress counters (shard-granular).
    std::atomic<bool> cancel{false};
    std::atomic<uint32_t> shards_done{0};
    std::atomic<uint32_t> faults_done{0};
    std::atomic<uint32_t> detected_done{0};
    std::atomic<bool> finished_flag{false};

    // Written by the owning shard job only (disjoint indices).
    std::vector<EngineOutcome> outcomes;
    std::vector<std::exception_ptr> errors;

    std::mutex observer_mu;   // serializes ShardObserver invocations

    std::mutex mu;            // guards finished/result/finished_jobs
    std::condition_variable cv;
    uint32_t finished_jobs = 0;
    bool finished = false;
    CampaignResult result;

    Stopwatch watch;
};

}  // namespace detail

using detail::CampaignState;

namespace {

/// Deterministic merge: shards in index order, global ids within each
/// shard are ascending, so the bitmap assembly order is fixed regardless
/// of completion order. Partial (canceled) shard outcomes contribute their
/// verdicts-so-far but do not count as completed work.
void finalize_campaign(CampaignState& st) {
    CampaignResult result;
    result.detected.assign(st.num_faults, false);
    uint32_t completed = 0;
    for (size_t s = 0; s < st.shards.size(); ++s) {
        const EngineOutcome& out = st.outcomes[s];
        if (!out.ran) continue;
        const Shard& shard = st.shards[s];
        for (size_t i = 0; i < shard.global_ids.size(); ++i) {
            result.detected[shard.global_ids[i]] = out.detected[i];
        }
        result.num_detected += out.num_detected;
        result.stats.merge_from(out.stats);
        result.stats.shards.push_back(out.breakdown);
        if (!out.canceled) ++completed;
    }
    result.canceled = completed != st.shards.size();
    result.num_shards = static_cast<uint32_t>(st.shards.size());
    result.num_threads = st.num_threads;
    result = finish(std::move(result), st.num_faults, st.watch.seconds());

    {
        std::lock_guard<std::mutex> lock(st.mu);
        st.result = std::move(result);
        st.finished = true;
        // Inside the lock: once a waiter can observe finished, the
        // lock-free flag must agree (cancel()/finished() read it).
        st.finished_flag.store(true, std::memory_order_release);
    }
    st.cv.notify_all();
}

void run_shard_job(const std::shared_ptr<CampaignState>& st, size_t s) {
    EngineOutcome out;
    if (!st->cancel.load(std::memory_order_relaxed)) {
        try {
            auto stim = st->make_stimulus();
            out = run_engine(*st->compiled, st->shards[s].faults, *stim,
                             st->engine_opts, &st->cancel);
        } catch (...) {
            st->errors[s] = std::current_exception();
            out = EngineOutcome{};
        }
    }
    const Shard& shard = st->shards[s];
    out.breakdown.shard = static_cast<uint32_t>(s);
    out.breakdown.faults = static_cast<uint32_t>(shard.faults.size());
    out.breakdown.detected = out.num_detected;
    out.breakdown.est_cost = shard.est_cost;
    st->outcomes[s] = std::move(out);

    const EngineOutcome& stored = st->outcomes[s];
    if (stored.ran && !stored.canceled) {
        st->shards_done.fetch_add(1, std::memory_order_relaxed);
        st->faults_done.fetch_add(
            static_cast<uint32_t>(shard.faults.size()),
            std::memory_order_relaxed);
        st->detected_done.fetch_add(stored.num_detected,
                                    std::memory_order_relaxed);
        if (st->observer) {
            // An observer that throws must not stall the campaign (the
            // finished_jobs increment below is what unblocks wait()); the
            // exception is recorded and rethrown from wait() instead.
            try {
                const ShardEvent event{static_cast<uint32_t>(s),
                                       shard.global_ids, stored.detected,
                                       stored.breakdown};
                std::lock_guard<std::mutex> lock(st->observer_mu);
                st->observer(event);
            } catch (...) {
                st->errors[s] = std::current_exception();
            }
        }
    }

    bool last = false;
    {
        std::lock_guard<std::mutex> lock(st->mu);
        last = ++st->finished_jobs == st->shards.size();
    }
    if (last) finalize_campaign(*st);
}

}  // namespace

// --- CampaignHandle ---------------------------------------------------------

namespace {
void require_valid(const std::shared_ptr<CampaignState>& state) {
    if (!state) {
        throw SimError("empty CampaignHandle (default-constructed; only "
                       "Session::submit produces live handles)");
    }
}
}  // namespace

const CampaignResult& CampaignHandle::wait() {
    require_valid(state_);
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->cv.wait(lock, [&] { return state_->finished; });
    for (const auto& err : state_->errors) {
        if (err) std::rethrow_exception(err);
    }
    return state_->result;
}

bool CampaignHandle::cancel() {
    require_valid(state_);
    const bool already_finished =
        state_->finished_flag.load(std::memory_order_acquire);
    state_->cancel.store(true, std::memory_order_relaxed);
    return !already_finished;
}

CampaignProgress CampaignHandle::progress() const {
    require_valid(state_);
    CampaignProgress p;
    p.shards_total = static_cast<uint32_t>(state_->shards.size());
    p.shards_done = state_->shards_done.load(std::memory_order_relaxed);
    p.faults_total = state_->num_faults;
    p.faults_done = state_->faults_done.load(std::memory_order_relaxed);
    p.detected_so_far =
        state_->detected_done.load(std::memory_order_relaxed);
    p.cancel_requested = state_->cancel.load(std::memory_order_relaxed);
    p.finished = state_->finished_flag.load(std::memory_order_acquire);
    return p;
}

bool CampaignHandle::finished() const {
    require_valid(state_);
    return state_->finished_flag.load(std::memory_order_acquire);
}

// --- Session ----------------------------------------------------------------

Session::Session(std::shared_ptr<const CompiledDesign> compiled,
                 const SessionOptions& opts)
    : compiled_(std::move(compiled)), opts_(opts) {}

Session::Session(const rtl::Design& design, const SessionOptions& opts)
    : Session(CompiledDesign::build(design), opts) {}

// The pool destructor drains every queued shard job before joining, so all
// outstanding campaigns finish (handles held by callers stay usable — the
// state is shared).
Session::~Session() = default;

uint32_t Session::num_threads() const {
    return opts_.num_threads > 0 ? opts_.num_threads
                                 : util::ThreadPool::default_threads();
}

util::ThreadPool& Session::pool() {
    std::lock_guard<std::mutex> lock(pool_mu_);
    if (!pool_) {
        pool_ = std::make_unique<util::ThreadPool>(opts_.num_threads);
    }
    return *pool_;
}

CampaignHandle Session::submit(std::span<const fault::Fault> faults,
                               StimulusFactory make_stimulus,
                               const CampaignOptions& opts,
                               ShardObserver observer) {
    auto st = std::make_shared<CampaignState>();
    st->compiled = compiled_;
    st->engine_opts = opts.engine;
    st->make_stimulus = std::move(make_stimulus);
    st->observer = std::move(observer);
    st->num_faults = static_cast<uint32_t>(faults.size());

    util::ThreadPool& workers = pool();
    const uint32_t threads = static_cast<uint32_t>(workers.num_threads());
    const uint32_t want_shards =
        opts.num_shards > 0 ? opts.num_shards : threads;
    // Batched engines pack faults 64 lanes to a group, so their shards are
    // balanced at group granularity (lane-aligned work per shard).
    st->shards =
        opts.engine.batching == FaultBatching::Word
            ? make_shards_grouped(*compiled_, faults, want_shards,
                                  opts.shard_policy)
            : make_shards(*compiled_, faults, want_shards,
                          opts.shard_policy);
    st->num_threads = std::min<uint32_t>(
        threads, static_cast<uint32_t>(st->shards.size()));
    st->outcomes.resize(st->shards.size());
    st->errors.resize(st->shards.size());
    st->watch.reset();

    for (size_t s = 0; s < st->shards.size(); ++s) {
        workers.submit([st, s] { run_shard_job(st, s); });
    }
    return CampaignHandle(std::move(st));
}

CampaignResult Session::run(std::span<const fault::Fault> faults,
                            sim::Stimulus& stim,
                            const CampaignOptions& opts) {
    Stopwatch watch;
    EngineOutcome out =
        run_engine(*compiled_, faults, stim, opts.engine, nullptr);

    CampaignResult result;
    result.detected = std::move(out.detected);
    result.num_detected = out.num_detected;
    result.stats = std::move(out.stats);
    result.num_shards = 1;
    result.num_threads = 1;
    return finish(std::move(result), static_cast<uint32_t>(faults.size()),
                  watch.seconds());
}

}  // namespace eraser::core
