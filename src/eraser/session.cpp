#include "eraser/session.h"

#include <utility>

#include "eraser/scheduler.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace eraser::core {

Session::Session(std::shared_ptr<const CompiledDesign> compiled,
                 const SessionOptions& opts)
    : compiled_(std::move(compiled)), opts_(opts) {}

Session::Session(const rtl::Design& design, const SessionOptions& opts)
    : Session(CompiledDesign::build(design), opts) {}

// Drain first (queued campaigns may still need admission), then the pool
// destructor runs every remaining ticket before joining; handles held by
// callers stay usable — the campaign state is shared.
Session::~Session() {
    if (sched_) sched_->drain();
}

uint32_t Session::num_threads() const {
    return opts_.num_threads > 0 ? opts_.num_threads
                                 : util::ThreadPool::default_threads();
}

CampaignScheduler& Session::ensure_scheduler() {
    std::lock_guard<std::mutex> lock(pool_mu_);
    if (!sched_) {
        pool_ = std::make_unique<util::ThreadPool>(opts_.num_threads);
        sched_ = std::make_unique<CampaignScheduler>(compiled_, *pool_,
                                                     opts_.scheduler);
    }
    return *sched_;
}

CampaignScheduler& Session::scheduler() { return ensure_scheduler(); }

void Session::shutdown(ShutdownMode mode) {
    CampaignScheduler* sched = nullptr;
    {
        std::lock_guard<std::mutex> lock(pool_mu_);
        sched = sched_.get();
    }
    // A Session that never created its scheduler has nothing in flight.
    if (sched != nullptr) sched->shutdown(mode);
}

std::vector<CampaignHandle> Session::recover(const std::string& journal_path) {
    std::vector<CampaignHandle> handles;
    CampaignScheduler& sched = ensure_scheduler();
    for (const JournalCampaign& rec : CampaignJournal::replay(journal_path)) {
        if (rec.complete) continue;
        // A journal may be shared across designs; only this design's
        // campaigns are recoverable here.
        if (rec.design_hash != compiled_->design_hash()) continue;
        handles.push_back(sched.recover(rec));
    }
    return handles;
}

CampaignHandle Session::submit(std::span<const fault::Fault> faults,
                               StimulusFactory make_stimulus,
                               const CampaignOptions& opts,
                               ShardObserver observer) {
    return ensure_scheduler().submit(faults, std::move(make_stimulus), opts,
                                     std::move(observer));
}

CampaignHandle Session::try_submit(std::span<const fault::Fault> faults,
                                   StimulusFactory make_stimulus,
                                   const CampaignOptions& opts,
                                   ShardObserver observer) {
    return ensure_scheduler().try_submit(faults, std::move(make_stimulus),
                                         opts, std::move(observer));
}

CampaignHandle Session::submit(std::span<const fault::Fault> faults,
                               const StimulusSpec& stimulus,
                               const CampaignOptions& opts,
                               ShardObserver observer) {
    return ensure_scheduler().submit(faults, stimulus, opts,
                                     std::move(observer));
}

CampaignHandle Session::try_submit(std::span<const fault::Fault> faults,
                                   const StimulusSpec& stimulus,
                                   const CampaignOptions& opts,
                                   ShardObserver observer) {
    return ensure_scheduler().try_submit(faults, stimulus, opts,
                                         std::move(observer));
}

CampaignResult Session::run(std::span<const fault::Fault> faults,
                            sim::Stimulus& stim,
                            const CampaignOptions& opts) {
    Stopwatch watch;
    detail::EngineOutcome out =
        detail::run_engine(*compiled_, faults, stim, opts.engine, nullptr);

    // The blocking path is a one-shard campaign: record the same shard-0
    // breakdown a single-shard submit would, so bench rows built on
    // result.stats.shards keep their phase timing. No scheduler is
    // involved, so the queue wait is genuinely zero and est_cost is in
    // static VDG units.
    out.breakdown.shard = 0;
    out.breakdown.faults = static_cast<uint32_t>(faults.size());
    out.breakdown.detected = out.num_detected;
    uint64_t est_cost = 0;
    for (uint64_t c : compiled_->fault_costs(faults)) est_cost += c;
    out.breakdown.est_cost = est_cost;
    out.breakdown.queue_seconds = 0.0;

    CampaignResult result;
    result.detected = std::move(out.detected);
    result.num_detected = out.num_detected;
    result.stats = std::move(out.stats);
    result.stats.shards.push_back(out.breakdown);
    result.num_shards = 1;
    result.num_threads = 1;
    return detail::finish_result(std::move(result),
                                 static_cast<uint32_t>(faults.size()),
                                 watch.seconds());
}

}  // namespace eraser::core
