#include "eraser/campaign.h"

#include <algorithm>
#include <exception>

#include "util/thread_pool.h"
#include "util/timer.h"

namespace eraser::core {

namespace {

/// DriveHandle over the concurrent engine (good-network inputs; fault views
/// follow automatically, modulo pinned input faults).
class ConcurrentHandle final : public sim::DriveHandle {
  public:
    explicit ConcurrentHandle(ConcurrentSim& sim) : sim_(sim) {}
    void set_input(rtl::SignalId sig, uint64_t value) override {
        sim_.poke(sig, value);
    }
    void load_array(rtl::ArrayId arr,
                    std::span<const uint64_t> words) override {
        sim_.load_array(arr, words);
    }

  private:
    ConcurrentSim& sim_;
};

/// Result of one engine run over one fault subset (local fault indexing).
struct EngineOutcome {
    std::vector<bool> detected;
    uint32_t num_detected = 0;
    Instrumentation stats;
    double wall_seconds = 0.0;   // this engine run only
};

/// The campaign loop for one ConcurrentSim over `faults`: reset, stimulus
/// initialization, one clocked cycle per stimulus step with output
/// observation (fault detection + dropping) after each cycle. Early-exits
/// once every fault of this engine is detected.
EngineOutcome run_engine(const rtl::Design& design,
                         std::span<const fault::Fault> faults,
                         sim::Stimulus& stim, const EngineOptions& opts) {
    Stopwatch engine_watch;
    ConcurrentSim sim(design, faults, opts);
    ConcurrentHandle handle(sim);
    stim.bind(design);
    const rtl::SignalId clk = design.signal_id(stim.clock_name());

    sim.reset();
    stim.initialize(handle);
    const uint32_t cycles = stim.num_cycles();
    for (uint32_t c = 0; c < cycles; ++c) {
        stim.apply(c, handle);
        sim.tick(clk);
        sim.observe_outputs();
        if (sim.num_detected() == faults.size()) break;   // all dropped
    }

    EngineOutcome out;
    out.detected = sim.detected();
    out.num_detected = sim.num_detected();
    out.stats = sim.stats();
    out.wall_seconds = engine_watch.seconds();
    return out;
}

CampaignResult finish(CampaignResult result, uint32_t num_faults,
                      double seconds) {
    result.num_faults = num_faults;
    result.coverage_percent =
        num_faults == 0 ? 0.0
                        : 100.0 * static_cast<double>(result.num_detected) /
                              static_cast<double>(num_faults);
    result.seconds = seconds;
    return result;
}

}  // namespace

CampaignResult run_concurrent_campaign(const rtl::Design& design,
                                       std::span<const fault::Fault> faults,
                                       sim::Stimulus& stim,
                                       const CampaignOptions& opts) {
    Stopwatch watch;
    EngineOutcome out = run_engine(design, faults, stim, opts.engine);

    CampaignResult result;
    result.detected = std::move(out.detected);
    result.num_detected = out.num_detected;
    result.stats = out.stats;
    result.num_shards = 1;
    result.num_threads = 1;
    return finish(std::move(result), static_cast<uint32_t>(faults.size()),
                  watch.seconds());
}

CampaignResult run_sharded_campaign(const rtl::Design& design,
                                    std::span<const fault::Fault> faults,
                                    const StimulusFactory& make_stimulus,
                                    const CampaignOptions& opts,
                                    const std::vector<uint64_t>* fault_costs) {
    Stopwatch watch;
    const uint32_t threads = opts.num_threads > 0
                                 ? opts.num_threads
                                 : util::ThreadPool::default_threads();
    const uint32_t want_shards =
        opts.num_shards > 0 ? opts.num_shards : threads;
    const std::vector<Shard> shards = make_shards(
        design, faults, want_shards, opts.shard_policy, fault_costs);

    std::vector<EngineOutcome> outcomes(shards.size());
    std::vector<std::exception_ptr> errors(shards.size());
    auto run_shard = [&](size_t s) {
        try {
            auto stim = make_stimulus();
            outcomes[s] =
                run_engine(design, shards[s].faults, *stim, opts.engine);
        } catch (...) {
            errors[s] = std::current_exception();
        }
    };

    const uint32_t used_threads =
        std::min<uint32_t>(threads, static_cast<uint32_t>(shards.size()));
    if (used_threads <= 1) {
        for (size_t s = 0; s < shards.size(); ++s) run_shard(s);
    } else {
        util::ThreadPool pool(used_threads);
        for (size_t s = 0; s < shards.size(); ++s) {
            pool.submit([&, s] { run_shard(s); });
        }
        pool.wait();
    }
    for (const auto& err : errors) {
        if (err) std::rethrow_exception(err);
    }

    // Deterministic merge: shards in index order, global ids within each
    // shard are ascending, so the bitmap assembly order is fixed.
    CampaignResult result;
    result.detected.assign(faults.size(), false);
    for (size_t s = 0; s < shards.size(); ++s) {
        const Shard& shard = shards[s];
        const EngineOutcome& out = outcomes[s];
        for (size_t i = 0; i < shard.global_ids.size(); ++i) {
            result.detected[shard.global_ids[i]] = out.detected[i];
        }
        result.num_detected += out.num_detected;
        result.stats.merge_from(out.stats);

        ShardBreakdown sb;
        sb.shard = static_cast<uint32_t>(s);
        sb.faults = static_cast<uint32_t>(shard.faults.size());
        sb.detected = out.num_detected;
        sb.est_cost = shard.est_cost;
        sb.wall_seconds = out.wall_seconds;
        sb.behavioral_seconds = out.stats.time_behavioral.total_seconds();
        sb.rtl_seconds = out.stats.time_rtl.total_seconds();
        result.stats.shards.push_back(sb);
    }
    result.num_shards = static_cast<uint32_t>(shards.size());
    result.num_threads = used_threads;
    return finish(std::move(result), static_cast<uint32_t>(faults.size()),
                  watch.seconds());
}

}  // namespace eraser::core
