#include "eraser/campaign.h"

#include "util/timer.h"

namespace eraser::core {

namespace {

/// DriveHandle over the concurrent engine (good-network inputs; fault views
/// follow automatically, modulo pinned input faults).
class ConcurrentHandle final : public sim::DriveHandle {
  public:
    explicit ConcurrentHandle(ConcurrentSim& sim) : sim_(sim) {}
    void set_input(rtl::SignalId sig, uint64_t value) override {
        sim_.poke(sig, value);
    }
    void load_array(rtl::ArrayId arr,
                    std::span<const uint64_t> words) override {
        sim_.load_array(arr, words);
    }

  private:
    ConcurrentSim& sim_;
};

}  // namespace

CampaignResult run_concurrent_campaign(const rtl::Design& design,
                                       std::span<const fault::Fault> faults,
                                       sim::Stimulus& stim,
                                       const CampaignOptions& opts) {
    Stopwatch watch;
    ConcurrentSim sim(design, faults, opts.engine);
    ConcurrentHandle handle(sim);
    stim.bind(design);
    const rtl::SignalId clk = design.signal_id(stim.clock_name());

    sim.reset();
    stim.initialize(handle);
    const uint32_t cycles = stim.num_cycles();
    for (uint32_t c = 0; c < cycles; ++c) {
        stim.apply(c, handle);
        sim.tick(clk);
        sim.observe_outputs();
        if (sim.num_detected() == faults.size()) break;   // all dropped
    }

    CampaignResult result;
    result.detected = sim.detected();
    result.num_faults = static_cast<uint32_t>(faults.size());
    result.num_detected = sim.num_detected();
    result.coverage_percent =
        faults.empty() ? 0.0
                       : 100.0 * static_cast<double>(result.num_detected) /
                             static_cast<double>(faults.size());
    result.stats = sim.stats();
    result.seconds = watch.seconds();
    return result;
}

}  // namespace eraser::core
