// Legacy one-shot entry points, kept as thin wrappers over a temporary
// Session so pre-Session callers (and the compat tests that exercise them)
// keep bit-identical behavior while paying the per-call compilation the
// Session API exists to amortize.
#define ERASER_ALLOW_LEGACY_API   // defining the wrappers is not a use

#include "eraser/campaign.h"

#include "eraser/session.h"
#include "util/timer.h"

namespace eraser::core {

CampaignResult run_concurrent_campaign(const rtl::Design& design,
                                       std::span<const fault::Fault> faults,
                                       sim::Stimulus& stim,
                                       const CampaignOptions& opts) {
    Stopwatch watch;
    auto compiled = CompiledDesign::build(design);
    Session session(compiled, SessionOptions{.num_threads = 1});
    CampaignResult result = session.run(faults, stim, opts);
    result.compile_seconds = compiled->compile_seconds();
    result.seconds = watch.seconds();   // legacy timing includes compilation
    return result;
}

CampaignResult run_sharded_campaign(const rtl::Design& design,
                                    std::span<const fault::Fault> faults,
                                    const StimulusFactory& make_stimulus,
                                    const CampaignOptions& opts,
                                    const std::vector<uint64_t>* /*costs*/) {
    Stopwatch watch;
    auto compiled = CompiledDesign::build(design);
    Session session(compiled, SessionOptions{.num_threads = opts.num_threads});
    CampaignHandle handle = session.submit(faults, make_stimulus, opts);
    CampaignResult result = handle.wait();
    result.compile_seconds = compiled->compile_seconds();
    result.seconds = watch.seconds();   // legacy timing includes compilation
    return result;
}

}  // namespace eraser::core
