// ConcurrentSim: the Eraser fault-simulation engine (paper §IV, Fig. 4).
//
// One good network plus per-fault divergence entries ("bad gates") on
// signals, arrays, and event state. RTL nodes are simulated concurrently
// (steps 2-3); behavioral nodes are activated by RTL-node events (step 4)
// and faulty behavioral executions are skipped when redundancy detection
// proves them equal to the good execution (steps 5-6):
//
//  * RedundancyMode::None      — Eraser--: every candidate fault executes.
//  * RedundancyMode::Explicit  — Eraser-:  input-consistency skip only.
//  * RedundancyMode::Full      — Eraser:   explicit + Algorithm 1 (implicit,
//                                execution-path walk fused with the good
//                                execution over the behavioral CFG).
//
// Fake events (paper §IV-C) are avoided structurally: edge detection — for
// the good network *and* for every fault's view of the watched signals — is
// postponed until the combinational fixpoint of the delta has completed, so
// a bad gate never reacts to a good event that its own network overrides.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include <array>
#include <bit>

#include "eraser/instrumentation.h"
#include "eraser/small_map.h"
#include "fault/divergence.h"
#include "fault/fault.h"
#include "rtl/design.h"
#include "sim/bcvm.h"
#include "sim/bytecode.h"
#include "sim/stimulus.h"

namespace eraser::core {

class CompiledDesign;

enum class RedundancyMode : uint8_t { None, Explicit, Full };

/// Fault batching (bit-parallel fault simulation). Word packs the engine's
/// faults 64 lanes to a group: divergence membership lives in one machine
/// word per (signal, group) with packed value planes
/// (fault::DivergenceBlockStore), candidate collection / the explicit
/// filter / Algorithm 1's visibility checks become word ORs, the commit
/// and NBA paths update lanes in O(1), and surviving faulty executions of
/// a group run through the bytecode VM's superword lane pass in one walk
/// over the instruction stream. Off keeps the scalar sorted-list engine —
/// the differential oracle. Verdicts are bit-identical either way
/// (tests/batch_equiv_test.cpp).
enum class FaultBatching : uint8_t { Off, Word };

struct EngineOptions {
    RedundancyMode mode = RedundancyMode::Full;
    /// Behavioral executor: Bytecode runs bodies/CFG nodes as the flat
    /// instruction streams the CompiledDesign carries (production path);
    /// Tree keeps the recursive interpreter as the differential oracle.
    sim::InterpMode interp = sim::InterpMode::Bytecode;
    /// Fault batching: Word is the production path (default since the
    /// differential suite in tests/batch_equiv_test.cpp pinned it
    /// bit-identical across the whole benchmark suite); Off is the scalar
    /// oracle. The superword lane pass requires the bytecode interpreter —
    /// under InterpMode::Tree a Word engine keeps the block store but runs
    /// faulty executions per lane.
    FaultBatching batching = FaultBatching::Word;
    /// Shadow-execute every candidate to classify ground-truth redundancy
    /// (explicit / implicit / none) and cross-check implicit skips.
    bool audit = false;
    /// Collect phase timings (small overhead; required for Table III).
    bool time_phases = false;
    /// Overlap stimulus generation with engine execution: run_engine records
    /// each cycle's drive calls on a helper thread (sim/stimulus_pipeline.h)
    /// and replays them in call order, so apply() cost hides behind
    /// exec_lanes. Verdict-neutral (the replayed drive sequence is
    /// identical), so it is excluded from engine_fingerprint like
    /// time_phases; engines with fewer than ~64 cycles skip it.
    bool pipeline_stimulus = true;
};

class ConcurrentSim {
  public:
    /// The primary constructor: runs over compile-once artifacts shared
    /// with any number of sibling engines (shards of one campaign, repeated
    /// campaigns of one Session). Performs no compilation — construction is
    /// allocation of mutable state only. The CompiledDesign must outlive
    /// the engine.
    ConcurrentSim(const CompiledDesign& compiled,
                  std::span<const fault::Fault> faults,
                  const EngineOptions& opts);
    /// Convenience for one-shot use: privately builds (and owns) a
    /// CompiledDesign. Every construction recompiles — prefer the
    /// CompiledDesign overload anywhere more than one engine runs.
    ConcurrentSim(const rtl::Design& design,
                  std::span<const fault::Fault> faults,
                  const EngineOptions& opts);
    ~ConcurrentSim();
    ConcurrentSim(const ConcurrentSim&) = delete;
    ConcurrentSim& operator=(const ConcurrentSim&) = delete;

    /// Zeroes all state, runs `initial` blocks, materializes fault pins,
    /// settles.
    void reset();

    void poke(rtl::SignalId sig, uint64_t value);
    [[nodiscard]] Value peek_good(rtl::SignalId sig) const {
        return good_values_[sig];
    }
    /// The fault's view of a signal (entry if divergent, else good).
    [[nodiscard]] Value peek_fault(rtl::SignalId sig,
                                   fault::FaultId f) const;
    void load_array(rtl::ArrayId arr, std::span<const uint64_t> words);

    void settle();
    void tick(rtl::SignalId clk);

    /// Compares fault views against good at all primary outputs and marks
    /// newly-detected faults; detected faults are dropped from simulation.
    void observe_outputs();

    [[nodiscard]] const std::vector<bool>& detected() const {
        return detected_;
    }
    [[nodiscard]] uint32_t num_detected() const { return num_detected_; }
    [[nodiscard]] Instrumentation& stats() { return stats_; }
    [[nodiscard]] const rtl::Design& design() const { return design_; }

  private:
    /// Ownership-taking step of the rtl::Design convenience constructor:
    /// keeps the privately-built artifact alive for the engine's lifetime.
    ConcurrentSim(std::shared_ptr<const CompiledDesign> owned,
                  std::span<const fault::Fault> faults,
                  const EngineOptions& opts);

    class GoodCtx;
    class FaultCtx;
    class BatchLaneCtx;
    struct Activation;
    struct FaultRun;
    struct PreView;
    struct NbaScratch;

    // --- lane-pass activation records (batched mode) -----------------------
    /// A lane-vector write buffered by the superword pass: base value,
    /// diverged-lane word, and the diverged lanes' raw bits. Lane l's value
    /// is plane[l] when its dmask bit is set, base otherwise (dmask is an
    /// over-approximation: a flagged lane may hold base's bits).
    struct LaneStoredCell {
        Value base;
        uint64_t dmask = 0;
        std::array<uint64_t, 64> plane;

        void store(const sim::LaneCell& c, const uint64_t* src) {
            base = c.base;
            dmask = c.dmask;
            uint64_t rest = dmask;
            while (rest != 0) {
                const uint32_t l =
                    static_cast<uint32_t>(std::countr_zero(rest));
                rest &= rest - 1;
                plane[l] = src[l];
            }
        }
        void load(uint64_t lanes, sim::LaneCell& c, uint64_t* dst) const {
            c.base = base;
            c.dmask = dmask & lanes;
            uint64_t rest = c.dmask;
            while (rest != 0) {
                const uint32_t l =
                    static_cast<uint32_t>(std::countr_zero(rest));
                rest &= rest - 1;
                dst[l] = plane[l];
            }
        }
        [[nodiscard]] uint64_t lane_bits(uint32_t l) const {
            return (dmask >> l) & 1 ? plane[l] : base.bits();
        }
        [[nodiscard]] Value lane(uint32_t l) const {
            return Value(lane_bits(l), base.width());
        }
    };

    /// One lane pass's buffered writes (the lane analogue of Activation):
    /// uniform control flow means every surviving lane wrote exactly the
    /// targets recorded here. Blocking maps keep first-write order; NBA
    /// lists keep program order (duplicates resolve last-wins downstream,
    /// exactly like the scalar per-fault records).
    struct LaneAct {
        detail::SmallMap<rtl::SignalId, uint32_t> sig_idx;
        std::vector<std::pair<rtl::SignalId, LaneStoredCell>> sigs;
        detail::SmallMap<detail::ArrKey, uint32_t> arr_idx;
        std::vector<std::pair<detail::ArrKey, LaneStoredCell>> arrs;
        std::vector<std::pair<rtl::SignalId, LaneStoredCell>> nba;
        std::vector<std::pair<detail::ArrKey, LaneStoredCell>> arr_nba;

        void clear() {
            sig_idx.clear();
            sigs.clear();
            arr_idx.clear();
            arrs.clear();
            nba.clear();
            arr_nba.clear();
        }
        [[nodiscard]] const LaneStoredCell* find_sig(
            rtl::SignalId sig) const {
            const uint32_t* i = sig_idx.find(sig);
            return i != nullptr ? &sigs[*i].second : nullptr;
        }
        [[nodiscard]] const LaneStoredCell* find_arr(
            const detail::ArrKey& key) const {
            const uint32_t* i = arr_idx.find(key);
            return i != nullptr ? &arrs[*i].second : nullptr;
        }
    };

    /// One group's lane-pass execution, pooled across activations.
    struct LaneRun {
        uint32_t group = 0;
        uint64_t survivors = 0;
        LaneAct act;
    };

    /// Transition record of one edge-watched signal, sampled after the
    /// combinational fixpoint (postponed evaluation, the fake-event fix).
    /// Built per store representation; consumed by shared edge logic.
    struct EdgeRecord {
        rtl::SignalId sig;
        uint64_t prev_good, cur_good;
        std::vector<std::tuple<fault::FaultId, uint64_t, uint64_t>>
            fault_prev_cur;
    };

    // --- value plumbing ----------------------------------------------------
    // The one-liners here are defined in-class: they are the innermost calls
    // of the concurrent hot loop (millions of calls per campaign) and must
    // inline into eval_rtl_node / process_behavior.
    void commit_good_signal(rtl::SignalId sig, Value v);
    void commit_good_array(rtl::ArrayId arr, uint64_t idx, uint64_t val);
    /// Sets/clears fault divergence given the fault's absolute value
    /// (applies the fault pin first); schedules fanout on change.
    void reconcile(fault::FaultId f, rtl::SignalId sig, Value fault_val) {
        fault_val = apply_pin(f, sig, fault_val);
        bool changed;
        if (batched_) {
            if (fault_val != good_values_[sig]) {
                changed = bsig_div_[sig].set(fault::group_of(f),
                                             fault::lane_of(f),
                                             fault_val.bits());
            } else {
                changed = bsig_div_[sig].erase(fault::group_of(f),
                                               fault::lane_of(f));
            }
        } else if (fault_val != good_values_[sig]) {
            changed = sig_div_[sig].set(f, fault_val);
        } else {
            changed = sig_div_[sig].erase(f);
        }
        if (changed) schedule_signal_fanout(sig);
    }
    void reconcile_array(fault::FaultId f, rtl::ArrayId arr, uint64_t idx,
                         uint64_t fault_val);
    [[nodiscard]] Value fault_view(rtl::SignalId sig,
                                   fault::FaultId f) const {
        if (batched_) {
            if (const uint64_t* v = bsig_div_[sig].find(fault::group_of(f),
                                                        fault::lane_of(f))) {
                return Value(*v, good_values_[sig].width());
            }
            return good_values_[sig];
        }
        if (const Value* v = sig_div_[sig].find(f)) return *v;
        return good_values_[sig];
    }
    /// True when the fault currently diverges at the signal (store-agnostic).
    [[nodiscard]] bool contains_div(rtl::SignalId sig,
                                    fault::FaultId f) const {
        return batched_ ? bsig_div_[sig].contains(fault::group_of(f),
                                                  fault::lane_of(f))
                        : sig_div_[sig].contains(f);
    }
    /// True when no fault diverges at the signal (store-agnostic).
    [[nodiscard]] bool div_empty(rtl::SignalId sig) const {
        return batched_ ? bsig_div_[sig].empty() : sig_div_[sig].empty();
    }
    [[nodiscard]] uint64_t fault_array_view(rtl::ArrayId arr, uint64_t idx,
                                            fault::FaultId f) const;
    [[nodiscard]] Value apply_pin(fault::FaultId f, rtl::SignalId sig,
                                  Value v) const {
        const fault::Fault& flt = faults_[f];
        if (flt.sig != sig) return v;
        return Value((v.bits() & ~flt.mask()) | flt.bits(), v.width());
    }

    // --- scheduling --------------------------------------------------------
    void schedule_element(uint32_t elem) {
        if (in_queue_[elem]) return;
        in_queue_[elem] = true;
        const uint32_t rank =
            elem < design_.nodes.size()
                ? design_.nodes[elem].rank
                : design_.behaviors[elem - design_.nodes.size()].rank;
        rank_buckets_[rank].push_back(elem);
        if (rank < lowest_dirty_rank_) lowest_dirty_rank_ = rank;
    }
    void schedule_signal_fanout(rtl::SignalId sig) {
        const rtl::Signal& s = design_.signals[sig];
        for (rtl::NodeId n : s.fanout_nodes) schedule_element(n);
        for (rtl::BehavId b : s.fanout_comb) {
            schedule_element(static_cast<uint32_t>(design_.nodes.size()) + b);
        }
    }
    void comb_propagate();
    bool run_edge_round();
    bool apply_nba();
    void materialize_pins();
    void prune_detected();

    // --- batched (FaultBatching::Word) helpers -----------------------------
    // Group-level twins of the scalar hot-path pieces; definitions live in
    // batch_exec.cpp. Shared control flow (process_behavior, settle, edge
    // rounds, commit ordering) branches into these at every divergence-store
    // touchpoint, so both representations run the identical algorithm.
    /// OR of the divergence masks of group `g` across `sigs` (candidate
    /// collection / visibility over masks).
    [[nodiscard]] uint64_t group_sig_mask(std::span<const rtl::SignalId> sigs,
                                          uint32_t g) const;
    [[nodiscard]] uint64_t group_arr_mask(std::span<const rtl::ArrayId> arrs,
                                          uint32_t g) const;
    /// Appends ascending fault ids of set lanes in `mask` of group `g`.
    static void expand_mask(uint64_t mask, uint32_t g,
                            std::vector<fault::FaultId>& out);
    void beval_rtl_node(rtl::NodeId n);
    /// Edge-record collection twins (scalar list walk vs mask walk); the
    /// shared half of run_edge_round consumes the records either way.
    void collect_edge_records(std::vector<EdgeRecord>& records);
    void bcollect_edge_records(std::vector<EdgeRecord>& records);

    // --- element evaluation -------------------------------------------------
    void eval_rtl_node(rtl::NodeId n);
    void eval_comb_behavior(rtl::BehavId b);
    /// Processes one behavioral activation: good execution fused with the
    /// redundancy walk, faulty executions, and write reconciliation.
    /// `good_active` is false for fault-only activations of sequential
    /// blocks; `forced_inactive`/`forced_active` list faults whose event
    /// divergence makes their activity differ from good.
    void process_behavior(rtl::BehavId b, bool good_active,
                          const std::vector<fault::FaultId>& solo_active,
                          const std::vector<fault::FaultId>& missed);

    /// Collects candidate faults at a behavioral node (entries on reads,
    /// writes, and read/written arrays), ascending, detected skipped.
    void collect_candidates(const rtl::BehavNode& behav,
                            std::vector<fault::FaultId>& out) const;

    /// Runs behavior `b`'s whole body through the selected interpreter.
    void exec_body(rtl::BehavId b, sim::EvalContext& ctx);

    void mark_detected(fault::FaultId f);

    /// Set only by the rtl::Design convenience constructor, which builds a
    /// private artifact; the CompiledDesign constructor leaves it null.
    std::shared_ptr<const CompiledDesign> owned_compiled_;
    const CompiledDesign& compiled_;
    const rtl::Design& design_;
    std::vector<fault::Fault> faults_;
    EngineOptions opts_;

    // Good network state.
    std::vector<Value> good_values_;
    std::vector<std::vector<uint64_t>> good_arrays_;

    // Divergence state. Scalar mode uses the sorted lists; batched
    // (FaultBatching::Word) mode uses the mask + value-plane block stores.
    // Exactly one of the two is populated, selected by batched_.
    std::vector<fault::DivergenceList> sig_div_;
    std::vector<fault::DivergenceBlockStore> bsig_div_;
    /// arr_div_[arr][fault] -> sparse element overlay (both modes).
    std::vector<std::unordered_map<fault::FaultId,
                                   std::unordered_map<uint64_t, uint64_t>>>
        arr_div_;
    /// Batched mode: per-array, per-group membership word (lane l set iff
    /// the fault's overlay on the array is nonempty) — candidate collection
    /// over arrays without walking the hash maps.
    std::vector<std::vector<uint64_t>> arr_div_mask_;
    /// Faults pinned on each signal (their stuck bits always override).
    std::vector<std::vector<fault::FaultId>> pins_;
    /// Batched mode: pins_ as per-group masks (empty for unpinned signals).
    std::vector<std::vector<uint64_t>> pin_mask_;

    // Batched mode: lane addressing. groups_ = ceil(|faults| / 64);
    // detected lanes as per-group masks (kept in sync with detected_).
    bool batched_ = false;
    bool lane_exec_ = false;   // superword VM pass enabled (needs Bytecode)
    uint32_t groups_ = 0;
    std::vector<uint64_t> detected_mask_;

    // Edge state (previous sampled values).
    std::vector<uint64_t> edge_prev_good_;
    std::vector<fault::DivergenceList> edge_prev_div_;
    std::vector<fault::DivergenceBlockStore> bedge_prev_div_;

    // CFGs, VDGs, and all compiled programs live in compiled_ (shared,
    // immutable). One VM per engine — shards never share a VM.
    sim::BcVm vm_;

    // Scheduling (elements: RTL nodes then comb behaviors).
    std::vector<std::vector<uint32_t>> rank_buckets_;
    std::vector<bool> in_queue_;
    uint32_t lowest_dirty_rank_ = 0;

    // NBA buffers.
    std::vector<std::pair<rtl::SignalId, Value>> nba_good_sigs_;
    std::vector<std::tuple<rtl::ArrayId, uint64_t, uint64_t>> nba_good_arrs_;
    std::vector<std::tuple<fault::FaultId, rtl::SignalId, Value>>
        nba_fault_sigs_;
    std::vector<std::tuple<fault::FaultId, rtl::ArrayId, uint64_t, uint64_t>>
        nba_fault_arrs_;

    std::vector<bool> detected_;
    uint32_t num_detected_ = 0;
    uint32_t pruned_detected_ = 0;   // last count swept out of the lists

    // Reused scratch for the per-activation hot path (process_behavior,
    // collect_candidates, eval_rtl_node, comb_propagate are non-reentrant):
    // cleared on entry, capacity persists, so steady-state activations
    // allocate nothing.
    std::vector<fault::FaultId> scr_candidates_;
    std::vector<fault::FaultId> scr_normal_;
    std::vector<fault::FaultId> scr_explicit_skip_;
    std::vector<fault::FaultId> scr_implicit_alive_;
    std::vector<fault::FaultId> scr_to_execute_;
    std::vector<rtl::SignalId> scr_div_reads_;
    std::vector<rtl::ArrayId> scr_div_arrays_;
    std::vector<rtl::SignalId> scr_node_div_reads_;
    std::vector<rtl::ArrayId> scr_node_div_arrays_;
    std::vector<Value> scr_vals_;              // RTL-node operand buffer
    std::vector<fault::FaultId> scr_rtl_candidates_;
    std::vector<uint32_t> scr_cursors_;        // per-input divergence cursor
    std::vector<fault::DivergenceList::Entry> scr_entries_;
    std::vector<fault::DivergenceList::Entry> scr_nba_updates_;
    std::vector<uint32_t> scr_batch_;          // comb_propagate drain buffer
    // Pools with live prefix semantics: entries keep their inner capacity.
    std::vector<FaultRun> scr_runs_;
    size_t scr_runs_used_ = 0;
    std::vector<PreView> scr_pre_views_;
    size_t scr_pre_views_used_ = 0;
    // Per-fault resolution state (indexed by FaultId; touched entries reset
    // at the end of each activation).
    std::vector<const Activation*> scr_fact_of_;
    std::vector<uint32_t> scr_pre_idx_;
    // Per-fault visibility marks (bit 0: divergent signal read, bit 1:
    // divergent array read), built by walking the divergence lists once
    // instead of per-(fault, signal) binary searches; scr_marked_ lists the
    // touched faults for O(touched) clearing.
    std::vector<uint8_t> scr_mark_;
    std::vector<fault::FaultId> scr_marked_;
    // Batched-mode scratch: per-group mask buffers (visibility bit 0 twin =
    // scr_vis_sig_, bit 1 twin = scr_vis_arr_; candidate masks; the lane
    // pass's per-group execute masks).
    std::vector<uint64_t> scr_vis_sig_;
    std::vector<uint64_t> scr_vis_arr_;
    std::vector<uint64_t> scr_cand_mask_;
    std::vector<uint64_t> scr_exec_mask_;
    // Lane-run pool (live prefix [0, scr_lane_runs_used_)); scr_lane_idx_
    // maps a surviving fault to its run for the commit phase (UINT32_MAX
    // when the fault ran scalar or not at all; reset per activation).
    std::vector<std::unique_ptr<LaneRun>> scr_lane_runs_;
    size_t scr_lane_runs_used_ = 0;
    std::vector<uint32_t> scr_lane_idx_;
    // Faults with NBA records already pending in the current batch (i.e.
    // since the last apply_nba). A redundant-skip record may only be
    // dropped when the fault has no divergence/pin on the target AND no
    // earlier pending record that the skip record would have overridden.
    std::vector<uint8_t> nba_pending_;
    std::vector<fault::FaultId> nba_pending_list_;
    std::unique_ptr<Activation> scr_good_act_;
    std::unique_ptr<Activation> scr_shadow_act_;
    std::unique_ptr<NbaScratch> scr_nba_;

    Instrumentation stats_;
};

}  // namespace eraser::core
