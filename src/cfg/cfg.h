// Control-flow graph of a behavioral body (paper §IV-A "Preprocess").
//
// The CFG partitions a behavioral node's statements into maximal straight-
// line Segments connected through Decision nodes (if/case branch points).
// It is *executable*: walking it from the entry, executing segment
// assignments and evaluating decisions, is exactly equivalent to
// interpreting the statement tree (property-tested). The Eraser engine runs
// behavioral good simulation over the CFG so that Algorithm 1's redundancy
// walk can be fused with it.
#pragma once

#include <cstdint>
#include <vector>

#include "rtl/design.h"
#include "sim/bcvm.h"
#include "sim/context.h"

namespace eraser::cfg {

inline constexpr uint32_t kNoNode = UINT32_MAX;

struct CfgNode {
    enum class Kind : uint8_t { Segment, Decision, Exit };
    Kind kind = Kind::Segment;

    // Segment: assignments in program order, single successor.
    std::vector<const rtl::Stmt*> assigns;
    uint32_t next = kNoNode;

    // Decision: the branching statement (Stmt::If or Stmt::Case).
    //  * If:   succs[0] = then, succs[1] = else/join
    //  * Case: succs[i] = arm i (or join when the arm body is empty),
    //          succs[arms.size()] = join (no label matched, no default)
    const rtl::Stmt* branch = nullptr;
    std::vector<uint32_t> succs;

    // VDG annotations: signals/arrays read by this node (segment RHS +
    // partial-LHS + index reads, or decision condition/subject reads).
    std::vector<rtl::SignalId> reads;
    std::vector<rtl::ArrayId> array_reads;
    /// Signals assigned by this segment (blocking or nonblocking).
    std::vector<rtl::SignalId> writes;
    std::vector<rtl::ArrayId> array_writes;
};

class Cfg {
  public:
    /// Builds the CFG of a behavioral body. The design provides signal
    /// metadata for read-set computation. The statement tree must outlive
    /// the CFG (nodes keep raw pointers into it).
    static Cfg build(const rtl::Stmt& body, const rtl::Design& design);

    std::vector<CfgNode> nodes;
    uint32_t entry = kNoNode;
    uint32_t exit = kNoNode;

    [[nodiscard]] size_t num_decisions() const { return num_decisions_; }
    [[nodiscard]] size_t num_segments() const { return num_segments_; }

    /// Evaluates a Decision node's branch under `ctx` and returns the index
    /// into `succs` that execution takes.
    [[nodiscard]] static size_t evaluate_decision(const CfgNode& node,
                                                  sim::EvalContext& ctx);

    /// Executes the whole CFG under `ctx`; behaviour is identical to
    /// sim::exec_stmt on the original body.
    void execute(const rtl::Design& design, sim::EvalContext& ctx) const;

  private:
    size_t num_decisions_ = 0;
    size_t num_segments_ = 0;
};

/// Bytecode-compiled view of a Cfg: each Segment's assignment run and each
/// Decision's branch compiled to flat programs (sim/bytecode.h), indexed in
/// parallel with cfg.nodes. The Eraser engine's fused redundancy walk
/// (Algorithm 1) executes segments and evaluates decisions through these
/// instead of tree-walking; results are bit-identical. The Cfg (and the
/// statement tree beneath it) must outlive the compiled view.
struct CompiledCfg {
    /// `writes` is the WHOLE body's blocking-write context (see
    /// compile_assigns) — segments of one activation share the overlay.
    static CompiledCfg build(const Cfg& cfg, const rtl::Design& design,
                             const sim::BcWriteSets& writes = {});

    std::vector<sim::BcProgram> segments;    // parallel to cfg.nodes
    std::vector<sim::BcDecision> decisions;  // parallel to cfg.nodes

    /// Executes the whole CFG through `vm`; equivalent to Cfg::execute.
    void execute(const Cfg& cfg, sim::BcVm& vm, sim::EvalContext& ctx) const;
};

}  // namespace eraser::cfg
