#include "cfg/cfg.h"

#include <algorithm>
#include <cassert>

#include "sim/interp.h"
#include "util/diagnostics.h"

namespace eraser::cfg {

using rtl::Stmt;

namespace {

void push_unique_id(std::vector<uint32_t>& vec, uint32_t id) {
    if (std::find(vec.begin(), vec.end(), id) == vec.end()) vec.push_back(id);
}

/// Recursive CFG constructor. `next` is the continuation node; returns the
/// entry node of the built region.
class Builder {
  public:
    explicit Builder(std::vector<CfgNode>& nodes) : nodes_(nodes) {}

    uint32_t build(const Stmt* s, uint32_t next) {
        if (s == nullptr) return next;
        switch (s->kind) {
            case Stmt::Kind::Block: {
                uint32_t cur = next;
                for (auto it = s->stmts.rbegin(); it != s->stmts.rend();
                     ++it) {
                    cur = build(it->get(), cur);
                }
                return cur;
            }
            case Stmt::Kind::Assign: {
                const uint32_t id = new_node(CfgNode::Kind::Segment);
                nodes_[id].assigns.push_back(s);
                nodes_[id].next = next;
                return id;
            }
            case Stmt::Kind::If: {
                const uint32_t then_e = build(s->then_stmt.get(), next);
                const uint32_t else_e = build(s->else_stmt.get(), next);
                const uint32_t id = new_node(CfgNode::Kind::Decision);
                nodes_[id].branch = s;
                nodes_[id].succs = {then_e, else_e};
                return id;
            }
            case Stmt::Kind::Case: {
                // Build arm regions first: build() grows nodes_ and would
                // invalidate any reference held across the calls.
                std::vector<uint32_t> succs;
                succs.reserve(s->arms.size() + 1);
                for (const auto& arm : s->arms) {
                    succs.push_back(build(arm.body.get(), next));
                }
                succs.push_back(next);   // no-match fallthrough
                const uint32_t id = new_node(CfgNode::Kind::Decision);
                nodes_[id].branch = s;
                nodes_[id].succs = std::move(succs);
                return id;
            }
        }
        return next;
    }

  private:
    uint32_t new_node(CfgNode::Kind kind) {
        const uint32_t id = static_cast<uint32_t>(nodes_.size());
        nodes_.emplace_back();
        nodes_.back().kind = kind;
        return id;
    }
    std::vector<CfgNode>& nodes_;
};

void compute_node_sets(CfgNode& node) {
    if (node.kind == CfgNode::Kind::Decision) {
        const Stmt& s = *node.branch;
        const rtl::Expr& e =
            s.kind == Stmt::Kind::If ? *s.cond : *s.subject;
        rtl::collect_expr_reads(e, node.reads, &node.array_reads);
        return;
    }
    for (const Stmt* a : node.assigns) {
        rtl::collect_expr_reads(*a->rhs, node.reads, &node.array_reads);
        if (a->lhs.index) {
            rtl::collect_expr_reads(*a->lhs.index, node.reads,
                                    &node.array_reads);
        }
        if (a->lhs.is_array()) {
            push_unique_id(node.array_writes, a->lhs.arr);
        } else {
            if (a->lhs.partial) push_unique_id(node.reads, a->lhs.sig);
            push_unique_id(node.writes, a->lhs.sig);
        }
    }
}

}  // namespace

Cfg Cfg::build(const Stmt& body, const rtl::Design& design) {
    (void)design;
    Cfg cfg;
    cfg.nodes.emplace_back();
    cfg.nodes.back().kind = CfgNode::Kind::Exit;
    cfg.exit = 0;

    Builder builder(cfg.nodes);
    cfg.entry = builder.build(&body, cfg.exit);

    // Merge straight-line segment chains: a segment whose unique successor
    // is a segment with in-degree 1 absorbs it. In-degrees first.
    std::vector<uint32_t> indeg(cfg.nodes.size(), 0);
    for (const CfgNode& n : cfg.nodes) {
        if (n.kind == CfgNode::Kind::Segment) {
            if (n.next != kNoNode) indeg[n.next]++;
        } else if (n.kind == CfgNode::Kind::Decision) {
            for (uint32_t s : n.succs) indeg[s]++;
        }
    }
    indeg[cfg.entry]++;
    for (uint32_t i = 0; i < cfg.nodes.size(); ++i) {
        CfgNode& n = cfg.nodes[i];
        if (n.kind != CfgNode::Kind::Segment) continue;
        while (n.next != kNoNode &&
               cfg.nodes[n.next].kind == CfgNode::Kind::Segment &&
               indeg[n.next] == 1) {
            CfgNode& victim = cfg.nodes[n.next];
            n.assigns.insert(n.assigns.end(), victim.assigns.begin(),
                             victim.assigns.end());
            victim.assigns.clear();
            victim.kind = CfgNode::Kind::Exit;   // tombstone, unreachable
            n.next = victim.next;
        }
    }

    for (CfgNode& n : cfg.nodes) compute_node_sets(n);
    for (const CfgNode& n : cfg.nodes) {
        if (n.kind == CfgNode::Kind::Decision) cfg.num_decisions_++;
        if (n.kind == CfgNode::Kind::Segment && !n.assigns.empty()) {
            cfg.num_segments_++;
        }
    }
    return cfg;
}

size_t Cfg::evaluate_decision(const CfgNode& node, sim::EvalContext& ctx) {
    assert(node.kind == CfgNode::Kind::Decision);
    const Stmt& s = *node.branch;
    if (s.kind == Stmt::Kind::If) {
        return sim::eval_expr(*s.cond, ctx).is_true() ? 0 : 1;
    }
    const Value subj = sim::eval_expr(*s.subject, ctx);
    return sim::pick_case_arm(s.arms, subj);
}

CompiledCfg CompiledCfg::build(const Cfg& cfg, const rtl::Design& design,
                               const sim::BcWriteSets& writes) {
    CompiledCfg compiled;
    compiled.segments.resize(cfg.nodes.size());
    compiled.decisions.resize(cfg.nodes.size());
    for (size_t i = 0; i < cfg.nodes.size(); ++i) {
        const CfgNode& n = cfg.nodes[i];
        if (n.kind == CfgNode::Kind::Segment) {
            compiled.segments[i] =
                sim::compile_assigns(n.assigns, design, writes);
        } else if (n.kind == CfgNode::Kind::Decision) {
            compiled.decisions[i] = sim::compile_decision(*n.branch);
        }
    }
    return compiled;
}

void CompiledCfg::execute(const Cfg& cfg, sim::BcVm& vm,
                          sim::EvalContext& ctx) const {
    uint32_t cur = cfg.entry;
    size_t guard = 0;
    while (cur != cfg.exit) {
        const CfgNode& n = cfg.nodes[cur];
        if (n.kind == CfgNode::Kind::Segment) {
            vm.exec(segments[cur], ctx);
            cur = n.next;
        } else {
            cur = n.succs[vm.select(decisions[cur], ctx)];
        }
        if (++guard > cfg.nodes.size() + 1) {
            throw SimError("CFG execution did not terminate");
        }
    }
}

void Cfg::execute(const rtl::Design& design, sim::EvalContext& ctx) const {
    uint32_t cur = entry;
    size_t guard = 0;
    while (cur != exit) {
        const CfgNode& n = nodes[cur];
        if (n.kind == CfgNode::Kind::Segment) {
            for (const Stmt* a : n.assigns) sim::exec_assign(*a, design, ctx);
            cur = n.next;
        } else {
            cur = n.succs[evaluate_decision(n, ctx)];
        }
        if (++guard > nodes.size() + 1) {
            throw SimError("CFG execution did not terminate");
        }
    }
}

}  // namespace eraser::cfg
