// Visibility Dependency Graph (paper §IV-A, Fig. 5c) and Algorithm 1.
//
// The VDG mirrors the CFG: *path decision nodes* carry the branch Evaluate
// function, *path dependency nodes* carry the input signals a straight-line
// segment reads. Segments that read nothing are removed (the paper's
// "simplify the visibility dependency graph by removing empty nodes").
//
// Algorithm 1 (implicit redundancy detection) walks the VDG along the good
// execution path: at each decision node it evaluates the branch under good
// and fault values and fails on divergence; at each dependency node it fails
// if any read signal is visible (fault value differs from good) for the
// fault under test; reaching the exit proves the faulty execution redundant.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "cfg/cfg.h"

namespace eraser::cfg {

struct VdgNode {
    bool is_decision = false;
    uint32_t cfg_id = kNoNode;           // corresponding CFG node
    std::vector<rtl::SignalId> reads;    // dependency read-set / cond reads
    std::vector<rtl::ArrayId> array_reads;
    // Successors in VDG ids (empty segments already skipped):
    uint32_t next = kNoNode;             // dependency node
    std::vector<uint32_t> succs;         // decision node
};

class Vdg {
  public:
    /// Builds the VDG for a CFG; the CFG must outlive the VDG.
    static Vdg build(const Cfg& cfg);

    std::vector<VdgNode> nodes;
    uint32_t entry = kNoNode;   // may equal kExitMark for empty bodies
    const Cfg* cfg = nullptr;

    /// Sentinel meaning "walked off the end" (the CFG exit).
    static constexpr uint32_t kExitMark = UINT32_MAX - 1;

    [[nodiscard]] size_t num_decision_nodes() const;
    [[nodiscard]] size_t num_dependency_nodes() const;
};

/// Algorithm 1: returns true iff the faulty behavioral execution is
/// provably redundant (same execution path, no visible signal on any
/// dependency node of that path).
///
///  * `good` / `fault` evaluate branch conditions under the good and faulty
///    networks respectively (paper lines 6-7);
///  * `visible(sig)` is the IsVisible(signal, fault_id) oracle (line 14);
///  * `array_visible(arr)` conservatively reports whether the fault has any
///    divergent element in a memory read by the path (arrays extend the
///    paper's scalar treatment; any divergence fails the check).
[[nodiscard]] bool implicit_redundant(
    const Vdg& vdg, sim::EvalContext& good, sim::EvalContext& fault,
    const std::function<bool(rtl::SignalId)>& visible,
    const std::function<bool(rtl::ArrayId)>& array_visible);

}  // namespace eraser::cfg
