#include "cfg/vdg.h"

#include <cassert>

#include "util/diagnostics.h"

namespace eraser::cfg {

namespace {

/// True when the node contributes nothing to the walk (an assignment
/// segment that reads no signal and no array, e.g. `q <= 0`).
bool removable(const CfgNode& n) {
    return n.kind == CfgNode::Kind::Segment && n.reads.empty() &&
           n.array_reads.empty();
}

}  // namespace

Vdg Vdg::build(const Cfg& cfg) {
    Vdg vdg;
    vdg.cfg = &cfg;

    // First pass: assign VDG ids to every surviving CFG node.
    std::vector<uint32_t> vdg_id(cfg.nodes.size(), kNoNode);
    for (uint32_t i = 0; i < cfg.nodes.size(); ++i) {
        const CfgNode& n = cfg.nodes[i];
        if (n.kind == CfgNode::Kind::Exit || removable(n)) continue;
        vdg_id[i] = static_cast<uint32_t>(vdg.nodes.size());
        VdgNode v;
        v.is_decision = n.kind == CfgNode::Kind::Decision;
        v.cfg_id = i;
        v.reads = n.reads;
        v.array_reads = n.array_reads;
        vdg.nodes.push_back(std::move(v));
    }

    // Resolve a CFG node id to its VDG target, skipping removed segments.
    auto resolve = [&](uint32_t cfg_node) -> uint32_t {
        size_t guard = 0;
        while (cfg_node != kNoNode) {
            const CfgNode& n = cfg.nodes[cfg_node];
            if (n.kind == CfgNode::Kind::Exit) return kExitMark;
            if (!removable(n)) return vdg_id[cfg_node];
            cfg_node = n.next;
            if (++guard > cfg.nodes.size()) {
                throw SimError("VDG resolve loop");
            }
        }
        return kExitMark;
    };

    for (VdgNode& v : vdg.nodes) {
        const CfgNode& n = cfg.nodes[v.cfg_id];
        if (v.is_decision) {
            v.succs.reserve(n.succs.size());
            for (uint32_t s : n.succs) v.succs.push_back(resolve(s));
        } else {
            v.next = resolve(n.next);
        }
    }
    vdg.entry = resolve(cfg.entry);
    return vdg;
}

size_t Vdg::num_decision_nodes() const {
    size_t n = 0;
    for (const auto& v : nodes) n += v.is_decision ? 1 : 0;
    return n;
}

size_t Vdg::num_dependency_nodes() const {
    return nodes.size() - num_decision_nodes();
}

bool implicit_redundant(
    const Vdg& vdg, sim::EvalContext& good, sim::EvalContext& fault,
    const std::function<bool(rtl::SignalId)>& visible,
    const std::function<bool(rtl::ArrayId)>& array_visible) {
    uint32_t cur = vdg.entry;
    size_t guard = 0;
    while (cur != Vdg::kExitMark) {
        const VdgNode& v = vdg.nodes[cur];
        if (v.is_decision) {
            const CfgNode& cfg_node = vdg.cfg->nodes[v.cfg_id];
            const size_t good_next = Cfg::evaluate_decision(cfg_node, good);
            const size_t fault_next = Cfg::evaluate_decision(cfg_node, fault);
            if (good_next != fault_next) return false;   // paper lines 8-10
            cur = v.succs[good_next];
        } else {
            for (rtl::SignalId sig : v.reads) {
                if (visible(sig)) return false;          // paper lines 13-17
            }
            for (rtl::ArrayId arr : v.array_reads) {
                if (array_visible(arr)) return false;
            }
            cur = v.next;
        }
        if (++guard > vdg.nodes.size() + 1) {
            throw SimError("VDG walk did not terminate");
        }
    }
    return true;   // paper line 21
}

}  // namespace eraser::cfg
