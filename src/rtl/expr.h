// Elaborated behavioral expressions and statements — the bodies of `always`
// and `initial` blocks after elaboration (identifiers resolved to SignalIds,
// parameters folded, widths fixed).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "rtl/ops.h"
#include "rtl/value.h"

namespace eraser::rtl {

using SignalId = uint32_t;
using ArrayId = uint32_t;
inline constexpr uint32_t kInvalidId = UINT32_MAX;

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

/// An elaborated expression tree node. `width` is the result width.
/// Kinds:
///  * Const     — literal in `cval`
///  * SignalRef — reads `sig`
///  * ArrayRead — reads `arr[args[0]]`
///  * OpApply   — applies `op` to `args`; `imm` is the Slice lo-offset
struct Expr {
    enum class Kind : uint8_t { Const, SignalRef, ArrayRead, OpApply };

    Kind kind = Kind::Const;
    unsigned width = 1;
    Value cval;                 // Kind::Const
    SignalId sig = kInvalidId;  // Kind::SignalRef
    ArrayId arr = kInvalidId;   // Kind::ArrayRead
    Op op = Op::Copy;           // Kind::OpApply
    unsigned imm = 0;           // Slice lo-offset
    std::vector<ExprPtr> args;

    static ExprPtr make_const(Value v) {
        auto e = std::make_unique<Expr>();
        e->kind = Kind::Const;
        e->width = v.width();
        e->cval = v;
        return e;
    }
    static ExprPtr make_signal(SignalId s, unsigned width) {
        auto e = std::make_unique<Expr>();
        e->kind = Kind::SignalRef;
        e->sig = s;
        e->width = width;
        return e;
    }
    static ExprPtr make_array_read(ArrayId a, ExprPtr index, unsigned width) {
        auto e = std::make_unique<Expr>();
        e->kind = Kind::ArrayRead;
        e->arr = a;
        e->width = width;
        e->args.push_back(std::move(index));
        return e;
    }
    static ExprPtr make_op(Op op, std::vector<ExprPtr> operands,
                           unsigned width, unsigned imm = 0) {
        auto e = std::make_unique<Expr>();
        e->kind = Kind::OpApply;
        e->op = op;
        e->width = width;
        e->imm = imm;
        e->args = std::move(operands);
        return e;
    }

    /// Deep copy (used when one parsed module is elaborated into several
    /// instances).
    [[nodiscard]] ExprPtr clone() const {
        auto e = std::make_unique<Expr>();
        e->kind = kind;
        e->width = width;
        e->cval = cval;
        e->sig = sig;
        e->arr = arr;
        e->op = op;
        e->imm = imm;
        e->args.reserve(args.size());
        for (const auto& a : args) e->args.push_back(a->clone());
        return e;
    }
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/// Left-hand side of a procedural assignment.
///  * whole signal:        sig, lo=0, width=signal width, index==nullptr
///  * constant part select: sig, lo, width
///  * dynamic bit select:   sig, index expr (1-bit write)
///  * array element:        arr + index expr
struct LValue {
    SignalId sig = kInvalidId;
    ArrayId arr = kInvalidId;
    unsigned lo = 0;
    unsigned width = 0;
    /// True when the write covers only part of the target signal (constant
    /// part select or dynamic bit select) — such writes read-modify-write.
    bool partial = false;
    ExprPtr index;   // dynamic bit-select (signals) or element index (arrays)

    [[nodiscard]] bool is_array() const { return arr != kInvalidId; }
    [[nodiscard]] LValue clone() const {
        LValue l;
        l.sig = sig;
        l.arr = arr;
        l.lo = lo;
        l.width = width;
        l.partial = partial;
        if (index) l.index = index->clone();
        return l;
    }
};

/// A `case` arm: one or more constant labels, or default (empty labels).
struct CaseArm {
    std::vector<Value> labels;
    StmtPtr body;
};

/// Elaborated statement. Kinds:
///  * Block  — sequential composition of `stmts`
///  * Assign — `lhs = rhs` (blocking) or `lhs <= rhs` (nonblocking)
///  * If     — `cond`, `then_stmt`, optional `else_stmt`
///  * Case   — `subject`, `arms` (default arm has empty labels)
struct Stmt {
    enum class Kind : uint8_t { Block, Assign, If, Case };

    Kind kind = Kind::Block;
    // Block
    std::vector<StmtPtr> stmts;
    // Assign
    LValue lhs;
    ExprPtr rhs;
    bool nonblocking = false;
    // If
    ExprPtr cond;
    StmtPtr then_stmt;
    StmtPtr else_stmt;
    // Case
    ExprPtr subject;
    std::vector<CaseArm> arms;

    static StmtPtr make_block(std::vector<StmtPtr> body) {
        auto s = std::make_unique<Stmt>();
        s->kind = Kind::Block;
        s->stmts = std::move(body);
        return s;
    }
    static StmtPtr make_assign(LValue lhs, ExprPtr rhs, bool nonblocking) {
        auto s = std::make_unique<Stmt>();
        s->kind = Kind::Assign;
        s->lhs = std::move(lhs);
        s->rhs = std::move(rhs);
        s->nonblocking = nonblocking;
        return s;
    }
    static StmtPtr make_if(ExprPtr cond, StmtPtr then_s, StmtPtr else_s) {
        auto s = std::make_unique<Stmt>();
        s->kind = Kind::If;
        s->cond = std::move(cond);
        s->then_stmt = std::move(then_s);
        s->else_stmt = std::move(else_s);
        return s;
    }
    static StmtPtr make_case(ExprPtr subject, std::vector<CaseArm> arms) {
        auto s = std::make_unique<Stmt>();
        s->kind = Kind::Case;
        s->subject = std::move(subject);
        s->arms = std::move(arms);
        return s;
    }

    [[nodiscard]] StmtPtr clone() const {
        auto s = std::make_unique<Stmt>();
        s->kind = kind;
        for (const auto& c : stmts) s->stmts.push_back(c->clone());
        s->lhs = lhs.clone();
        if (rhs) s->rhs = rhs->clone();
        s->nonblocking = nonblocking;
        if (cond) s->cond = cond->clone();
        if (then_stmt) s->then_stmt = then_stmt->clone();
        if (else_stmt) s->else_stmt = else_stmt->clone();
        if (subject) s->subject = subject->clone();
        for (const auto& a : arms) {
            CaseArm arm;
            arm.labels = a.labels;
            if (a.body) arm.body = a.body->clone();
            s->arms.push_back(std::move(arm));
        }
        return s;
    }
};

}  // namespace eraser::rtl
