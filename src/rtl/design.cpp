#include "rtl/design.h"

#include <algorithm>
#include <cassert>
#include <queue>

#include "util/diagnostics.h"

namespace eraser::rtl {

namespace {

void push_unique(std::vector<uint32_t>& vec, uint32_t id) {
    if (std::find(vec.begin(), vec.end(), id) == vec.end()) vec.push_back(id);
}

}  // namespace

SignalId Design::add_signal(std::string name, unsigned width, SignalKind kind,
                            bool is_input, bool is_output) {
    if (signal_by_name_.count(name) != 0) {
        throw ElabError({}, "duplicate signal name '" + name + "'");
    }
    if (width < 1 || width > kMaxWidth) {
        throw ElabError({}, "signal '" + name + "' width " +
                                std::to_string(width) +
                                " outside supported range [1, 64]");
    }
    const SignalId id = static_cast<SignalId>(signals.size());
    Signal s;
    s.name = std::move(name);
    s.width = width;
    s.kind = kind;
    s.is_input = is_input;
    s.is_output = is_output;
    signal_by_name_.emplace(s.name, id);
    if (is_input) inputs.push_back(id);
    if (is_output) outputs.push_back(id);
    signals.push_back(std::move(s));
    finalized_ = false;
    return id;
}

ArrayId Design::add_array(std::string name, unsigned width, uint32_t size) {
    if (array_by_name_.count(name) != 0) {
        throw ElabError({}, "duplicate array name '" + name + "'");
    }
    const ArrayId id = static_cast<ArrayId>(arrays.size());
    Array a;
    a.name = std::move(name);
    a.width = width;
    a.size = size;
    array_by_name_.emplace(a.name, id);
    arrays.push_back(std::move(a));
    finalized_ = false;
    return id;
}

NodeId Design::add_node(Op op, std::vector<SignalId> node_inputs,
                        SignalId output, Value cval, unsigned imm) {
    assert(output < signals.size());
    if (signals[output].driver != kInvalidId) {
        throw ElabError({}, "signal '" + signals[output].name +
                                "' has multiple continuous drivers");
    }
    const NodeId id = static_cast<NodeId>(nodes.size());
    RtlNode n;
    n.op = op;
    n.inputs = std::move(node_inputs);
    n.output = output;
    n.cval = cval;
    n.imm = imm;
    signals[output].driver = id;
    nodes.push_back(std::move(n));
    finalized_ = false;
    return id;
}

BehavId Design::add_behavior(BehavNode behav) {
    const BehavId id = static_cast<BehavId>(behaviors.size());
    behaviors.push_back(std::move(behav));
    finalized_ = false;
    return id;
}

SignalId Design::signal_id(const std::string& name) const {
    const SignalId id = find_signal(name);
    if (id == kInvalidId) throw SimError("unknown signal '" + name + "'");
    return id;
}

SignalId Design::find_signal(const std::string& name) const {
    auto it = signal_by_name_.find(name);
    return it == signal_by_name_.end() ? kInvalidId : it->second;
}

ArrayId Design::find_array(const std::string& name) const {
    auto it = array_by_name_.find(name);
    return it == array_by_name_.end() ? kInvalidId : it->second;
}

size_t Design::cell_estimate() const {
    size_t count = nodes.size();
    // Count assignments and branches in behavioral bodies, approximating how
    // synthesis would expand them into cells.
    struct Counter {
        size_t n = 0;
        void walk(const Stmt& s) {
            switch (s.kind) {
                case Stmt::Kind::Block:
                    for (const auto& c : s.stmts) walk(*c);
                    break;
                case Stmt::Kind::Assign: n += 1; break;
                case Stmt::Kind::If:
                    n += 1;
                    if (s.then_stmt) walk(*s.then_stmt);
                    if (s.else_stmt) walk(*s.else_stmt);
                    break;
                case Stmt::Kind::Case:
                    n += 1;
                    for (const auto& arm : s.arms) {
                        if (arm.body) walk(*arm.body);
                    }
                    break;
            }
        }
    } counter;
    for (const auto& b : behaviors) {
        if (b.body) counter.walk(*b.body);
    }
    return count + counter.n;
}

void collect_expr_reads(const Expr& e, std::vector<SignalId>& out,
                        std::vector<ArrayId>* array_reads) {
    switch (e.kind) {
        case Expr::Kind::Const: break;
        case Expr::Kind::SignalRef: push_unique(out, e.sig); break;
        case Expr::Kind::ArrayRead:
            if (array_reads != nullptr) push_unique(*array_reads, e.arr);
            collect_expr_reads(*e.args[0], out, array_reads);
            break;
        case Expr::Kind::OpApply:
            for (const auto& a : e.args) {
                collect_expr_reads(*a, out, array_reads);
            }
            break;
    }
}

void collect_stmt_sets(const Stmt& s, StmtSets& sets) {
    switch (s.kind) {
        case Stmt::Kind::Block:
            for (const auto& c : s.stmts) collect_stmt_sets(*c, sets);
            break;
        case Stmt::Kind::Assign:
            collect_expr_reads(*s.rhs, sets.reads, &sets.array_reads);
            if (s.lhs.index) {
                collect_expr_reads(*s.lhs.index, sets.reads,
                                   &sets.array_reads);
            }
            if (s.lhs.is_array()) {
                push_unique(sets.array_writes, s.lhs.arr);
            } else {
                push_unique(sets.writes, s.lhs.sig);
                if (!s.nonblocking) {
                    push_unique(sets.blocking_writes, s.lhs.sig);
                }
                // A partial write reads the untouched bits of the target.
                if (s.lhs.partial) push_unique(sets.reads, s.lhs.sig);
            }
            break;
        case Stmt::Kind::If:
            collect_expr_reads(*s.cond, sets.reads, &sets.array_reads);
            if (s.then_stmt) collect_stmt_sets(*s.then_stmt, sets);
            if (s.else_stmt) collect_stmt_sets(*s.else_stmt, sets);
            break;
        case Stmt::Kind::Case:
            collect_expr_reads(*s.subject, sets.reads, &sets.array_reads);
            for (const auto& arm : s.arms) {
                if (arm.body) collect_stmt_sets(*arm.body, sets);
            }
            break;
    }
}

void Design::finalize() {
    // Reset any previously computed derived data so finalize is idempotent.
    for (auto& s : signals) {
        s.fanout_nodes.clear();
        s.fanout_comb.clear();
        s.fanout_edges.clear();
        s.is_state = false;
    }
    for (auto& a : arrays) a.reader_behavs.clear();

    for (NodeId n = 0; n < nodes.size(); ++n) {
        for (SignalId in : nodes[n].inputs) {
            push_unique(signals[in].fanout_nodes, n);
        }
    }

    for (BehavId b = 0; b < behaviors.size(); ++b) {
        BehavNode& behav = behaviors[b];
        StmtSets sets;
        if (behav.body) collect_stmt_sets(*behav.body, sets);
        behav.reads = std::move(sets.reads);
        behav.writes = sets.writes;
        behav.blocking_writes = sets.blocking_writes;
        behav.array_reads = std::move(sets.array_reads);
        behav.array_writes = std::move(sets.array_writes);

        for (SignalId w : behav.writes) {
            const bool nonblocking_written =
                std::find(behav.blocking_writes.begin(),
                          behav.blocking_writes.end(),
                          w) == behav.blocking_writes.end();
            if (!behav.is_comb || nonblocking_written) {
                signals[w].is_state = true;
            }
        }
        if (behav.is_comb) {
            for (SignalId r : behav.reads) {
                push_unique(signals[r].fanout_comb, b);
            }
            for (ArrayId a : behav.array_reads) {
                push_unique(arrays[a].reader_behavs, b);
            }
        } else {
            for (const EdgeSpec& e : behav.edges) {
                push_unique(signals[e.sig].fanout_edges, b);
            }
        }
    }

    // ---- combinational topological ranks ---------------------------------
    // Elements: RTL nodes (0..N) then comb behaviors (N..N+B). An element
    // depends on the producer of each signal it reads: the driving RTL node,
    // or any comb behavior that blocking-writes it. Sequential behaviors are
    // rank sinks and excluded.
    const size_t num_elems = nodes.size() + behaviors.size();
    std::vector<std::vector<uint32_t>> succs(num_elems);
    std::vector<uint32_t> indeg(num_elems, 0);
    std::vector<bool> is_elem(num_elems, true);

    // Producer map: signal -> producing element (driver node or comb writer).
    std::vector<std::vector<uint32_t>> producers(signals.size());
    for (NodeId n = 0; n < nodes.size(); ++n) {
        producers[nodes[n].output].push_back(n);
    }
    for (BehavId b = 0; b < behaviors.size(); ++b) {
        const uint32_t elem = static_cast<uint32_t>(nodes.size()) + b;
        if (!behaviors[b].is_comb) {
            is_elem[elem] = false;
            continue;
        }
        for (SignalId w : behaviors[b].writes) {
            producers[w].push_back(elem);
        }
    }

    auto add_dep = [&](uint32_t consumer, SignalId read) {
        for (uint32_t producer : producers[read]) {
            if (producer == consumer) continue;
            succs[producer].push_back(consumer);
            indeg[consumer]++;
        }
    };
    for (NodeId n = 0; n < nodes.size(); ++n) {
        for (SignalId in : nodes[n].inputs) add_dep(n, in);
    }
    for (BehavId b = 0; b < behaviors.size(); ++b) {
        if (!behaviors[b].is_comb) continue;
        const uint32_t elem = static_cast<uint32_t>(nodes.size()) + b;
        for (SignalId r : behaviors[b].reads) add_dep(elem, r);
    }

    std::vector<uint32_t> rank(num_elems, 0);
    std::queue<uint32_t> ready;
    size_t processed = 0;
    for (uint32_t e = 0; e < num_elems; ++e) {
        if (is_elem[e] && indeg[e] == 0) ready.push(e);
    }
    uint32_t max_rank = 0;
    while (!ready.empty()) {
        const uint32_t e = ready.front();
        ready.pop();
        ++processed;
        max_rank = std::max(max_rank, rank[e]);
        for (uint32_t s : succs[e]) {
            rank[s] = std::max(rank[s], rank[e] + 1);
            if (--indeg[s] == 0) ready.push(s);
        }
    }
    size_t comb_elems = 0;
    for (uint32_t e = 0; e < num_elems; ++e) comb_elems += is_elem[e] ? 1 : 0;
    has_comb_cycles_ = processed < comb_elems;
    if (processed < comb_elems) {
        // Combinational cycle (or a false one through coarse behavioral read
        // sets): park unprocessed elements at the deepest rank; the engines
        // iterate to a fixpoint so correctness is preserved.
        max_rank += 1;
        for (uint32_t e = 0; e < num_elems; ++e) {
            if (is_elem[e] && indeg[e] > 0) rank[e] = max_rank;
        }
    }
    for (NodeId n = 0; n < nodes.size(); ++n) nodes[n].rank = rank[n];
    for (BehavId b = 0; b < behaviors.size(); ++b) {
        behaviors[b].rank =
            behaviors[b].is_comb ? rank[nodes.size() + b] : 0;
    }
    rank_levels_ = max_rank + 1;
    finalized_ = true;
}

}  // namespace eraser::rtl
