// Value: the 2-state scalar value type used throughout the simulators.
//
// Deviation from 4-state Verilog (documented in DESIGN.md §2): there is no
// X/Z. Registers initialize to zero. All engines (serial oracle, levelized,
// concurrent) share these semantics, so cross-engine coverage comparisons are
// exact.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>

namespace eraser {

/// Maximum supported vector width in bits. Wider buses must be decomposed by
/// the RTL author (the shipped benchmarks do this, e.g. SHA-256 exposes its
/// digest as eight 32-bit ports).
inline constexpr unsigned kMaxWidth = 64;

/// A fixed-width unsigned bit vector, 1..64 bits, value always masked to its
/// width. Arithmetic follows Verilog self-determined unsigned semantics for
/// operands already extended to a common width by the elaborator.
class Value {
  public:
    constexpr Value() = default;
    constexpr Value(uint64_t bits, unsigned width)
        : bits_(width >= kMaxWidth ? bits : bits & mask(width)),
          width_(width) {
        assert(width >= 1 && width <= kMaxWidth);
    }

    [[nodiscard]] constexpr uint64_t bits() const { return bits_; }
    [[nodiscard]] constexpr unsigned width() const { return width_; }

    [[nodiscard]] constexpr bool is_true() const { return bits_ != 0; }
    [[nodiscard]] constexpr bool bit(unsigned i) const {
        return ((bits_ >> i) & 1u) != 0;
    }

    /// The all-ones mask for a width (width in [1, 64]).
    static constexpr uint64_t mask(unsigned width) {
        return width >= kMaxWidth ? ~uint64_t{0}
                                  : (uint64_t{1} << width) - 1;
    }

    /// Same bit pattern truncated/zero-extended to a new width.
    [[nodiscard]] constexpr Value resized(unsigned new_width) const {
        return Value(bits_, new_width);
    }

    /// Returns this value with bit range [lo, lo+w) replaced by src's low w
    /// bits. Used for part-select writes.
    [[nodiscard]] Value with_bits(unsigned lo, unsigned w, uint64_t src) const {
        assert(lo + w <= width_);
        const uint64_t field_mask = mask(w) << lo;
        return Value((bits_ & ~field_mask) | ((src << lo) & field_mask),
                     width_);
    }

    friend constexpr bool operator==(const Value& a, const Value& b) {
        return a.bits_ == b.bits_ && a.width_ == b.width_;
    }
    friend constexpr bool operator!=(const Value& a, const Value& b) {
        return !(a == b);
    }

    [[nodiscard]] std::string str() const {
        return std::to_string(width_) + "'d" + std::to_string(bits_);
    }

  private:
    uint64_t bits_ = 0;
    unsigned width_ = 1;
};

}  // namespace eraser
