// Design: the elaborated RTL graph — signals, RTL nodes (one operation each),
// behavioral nodes (always blocks), memories, and initial blocks. This is the
// common input to every simulator engine.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "rtl/expr.h"
#include "rtl/ops.h"
#include "rtl/value.h"

namespace eraser::rtl {

using NodeId = uint32_t;
using BehavId = uint32_t;

/// How a signal is declared. Ports keep their wire/reg storage class; the
/// is_input/is_output flags on Signal mark port direction.
enum class SignalKind : uint8_t { Wire, Reg };

struct Signal {
    std::string name;   // flattened hierarchical name, e.g. "u_core.pc"
    unsigned width = 1;
    SignalKind kind = SignalKind::Wire;
    bool is_input = false;
    bool is_output = false;
    /// Written by a nonblocking assignment somewhere — i.e. sequential state.
    bool is_state = false;

    NodeId driver = kInvalidId;   // RTL node whose output this is, if any
    /// RTL nodes reading this signal (filled by finalize()).
    std::vector<NodeId> fanout_nodes;
    /// Combinational behavioral nodes reading this signal (activation list).
    std::vector<BehavId> fanout_comb;
    /// Sequential behavioral nodes with an edge on this signal.
    std::vector<BehavId> fanout_edges;
};

/// One elaborated operation: output = op(inputs). `imm` is the Slice
/// lo-offset; Const nodes carry their literal in `cval`.
struct RtlNode {
    Op op = Op::Copy;
    std::vector<SignalId> inputs;
    SignalId output = kInvalidId;
    Value cval;
    unsigned imm = 0;
    /// Topological rank among combinational elements (finalize()); nodes in a
    /// combinational cycle share the maximum rank and rely on fixpointing.
    uint32_t rank = 0;
};

enum class EdgeKind : uint8_t { Pos, Neg };

struct EdgeSpec {
    SignalId sig = kInvalidId;
    EdgeKind kind = EdgeKind::Pos;
};

/// A behavioral node: one `always` block. Combinational blocks (@(*) or a
/// level-sensitive list) re-run when any read signal changes; sequential
/// blocks run on the listed edges.
struct BehavNode {
    std::string name;   // e.g. "u_core.always@142"
    bool is_comb = false;
    std::vector<EdgeSpec> edges;   // sequential sensitivity
    StmtPtr body;

    // Static read/write sets, computed by finalize(). `reads` excludes
    // edge-list signals unless the body also reads them.
    std::vector<SignalId> reads;
    std::vector<SignalId> writes;         // union of blocking + nonblocking
    std::vector<SignalId> blocking_writes;
    std::vector<ArrayId> array_reads;
    std::vector<ArrayId> array_writes;

    uint32_t rank = 0;   // comb rank; sequential nodes keep 0
};

/// A 1-D memory (`reg [w-1:0] name [0:size-1]`). Not a fault site.
struct Array {
    std::string name;
    unsigned width = 1;
    uint32_t size = 0;
    std::vector<BehavId> reader_behavs;   // comb readers, for activation
};

/// An `initial` block body, executed once at time zero in program order.
struct InitialBlock {
    StmtPtr body;
};

/// The elaborated design. Build directly (tests / NetlistBuilder) or via the
/// front end (`frontend::compile`). Call finalize() before simulation.
class Design {
  public:
    std::string top_name;
    std::vector<Signal> signals;
    std::vector<RtlNode> nodes;
    std::vector<BehavNode> behaviors;
    std::vector<Array> arrays;
    std::vector<InitialBlock> initials;

    /// Primary ports in declaration order.
    std::vector<SignalId> inputs;
    std::vector<SignalId> outputs;

    // ---- construction helpers -------------------------------------------
    SignalId add_signal(std::string name, unsigned width, SignalKind kind,
                        bool is_input = false, bool is_output = false);
    ArrayId add_array(std::string name, unsigned width, uint32_t size);
    /// Adds an RTL node driving `output`; rejects multiple drivers.
    NodeId add_node(Op op, std::vector<SignalId> node_inputs, SignalId output,
                    Value cval = Value(0, 1), unsigned imm = 0);
    BehavId add_behavior(BehavNode behav);

    // ---- lookup ----------------------------------------------------------
    /// Signal id by flattened name; throws SimError if missing.
    [[nodiscard]] SignalId signal_id(const std::string& name) const;
    /// Like signal_id but returns kInvalidId instead of throwing.
    [[nodiscard]] SignalId find_signal(const std::string& name) const;
    [[nodiscard]] ArrayId find_array(const std::string& name) const;

    /// Computes fanout lists, static read/write sets, state flags, and
    /// combinational topological ranks. Idempotent; must be called after the
    /// last structural mutation and before handing the design to an engine.
    void finalize();

    [[nodiscard]] bool finalized() const { return finalized_; }
    /// Highest combinational rank + 1 (number of rank levels).
    [[nodiscard]] uint32_t rank_levels() const { return rank_levels_; }
    /// True when ranking found a combinational cycle; engines must then
    /// iterate sweeps to a fixpoint instead of trusting one pass.
    [[nodiscard]] bool has_comb_cycles() const { return has_comb_cycles_; }

    // ---- statistics (for Table II-style reporting) ------------------------
    [[nodiscard]] size_t num_rtl_nodes() const { return nodes.size(); }
    [[nodiscard]] size_t num_behaviors() const { return behaviors.size(); }
    /// A rough "cells" count: RTL nodes plus statement count of all
    /// behavioral bodies (reported like Yosys cell counts in the paper).
    [[nodiscard]] size_t cell_estimate() const;

  private:
    std::unordered_map<std::string, SignalId> signal_by_name_;
    std::unordered_map<std::string, ArrayId> array_by_name_;
    bool finalized_ = false;
    bool has_comb_cycles_ = false;
    uint32_t rank_levels_ = 1;
};

/// Collects every SignalId read by an expression (array index expressions
/// included) into `out`, preserving first-seen order, no duplicates.
void collect_expr_reads(const Expr& e, std::vector<SignalId>& out,
                        std::vector<ArrayId>* array_reads = nullptr);

/// Collects read/write sets of a statement tree.
struct StmtSets {
    std::vector<SignalId> reads;
    std::vector<SignalId> writes;
    std::vector<SignalId> blocking_writes;
    std::vector<ArrayId> array_reads;
    std::vector<ArrayId> array_writes;
};
void collect_stmt_sets(const Stmt& s, StmtSets& sets);

}  // namespace eraser::rtl
