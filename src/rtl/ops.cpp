#include "rtl/ops.h"

#include <cassert>

namespace eraser::rtl {

std::string_view op_name(Op op) {
    switch (op) {
        case Op::Const: return "const";
        case Op::Copy: return "copy";
        case Op::Add: return "add";
        case Op::Sub: return "sub";
        case Op::Mul: return "mul";
        case Op::Div: return "div";
        case Op::Mod: return "mod";
        case Op::And: return "and";
        case Op::Or: return "or";
        case Op::Xor: return "xor";
        case Op::Not: return "not";
        case Op::Neg: return "neg";
        case Op::LAnd: return "land";
        case Op::LOr: return "lor";
        case Op::LNot: return "lnot";
        case Op::Eq: return "eq";
        case Op::Ne: return "ne";
        case Op::Lt: return "lt";
        case Op::Le: return "le";
        case Op::Gt: return "gt";
        case Op::Ge: return "ge";
        case Op::Shl: return "shl";
        case Op::Shr: return "shr";
        case Op::Mux: return "mux";
        case Op::Concat: return "concat";
        case Op::Slice: return "slice";
        case Op::Index: return "index";
        case Op::RedAnd: return "redand";
        case Op::RedOr: return "redor";
        case Op::RedXor: return "redxor";
    }
    return "?";
}

int op_arity(Op op) {
    switch (op) {
        case Op::Const: return 0;
        case Op::Copy:
        case Op::Not:
        case Op::Neg:
        case Op::LNot:
        case Op::Slice:
        case Op::RedAnd:
        case Op::RedOr:
        case Op::RedXor: return 1;
        case Op::Mux: return 3;
        case Op::Concat: return -1;
        default: return 2;
    }
}

Value eval_op(Op op, std::span<const Value> v, unsigned out_width,
              unsigned imm) {
    switch (op) {
        case Op::Const:
            assert(false && "Const has no operands to evaluate");
            return Value(0, out_width);
        case Op::Copy: return Value(v[0].bits(), out_width);
        case Op::Add: return Value(v[0].bits() + v[1].bits(), out_width);
        case Op::Sub: return Value(v[0].bits() - v[1].bits(), out_width);
        case Op::Mul: return Value(v[0].bits() * v[1].bits(), out_width);
        case Op::Div:
            return Value(v[1].bits() == 0 ? ~uint64_t{0}
                                          : v[0].bits() / v[1].bits(),
                         out_width);
        case Op::Mod:
            return Value(v[1].bits() == 0 ? v[0].bits()
                                          : v[0].bits() % v[1].bits(),
                         out_width);
        case Op::And: return Value(v[0].bits() & v[1].bits(), out_width);
        case Op::Or: return Value(v[0].bits() | v[1].bits(), out_width);
        case Op::Xor: return Value(v[0].bits() ^ v[1].bits(), out_width);
        case Op::Not: return Value(~v[0].bits(), out_width);
        case Op::Neg: return Value(~v[0].bits() + 1, out_width);
        case Op::LAnd:
            return Value(v[0].is_true() && v[1].is_true(), out_width);
        case Op::LOr:
            return Value(v[0].is_true() || v[1].is_true(), out_width);
        case Op::LNot: return Value(!v[0].is_true(), out_width);
        case Op::Eq: return Value(v[0].bits() == v[1].bits(), out_width);
        case Op::Ne: return Value(v[0].bits() != v[1].bits(), out_width);
        case Op::Lt: return Value(v[0].bits() < v[1].bits(), out_width);
        case Op::Le: return Value(v[0].bits() <= v[1].bits(), out_width);
        case Op::Gt: return Value(v[0].bits() > v[1].bits(), out_width);
        case Op::Ge: return Value(v[0].bits() >= v[1].bits(), out_width);
        case Op::Shl: {
            const uint64_t sh = v[1].bits();
            return Value(sh >= 64 ? 0 : v[0].bits() << sh, out_width);
        }
        case Op::Shr: {
            const uint64_t sh = v[1].bits();
            return Value(sh >= 64 ? 0 : v[0].bits() >> sh, out_width);
        }
        case Op::Mux:
            return Value((v[0].is_true() ? v[1] : v[2]).bits(), out_width);
        case Op::Concat: {
            uint64_t acc = 0;
            for (const Value& part : v) {   // MSB-first
                acc = (acc << part.width()) | part.bits();
            }
            return Value(acc, out_width);
        }
        case Op::Slice: return Value(v[0].bits() >> imm, out_width);
        case Op::Index: {
            const uint64_t idx = v[1].bits();
            const bool bit = idx < v[0].width() && v[0].bit(
                                 static_cast<unsigned>(idx));
            return Value(bit, out_width);
        }
        case Op::RedAnd:
            return Value(v[0].bits() == Value::mask(v[0].width()), out_width);
        case Op::RedOr: return Value(v[0].bits() != 0, out_width);
        case Op::RedXor: {
            uint64_t x = v[0].bits();
            x ^= x >> 32; x ^= x >> 16; x ^= x >> 8;
            x ^= x >> 4;  x ^= x >> 2;  x ^= x >> 1;
            return Value(x & 1, out_width);
        }
    }
    return Value(0, out_width);
}

}  // namespace eraser::rtl
