#include "rtl/ops.h"

#include <cassert>

namespace eraser::rtl {

std::string_view op_name(Op op) {
    switch (op) {
        case Op::Const: return "const";
        case Op::Copy: return "copy";
        case Op::Add: return "add";
        case Op::Sub: return "sub";
        case Op::Mul: return "mul";
        case Op::Div: return "div";
        case Op::Mod: return "mod";
        case Op::And: return "and";
        case Op::Or: return "or";
        case Op::Xor: return "xor";
        case Op::Not: return "not";
        case Op::Neg: return "neg";
        case Op::LAnd: return "land";
        case Op::LOr: return "lor";
        case Op::LNot: return "lnot";
        case Op::Eq: return "eq";
        case Op::Ne: return "ne";
        case Op::Lt: return "lt";
        case Op::Le: return "le";
        case Op::Gt: return "gt";
        case Op::Ge: return "ge";
        case Op::Shl: return "shl";
        case Op::Shr: return "shr";
        case Op::Mux: return "mux";
        case Op::Concat: return "concat";
        case Op::Slice: return "slice";
        case Op::Index: return "index";
        case Op::RedAnd: return "redand";
        case Op::RedOr: return "redor";
        case Op::RedXor: return "redxor";
    }
    return "?";
}

int op_arity(Op op) {
    switch (op) {
        case Op::Const: return 0;
        case Op::Copy:
        case Op::Not:
        case Op::Neg:
        case Op::LNot:
        case Op::Slice:
        case Op::RedAnd:
        case Op::RedOr:
        case Op::RedXor: return 1;
        case Op::Mux: return 3;
        case Op::Concat: return -1;
        default: return 2;
    }
}

}  // namespace eraser::rtl
