// Operator set shared by RTL nodes (elaborated continuous assignments) and
// behavioral expressions, plus the single evaluation routine used by every
// engine so semantics cannot drift between simulators.
#pragma once

#include <span>
#include <string_view>

#include "rtl/value.h"

namespace eraser::rtl {

/// Operation kinds. `Mux` is the ternary operator with operand order
/// [sel, then, else]; `Concat` takes operands MSB-first; `Slice` and `Index`
/// carry extra immediates in their node / expression.
enum class Op : uint8_t {
    Const,   // literal (no operands)
    Copy,    // identity / width-adjusting copy
    Add, Sub, Mul, Div, Mod,
    And, Or, Xor, Not,
    Neg,     // two's complement negation
    LAnd, LOr, LNot,   // logical (1-bit result)
    Eq, Ne, Lt, Le, Gt, Ge,   // unsigned comparisons (1-bit result)
    Shl, Shr,
    Mux,     // operands: [sel, then, else]
    Concat,  // operands MSB-first
    Slice,   // out = in[lo +: out_width], lo is an immediate
    Index,   // out (1 bit) = vec[idx], operands: [vec, idx]; 0 if idx >= width
    RedAnd, RedOr, RedXor,   // unary reductions (1-bit result)
};

/// Human-readable operator name (for dumps and error messages).
[[nodiscard]] std::string_view op_name(Op op);

/// Number of operands an op consumes, or -1 for variadic (Concat).
[[nodiscard]] int op_arity(Op op);

/// Evaluate an operator over already-width-adjusted operand values.
///
/// `out_width` is the result width decided at elaboration time. `imm` is the
/// `lo` immediate for Slice and ignored otherwise. Division/modulo by zero
/// yield all-ones / the dividend respectively (the common 2-state simulator
/// convention; documented deviation from 4-state X).
[[nodiscard]] Value eval_op(Op op, std::span<const Value> operands,
                            unsigned out_width, unsigned imm = 0);

}  // namespace eraser::rtl
