// Operator set shared by RTL nodes (elaborated continuous assignments) and
// behavioral expressions, plus the single evaluation routine used by every
// engine so semantics cannot drift between simulators.
#pragma once

#include <cassert>
#include <span>
#include <string_view>

#include "rtl/value.h"

namespace eraser::rtl {

/// Operation kinds. `Mux` is the ternary operator with operand order
/// [sel, then, else]; `Concat` takes operands MSB-first; `Slice` and `Index`
/// carry extra immediates in their node / expression.
enum class Op : uint8_t {
    Const,   // literal (no operands)
    Copy,    // identity / width-adjusting copy
    Add, Sub, Mul, Div, Mod,
    And, Or, Xor, Not,
    Neg,     // two's complement negation
    LAnd, LOr, LNot,   // logical (1-bit result)
    Eq, Ne, Lt, Le, Gt, Ge,   // unsigned comparisons (1-bit result)
    Shl, Shr,
    Mux,     // operands: [sel, then, else]
    Concat,  // operands MSB-first
    Slice,   // out = in[lo +: out_width], lo is an immediate
    Index,   // out (1 bit) = vec[idx], operands: [vec, idx]; 0 if idx >= width
    RedAnd, RedOr, RedXor,   // unary reductions (1-bit result)
};

/// Human-readable operator name (for dumps and error messages).
[[nodiscard]] std::string_view op_name(Op op);

/// Number of operands an op consumes, or -1 for variadic (Concat).
[[nodiscard]] int op_arity(Op op);

/// Evaluate an operator over already-width-adjusted operand values.
///
/// `out_width` is the result width decided at elaboration time. `imm` is the
/// `lo` immediate for Slice and ignored otherwise. Division/modulo by zero
/// yield all-ones / the dividend respectively (the common 2-state simulator
/// convention; documented deviation from 4-state X).
///
/// Defined inline: this is the innermost call of every engine's hot loop
/// (one per RTL-node evaluation and per bytecode Apply), and inlining it
/// into the callers measurably moves campaign wall time.
[[nodiscard]] inline Value eval_op(Op op, std::span<const Value> v,
                                   unsigned out_width, unsigned imm = 0) {
    switch (op) {
        case Op::Const:
            assert(false && "Const has no operands to evaluate");
            return Value(0, out_width);
        case Op::Copy: return Value(v[0].bits(), out_width);
        case Op::Add: return Value(v[0].bits() + v[1].bits(), out_width);
        case Op::Sub: return Value(v[0].bits() - v[1].bits(), out_width);
        case Op::Mul: return Value(v[0].bits() * v[1].bits(), out_width);
        case Op::Div:
            return Value(v[1].bits() == 0 ? ~uint64_t{0}
                                          : v[0].bits() / v[1].bits(),
                         out_width);
        case Op::Mod:
            return Value(v[1].bits() == 0 ? v[0].bits()
                                          : v[0].bits() % v[1].bits(),
                         out_width);
        case Op::And: return Value(v[0].bits() & v[1].bits(), out_width);
        case Op::Or: return Value(v[0].bits() | v[1].bits(), out_width);
        case Op::Xor: return Value(v[0].bits() ^ v[1].bits(), out_width);
        case Op::Not: return Value(~v[0].bits(), out_width);
        case Op::Neg: return Value(~v[0].bits() + 1, out_width);
        case Op::LAnd:
            return Value(v[0].is_true() && v[1].is_true(), out_width);
        case Op::LOr:
            return Value(v[0].is_true() || v[1].is_true(), out_width);
        case Op::LNot: return Value(!v[0].is_true(), out_width);
        case Op::Eq: return Value(v[0].bits() == v[1].bits(), out_width);
        case Op::Ne: return Value(v[0].bits() != v[1].bits(), out_width);
        case Op::Lt: return Value(v[0].bits() < v[1].bits(), out_width);
        case Op::Le: return Value(v[0].bits() <= v[1].bits(), out_width);
        case Op::Gt: return Value(v[0].bits() > v[1].bits(), out_width);
        case Op::Ge: return Value(v[0].bits() >= v[1].bits(), out_width);
        case Op::Shl: {
            const uint64_t sh = v[1].bits();
            return Value(sh >= 64 ? 0 : v[0].bits() << sh, out_width);
        }
        case Op::Shr: {
            const uint64_t sh = v[1].bits();
            return Value(sh >= 64 ? 0 : v[0].bits() >> sh, out_width);
        }
        case Op::Mux:
            return Value((v[0].is_true() ? v[1] : v[2]).bits(), out_width);
        case Op::Concat: {
            uint64_t acc = 0;
            for (const Value& part : v) {   // MSB-first
                acc = (acc << part.width()) | part.bits();
            }
            return Value(acc, out_width);
        }
        case Op::Slice: return Value(v[0].bits() >> imm, out_width);
        case Op::Index: {
            const uint64_t idx = v[1].bits();
            const bool bit = idx < v[0].width() && v[0].bit(
                                 static_cast<unsigned>(idx));
            return Value(bit, out_width);
        }
        case Op::RedAnd:
            return Value(v[0].bits() == Value::mask(v[0].width()), out_width);
        case Op::RedOr: return Value(v[0].bits() != 0, out_width);
        case Op::RedXor: {
            uint64_t x = v[0].bits();
            x ^= x >> 32; x ^= x >> 16; x ^= x >> 8;
            x ^= x >> 4;  x ^= x >> 2;  x ^= x >> 1;
            return Value(x & 1, out_width);
        }
    }
    return Value(0, out_width);
}

}  // namespace eraser::rtl
