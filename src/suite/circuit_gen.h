// Random synthesizable-circuit generator: produces valid rtl::Designs with
// combinational logic, registers, branches, case statements, and memories.
// Used by the property-based tests to fuzz the full stack — every generated
// circuit must give identical fault verdicts under the serial oracle and
// the concurrent engine in every redundancy mode.
#pragma once

#include <memory>

#include "rtl/design.h"

namespace eraser::suite {

struct CircuitGenOptions {
    uint64_t seed = 1;
    unsigned num_inputs = 4;       // random-width primary inputs
    unsigned num_outputs = 3;
    unsigned num_wires = 8;        // intermediate continuous assignments
    unsigned num_regs = 6;         // clocked state
    unsigned num_comb_blocks = 1;  // always @(*) blocks
    unsigned num_seq_blocks = 2;   // always @(posedge clk) blocks
    unsigned max_stmt_depth = 3;   // nesting of if/case in behavioral code
    bool use_memory = false;       // add a small memory with r/w logic
    bool use_async_reset = false;  // negedge rst_n on one block
};

/// Generates a finalized random design with ports "clk", "rst", inputs
/// in0.., outputs out0... Every signal is driven; no combinational cycles.
/// When `source_out` is non-null the generated Verilog text is stored there
/// (debugging aid: failing fuzz seeds can be dumped and replayed).
[[nodiscard]] std::unique_ptr<rtl::Design> generate_circuit(
    const CircuitGenOptions& opts, std::string* source_out = nullptr);

}  // namespace eraser::suite
