// Tiny instruction encoders for the CPU benchmarks' test programs.
// RV32I subset (sodor / riscv_mini / picorv32) and MIPS-I subset (mips_cpu).
#pragma once

#include <cstdint>

namespace eraser::suite::rv32 {

constexpr uint32_t r_type(unsigned f7, unsigned rs2, unsigned rs1,
                          unsigned f3, unsigned rd, unsigned op) {
    return (f7 << 25) | (rs2 << 20) | (rs1 << 15) | (f3 << 12) | (rd << 7) |
           op;
}
constexpr uint32_t i_type(int32_t imm, unsigned rs1, unsigned f3, unsigned rd,
                          unsigned op) {
    return (static_cast<uint32_t>(imm & 0xFFF) << 20) | (rs1 << 15) |
           (f3 << 12) | (rd << 7) | op;
}

constexpr uint32_t addi(unsigned rd, unsigned rs1, int32_t imm) {
    return i_type(imm, rs1, 0b000, rd, 0x13);
}
constexpr uint32_t xori(unsigned rd, unsigned rs1, int32_t imm) {
    return i_type(imm, rs1, 0b100, rd, 0x13);
}
constexpr uint32_t ori(unsigned rd, unsigned rs1, int32_t imm) {
    return i_type(imm, rs1, 0b110, rd, 0x13);
}
constexpr uint32_t andi(unsigned rd, unsigned rs1, int32_t imm) {
    return i_type(imm, rs1, 0b111, rd, 0x13);
}
constexpr uint32_t slli(unsigned rd, unsigned rs1, unsigned sh) {
    return i_type(static_cast<int32_t>(sh), rs1, 0b001, rd, 0x13);
}
constexpr uint32_t srli(unsigned rd, unsigned rs1, unsigned sh) {
    return i_type(static_cast<int32_t>(sh), rs1, 0b101, rd, 0x13);
}
constexpr uint32_t add(unsigned rd, unsigned rs1, unsigned rs2) {
    return r_type(0, rs2, rs1, 0b000, rd, 0x33);
}
constexpr uint32_t sub(unsigned rd, unsigned rs1, unsigned rs2) {
    return r_type(0x20, rs2, rs1, 0b000, rd, 0x33);
}
constexpr uint32_t xor_(unsigned rd, unsigned rs1, unsigned rs2) {
    return r_type(0, rs2, rs1, 0b100, rd, 0x33);
}
constexpr uint32_t or_(unsigned rd, unsigned rs1, unsigned rs2) {
    return r_type(0, rs2, rs1, 0b110, rd, 0x33);
}
constexpr uint32_t and_(unsigned rd, unsigned rs1, unsigned rs2) {
    return r_type(0, rs2, rs1, 0b111, rd, 0x33);
}
constexpr uint32_t slt(unsigned rd, unsigned rs1, unsigned rs2) {
    return r_type(0, rs2, rs1, 0b010, rd, 0x33);
}
constexpr uint32_t lui(unsigned rd, uint32_t imm20) {
    return (imm20 << 12) | (rd << 7) | 0x37;
}
constexpr uint32_t lw(unsigned rd, unsigned rs1, int32_t off) {
    return i_type(off, rs1, 0b010, rd, 0x03);
}
constexpr uint32_t sw(unsigned rs2, unsigned rs1, int32_t off) {
    return (static_cast<uint32_t>((off >> 5) & 0x7F) << 25) | (rs2 << 20) |
           (rs1 << 15) | (0b010 << 12) |
           (static_cast<uint32_t>(off & 0x1F) << 7) | 0x23;
}
constexpr uint32_t branch(unsigned f3, unsigned rs1, unsigned rs2,
                          int32_t off) {
    const uint32_t u = static_cast<uint32_t>(off);
    return (((u >> 12) & 1) << 31) | (((u >> 5) & 0x3F) << 25) |
           (rs2 << 20) | (rs1 << 15) | (f3 << 12) | (((u >> 1) & 0xF) << 8) |
           (((u >> 11) & 1) << 7) | 0x63;
}
constexpr uint32_t beq(unsigned rs1, unsigned rs2, int32_t off) {
    return branch(0b000, rs1, rs2, off);
}
constexpr uint32_t bne(unsigned rs1, unsigned rs2, int32_t off) {
    return branch(0b001, rs1, rs2, off);
}
constexpr uint32_t blt(unsigned rs1, unsigned rs2, int32_t off) {
    return branch(0b100, rs1, rs2, off);
}
constexpr uint32_t jal(unsigned rd, int32_t off) {
    const uint32_t u = static_cast<uint32_t>(off);
    return (((u >> 20) & 1) << 31) | (((u >> 1) & 0x3FF) << 21) |
           (((u >> 11) & 1) << 20) | (((u >> 12) & 0xFF) << 12) | (rd << 7) |
           0x6F;
}

}  // namespace eraser::suite::rv32

namespace eraser::suite::mips {

constexpr uint32_t r_type(unsigned rs, unsigned rt, unsigned rd,
                          unsigned funct) {
    return (rs << 21) | (rt << 16) | (rd << 11) | funct;
}
constexpr uint32_t i_type(unsigned op, unsigned rs, unsigned rt,
                          int32_t imm) {
    return (op << 26) | (rs << 21) | (rt << 16) |
           (static_cast<uint32_t>(imm) & 0xFFFF);
}

constexpr uint32_t nop() { return 0; }
constexpr uint32_t addu(unsigned rd, unsigned rs, unsigned rt) {
    return r_type(rs, rt, rd, 0x21);
}
constexpr uint32_t subu(unsigned rd, unsigned rs, unsigned rt) {
    return r_type(rs, rt, rd, 0x23);
}
constexpr uint32_t and_(unsigned rd, unsigned rs, unsigned rt) {
    return r_type(rs, rt, rd, 0x24);
}
constexpr uint32_t or_(unsigned rd, unsigned rs, unsigned rt) {
    return r_type(rs, rt, rd, 0x25);
}
constexpr uint32_t xor_(unsigned rd, unsigned rs, unsigned rt) {
    return r_type(rs, rt, rd, 0x26);
}
constexpr uint32_t sltu(unsigned rd, unsigned rs, unsigned rt) {
    return r_type(rs, rt, rd, 0x2B);
}
constexpr uint32_t addiu(unsigned rt, unsigned rs, int32_t imm) {
    return i_type(0x09, rs, rt, imm);
}
constexpr uint32_t andi(unsigned rt, unsigned rs, int32_t imm) {
    return i_type(0x0C, rs, rt, imm);
}
constexpr uint32_t ori(unsigned rt, unsigned rs, int32_t imm) {
    return i_type(0x0D, rs, rt, imm);
}
constexpr uint32_t lui(unsigned rt, int32_t imm) {
    return i_type(0x0F, 0, rt, imm);
}
constexpr uint32_t lw(unsigned rt, int32_t off, unsigned rs) {
    return i_type(0x23, rs, rt, off);
}
constexpr uint32_t sw(unsigned rt, int32_t off, unsigned rs) {
    return i_type(0x2B, rs, rt, off);
}
/// off counts instructions from the delay-slot position (standard MIPS).
constexpr uint32_t beq(unsigned rs, unsigned rt, int32_t off) {
    return i_type(0x04, rs, rt, off);
}
constexpr uint32_t bne(unsigned rs, unsigned rt, int32_t off) {
    return i_type(0x05, rs, rt, off);
}
constexpr uint32_t j(uint32_t word_target) {
    return (0x02u << 26) | (word_target & 0x03FFFFFF);
}

}  // namespace eraser::suite::mips
