// The generator emits Verilog *text* and runs it through the front end, so
// fuzzing covers the lexer/parser/elaborator as well as the engines.
#include "suite/circuit_gen.h"

#include <sstream>
#include <string>
#include <vector>

#include "frontend/compile.h"
#include "util/diagnostics.h"
#include "util/prng.h"

namespace eraser::suite {

namespace {

struct Sig {
    std::string name;
    unsigned width;
};

class Generator {
  public:
    explicit Generator(const CircuitGenOptions& opts)
        : opts_(opts), rng_(opts.seed) {}

    std::string run() {
        make_signals();
        std::ostringstream v;
        v << "module fuzz(\n  input clk,\n  input rst";
        if (opts_.use_async_reset) v << ",\n  input rst_n";
        for (const Sig& s : inputs_) {
            v << ",\n  input " << range(s.width) << " " << s.name;
        }
        for (unsigned i = 0; i < opts_.num_outputs; ++i) {
            v << ",\n  output " << range(outputs_[i].width) << " "
              << outputs_[i].name;
        }
        v << "\n);\n";

        for (const Sig& s : wires_) {
            v << "  wire " << range(s.width) << " " << s.name << ";\n";
        }
        for (const Sig& s : regs_) {
            v << "  reg " << range(s.width) << " " << s.name << ";\n";
        }
        for (const Sig& s : comb_regs_) {
            v << "  reg " << range(s.width) << " " << s.name << ";\n";
        }
        if (opts_.use_memory) {
            v << "  reg [7:0] mem [0:7];\n";
        }

        // Continuous assignments: wire k reads inputs, regs, wires < k.
        std::vector<Sig> readable = inputs_;
        readable.insert(readable.end(), regs_.begin(), regs_.end());
        for (size_t i = 0; i < wires_.size(); ++i) {
            v << "  assign " << wires_[i].name << " = "
              << expr(2, readable) << ";\n";
            readable.push_back(wires_[i]);
        }
        std::vector<Sig> all_readable = readable;
        all_readable.insert(all_readable.end(), comb_regs_.begin(),
                            comb_regs_.end());

        // Combinational blocks: defaults then branching over comb regs.
        size_t comb_assigned = 0;
        for (unsigned blk = 0; blk < opts_.num_comb_blocks; ++blk) {
            const size_t begin = comb_assigned;
            const size_t end = blk + 1 == opts_.num_comb_blocks
                                   ? comb_regs_.size()
                                   : std::min(comb_regs_.size(),
                                              begin + comb_regs_.size() /
                                                          opts_.num_comb_blocks +
                                                          1);
            comb_assigned = end;
            if (begin >= end) continue;
            v << "  always @(*) begin\n";
            std::vector<Sig> mine(comb_regs_.begin() + begin,
                                  comb_regs_.begin() + end);
            for (const Sig& s : mine) {
                v << "    " << s.name << " = " << expr(1, readable)
                  << ";\n";
            }
            v << stmt_block(opts_.max_stmt_depth, mine, readable, false, 2);
            v << "  end\n";
        }

        // Sequential blocks: partition regs between them.
        size_t seq_assigned = 0;
        for (unsigned blk = 0; blk < opts_.num_seq_blocks; ++blk) {
            const size_t begin = seq_assigned;
            const size_t end =
                blk + 1 == opts_.num_seq_blocks
                    ? regs_.size()
                    : std::min(regs_.size(),
                               begin + regs_.size() / opts_.num_seq_blocks +
                                   1);
            seq_assigned = end;
            if (begin >= end) continue;
            std::vector<Sig> mine(regs_.begin() + begin,
                                  regs_.begin() + end);
            const bool async = opts_.use_async_reset && blk == 0;
            v << "  always @(posedge clk"
              << (async ? " or negedge rst_n" : "") << ") begin\n";
            v << "    if (" << (async ? "!rst_n" : "rst") << ") begin\n";
            for (const Sig& s : mine) {
                v << "      " << s.name << " <= 0;\n";
            }
            v << "    end else begin\n";
            v << stmt_block(opts_.max_stmt_depth, mine, all_readable, true,
                            3);
            v << "    end\n  end\n";
        }

        // Memory traffic.
        if (opts_.use_memory) {
            v << "  always @(posedge clk) begin\n"
              << "    if (" << pick(all_readable).name << " != 0)\n"
              << "      mem[" << pick(all_readable).name
              << "] <= " << expr(1, all_readable) << ";\n"
              << "  end\n";
            // A reg reading the memory back.
            v << "  always @(posedge clk) begin\n"
              << "    mem_out <= mem[" << pick(all_readable).name
              << "];\n  end\n";
        }

        // Outputs.
        for (unsigned i = 0; i < opts_.num_outputs; ++i) {
            v << "  assign " << outputs_[i].name << " = "
              << expr(2, all_readable) << ";\n";
        }
        v << "endmodule\n";
        return v.str();
    }

  private:
    static std::string range(unsigned width) {
        return width == 1 ? "" : "[" + std::to_string(width - 1) + ":0]";
    }
    unsigned rand_width() {
        static const unsigned choices[] = {1, 2, 4, 8, 13, 16, 32};
        return choices[rng_.below(7)];
    }
    const Sig& pick(const std::vector<Sig>& from) {
        return from[rng_.below(from.size())];
    }

    void make_signals() {
        for (unsigned i = 0; i < opts_.num_inputs; ++i) {
            inputs_.push_back({"in" + std::to_string(i), rand_width()});
        }
        for (unsigned i = 0; i < opts_.num_wires; ++i) {
            wires_.push_back({"w" + std::to_string(i), rand_width()});
        }
        for (unsigned i = 0; i < opts_.num_regs; ++i) {
            regs_.push_back({"r" + std::to_string(i), rand_width()});
        }
        // A couple of comb-assigned regs per comb block.
        for (unsigned i = 0; i < opts_.num_comb_blocks * 2; ++i) {
            comb_regs_.push_back({"c" + std::to_string(i), rand_width()});
        }
        if (opts_.use_memory) {
            regs_.push_back({"mem_out", 8});
        }
        for (unsigned i = 0; i < opts_.num_outputs; ++i) {
            outputs_.push_back({"out" + std::to_string(i), rand_width()});
        }
    }

    /// Generated expression text plus its self-determined width (mirrors
    /// the elaborator's width rules, so the generator can keep concats
    /// within the 64-bit value limit).
    struct GenExpr {
        std::string text;
        unsigned width;
    };

    std::string expr(int depth, const std::vector<Sig>& readable) {
        return typed_expr(depth, readable).text;
    }

    GenExpr typed_expr(int depth, const std::vector<Sig>& readable) {
        if (depth <= 0 || rng_.chance(1, 4)) {
            // Leaf: signal, slice, bit, or literal.
            switch (rng_.below(4)) {
                case 0: {
                    const unsigned w = rand_width();
                    return {std::to_string(w) + "'d" +
                                std::to_string(rng_.bits(std::min(w, 16u))),
                            w};
                }
                case 1: {
                    const Sig& s = pick(readable);
                    if (s.width > 2 && rng_.chance(1, 2)) {
                        const unsigned hi =
                            1 + static_cast<unsigned>(
                                    rng_.below(s.width - 1));
                        const unsigned lo =
                            static_cast<unsigned>(rng_.below(hi));
                        return {s.name + "[" + std::to_string(hi) + ":" +
                                    std::to_string(lo) + "]",
                                hi - lo + 1};
                    }
                    return {s.name, s.width};
                }
                case 2: {
                    const Sig& s = pick(readable);
                    if (s.width > 1) {
                        return {s.name + "[" +
                                    std::to_string(rng_.below(s.width)) +
                                    "]",
                                1};
                    }
                    return {s.name, s.width};
                }
                default: {
                    const Sig& s = pick(readable);
                    return {s.name, s.width};
                }
            }
        }
        static const char* binops[] = {"+", "-", "*", "&",  "|",  "^",
                                       "<<", ">>", "==", "!=", "<", "<="};
        static const char* unops[] = {"~", "!", "-", "&", "|", "^"};
        switch (rng_.below(4)) {
            case 0: {
                const GenExpr a = typed_expr(depth - 1, readable);
                const GenExpr b = typed_expr(depth - 1, readable);
                const unsigned op = static_cast<unsigned>(rng_.below(12));
                unsigned w = std::max(a.width, b.width);
                if (op >= 8) w = 1;                      // comparisons
                if (op == 6 || op == 7) w = a.width;     // shifts
                return {"(" + a.text + " " + binops[op] + " " + b.text + ")",
                        w};
            }
            case 1: {
                const GenExpr a = typed_expr(depth - 1, readable);
                const unsigned op = static_cast<unsigned>(rng_.below(6));
                return {std::string(unops[op]) + "(" + a.text + ")",
                        op <= 2 && op != 1 ? a.width : 1};
            }
            case 2: {
                const GenExpr sel = typed_expr(depth - 1, readable);
                const GenExpr a = typed_expr(depth - 1, readable);
                const GenExpr b = typed_expr(depth - 1, readable);
                return {"(" + sel.text + " ? " + a.text + " : " + b.text +
                            ")",
                        std::max(a.width, b.width)};
            }
            default: {
                const GenExpr a = typed_expr(depth - 1, readable);
                const GenExpr b = typed_expr(depth - 1, readable);
                if (a.width + b.width > 64) {
                    // Concat would exceed the value width limit; combine
                    // with xor instead.
                    return {"(" + a.text + " ^ " + b.text + ")",
                            std::max(a.width, b.width)};
                }
                return {"{" + a.text + ", " + b.text + "}",
                        a.width + b.width};
            }
        }
    }

    std::string indent(int n) { return std::string(2 * n, ' '); }

    std::string stmt_block(int depth, const std::vector<Sig>& writable,
                           const std::vector<Sig>& readable, bool nonblocking,
                           int ind) {
        std::ostringstream out;
        const unsigned n = 1 + static_cast<unsigned>(rng_.below(3));
        for (unsigned i = 0; i < n; ++i) {
            out << stmt(depth, writable, readable, nonblocking, ind);
        }
        return out.str();
    }

    std::string stmt(int depth, const std::vector<Sig>& writable,
                     const std::vector<Sig>& readable, bool nonblocking,
                     int ind) {
        const Sig& target = pick(writable);
        const std::string op = nonblocking ? " <= " : " = ";
        if (depth <= 0 || rng_.chance(1, 2)) {
            return indent(ind) + target.name + op + expr(2, readable) +
                   ";\n";
        }
        std::ostringstream out;
        if (rng_.chance(2, 3)) {
            out << indent(ind) << "if (" << expr(1, readable) << ") begin\n"
                << stmt_block(depth - 1, writable, readable, nonblocking,
                              ind + 1)
                << indent(ind) << "end";
            if (rng_.chance(1, 2)) {
                out << " else begin\n"
                    << stmt_block(depth - 1, writable, readable, nonblocking,
                                  ind + 1)
                    << indent(ind) << "end";
            }
            out << "\n";
        } else {
            const Sig& subject = pick(readable);
            const unsigned sel_w = std::min(subject.width, 2u);
            out << indent(ind) << "case (" << subject.name << "["
                << (sel_w - 1) << ":0])\n";
            for (unsigned arm = 0; arm < (1u << sel_w); ++arm) {
                if (arm == (1u << sel_w) - 1) {
                    out << indent(ind + 1) << "default: begin\n";
                } else {
                    out << indent(ind + 1) << sel_w << "'d" << arm
                        << ": begin\n";
                }
                out << stmt_block(depth - 1, writable, readable, nonblocking,
                                  ind + 2)
                    << indent(ind + 1) << "end\n";
            }
            out << indent(ind) << "endcase\n";
        }
        return out.str();
    }

    CircuitGenOptions opts_;
    Prng rng_;
    std::vector<Sig> inputs_, wires_, regs_, comb_regs_, outputs_;
};

}  // namespace

std::unique_ptr<rtl::Design> generate_circuit(const CircuitGenOptions& opts,
                                              std::string* source_out) {
    const std::string source = Generator(opts).run();
    if (source_out != nullptr) *source_out = source;
    try {
        return frontend::compile(source, "fuzz");
    } catch (const EraserError& e) {
        // Surface the generated source to make generator bugs debuggable.
        throw EraserError(std::string(e.what()) + "\n--- generated source:\n" +
                          source);
    }
}

}  // namespace eraser::suite
