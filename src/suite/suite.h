// Benchmark suite registry: maps each paper benchmark to its Verilog file,
// top module, stimulus generator, and campaign budget (cycle count and
// fault-sample size chosen to mirror Table II's scale).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "rtl/design.h"
#include "sim/stimulus.h"

namespace eraser::suite {

struct Benchmark {
    std::string name;          // registry key, e.g. "alu"
    std::string display;       // paper name, e.g. "ALU (64)"
    std::string file;          // under benchmarks/
    std::string top;           // top module
    uint32_t cycles;           // full campaign length (Fig. 6 / Table II)
    uint32_t test_cycles;      // shortened length for unit/CI runs
    uint32_t fault_sample;     // sampled fault-list size (0 = all faults)
};

/// All benchmarks in paper order.
[[nodiscard]] const std::vector<Benchmark>& registry();

/// Lookup by name; throws EraserError when unknown.
[[nodiscard]] const Benchmark& find_benchmark(const std::string& name);

/// Compiles the benchmark's Verilog from ERASER_BENCHMARK_DIR.
[[nodiscard]] std::unique_ptr<rtl::Design> load_design(const Benchmark& b);

/// Builds the benchmark's deterministic stimulus for `cycles` cycles.
[[nodiscard]] std::unique_ptr<sim::Stimulus> make_stimulus(const Benchmark& b,
                                                           uint32_t cycles);

}  // namespace eraser::suite
