// Benchmark suite registry: maps each paper benchmark to its Verilog file,
// top module, stimulus generator, and campaign budget (cycle count and
// fault-sample size chosen to mirror Table II's scale).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "eraser/remote.h"
#include "rtl/design.h"
#include "sim/stimulus.h"
#include "suite/random_stimulus.h"

namespace eraser::suite {

struct Benchmark {
    std::string name;          // registry key, e.g. "alu"
    std::string display;       // paper name, e.g. "ALU (64)"
    std::string file;          // under benchmarks/
    std::string top;           // top module
    uint32_t cycles;           // full campaign length (Fig. 6 / Table II)
    uint32_t test_cycles;      // shortened length for unit/CI runs
    uint32_t fault_sample;     // sampled fault-list size (0 = all faults)
};

/// All benchmarks in paper order.
[[nodiscard]] const std::vector<Benchmark>& registry();

/// Lookup by name; throws EraserError when unknown.
[[nodiscard]] const Benchmark& find_benchmark(const std::string& name);

/// Compiles the benchmark's Verilog from ERASER_BENCHMARK_DIR.
[[nodiscard]] std::unique_ptr<rtl::Design> load_design(const Benchmark& b);

/// Builds the benchmark's deterministic stimulus for `cycles` cycles.
[[nodiscard]] std::unique_ptr<sim::Stimulus> make_stimulus(const Benchmark& b,
                                                           uint32_t cycles);

// --- distributed campaigns (eraser/remote.h) --------------------------------

/// The benchmark's Verilog source + top as a shippable DesignSpec (reads
/// the file from ERASER_BENCHMARK_DIR; throws EraserError on I/O failure).
[[nodiscard]] core::DesignSpec design_spec(const Benchmark& b);

/// Wire form of make_stimulus(b, cycles): a "suite" StimulusSpec any
/// process that called register_remote_stimuli() can rebuild.
[[nodiscard]] core::StimulusSpec remote_stimulus(const Benchmark& b,
                                                 uint32_t cycles);

/// Wire form of a RandomStimulus configuration (kind "random").
[[nodiscard]] core::StimulusSpec remote_stimulus(
    const RandomStimulus::Config& cfg);

/// Wire form of an EpochRandomStimulus (kind "epoch_random"): the same
/// configuration carved into `num_epochs` independent epochs — the suite's
/// stock stimulus for 2D (fault, epoch) campaigns.
[[nodiscard]] core::StimulusSpec remote_stimulus(
    const RandomStimulus::Config& cfg, uint32_t num_epochs);

/// Registers the suite's stimulus kinds ("suite", "random",
/// "epoch_random") with the process-wide registry. Idempotent; every
/// worker binary and every client submitting suite StimulusSpecs must call
/// it once.
void register_remote_stimuli();

}  // namespace eraser::suite
