// RandomStimulus: a generic deterministic testbench — reset protocol followed
// by seeded random input vectors. Every benchmark's stimulus builds on this
// (with per-design constants/overrides); tests and benches share it so all
// engines replay identical input sequences.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "sim/stimulus.h"
#include "util/prng.h"

namespace eraser::suite {

class RandomStimulus : public sim::Stimulus {
  public:
    struct Config {
        std::string clock = "clk";
        /// Reset port ("" = none), asserted for the first `reset_cycles`.
        std::string reset;
        bool reset_active_high = true;
        uint32_t reset_cycles = 2;
        uint32_t cycles = 100;
        uint64_t seed = 1;
        /// Inputs pinned to fixed values for the whole run.
        std::vector<std::pair<std::string, uint64_t>> constants;
        /// Inputs toggled only every N cycles (0/absent = every cycle);
        /// useful for slow handshake-style ports.
        std::vector<std::pair<std::string, uint32_t>> slow_inputs;
    };

    explicit RandomStimulus(Config config) : config_(std::move(config)) {}

    void bind(const rtl::Design& design) override {
        drives_.clear();
        reset_sig_ = rtl::kInvalidId;
        for (rtl::SignalId in : design.inputs) {
            const rtl::Signal& s = design.signals[in];
            if (s.name == config_.clock) continue;
            if (s.name == config_.reset) {
                reset_sig_ = in;
                continue;
            }
            Drive d;
            d.sig = in;
            d.width = s.width;
            for (const auto& [name, value] : config_.constants) {
                if (name == s.name) {
                    d.constant = true;
                    d.value = value;
                }
            }
            for (const auto& [name, every] : config_.slow_inputs) {
                if (name == s.name) d.every = every;
            }
            drives_.push_back(d);
        }
    }

    [[nodiscard]] std::string clock_name() const override {
        return config_.clock;
    }
    [[nodiscard]] uint32_t num_cycles() const override {
        return config_.cycles;
    }

    void initialize(sim::DriveHandle&) override { rng_ = Prng(config_.seed); }

    void apply(uint32_t cycle, sim::DriveHandle& h) override {
        if (reset_sig_ != rtl::kInvalidId) {
            const bool in_reset = cycle < config_.reset_cycles;
            h.set_input(reset_sig_,
                        in_reset == config_.reset_active_high ? 1 : 0);
        }
        for (const Drive& d : drives_) {
            if (d.constant) {
                h.set_input(d.sig, d.value);
                continue;
            }
            if (d.every > 1 && cycle % d.every != 0) {
                rng_.next();   // keep the stream aligned across engines
                continue;
            }
            h.set_input(d.sig, rng_.bits(d.width));
        }
    }

  protected:
    struct Drive {
        rtl::SignalId sig = rtl::kInvalidId;
        unsigned width = 1;
        bool constant = false;
        uint64_t value = 0;
        uint32_t every = 0;
    };

    Config config_;
    Prng rng_{1};
    rtl::SignalId reset_sig_ = rtl::kInvalidId;
    std::vector<Drive> drives_;
};

}  // namespace eraser::suite
