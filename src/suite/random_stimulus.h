// RandomStimulus: a generic deterministic testbench — reset protocol followed
// by seeded random input vectors. Every benchmark's stimulus builds on this
// (with per-design constants/overrides); tests and benches share it so all
// engines replay identical input sequences.
#pragma once

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "sim/stimulus.h"
#include "util/prng.h"

namespace eraser::suite {

class RandomStimulus : public sim::Stimulus {
  public:
    struct Config {
        std::string clock = "clk";
        /// Reset port ("" = none), asserted for the first `reset_cycles`.
        std::string reset;
        bool reset_active_high = true;
        uint32_t reset_cycles = 2;
        uint32_t cycles = 100;
        uint64_t seed = 1;
        /// Inputs pinned to fixed values for the whole run.
        std::vector<std::pair<std::string, uint64_t>> constants;
        /// Inputs toggled only every N cycles (0/absent = every cycle);
        /// useful for slow handshake-style ports.
        std::vector<std::pair<std::string, uint32_t>> slow_inputs;
    };

    explicit RandomStimulus(Config config) : config_(std::move(config)) {}

    void bind(const rtl::Design& design) override {
        drives_.clear();
        reset_sig_ = rtl::kInvalidId;
        for (rtl::SignalId in : design.inputs) {
            const rtl::Signal& s = design.signals[in];
            if (s.name == config_.clock) continue;
            if (s.name == config_.reset) {
                reset_sig_ = in;
                continue;
            }
            Drive d;
            d.sig = in;
            d.width = s.width;
            for (const auto& [name, value] : config_.constants) {
                if (name == s.name) {
                    d.constant = true;
                    d.value = value;
                }
            }
            for (const auto& [name, every] : config_.slow_inputs) {
                if (name == s.name) d.every = every;
            }
            drives_.push_back(d);
        }
    }

    [[nodiscard]] std::string clock_name() const override {
        return config_.clock;
    }
    [[nodiscard]] uint32_t num_cycles() const override {
        return config_.cycles;
    }

    void initialize(sim::DriveHandle&) override { rng_ = Prng(config_.seed); }

    void apply(uint32_t cycle, sim::DriveHandle& h) override {
        if (reset_sig_ != rtl::kInvalidId) {
            const bool in_reset = cycle < config_.reset_cycles;
            h.set_input(reset_sig_,
                        in_reset == config_.reset_active_high ? 1 : 0);
        }
        for (const Drive& d : drives_) {
            if (d.constant) {
                h.set_input(d.sig, d.value);
                continue;
            }
            if (d.every > 1 && cycle % d.every != 0) {
                rng_.next();   // keep the stream aligned across engines
                continue;
            }
            h.set_input(d.sig, rng_.bits(d.width));
        }
    }

  protected:
    struct Drive {
        rtl::SignalId sig = rtl::kInvalidId;
        unsigned width = 1;
        bool constant = false;
        uint64_t value = 0;
        uint32_t every = 0;
    };

    Config config_;
    Prng rng_{1};
    rtl::SignalId reset_sig_ = rtl::kInvalidId;
    std::vector<Drive> drives_;
};

/// RandomStimulus carved into E independent epochs — the suite's stock
/// 2D-parallelism testbench. Each epoch is a self-contained mini-run: the
/// reset protocol replays at the epoch start and the random stream reseeds
/// from (seed, epoch), so an epoch's drive sequence depends only on the
/// epoch index and the offset within it — never on earlier epochs. That is
/// exactly the independence num_epochs() > 1 declares, which lets the
/// scheduler run any epoch window on any worker and OR the verdicts.
class EpochRandomStimulus final : public RandomStimulus {
  public:
    EpochRandomStimulus(Config config, uint32_t num_epochs)
        : RandomStimulus(std::move(config)) {
        // An epoch needs at least one cycle; surplus epochs would only
        // produce empty passes.
        epochs_ = std::max<uint32_t>(
            1, std::min(num_epochs, config_.cycles));
    }

    [[nodiscard]] uint32_t num_epochs() const override { return epochs_; }
    [[nodiscard]] std::pair<uint32_t, uint32_t> epoch_range(
        uint32_t epoch) const override {
        return {boundary(epoch), boundary(epoch + 1)};
    }

    void apply(uint32_t cycle, sim::DriveHandle& h) override {
        const uint32_t e = epoch_of(cycle);
        const uint32_t start = boundary(e);
        if (cycle == start) {
            // Every engine pass begins at an epoch start (the engine runs
            // epochs as separate reset-to-end passes), so this reseed is
            // hit before any in-epoch cycle — window or full layout alike.
            rng_ = Prng(config_.seed ^
                        (0x9E3779B97F4A7C15ULL * (e + 1)));
        }
        const uint32_t local = cycle - start;
        if (reset_sig_ != rtl::kInvalidId) {
            const bool in_reset = local < config_.reset_cycles;
            h.set_input(reset_sig_,
                        in_reset == config_.reset_active_high ? 1 : 0);
        }
        for (const Drive& d : drives_) {
            if (d.constant) {
                h.set_input(d.sig, d.value);
                continue;
            }
            if (d.every > 1 && local % d.every != 0) {
                rng_.next();   // keep the stream aligned across engines
                continue;
            }
            h.set_input(d.sig, rng_.bits(d.width));
        }
    }

  private:
    /// Epoch boundaries floor(e * C / E): contiguous, exhaustive, and
    /// off-by-at-most-one balanced for any C and E.
    [[nodiscard]] uint32_t boundary(uint32_t epoch) const {
        return static_cast<uint32_t>(static_cast<uint64_t>(epoch) *
                                     config_.cycles / epochs_);
    }
    /// Inverse of boundary(): the epoch containing absolute cycle c.
    [[nodiscard]] uint32_t epoch_of(uint32_t cycle) const {
        return static_cast<uint32_t>(
            (static_cast<uint64_t>(cycle) * epochs_ + epochs_ - 1) /
            config_.cycles);
    }

    uint32_t epochs_ = 1;
};

}  // namespace eraser::suite
