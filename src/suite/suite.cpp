#include "suite/suite.h"

#include <fstream>
#include <mutex>
#include <sstream>

#include "frontend/compile.h"
#include "suite/asm.h"
#include "suite/random_stimulus.h"
#include "util/diagnostics.h"
#include "util/wire.h"

namespace eraser::suite {

namespace {

// ---------------------------------------------------------------------------
// SHA-256 stimulus: load 16 words, pulse init (first) / next (later blocks),
// wait for the 64-round FSM, repeat with fresh data.
// ---------------------------------------------------------------------------
class Sha256Stimulus final : public sim::Stimulus {
  public:
    Sha256Stimulus(uint32_t cycles, uint64_t seed)
        : cycles_(cycles), seed_(seed) {}

    void bind(const rtl::Design& design) override {
        rst_ = design.signal_id("rst");
        init_ = design.signal_id("init");
        next_ = design.signal_id("next");
        we_ = design.signal_id("block_we");
        addr_ = design.signal_id("block_addr");
        data_ = design.signal_id("block_data");
    }
    [[nodiscard]] uint32_t num_cycles() const override { return cycles_; }
    void initialize(sim::DriveHandle&) override {
        rng_ = Prng(seed_);
        blocks_done_ = 0;
    }
    void apply(uint32_t cycle, sim::DriveHandle& h) override {
        h.set_input(rst_, cycle < 2 ? 1 : 0);
        h.set_input(init_, 0);
        h.set_input(next_, 0);
        h.set_input(we_, 0);
        h.set_input(addr_, 0);
        h.set_input(data_, 0);
        if (cycle < 2) return;
        // Period: 16 load cycles + 1 start + 66 rounds + 3 idle = 86.
        const uint32_t phase = (cycle - 2) % 86;
        if (phase < 16) {
            h.set_input(we_, 1);
            h.set_input(addr_, phase);
            h.set_input(data_, rng_.bits(32));
        } else if (phase == 16) {
            if (blocks_done_ == 0) {
                h.set_input(init_, 1);
            } else {
                h.set_input(next_, 1);
            }
            ++blocks_done_;
        }
    }

  private:
    uint32_t cycles_;
    uint64_t seed_;
    Prng rng_{1};
    uint32_t blocks_done_ = 0;
    rtl::SignalId rst_{}, init_{}, next_{}, we_{}, addr_{}, data_{};
};

// ---------------------------------------------------------------------------
// APB stimulus: issue a request every few cycles; addresses biased to the
// mapped registers with occasional decode errors.
// ---------------------------------------------------------------------------
class ApbStimulus final : public sim::Stimulus {
  public:
    ApbStimulus(uint32_t cycles, uint64_t seed)
        : cycles_(cycles), seed_(seed) {}

    void bind(const rtl::Design& design) override {
        rstn_ = design.signal_id("rstn");
        req_ = design.signal_id("req");
        wr_ = design.signal_id("wr");
        addr_ = design.signal_id("addr");
        wdata_ = design.signal_id("wdata");
    }
    [[nodiscard]] uint32_t num_cycles() const override { return cycles_; }
    void initialize(sim::DriveHandle&) override { rng_ = Prng(seed_); }
    void apply(uint32_t cycle, sim::DriveHandle& h) override {
        h.set_input(rstn_, cycle < 2 ? 0 : 1);
        const bool fire = cycle >= 2 && cycle % 6 == 2;
        h.set_input(req_, fire ? 1 : 0);
        if (fire) {
            h.set_input(wr_, rng_.chance(1, 2) ? 1 : 0);
            // 80%: mapped registers 0/4/8/C; 20%: random (decode error).
            const uint64_t addr = rng_.chance(4, 5) ? (rng_.below(4) * 4)
                                                    : rng_.bits(8);
            h.set_input(addr_, addr);
            h.set_input(wdata_, rng_.bits(32));
        }
    }

  private:
    uint32_t cycles_;
    uint64_t seed_;
    Prng rng_{1};
    rtl::SignalId rstn_{}, req_{}, wr_{}, addr_{}, wdata_{};
};

// ---------------------------------------------------------------------------
// CPU stimulus: backdoor-load a program, release reset, let it run.
// ---------------------------------------------------------------------------
class CpuStimulus final : public sim::Stimulus {
  public:
    CpuStimulus(uint32_t cycles, std::vector<uint64_t> program)
        : cycles_(cycles), program_(std::move(program)) {}

    void bind(const rtl::Design& design) override {
        rst_ = design.signal_id("rst");
        imem_ = design.find_array("imem");
        if (imem_ == rtl::kInvalidId) {
            throw EraserError("CPU benchmark has no imem array");
        }
    }
    [[nodiscard]] uint32_t num_cycles() const override { return cycles_; }
    void initialize(sim::DriveHandle& h) override {
        h.load_array(imem_, program_);
    }
    void apply(uint32_t cycle, sim::DriveHandle& h) override {
        h.set_input(rst_, cycle < 2 ? 1 : 0);
    }

  private:
    uint32_t cycles_;
    std::vector<uint64_t> program_;
    rtl::SignalId rst_{};
    rtl::ArrayId imem_{};
};

// ---------------------------------------------------------------------------
// Convolution stimulus: load a 3x3 kernel, then stream pixels.
// ---------------------------------------------------------------------------
class ConvStimulus final : public sim::Stimulus {
  public:
    ConvStimulus(uint32_t cycles, uint64_t seed)
        : cycles_(cycles), seed_(seed) {}

    void bind(const rtl::Design& design) override {
        rst_ = design.signal_id("rst");
        kwe_ = design.signal_id("kernel_we");
        kaddr_ = design.signal_id("kernel_addr");
        kdata_ = design.signal_id("kernel_data");
        pvalid_ = design.signal_id("pixel_valid");
        pixel_ = design.signal_id("pixel");
        bias_ = design.signal_id("bias");
    }
    [[nodiscard]] uint32_t num_cycles() const override { return cycles_; }
    void initialize(sim::DriveHandle&) override { rng_ = Prng(seed_); }
    void apply(uint32_t cycle, sim::DriveHandle& h) override {
        h.set_input(rst_, cycle < 2 ? 1 : 0);
        h.set_input(kwe_, 0);
        h.set_input(kaddr_, 0);
        h.set_input(kdata_, 0);
        h.set_input(pvalid_, 0);
        h.set_input(pixel_, 0);
        h.set_input(bias_, 7);
        if (cycle < 2) return;
        const uint32_t t = cycle - 2;
        if (t < 9) {
            h.set_input(kwe_, 1);
            h.set_input(kaddr_, t);
            h.set_input(kdata_, rng_.bits(8));
        } else {
            h.set_input(pvalid_, 1);
            h.set_input(pixel_, rng_.bits(8));
        }
    }

  private:
    uint32_t cycles_;
    uint64_t seed_;
    Prng rng_{1};
    rtl::SignalId rst_{}, kwe_{}, kaddr_{}, kdata_{}, pvalid_{}, pixel_{},
        bias_{};
};

// ---------------------------------------------------------------------------
// Test programs.
// ---------------------------------------------------------------------------
std::vector<uint64_t> rv32_program() {
    using namespace rv32;
    std::vector<uint64_t> p = {
        addi(1, 0, 0),        //  0: a = 0
        addi(2, 0, 1),        //  4: b = 1
        addi(6, 0, 256),      //  8: store base (byte address)
        addi(4, 0, 12),       // 12: n = 12
        addi(3, 0, 0),        // 16: i = 0
        // loop:
        add(5, 1, 2),         // 20: t = a + b
        add(1, 2, 0),         // 24: a = b
        add(2, 5, 0),         // 28: b = t
        sw(5, 6, 0),          // 32: mem[base] = t
        lw(7, 6, 0),          // 36: r = mem[base]
        xor_(10, 7, 3),       // 40: dbg churn
        addi(6, 6, 4),        // 44: base += 4
        addi(3, 3, 1),        // 48: i += 1
        blt(3, 4, -32),       // 52: if (i < n) goto loop(20)
        // epilogue
        slli(8, 5, 3),        // 56
        srli(9, 5, 2),        // 60
        sub(10, 8, 9),        // 64
        lui(11, 0x12345),     // 68
        or_(10, 10, 11),      // 72: x10 = 0x1234570E
        jal(0, 0),            // 76: spin
    };
    return p;
}

std::vector<uint64_t> mips_program() {
    using namespace mips;
    std::vector<uint64_t> p = {
        addiu(1, 0, 1),       //  0: i = 1
        addiu(2, 0, 0),       //  1: sum = 0
        addiu(3, 0, 10),      //  2: n = 10
        nop(), nop(),         //  3,4
        // loop (word 5):
        addu(2, 2, 1),        //  5: sum += i
        nop(), nop(), nop(),  //  6-8
        addiu(1, 1, 1),       //  9: i += 1
        nop(), nop(), nop(),  // 10-12
        sltu(4, 3, 1),        // 13: done = n < i
        nop(), nop(), nop(),  // 14-16
        beq(4, 0, -13),       // 17: if (!done) goto loop(5): 5-(17+1)
        nop(), nop(),         // 18,19 (squashed on taken)
        sw(2, 64, 0),         // 20
        lw(5, 64, 0),         // 21
        nop(), nop(), nop(),  // 22-24
        or_(2, 5, 0),         // 25: v0 = sum (55)
        j(27),                // 26: spin at 27
        j(27),                // 27: spin
    };
    return p;
}

RandomStimulus::Config base_random(uint32_t cycles, const char* reset,
                                   bool active_high, uint64_t seed) {
    RandomStimulus::Config cfg;
    cfg.reset = reset;
    cfg.reset_active_high = active_high;
    cfg.cycles = cycles;
    cfg.seed = seed;
    return cfg;
}

}  // namespace

const std::vector<Benchmark>& registry() {
    static const std::vector<Benchmark> kBenchmarks = {
        //  name          display        file            top          cycles test  sample
        {"alu",        "ALU",        "alu.v",        "alu",        1500, 200, 1182},
        {"fpu",        "FPU",        "fpu.v",        "fpu",        3000, 250, 1256},
        {"sha256_hv",  "SHA256_HV",  "sha256_hv.v",  "sha256_hv",  2600, 350, 660},
        {"apb",        "APB",        "apb.v",        "apb",        1200, 200, 98},
        {"sodor",      "Sodor Core", "sodor.v",      "sodor",      1000, 200, 1252},
        {"riscv_mini", "RISCV Mini", "riscv_mini.v", "riscv_mini", 1500, 250, 526},
        {"picorv32",   "PicoRV32",   "picorv32.v",   "picorv32",   2000, 300, 1040},
        {"conv_acc",   "Conv_acc",   "conv_acc.v",   "conv_acc",   1800, 250, 1032},
        {"sha256_c2v", "SHA256_C2V", "sha256_c2v.v", "sha256_c2v", 2600, 350, 2174},
        {"mips_cpu",   "MIPS CPU",   "mips_cpu.v",   "mips_cpu",   1200, 250, 1346},
    };
    return kBenchmarks;
}

const Benchmark& find_benchmark(const std::string& name) {
    for (const Benchmark& b : registry()) {
        if (b.name == name) return b;
    }
    throw EraserError("unknown benchmark '" + name + "'");
}

std::unique_ptr<rtl::Design> load_design(const Benchmark& b) {
    return frontend::compile_file(std::string(ERASER_BENCHMARK_DIR) + "/" +
                                      b.file,
                                  b.top);
}

std::unique_ptr<sim::Stimulus> make_stimulus(const Benchmark& b,
                                             uint32_t cycles) {
    constexpr uint64_t seed = 0x5EED2025;
    if (b.name == "alu") {
        return std::make_unique<RandomStimulus>(
            base_random(cycles, "rst", true, seed));
    }
    if (b.name == "fpu") {
        auto cfg = base_random(cycles, "rst", true, seed);
        cfg.constants.emplace_back("valid_in", 1);
        return std::make_unique<RandomStimulus>(cfg);
    }
    if (b.name == "sha256_hv" || b.name == "sha256_c2v") {
        return std::make_unique<Sha256Stimulus>(cycles, seed);
    }
    if (b.name == "apb") return std::make_unique<ApbStimulus>(cycles, seed);
    if (b.name == "sodor" || b.name == "riscv_mini" ||
        b.name == "picorv32") {
        return std::make_unique<CpuStimulus>(cycles, rv32_program());
    }
    if (b.name == "conv_acc") {
        return std::make_unique<ConvStimulus>(cycles, seed);
    }
    if (b.name == "mips_cpu") {
        return std::make_unique<CpuStimulus>(cycles, mips_program());
    }
    throw EraserError("no stimulus for benchmark '" + b.name + "'");
}

// --- distributed campaigns ---------------------------------------------------

core::DesignSpec design_spec(const Benchmark& b) {
    const std::string path =
        std::string(ERASER_BENCHMARK_DIR) + "/" + b.file;
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        throw EraserError("cannot read benchmark source '" + path + "'");
    }
    std::ostringstream text;
    text << in.rdbuf();
    return core::DesignSpec{text.str(), b.top};
}

namespace {
std::vector<uint8_t> payload_of(const util::WireWriter& w) {
    const std::span<const uint8_t> bytes = w.bytes();
    return std::vector<uint8_t>(bytes.begin(), bytes.end());
}

// The "random" and "epoch_random" kinds share the Config codec; the
// epoched kind just appends its epoch count.
void encode_random(util::WireWriter& w, const RandomStimulus::Config& cfg) {
    w.str(cfg.clock);
    w.str(cfg.reset);
    w.u8(cfg.reset_active_high ? 1 : 0);
    w.u32(cfg.reset_cycles);
    w.u32(cfg.cycles);
    w.u64(cfg.seed);
    w.varint(cfg.constants.size());
    for (const auto& [name, value] : cfg.constants) {
        w.str(name);
        w.u64(value);
    }
    w.varint(cfg.slow_inputs.size());
    for (const auto& [name, period] : cfg.slow_inputs) {
        w.str(name);
        w.u32(period);
    }
}

RandomStimulus::Config decode_random(util::WireReader& r) {
    RandomStimulus::Config cfg;
    cfg.clock = r.str();
    cfg.reset = r.str();
    cfg.reset_active_high = r.u8() != 0;
    cfg.reset_cycles = r.u32();
    cfg.cycles = r.u32();
    cfg.seed = r.u64();
    const uint64_t n_const = r.varint();
    for (uint64_t i = 0; i < n_const; ++i) {
        std::string name = r.str();
        const uint64_t value = r.u64();
        cfg.constants.emplace_back(std::move(name), value);
    }
    const uint64_t n_slow = r.varint();
    for (uint64_t i = 0; i < n_slow; ++i) {
        std::string name = r.str();
        const uint32_t period = r.u32();
        cfg.slow_inputs.emplace_back(std::move(name), period);
    }
    return cfg;
}
}  // namespace

core::StimulusSpec remote_stimulus(const Benchmark& b, uint32_t cycles) {
    util::WireWriter w;
    w.str(b.name);
    w.u32(cycles);
    return core::StimulusSpec{"suite", payload_of(w)};
}

core::StimulusSpec remote_stimulus(const RandomStimulus::Config& cfg) {
    util::WireWriter w;
    encode_random(w, cfg);
    return core::StimulusSpec{"random", payload_of(w)};
}

core::StimulusSpec remote_stimulus(const RandomStimulus::Config& cfg,
                                   uint32_t num_epochs) {
    util::WireWriter w;
    encode_random(w, cfg);
    w.u32(num_epochs);
    return core::StimulusSpec{"epoch_random", payload_of(w)};
}

void register_remote_stimuli() {
    static std::once_flag once;
    std::call_once(once, [] {
        core::register_stimulus_kind(
            "suite",
            [](std::span<const uint8_t> payload)
                -> std::unique_ptr<sim::Stimulus> {
                util::WireReader r(payload);
                const std::string name = r.str();
                const uint32_t cycles = r.u32();
                r.expect_end();
                return make_stimulus(find_benchmark(name), cycles);
            });
        core::register_stimulus_kind(
            "random",
            [](std::span<const uint8_t> payload)
                -> std::unique_ptr<sim::Stimulus> {
                util::WireReader r(payload);
                RandomStimulus::Config cfg = decode_random(r);
                r.expect_end();
                return std::make_unique<RandomStimulus>(cfg);
            });
        core::register_stimulus_kind(
            "epoch_random",
            [](std::span<const uint8_t> payload)
                -> std::unique_ptr<sim::Stimulus> {
                util::WireReader r(payload);
                RandomStimulus::Config cfg = decode_random(r);
                const uint32_t epochs = r.u32();
                r.expect_end();
                return std::make_unique<EpochRandomStimulus>(cfg, epochs);
            });
    });
}

}  // namespace eraser::suite
