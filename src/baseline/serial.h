// Serial fault simulation baselines: one full re-simulation per fault with
// the fault site forced, detection by comparing primary outputs against the
// recorded good trace each cycle.
//
//  * SchedulingMode::EventDriven  ≈ the paper's IFsim (Icarus + force)
//  * SchedulingMode::Levelized    ≈ the paper's VFsim (Verilator-based)
//
// The serial event-driven run is also the *oracle*: the concurrent engine's
// coverage must match it exactly (integration-tested per benchmark).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fault/fault.h"
#include "rtl/design.h"
#include "sim/engine.h"
#include "sim/stimulus.h"

namespace eraser::core {
class CompiledDesign;
}  // namespace eraser::core

namespace eraser::baseline {

struct SerialOptions {
    sim::SchedulingMode mode = sim::SchedulingMode::EventDriven;
    /// Behavioral executor (compiled bytecode vs tree-walking oracle).
    sim::InterpMode interp = sim::InterpMode::Bytecode;
    /// Stop simulating a fault at its first detection (standard fault
    /// dropping; applied identically in all engines).
    bool drop_on_detect = true;
};

/// Primary-output values strobed once per cycle of the good run.
struct GoodTrace {
    std::vector<uint64_t> flat;   // cycle-major, outputs-in-declaration-order
    size_t outputs_per_cycle = 0;
    uint32_t cycles = 0;

    [[nodiscard]] std::span<const uint64_t> cycle(uint32_t c) const {
        return {flat.data() + static_cast<size_t>(c) * outputs_per_cycle,
                outputs_per_cycle};
    }
};

struct SerialResult {
    std::vector<bool> detected;      // indexed by fault id
    uint32_t num_detected = 0;
    double coverage_percent = 0.0;
    double seconds = 0.0;            // wall time of the whole campaign
    uint64_t total_cycles = 0;       // cycles simulated across all runs
};

/// Runs the fault-free simulation once and records the output strobes.
[[nodiscard]] GoodTrace record_good_trace(
    const rtl::Design& design, sim::Stimulus& stim, sim::SchedulingMode mode,
    sim::InterpMode interp = sim::InterpMode::Bytecode);

/// Runs the full serial campaign (good run + one forced run per fault).
/// Compiles behavior bytecode per call; the CompiledDesign overload reuses
/// the compile-once artifact instead.
[[nodiscard]] SerialResult run_serial_campaign(
    const rtl::Design& design, std::span<const fault::Fault> faults,
    sim::Stimulus& stim, const SerialOptions& opts);

/// Compile-once variants: the engines run on the artifact's shared bytecode
/// programs, so constructing them performs no compilation (the Session-API
/// flow; bench sweeps share one artifact across all engines).
[[nodiscard]] GoodTrace record_good_trace(
    const core::CompiledDesign& compiled, sim::Stimulus& stim,
    sim::SchedulingMode mode,
    sim::InterpMode interp = sim::InterpMode::Bytecode);

[[nodiscard]] SerialResult run_serial_campaign(
    const core::CompiledDesign& compiled,
    std::span<const fault::Fault> faults, sim::Stimulus& stim,
    const SerialOptions& opts);

}  // namespace eraser::baseline
