#include "baseline/serial.h"

#include "eraser/compiled_design.h"
#include "util/timer.h"

namespace eraser::baseline {

using rtl::Design;
using sim::SimEngine;

namespace {

/// DriveHandle over a SimEngine.
class EngineHandle final : public sim::DriveHandle {
  public:
    explicit EngineHandle(SimEngine& eng) : eng_(eng) {}
    void set_input(rtl::SignalId sig, uint64_t value) override {
        eng_.poke(sig, value);
    }
    void load_array(rtl::ArrayId arr,
                    std::span<const uint64_t> words) override {
        eng_.load_array(arr, words);
    }

  private:
    SimEngine& eng_;
};

/// Shared implementation; `precompiled` is null on the per-call-compiling
/// legacy path and the artifact's programs on the compile-once path.
GoodTrace record_good_trace_impl(const Design& design, sim::Stimulus& stim,
                                 sim::SchedulingMode mode,
                                 sim::InterpMode interp,
                                 const sim::SharedPrograms* precompiled) {
    SimEngine eng(design, mode, interp, precompiled);
    EngineHandle handle(eng);
    stim.bind(design);
    const rtl::SignalId clk = design.signal_id(stim.clock_name());

    eng.reset();
    stim.initialize(handle);
    GoodTrace trace;
    trace.outputs_per_cycle = design.outputs.size();
    trace.cycles = stim.num_cycles();
    trace.flat.reserve(static_cast<size_t>(trace.cycles) *
                       trace.outputs_per_cycle);
    for (uint32_t c = 0; c < trace.cycles; ++c) {
        stim.apply(c, handle);
        eng.tick(clk);
        for (rtl::SignalId out : design.outputs) {
            trace.flat.push_back(eng.peek(out).bits());
        }
    }
    return trace;
}

SerialResult run_serial_campaign_impl(
    const Design& design, std::span<const fault::Fault> faults,
    sim::Stimulus& stim, const SerialOptions& opts,
    const sim::SharedPrograms* precompiled) {
    Stopwatch watch;
    const GoodTrace trace = record_good_trace_impl(
        design, stim, opts.mode, opts.interp, precompiled);

    SerialResult result;
    result.detected.assign(faults.size(), false);
    result.total_cycles = trace.cycles;

    SimEngine eng(design, opts.mode, opts.interp, precompiled);
    EngineHandle handle(eng);
    stim.bind(design);
    const rtl::SignalId clk = design.signal_id(stim.clock_name());

    for (size_t f = 0; f < faults.size(); ++f) {
        eng.clear_forces();
        eng.force_bits(faults[f].sig, faults[f].mask(), faults[f].bits());
        eng.reset();
        stim.initialize(handle);
        for (uint32_t c = 0; c < trace.cycles; ++c) {
            stim.apply(c, handle);
            eng.tick(clk);
            ++result.total_cycles;
            const std::span<const uint64_t> expected = trace.cycle(c);
            bool mismatch = false;
            for (size_t o = 0; o < design.outputs.size(); ++o) {
                if (eng.peek(design.outputs[o]).bits() != expected[o]) {
                    mismatch = true;
                    break;
                }
            }
            if (mismatch) {
                if (!result.detected[f]) {
                    result.detected[f] = true;
                    ++result.num_detected;
                }
                if (opts.drop_on_detect) break;
            }
        }
    }
    result.coverage_percent =
        faults.empty() ? 0.0
                       : 100.0 * static_cast<double>(result.num_detected) /
                             static_cast<double>(faults.size());
    result.seconds = watch.seconds();
    return result;
}

}  // namespace

GoodTrace record_good_trace(const Design& design, sim::Stimulus& stim,
                            sim::SchedulingMode mode, sim::InterpMode interp) {
    return record_good_trace_impl(design, stim, mode, interp, nullptr);
}

SerialResult run_serial_campaign(const Design& design,
                                 std::span<const fault::Fault> faults,
                                 sim::Stimulus& stim,
                                 const SerialOptions& opts) {
    return run_serial_campaign_impl(design, faults, stim, opts, nullptr);
}

GoodTrace record_good_trace(const core::CompiledDesign& compiled,
                            sim::Stimulus& stim, sim::SchedulingMode mode,
                            sim::InterpMode interp) {
    return record_good_trace_impl(compiled.design(), stim, mode, interp,
                                  &compiled.programs());
}

SerialResult run_serial_campaign(const core::CompiledDesign& compiled,
                                 std::span<const fault::Fault> faults,
                                 sim::Stimulus& stim,
                                 const SerialOptions& opts) {
    return run_serial_campaign_impl(compiled.design(), faults, stim, opts,
                                    &compiled.programs());
}

}  // namespace eraser::baseline
