#include "sim/engine.h"

#include <algorithm>
#include <cassert>

#include "sim/interp.h"
#include "util/diagnostics.h"

namespace eraser::sim {

using rtl::ArrayId;
using rtl::BehavNode;
using rtl::Design;
using rtl::EdgeKind;
using rtl::RtlNode;
using rtl::SignalId;

namespace {
constexpr int kMaxSettleRounds = 4096;
}

/// Activation-scoped evaluation context for the good network: blocking
/// writes land in a local overlay (visible to subsequent reads of the same
/// activation) and commit to the engine when the activation ends;
/// nonblocking writes append to the engine's NBA buffers.
class GoodActivationCtx final : public EvalContext {
  public:
    explicit GoodActivationCtx(SimEngine& eng) : eng_(eng) {}

    Value read_signal(SignalId sig) override {
        for (auto it = sig_overlay_.rbegin(); it != sig_overlay_.rend();
             ++it) {
            if (it->first == sig) return it->second;
        }
        return eng_.values_[sig];
    }
    Value read_array(ArrayId arr, uint64_t idx) override {
        for (auto it = arr_overlay_.rbegin(); it != arr_overlay_.rend();
             ++it) {
            if (std::get<0>(*it) == arr && std::get<1>(*it) == idx) {
                return Value(std::get<2>(*it), eng_.design_.arrays[arr].width);
            }
        }
        return read_array_unwritten(arr, idx);
    }
    Value read_signal_unwritten(SignalId sig) override {
        return eng_.values_[sig];
    }
    Value read_array_unwritten(ArrayId arr, uint64_t idx) override {
        const auto& storage = eng_.arrays_[arr];
        const uint64_t raw = idx < storage.size() ? storage[idx] : 0;
        return Value(raw, eng_.design_.arrays[arr].width);
    }
    void write_signal(SignalId sig, Value v, bool nonblocking) override {
        if (nonblocking) {
            eng_.nba_sigs_.emplace_back(sig, v);
        } else {
            for (auto& entry : sig_overlay_) {
                if (entry.first == sig) {
                    entry.second = v;
                    return;
                }
            }
            sig_overlay_.emplace_back(sig, v);
        }
    }
    void write_array(ArrayId arr, uint64_t idx, Value v,
                     bool nonblocking) override {
        if (nonblocking) {
            eng_.nba_arrs_.emplace_back(arr, idx, v.bits());
        } else {
            for (auto& entry : arr_overlay_) {
                if (std::get<0>(entry) == arr && std::get<1>(entry) == idx) {
                    std::get<2>(entry) = v.bits();
                    return;
                }
            }
            arr_overlay_.emplace_back(arr, idx, v.bits());
        }
    }

    Value read_for_nba_update(SignalId sig) override {
        for (auto it = eng_.nba_sigs_.rbegin(); it != eng_.nba_sigs_.rend();
             ++it) {
            if (it->first == sig) return it->second;
        }
        return read_signal(sig);
    }

    /// Publishes the blocking overlay to the engine, in program order.
    void commit() {
        for (const auto& [sig, v] : sig_overlay_) eng_.commit_signal(sig, v);
        for (const auto& [arr, idx, val] : arr_overlay_) {
            eng_.commit_array(arr, idx, val);
        }
        sig_overlay_.clear();
        arr_overlay_.clear();
    }

  private:
    SimEngine& eng_;
    std::vector<std::pair<SignalId, Value>> sig_overlay_;
    std::vector<std::tuple<ArrayId, uint64_t, uint64_t>> arr_overlay_;
};

SimEngine::SimEngine(const Design& design, SchedulingMode mode,
                     InterpMode interp, const SharedPrograms* precompiled)
    : design_(design), mode_(mode), interp_(interp), vm_(design) {
    if (!design.finalized()) {
        throw SimError("design must be finalized before simulation");
    }
    if (interp_ == InterpMode::Bytecode) {
        progs_ = precompiled != nullptr && !precompiled->empty()
                     ? *precompiled
                     : compile_design_programs(design);
    }
    values_.reserve(design.signals.size());
    for (const auto& s : design.signals) values_.emplace_back(0, s.width);
    arrays_.reserve(design.arrays.size());
    for (const auto& a : design.arrays) {
        arrays_.emplace_back(a.size, uint64_t{0});
    }
    force_mask_.assign(design.signals.size(), 0);
    force_bits_.assign(design.signals.size(), 0);
    edge_prev_.assign(design.signals.size(), 0);

    const size_t num_elems = design.nodes.size() + design.behaviors.size();
    in_queue_.assign(num_elems, false);
    rank_buckets_.resize(design.rank_levels());
    for (uint32_t n = 0; n < design.nodes.size(); ++n) {
        level_order_.push_back(n);
    }
    for (uint32_t b = 0; b < design.behaviors.size(); ++b) {
        if (design.behaviors[b].is_comb) {
            level_order_.push_back(static_cast<uint32_t>(design.nodes.size()) +
                                   b);
        }
    }
    auto elem_rank = [&](uint32_t e) {
        return e < design.nodes.size()
                   ? design.nodes[e].rank
                   : design.behaviors[e - design.nodes.size()].rank;
    };
    std::stable_sort(level_order_.begin(), level_order_.end(),
                     [&](uint32_t a, uint32_t b) {
                         return elem_rank(a) < elem_rank(b);
                     });
}

void SimEngine::reset() {
    for (size_t i = 0; i < values_.size(); ++i) {
        values_[i] = Value(apply_force(static_cast<SignalId>(i), 0),
                           design_.signals[i].width);
    }
    for (auto& a : arrays_) std::fill(a.begin(), a.end(), 0);
    std::fill(edge_prev_.begin(), edge_prev_.end(), 0);
    for (auto& bucket : rank_buckets_) bucket.clear();
    std::fill(in_queue_.begin(), in_queue_.end(), false);
    nba_sigs_.clear();
    nba_arrs_.clear();
    lowest_dirty_rank_ = 0;

    run_initials();

    // Everything is potentially stale after zeroing: schedule all elements.
    for (uint32_t e : level_order_) schedule_element(e);
    sweep_changed_ = true;
    settle();
    // Edge baselines start from the settled reset state.
    for (size_t i = 0; i < values_.size(); ++i) {
        edge_prev_[i] = values_[i].bits();
    }
}

void SimEngine::run_initials() {
    GoodActivationCtx ctx(*this);
    for (size_t i = 0; i < design_.initials.size(); ++i) {
        if (!design_.initials[i].body) continue;
        if (interp_ == InterpMode::Bytecode) {
            vm_.exec((*progs_.initials)[i], ctx);
        } else {
            exec_stmt(*design_.initials[i].body, design_, ctx);
        }
    }
    ctx.commit();
}

void SimEngine::exec_behavior_body(rtl::BehavId b, EvalContext& ctx) {
    if (interp_ == InterpMode::Bytecode) {
        vm_.exec((*progs_.behaviors)[b], ctx);
    } else {
        exec_stmt(*design_.behaviors[b].body, design_, ctx);
    }
}

void SimEngine::poke(SignalId sig, uint64_t value) {
    commit_signal(sig, Value(value, design_.signals[sig].width));
}

uint64_t SimEngine::peek_array(ArrayId arr, uint64_t idx) const {
    const auto& storage = arrays_[arr];
    return idx < storage.size() ? storage[idx] : 0;
}

void SimEngine::load_array(ArrayId arr, std::span<const uint64_t> words) {
    auto& storage = arrays_[arr];
    const uint64_t mask = Value::mask(design_.arrays[arr].width);
    for (size_t i = 0; i < words.size() && i < storage.size(); ++i) {
        storage[i] = words[i] & mask;
    }
    for (rtl::BehavId b : design_.arrays[arr].reader_behavs) {
        schedule_element(static_cast<uint32_t>(design_.nodes.size()) + b);
    }
}

void SimEngine::force_bits(SignalId sig, uint64_t mask, uint64_t bits) {
    force_mask_[sig] = mask;
    force_bits_[sig] = bits & mask;
    commit_signal(sig, values_[sig]);   // re-commit applies the force
    // commit_signal is a no-op when the forced value equals the current
    // value, but fanout must still be consistent — force only changes future
    // commits in that case, so nothing else to do.
}

void SimEngine::release(SignalId sig) {
    force_mask_[sig] = 0;
    force_bits_[sig] = 0;
}

void SimEngine::clear_forces() {
    std::fill(force_mask_.begin(), force_mask_.end(), 0);
    std::fill(force_bits_.begin(), force_bits_.end(), 0);
}

void SimEngine::commit_signal(SignalId sig, Value v) {
    const Value forced(apply_force(sig, v.bits()),
                       design_.signals[sig].width);
    if (values_[sig] == forced) return;
    values_[sig] = forced;
    schedule_signal_fanout(sig);
}

void SimEngine::commit_array(ArrayId arr, uint64_t idx, uint64_t val) {
    auto& storage = arrays_[arr];
    if (idx >= storage.size()) return;
    const uint64_t masked = val & Value::mask(design_.arrays[arr].width);
    if (storage[idx] == masked) return;
    storage[idx] = masked;
    for (rtl::BehavId b : design_.arrays[arr].reader_behavs) {
        schedule_element(static_cast<uint32_t>(design_.nodes.size()) + b);
    }
}

void SimEngine::schedule_signal_fanout(SignalId sig) {
    sweep_changed_ = true;
    if (mode_ == SchedulingMode::Levelized) return;   // sweeps need no queue
    const rtl::Signal& s = design_.signals[sig];
    for (rtl::NodeId n : s.fanout_nodes) schedule_element(n);
    for (rtl::BehavId b : s.fanout_comb) {
        schedule_element(static_cast<uint32_t>(design_.nodes.size()) + b);
    }
}

void SimEngine::schedule_element(uint32_t elem) {
    if (mode_ != SchedulingMode::EventDriven) {
        sweep_changed_ = true;
        return;
    }
    if (in_queue_[elem]) return;
    in_queue_[elem] = true;
    const uint32_t rank =
        elem < design_.nodes.size()
            ? design_.nodes[elem].rank
            : design_.behaviors[elem - design_.nodes.size()].rank;
    rank_buckets_[rank].push_back(elem);
    lowest_dirty_rank_ = std::min(lowest_dirty_rank_, rank);
}

void SimEngine::eval_element(uint32_t elem) {
    if (elem < design_.nodes.size()) {
        const RtlNode& n = design_.nodes[elem];
        ++node_evals_;
        if (n.op == rtl::Op::Const) {
            commit_signal(n.output, n.cval.resized(
                                        design_.signals[n.output].width));
            return;
        }
        Value vals[8];
        std::vector<Value> big;
        std::span<const Value> operands;
        if (n.inputs.size() <= 8) {
            for (size_t i = 0; i < n.inputs.size(); ++i) {
                vals[i] = values_[n.inputs[i]];
            }
            operands = std::span<const Value>(vals, n.inputs.size());
        } else {
            big.reserve(n.inputs.size());
            for (SignalId in : n.inputs) big.push_back(values_[in]);
            operands = big;
        }
        commit_signal(n.output,
                      rtl::eval_op(n.op, operands,
                                   design_.signals[n.output].width, n.imm));
        return;
    }
    const auto b = static_cast<rtl::BehavId>(elem - design_.nodes.size());
    ++behavior_execs_;
    GoodActivationCtx ctx(*this);
    if (design_.behaviors[b].body) exec_behavior_body(b, ctx);
    ctx.commit();
}

void SimEngine::comb_propagate() {
    if (mode_ == SchedulingMode::Levelized) {
        if (!sweep_changed_) return;
        if (!design_.has_comb_cycles()) {
            // Verilator's execution model: one statically ordered pass is
            // exact for an acyclic combinational graph.
            for (uint32_t e : level_order_) eval_element(e);
            sweep_changed_ = false;
            return;
        }
        int sweeps = 0;
        while (sweep_changed_) {
            sweep_changed_ = false;
            for (uint32_t e : level_order_) eval_element(e);
            if (++sweeps > kMaxSettleRounds) {
                throw SimError(
                    "combinational loop did not converge (levelized)");
            }
        }
        return;
    }
    // Drain buckets lowest rank first; evaluating an element may re-dirty
    // any rank (combinational cycles), so always resume from the lowest
    // dirty rank. Bounded by a batch guard against non-converging loops.
    int batches = 0;
    for (;;) {
        uint32_t r = lowest_dirty_rank_;
        while (r < rank_buckets_.size() && rank_buckets_[r].empty()) ++r;
        if (r >= rank_buckets_.size()) break;
        lowest_dirty_rank_ = r;
        std::vector<uint32_t> batch;
        batch.swap(rank_buckets_[r]);
        for (uint32_t e : batch) {
            in_queue_[e] = false;
            eval_element(e);
        }
        if (++batches > kMaxSettleRounds * 64) {
            throw SimError("combinational loop did not converge (event)");
        }
    }
    lowest_dirty_rank_ = static_cast<uint32_t>(rank_buckets_.size());
}

bool SimEngine::run_edge_round() {
    // Postponed edge detection (the fake-event fix): sample every watched
    // signal only now, after the combinational fixpoint.
    std::vector<rtl::BehavId> activated;
    for (SignalId sig = 0; sig < design_.signals.size(); ++sig) {
        const rtl::Signal& s = design_.signals[sig];
        if (s.fanout_edges.empty()) continue;
        const uint64_t prev = edge_prev_[sig];
        const uint64_t cur = values_[sig].bits();
        if (prev == cur) continue;
        edge_prev_[sig] = cur;
        const bool pos = (prev & 1) == 0 && (cur & 1) == 1;
        const bool neg = (prev & 1) == 1 && (cur & 1) == 0;
        for (rtl::BehavId b : s.fanout_edges) {
            for (const rtl::EdgeSpec& e : design_.behaviors[b].edges) {
                if (e.sig != sig) continue;
                if ((e.kind == EdgeKind::Pos && pos) ||
                    (e.kind == EdgeKind::Neg && neg)) {
                    if (std::find(activated.begin(), activated.end(), b) ==
                        activated.end()) {
                        activated.push_back(b);
                    }
                }
            }
        }
    }
    if (activated.empty()) return false;
    std::sort(activated.begin(), activated.end());
    for (rtl::BehavId b : activated) {
        ++behavior_execs_;
        GoodActivationCtx ctx(*this);
        if (design_.behaviors[b].body) exec_behavior_body(b, ctx);
        ctx.commit();
    }
    return true;
}

bool SimEngine::apply_nba() {
    if (nba_sigs_.empty() && nba_arrs_.empty()) return false;
    std::vector<std::pair<SignalId, Value>> sigs;
    sigs.swap(nba_sigs_);
    std::vector<std::tuple<ArrayId, uint64_t, uint64_t>> arrs;
    arrs.swap(nba_arrs_);
    for (const auto& [sig, v] : sigs) commit_signal(sig, v);
    for (const auto& [arr, idx, val] : arrs) commit_array(arr, idx, val);
    return true;
}

void SimEngine::settle() {
    int rounds = 0;
    for (;;) {
        comb_propagate();
        const bool ran_seq = run_edge_round();
        const bool wrote_nba = apply_nba();
        if (!ran_seq && !wrote_nba) break;
        if (++rounds > kMaxSettleRounds) {
            throw SimError("settle did not reach quiescence");
        }
    }
}

void SimEngine::tick(SignalId clk) {
    poke(clk, 1);
    settle();
    poke(clk, 0);
    settle();
}

}  // namespace eraser::sim
