// VCD (Value Change Dump) tracing for good simulation — lets users inspect
// benchmark behaviour and debug testbenches in any waveform viewer.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "rtl/design.h"
#include "sim/engine.h"

namespace eraser::sim {

/// Streams IEEE-1364 VCD. Usage:
///
///   VcdWriter vcd(out, design);         // header with all signals
///   loop {
///       engine.tick(clk);
///       vcd.sample(engine, time);       // emits changed values only
///   }
class VcdWriter {
  public:
    /// Writes the header and `$dumpvars` section. When `signals` is empty,
    /// every design signal is traced; otherwise only the listed ids.
    VcdWriter(std::ostream& out, const rtl::Design& design,
              std::vector<rtl::SignalId> signals = {});

    /// Emits a timestamp and all value changes since the last sample.
    void sample(const SimEngine& engine, uint64_t time);

  private:
    [[nodiscard]] static std::string id_code(size_t index);
    void emit_value(rtl::SignalId sig, const Value& v);

    std::ostream& out_;
    const rtl::Design& design_;
    std::vector<rtl::SignalId> traced_;
    std::vector<std::string> codes_;     // parallel to traced_
    std::vector<uint64_t> last_;         // last dumped value
    std::vector<bool> ever_dumped_;
};

}  // namespace eraser::sim
