// Stimulus pipelining: overlaps stimulus generation with engine execution.
//
// DriveHandle is write-only — apply() never reads simulator state — so a
// cycle's drive calls can be generated ahead of time on a helper thread,
// recorded as data, and replayed into the engine in the exact call order.
// The replayed sequence is byte-identical to calling apply() inline, so
// pipelining is verdict-neutral by construction; it only moves where the
// generation cost is paid. A bounded ring keeps the producer a batch of
// cycles ahead without unbounded memory (deep enough that each producer
// wakeup refills a whole batch — on oversubscribed hosts the dominant
// cost is the wakeup, not the generation), and the consumer reports how
// long it was *blocked* waiting (ShardBreakdown::stimulus_seconds) — near
// zero when generation fully hides behind execution.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "sim/stimulus.h"

namespace eraser::sim {

/// One cycle's recorded drive calls, replayable in call order.
struct RecordedCycle {
    std::vector<std::pair<rtl::SignalId, uint64_t>> pokes;
    std::vector<std::pair<rtl::ArrayId, std::vector<uint64_t>>> loads;

    void clear() {
        pokes.clear();
        loads.clear();
    }

    void replay(DriveHandle& h) const {
        // Pokes and loads replay in their own call orders; interleaving
        // between the two lists cannot matter — they address disjoint
        // state (signals vs arrays).
        for (const auto& [sig, value] : pokes) h.set_input(sig, value);
        for (const auto& [arr, words] : loads) h.load_array(arr, words);
    }
};

/// DriveHandle that records calls into a RecordedCycle instead of driving.
class RecorderHandle final : public DriveHandle {
  public:
    void attach(RecordedCycle* cycle) { cycle_ = cycle; }
    void set_input(rtl::SignalId sig, uint64_t value) override {
        cycle_->pokes.emplace_back(sig, value);
    }
    void load_array(rtl::ArrayId arr,
                    std::span<const uint64_t> words) override {
        cycle_->loads.emplace_back(
            arr, std::vector<uint64_t>(words.begin(), words.end()));
    }

  private:
    RecordedCycle* cycle_ = nullptr;
};

/// Bounded single-producer/single-consumer pipeline over a Stimulus's
/// apply() calls for cycles [begin, end). The producer thread starts in
/// the constructor; the consumer drains via acquire()/release(). The
/// stimulus must not be touched by anyone else while the pipeline lives
/// (the producer owns its apply() stream — bind/initialize must already
/// have happened, which the constructor's thread start orders after).
class StimulusPipeline {
  public:
    StimulusPipeline(Stimulus& stim, uint32_t begin_cycle, uint32_t end_cycle,
                     uint32_t depth = 64);
    ~StimulusPipeline();

    StimulusPipeline(const StimulusPipeline&) = delete;
    StimulusPipeline& operator=(const StimulusPipeline&) = delete;

    /// Blocks until the next cycle's recording is ready and returns it
    /// (owned by the pipeline until release()); nullptr when the cycle
    /// range is exhausted. Adds the time spent blocked to *blocked_seconds.
    /// Rethrows an exception the stimulus threw on the producer thread.
    [[nodiscard]] const RecordedCycle* acquire(double* blocked_seconds);

    /// Returns the slot from the last acquire() to the producer.
    void release();

    /// Asks the producer to stop early (the destructor calls this too).
    void stop();

  private:
    void produce(uint32_t begin_cycle, uint32_t end_cycle);

    Stimulus& stim_;
    std::vector<RecordedCycle> slots_;
    std::mutex mu_;
    std::condition_variable can_produce_;
    std::condition_variable can_consume_;
    uint64_t head_ = 0;  // next slot the consumer reads
    uint64_t tail_ = 0;  // next slot the producer writes
    bool done_ = false;
    bool stop_ = false;
    std::exception_ptr error_;
    std::thread producer_;
};

}  // namespace eraser::sim
