// EvalContext: the read/write environment a behavioral body executes against.
// Engines provide implementations that read good state, fault-overlay state,
// or audit shadows; the interpreter itself is engine-agnostic.
#pragma once

#include <cstdint>

#include "rtl/expr.h"
#include "rtl/value.h"

namespace eraser::sim {

/// Abstract environment for expression evaluation and statement execution.
///
/// Write conventions (identical in every engine, so coverage comparisons are
/// exact):
///  * Blocking writes become visible to *subsequent reads in the same
///    activation* immediately, and to the rest of the design when the
///    activation commits.
///  * Nonblocking writes are buffered and committed in the NBA phase of the
///    current time step.
///  * Partial (bit/part-select) writes are resolved by the interpreter into
///    full-width read-modify-write values before write_signal is called.
class EvalContext {
  public:
    virtual ~EvalContext() = default;

    [[nodiscard]] virtual Value read_signal(rtl::SignalId sig) = 0;
    /// Out-of-range reads return 0 (2-state convention; real Verilog gives X).
    [[nodiscard]] virtual Value read_array(rtl::ArrayId arr, uint64_t idx) = 0;

    /// Fast-path reads for signals/arrays the executing body never writes
    /// with a blocking assignment: such targets can never be in the
    /// activation's blocking overlay, so contexts may skip the overlay
    /// lookup. Must return exactly read_signal/read_array for those targets
    /// (the default does literally that); the bytecode compiler emits these
    /// only for reads outside the body's static blocking-write set.
    [[nodiscard]] virtual Value read_signal_unwritten(rtl::SignalId sig) {
        return read_signal(sig);
    }
    [[nodiscard]] virtual Value read_array_unwritten(rtl::ArrayId arr,
                                                    uint64_t idx) {
        return read_array(arr, idx);
    }

    virtual void write_signal(rtl::SignalId sig, Value v,
                              bool nonblocking) = 0;
    virtual void write_array(rtl::ArrayId arr, uint64_t idx, Value v,
                             bool nonblocking) = 0;

    /// Read used by *partial nonblocking* writes (`q[3:0] <= x`): sees the
    /// pending NBA value of this activation if one exists, so consecutive
    /// partial NBA writes to one register compose instead of clobbering.
    [[nodiscard]] virtual Value read_for_nba_update(rtl::SignalId sig) {
        return read_signal(sig);
    }
};

}  // namespace eraser::sim
