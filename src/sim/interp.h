// Interpreter over elaborated expressions and statements. One implementation
// shared by the good simulator, the serial fault simulators, and the faulty
// overlay execution of the concurrent engine.
#pragma once

#include "rtl/design.h"
#include "sim/context.h"

namespace eraser::sim {

/// Evaluates an expression in `ctx`. Result is masked to e.width.
[[nodiscard]] Value eval_expr(const rtl::Expr& e, EvalContext& ctx);

/// Executes a statement tree in `ctx` (see EvalContext for the write
/// conventions). `design` supplies signal widths for partial-write merging.
void exec_stmt(const rtl::Stmt& s, const rtl::Design& design,
               EvalContext& ctx);

/// Executes a single Assign statement (exposed separately because the CFG
/// executor drives assigns one at a time).
void exec_assign(const rtl::Stmt& s, const rtl::Design& design,
                 EvalContext& ctx);

/// Picks the case arm index for a subject value: first arm with a matching
/// label, else the default arm (empty labels), else `arms.size()` meaning
/// "no arm executes".
[[nodiscard]] size_t pick_case_arm(const std::vector<rtl::CaseArm>& arms,
                                   const Value& subject);

}  // namespace eraser::sim
