#include "sim/stimulus_pipeline.h"

#include <algorithm>
#include <chrono>

namespace eraser::sim {

StimulusPipeline::StimulusPipeline(Stimulus& stim, uint32_t begin_cycle,
                                   uint32_t end_cycle, uint32_t depth)
    : stim_(stim), slots_(std::max<uint32_t>(2, depth)) {
    producer_ = std::thread(
        [this, begin_cycle, end_cycle] { produce(begin_cycle, end_cycle); });
}

StimulusPipeline::~StimulusPipeline() {
    stop();
    if (producer_.joinable()) producer_.join();
}

void StimulusPipeline::produce(uint32_t begin_cycle, uint32_t end_cycle) {
    const uint64_t depth = slots_.size();
    RecorderHandle recorder;
    try {
        for (uint32_t c = begin_cycle; c < end_cycle; ++c) {
            RecordedCycle* slot = nullptr;
            {
                std::unique_lock<std::mutex> lock(mu_);
                // Hysteresis: once the ring fills, sleep until it is half
                // drained, then burst-refill. A wakeup per batch instead of
                // per cycle — on oversubscribed hosts the wakeup itself is
                // the dominant cost, not the generation.
                if (tail_ - head_ == depth) {
                    can_produce_.wait(lock, [&] {
                        return tail_ - head_ <= depth / 2 || stop_;
                    });
                }
                if (stop_) return;
                slot = &slots_[tail_ % depth];
            }
            // Record outside the lock: the consumer never reads past
            // tail_, so the slot is exclusively the producer's here.
            slot->clear();
            recorder.attach(slot);
            stim_.apply(c, recorder);
            {
                std::lock_guard<std::mutex> lock(mu_);
                ++tail_;
            }
            can_consume_.notify_one();
        }
    } catch (...) {
        std::lock_guard<std::mutex> lock(mu_);
        error_ = std::current_exception();
    }
    {
        std::lock_guard<std::mutex> lock(mu_);
        done_ = true;
    }
    can_consume_.notify_one();
}

const RecordedCycle* StimulusPipeline::acquire(double* blocked_seconds) {
    std::unique_lock<std::mutex> lock(mu_);
    if (head_ == tail_ && !done_) {
        const auto t0 = std::chrono::steady_clock::now();
        can_consume_.wait(lock, [&] { return head_ != tail_ || done_; });
        if (blocked_seconds != nullptr) {
            *blocked_seconds +=
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
        }
    }
    if (head_ != tail_) return &slots_[head_ % slots_.size()];
    if (error_ != nullptr) std::rethrow_exception(error_);
    return nullptr;
}

void StimulusPipeline::release() {
    bool wake;
    {
        std::lock_guard<std::mutex> lock(mu_);
        ++head_;
        // The producer only ever waits on the half-drained mark (see
        // produce()); notifying on every release would just burn futex
        // wakes it re-sleeps through.
        wake = tail_ - head_ == slots_.size() / 2;
    }
    if (wake) can_produce_.notify_one();
}

void StimulusPipeline::stop() {
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    can_produce_.notify_one();
    can_consume_.notify_one();
}

}  // namespace eraser::sim
