// SimEngine: the fault-free ("good") RTL simulator, also used fault-by-fault
// by the serial baselines via bit-granular force (stuck-at injection).
//
// Two interchangeable combinational scheduling strategies:
//  * EventDriven — rank-ordered dirty worklist (Icarus-style event engine);
//  * Levelized   — full static-rank sweeps per delta (Verilator-style
//    compiled-simulation execution model, the paper's "VFsim" substrate).
//
// Time-step semantics (shared with the concurrent engine so coverage
// comparisons are exact):
//   settle():
//     repeat
//       1. combinational fixpoint (RTL nodes + comb always blocks);
//       2. postponed edge detection on all watched signals, then execution
//          of the activated sequential blocks (the paper's fake-event fix:
//          event controls are sampled only after all blocking events of the
//          delta have been processed);
//       3. NBA commit;
//     until quiescent.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "rtl/design.h"
#include "sim/bcvm.h"
#include "sim/bytecode.h"
#include "sim/context.h"

namespace eraser::sim {

enum class SchedulingMode : uint8_t { EventDriven, Levelized };

class SimEngine {
  public:
    /// `interp` selects the behavioral executor: Bytecode runs bodies
    /// compiled at construction time (the production path), Tree keeps the
    /// recursive interpreter as the differential-testing oracle.
    /// `precompiled`, when non-null, supplies compile-once programs (e.g.
    /// from core::CompiledDesign) so construction performs no bytecode
    /// compilation at all; the owning artifact must outlive the engine's
    /// use, which the engine guarantees by holding the shared_ptrs.
    explicit SimEngine(const rtl::Design& design,
                       SchedulingMode mode = SchedulingMode::EventDriven,
                       InterpMode interp = InterpMode::Bytecode,
                       const SharedPrograms* precompiled = nullptr);

    /// Zeroes all state, re-applies forces, runs `initial` blocks, settles.
    void reset();

    /// Drives a primary input (or any undriven signal) and schedules fanout.
    void poke(rtl::SignalId sig, uint64_t value);
    [[nodiscard]] Value peek(rtl::SignalId sig) const {
        return values_[sig];
    }
    [[nodiscard]] uint64_t peek_array(rtl::ArrayId arr, uint64_t idx) const;
    /// Backdoor memory load (e.g. CPU instruction memories).
    void load_array(rtl::ArrayId arr, std::span<const uint64_t> words);

    /// Pins the bits selected by `mask` to `bits` until release; models
    /// stuck-at faults exactly like an Iverilog `force`.
    void force_bits(rtl::SignalId sig, uint64_t mask, uint64_t bits);
    void release(rtl::SignalId sig);
    /// Releases every force (serial campaigns reuse one engine per fault).
    void clear_forces();

    /// Propagates until the design is quiescent.
    void settle();

    /// Full clock cycle: clk=1, settle, clk=0, settle.
    void tick(rtl::SignalId clk);

    [[nodiscard]] const rtl::Design& design() const { return design_; }

    // Evaluation counters (performance reporting).
    [[nodiscard]] uint64_t node_evals() const { return node_evals_; }
    [[nodiscard]] uint64_t behavior_execs() const { return behavior_execs_; }

  private:
    friend class GoodActivationCtx;

    void commit_signal(rtl::SignalId sig, Value v);
    void commit_array(rtl::ArrayId arr, uint64_t idx, uint64_t val);
    void schedule_element(uint32_t elem);
    void schedule_signal_fanout(rtl::SignalId sig);
    void eval_element(uint32_t elem);
    /// Runs behavior `b`'s body through the selected interpreter.
    void exec_behavior_body(rtl::BehavId b, EvalContext& ctx);
    void comb_propagate();
    bool run_edge_round();
    bool apply_nba();
    void run_initials();

    [[nodiscard]] uint64_t apply_force(rtl::SignalId sig, uint64_t v) const {
        return (v & ~force_mask_[sig]) | force_bits_[sig];
    }

    const rtl::Design& design_;
    SchedulingMode mode_;
    InterpMode interp_;

    // Bytecode path: behavior bodies and initial blocks, either adopted
    // from a caller-supplied compile-once artifact or compiled at
    // construction (empty when interp_ == InterpMode::Tree).
    BcVm vm_;
    SharedPrograms progs_;

    std::vector<Value> values_;
    std::vector<std::vector<uint64_t>> arrays_;
    std::vector<uint64_t> force_mask_;
    std::vector<uint64_t> force_bits_;
    /// Last value sampled by edge detection, per signal (only meaningful for
    /// signals with sequential watchers).
    std::vector<uint64_t> edge_prev_;

    // Scheduling. Elements are RTL nodes [0, N) then comb behaviors
    // [N, N + B) (same indexing as Design::finalize's rank computation).
    std::vector<std::vector<uint32_t>> rank_buckets_;
    std::vector<bool> in_queue_;
    std::vector<uint32_t> level_order_;   // all comb elements by (rank, id)
    bool sweep_changed_ = false;
    uint32_t lowest_dirty_rank_ = 0;

    std::vector<std::pair<rtl::SignalId, Value>> nba_sigs_;
    std::vector<std::tuple<rtl::ArrayId, uint64_t, uint64_t>> nba_arrs_;

    uint64_t node_evals_ = 0;
    uint64_t behavior_execs_ = 0;
};

}  // namespace eraser::sim
