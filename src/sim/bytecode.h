// Bytecode compilation of elaborated expression/statement trees (PR 2).
//
// The tree-walking interpreter in sim/interp.{h,cpp} chases unique_ptr
// children and heap-allocates an operand vector on every OpApply node —
// unacceptable on the hot path, where every good execution, both serial
// baselines, and every surviving faulty re-execution of the Eraser engine
// funnel through it. This layer compiles each tree ONCE, at engine
// construction time, into a flat postfix instruction stream executed by a
// small stack VM (sim/bcvm.h) with zero per-instruction allocation:
//
//  * operands live in dense uint32 slots inside 12-byte instructions;
//  * constants are pooled and referenced by index;
//  * control flow becomes absolute jumps; `case` dispatch scans a
//    precomputed label table equivalent to pick_case_arm;
//  * expression operands are a span into the VM's preallocated value stack.
//
// The EvalContext read/write conventions are unchanged, so the compiled
// execution is bit-identical to sim::exec_stmt / sim::eval_expr (enforced by
// tests/bytecode_equiv_test.cpp). The tree interpreter stays available
// behind InterpMode::Tree as the differential-testing oracle.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "rtl/design.h"
#include "rtl/expr.h"
#include "rtl/ops.h"
#include "rtl/value.h"

namespace eraser::sim {

/// Which behavioral executor an engine uses. Bytecode is the production
/// path; Tree keeps the original recursive interpreter as the oracle.
enum class InterpMode : uint8_t { Bytecode, Tree };

enum class BcOp : uint8_t {
    PushConst,     // push consts[a]
    PushSignal,    // push read_signal(a).resized(width)
    PushSignalG,   // same, via read_signal_unwritten (signal is outside the
                   // body's blocking-write set, so the overlay can't hit)
    ArrayRead,     // pop idx; push read_array(a, idx).resized(width)
    ArrayReadG,    // same, via read_array_unwritten
    Apply,         // pop nargs operands; push eval_op(op, ..., width, imm)
    StoreFull,     // pop rhs; write_signal(a, rhs.resized(width), nb)
    StorePart,     // pop rhs; RMW write of bits [imm, imm+width) of signal a
    StoreBit,      // pop idx, rhs; RMW write of bit idx of signal a
    StoreArray,    // pop idx, rhs; write_array(a, idx, rhs.resized(width), nb)
    Jump,          // pc = a
    JumpIfFalse,   // pop cond; pc = a when !cond
    CaseJump,      // pop subject; pc = label-table dispatch via case_tables[a]
    Halt,          // end of program; expression programs leave the result on
                   // the stack

    // Slotted variants: blocking-written signals of a body get dense slot
    // indices at compile time, so read-after-write within one execution is
    // an O(1) array access in the VM instead of an overlay-map lookup. The
    // VM flushes written slots to ctx.write_signal at Halt in first-write
    // order, so the activation record (and everything downstream) is
    // bit-identical to the unslotted execution. Slot index lives in
    // `nargs`; `a` stays the SignalId for the not-yet-written fallback.
    PushSlot,      // push slot if written, else read_signal(a); resized
    StoreFullSlot, // pop rhs; slot = rhs.resized(width)   (blocking only)
    StorePartSlot, // pop rhs; RMW bits [imm, imm+width) against slot/ctx
    StoreBitSlot,  // pop idx, rhs; RMW bit idx against slot/ctx

    // Superword fusions: an Apply whose result feeds straight into a
    // full-width store of the same width collapses into one instruction
    // (`x = a op b` — the most common statement shape), saving a dispatch
    // plus a stack round-trip per executed assignment. Fused by a peephole
    // pass after emission; never fused across a jump target or for Slice
    // (whose Apply carries `imm`, reused as the slot id below).
    ApplyStore,     // pop nargs; write_signal(a, eval_op(...), nb)
    ApplyStoreSlot, // pop nargs; slot[imm] = eval_op(...)   (blocking only)
};

/// Store-instruction flag: the write is nonblocking (`<=`).
inline constexpr uint8_t kBcNonblocking = 1u;

/// One flat instruction. 12 bytes; a program is a dense array of these.
struct BcInstr {
    BcOp kind = BcOp::Halt;
    rtl::Op op = rtl::Op::Copy;   // Apply only
    uint8_t flags = 0;            // kBcNonblocking on stores
    uint8_t nargs = 0;            // Apply operand count (<= 64: max 1-bit
                                  // concat parts at kMaxWidth)
    uint16_t width = 0;           // result / target width in bits
    uint16_t imm = 0;             // Slice lo (Apply) or part-select lo
    uint32_t a = 0;               // signal/array id, const-pool index, jump
                                  // target, or case-table index
};
static_assert(sizeof(BcInstr) == 12, "keep the hot array dense");

/// One `case` label: subject bits -> jump target (or successor index in a
/// BcDecision). Tables are scanned in arm/label order so first-match
/// semantics are identical to pick_case_arm.
struct BcCaseEntry {
    uint64_t label = 0;
    uint32_t target = 0;
};

struct BcCaseTable {
    uint32_t first = 0;      // index into BcProgram::case_entries
    uint32_t count = 0;
    uint32_t no_match = 0;   // target when no label matches (default arm
                             // body, or past the case when there is none)
};

/// A compiled program: statement trees compile to stores/jumps ending in
/// Halt; expression trees compile to a value-producing program whose result
/// is on top of the stack at Halt.
struct BcProgram {
    std::vector<BcInstr> code;
    std::vector<Value> consts;
    std::vector<BcCaseEntry> case_entries;
    std::vector<BcCaseTable> case_tables;
    /// Slot -> SignalId of the slotted blocking-write targets (empty when
    /// the program uses no slots).
    std::vector<uint32_t> slot_sigs;
    /// Exact value-stack high-water mark, computed at compile time so the VM
    /// never grows its stack mid-execution.
    uint32_t max_stack = 0;

    [[nodiscard]] bool empty() const { return code.empty(); }
};

/// A compiled CFG Decision node: evaluate `subject`, then map the value to
/// the index into CfgNode::succs that execution takes (same contract as
/// cfg::Cfg::evaluate_decision).
struct BcDecision {
    BcProgram subject;
    bool is_if = true;
    std::vector<BcCaseEntry> table;   // Case only; target = successor index
    uint32_t no_match = 0;            // Case only; default successor index
};

/// Immutable, shareable compilation artifacts of a design's behavioral
/// bodies and `initial` blocks. Programs are compiled once (e.g. by
/// core::CompiledDesign) and shared read-only between any number of engines
/// — compiled programs are never mutated by execution, so concurrent
/// engines on different threads may execute the same vectors freely. Null
/// pointers mean "not compiled" (tree-interpreter-only use).
struct SharedPrograms {
    /// Parallel to rtl::Design::behaviors; compiled with each behavior's
    /// blocking write sets (see BcWriteSets).
    std::shared_ptr<const std::vector<BcProgram>> behaviors;
    /// Parallel to rtl::Design::initials; conservative write sets.
    std::shared_ptr<const std::vector<BcProgram>> initials;

    [[nodiscard]] bool empty() const { return behaviors == nullptr; }
};

/// Compiles every behavior body / initial block of `design` into a
/// SharedPrograms bundle (the compile-once step the engines share).
[[nodiscard]] SharedPrograms compile_design_programs(const rtl::Design& design);

/// Static write-set context for compilation: reads of signals/arrays
/// outside the executing body's blocking-write sets compile to the
/// overlay-skipping PushSignalG/ArrayReadG. The default ({}) is
/// conservative — every read takes the overlay path (used for cold paths
/// where the write set was not computed).
struct BcWriteSets {
    std::span<const rtl::SignalId> blocking_signals;
    std::span<const rtl::ArrayId> blocking_arrays;
    /// When true every read uses the conservative overlay path.
    bool conservative = true;
};

/// Compiles a whole statement tree (behavior body / initial block).
/// `writes`, when non-conservative, must cover every blocking write the
/// body can perform (e.g. BehavNode::blocking_writes / array_writes).
[[nodiscard]] BcProgram compile_stmt(const rtl::Stmt& body,
                                     const rtl::Design& design,
                                     const BcWriteSets& writes = {});

/// Compiles a straight-line run of Assign statements (a CFG segment).
/// `writes` must describe the WHOLE body's blocking writes, not just this
/// segment's — earlier segments of the same activation populate the overlay.
[[nodiscard]] BcProgram compile_assigns(
    std::span<const rtl::Stmt* const> assigns, const rtl::Design& design,
    const BcWriteSets& writes = {});

/// Compiles an expression tree to a value-producing program.
[[nodiscard]] BcProgram compile_expr(const rtl::Expr& e);

/// Compiles a CFG branching statement (Stmt::If or Stmt::Case).
[[nodiscard]] BcDecision compile_decision(const rtl::Stmt& branch);

}  // namespace eraser::sim
