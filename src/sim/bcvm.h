// BcVm: the stack VM that executes compiled programs (sim/bytecode.h)
// against an EvalContext. One instance per engine; the value stack is grown
// to each program's compile-time high-water mark before the dispatch loop
// starts, so the hot loop performs **zero heap allocation per executed
// instruction** — operand spans point into the preallocated stack and every
// store resolves through the same EvalContext virtuals as the tree
// interpreter.
#pragma once

#include <vector>

#include "rtl/design.h"
#include "sim/bytecode.h"
#include "sim/context.h"

namespace eraser::sim {

class BcVm {
  public:
    /// The design supplies array bounds for StoreArray's out-of-range
    /// no-op check (same convention as exec_assign).
    explicit BcVm(const rtl::Design& design) : design_(design) {}

    /// Executes a statement program (runs to Halt).
    void exec(const BcProgram& p, EvalContext& ctx) { run(p, ctx); }

    /// Runs an expression program and returns the value it leaves on the
    /// stack.
    [[nodiscard]] Value eval(const BcProgram& p, EvalContext& ctx) {
        return run(p, ctx);
    }

    /// Evaluates a compiled Decision and returns the successor index taken
    /// (contract of cfg::Cfg::evaluate_decision).
    [[nodiscard]] size_t select(const BcDecision& d, EvalContext& ctx) {
        const Value v = run(d.subject, ctx);
        if (d.is_if) return v.is_true() ? 0 : 1;
        const uint64_t subj = v.bits();
        for (const BcCaseEntry& e : d.table) {
            if (e.label == subj) return e.target;
        }
        return d.no_match;
    }

  private:
    Value run(const BcProgram& p, EvalContext& ctx);

    const rtl::Design& design_;
    std::vector<Value> stack_;   // grown once per program high-water mark
    // Slot state for the slotted opcodes (see bytecode.h): values, written
    // flags (cleared again at each Halt flush), and first-write order.
    std::vector<Value> slots_;
    std::vector<uint8_t> slot_written_;
    std::vector<uint32_t> slot_touched_;
};

}  // namespace eraser::sim
