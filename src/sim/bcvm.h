// BcVm: the stack VM that executes compiled programs (sim/bytecode.h)
// against an EvalContext. One instance per engine; the value stack is grown
// to each program's compile-time high-water mark before the dispatch loop
// starts, so the hot loop performs **zero heap allocation per executed
// instruction** — operand spans point into the preallocated stack and every
// store resolves through the same EvalContext virtuals as the tree
// interpreter.
//
// Superword lane pass (exec_lanes): the batched fault engine executes ALL
// surviving faulty lanes of a 64-lane group in ONE walk over the
// instruction stream instead of one VM run per fault. Each stack cell is a
// lane vector {base value, diverged-lane word, value plane}: instructions
// whose operands carry no diverged lanes cost exactly one scalar operation;
// diverged lanes are evaluated per lane with the same rtl::eval_op the
// scalar path uses, so every lane's result is bit-identical to a scalar
// re-execution. Lanes whose control flow (branch direction, case target,
// store/bit index) diverges from the base path are moved out of the pass —
// the caller re-executes them scalar — so the lane pass itself never needs
// divergent-control machinery.
#pragma once

#include <cstdint>
#include <vector>

#include "rtl/design.h"
#include "sim/bytecode.h"
#include "sim/context.h"

namespace eraser::sim {

/// One lane-vector value of the superword pass. Lanes outside `dmask` hold
/// `base`; lane l inside holds Value(plane[l], base.width()) where the
/// plane is the 64-entry storage the cell travels with (VM stack slot,
/// slot register, or activation buffer).
struct LaneCell {
    Value base;
    uint64_t dmask = 0;
};

/// Lane-group evaluation context of the superword pass: supplies the global
/// (pre-activation) view of one 64-lane fault group and buffers the pass's
/// writes. The same read/write conventions as EvalContext, widened to lane
/// vectors; `lanes` restricts the lanes the caller still cares about.
/// Plane-pointer aliasing: read_array's `out_plane` may alias `idx_plane`
/// (the VM evaluates in place); implementations must read lane l's index
/// before writing lane l's result and touch no other lane.
class LaneEvalContext {
  public:
    virtual ~LaneEvalContext() = default;

    /// Overlay-then-global view (this activation's earlier writes win).
    virtual void read_signal(rtl::SignalId sig, uint64_t lanes,
                             LaneCell& cell, uint64_t* plane) = 0;
    /// Global view only (signal provably outside the body's write set).
    virtual void read_signal_unwritten(rtl::SignalId sig, uint64_t lanes,
                                       LaneCell& cell, uint64_t* plane) = 0;
    virtual void read_array(rtl::ArrayId arr, const LaneCell& idx,
                            const uint64_t* idx_plane, uint64_t lanes,
                            LaneCell& out, uint64_t* out_plane) = 0;
    virtual void read_array_unwritten(rtl::ArrayId arr, const LaneCell& idx,
                                      const uint64_t* idx_plane,
                                      uint64_t lanes, LaneCell& out,
                                      uint64_t* out_plane) = 0;
    virtual void write_signal(rtl::SignalId sig, const LaneCell& cell,
                              const uint64_t* plane, bool nonblocking) = 0;
    /// Uniform element index (the VM defers index-divergent lanes first).
    virtual void write_array(rtl::ArrayId arr, uint64_t idx,
                             const LaneCell& cell, const uint64_t* plane,
                             bool nonblocking) = 0;
    /// Last NBA write of this activation to `sig`, else read_signal.
    virtual void read_for_nba_update(rtl::SignalId sig, uint64_t lanes,
                                     LaneCell& cell, uint64_t* plane) = 0;
};

class BcVm {
  public:
    /// The design supplies array bounds for StoreArray's out-of-range
    /// no-op check (same convention as exec_assign).
    explicit BcVm(const rtl::Design& design) : design_(design) {}

    /// Executes a statement program (runs to Halt).
    void exec(const BcProgram& p, EvalContext& ctx) { run(p, ctx); }

    /// Runs an expression program and returns the value it leaves on the
    /// stack.
    [[nodiscard]] Value eval(const BcProgram& p, EvalContext& ctx) {
        return run(p, ctx);
    }

    /// Evaluates a compiled Decision and returns the successor index taken
    /// (contract of cfg::Cfg::evaluate_decision).
    [[nodiscard]] size_t select(const BcDecision& d, EvalContext& ctx) {
        const Value v = run(d.subject, ctx);
        if (d.is_if) return v.is_true() ? 0 : 1;
        const uint64_t subj = v.bits();
        for (const BcCaseEntry& e : d.table) {
            if (e.label == subj) return e.target;
        }
        return d.no_match;
    }

    /// Superword pass: executes `p` once for every lane in `lanes` of one
    /// 64-lane fault group, buffering writes through `ctx`. Returns the
    /// surviving lane mask; lanes dropped along the way diverged in control
    /// flow or store indexing and must be re-executed scalar by the caller
    /// (their contribution to any buffered write is garbage and must be
    /// masked out). Returns 0 immediately when every lane diverges.
    [[nodiscard]] uint64_t exec_lanes(const BcProgram& p,
                                      LaneEvalContext& ctx, uint64_t lanes);

  private:
    Value run(const BcProgram& p, EvalContext& ctx);

    const rtl::Design& design_;
    std::vector<Value> stack_;   // grown once per program high-water mark
    // Slot state for the slotted opcodes (see bytecode.h): values, written
    // flags (cleared again at each Halt flush), and first-write order.
    std::vector<Value> slots_;
    std::vector<uint8_t> slot_written_;
    std::vector<uint32_t> slot_touched_;

    // Lane-pass state: stack cells + planes (64 words per stack slot),
    // lane slot registers, and per-instruction operand scratch.
    std::vector<LaneCell> lstack_;
    std::vector<uint64_t> lplanes_;
    std::vector<LaneCell> lslots_;
    std::vector<uint64_t> lslot_planes_;
    std::vector<uint8_t> lslot_written_;
    std::vector<uint32_t> lslot_touched_;
    std::vector<Value> lane_ops_;        // per-lane operand gather
    std::vector<LaneCell> lane_args_;    // operand cell copies (Apply)
    uint64_t tmp_plane_[64];             // RMW current-value scratch
};

}  // namespace eraser::sim
