#include "sim/interp.h"

#include <cassert>

#include "util/diagnostics.h"

namespace eraser::sim {

using rtl::Expr;
using rtl::Op;
using rtl::Stmt;

Value eval_expr(const Expr& e, EvalContext& ctx) {
    switch (e.kind) {
        case Expr::Kind::Const: return e.cval;
        case Expr::Kind::SignalRef:
            return ctx.read_signal(e.sig).resized(e.width);
        case Expr::Kind::ArrayRead: {
            const Value idx = eval_expr(*e.args[0], ctx);
            return ctx.read_array(e.arr, idx.bits()).resized(e.width);
        }
        case Expr::Kind::OpApply: {
            // Operand vector on the stack; expressions are shallow enough
            // that a fixed small buffer covers almost all nodes.
            std::vector<Value> vals;
            vals.reserve(e.args.size());
            for (const auto& a : e.args) vals.push_back(eval_expr(*a, ctx));
            return rtl::eval_op(e.op, vals, e.width, e.imm);
        }
    }
    return Value(0, e.width);
}

void exec_assign(const Stmt& s, const rtl::Design& design, EvalContext& ctx) {
    assert(s.kind == Stmt::Kind::Assign);
    const Value rhs = eval_expr(*s.rhs, ctx);
    const rtl::LValue& lhs = s.lhs;

    if (lhs.is_array()) {
        const Value idx = eval_expr(*lhs.index, ctx);
        if (idx.bits() >= design.arrays[lhs.arr].size) return;  // no-op OOB
        ctx.write_array(lhs.arr, idx.bits(),
                        rhs.resized(design.arrays[lhs.arr].width),
                        s.nonblocking);
        return;
    }

    const unsigned sig_width = design.signals[lhs.sig].width;
    if (!lhs.partial) {
        ctx.write_signal(lhs.sig, rhs.resized(sig_width), s.nonblocking);
        return;
    }
    // Partial write: read-modify-write against the current view (for NBA
    // writes, against the pending NBA value of this activation).
    const Value cur = s.nonblocking ? ctx.read_for_nba_update(lhs.sig)
                                    : ctx.read_signal(lhs.sig);
    if (lhs.index) {
        const Value idx = eval_expr(*lhs.index, ctx);
        if (idx.bits() >= sig_width) return;  // no-op out-of-range bit write
        ctx.write_signal(
            lhs.sig,
            cur.with_bits(static_cast<unsigned>(idx.bits()), 1, rhs.bits()),
            s.nonblocking);
    } else {
        ctx.write_signal(lhs.sig, cur.with_bits(lhs.lo, lhs.width, rhs.bits()),
                         s.nonblocking);
    }
}

size_t pick_case_arm(const std::vector<rtl::CaseArm>& arms,
                     const Value& subject) {
    size_t default_arm = arms.size();
    for (size_t i = 0; i < arms.size(); ++i) {
        if (arms[i].labels.empty()) {
            default_arm = i;
            continue;
        }
        for (const Value& label : arms[i].labels) {
            if (label.bits() == subject.bits()) return i;
        }
    }
    return default_arm;
}

void exec_stmt(const Stmt& s, const rtl::Design& design, EvalContext& ctx) {
    switch (s.kind) {
        case Stmt::Kind::Block:
            for (const auto& c : s.stmts) exec_stmt(*c, design, ctx);
            break;
        case Stmt::Kind::Assign: exec_assign(s, design, ctx); break;
        case Stmt::Kind::If: {
            const Value c = eval_expr(*s.cond, ctx);
            if (c.is_true()) {
                if (s.then_stmt) exec_stmt(*s.then_stmt, design, ctx);
            } else if (s.else_stmt) {
                exec_stmt(*s.else_stmt, design, ctx);
            }
            break;
        }
        case Stmt::Kind::Case: {
            const Value subj = eval_expr(*s.subject, ctx);
            const size_t arm = pick_case_arm(s.arms, subj);
            if (arm < s.arms.size() && s.arms[arm].body) {
                exec_stmt(*s.arms[arm].body, design, ctx);
            }
            break;
        }
    }
}

}  // namespace eraser::sim
