#include "sim/bytecode.h"

#include <algorithm>
#include <cassert>

#include "util/diagnostics.h"

namespace eraser::sim {

using rtl::Expr;
using rtl::Stmt;

namespace {

/// Single-use compiler: emits into one BcProgram, tracking the exact value-
/// stack depth so the VM can preallocate. Depth at every statement boundary
/// (hence every jump target) is zero, so a linear max over the emission
/// order is the true high-water mark on every execution path.
class Compiler {
  public:
    Compiler(const rtl::Design* design, const BcWriteSets& writes)
        : design_(design), writes_(writes) {
        // Dense slot assignment for the body's blocking-write targets (see
        // the slotted opcodes in bytecode.h). Slot ids must fit in `nargs`;
        // pathological bodies fall back to overlay opcodes wholesale.
        if (!writes_.conservative &&
            writes_.blocking_signals.size() <= UINT8_MAX) {
            slot_sigs_.assign(writes_.blocking_signals.begin(),
                              writes_.blocking_signals.end());
        }
    }

    void expr(const Expr& e) {
        switch (e.kind) {
            case Expr::Kind::Const:
                emit({.kind = BcOp::PushConst, .a = const_index(e.cval)}, +1);
                break;
            case Expr::Kind::SignalRef: {
                const int slot = slot_of(e.sig);
                if (slot >= 0) {
                    emit({.kind = BcOp::PushSlot,
                          .nargs = static_cast<uint8_t>(slot),
                          .width = static_cast<uint16_t>(e.width),
                          .a = e.sig},
                         +1);
                } else {
                    emit({.kind = maybe_written_signal(e.sig)
                                      ? BcOp::PushSignal
                                      : BcOp::PushSignalG,
                          .width = static_cast<uint16_t>(e.width),
                          .a = e.sig},
                         +1);
                }
                break;
            }
            case Expr::Kind::ArrayRead:
                expr(*e.args[0]);
                emit({.kind = maybe_written_array(e.arr) ? BcOp::ArrayRead
                                                         : BcOp::ArrayReadG,
                      .width = static_cast<uint16_t>(e.width),
                      .a = e.arr},
                     0);
                break;
            case Expr::Kind::OpApply: {
                for (const auto& arg : e.args) expr(*arg);
                assert(e.args.size() <= UINT8_MAX);
                const auto n = static_cast<uint8_t>(e.args.size());
                emit({.kind = BcOp::Apply,
                      .op = e.op,
                      .nargs = n,
                      .width = static_cast<uint16_t>(e.width),
                      .imm = static_cast<uint16_t>(e.imm)},
                     1 - static_cast<int>(n));
                break;
            }
        }
    }

    void assign(const Stmt& s) {
        assert(s.kind == Stmt::Kind::Assign);
        const rtl::LValue& lhs = s.lhs;
        const uint8_t flags = s.nonblocking ? kBcNonblocking : 0;
        // Blocking writes of slotted signals stay in VM slots until Halt;
        // nonblocking writes always go through the context's NBA buffer.
        const int slot =
            lhs.is_array() || s.nonblocking ? -1 : slot_of(lhs.sig);
        expr(*s.rhs);   // RHS first, as in exec_assign
        if (lhs.is_array()) {
            expr(*lhs.index);
            emit({.kind = BcOp::StoreArray,
                  .flags = flags,
                  .width =
                      static_cast<uint16_t>(design_->arrays[lhs.arr].width),
                  .a = lhs.arr},
                 -2);
        } else if (!lhs.partial) {
            emit({.kind = slot >= 0 ? BcOp::StoreFullSlot : BcOp::StoreFull,
                  .flags = flags,
                  .nargs = slot >= 0 ? static_cast<uint8_t>(slot) : uint8_t{0},
                  .width =
                      static_cast<uint16_t>(design_->signals[lhs.sig].width),
                  .a = lhs.sig},
                 -1);
        } else if (lhs.index) {
            expr(*lhs.index);
            emit({.kind = slot >= 0 ? BcOp::StoreBitSlot : BcOp::StoreBit,
                  .flags = flags,
                  .nargs = slot >= 0 ? static_cast<uint8_t>(slot) : uint8_t{0},
                  .width =
                      static_cast<uint16_t>(design_->signals[lhs.sig].width),
                  .a = lhs.sig},
                 -2);
        } else {
            emit({.kind = slot >= 0 ? BcOp::StorePartSlot : BcOp::StorePart,
                  .flags = flags,
                  .nargs = slot >= 0 ? static_cast<uint8_t>(slot) : uint8_t{0},
                  .width = static_cast<uint16_t>(lhs.width),
                  .imm = static_cast<uint16_t>(lhs.lo),
                  .a = lhs.sig},
                 -1);
        }
    }

    void stmt(const Stmt& s) {
        switch (s.kind) {
            case Stmt::Kind::Block:
                for (const auto& c : s.stmts) stmt(*c);
                break;
            case Stmt::Kind::Assign:
                assign(s);
                break;
            case Stmt::Kind::If: {
                expr(*s.cond);
                const uint32_t jf =
                    emit({.kind = BcOp::JumpIfFalse}, -1);
                if (s.then_stmt) stmt(*s.then_stmt);
                if (s.else_stmt) {
                    const uint32_t j = emit({.kind = BcOp::Jump}, 0);
                    patch(jf, here());
                    stmt(*s.else_stmt);
                    patch(j, here());
                } else {
                    patch(jf, here());
                }
                break;
            }
            case Stmt::Kind::Case: {
                expr(*s.subject);
                const auto tbl =
                    static_cast<uint32_t>(prog_.case_tables.size());
                prog_.case_tables.emplace_back();
                emit({.kind = BcOp::CaseJump, .a = tbl}, -1);
                // Arm bodies in order, each jumping past the whole case.
                std::vector<uint32_t> arm_start(s.arms.size());
                std::vector<uint32_t> end_jumps;
                for (size_t i = 0; i < s.arms.size(); ++i) {
                    if (s.arms[i].body) {
                        arm_start[i] = here();
                        stmt(*s.arms[i].body);
                        end_jumps.push_back(emit({.kind = BcOp::Jump}, 0));
                    } else {
                        arm_start[i] = UINT32_MAX;   // resolved to `end`
                    }
                }
                const uint32_t end = here();
                for (const uint32_t j : end_jumps) patch(j, end);
                // First-match label table, arm/label order = pick_case_arm.
                BcCaseTable& table = prog_.case_tables[tbl];
                table.first =
                    static_cast<uint32_t>(prog_.case_entries.size());
                table.no_match = end;
                for (size_t i = 0; i < s.arms.size(); ++i) {
                    const uint32_t target =
                        arm_start[i] == UINT32_MAX ? end : arm_start[i];
                    if (s.arms[i].labels.empty()) {
                        table.no_match = target;   // default arm
                        continue;
                    }
                    for (const Value& label : s.arms[i].labels) {
                        prog_.case_entries.push_back({label.bits(), target});
                    }
                }
                table.count =
                    static_cast<uint32_t>(prog_.case_entries.size()) -
                    table.first;
                break;
            }
        }
    }

    [[nodiscard]] BcProgram finish() {
        emit({.kind = BcOp::Halt}, 0);
        prog_.max_stack = static_cast<uint32_t>(max_depth_);
        prog_.slot_sigs = std::move(slot_sigs_);
        fuse_superword_pairs(prog_);
        return std::move(prog_);
    }

    /// Peephole: Apply followed by a same-width full store fuses into
    /// ApplyStore / ApplyStoreSlot (see bytecode.h). The store instruction
    /// is removed, so every jump target and case-table entry is remapped;
    /// a pair whose store is itself a jump target stays unfused.
    static void fuse_superword_pairs(BcProgram& p) {
        std::vector<BcInstr>& code = p.code;
        std::vector<uint8_t> is_target(code.size(), 0);
        for (const BcInstr& i : code) {
            if (i.kind == BcOp::Jump || i.kind == BcOp::JumpIfFalse) {
                is_target[i.a] = 1;
            }
        }
        for (const BcCaseTable& t : p.case_tables) {
            is_target[t.no_match] = 1;
            for (uint32_t k = 0; k < t.count; ++k) {
                is_target[p.case_entries[t.first + k].target] = 1;
            }
        }

        std::vector<BcInstr> out;
        out.reserve(code.size());
        std::vector<uint32_t> remap(code.size());
        for (uint32_t pc = 0; pc < code.size(); ++pc) {
            remap[pc] = static_cast<uint32_t>(out.size());
            const BcInstr& i = code[pc];
            // Slice is excluded: its Apply carries `imm`, which the fused
            // slot variant repurposes as the slot id.
            if (i.kind == BcOp::Apply && i.op != rtl::Op::Slice &&
                pc + 1 < code.size() && !is_target[pc + 1]) {
                const BcInstr& s = code[pc + 1];
                if (s.kind == BcOp::StoreFull && s.width == i.width) {
                    BcInstr fused = i;
                    fused.kind = BcOp::ApplyStore;
                    fused.flags = s.flags;
                    fused.a = s.a;
                    out.push_back(fused);
                    remap[pc + 1] = remap[pc];   // never a jump target
                    ++pc;
                    continue;
                }
                if (s.kind == BcOp::StoreFullSlot && s.width == i.width) {
                    BcInstr fused = i;
                    fused.kind = BcOp::ApplyStoreSlot;
                    fused.imm = s.nargs;   // slot id
                    fused.a = s.a;
                    out.push_back(fused);
                    remap[pc + 1] = remap[pc];
                    ++pc;
                    continue;
                }
            }
            out.push_back(i);
        }
        if (out.size() == code.size()) return;   // nothing fused
        for (BcInstr& i : out) {
            if (i.kind == BcOp::Jump || i.kind == BcOp::JumpIfFalse) {
                i.a = remap[i.a];
            }
        }
        for (BcCaseTable& t : p.case_tables) {
            t.no_match = remap[t.no_match];
            for (uint32_t k = 0; k < t.count; ++k) {
                p.case_entries[t.first + k].target =
                    remap[p.case_entries[t.first + k].target];
            }
        }
        code = std::move(out);
    }

  private:
    [[nodiscard]] uint32_t here() const {
        return static_cast<uint32_t>(prog_.code.size());
    }
    uint32_t emit(BcInstr i, int depth_delta) {
        const uint32_t at = here();
        prog_.code.push_back(i);
        depth_ += depth_delta;
        assert(depth_ >= 0);
        if (depth_ > max_depth_) max_depth_ = depth_;
        return at;
    }
    void patch(uint32_t at, uint32_t target) { prog_.code[at].a = target; }
    [[nodiscard]] bool maybe_written_signal(rtl::SignalId sig) const {
        if (writes_.conservative) return true;
        return std::find(writes_.blocking_signals.begin(),
                         writes_.blocking_signals.end(),
                         sig) != writes_.blocking_signals.end();
    }
    [[nodiscard]] bool maybe_written_array(rtl::ArrayId arr) const {
        if (writes_.conservative) return true;
        return std::find(writes_.blocking_arrays.begin(),
                         writes_.blocking_arrays.end(),
                         arr) != writes_.blocking_arrays.end();
    }
    /// Slot id of a blocking-written signal, or -1 when unslotted.
    [[nodiscard]] int slot_of(rtl::SignalId sig) const {
        for (size_t i = 0; i < slot_sigs_.size(); ++i) {
            if (slot_sigs_[i] == sig) return static_cast<int>(i);
        }
        return -1;
    }

  public:
    /// Excludes nonblocking-write targets of the unit being compiled from
    /// slotting: a partial NBA write reads its target through
    /// read_for_nba_update -> read_signal, which cannot see a value still
    /// held in a slot. (Blocking-then-NBA writes of one signal are rare, so
    /// the lost optimization is negligible; correctness is not.)
    void exclude_nba_targets(const Stmt& s) {
        if (slot_sigs_.empty()) return;
        switch (s.kind) {
            case Stmt::Kind::Block:
                for (const auto& c : s.stmts) exclude_nba_targets(*c);
                break;
            case Stmt::Kind::Assign:
                if (s.nonblocking && !s.lhs.is_array()) {
                    std::erase(slot_sigs_, s.lhs.sig);
                }
                break;
            case Stmt::Kind::If:
                if (s.then_stmt) exclude_nba_targets(*s.then_stmt);
                if (s.else_stmt) exclude_nba_targets(*s.else_stmt);
                break;
            case Stmt::Kind::Case:
                for (const auto& arm : s.arms) {
                    if (arm.body) exclude_nba_targets(*arm.body);
                }
                break;
        }
    }

  private:
    uint32_t const_index(const Value& v) {
        for (size_t i = 0; i < prog_.consts.size(); ++i) {
            if (prog_.consts[i] == v) return static_cast<uint32_t>(i);
        }
        prog_.consts.push_back(v);
        return static_cast<uint32_t>(prog_.consts.size() - 1);
    }

    const rtl::Design* design_;   // required for statements, not expressions
    BcWriteSets writes_;
    std::vector<uint32_t> slot_sigs_;
    BcProgram prog_;
    int depth_ = 0;
    int max_depth_ = 0;
};

}  // namespace

BcProgram compile_stmt(const Stmt& body, const rtl::Design& design,
                       const BcWriteSets& writes) {
    Compiler c(&design, writes);
    c.exclude_nba_targets(body);
    c.stmt(body);
    return c.finish();
}

BcProgram compile_assigns(std::span<const Stmt* const> assigns,
                          const rtl::Design& design,
                          const BcWriteSets& writes) {
    Compiler c(&design, writes);
    for (const Stmt* a : assigns) c.exclude_nba_targets(*a);
    for (const Stmt* a : assigns) c.assign(*a);
    return c.finish();
}

BcProgram compile_expr(const Expr& e) {
    Compiler c(nullptr, BcWriteSets{});
    c.expr(e);
    return c.finish();
}

BcDecision compile_decision(const Stmt& branch) {
    BcDecision d;
    if (branch.kind == Stmt::Kind::If) {
        d.is_if = true;
        d.subject = compile_expr(*branch.cond);
        return d;
    }
    if (branch.kind != Stmt::Kind::Case) {
        throw SimError("compile_decision: statement is not a branch");
    }
    d.is_if = false;
    d.subject = compile_expr(*branch.subject);
    // Successor layout mirrors cfg::Cfg::build: succs[i] = arm i,
    // succs[arms.size()] = fall-through when no label matches and there is
    // no default arm (pick_case_arm's "no arm executes").
    d.no_match = static_cast<uint32_t>(branch.arms.size());
    for (size_t i = 0; i < branch.arms.size(); ++i) {
        if (branch.arms[i].labels.empty()) {
            d.no_match = static_cast<uint32_t>(i);
            continue;
        }
        for (const Value& label : branch.arms[i].labels) {
            d.table.push_back({label.bits(), static_cast<uint32_t>(i)});
        }
    }
    return d;
}

SharedPrograms compile_design_programs(const rtl::Design& design) {
    auto behaviors = std::make_shared<std::vector<BcProgram>>(
        design.behaviors.size());
    for (size_t b = 0; b < design.behaviors.size(); ++b) {
        const rtl::BehavNode& bn = design.behaviors[b];
        if (bn.body) {
            (*behaviors)[b] = compile_stmt(
                *bn.body, design,
                {bn.blocking_writes, bn.array_writes, false});
        }
    }
    auto initials =
        std::make_shared<std::vector<BcProgram>>(design.initials.size());
    for (size_t i = 0; i < design.initials.size(); ++i) {
        if (design.initials[i].body) {
            (*initials)[i] = compile_stmt(*design.initials[i].body, design);
        }
    }
    return {std::move(behaviors), std::move(initials)};
}

}  // namespace eraser::sim
