// Stimulus: engine-agnostic testbench description. A stimulus drives primary
// inputs cycle by cycle through the DriveHandle interface; the same stimulus
// object is replayed identically by the good simulator, the serial fault
// simulators, and the concurrent engine, which is what makes cross-engine
// coverage comparison meaningful.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "rtl/design.h"

namespace eraser::sim {

/// What a stimulus is allowed to do to a simulator: drive inputs and
/// backdoor-load memories. Implemented by each engine's harness.
class DriveHandle {
  public:
    virtual ~DriveHandle() = default;
    virtual void set_input(rtl::SignalId sig, uint64_t value) = 0;
    virtual void load_array(rtl::ArrayId arr,
                            std::span<const uint64_t> words) = 0;
};

/// A deterministic input sequence for one benchmark.
class Stimulus {
  public:
    virtual ~Stimulus() = default;

    /// Resolve signal names once; called before the run.
    virtual void bind(const rtl::Design& design) = 0;

    /// Name of the primary clock the harness toggles each cycle.
    [[nodiscard]] virtual std::string clock_name() const { return "clk"; }

    [[nodiscard]] virtual uint32_t num_cycles() const = 0;

    /// One-time setup after reset (e.g. program loads into memories).
    virtual void initialize(DriveHandle&) {}

    /// Drives the inputs for `cycle` (applied while the clock is low, before
    /// the rising edge).
    virtual void apply(uint32_t cycle, DriveHandle&) = 0;
};

}  // namespace eraser::sim
