// Stimulus: engine-agnostic testbench description. A stimulus drives primary
// inputs cycle by cycle through the DriveHandle interface; the same stimulus
// object is replayed identically by the good simulator, the serial fault
// simulators, and the concurrent engine, which is what makes cross-engine
// coverage comparison meaningful.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "rtl/design.h"

namespace eraser::sim {

/// What a stimulus is allowed to do to a simulator: drive inputs and
/// backdoor-load memories. Implemented by each engine's harness.
class DriveHandle {
  public:
    virtual ~DriveHandle() = default;
    virtual void set_input(rtl::SignalId sig, uint64_t value) = 0;
    virtual void load_array(rtl::ArrayId arr,
                            std::span<const uint64_t> words) = 0;
};

/// A deterministic input sequence for one benchmark.
class Stimulus {
  public:
    virtual ~Stimulus() = default;

    /// Resolve signal names once; called before the run.
    virtual void bind(const rtl::Design& design) = 0;

    /// Name of the primary clock the harness toggles each cycle.
    [[nodiscard]] virtual std::string clock_name() const { return "clk"; }

    [[nodiscard]] virtual uint32_t num_cycles() const = 0;

    /// One-time setup after reset (e.g. program loads into memories).
    virtual void initialize(DriveHandle&) {}

    /// Drives the inputs for `cycle` (applied while the clock is low, before
    /// the rising edge).
    virtual void apply(uint32_t cycle, DriveHandle&) = 0;

    // ----- Epochs (two-dimensional parallelism seam) -----
    //
    // A stimulus may declare that its cycle sequence factors into E
    // *independent* epochs partitioning [0, num_cycles()): the engine runs
    // each epoch as its own reset-to-end pass (reset, initialize, then the
    // epoch's cycles), and a fault's campaign verdict is the OR of its
    // per-epoch verdicts. Declaring E > 1 is a promise that apply() for a
    // cycle inside epoch e depends only on e and the in-epoch offset —
    // never on earlier epochs having been applied — so epochs can be
    // packed into separate (fault, epoch) lanes and run in any order or
    // in parallel, bit-identically to the serial epoch loop.

    /// Number of independent epochs; the default (1) keeps the classic
    /// single-pass behavior for every existing stimulus.
    [[nodiscard]] virtual uint32_t num_epochs() const { return 1; }

    /// Cycle range [begin, end) of epoch `e`. The ranges of epochs
    /// 0..num_epochs()-1 must be contiguous, ascending, and partition
    /// [0, num_cycles()). Must not depend on bind().
    [[nodiscard]] virtual std::pair<uint32_t, uint32_t> epoch_range(
        uint32_t /*e*/) const {
        return {0, num_cycles()};
    }
};

/// Restricts an epoched stimulus to the contiguous epoch window
/// [epoch_begin, epoch_end): local cycle c maps to inner cycle
/// (window start + c). The window is itself an epoched stimulus (its
/// epochs are the inner epochs it covers), so the engine's per-epoch
/// passes execute identically whether a unit covers one window or all
/// of them — the basis of the 2D (fault, epoch) packing's bit-identity.
///
/// Precondition: epoch_begin < epoch_end <= inner->num_epochs().
class EpochWindowStimulus final : public Stimulus {
  public:
    EpochWindowStimulus(std::unique_ptr<Stimulus> inner, uint32_t epoch_begin,
                        uint32_t epoch_end)
        : inner_(std::move(inner)),
          epoch_begin_(epoch_begin),
          epoch_end_(epoch_end),
          cycle_begin_(inner_->epoch_range(epoch_begin).first),
          cycle_end_(inner_->epoch_range(epoch_end - 1).second) {}

    void bind(const rtl::Design& design) override { inner_->bind(design); }
    [[nodiscard]] std::string clock_name() const override {
        return inner_->clock_name();
    }
    [[nodiscard]] uint32_t num_cycles() const override {
        return cycle_end_ - cycle_begin_;
    }
    void initialize(DriveHandle& h) override { inner_->initialize(h); }
    void apply(uint32_t cycle, DriveHandle& h) override {
        inner_->apply(cycle_begin_ + cycle, h);
    }
    [[nodiscard]] uint32_t num_epochs() const override {
        return epoch_end_ - epoch_begin_;
    }
    [[nodiscard]] std::pair<uint32_t, uint32_t> epoch_range(
        uint32_t e) const override {
        const auto [b, end] = inner_->epoch_range(epoch_begin_ + e);
        return {b - cycle_begin_, end - cycle_begin_};
    }

  private:
    std::unique_ptr<Stimulus> inner_;
    uint32_t epoch_begin_;
    uint32_t epoch_end_;
    uint32_t cycle_begin_;
    uint32_t cycle_end_;
};

}  // namespace eraser::sim
