#include "sim/bcvm.h"

#include <cassert>

namespace eraser::sim {

Value BcVm::run(const BcProgram& p, EvalContext& ctx) {
    // Steady-state these are no-ops: the buffers only ever grow to the
    // largest program's compile-time high-water marks (new slot flags are
    // value-initialized to "unwritten").
    if (stack_.size() < p.max_stack) stack_.resize(p.max_stack);
    if (slots_.size() < p.slot_sigs.size()) {
        slots_.resize(p.slot_sigs.size());
        slot_written_.resize(p.slot_sigs.size(), 0);
    }
    Value* st = stack_.data();
    const BcInstr* code = p.code.data();
    size_t sp = 0;
    size_t pc = 0;
    for (;;) {
        const BcInstr& i = code[pc];
        switch (i.kind) {
            case BcOp::PushConst:
                st[sp++] = p.consts[i.a];
                ++pc;
                break;
            case BcOp::PushSignal:
                st[sp++] = ctx.read_signal(i.a).resized(i.width);
                ++pc;
                break;
            case BcOp::PushSignalG:
                st[sp++] = ctx.read_signal_unwritten(i.a).resized(i.width);
                ++pc;
                break;
            case BcOp::ArrayRead:
                st[sp - 1] =
                    ctx.read_array(i.a, st[sp - 1].bits()).resized(i.width);
                ++pc;
                break;
            case BcOp::ArrayReadG:
                st[sp - 1] = ctx.read_array_unwritten(i.a, st[sp - 1].bits())
                                 .resized(i.width);
                ++pc;
                break;
            case BcOp::Apply: {
                const Value r = rtl::eval_op(
                    i.op, std::span<const Value>(st + (sp - i.nargs), i.nargs),
                    i.width, i.imm);
                sp -= i.nargs;
                st[sp++] = r;
                ++pc;
                break;
            }
            case BcOp::StoreFull:
                ctx.write_signal(i.a, st[--sp].resized(i.width),
                                 (i.flags & kBcNonblocking) != 0);
                ++pc;
                break;
            case BcOp::StorePart: {
                const bool nb = (i.flags & kBcNonblocking) != 0;
                const Value rhs = st[--sp];
                const Value cur = nb ? ctx.read_for_nba_update(i.a)
                                     : ctx.read_signal(i.a);
                ctx.write_signal(i.a, cur.with_bits(i.imm, i.width, rhs.bits()),
                                 nb);
                ++pc;
                break;
            }
            case BcOp::StoreBit: {
                const uint64_t idx = st[--sp].bits();
                const Value rhs = st[--sp];
                if (idx < i.width) {   // out-of-range bit writes are no-ops
                    const bool nb = (i.flags & kBcNonblocking) != 0;
                    const Value cur = nb ? ctx.read_for_nba_update(i.a)
                                         : ctx.read_signal(i.a);
                    ctx.write_signal(
                        i.a,
                        cur.with_bits(static_cast<unsigned>(idx), 1,
                                      rhs.bits()),
                        nb);
                }
                ++pc;
                break;
            }
            case BcOp::StoreArray: {
                const uint64_t idx = st[--sp].bits();
                const Value rhs = st[--sp];
                if (idx < design_.arrays[i.a].size) {   // no-op when OOB
                    ctx.write_array(i.a, idx, rhs.resized(i.width),
                                    (i.flags & kBcNonblocking) != 0);
                }
                ++pc;
                break;
            }
            case BcOp::Jump:
                pc = i.a;
                break;
            case BcOp::JumpIfFalse:
                pc = st[--sp].is_true() ? pc + 1 : i.a;
                break;
            case BcOp::CaseJump: {
                const uint64_t subj = st[--sp].bits();
                const BcCaseTable& t = p.case_tables[i.a];
                const BcCaseEntry* entries = p.case_entries.data() + t.first;
                uint32_t target = t.no_match;
                for (uint32_t k = 0; k < t.count; ++k) {
                    if (entries[k].label == subj) {
                        target = entries[k].target;
                        break;
                    }
                }
                pc = target;
                break;
            }
            case BcOp::PushSlot: {
                const uint8_t slot = i.nargs;
                st[sp++] = (slot_written_[slot] ? slots_[slot]
                                                : ctx.read_signal(i.a))
                               .resized(i.width);
                ++pc;
                break;
            }
            case BcOp::StoreFullSlot: {
                const uint8_t slot = i.nargs;
                slots_[slot] = st[--sp].resized(i.width);
                if (!slot_written_[slot]) {
                    slot_written_[slot] = 1;
                    slot_touched_.push_back(slot);
                }
                ++pc;
                break;
            }
            case BcOp::StorePartSlot: {
                const uint8_t slot = i.nargs;
                const Value rhs = st[--sp];
                const Value cur = slot_written_[slot]
                                      ? slots_[slot]
                                      : ctx.read_signal(i.a);
                slots_[slot] = cur.with_bits(i.imm, i.width, rhs.bits());
                if (!slot_written_[slot]) {
                    slot_written_[slot] = 1;
                    slot_touched_.push_back(slot);
                }
                ++pc;
                break;
            }
            case BcOp::StoreBitSlot: {
                const uint8_t slot = i.nargs;
                const uint64_t idx = st[--sp].bits();
                const Value rhs = st[--sp];
                if (idx < i.width) {   // out-of-range bit writes are no-ops
                    const Value cur = slot_written_[slot]
                                          ? slots_[slot]
                                          : ctx.read_signal(i.a);
                    slots_[slot] = cur.with_bits(static_cast<unsigned>(idx),
                                                 1, rhs.bits());
                    if (!slot_written_[slot]) {
                        slot_written_[slot] = 1;
                        slot_touched_.push_back(slot);
                    }
                }
                ++pc;
                break;
            }
            case BcOp::Halt:
                // Flush written slots into the activation in first-write
                // order — the record downstream is bit-identical to the
                // unslotted execution.
                for (const uint32_t slot : slot_touched_) {
                    ctx.write_signal(p.slot_sigs[slot], slots_[slot], false);
                    slot_written_[slot] = 0;
                }
                slot_touched_.clear();
                return sp > 0 ? st[sp - 1] : Value();
        }
    }
}

}  // namespace eraser::sim
