#include "sim/bcvm.h"

#include <bit>
#include <cassert>
#include <span>

namespace eraser::sim {

Value BcVm::run(const BcProgram& p, EvalContext& ctx) {
    // Steady-state these are no-ops: the buffers only ever grow to the
    // largest program's compile-time high-water marks (new slot flags are
    // value-initialized to "unwritten").
    if (stack_.size() < p.max_stack) stack_.resize(p.max_stack);
    if (slots_.size() < p.slot_sigs.size()) {
        slots_.resize(p.slot_sigs.size());
        slot_written_.resize(p.slot_sigs.size(), 0);
    }
    Value* st = stack_.data();
    const BcInstr* code = p.code.data();
    size_t sp = 0;
    size_t pc = 0;
    for (;;) {
        const BcInstr& i = code[pc];
        switch (i.kind) {
            case BcOp::PushConst:
                st[sp++] = p.consts[i.a];
                ++pc;
                break;
            case BcOp::PushSignal:
                st[sp++] = ctx.read_signal(i.a).resized(i.width);
                ++pc;
                break;
            case BcOp::PushSignalG:
                st[sp++] = ctx.read_signal_unwritten(i.a).resized(i.width);
                ++pc;
                break;
            case BcOp::ArrayRead:
                st[sp - 1] =
                    ctx.read_array(i.a, st[sp - 1].bits()).resized(i.width);
                ++pc;
                break;
            case BcOp::ArrayReadG:
                st[sp - 1] = ctx.read_array_unwritten(i.a, st[sp - 1].bits())
                                 .resized(i.width);
                ++pc;
                break;
            case BcOp::Apply: {
                const Value r = rtl::eval_op(
                    i.op, std::span<const Value>(st + (sp - i.nargs), i.nargs),
                    i.width, i.imm);
                sp -= i.nargs;
                st[sp++] = r;
                ++pc;
                break;
            }
            case BcOp::StoreFull:
                ctx.write_signal(i.a, st[--sp].resized(i.width),
                                 (i.flags & kBcNonblocking) != 0);
                ++pc;
                break;
            case BcOp::StorePart: {
                const bool nb = (i.flags & kBcNonblocking) != 0;
                const Value rhs = st[--sp];
                const Value cur = nb ? ctx.read_for_nba_update(i.a)
                                     : ctx.read_signal(i.a);
                ctx.write_signal(i.a, cur.with_bits(i.imm, i.width, rhs.bits()),
                                 nb);
                ++pc;
                break;
            }
            case BcOp::StoreBit: {
                const uint64_t idx = st[--sp].bits();
                const Value rhs = st[--sp];
                if (idx < i.width) {   // out-of-range bit writes are no-ops
                    const bool nb = (i.flags & kBcNonblocking) != 0;
                    const Value cur = nb ? ctx.read_for_nba_update(i.a)
                                         : ctx.read_signal(i.a);
                    ctx.write_signal(
                        i.a,
                        cur.with_bits(static_cast<unsigned>(idx), 1,
                                      rhs.bits()),
                        nb);
                }
                ++pc;
                break;
            }
            case BcOp::StoreArray: {
                const uint64_t idx = st[--sp].bits();
                const Value rhs = st[--sp];
                if (idx < design_.arrays[i.a].size) {   // no-op when OOB
                    ctx.write_array(i.a, idx, rhs.resized(i.width),
                                    (i.flags & kBcNonblocking) != 0);
                }
                ++pc;
                break;
            }
            case BcOp::Jump:
                pc = i.a;
                break;
            case BcOp::JumpIfFalse:
                pc = st[--sp].is_true() ? pc + 1 : i.a;
                break;
            case BcOp::CaseJump: {
                const uint64_t subj = st[--sp].bits();
                const BcCaseTable& t = p.case_tables[i.a];
                const BcCaseEntry* entries = p.case_entries.data() + t.first;
                uint32_t target = t.no_match;
                for (uint32_t k = 0; k < t.count; ++k) {
                    if (entries[k].label == subj) {
                        target = entries[k].target;
                        break;
                    }
                }
                pc = target;
                break;
            }
            case BcOp::PushSlot: {
                const uint8_t slot = i.nargs;
                st[sp++] = (slot_written_[slot] ? slots_[slot]
                                                : ctx.read_signal(i.a))
                               .resized(i.width);
                ++pc;
                break;
            }
            case BcOp::StoreFullSlot: {
                const uint8_t slot = i.nargs;
                slots_[slot] = st[--sp].resized(i.width);
                if (!slot_written_[slot]) {
                    slot_written_[slot] = 1;
                    slot_touched_.push_back(slot);
                }
                ++pc;
                break;
            }
            case BcOp::StorePartSlot: {
                const uint8_t slot = i.nargs;
                const Value rhs = st[--sp];
                const Value cur = slot_written_[slot]
                                      ? slots_[slot]
                                      : ctx.read_signal(i.a);
                slots_[slot] = cur.with_bits(i.imm, i.width, rhs.bits());
                if (!slot_written_[slot]) {
                    slot_written_[slot] = 1;
                    slot_touched_.push_back(slot);
                }
                ++pc;
                break;
            }
            case BcOp::StoreBitSlot: {
                const uint8_t slot = i.nargs;
                const uint64_t idx = st[--sp].bits();
                const Value rhs = st[--sp];
                if (idx < i.width) {   // out-of-range bit writes are no-ops
                    const Value cur = slot_written_[slot]
                                          ? slots_[slot]
                                          : ctx.read_signal(i.a);
                    slots_[slot] = cur.with_bits(static_cast<unsigned>(idx),
                                                 1, rhs.bits());
                    if (!slot_written_[slot]) {
                        slot_written_[slot] = 1;
                        slot_touched_.push_back(slot);
                    }
                }
                ++pc;
                break;
            }
            case BcOp::ApplyStore: {
                // Fused Apply + StoreFull (same width, Slice excluded).
                const Value r = rtl::eval_op(
                    i.op, std::span<const Value>(st + (sp - i.nargs), i.nargs),
                    i.width, 0);
                sp -= i.nargs;
                ctx.write_signal(i.a, r, (i.flags & kBcNonblocking) != 0);
                ++pc;
                break;
            }
            case BcOp::ApplyStoreSlot: {
                // Fused Apply + StoreFullSlot; the slot id rides in imm.
                const Value r = rtl::eval_op(
                    i.op, std::span<const Value>(st + (sp - i.nargs), i.nargs),
                    i.width, 0);
                sp -= i.nargs;
                const uint32_t slot = i.imm;
                slots_[slot] = r;
                if (!slot_written_[slot]) {
                    slot_written_[slot] = 1;
                    slot_touched_.push_back(slot);
                }
                ++pc;
                break;
            }
            case BcOp::Halt:
                // Flush written slots into the activation in first-write
                // order — the record downstream is bit-identical to the
                // unslotted execution.
                for (const uint32_t slot : slot_touched_) {
                    ctx.write_signal(p.slot_sigs[slot], slots_[slot], false);
                    slot_written_[slot] = 0;
                }
                slot_touched_.clear();
                return sp > 0 ? st[sp - 1] : Value();
        }
    }
}

// --- superword lane pass -----------------------------------------------------

namespace {

/// Masks a lane cell's plane values down to a new width (the lane analogue
/// of Value::resized; dmask is kept — lanes equal to base after truncation
/// stay flagged, which is an over-approximation the commit layer resolves
/// by value comparison).
inline void resize_cell(LaneCell& c, uint64_t* plane, unsigned w) {
    if (c.base.width() == w) return;
    c.base = c.base.resized(w);
    if (c.dmask != 0 && w < kMaxWidth) {
        const uint64_t m = Value::mask(w);
        uint64_t rest = c.dmask;
        while (rest != 0) {
            const uint32_t l = static_cast<uint32_t>(std::countr_zero(rest));
            rest &= rest - 1;
            plane[l] &= m;
        }
    }
}

/// Lane l's value of a cell.
inline Value lane_value(const LaneCell& c, const uint64_t* plane,
                        uint32_t l) {
    return Value((c.dmask >> l) & 1 ? plane[l] : c.base.bits(),
                 c.base.width());
}

}  // namespace

uint64_t BcVm::exec_lanes(const BcProgram& p, LaneEvalContext& ctx,
                          uint64_t lanes) {
    if (lstack_.size() < p.max_stack) {
        lstack_.resize(p.max_stack);
        lplanes_.resize(static_cast<size_t>(p.max_stack) * 64);
    }
    if (lslots_.size() < p.slot_sigs.size()) {
        lslots_.resize(p.slot_sigs.size());
        lslot_planes_.resize(p.slot_sigs.size() * 64);
        lslot_written_.resize(p.slot_sigs.size(), 0);
    }
    LaneCell* st = lstack_.data();
    uint64_t* planes = lplanes_.data();
    const BcInstr* code = p.code.data();
    uint64_t active = lanes;
    size_t sp = 0;
    size_t pc = 0;

    auto plane = [&](size_t slot) { return planes + slot * 64; };
    auto slot_plane = [&](size_t slot) {
        return lslot_planes_.data() + slot * 64;
    };
    auto abort_pass = [&]() -> uint64_t {
        for (const uint32_t slot : lslot_touched_) lslot_written_[slot] = 0;
        lslot_touched_.clear();
        return 0;
    };
    auto touch_slot = [&](uint32_t slot) {
        if (!lslot_written_[slot]) {
            lslot_written_[slot] = 1;
            lslot_touched_.push_back(slot);
        }
    };
    // Per-lane scalar Apply over the operand cells [base_sp, base_sp+n):
    // evaluates base once, then only the diverged lanes. The result lands
    // in st[base_sp] / plane(base_sp); operand 0's plane is read for lane l
    // strictly before lane l's result overwrites it.
    auto apply_lanes = [&](const BcInstr& i, size_t base_sp,
                           unsigned imm) {
        const uint8_t n = i.nargs;
        if (lane_ops_.size() < n) {
            lane_ops_.resize(n);
            lane_args_.resize(n);
        }
        uint64_t u = 0;
        for (uint8_t k = 0; k < n; ++k) {
            lane_args_[k] = st[base_sp + k];
            u |= lane_args_[k].dmask;
        }
        u &= active;
        for (uint8_t k = 0; k < n; ++k) lane_ops_[k] = lane_args_[k].base;
        const Value rbase = rtl::eval_op(
            i.op, std::span<const Value>(lane_ops_.data(), n), i.width, imm);
        uint64_t out_mask = 0;
        uint64_t* out_plane = plane(base_sp);
        uint64_t rest = u;
        while (rest != 0) {
            const uint32_t l = static_cast<uint32_t>(std::countr_zero(rest));
            rest &= rest - 1;
            for (uint8_t k = 0; k < n; ++k) {
                lane_ops_[k] =
                    lane_value(lane_args_[k], plane(base_sp + k), l);
            }
            const Value r = rtl::eval_op(
                i.op, std::span<const Value>(lane_ops_.data(), n), i.width,
                imm);
            if (r.bits() != rbase.bits()) {
                out_mask |= uint64_t{1} << l;
                out_plane[l] = r.bits();
            }
        }
        st[base_sp] = {rbase, out_mask};
    };

    for (;;) {
        const BcInstr& i = code[pc];
        switch (i.kind) {
            case BcOp::PushConst:
                st[sp] = {p.consts[i.a], 0};
                ++sp;
                ++pc;
                break;
            case BcOp::PushSignal:
                ctx.read_signal(i.a, active, st[sp], plane(sp));
                resize_cell(st[sp], plane(sp), i.width);
                ++sp;
                ++pc;
                break;
            case BcOp::PushSignalG:
                ctx.read_signal_unwritten(i.a, active, st[sp], plane(sp));
                resize_cell(st[sp], plane(sp), i.width);
                ++sp;
                ++pc;
                break;
            case BcOp::ArrayRead: {
                const LaneCell idx = st[sp - 1];
                ctx.read_array(i.a, idx, plane(sp - 1), active, st[sp - 1],
                               plane(sp - 1));
                resize_cell(st[sp - 1], plane(sp - 1), i.width);
                ++pc;
                break;
            }
            case BcOp::ArrayReadG: {
                const LaneCell idx = st[sp - 1];
                ctx.read_array_unwritten(i.a, idx, plane(sp - 1), active,
                                         st[sp - 1], plane(sp - 1));
                resize_cell(st[sp - 1], plane(sp - 1), i.width);
                ++pc;
                break;
            }
            case BcOp::Apply:
                apply_lanes(i, sp - i.nargs, i.imm);
                sp -= i.nargs;
                ++sp;
                ++pc;
                break;
            case BcOp::StoreFull: {
                --sp;
                resize_cell(st[sp], plane(sp), i.width);
                ctx.write_signal(i.a, st[sp], plane(sp),
                                 (i.flags & kBcNonblocking) != 0);
                ++pc;
                break;
            }
            case BcOp::StorePart: {
                const bool nb = (i.flags & kBcNonblocking) != 0;
                --sp;
                const LaneCell rhs = st[sp];
                const uint64_t* rhs_plane = plane(sp);
                LaneCell cur;
                if (nb) {
                    ctx.read_for_nba_update(i.a, active, cur, tmp_plane_);
                } else {
                    ctx.read_signal(i.a, active, cur, tmp_plane_);
                }
                const Value rbase =
                    cur.base.with_bits(i.imm, i.width, rhs.base.bits());
                uint64_t u = (cur.dmask | rhs.dmask) & active;
                uint64_t out_mask = 0;
                uint64_t* out_plane = plane(sp);
                uint64_t rest = u;
                while (rest != 0) {
                    const uint32_t l =
                        static_cast<uint32_t>(std::countr_zero(rest));
                    rest &= rest - 1;
                    const Value cv = lane_value(cur, tmp_plane_, l);
                    const Value rv = lane_value(rhs, rhs_plane, l);
                    const Value r = cv.with_bits(i.imm, i.width, rv.bits());
                    if (r.bits() != rbase.bits()) {
                        out_mask |= uint64_t{1} << l;
                        out_plane[l] = r.bits();
                    }
                }
                ctx.write_signal(i.a, {rbase, out_mask}, out_plane, nb);
                ++pc;
                break;
            }
            case BcOp::StoreBit: {
                --sp;
                const LaneCell idx = st[sp];
                --sp;
                const LaneCell rhs = st[sp];
                const uint64_t* rhs_plane = plane(sp);
                // Lanes whose bit index diverges leave the pass (their
                // writes would target different bits).
                if ((idx.dmask & active) != 0) {
                    active &= ~idx.dmask;
                    if (active == 0) return abort_pass();
                }
                const uint64_t bit_idx = idx.base.bits();
                if (bit_idx < i.width) {
                    const bool nb = (i.flags & kBcNonblocking) != 0;
                    LaneCell cur;
                    if (nb) {
                        ctx.read_for_nba_update(i.a, active, cur,
                                                tmp_plane_);
                    } else {
                        ctx.read_signal(i.a, active, cur, tmp_plane_);
                    }
                    const Value rbase = cur.base.with_bits(
                        static_cast<unsigned>(bit_idx), 1, rhs.base.bits());
                    uint64_t out_mask = 0;
                    uint64_t* out_plane = plane(sp);
                    uint64_t rest = (cur.dmask | rhs.dmask) & active;
                    while (rest != 0) {
                        const uint32_t l =
                            static_cast<uint32_t>(std::countr_zero(rest));
                        rest &= rest - 1;
                        const Value cv = lane_value(cur, tmp_plane_, l);
                        const Value rv = lane_value(rhs, rhs_plane, l);
                        const Value r = cv.with_bits(
                            static_cast<unsigned>(bit_idx), 1, rv.bits());
                        if (r.bits() != rbase.bits()) {
                            out_mask |= uint64_t{1} << l;
                            out_plane[l] = r.bits();
                        }
                    }
                    ctx.write_signal(i.a, {rbase, out_mask}, out_plane, nb);
                }
                ++pc;
                break;
            }
            case BcOp::StoreArray: {
                --sp;
                const LaneCell idx = st[sp];
                --sp;
                const LaneCell rhs = st[sp];
                if ((idx.dmask & active) != 0) {
                    active &= ~idx.dmask;
                    if (active == 0) return abort_pass();
                }
                const uint64_t elem = idx.base.bits();
                if (elem < design_.arrays[i.a].size) {
                    LaneCell v = rhs;
                    resize_cell(v, plane(sp), i.width);
                    ctx.write_array(i.a, elem, v, plane(sp),
                                    (i.flags & kBcNonblocking) != 0);
                }
                ++pc;
                break;
            }
            case BcOp::Jump:
                pc = i.a;
                break;
            case BcOp::JumpIfFalse: {
                --sp;
                const LaneCell cond = st[sp];
                const bool base_true = cond.base.is_true();
                uint64_t disagree = 0;
                uint64_t rest = cond.dmask & active;
                const uint64_t* cp = plane(sp);
                while (rest != 0) {
                    const uint32_t l =
                        static_cast<uint32_t>(std::countr_zero(rest));
                    rest &= rest - 1;
                    if ((cp[l] != 0) != base_true) {
                        disagree |= uint64_t{1} << l;
                    }
                }
                if (disagree != 0) {
                    active &= ~disagree;
                    if (active == 0) return abort_pass();
                }
                pc = base_true ? pc + 1 : i.a;
                break;
            }
            case BcOp::CaseJump: {
                --sp;
                const LaneCell subj = st[sp];
                const BcCaseTable& t = p.case_tables[i.a];
                const BcCaseEntry* entries = p.case_entries.data() + t.first;
                auto target_of = [&](uint64_t v) {
                    for (uint32_t k = 0; k < t.count; ++k) {
                        if (entries[k].label == v) return entries[k].target;
                    }
                    return t.no_match;
                };
                const uint32_t base_target = target_of(subj.base.bits());
                uint64_t disagree = 0;
                uint64_t rest = subj.dmask & active;
                const uint64_t* spn = plane(sp);
                while (rest != 0) {
                    const uint32_t l =
                        static_cast<uint32_t>(std::countr_zero(rest));
                    rest &= rest - 1;
                    if (target_of(spn[l]) != base_target) {
                        disagree |= uint64_t{1} << l;
                    }
                }
                if (disagree != 0) {
                    active &= ~disagree;
                    if (active == 0) return abort_pass();
                }
                pc = base_target;
                break;
            }
            case BcOp::PushSlot: {
                const uint8_t slot = i.nargs;
                if (lslot_written_[slot]) {
                    st[sp] = lslots_[slot];
                    st[sp].dmask &= active;
                    uint64_t rest = st[sp].dmask;
                    uint64_t* dst = plane(sp);
                    const uint64_t* src = slot_plane(slot);
                    while (rest != 0) {
                        const uint32_t l = static_cast<uint32_t>(
                            std::countr_zero(rest));
                        rest &= rest - 1;
                        dst[l] = src[l];
                    }
                } else {
                    ctx.read_signal(i.a, active, st[sp], plane(sp));
                }
                resize_cell(st[sp], plane(sp), i.width);
                ++sp;
                ++pc;
                break;
            }
            case BcOp::StoreFullSlot: {
                const uint8_t slot = i.nargs;
                --sp;
                resize_cell(st[sp], plane(sp), i.width);
                lslots_[slot] = st[sp];
                uint64_t rest = st[sp].dmask;
                uint64_t* dst = slot_plane(slot);
                const uint64_t* src = plane(sp);
                while (rest != 0) {
                    const uint32_t l =
                        static_cast<uint32_t>(std::countr_zero(rest));
                    rest &= rest - 1;
                    dst[l] = src[l];
                }
                touch_slot(slot);
                ++pc;
                break;
            }
            case BcOp::StorePartSlot: {
                const uint8_t slot = i.nargs;
                --sp;
                const LaneCell rhs = st[sp];
                const uint64_t* rhs_plane = plane(sp);
                LaneCell cur;
                const uint64_t* cur_plane;
                if (lslot_written_[slot]) {
                    cur = lslots_[slot];
                    cur_plane = slot_plane(slot);
                } else {
                    ctx.read_signal(i.a, active, cur, tmp_plane_);
                    cur_plane = tmp_plane_;
                }
                const Value rbase =
                    cur.base.with_bits(i.imm, i.width, rhs.base.bits());
                uint64_t out_mask = 0;
                uint64_t* dst = slot_plane(slot);
                uint64_t rest = (cur.dmask | rhs.dmask) & active;
                while (rest != 0) {
                    const uint32_t l =
                        static_cast<uint32_t>(std::countr_zero(rest));
                    rest &= rest - 1;
                    const Value cv = lane_value(cur, cur_plane, l);
                    const Value rv = lane_value(rhs, rhs_plane, l);
                    const Value r = cv.with_bits(i.imm, i.width, rv.bits());
                    if (r.bits() != rbase.bits()) {
                        out_mask |= uint64_t{1} << l;
                        dst[l] = r.bits();
                    }
                }
                lslots_[slot] = {rbase, out_mask};
                touch_slot(slot);
                ++pc;
                break;
            }
            case BcOp::StoreBitSlot: {
                const uint8_t slot = i.nargs;
                --sp;
                const LaneCell idx = st[sp];
                --sp;
                const LaneCell rhs = st[sp];
                const uint64_t* rhs_plane = plane(sp);
                if ((idx.dmask & active) != 0) {
                    active &= ~idx.dmask;
                    if (active == 0) return abort_pass();
                }
                const uint64_t bit_idx = idx.base.bits();
                if (bit_idx < i.width) {
                    LaneCell cur;
                    const uint64_t* cur_plane;
                    if (lslot_written_[slot]) {
                        cur = lslots_[slot];
                        cur_plane = slot_plane(slot);
                    } else {
                        ctx.read_signal(i.a, active, cur, tmp_plane_);
                        cur_plane = tmp_plane_;
                    }
                    const Value rbase = cur.base.with_bits(
                        static_cast<unsigned>(bit_idx), 1, rhs.base.bits());
                    uint64_t out_mask = 0;
                    uint64_t* dst = slot_plane(slot);
                    uint64_t rest = (cur.dmask | rhs.dmask) & active;
                    while (rest != 0) {
                        const uint32_t l =
                            static_cast<uint32_t>(std::countr_zero(rest));
                        rest &= rest - 1;
                        const Value cv = lane_value(cur, cur_plane, l);
                        const Value rv = lane_value(rhs, rhs_plane, l);
                        const Value r = cv.with_bits(
                            static_cast<unsigned>(bit_idx), 1, rv.bits());
                        if (r.bits() != rbase.bits()) {
                            out_mask |= uint64_t{1} << l;
                            dst[l] = r.bits();
                        }
                    }
                    lslots_[slot] = {rbase, out_mask};
                    touch_slot(slot);
                }
                ++pc;
                break;
            }
            case BcOp::ApplyStore: {
                apply_lanes(i, sp - i.nargs, 0);
                sp -= i.nargs;
                ctx.write_signal(i.a, st[sp], plane(sp),
                                 (i.flags & kBcNonblocking) != 0);
                ++pc;
                break;
            }
            case BcOp::ApplyStoreSlot: {
                const uint32_t slot = i.imm;
                apply_lanes(i, sp - i.nargs, 0);
                sp -= i.nargs;
                lslots_[slot] = st[sp];
                uint64_t rest = st[sp].dmask;
                uint64_t* dst = slot_plane(slot);
                const uint64_t* src = plane(sp);
                while (rest != 0) {
                    const uint32_t l =
                        static_cast<uint32_t>(std::countr_zero(rest));
                    rest &= rest - 1;
                    dst[l] = src[l];
                }
                touch_slot(slot);
                ++pc;
                break;
            }
            case BcOp::Halt:
                for (const uint32_t slot : lslot_touched_) {
                    ctx.write_signal(p.slot_sigs[slot], lslots_[slot],
                                     slot_plane(slot), false);
                    lslot_written_[slot] = 0;
                }
                lslot_touched_.clear();
                return active;
        }
    }
}

}  // namespace eraser::sim
