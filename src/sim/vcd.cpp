#include "sim/vcd.h"

namespace eraser::sim {

namespace {

/// Hierarchy-safe identifier: VCD tools accept most printable names, but
/// dots separate scopes — replace them.
std::string flat_name(const std::string& name) {
    std::string out = name;
    for (char& c : out) {
        if (c == '.' || c == ' ') c = '_';
    }
    return out;
}

}  // namespace

VcdWriter::VcdWriter(std::ostream& out, const rtl::Design& design,
                     std::vector<rtl::SignalId> signals)
    : out_(out), design_(design), traced_(std::move(signals)) {
    if (traced_.empty()) {
        traced_.reserve(design.signals.size());
        for (rtl::SignalId s = 0; s < design.signals.size(); ++s) {
            traced_.push_back(s);
        }
    }
    codes_.reserve(traced_.size());
    for (size_t i = 0; i < traced_.size(); ++i) {
        codes_.push_back(id_code(i));
    }
    last_.assign(traced_.size(), 0);
    ever_dumped_.assign(traced_.size(), false);

    out_ << "$timescale 1ns $end\n";
    out_ << "$scope module " << flat_name(design.top_name) << " $end\n";
    for (size_t i = 0; i < traced_.size(); ++i) {
        const rtl::Signal& s = design.signals[traced_[i]];
        out_ << "$var wire " << s.width << " " << codes_[i] << " "
             << flat_name(s.name);
        if (s.width > 1) out_ << " [" << (s.width - 1) << ":0]";
        out_ << " $end\n";
    }
    out_ << "$upscope $end\n$enddefinitions $end\n";
}

std::string VcdWriter::id_code(size_t index) {
    // Printable-character base-94 codes starting at '!'.
    std::string code;
    do {
        code.push_back(static_cast<char>('!' + index % 94));
        index /= 94;
    } while (index > 0);
    return code;
}

void VcdWriter::sample(const SimEngine& engine, uint64_t time) {
    bool stamped = false;
    for (size_t i = 0; i < traced_.size(); ++i) {
        const Value v = engine.peek(traced_[i]);
        if (ever_dumped_[i] && v.bits() == last_[i]) continue;
        if (!stamped) {
            out_ << "#" << time << "\n";
            stamped = true;
        }
        const rtl::Signal& s = design_.signals[traced_[i]];
        if (s.width == 1) {
            out_ << (v.bits() & 1) << codes_[i] << "\n";
        } else {
            out_ << "b";
            for (unsigned bit = s.width; bit-- > 0;) {
                out_ << (v.bit(bit) ? '1' : '0');
            }
            out_ << " " << codes_[i] << "\n";
        }
        last_[i] = v.bits();
        ever_dumped_[i] = true;
    }
}

}  // namespace eraser::sim
