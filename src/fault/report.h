// Campaign report writers: human-readable summary and CSV per-fault dump,
// the artifacts a verification flow archives per run.
#pragma once

#include <ostream>
#include <span>

#include "eraser/campaign.h"
#include "fault/fault.h"
#include "rtl/design.h"

namespace eraser::fault {

/// Writes a human-readable campaign summary: coverage, timing, redundancy
/// statistics, and the undetected-fault list grouped by signal.
void write_text_report(std::ostream& out, const rtl::Design& design,
                       std::span<const Fault> faults,
                       const core::CampaignResult& result);

/// Writes one CSV row per fault: signal,bit,polarity,detected.
void write_csv_report(std::ostream& out, const rtl::Design& design,
                      std::span<const Fault> faults,
                      const core::CampaignResult& result);

}  // namespace eraser::fault
