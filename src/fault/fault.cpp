#include "fault/fault.h"

#include <algorithm>

#include "util/prng.h"

namespace eraser::fault {

std::vector<Fault> generate_faults(const rtl::Design& design,
                                   const FaultGenOptions& opts) {
    std::vector<Fault> faults;
    for (rtl::SignalId sig = 0; sig < design.signals.size(); ++sig) {
        const rtl::Signal& s = design.signals[sig];
        if (s.is_input && !opts.include_primary_inputs) continue;
        if (std::find(opts.excluded_signals.begin(),
                      opts.excluded_signals.end(),
                      s.name) != opts.excluded_signals.end()) {
            continue;
        }
        for (unsigned bit = 0; bit < s.width; ++bit) {
            faults.push_back(Fault{sig, bit, false});
            faults.push_back(Fault{sig, bit, true});
        }
    }
    if (opts.sample_max != 0) {
        faults = sample_faults(std::move(faults), opts.sample_max,
                               opts.sample_seed);
    }
    return faults;
}

std::vector<Fault> sample_faults(std::vector<Fault> faults, uint32_t max_n,
                                 uint64_t seed) {
    if (faults.size() <= max_n) return faults;
    // Partial Fisher-Yates with a deterministic PRNG, then restore original
    // relative order so fault ids remain stable and readable.
    Prng rng(seed);
    std::vector<uint32_t> idx(faults.size());
    for (uint32_t i = 0; i < idx.size(); ++i) idx[i] = i;
    for (uint32_t i = 0; i < max_n; ++i) {
        const uint64_t j = i + rng.below(idx.size() - i);
        std::swap(idx[i], idx[j]);
    }
    idx.resize(max_n);
    std::sort(idx.begin(), idx.end());
    std::vector<Fault> picked;
    picked.reserve(max_n);
    for (uint32_t i : idx) picked.push_back(faults[i]);
    return picked;
}

}  // namespace eraser::fault
