#include "fault/report.h"

#include <map>

namespace eraser::fault {

void write_text_report(std::ostream& out, const rtl::Design& design,
                       std::span<const Fault> faults,
                       const core::CampaignResult& result) {
    out << "=== Eraser fault campaign report ===\n";
    out << "design:   " << design.top_name << " (" << design.signals.size()
        << " signals, " << design.num_rtl_nodes() << " RTL nodes, "
        << design.num_behaviors() << " behavioral nodes)\n";
    out << "faults:   " << result.num_faults << "\n";
    out << "detected: " << result.num_detected << "\n";
    out << "coverage: " << result.coverage_percent << "%\n";
    out << "time:     " << result.seconds << " s\n";
    const auto& s = result.stats;
    out << "behavioral executions: " << s.bn_candidates << " candidates, "
        << s.bn_executed << " executed, " << s.bn_skipped_explicit
        << " explicit skips, " << s.bn_skipped_implicit
        << " implicit skips\n";

    std::map<std::string, unsigned> undetected;
    for (size_t f = 0; f < faults.size(); ++f) {
        if (!result.detected[f]) {
            undetected[design.signals[faults[f].sig].name]++;
        }
    }
    out << "undetected faults by signal (" << undetected.size()
        << " signals):\n";
    for (const auto& [name, count] : undetected) {
        out << "  " << name << ": " << count << "\n";
    }
}

void write_csv_report(std::ostream& out, const rtl::Design& design,
                      std::span<const Fault> faults,
                      const core::CampaignResult& result) {
    out << "signal,bit,stuck_at,detected\n";
    for (size_t f = 0; f < faults.size(); ++f) {
        out << design.signals[faults[f].sig].name << "," << faults[f].bit
            << "," << (faults[f].stuck_one ? 1 : 0) << ","
            << (result.detected[f] ? 1 : 0) << "\n";
    }
}

}  // namespace eraser::fault
