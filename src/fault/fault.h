// Fault model: single stuck-at faults on individual bits of named wires and
// regs (the paper's fault universe), plus list generation and seeded
// sampling down to paper-sized campaigns.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rtl/design.h"

namespace eraser::fault {

using FaultId = uint32_t;

/// One stuck-at fault: bit `bit` of signal `sig` pinned to `stuck_value`.
struct Fault {
    rtl::SignalId sig = rtl::kInvalidId;
    unsigned bit = 0;
    bool stuck_one = false;

    [[nodiscard]] uint64_t mask() const { return uint64_t{1} << bit; }
    [[nodiscard]] uint64_t bits() const {
        return stuck_one ? mask() : uint64_t{0};
    }
    [[nodiscard]] std::string str(const rtl::Design& design) const {
        return design.signals[sig].name + "[" + std::to_string(bit) +
               "] stuck-at-" + (stuck_one ? "1" : "0");
    }
};

struct FaultGenOptions {
    /// Exclude primary inputs as fault sites (outputs of the surrounding
    /// logic; kept true for parity with port-pin gate-level practice being
    /// covered via the connected internal wires).
    bool include_primary_inputs = false;
    /// Signals never used as fault sites (e.g. the primary clock: a stuck
    /// clock makes every fault trivially detected or undetectable and the
    /// paper excludes it implicitly by construction).
    std::vector<std::string> excluded_signals = {"clk"};
    /// Cap the list with seeded uniform sampling; 0 = keep all.
    uint32_t sample_max = 0;
    uint64_t sample_seed = 1;
};

/// Enumerates stuck-at-0/1 faults for every bit of every eligible wire/reg.
[[nodiscard]] std::vector<Fault> generate_faults(const rtl::Design& design,
                                                 const FaultGenOptions& opts);

/// Seeded down-sampling to at most `max_n` faults (stable order).
[[nodiscard]] std::vector<Fault> sample_faults(std::vector<Fault> faults,
                                               uint32_t max_n, uint64_t seed);

}  // namespace eraser::fault
