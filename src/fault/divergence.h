// DivergenceList: the per-signal "bad gate" storage of concurrent fault
// simulation — for each fault whose value at this signal differs from the
// good value, one entry holding the fault's absolute value. Invariant: an
// entry exists iff the fault's value differs from the good value (invisible
// bad gates are removed eagerly).
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <vector>

#include "rtl/value.h"

namespace eraser::fault {

using FaultId = uint32_t;

class DivergenceList {
  public:
    struct Entry {
        FaultId fault;
        Value value;

        [[nodiscard]] bool operator==(const Entry&) const = default;
    };

    [[nodiscard]] bool empty() const { return entries_.empty(); }
    [[nodiscard]] size_t size() const { return entries_.size(); }
    [[nodiscard]] bool operator==(const DivergenceList&) const = default;
    [[nodiscard]] const std::vector<Entry>& entries() const {
        return entries_;
    }

    /// Pointer to the fault's value, or nullptr when the fault agrees with
    /// the good value here.
    [[nodiscard]] const Value* find(FaultId f) const {
        const auto it = lower_bound(f);
        return it != entries_.end() && it->fault == f ? &it->value : nullptr;
    }
    [[nodiscard]] bool contains(FaultId f) const { return find(f) != nullptr; }

    /// Inserts or updates; returns true when the stored state changed.
    bool set(FaultId f, Value v) {
        auto it = lower_bound(f);
        if (it != entries_.end() && it->fault == f) {
            if (it->value == v) return false;
            it->value = v;
            return true;
        }
        entries_.insert(it, Entry{f, v});
        return true;
    }

    /// Removes the fault's entry; returns true when one existed.
    bool erase(FaultId f) {
        auto it = lower_bound(f);
        if (it == entries_.end() || it->fault != f) return false;
        entries_.erase(it);
        return true;
    }

    /// Drops entries of faults for which `pred(fault)` holds (fault
    /// dropping after detection).
    template <typename Pred>
    void erase_if(Pred pred) {
        entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                      [&](const Entry& e) {
                                          return pred(e.fault);
                                      }),
                       entries_.end());
    }

    void clear() { entries_.clear(); }

    /// Wholesale replacement (the RTL-node evaluator rebuilds a signal's
    /// entries in one pass instead of issuing per-fault set/erase calls).
    /// `entries` must be ascending by fault; the old storage is left in
    /// `entries` so the caller can reuse its capacity.
    void swap_entries(std::vector<Entry>& entries) {
        assert(std::is_sorted(entries.begin(), entries.end(),
                              [](const Entry& a, const Entry& b) {
                                  return a.fault < b.fault;
                              }));
        entries_.swap(entries);
    }

  private:
    [[nodiscard]] std::vector<Entry>::iterator lower_bound(FaultId f) {
        return std::lower_bound(
            entries_.begin(), entries_.end(), f,
            [](const Entry& e, FaultId id) { return e.fault < id; });
    }
    [[nodiscard]] std::vector<Entry>::const_iterator lower_bound(
        FaultId f) const {
        return std::lower_bound(
            entries_.begin(), entries_.end(), f,
            [](const Entry& e, FaultId id) { return e.fault < id; });
    }

    std::vector<Entry> entries_;
};

}  // namespace eraser::fault
