// Divergence storage: the per-signal "bad gate" state of concurrent fault
// simulation — for each fault whose value at this signal differs from the
// good value, the fault's absolute value. Invariant: an entry exists iff
// the fault's value differs from the good value (invisible bad gates are
// removed eagerly).
//
// Two representations share that invariant:
//
//  * DivergenceList  — sorted vector of {fault, Value} entries; the scalar
//    oracle representation. O(log n) find, O(n) set/erase.
//  * DivergenceBlockStore — the batched (FaultBatching::Word) layout: faults
//    are packed W = 64 lanes to a *group* (fault f -> group f>>6, lane
//    f&63), and each signal stores one machine word per group whose bit l
//    says "lane l diverges here", plus a packed 64-entry value plane holding
//    the diverged lanes' raw bits. Membership tests, inserts, and erases
//    are O(1) bit operations; whole-group questions ("any candidate fault
//    reading this signal?") collapse to one word OR.
#pragma once

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "rtl/value.h"

namespace eraser::fault {

using FaultId = uint32_t;

// --- lane addressing (batched mode) ------------------------------------------

/// Lanes per group: one bit of a machine word per fault.
inline constexpr uint32_t kLanesPerGroup = 64;
inline constexpr uint32_t kLaneBits = 6;

[[nodiscard]] inline constexpr uint32_t group_of(FaultId f) {
    return f >> kLaneBits;
}
[[nodiscard]] inline constexpr uint32_t lane_of(FaultId f) {
    return f & (kLanesPerGroup - 1);
}
[[nodiscard]] inline constexpr uint64_t lane_bit(uint32_t lane) {
    return uint64_t{1} << lane;
}
/// Inverse of group_of/lane_of: the fault id at (group, lane).
[[nodiscard]] inline constexpr FaultId fault_id(uint32_t group,
                                                uint32_t lane) {
    return (group << kLaneBits) | lane;
}
/// Number of 64-lane groups covering `num_faults` faults.
[[nodiscard]] inline constexpr uint32_t num_groups(size_t num_faults) {
    return static_cast<uint32_t>((num_faults + kLanesPerGroup - 1) >>
                                 kLaneBits);
}

class DivergenceList {
  public:
    struct Entry {
        FaultId fault;
        Value value;

        [[nodiscard]] bool operator==(const Entry&) const = default;
    };

    [[nodiscard]] bool empty() const { return entries_.empty(); }
    [[nodiscard]] size_t size() const { return entries_.size(); }
    [[nodiscard]] bool operator==(const DivergenceList&) const = default;
    [[nodiscard]] const std::vector<Entry>& entries() const {
        return entries_;
    }

    /// Pointer to the fault's value, or nullptr when the fault agrees with
    /// the good value here.
    [[nodiscard]] const Value* find(FaultId f) const {
        const auto it = lower_bound(f);
        return it != entries_.end() && it->fault == f ? &it->value : nullptr;
    }
    [[nodiscard]] bool contains(FaultId f) const { return find(f) != nullptr; }

    /// Inserts or updates; returns true when the stored state changed.
    bool set(FaultId f, Value v) {
        auto it = lower_bound(f);
        if (it != entries_.end() && it->fault == f) {
            if (it->value == v) return false;
            it->value = v;
            return true;
        }
        entries_.insert(it, Entry{f, v});
        return true;
    }

    /// Removes the fault's entry; returns true when one existed.
    bool erase(FaultId f) {
        auto it = lower_bound(f);
        if (it == entries_.end() || it->fault != f) return false;
        entries_.erase(it);
        return true;
    }

    /// Batched commit: applies `updates` (ascending by fault, unique) in ONE
    /// merge pass — an update whose value equals `good` clears the fault's
    /// entry, any other value sets it. Replaces an update-loop of set/erase
    /// calls, each of which memmoved the vector tail (O(n) per update, the
    /// NBA-commit hot spot on large lists). `scratch` is caller-owned merge
    /// storage that keeps its capacity across calls. Returns true when the
    /// stored entries changed.
    bool merge_from(std::span<const Entry> updates, const Value& good,
                    std::vector<Entry>& scratch) {
        assert(std::is_sorted(updates.begin(), updates.end(),
                              [](const Entry& a, const Entry& b) {
                                  return a.fault < b.fault;
                              }));
        scratch.clear();
        size_t oc = 0;
        const auto& old = entries_;
        for (const Entry& u : updates) {
            while (oc < old.size() && old[oc].fault < u.fault) {
                scratch.push_back(old[oc++]);
            }
            const bool has_old = oc < old.size() && old[oc].fault == u.fault;
            if (u.value != good) scratch.push_back(u);
            if (has_old) ++oc;
        }
        while (oc < old.size()) scratch.push_back(old[oc++]);
        if (scratch == entries_) return false;
        entries_.swap(scratch);
        return true;
    }

    /// Drops entries of faults for which `pred(fault)` holds (fault
    /// dropping after detection).
    template <typename Pred>
    void erase_if(Pred pred) {
        entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                      [&](const Entry& e) {
                                          return pred(e.fault);
                                      }),
                       entries_.end());
    }

    void clear() { entries_.clear(); }

    /// Wholesale replacement (the RTL-node evaluator rebuilds a signal's
    /// entries in one pass instead of issuing per-fault set/erase calls).
    /// `entries` must be ascending by fault; the old storage is left in
    /// `entries` so the caller can reuse its capacity.
    void swap_entries(std::vector<Entry>& entries) {
        assert(std::is_sorted(entries.begin(), entries.end(),
                              [](const Entry& a, const Entry& b) {
                                  return a.fault < b.fault;
                              }));
        entries_.swap(entries);
    }

  private:
    [[nodiscard]] std::vector<Entry>::iterator lower_bound(FaultId f) {
        return std::lower_bound(
            entries_.begin(), entries_.end(), f,
            [](const Entry& e, FaultId id) { return e.fault < id; });
    }
    [[nodiscard]] std::vector<Entry>::const_iterator lower_bound(
        FaultId f) const {
        return std::lower_bound(
            entries_.begin(), entries_.end(), f,
            [](const Entry& e, FaultId id) { return e.fault < id; });
    }

    std::vector<Entry> entries_;
};

// --- batched representation ---------------------------------------------------

/// One group's divergence at one signal: the membership word plus the value
/// plane (raw bits; the signal's width is implied by the signal). Lanes
/// whose mask bit is clear hold garbage in the plane.
struct DivergenceBlock {
    uint64_t mask = 0;
    uint64_t bits[kLanesPerGroup];
};

/// One signal's divergence across all groups of the engine. Blocks are
/// allocated lazily the first time a group diverges at the signal and kept
/// (mask zeroed) afterwards, so steady-state set/erase never allocates.
class DivergenceBlockStore {
  public:
    /// Sizes the store for `groups` groups and clears every block.
    void reset(uint32_t groups) {
        if (blocks_.size() != groups) blocks_.resize(groups);
        clear();
    }

    [[nodiscard]] uint32_t groups() const {
        return static_cast<uint32_t>(blocks_.size());
    }
    /// True when no lane of any group diverges (O(1)).
    [[nodiscard]] bool empty() const { return live_ == 0; }
    /// Number of groups with a nonzero mask (cheap emptiness summary).
    [[nodiscard]] uint32_t live_groups() const { return live_; }

    [[nodiscard]] uint64_t mask(uint32_t g) const {
        const DivergenceBlock* b = blocks_[g].get();
        return b != nullptr ? b->mask : 0;
    }
    /// The block for group `g`, or nullptr when never diverged. The mask
    /// may still be zero.
    [[nodiscard]] const DivergenceBlock* block(uint32_t g) const {
        return blocks_[g].get();
    }

    /// Lane value; only meaningful when mask(g) has the lane bit.
    [[nodiscard]] uint64_t value(uint32_t g, uint32_t lane) const {
        return blocks_[g]->bits[lane];
    }
    [[nodiscard]] bool contains(uint32_t g, uint32_t lane) const {
        return (mask(g) & lane_bit(lane)) != 0;
    }
    /// Pointer to the lane's raw bits, or nullptr when the lane agrees with
    /// good here (the block-store analogue of DivergenceList::find).
    [[nodiscard]] const uint64_t* find(uint32_t g, uint32_t lane) const {
        const DivergenceBlock* b = blocks_[g].get();
        if (b == nullptr || (b->mask & lane_bit(lane)) == 0) return nullptr;
        return &b->bits[lane];
    }

    /// Inserts or updates one lane; returns true when state changed.
    bool set(uint32_t g, uint32_t lane, uint64_t v) {
        DivergenceBlock& b = ensure(g);
        const uint64_t bit = lane_bit(lane);
        if ((b.mask & bit) != 0 && b.bits[lane] == v) return false;
        if (b.mask == 0) ++live_;
        b.mask |= bit;
        b.bits[lane] = v;
        return true;
    }

    /// Clears one lane; returns true when it was set.
    bool erase(uint32_t g, uint32_t lane) {
        DivergenceBlock* b = blocks_[g].get();
        const uint64_t bit = lane_bit(lane);
        if (b == nullptr || (b->mask & bit) == 0) return false;
        b->mask &= ~bit;
        if (b->mask == 0) --live_;
        return true;
    }

    /// Clears every lane in `m` of group `g` (detection pruning).
    void erase_lanes(uint32_t g, uint64_t m) {
        DivergenceBlock* b = blocks_[g].get();
        if (b == nullptr || (b->mask & m) == 0) return;
        b->mask &= ~m;
        if (b->mask == 0) --live_;
    }

    void clear() {
        if (live_ == 0) return;
        for (auto& b : blocks_) {
            if (b) b->mask = 0;
        }
        live_ = 0;
    }

    /// Copies group `g` of `other` into this store (edge-state sampling).
    void copy_group_from(const DivergenceBlockStore& other, uint32_t g) {
        const DivergenceBlock* src = other.blocks_[g].get();
        const uint64_t src_mask = src != nullptr ? src->mask : 0;
        if (src_mask == 0) {
            DivergenceBlock* dst = blocks_[g].get();
            if (dst != nullptr && dst->mask != 0) {
                dst->mask = 0;
                --live_;
            }
            return;
        }
        DivergenceBlock& dst = ensure(g);
        if (dst.mask == 0) ++live_;
        dst.mask = src_mask;
        uint64_t m = src_mask;
        while (m != 0) {
            const uint32_t l = static_cast<uint32_t>(std::countr_zero(m));
            m &= m - 1;
            dst.bits[l] = src->bits[l];
        }
    }

    /// Masks and values of group `g` equal between two stores (lanes outside
    /// the mask are ignored).
    [[nodiscard]] bool group_equals(const DivergenceBlockStore& other,
                                    uint32_t g) const {
        const uint64_t m = mask(g);
        if (m != other.mask(g)) return false;
        if (m == 0) return true;
        const DivergenceBlock* a = blocks_[g].get();
        const DivergenceBlock* b = other.blocks_[g].get();
        uint64_t rest = m;
        while (rest != 0) {
            const uint32_t l = static_cast<uint32_t>(std::countr_zero(rest));
            rest &= rest - 1;
            if (a->bits[l] != b->bits[l]) return false;
        }
        return true;
    }

  private:
    DivergenceBlock& ensure(uint32_t g) {
        auto& slot = blocks_[g];
        if (!slot) slot = std::make_unique<DivergenceBlock>();
        return *slot;
    }

    std::vector<std::unique_ptr<DivergenceBlock>> blocks_;
    uint32_t live_ = 0;
};

}  // namespace eraser::fault
