// Injectable file-I/O seam for the durability layer (campaign journal,
// verdict-cache store). Production code goes through FileIo::real(), a thin
// POSIX passthrough; tests swap in FaultyFileIo to inject the disk-failure
// modes that matter for write-ahead logging — short writes, ENOSPC at an
// arbitrary byte boundary, fsync failure — without touching a real disk.
//
// The seam is deliberately narrow: open/write/fsync/close/rename/remove
// plus the two calls naive persistence code forgets — fsync of the parent
// directory (a rename without it can vanish on power loss) and ftruncate
// (dropping a torn tail before appending). Reads stay on plain streams;
// every failure mode this PR defends against is on the write path.
#pragma once

#include <sys/types.h>

#include <atomic>
#include <cstdint>
#include <span>
#include <string>

namespace eraser::util {

/// POSIX file operations behind virtual dispatch. Errors follow the POSIX
/// convention (-1 and errno) so callers keep their usual handling. Methods
/// must be callable from multiple threads (the real passthrough trivially
/// is; FaultyFileIo uses atomics).
class FileIo {
  public:
    virtual ~FileIo() = default;

    /// Opens (creating if needed) for appending; returns fd or -1.
    [[nodiscard]] virtual int open_append(const std::string& path);
    /// Opens truncated for writing; returns fd or -1.
    [[nodiscard]] virtual int open_trunc(const std::string& path);
    /// One write(2): may write fewer than `len` bytes (short write).
    [[nodiscard]] virtual ssize_t write(int fd, const void* data, size_t len);
    [[nodiscard]] virtual int fsync(int fd);
    virtual int close(int fd);
    [[nodiscard]] virtual int rename(const std::string& from,
                                     const std::string& to);
    virtual int remove(const std::string& path);
    /// fsync of the directory containing `path` — what makes a rename (or a
    /// newly created file) survive power loss.
    [[nodiscard]] virtual int fsync_dir(const std::string& path);
    [[nodiscard]] virtual int truncate(int fd, uint64_t length);

    /// The process-wide passthrough instance.
    [[nodiscard]] static FileIo& real();
};

/// Writes all of `data`, looping over short writes. False on any error
/// (errno preserved); bytes may have been partially written — for framed
/// logs that is a torn tail the replay path already tolerates.
[[nodiscard]] bool write_all(FileIo& io, int fd,
                             std::span<const uint8_t> data);

/// Deterministic disk-fault injector. Each knob models one real failure:
/// a byte budget that runs out mid-write (ENOSPC, with the honest partial
/// write a real filesystem performs at the boundary), periodic short
/// writes (callers must loop), and fsyncs that start failing after N
/// successes (fsyncgate: the data's durability is unknowable afterwards).
struct FaultyFileIoOptions {
    /// Total bytes writable before ENOSPC; the write that crosses the
    /// boundary is partial. UINT64_MAX = unlimited.
    uint64_t budget_bytes = UINT64_MAX;
    /// Every Nth write delivers only half its bytes (0 = never). Not an
    /// error — exercises the caller's short-write loop.
    uint32_t short_write_every = 0;
    /// fsyncs succeeding before every later one fails with EIO.
    /// UINT32_MAX = never fail.
    uint32_t fail_fsync_after = UINT32_MAX;
    /// Every rename fails with EIO (atomic-commit failure).
    bool fail_rename = false;
};

class FaultyFileIo final : public FileIo {
  public:
    explicit FaultyFileIo(FaultyFileIoOptions opts = {}) : opts_(opts) {}

    [[nodiscard]] ssize_t write(int fd, const void* data,
                                size_t len) override;
    [[nodiscard]] int fsync(int fd) override;
    [[nodiscard]] int rename(const std::string& from,
                             const std::string& to) override;

    [[nodiscard]] uint64_t writes() const { return writes_.load(); }
    [[nodiscard]] uint64_t short_writes() const {
        return short_writes_.load();
    }
    [[nodiscard]] uint64_t enospc_failures() const {
        return enospc_failures_.load();
    }
    [[nodiscard]] uint64_t fsync_failures() const {
        return fsync_failures_.load();
    }

  private:
    FaultyFileIoOptions opts_;
    std::atomic<uint64_t> written_{0};
    std::atomic<uint64_t> writes_{0};
    std::atomic<uint64_t> short_writes_{0};
    std::atomic<uint64_t> enospc_failures_{0};
    std::atomic<uint64_t> fsyncs_{0};
    std::atomic<uint64_t> fsync_failures_{0};
};

}  // namespace eraser::util
