#include "util/fileio.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>

namespace eraser::util {

int FileIo::open_append(const std::string& path) {
    return ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC,
                  0644);
}

int FileIo::open_trunc(const std::string& path) {
    return ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC,
                  0644);
}

ssize_t FileIo::write(int fd, const void* data, size_t len) {
    return ::write(fd, data, len);
}

int FileIo::fsync(int fd) { return ::fsync(fd); }

int FileIo::close(int fd) { return ::close(fd); }

int FileIo::rename(const std::string& from, const std::string& to) {
    return std::rename(from.c_str(), to.c_str());
}

int FileIo::remove(const std::string& path) {
    return std::remove(path.c_str());
}

int FileIo::fsync_dir(const std::string& path) {
    const size_t slash = path.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : path.substr(0, slash + 1);
    const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (fd < 0) return -1;
    const int rc = ::fsync(fd);
    ::close(fd);
    return rc;
}

int FileIo::truncate(int fd, uint64_t length) {
    return ::ftruncate(fd, static_cast<off_t>(length));
}

FileIo& FileIo::real() {
    static FileIo io;
    return io;
}

bool write_all(FileIo& io, int fd, std::span<const uint8_t> data) {
    size_t off = 0;
    while (off < data.size()) {
        const ssize_t n = io.write(fd, data.data() + off, data.size() - off);
        if (n < 0) {
            if (errno == EINTR) continue;
            return false;
        }
        if (n == 0) {
            errno = EIO;
            return false;
        }
        off += static_cast<size_t>(n);
    }
    return true;
}

ssize_t FaultyFileIo::write(int fd, const void* data, size_t len) {
    const uint64_t nth = writes_.fetch_add(1) + 1;
    uint64_t want = len;
    if (opts_.short_write_every != 0 && len > 1 &&
        nth % opts_.short_write_every == 0) {
        want = len / 2;
        short_writes_.fetch_add(1);
    }
    // Byte budget: the write that crosses the boundary delivers what fits;
    // only a write with nothing left returns ENOSPC, matching a real
    // filesystem filling up mid-append.
    uint64_t before = written_.load();
    for (;;) {
        if (before >= opts_.budget_bytes) {
            enospc_failures_.fetch_add(1);
            errno = ENOSPC;
            return -1;
        }
        const uint64_t grant = std::min(want, opts_.budget_bytes - before);
        if (written_.compare_exchange_weak(before, before + grant)) {
            want = grant;
            break;
        }
    }
    return FileIo::write(fd, data, want);
}

int FaultyFileIo::fsync(int fd) {
    if (fsyncs_.fetch_add(1) >= opts_.fail_fsync_after) {
        fsync_failures_.fetch_add(1);
        errno = EIO;
        return -1;
    }
    return FileIo::fsync(fd);
}

int FaultyFileIo::rename(const std::string& from, const std::string& to) {
    if (opts_.fail_rename) {
        errno = EIO;
        return -1;
    }
    return FileIo::rename(from, to);
}

}  // namespace eraser::util
