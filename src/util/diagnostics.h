// Diagnostics: source locations and the exception hierarchy used across the
// front end, elaborator, and simulators.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

namespace eraser {

/// A position inside a Verilog source buffer. line/column are 1-based; a
/// default-constructed location means "no source position" (e.g. synthetic
/// nodes created by the elaborator).
struct SourceLoc {
    uint32_t line = 0;
    uint32_t column = 0;

    [[nodiscard]] bool valid() const { return line != 0; }
    [[nodiscard]] std::string str() const {
        return valid() ? std::to_string(line) + ":" + std::to_string(column)
                       : std::string("<unknown>");
    }
};

/// Base class for all errors raised by the library. Catch this at the API
/// boundary; subclasses distinguish the pipeline stage that failed.
class EraserError : public std::runtime_error {
  public:
    explicit EraserError(const std::string& what) : std::runtime_error(what) {}
};

/// Lexical or syntactic error in Verilog input.
class ParseError : public EraserError {
  public:
    ParseError(const SourceLoc& loc, const std::string& msg)
        : EraserError(loc.str() + ": parse error: " + msg), loc_(loc) {}
    [[nodiscard]] const SourceLoc& loc() const { return loc_; }

  private:
    SourceLoc loc_;
};

/// Semantic error during elaboration (unknown identifier, width violation,
/// unresolved module, non-constant where a constant is required, ...).
class ElabError : public EraserError {
  public:
    ElabError(const SourceLoc& loc, const std::string& msg)
        : EraserError(loc.str() + ": elaboration error: " + msg), loc_(loc) {}
    [[nodiscard]] const SourceLoc& loc() const { return loc_; }

  private:
    SourceLoc loc_;
};

/// Runtime error inside a simulator (combinational loop that does not
/// converge, unknown signal name from a testbench, ...).
class SimError : public EraserError {
  public:
    explicit SimError(const std::string& msg)
        : EraserError("simulation error: " + msg) {}
};

}  // namespace eraser
