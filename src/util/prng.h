// Deterministic PRNG used by stimulus generators and fault sampling.
// Not std::mt19937 on purpose: we want a tiny, header-only generator whose
// sequence is stable across platforms and library versions, so recorded
// experiment outputs stay reproducible.
#pragma once

#include <cstdint>

namespace eraser {

/// xoshiro256** by Blackman & Vigna (public domain reference implementation,
/// re-typed). Deterministic for a given seed on every platform.
class Prng {
  public:
    explicit Prng(uint64_t seed = 0x9e3779b97f4a7c15ull) {
        // SplitMix64 seeding so nearby seeds give unrelated streams.
        uint64_t x = seed;
        for (auto& word : state_) {
            x += 0x9e3779b97f4a7c15ull;
            uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /// Uniform 64-bit value.
    uint64_t next() {
        const uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /// Uniform value in [0, bound). bound == 0 yields 0.
    uint64_t below(uint64_t bound) { return bound == 0 ? 0 : next() % bound; }

    /// Uniform value with exactly `width` low bits (width in [0, 64]).
    uint64_t bits(unsigned width) {
        if (width == 0) return 0;
        if (width >= 64) return next();
        return next() & ((uint64_t{1} << width) - 1);
    }

    /// Bernoulli draw with probability num/den.
    bool chance(uint64_t num, uint64_t den) { return below(den) < num; }

  private:
    static uint64_t rotl(uint64_t x, int k) {
        return (x << k) | (x >> (64 - k));
    }
    uint64_t state_[4] = {};
};

}  // namespace eraser
