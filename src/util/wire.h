// Framed wire transport for the distributed campaign fabric
// (eraser/remote.h): length-prefixed messages over a stream socket.
//
// Frame layout, byte-exact:
//
//   varint(payload_len) | payload bytes | crc32(payload) as 4 bytes LE
//
// Lengths are LEB128 varints (so tiny control frames pay 1 byte, not 4),
// and every payload is covered by an IEEE CRC-32 trailer — a truncated,
// corrupted, or desynchronized stream surfaces as WireError at the frame
// boundary instead of as a silently wrong verdict bitmap. Payload contents
// are encoded/decoded with WireWriter/WireReader (varints, fixed-width
// little-endian words, length-prefixed strings); the message schema on top
// lives in eraser/remote.{h,cpp}, versioned by the hello exchange there.
//
// Blocking I/O with poll()-based receive deadlines: a peer that dies
// mid-frame (worker SIGKILL) produces WireError after at most the timeout,
// which is what drives the scheduler's unit re-dispatch. Writes use
// MSG_NOSIGNAL so a vanished peer is an error return, never SIGPIPE.
//
// POSIX stream sockets only (loopback TCP between processes, socketpair
// within one); both are what the fabric ships.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "util/prng.h"

namespace eraser::util {

/// Transport-level failure: EOF mid-frame, CRC mismatch, receive deadline,
/// oversized frame, or a socket error. The fabric treats every WireError as
/// "this worker is gone" and re-dispatches the unit elsewhere.
class WireError : public std::runtime_error {
  public:
    explicit WireError(const std::string& what)
        : std::runtime_error("wire error: " + what) {}
};

/// IEEE CRC-32 (reflected, 0xEDB88320) of `data`.
[[nodiscard]] uint32_t crc32(std::span<const uint8_t> data);

/// FNV-1a 64-bit — the fabric's content hash (design cache keys,
/// CompiledDesign fingerprints). Chain calls by passing the previous result
/// as `seed`.
[[nodiscard]] uint64_t fnv1a64(std::string_view data,
                               uint64_t seed = 0xcbf29ce484222325ULL);

/// Same hash over raw bytes (canonical wire forms, stimulus payloads);
/// byte-for-byte identical to the string_view overload.
[[nodiscard]] uint64_t fnv1a64(std::span<const uint8_t> data,
                               uint64_t seed = 0xcbf29ce484222325ULL);

/// Capped exponential backoff with deterministic jitter. next_ms() draws
/// uniformly from [delay/2, delay] and doubles `delay` up to `max_ms`;
/// reset() rewinds to `base_ms` after a success. The jitter stream is a
/// seeded Prng, so a given seed always yields the same retry schedule —
/// connection-refusal spins (connect_loopback) and the scheduler's link
/// reconnection (eraser/scheduler.cpp) share this one policy, and the
/// chaos harness stays reproducible.
class Backoff {
  public:
    Backoff(uint32_t base_ms, uint32_t max_ms, uint64_t seed)
        : base_ms_(base_ms), max_ms_(max_ms), delay_ms_(base_ms), rng_(seed) {}

    [[nodiscard]] uint32_t next_ms() {
        const uint32_t d = delay_ms_;
        delay_ms_ = delay_ms_ >= max_ms_ / 2 ? max_ms_ : delay_ms_ * 2;
        const uint32_t half = d / 2;
        return half + static_cast<uint32_t>(rng_.below(d - half + 1));
    }

    void reset() { delay_ms_ = base_ms_; }

  private:
    uint32_t base_ms_;
    uint32_t max_ms_;
    uint32_t delay_ms_;
    Prng rng_;
};

// --- payload encoding --------------------------------------------------------

/// Append-only payload builder. All multi-byte fixed-width values are
/// little-endian; varints are unsigned LEB128.
class WireWriter {
  public:
    void u8(uint8_t v) { buf_.push_back(v); }
    void u32(uint32_t v);
    void u64(uint64_t v);
    void f64(double v);   // IEEE bits as fixed u64
    void varint(uint64_t v);
    void str(std::string_view s);   // varint length + bytes
    void words(std::span<const uint64_t> ws);   // varint count + fixed u64s

    [[nodiscard]] std::span<const uint8_t> bytes() const { return buf_; }

  private:
    std::vector<uint8_t> buf_;
};

/// Bounds-checked payload cursor; any over-read throws WireError (a
/// malformed frame must never read out of bounds or be silently accepted).
class WireReader {
  public:
    explicit WireReader(std::span<const uint8_t> data) : data_(data) {}

    [[nodiscard]] uint8_t u8();
    [[nodiscard]] uint32_t u32();
    [[nodiscard]] uint64_t u64();
    [[nodiscard]] double f64();
    [[nodiscard]] uint64_t varint();
    [[nodiscard]] std::string str();
    [[nodiscard]] std::vector<uint64_t> words();

    [[nodiscard]] size_t remaining() const { return data_.size() - pos_; }
    /// Every decoder must end exactly at the frame boundary; trailing bytes
    /// mean a schema mismatch the version handshake should have caught.
    void expect_end() const;

  private:
    std::span<const uint8_t> data_;
    size_t pos_ = 0;
};

// --- buffered framing --------------------------------------------------------
//
// The byte-exact frame layout WireConn puts on a socket, applied to a flat
// buffer instead — the persistence path of the verdict-cache store
// (eraser/verdict_cache.h) reuses the one framing codec, so a truncated or
// bit-flipped store file surfaces as WireError exactly like a corrupted
// stream does.

/// Appends one frame (`varint(len) | payload | crc32 LE`) to `out`.
void append_frame(std::vector<uint8_t>& out, std::span<const uint8_t> payload);

/// Decodes the frame starting at `pos`, advancing `pos` past it. Returns
/// false at a clean end (`pos == buf.size()`); throws WireError on a
/// truncated frame, an oversized length, or a CRC mismatch.
[[nodiscard]] bool next_frame(std::span<const uint8_t> buf, size_t& pos,
                              std::vector<uint8_t>& payload);

// --- framed connection -------------------------------------------------------

/// Owning fd wrapper (close on destruction; movable, not copyable).
class UniqueFd {
  public:
    UniqueFd() = default;
    explicit UniqueFd(int fd) : fd_(fd) {}
    ~UniqueFd() { reset(); }
    UniqueFd(UniqueFd&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
    UniqueFd& operator=(UniqueFd&& o) noexcept;
    UniqueFd(const UniqueFd&) = delete;
    UniqueFd& operator=(const UniqueFd&) = delete;

    [[nodiscard]] int get() const { return fd_; }
    [[nodiscard]] bool valid() const { return fd_ >= 0; }
    [[nodiscard]] int release();
    void reset();

  private:
    int fd_ = -1;
};

/// One framed, CRC-checked stream connection. Methods are not internally
/// synchronized — the fabric serializes use per connection (one in-flight
/// request per worker).
class WireConn {
  public:
    WireConn() = default;
    explicit WireConn(UniqueFd fd) : fd_(std::move(fd)) {}

    [[nodiscard]] bool valid() const { return fd_.valid(); }
    void close() { fd_.reset(); }

    /// Writes one frame (length varint, payload, CRC trailer). Throws
    /// WireError when the peer is gone.
    void send_frame(std::span<const uint8_t> payload);

    /// Chaos-harness injector (eraser/remote.h ChaosHooks): writes a frame
    /// whose CRC trailer is deliberately wrong, so the receiver MUST refuse
    /// it with WireError. Never use outside fault-injection tests.
    void send_corrupted_frame(std::span<const uint8_t> payload);

    /// Reads one frame into `payload`. Returns false on clean EOF at a
    /// frame boundary (peer closed between messages); throws WireError on
    /// mid-frame EOF, CRC mismatch, an oversized length, or when
    /// `timeout_ms >= 0` elapses while waiting for bytes. The deadline is
    /// per-frame and absolute: one clock snapshot at frame start covers
    /// every segment (length varint, payload, CRC trailer), so a
    /// byte-trickling peer cannot stretch it.
    [[nodiscard]] bool recv_frame(std::vector<uint8_t>& payload,
                                  int timeout_ms = -1);

    /// Frames larger than this are protocol corruption, not data (a desynced
    /// stream read as a length varint): refuse before allocating.
    static constexpr uint64_t kMaxFrameBytes = 256ull * 1024 * 1024;

  private:
    UniqueFd fd_;
};

// --- loopback plumbing -------------------------------------------------------

/// Binds a listening TCP socket on 127.0.0.1. `port` in: requested port
/// (0 = ephemeral); out: the bound port.
[[nodiscard]] UniqueFd listen_loopback(uint16_t& port);

/// Accepts one connection; throws WireError on timeout (`timeout_ms >= 0`).
[[nodiscard]] UniqueFd accept_connection(int listen_fd, int timeout_ms = -1);

/// Connects to 127.0.0.1:`port`.
[[nodiscard]] UniqueFd connect_loopback(uint16_t port,
                                        int timeout_ms = 5000);

/// A connected AF_UNIX stream pair — in-process worker threads in tests use
/// one end each, exercising the exact framing/protocol code paths the TCP
/// transport uses.
struct SocketPair {
    UniqueFd a;
    UniqueFd b;
};
[[nodiscard]] SocketPair socket_pair();

}  // namespace eraser::util
