// Wall-clock timing helpers for the instrumentation counters and benches.
#pragma once

#include <chrono>
#include <cstdint>

namespace eraser {

/// Monotonic stopwatch. Construction starts it; seconds()/ns() read elapsed
/// time without stopping.
class Stopwatch {
  public:
    using Clock = std::chrono::steady_clock;

    Stopwatch() : start_(Clock::now()) {}

    void reset() { start_ = Clock::now(); }

    [[nodiscard]] int64_t ns() const {
        return std::chrono::duration_cast<std::chrono::nanoseconds>(
                   Clock::now() - start_)
            .count();
    }
    [[nodiscard]] double seconds() const {
        return static_cast<double>(ns()) * 1e-9;
    }

  private:
    Clock::time_point start_;
};

/// Accumulates time across many disjoint intervals (e.g. "total time spent in
/// behavioral nodes"). Pause/resume via RAII Section.
class TimeAccumulator {
  public:
    /// RAII guard that adds the guarded scope's duration to the accumulator.
    /// `enabled == false` makes it a complete no-op (no clock reads): hot
    /// paths gate their phase timers on EngineOptions::time_phases.
    class Section {
      public:
        explicit Section(TimeAccumulator& acc, bool enabled = true)
            : acc_(enabled ? &acc : nullptr) {
            if (acc_ != nullptr) start_ = Stopwatch::Clock::now();
        }
        ~Section() {
            if (acc_ != nullptr) {
                acc_->total_ns_ +=
                    std::chrono::duration_cast<std::chrono::nanoseconds>(
                        Stopwatch::Clock::now() - start_)
                        .count();
            }
        }
        Section(const Section&) = delete;
        Section& operator=(const Section&) = delete;

      private:
        TimeAccumulator* acc_;
        Stopwatch::Clock::time_point start_;
    };

    /// Folds another accumulator in (sharded campaigns merge per-engine
    /// phase timers into campaign totals).
    void merge(const TimeAccumulator& other) { total_ns_ += other.total_ns_; }

    /// Adds a duration measured elsewhere — the deserialization path of the
    /// distributed fabric (eraser/remote.cpp), where a worker's accumulated
    /// phase time arrives over the wire as a nanosecond count.
    void add_ns(int64_t ns) { total_ns_ += ns; }

    [[nodiscard]] int64_t total_ns() const { return total_ns_; }
    [[nodiscard]] double total_seconds() const {
        return static_cast<double>(total_ns_) * 1e-9;
    }
    void reset() { total_ns_ = 0; }

  private:
    int64_t total_ns_ = 0;
};

}  // namespace eraser
