#include "util/wire.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <bit>
#include <cerrno>
#include <chrono>
#include <cstring>

namespace eraser::util {

namespace {

std::string errno_str(const char* op) {
    return std::string(op) + ": " + std::strerror(errno);
}

const std::array<uint32_t, 256>& crc_table() {
    static const std::array<uint32_t, 256> table = [] {
        std::array<uint32_t, 256> t{};
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t c = i;
            for (int k = 0; k < 8; ++k) {
                c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
            }
            t[i] = c;
        }
        return t;
    }();
    return table;
}

}  // namespace

uint32_t crc32(std::span<const uint8_t> data) {
    const auto& table = crc_table();
    uint32_t c = 0xFFFFFFFFu;
    for (uint8_t b : data) c = table[(c ^ b) & 0xFF] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

uint64_t fnv1a64(std::string_view data, uint64_t seed) {
    uint64_t h = seed;
    for (unsigned char c : data) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

uint64_t fnv1a64(std::span<const uint8_t> data, uint64_t seed) {
    uint64_t h = seed;
    for (uint8_t c : data) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

// --- buffered framing --------------------------------------------------------

void append_frame(std::vector<uint8_t>& out, std::span<const uint8_t> payload) {
    uint64_t v = payload.size();
    while (v >= 0x80) {
        out.push_back(uint8_t(v) | 0x80);
        v >>= 7;
    }
    out.push_back(uint8_t(v));
    out.insert(out.end(), payload.begin(), payload.end());
    const uint32_t crc = crc32(payload);
    for (int i = 0; i < 4; ++i) out.push_back(uint8_t(crc >> (8 * i)));
}

bool next_frame(std::span<const uint8_t> buf, size_t& pos,
                std::vector<uint8_t>& payload) {
    if (pos >= buf.size()) return false;
    uint64_t len = 0;
    for (unsigned shift = 0;; shift += 7) {
        if (shift >= 64) throw WireError("varint longer than 64 bits");
        if (pos >= buf.size()) throw WireError("truncated frame length");
        const uint8_t b = buf[pos++];
        len |= uint64_t(b & 0x7F) << shift;
        if (!(b & 0x80)) break;
    }
    if (len > WireConn::kMaxFrameBytes) throw WireError("oversized frame");
    if (buf.size() - pos < len + 4) throw WireError("truncated frame");
    payload.assign(buf.begin() + static_cast<ptrdiff_t>(pos),
                   buf.begin() + static_cast<ptrdiff_t>(pos + len));
    pos += len;
    uint32_t crc = 0;
    for (int i = 0; i < 4; ++i) crc |= uint32_t(buf[pos + i]) << (8 * i);
    pos += 4;
    if (crc != crc32(payload)) throw WireError("frame CRC mismatch");
    return true;
}

// --- WireWriter --------------------------------------------------------------

void WireWriter::u32(uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(uint8_t(v >> (8 * i)));
}

void WireWriter::u64(uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(uint8_t(v >> (8 * i)));
}

void WireWriter::f64(double v) { u64(std::bit_cast<uint64_t>(v)); }

void WireWriter::varint(uint64_t v) {
    while (v >= 0x80) {
        buf_.push_back(uint8_t(v) | 0x80);
        v >>= 7;
    }
    buf_.push_back(uint8_t(v));
}

void WireWriter::str(std::string_view s) {
    varint(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
}

void WireWriter::words(std::span<const uint64_t> ws) {
    varint(ws.size());
    for (uint64_t w : ws) u64(w);
}

// --- WireReader --------------------------------------------------------------

uint8_t WireReader::u8() {
    if (pos_ >= data_.size()) throw WireError("payload underrun (u8)");
    return data_[pos_++];
}

uint32_t WireReader::u32() {
    if (remaining() < 4) throw WireError("payload underrun (u32)");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= uint32_t(data_[pos_++]) << (8 * i);
    return v;
}

uint64_t WireReader::u64() {
    if (remaining() < 8) throw WireError("payload underrun (u64)");
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= uint64_t(data_[pos_++]) << (8 * i);
    return v;
}

double WireReader::f64() { return std::bit_cast<double>(u64()); }

uint64_t WireReader::varint() {
    uint64_t v = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
        if (pos_ >= data_.size()) throw WireError("payload underrun (varint)");
        const uint8_t b = data_[pos_++];
        v |= uint64_t(b & 0x7F) << shift;
        if (!(b & 0x80)) return v;
    }
    throw WireError("varint longer than 64 bits");
}

std::string WireReader::str() {
    const uint64_t n = varint();
    if (n > remaining()) throw WireError("payload underrun (string)");
    std::string s(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return s;
}

std::vector<uint64_t> WireReader::words() {
    const uint64_t n = varint();
    if (n > remaining() / 8) throw WireError("payload underrun (words)");
    std::vector<uint64_t> ws;
    ws.reserve(n);
    for (uint64_t i = 0; i < n; ++i) ws.push_back(u64());
    return ws;
}

void WireReader::expect_end() const {
    if (pos_ != data_.size()) {
        throw WireError("trailing bytes in frame (" +
                        std::to_string(data_.size() - pos_) + ")");
    }
}

// --- UniqueFd ----------------------------------------------------------------

UniqueFd& UniqueFd::operator=(UniqueFd&& o) noexcept {
    if (this != &o) {
        reset();
        fd_ = o.fd_;
        o.fd_ = -1;
    }
    return *this;
}

int UniqueFd::release() {
    const int fd = fd_;
    fd_ = -1;
    return fd;
}

void UniqueFd::reset() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
}

// --- WireConn ----------------------------------------------------------------

namespace {

/// Waits for the fd to become readable. Throws on timeout or poll error;
/// POLLHUP/POLLERR fall through to the read (which reports EOF/error).
void wait_readable(int fd, int timeout_ms) {
    struct pollfd pfd{fd, POLLIN, 0};
    for (;;) {
        const int rc = ::poll(&pfd, 1, timeout_ms);
        if (rc > 0) return;
        if (rc == 0) throw WireError("receive timeout");
        if (errno != EINTR) throw WireError(errno_str("poll"));
    }
}

void send_all(int fd, const uint8_t* data, size_t len) {
    while (len > 0) {
        const ssize_t n = ::send(fd, data, len, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) continue;
            throw WireError(errno_str("send"));
        }
        data += static_cast<size_t>(n);
        len -= static_cast<size_t>(n);
    }
}

using wire_clock = std::chrono::steady_clock;

/// Maps a relative timeout to the absolute deadline shared by every segment
/// of one frame (-1 = wait forever).
wire_clock::time_point deadline_after(int timeout_ms) {
    return timeout_ms >= 0
        ? wire_clock::now() + std::chrono::milliseconds(timeout_ms)
        : wire_clock::time_point::max();
}

/// Reads exactly `len` bytes against an absolute deadline, so the budget is
/// genuinely per-frame: the length varint, payload, and CRC trailer all
/// drain the same clock, and a byte-trickling peer cannot stretch it.
/// Returns false when the very first byte hits clean EOF and `eof_ok`;
/// throws on EOF after that.
bool recv_all(int fd, uint8_t* data, size_t len,
              wire_clock::time_point deadline, bool eof_ok) {
    bool first = true;
    while (len > 0) {
        int wait_ms = -1;
        if (deadline != wire_clock::time_point::max()) {
            const auto left = std::chrono::duration_cast<
                std::chrono::milliseconds>(deadline - wire_clock::now())
                .count();
            if (left <= 0) throw WireError("receive timeout");
            wait_ms = static_cast<int>(left);
        }
        wait_readable(fd, wait_ms);
        const ssize_t n = ::recv(fd, data, len, 0);
        if (n < 0) {
            if (errno == EINTR) continue;
            throw WireError(errno_str("recv"));
        }
        if (n == 0) {
            if (first && eof_ok) return false;
            throw WireError("peer closed mid-frame");
        }
        first = false;
        data += static_cast<size_t>(n);
        len -= static_cast<size_t>(n);
    }
    return true;
}

}  // namespace

void WireConn::send_frame(std::span<const uint8_t> payload) {
    if (!fd_.valid()) throw WireError("send on closed connection");
    WireWriter header;
    header.varint(payload.size());
    send_all(fd_.get(), header.bytes().data(), header.bytes().size());
    send_all(fd_.get(), payload.data(), payload.size());
    WireWriter trailer;
    trailer.u32(crc32(payload));
    send_all(fd_.get(), trailer.bytes().data(), trailer.bytes().size());
}

void WireConn::send_corrupted_frame(std::span<const uint8_t> payload) {
    if (!fd_.valid()) throw WireError("send on closed connection");
    WireWriter header;
    header.varint(payload.size());
    send_all(fd_.get(), header.bytes().data(), header.bytes().size());
    send_all(fd_.get(), payload.data(), payload.size());
    WireWriter trailer;
    trailer.u32(crc32(payload) ^ 0xDEADBEEFu);
    send_all(fd_.get(), trailer.bytes().data(), trailer.bytes().size());
}

bool WireConn::recv_frame(std::vector<uint8_t>& payload, int timeout_ms) {
    if (!fd_.valid()) throw WireError("receive on closed connection");
    // One absolute deadline for the whole frame.
    const auto deadline = deadline_after(timeout_ms);
    // Length varint, byte by byte: the first byte may hit clean EOF.
    uint64_t len = 0;
    for (unsigned shift = 0;; shift += 7) {
        if (shift >= 64) throw WireError("frame length varint overflow");
        uint8_t b;
        if (!recv_all(fd_.get(), &b, 1, deadline, shift == 0)) return false;
        len |= uint64_t(b & 0x7F) << shift;
        if (!(b & 0x80)) break;
    }
    if (len > kMaxFrameBytes) {
        throw WireError("frame length " + std::to_string(len) +
                        " exceeds limit (desynchronized stream?)");
    }
    payload.resize(len);
    if (len > 0) {
        recv_all(fd_.get(), payload.data(), len, deadline, false);
    }
    uint8_t crc_bytes[4];
    recv_all(fd_.get(), crc_bytes, 4, deadline, false);
    uint32_t expect = 0;
    for (int i = 0; i < 4; ++i) expect |= uint32_t(crc_bytes[i]) << (8 * i);
    if (crc32(payload) != expect) throw WireError("CRC mismatch");
    return true;
}

// --- loopback plumbing -------------------------------------------------------

UniqueFd listen_loopback(uint16_t& port) {
    UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid()) throw WireError(errno_str("socket"));
    const int one = 1;
    ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) < 0) {
        throw WireError(errno_str("bind"));
    }
    if (::listen(fd.get(), 16) < 0) throw WireError(errno_str("listen"));
    socklen_t len = sizeof(addr);
    if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                      &len) < 0) {
        throw WireError(errno_str("getsockname"));
    }
    port = ntohs(addr.sin_port);
    return fd;
}

UniqueFd accept_connection(int listen_fd, int timeout_ms) {
    wait_readable(listen_fd, timeout_ms);
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) throw WireError(errno_str("accept"));
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return UniqueFd(fd);
}

UniqueFd connect_loopback(uint16_t port, int timeout_ms) {
    using clock = std::chrono::steady_clock;
    const auto deadline = clock::now() + std::chrono::milliseconds(timeout_ms);
    // Same backoff policy as the scheduler's link reconnection; seeding with
    // the port keeps the retry schedule deterministic per destination.
    Backoff backoff(4, 50, 0x9E3779B97F4A7C15ULL ^ port);
    for (;;) {
        UniqueFd fd(::socket(AF_INET, SOCK_STREAM, 0));
        if (!fd.valid()) throw WireError(errno_str("socket"));
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        addr.sin_port = htons(port);
        if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)) == 0) {
            const int one = 1;
            ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one,
                         sizeof(one));
            return fd;
        }
        // Workers publish their port before the listener may be fully up on
        // slow CI machines; retry refusals until the deadline.
        if ((errno != ECONNREFUSED && errno != EINTR) ||
            clock::now() >= deadline) {
            throw WireError(errno_str("connect"));
        }
        ::usleep(backoff.next_ms() * 1000);
    }
}

SocketPair socket_pair() {
    int fds[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) < 0) {
        throw WireError(errno_str("socketpair"));
    }
    return {UniqueFd(fds[0]), UniqueFd(fds[1])};
}

}  // namespace eraser::util
