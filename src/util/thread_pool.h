// Small work-stealing thread pool used by the campaign scheduler. Each
// worker owns one deque per priority class: it serves the highest non-empty
// class across the whole pool first (own deque LIFO, then steal FIFO from
// the other workers), so a task submitted at a higher class starts before
// any queued lower-class task, while classes never reorder within
// themselves beyond the LIFO/steal discipline. All deques share one mutex —
// simplicity over scalability, which is fine for the intended workload of a
// handful of coarse-grained jobs (one per fault shard, seconds each);
// revisit if tasks ever become fine-grained. Tasks must not block on each
// other.
#pragma once

#include <array>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace eraser::util {

class ThreadPool {
  public:
    /// Priority classes of submit(): tasks of a higher class are popped
    /// before any queued task of a lower class, pool-wide. Matches
    /// core::Priority (Low/Normal/High) so the campaign scheduler can
    /// forward a campaign's class directly.
    static constexpr unsigned kClasses = 3;
    static constexpr unsigned kDefaultClass = 1;

    /// Spawns `num_threads` workers (0 = hardware concurrency, at least 1).
    explicit ThreadPool(unsigned num_threads)
        : workers_(resolve(num_threads)) {
        threads_.reserve(workers_.size());
        for (size_t w = 0; w < workers_.size(); ++w) {
            threads_.emplace_back([this, w] { worker_loop(w); });
        }
    }

    ~ThreadPool() {
        {
            std::unique_lock<std::mutex> lock(mu_);
            stopping_ = true;
        }
        cv_.notify_all();
        for (auto& t : threads_) t.join();
    }

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    [[nodiscard]] size_t num_threads() const { return workers_.size(); }

    /// Enqueues a task at the given priority class; an out-of-range class
    /// fails safe to the default class (never silently promoted to the top,
    /// which would let a miscast value preempt genuine high-priority work).
    /// Round-robins across worker deques so stealing is the exception
    /// rather than the rule when task costs are balanced.
    void submit(std::function<void()> task, unsigned cls = kDefaultClass) {
        if (cls >= kClasses) cls = kDefaultClass;
        {
            std::unique_lock<std::mutex> lock(mu_);
            const size_t w = next_worker_++ % workers_.size();
            workers_[w].deques[cls].push_back(std::move(task));
            ++pending_;
        }
        cv_.notify_one();
    }

    /// Blocks until every submitted task has finished executing, then
    /// rethrows the first exception any task threw (tasks that manage their
    /// own errors, like the campaign runner, never trip this).
    void wait() {
        std::unique_lock<std::mutex> lock(mu_);
        idle_cv_.wait(lock, [this] { return pending_ == 0; });
        if (first_error_) {
            std::exception_ptr err = first_error_;
            first_error_ = nullptr;
            std::rethrow_exception(err);
        }
    }

    /// The default worker count for campaign scheduling.
    [[nodiscard]] static unsigned default_threads() { return resolve(0); }

  private:
    struct Worker {
        std::array<std::deque<std::function<void()>>, kClasses> deques;
    };

    static unsigned resolve(unsigned requested) {
        if (requested > 0) return requested;
        const unsigned hw = std::thread::hardware_concurrency();
        return hw > 0 ? hw : 1;
    }

    /// Pops the next task for worker `self`: highest non-empty class
    /// pool-wide, own deque back first (LIFO), then steal from the front of
    /// the others (FIFO). Caller holds mu_.
    bool try_pop(size_t self, std::function<void()>& out) {
        for (unsigned cls = kClasses; cls-- > 0;) {
            auto& own = workers_[self].deques[cls];
            if (!own.empty()) {
                out = std::move(own.back());
                own.pop_back();
                return true;
            }
            for (size_t i = 1; i < workers_.size(); ++i) {
                auto& victim =
                    workers_[(self + i) % workers_.size()].deques[cls];
                if (!victim.empty()) {
                    out = std::move(victim.front());
                    victim.pop_front();
                    return true;
                }
            }
        }
        return false;
    }

    void worker_loop(size_t self) {
        for (;;) {
            std::function<void()> task;
            {
                std::unique_lock<std::mutex> lock(mu_);
                // Drain remaining work before honoring shutdown.
                cv_.wait(lock, [&] {
                    return try_pop(self, task) || stopping_;
                });
                if (!task) return;   // stopping and nothing left to run
            }
            std::exception_ptr err;
            try {
                task();
            } catch (...) {
                err = std::current_exception();
            }
            {
                std::unique_lock<std::mutex> lock(mu_);
                if (err && !first_error_) first_error_ = err;
                if (--pending_ == 0) idle_cv_.notify_all();
            }
        }
    }

    std::vector<Worker> workers_;
    std::vector<std::thread> threads_;
    std::mutex mu_;
    std::condition_variable cv_;
    std::condition_variable idle_cv_;
    size_t next_worker_ = 0;
    size_t pending_ = 0;
    bool stopping_ = false;
    std::exception_ptr first_error_;
};

}  // namespace eraser::util
