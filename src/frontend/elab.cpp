#include "frontend/elab.h"

#include <algorithm>
#include <optional>
#include <unordered_map>

#include "rtl/value.h"

namespace eraser::fe {

using rtl::ArrayId;
using rtl::Design;
using rtl::Expr;
using rtl::ExprPtr;
using rtl::kInvalidId;
using rtl::Op;
using rtl::SignalId;
using rtl::Stmt;
using rtl::StmtPtr;
using eraser::Value;

namespace {

constexpr uint64_t kMaxLoopIterations = 1u << 20;

struct Scope {
    std::string prefix;
    const ModuleAst* mod = nullptr;
    std::unordered_map<std::string, uint64_t> params;
    std::unordered_map<std::string, uint64_t> genvars;   // active loop vars
    std::unordered_map<std::string, std::string> integer_decls;  // name set
    std::unordered_map<std::string, SignalId> signals;
    std::unordered_map<std::string, ArrayId> arrays;
};

class Elaborator {
  public:
    Elaborator(const SourceUnit& unit, const std::string& top) : top_(top) {
        for (const ModuleAst& m : unit.modules) {
            if (!modules_.emplace(m.name, &m).second) {
                throw ElabError(m.loc, "duplicate module '" + m.name + "'");
            }
        }
        design_ = std::make_unique<Design>();
    }

    std::unique_ptr<Design> run() {
        const ModuleAst* top_mod = find_module(top_, SourceLoc{});
        design_->top_name = top_;
        elab_module(*top_mod, "", {}, /*is_top=*/true);
        design_->finalize();
        return std::move(design_);
    }

  private:
    const ModuleAst* find_module(const std::string& name,
                                 const SourceLoc& loc) {
        auto it = modules_.find(name);
        if (it == modules_.end()) {
            throw ElabError(loc, "unknown module '" + name + "'");
        }
        return it->second;
    }

    // ---- constant folding -------------------------------------------------
    std::optional<uint64_t> try_fold(const PExpr& e, const Scope& scope) {
        switch (e.kind) {
            case PExpr::Kind::Number: return e.value;
            case PExpr::Kind::Ident: {
                auto p = scope.params.find(e.name);
                if (p != scope.params.end()) return p->second;
                auto g = scope.genvars.find(e.name);
                if (g != scope.genvars.end()) return g->second;
                return std::nullopt;
            }
            case PExpr::Kind::Unary: {
                auto a = try_fold(*e.args[0], scope);
                if (!a) return std::nullopt;
                switch (e.un_op) {
                    case PUnOp::Plus: return *a;
                    case PUnOp::Minus: return ~*a + 1;
                    case PUnOp::Not: return ~*a;
                    case PUnOp::LNot: return *a == 0 ? 1 : 0;
                    default: return std::nullopt;   // reductions need width
                }
            }
            case PExpr::Kind::Binary: {
                auto a = try_fold(*e.args[0], scope);
                auto b = try_fold(*e.args[1], scope);
                if (!a || !b) return std::nullopt;
                switch (e.bin_op) {
                    case PBinOp::Add: return *a + *b;
                    case PBinOp::Sub: return *a - *b;
                    case PBinOp::Mul: return *a * *b;
                    case PBinOp::Div: return *b == 0 ? ~uint64_t{0} : *a / *b;
                    case PBinOp::Mod: return *b == 0 ? *a : *a % *b;
                    case PBinOp::And: return *a & *b;
                    case PBinOp::Or: return *a | *b;
                    case PBinOp::Xor: return *a ^ *b;
                    case PBinOp::LAnd: return (*a != 0 && *b != 0) ? 1 : 0;
                    case PBinOp::LOr: return (*a != 0 || *b != 0) ? 1 : 0;
                    case PBinOp::Eq: return *a == *b ? 1 : 0;
                    case PBinOp::Ne: return *a != *b ? 1 : 0;
                    case PBinOp::Lt: return *a < *b ? 1 : 0;
                    case PBinOp::Le: return *a <= *b ? 1 : 0;
                    case PBinOp::Gt: return *a > *b ? 1 : 0;
                    case PBinOp::Ge: return *a >= *b ? 1 : 0;
                    case PBinOp::Shl: return *b >= 64 ? 0 : *a << *b;
                    case PBinOp::Shr: return *b >= 64 ? 0 : *a >> *b;
                }
                return std::nullopt;
            }
            case PExpr::Kind::Ternary: {
                auto c = try_fold(*e.args[0], scope);
                if (!c) return std::nullopt;
                return try_fold(*e.args[*c != 0 ? 1 : 2], scope);
            }
            default: return std::nullopt;
        }
    }

    uint64_t fold(const PExpr& e, const Scope& scope, const char* what) {
        auto v = try_fold(e, scope);
        if (!v) {
            throw ElabError(e.loc, std::string(what) +
                                       " must be an elaboration-time "
                                       "constant");
        }
        return *v;
    }

    unsigned fold_width(const PExprPtr& msb, const PExprPtr& lsb,
                        const Scope& scope, const SourceLoc& loc) {
        if (!msb) return 1;
        const uint64_t hi = fold(*msb, scope, "range bound");
        const uint64_t lo = fold(*lsb, scope, "range bound");
        if (lo != 0) {
            throw ElabError(loc, "declaration ranges must end at 0 "
                                 "([msb:0]); nonzero LSB is unsupported");
        }
        if (hi >= kMaxWidth) {
            throw ElabError(loc, "vector wider than 64 bits; decompose the "
                                 "bus (see README: width limit)");
        }
        return static_cast<unsigned>(hi) + 1;
    }

    // ---- expression elaboration --------------------------------------------
    SignalId lookup_signal(const std::string& name, const Scope& scope,
                           const SourceLoc& loc) {
        auto it = scope.signals.find(name);
        if (it == scope.signals.end()) {
            throw ElabError(loc, "unknown identifier '" + name + "'");
        }
        return it->second;
    }

    /// Verilog-style context widening: grow context-sensitive operators (and
    /// their operands) to the assignment/expression context width.
    void widen(ExprPtr& e, unsigned w) {
        if (e->width >= w) return;
        switch (e->kind) {
            case Expr::Kind::Const:
                e->cval = e->cval.resized(w);
                e->width = w;
                return;
            case Expr::Kind::SignalRef:
            case Expr::Kind::ArrayRead:
                e->width = w;   // interpreter zero-extends on read
                return;
            case Expr::Kind::OpApply:
                switch (e->op) {
                    case Op::Add: case Op::Sub: case Op::Mul: case Op::Div:
                    case Op::Mod: case Op::And: case Op::Or: case Op::Xor:
                    case Op::Not: case Op::Neg:
                        e->width = w;
                        for (auto& a : e->args) widen(a, w);
                        return;
                    case Op::Mux:
                        e->width = w;
                        widen(e->args[1], w);
                        widen(e->args[2], w);
                        return;
                    case Op::Shl:
                    case Op::Shr:
                        e->width = w;
                        widen(e->args[0], w);   // shift amount self-determined
                        return;
                    default: {
                        // Self-determined (concat/slice/index/reductions/
                        // comparisons): zero-extend via an explicit Copy.
                        auto inner = std::move(e);
                        std::vector<ExprPtr> args;
                        args.push_back(std::move(inner));
                        e = Expr::make_op(Op::Copy, std::move(args), w);
                        return;
                    }
                }
        }
    }

    ExprPtr build_expr(const PExpr& p, Scope& scope) {
        switch (p.kind) {
            case PExpr::Kind::Number:
                return Expr::make_const(Value(p.value, p.width));
            case PExpr::Kind::Ident: {
                if (auto c = scope.params.find(p.name);
                    c != scope.params.end()) {
                    return Expr::make_const(Value(c->second, 32));
                }
                if (auto g = scope.genvars.find(p.name);
                    g != scope.genvars.end()) {
                    return Expr::make_const(Value(g->second, 32));
                }
                if (scope.arrays.count(p.name) != 0) {
                    throw ElabError(p.loc, "memory '" + p.name +
                                               "' used without an index");
                }
                const SignalId sig = lookup_signal(p.name, scope, p.loc);
                return Expr::make_signal(sig,
                                         design_->signals[sig].width);
            }
            case PExpr::Kind::Index: {
                if (auto a = scope.arrays.find(p.name);
                    a != scope.arrays.end()) {
                    ExprPtr idx = build_expr(*p.args[0], scope);
                    return Expr::make_array_read(
                        a->second, std::move(idx),
                        design_->arrays[a->second].width);
                }
                const SignalId sig = lookup_signal(p.name, scope, p.loc);
                ExprPtr base =
                    Expr::make_signal(sig, design_->signals[sig].width);
                if (auto c = try_fold(*p.args[0], scope)) {
                    if (*c >= design_->signals[sig].width) {
                        throw ElabError(p.loc, "constant bit-select out of "
                                               "range");
                    }
                    std::vector<ExprPtr> args;
                    args.push_back(std::move(base));
                    return Expr::make_op(Op::Slice, std::move(args), 1,
                                         static_cast<unsigned>(*c));
                }
                ExprPtr idx = build_expr(*p.args[0], scope);
                std::vector<ExprPtr> args;
                args.push_back(std::move(base));
                args.push_back(std::move(idx));
                return Expr::make_op(Op::Index, std::move(args), 1);
            }
            case PExpr::Kind::Slice: {
                const SignalId sig = lookup_signal(p.name, scope, p.loc);
                const uint64_t msb = fold(*p.args[0], scope, "part select");
                const uint64_t lsb = fold(*p.args[1], scope, "part select");
                if (msb < lsb || msb >= design_->signals[sig].width) {
                    throw ElabError(p.loc, "part select out of range");
                }
                std::vector<ExprPtr> args;
                args.push_back(
                    Expr::make_signal(sig, design_->signals[sig].width));
                return Expr::make_op(Op::Slice, std::move(args),
                                     static_cast<unsigned>(msb - lsb + 1),
                                     static_cast<unsigned>(lsb));
            }
            case PExpr::Kind::Unary: {
                ExprPtr a = build_expr(*p.args[0], scope);
                const unsigned aw = a->width;
                std::vector<ExprPtr> args;
                args.push_back(std::move(a));
                switch (p.un_op) {
                    case PUnOp::Plus: return std::move(args[0]);
                    case PUnOp::Minus:
                        return Expr::make_op(Op::Neg, std::move(args), aw);
                    case PUnOp::Not:
                        return Expr::make_op(Op::Not, std::move(args), aw);
                    case PUnOp::LNot:
                        return Expr::make_op(Op::LNot, std::move(args), 1);
                    case PUnOp::RedAnd:
                        return Expr::make_op(Op::RedAnd, std::move(args), 1);
                    case PUnOp::RedOr:
                        return Expr::make_op(Op::RedOr, std::move(args), 1);
                    case PUnOp::RedXor:
                        return Expr::make_op(Op::RedXor, std::move(args), 1);
                }
                throw ElabError(p.loc, "bad unary operator");
            }
            case PExpr::Kind::Binary: {
                ExprPtr a = build_expr(*p.args[0], scope);
                ExprPtr b = build_expr(*p.args[1], scope);
                const unsigned wa = a->width;
                const unsigned wb = b->width;
                const unsigned wmax = std::max(wa, wb);
                auto make2 = [&](Op op, unsigned w) {
                    std::vector<ExprPtr> args;
                    args.push_back(std::move(a));
                    args.push_back(std::move(b));
                    return Expr::make_op(op, std::move(args), w);
                };
                switch (p.bin_op) {
                    case PBinOp::Add: widen(a, wmax); widen(b, wmax);
                        return make2(Op::Add, wmax);
                    case PBinOp::Sub: widen(a, wmax); widen(b, wmax);
                        return make2(Op::Sub, wmax);
                    case PBinOp::Mul: widen(a, wmax); widen(b, wmax);
                        return make2(Op::Mul, wmax);
                    case PBinOp::Div: widen(a, wmax); widen(b, wmax);
                        return make2(Op::Div, wmax);
                    case PBinOp::Mod: widen(a, wmax); widen(b, wmax);
                        return make2(Op::Mod, wmax);
                    case PBinOp::And: widen(a, wmax); widen(b, wmax);
                        return make2(Op::And, wmax);
                    case PBinOp::Or: widen(a, wmax); widen(b, wmax);
                        return make2(Op::Or, wmax);
                    case PBinOp::Xor: widen(a, wmax); widen(b, wmax);
                        return make2(Op::Xor, wmax);
                    case PBinOp::LAnd: return make2(Op::LAnd, 1);
                    case PBinOp::LOr: return make2(Op::LOr, 1);
                    case PBinOp::Eq: return make2(Op::Eq, 1);
                    case PBinOp::Ne: return make2(Op::Ne, 1);
                    case PBinOp::Lt: return make2(Op::Lt, 1);
                    case PBinOp::Le: return make2(Op::Le, 1);
                    case PBinOp::Gt: return make2(Op::Gt, 1);
                    case PBinOp::Ge: return make2(Op::Ge, 1);
                    case PBinOp::Shl: return make2(Op::Shl, wa);
                    case PBinOp::Shr: return make2(Op::Shr, wa);
                }
                throw ElabError(p.loc, "bad binary operator");
            }
            case PExpr::Kind::Ternary: {
                ExprPtr sel = build_expr(*p.args[0], scope);
                ExprPtr t = build_expr(*p.args[1], scope);
                ExprPtr f = build_expr(*p.args[2], scope);
                const unsigned w = std::max(t->width, f->width);
                widen(t, w);
                widen(f, w);
                std::vector<ExprPtr> args;
                args.push_back(std::move(sel));
                args.push_back(std::move(t));
                args.push_back(std::move(f));
                return Expr::make_op(Op::Mux, std::move(args), w);
            }
            case PExpr::Kind::Concat: {
                std::vector<ExprPtr> args;
                unsigned w = 0;
                for (const auto& part : p.args) {
                    args.push_back(build_expr(*part, scope));
                    w += args.back()->width;
                }
                if (w > kMaxWidth) {
                    throw ElabError(p.loc, "concatenation wider than 64 bits");
                }
                return Expr::make_op(Op::Concat, std::move(args), w);
            }
            case PExpr::Kind::Repl: {
                if (p.value == 0 || p.value > kMaxWidth) {
                    throw ElabError(p.loc, "bad replication count");
                }
                std::vector<ExprPtr> args;
                unsigned w = 0;
                ExprPtr base = build_expr(*p.args[0], scope);
                for (uint64_t i = 0; i < p.value; ++i) {
                    args.push_back(base->clone());
                    w += base->width;
                }
                if (w > kMaxWidth) {
                    throw ElabError(p.loc, "replication wider than 64 bits");
                }
                return Expr::make_op(Op::Concat, std::move(args), w);
            }
        }
        throw ElabError(p.loc, "bad expression");
    }

    // ---- continuous-assignment lowering -------------------------------------
    SignalId fresh_temp(const Scope& scope, unsigned width) {
        const std::string name =
            scope.prefix + "$t" + std::to_string(temp_counter_++);
        return design_->add_signal(name, width, rtl::SignalKind::Wire);
    }

    /// Lowers an elaborated expression to a signal carrying its value.
    SignalId lower_to_signal(const Expr& e, const Scope& scope,
                             const SourceLoc& loc) {
        if (e.kind == Expr::Kind::SignalRef &&
            design_->signals[e.sig].width == e.width) {
            return e.sig;
        }
        const SignalId out = fresh_temp(scope, e.width);
        lower_into(e, out, scope, loc);
        return out;
    }

    /// Lowers an elaborated expression as the driver of `out`.
    void lower_into(const Expr& e, SignalId out, const Scope& scope,
                    const SourceLoc& loc) {
        switch (e.kind) {
            case Expr::Kind::Const:
                design_->add_node(Op::Const, {}, out, e.cval);
                return;
            case Expr::Kind::SignalRef:
                design_->add_node(Op::Copy, {e.sig}, out);
                return;
            case Expr::Kind::ArrayRead:
                throw ElabError(loc,
                                "memories cannot be read in continuous "
                                "assignments; read them inside an always "
                                "block");
            case Expr::Kind::OpApply: {
                std::vector<SignalId> ins;
                ins.reserve(e.args.size());
                for (const auto& a : e.args) {
                    ins.push_back(lower_to_signal(*a, scope, loc));
                }
                design_->add_node(e.op, std::move(ins), out, Value(0, 1),
                                  e.imm);
                return;
            }
        }
    }

    // ---- statement elaboration ------------------------------------------------
    rtl::LValue build_lhs(const PLhs& lhs, Scope& scope, unsigned& width_out) {
        rtl::LValue out;
        if (auto a = scope.arrays.find(lhs.name); a != scope.arrays.end()) {
            if (!lhs.index) {
                throw ElabError(lhs.loc, "memory write needs an index");
            }
            out.arr = a->second;
            out.index = build_expr(*lhs.index, scope);
            width_out = design_->arrays[a->second].width;
            out.width = width_out;
            return out;
        }
        if (scope.integer_decls.count(lhs.name) != 0) {
            throw ElabError(lhs.loc,
                            "integer variables may only be assigned in "
                            "for-loop headers (they are unrolled away)");
        }
        const SignalId sig = lookup_signal(lhs.name, scope, lhs.loc);
        out.sig = sig;
        const unsigned sig_w = design_->signals[sig].width;
        if (lhs.msb) {
            const uint64_t msb = fold(*lhs.msb, scope, "part select");
            const uint64_t lsb = fold(*lhs.lsb, scope, "part select");
            if (msb < lsb || msb >= sig_w) {
                throw ElabError(lhs.loc, "part-select write out of range");
            }
            out.lo = static_cast<unsigned>(lsb);
            out.width = static_cast<unsigned>(msb - lsb + 1);
            out.partial = out.width != sig_w || out.lo != 0;
            width_out = out.width;
            return out;
        }
        if (lhs.index) {
            if (auto c = try_fold(*lhs.index, scope)) {
                if (*c >= sig_w) {
                    throw ElabError(lhs.loc, "bit-select write out of range");
                }
                out.lo = static_cast<unsigned>(*c);
                out.width = 1;
                out.partial = sig_w != 1;
            } else {
                out.index = build_expr(*lhs.index, scope);
                out.width = 1;
                out.partial = true;
            }
            width_out = 1;
            return out;
        }
        out.lo = 0;
        out.width = sig_w;
        out.partial = false;
        width_out = sig_w;
        return out;
    }

    StmtPtr build_stmt(const PStmt& p, Scope& scope, bool in_seq_block) {
        switch (p.kind) {
            case PStmt::Kind::Null: return Stmt::make_block({});
            case PStmt::Kind::Block: {
                std::vector<StmtPtr> body;
                body.reserve(p.stmts.size());
                for (const auto& c : p.stmts) {
                    body.push_back(build_stmt(*c, scope, in_seq_block));
                }
                return Stmt::make_block(std::move(body));
            }
            case PStmt::Kind::Assign: {
                unsigned lhs_width = 0;
                rtl::LValue lhs = build_lhs(p.lhs, scope, lhs_width);
                ExprPtr rhs = build_expr(*p.rhs, scope);
                widen(rhs, lhs_width);
                return Stmt::make_assign(std::move(lhs), std::move(rhs),
                                         p.nonblocking);
            }
            case PStmt::Kind::If: {
                ExprPtr cond = build_expr(*p.cond, scope);
                StmtPtr then_s =
                    p.then_stmt ? build_stmt(*p.then_stmt, scope, in_seq_block)
                                : nullptr;
                StmtPtr else_s =
                    p.else_stmt ? build_stmt(*p.else_stmt, scope, in_seq_block)
                                : nullptr;
                return Stmt::make_if(std::move(cond), std::move(then_s),
                                     std::move(else_s));
            }
            case PStmt::Kind::Case: {
                ExprPtr subject = build_expr(*p.subject, scope);
                const unsigned sw = subject->width;
                std::vector<rtl::CaseArm> arms;
                for (const auto& item : p.items) {
                    rtl::CaseArm arm;
                    for (const auto& label : item.labels) {
                        arm.labels.emplace_back(
                            fold(*label, scope, "case label"), sw);
                    }
                    if (item.body) {
                        arm.body = build_stmt(*item.body, scope, in_seq_block);
                    }
                    arms.push_back(std::move(arm));
                }
                return Stmt::make_case(std::move(subject), std::move(arms));
            }
            case PStmt::Kind::For: {
                if (scope.integer_decls.count(p.loop_var) == 0) {
                    throw ElabError(p.loc, "for-loop variable '" +
                                               p.loop_var +
                                               "' must be declared integer");
                }
                std::vector<StmtPtr> body;
                uint64_t v = fold(*p.loop_init, scope, "for-loop init");
                uint64_t iters = 0;
                for (;;) {
                    scope.genvars[p.loop_var] = v;
                    const uint64_t cont =
                        fold(*p.cond, scope, "for-loop condition");
                    if (cont == 0) break;
                    if (p.body) {
                        body.push_back(build_stmt(*p.body, scope,
                                                  in_seq_block));
                    }
                    v = fold(*p.loop_update, scope, "for-loop update");
                    if (++iters > kMaxLoopIterations) {
                        throw ElabError(p.loc, "for-loop does not terminate "
                                               "at elaboration time");
                    }
                }
                scope.genvars.erase(p.loop_var);
                return Stmt::make_block(std::move(body));
            }
        }
        throw ElabError(p.loc, "bad statement");
    }

    // ---- module elaboration ------------------------------------------------
    void elab_module(const ModuleAst& mod, const std::string& prefix,
                     const std::unordered_map<std::string, uint64_t>& overrides,
                     bool is_top) {
        if (++depth_ > 64) {
            throw ElabError(mod.loc, "instance hierarchy deeper than 64 "
                                     "(recursive instantiation?)");
        }
        Scope scope;
        scope.prefix = prefix;
        scope.mod = &mod;

        // Parameters, in declaration order; overrides win.
        for (const ParamDecl& p : mod.params) {
            if (!p.is_local) {
                if (auto it = overrides.find(p.name); it != overrides.end()) {
                    scope.params[p.name] = it->second;
                    continue;
                }
            }
            scope.params[p.name] = fold(*p.value, scope, "parameter value");
        }

        // Ports.
        for (const PortDecl& p : mod.ports) {
            const unsigned w = fold_width(p.msb, p.lsb, scope, p.loc);
            const SignalId sig = design_->add_signal(
                prefix + p.name, w,
                p.is_reg ? rtl::SignalKind::Reg : rtl::SignalKind::Wire,
                is_top && p.dir == Dir::Input,
                is_top && p.dir == Dir::Output);
            scope.signals.emplace(p.name, sig);
        }

        // Nets / regs / integers / memories.
        for (const NetDecl& d : mod.nets) {
            if (d.kind == NetDecl::Kind::Integer) {
                for (const std::string& n : d.names) {
                    scope.integer_decls.emplace(n, n);
                }
                continue;
            }
            const unsigned w = fold_width(d.msb, d.lsb, scope, d.loc);
            if (d.arr_lo) {
                const uint64_t lo = fold(*d.arr_lo, scope, "array bound");
                const uint64_t hi = fold(*d.arr_hi, scope, "array bound");
                if (lo != 0 || hi < lo) {
                    throw ElabError(d.loc,
                                    "array bounds must be [0:N] ascending");
                }
                if (d.kind != NetDecl::Kind::Reg) {
                    throw ElabError(d.loc, "memories must be reg");
                }
                const ArrayId arr = design_->add_array(
                    prefix + d.names[0], w, static_cast<uint32_t>(hi) + 1);
                scope.arrays.emplace(d.names[0], arr);
                continue;
            }
            for (const std::string& n : d.names) {
                if (scope.signals.count(n) != 0) {
                    // Port re-declaration (non-ANSI style remnant): ignore.
                    continue;
                }
                const SignalId sig = design_->add_signal(
                    prefix + n, w,
                    d.kind == NetDecl::Kind::Reg ? rtl::SignalKind::Reg
                                                 : rtl::SignalKind::Wire);
                scope.signals.emplace(n, sig);
            }
        }

        // Instances: resolve overrides/connections, recurse, wire up ports.
        for (const InstanceItem& inst : mod.instances) {
            const ModuleAst* child = find_module(inst.module_name, inst.loc);
            std::unordered_map<std::string, uint64_t> child_params;
            for (const auto& [pname, pexpr] : inst.param_overrides) {
                child_params[pname] =
                    fold(*pexpr, scope, "parameter override");
            }
            const std::string child_prefix = prefix + inst.inst_name + ".";
            elab_module(*child, child_prefix, child_params, /*is_top=*/false);

            for (const PortConn& conn : inst.conns) {
                const PortDecl* port = nullptr;
                for (const PortDecl& cp : child->ports) {
                    if (cp.name == conn.port) {
                        port = &cp;
                        break;
                    }
                }
                if (port == nullptr) {
                    throw ElabError(inst.loc, "module '" + child->name +
                                                  "' has no port '" +
                                                  conn.port + "'");
                }
                const SignalId child_sig =
                    design_->signal_id(child_prefix + port->name);
                if (port->dir == Dir::Input) {
                    if (!conn.expr) {
                        design_->add_node(Op::Const, {}, child_sig,
                                          Value(0, 1));
                        continue;
                    }
                    ExprPtr e = build_expr(*conn.expr, scope);
                    widen(e, design_->signals[child_sig].width);
                    lower_into(*e, child_sig, scope, inst.loc);
                } else {
                    if (!conn.expr) continue;   // dangling output
                    if (conn.expr->kind != PExpr::Kind::Ident) {
                        throw ElabError(inst.loc,
                                        "output port connections must be "
                                        "plain identifiers");
                    }
                    const SignalId parent_sig =
                        lookup_signal(conn.expr->name, scope, inst.loc);
                    design_->add_node(Op::Copy, {child_sig}, parent_sig);
                }
            }
        }

        // Continuous assignments (including wire-with-init declarations).
        for (const NetDecl& d : mod.nets) {
            if (!d.init) continue;
            const SignalId sig = scope.signals.at(d.names[0]);
            ExprPtr e = build_expr(*d.init, scope);
            widen(e, design_->signals[sig].width);
            lower_into(*e, sig, scope, d.loc);
        }
        for (const AssignItem& a : mod.assigns) {
            ExprPtr rhs = build_expr(*a.rhs, scope);
            if (a.lhs_names.size() == 1) {
                const SignalId sig =
                    lookup_signal(a.lhs_names[0], scope, a.loc);
                widen(rhs, design_->signals[sig].width);
                lower_into(*rhs, sig, scope, a.loc);
                continue;
            }
            // Concat LHS: lower RHS once, then slice into the parts.
            unsigned total = 0;
            std::vector<SignalId> parts;
            for (const std::string& n : a.lhs_names) {
                parts.push_back(lookup_signal(n, scope, a.loc));
                total += design_->signals[parts.back()].width;
            }
            if (total > kMaxWidth) {
                throw ElabError(a.loc, "concat LHS wider than 64 bits");
            }
            widen(rhs, total);
            const SignalId bundle = lower_to_signal(*rhs, scope, a.loc);
            unsigned lo = total;
            for (size_t i = 0; i < parts.size(); ++i) {   // MSB-first
                const unsigned w = design_->signals[parts[i]].width;
                lo -= w;
                design_->add_node(Op::Slice, {bundle}, parts[i], Value(0, 1),
                                  lo);
            }
        }

        // Always blocks.
        for (const AlwaysItem& a : mod.always_blocks) {
            rtl::BehavNode behav;
            behav.name = prefix + "always@" + std::to_string(a.loc.line);
            behav.is_comb = a.is_comb;
            for (const PEdge& e : a.edges) {
                rtl::EdgeSpec spec;
                spec.sig = lookup_signal(e.signal, scope, a.loc);
                spec.kind = e.negedge ? rtl::EdgeKind::Neg : rtl::EdgeKind::Pos;
                behav.edges.push_back(spec);
            }
            if (a.body) {
                behav.body = build_stmt(*a.body, scope, !a.is_comb);
            }
            design_->add_behavior(std::move(behav));
        }

        // Initial blocks.
        for (const InitialItem& init : mod.initials) {
            rtl::InitialBlock block;
            if (init.body) {
                block.body = build_stmt(*init.body, scope, false);
            }
            design_->initials.push_back(std::move(block));
        }

        --depth_;
    }

    std::string top_;
    std::unordered_map<std::string, const ModuleAst*> modules_;
    std::unique_ptr<Design> design_;
    uint32_t temp_counter_ = 0;
    int depth_ = 0;
};

}  // namespace

std::unique_ptr<Design> elaborate(const SourceUnit& unit,
                                  const std::string& top) {
    return Elaborator(unit, top).run();
}

}  // namespace eraser::fe
