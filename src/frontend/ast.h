// Parse-level AST for the Verilog subset: name-based, pre-elaboration.
// The elaborator resolves names, folds parameters/constants, unrolls loops,
// flattens hierarchy, and lowers to the rtl:: IR.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "util/diagnostics.h"

namespace eraser::fe {

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class PUnOp : uint8_t { Plus, Minus, Not, LNot, RedAnd, RedOr, RedXor };
enum class PBinOp : uint8_t {
    Add, Sub, Mul, Div, Mod,
    And, Or, Xor,
    LAnd, LOr,
    Eq, Ne, Lt, Le, Gt, Ge,
    Shl, Shr,
};

struct PExpr;
using PExprPtr = std::unique_ptr<PExpr>;

struct PExpr {
    enum class Kind : uint8_t {
        Number,    // value/width/sized
        Ident,     // name
        Index,     // name[index_expr] (bit select or array element)
        Slice,     // name[msb:lsb] (constant part select)
        Unary,
        Binary,
        Ternary,   // args: cond, then, else
        Concat,    // args MSB-first
        Repl,      // {count{expr}}: count in `value`, expr in args[0]
    };

    Kind kind = Kind::Number;
    SourceLoc loc;

    uint64_t value = 0;     // Number bits / Repl count
    unsigned width = 32;    // Number width
    bool sized = false;     // Number had explicit size

    std::string name;       // Ident / Index / Slice base
    PUnOp un_op = PUnOp::Plus;
    PBinOp bin_op = PBinOp::Add;
    std::vector<PExprPtr> args;
};

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

struct PStmt;
using PStmtPtr = std::unique_ptr<PStmt>;

/// LHS of a procedural assignment: name, optional [index] or [msb:lsb].
struct PLhs {
    std::string name;
    PExprPtr index;          // single bit / array element
    PExprPtr msb, lsb;       // constant part select
    SourceLoc loc;
};

struct PCaseItem {
    std::vector<PExprPtr> labels;   // empty = default
    PStmtPtr body;
};

struct PStmt {
    enum class Kind : uint8_t { Block, Assign, If, Case, For, Null };

    Kind kind = Kind::Null;
    SourceLoc loc;

    std::vector<PStmtPtr> stmts;    // Block
    PLhs lhs;                       // Assign / For loop variable (in lhs.name)
    PExprPtr rhs;                   // Assign
    bool nonblocking = false;

    PExprPtr cond;                  // If / For condition
    PStmtPtr then_stmt;
    PStmtPtr else_stmt;

    PExprPtr subject;               // Case
    std::vector<PCaseItem> items;

    // For: `for (var = init; cond; var = update) body`
    std::string loop_var;
    PExprPtr loop_init;
    PExprPtr loop_update;
    PStmtPtr body;
};

// ---------------------------------------------------------------------------
// Module items
// ---------------------------------------------------------------------------

enum class Dir : uint8_t { Input, Output };

struct PortDecl {
    std::string name;
    Dir dir = Dir::Input;
    bool is_reg = false;
    PExprPtr msb, lsb;   // null = scalar
    SourceLoc loc;
};

struct NetDecl {
    enum class Kind : uint8_t { Wire, Reg, Integer };
    Kind kind = Kind::Wire;
    PExprPtr msb, lsb;               // null = scalar
    std::vector<std::string> names;
    // Array dimension (`reg [7:0] m [0:255]`), applies to every name.
    PExprPtr arr_lo, arr_hi;
    // Optional init for single-name wire declarations (`wire x = e;`).
    PExprPtr init;
    SourceLoc loc;
};

struct ParamDecl {
    std::string name;
    PExprPtr value;
    bool is_local = false;
    SourceLoc loc;
};

struct AssignItem {
    // LHS: identifier or concat of identifiers (MSB-first).
    std::vector<std::string> lhs_names;
    PExprPtr rhs;
    SourceLoc loc;
};

struct PEdge {
    bool negedge = false;
    std::string signal;
};

struct AlwaysItem {
    bool is_comb = false;            // @(*) or level-sensitive list
    std::vector<PEdge> edges;        // when !is_comb
    PStmtPtr body;
    SourceLoc loc;
};

struct InitialItem {
    PStmtPtr body;
    SourceLoc loc;
};

struct PortConn {
    std::string port;
    PExprPtr expr;   // null = unconnected
};

struct InstanceItem {
    std::string module_name;
    std::string inst_name;
    std::vector<std::pair<std::string, PExprPtr>> param_overrides;
    std::vector<PortConn> conns;
    SourceLoc loc;
};

struct ModuleAst {
    std::string name;
    std::vector<PortDecl> ports;
    std::vector<ParamDecl> params;
    std::vector<NetDecl> nets;
    std::vector<AssignItem> assigns;
    std::vector<AlwaysItem> always_blocks;
    std::vector<InitialItem> initials;
    std::vector<InstanceItem> instances;
    SourceLoc loc;
};

/// A parsed source unit: one or more modules.
struct SourceUnit {
    std::vector<ModuleAst> modules;
};

}  // namespace eraser::fe
