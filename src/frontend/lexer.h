// Lexer for the Verilog subset: handles line/block comments, sized and
// unsized numeric literals (with underscores), identifiers (including
// escaped ones are NOT supported), and the operator set of the subset.
#pragma once

#include <string_view>
#include <vector>

#include "frontend/token.h"

namespace eraser::fe {

/// Tokenizes a whole buffer. Throws ParseError on malformed input.
[[nodiscard]] std::vector<Token> lex(std::string_view source);

}  // namespace eraser::fe
