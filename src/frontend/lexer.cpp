#include "frontend/lexer.h"

#include <cctype>

#include "rtl/value.h"

namespace eraser::fe {

namespace {

class Lexer {
  public:
    explicit Lexer(std::string_view src) : src_(src) {}

    std::vector<Token> run() {
        std::vector<Token> out;
        for (;;) {
            skip_space_and_comments();
            Token t = next_token();
            const bool end = t.kind == Tok::End;
            out.push_back(std::move(t));
            if (end) break;
        }
        return out;
    }

  private:
    [[nodiscard]] SourceLoc loc() const { return {line_, col_}; }
    [[nodiscard]] bool eof() const { return pos_ >= src_.size(); }
    [[nodiscard]] char peek(size_t ahead = 0) const {
        return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
    }
    char advance() {
        const char c = src_[pos_++];
        if (c == '\n') {
            ++line_;
            col_ = 1;
        } else {
            ++col_;
        }
        return c;
    }

    void skip_space_and_comments() {
        for (;;) {
            while (!eof() && std::isspace(static_cast<unsigned char>(peek()))) {
                advance();
            }
            if (peek() == '/' && peek(1) == '/') {
                while (!eof() && peek() != '\n') advance();
                continue;
            }
            if (peek() == '/' && peek(1) == '*') {
                const SourceLoc start = loc();
                advance();
                advance();
                while (!(peek() == '*' && peek(1) == '/')) {
                    if (eof()) {
                        throw ParseError(start, "unterminated block comment");
                    }
                    advance();
                }
                advance();
                advance();
                continue;
            }
            break;
        }
    }

    Token next_token() {
        Token t;
        t.loc = loc();
        if (eof()) return t;

        const char c = peek();
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            return lex_ident(t);
        }
        if (std::isdigit(static_cast<unsigned char>(c)) || c == '\'') {
            return lex_number(t);
        }
        if (c == '$') return lex_system(t);
        return lex_operator(t);
    }

    Token lex_ident(Token t) {
        std::string s;
        while (!eof() &&
               (std::isalnum(static_cast<unsigned char>(peek())) ||
                peek() == '_' || peek() == '$')) {
            s.push_back(advance());
        }
        t.kind = Tok::Ident;
        t.text = std::move(s);
        return t;
    }

    Token lex_system(Token t) {
        std::string s;
        s.push_back(advance());   // '$'
        while (!eof() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                          peek() == '_')) {
            s.push_back(advance());
        }
        t.kind = Tok::SystemName;
        t.text = std::move(s);
        return t;
    }

    uint64_t read_digits(int base, const SourceLoc& at) {
        uint64_t v = 0;
        bool any = false;
        for (;;) {
            const char c = peek();
            if (c == '_') {
                advance();
                continue;
            }
            int digit;
            if (c >= '0' && c <= '9') {
                digit = c - '0';
            } else if (c >= 'a' && c <= 'f') {
                digit = c - 'a' + 10;
            } else if (c >= 'A' && c <= 'F') {
                digit = c - 'A' + 10;
            } else {
                break;
            }
            if (digit >= base) {
                if (base == 10 && digit >= 10) break;   // hex chars end dec
                throw ParseError(at, "digit out of range for base");
            }
            advance();
            v = v * static_cast<uint64_t>(base) + static_cast<uint64_t>(digit);
            any = true;
        }
        if (!any) throw ParseError(at, "expected digits in numeric literal");
        return v;
    }

    Token lex_number(Token t) {
        t.kind = Tok::Number;
        uint64_t size_part = 0;
        bool have_size = false;
        if (peek() != '\'') {
            size_part = read_digits(10, t.loc);
            have_size = true;
        }
        if (peek() != '\'') {
            // Plain decimal literal.
            t.value = size_part;
            t.width = 32;
            t.sized = false;
            return t;
        }
        advance();   // '\''
        char base_char = peek();
        if (base_char == 's' || base_char == 'S') {
            advance();   // signed marker, treated as unsigned (documented)
            base_char = peek();
        }
        int base;
        switch (std::tolower(static_cast<unsigned char>(base_char))) {
            case 'b': base = 2; break;
            case 'o': base = 8; break;
            case 'd': base = 10; break;
            case 'h': base = 16; break;
            default:
                throw ParseError(t.loc, "unknown base in numeric literal");
        }
        advance();
        t.value = read_digits(base, t.loc);
        if (have_size) {
            if (size_part < 1 || size_part > eraser::kMaxWidth) {
                throw ParseError(
                    t.loc, "literal size outside supported range [1, 64]");
            }
            t.width = static_cast<unsigned>(size_part);
            t.sized = true;
            t.value &= eraser::Value::mask(t.width);
        } else {
            t.width = 32;
            t.sized = false;
        }
        return t;
    }


    Token lex_operator(Token t) {
        const char c = advance();
        auto two = [&](char second, Tok yes, Tok no) {
            if (peek() == second) {
                advance();
                t.kind = yes;
            } else {
                t.kind = no;
            }
            return t;
        };
        switch (c) {
            case '(': t.kind = Tok::LParen; return t;
            case ')': t.kind = Tok::RParen; return t;
            case '[': t.kind = Tok::LBracket; return t;
            case ']': t.kind = Tok::RBracket; return t;
            case '{': t.kind = Tok::LBrace; return t;
            case '}': t.kind = Tok::RBrace; return t;
            case ';': t.kind = Tok::Semi; return t;
            case ':': t.kind = Tok::Colon; return t;
            case ',': t.kind = Tok::Comma; return t;
            case '.': t.kind = Tok::Dot; return t;
            case '#': t.kind = Tok::Hash; return t;
            case '@': t.kind = Tok::At; return t;
            case '?': t.kind = Tok::Question; return t;
            case '+': t.kind = Tok::Plus; return t;
            case '-': t.kind = Tok::Minus; return t;
            case '*': t.kind = Tok::Star; return t;
            case '/': t.kind = Tok::Slash; return t;
            case '%': t.kind = Tok::Percent; return t;
            case '~': t.kind = Tok::Tilde; return t;
            case '^': t.kind = Tok::Caret; return t;
            case '&': return two('&', Tok::AmpAmp, Tok::Amp);
            case '|': return two('|', Tok::PipePipe, Tok::Pipe);
            case '=': return two('=', Tok::EqEq, Tok::Assign);
            case '!': return two('=', Tok::BangEq, Tok::Bang);
            case '<':
                if (peek() == '<') {
                    advance();
                    t.kind = Tok::Shl;
                } else if (peek() == '=') {
                    advance();
                    t.kind = Tok::NonBlocking;   // or <=, parser decides
                } else {
                    t.kind = Tok::Lt;
                }
                return t;
            case '>':
                if (peek() == '>') {
                    advance();
                    t.kind = Tok::Shr;
                } else if (peek() == '=') {
                    advance();
                    t.kind = Tok::GtEq;
                } else {
                    t.kind = Tok::Gt;
                }
                return t;
            default:
                throw ParseError(t.loc, std::string("unexpected character '") +
                                            c + "'");
        }
    }

    std::string_view src_;
    size_t pos_ = 0;
    uint32_t line_ = 1;
    uint32_t col_ = 1;
};

}  // namespace

std::vector<Token> lex(std::string_view source) {
    return Lexer(source).run();
}

}  // namespace eraser::fe
