#include "frontend/parser.h"

#include <unordered_set>

#include "frontend/lexer.h"

namespace eraser::fe {

namespace {

const std::unordered_set<std::string> kKeywords = {
    "module", "endmodule", "input",  "output",    "inout",   "wire",
    "reg",    "integer",   "assign", "always",    "initial", "begin",
    "end",    "if",        "else",   "case",      "casez",   "casex",
    "endcase", "default",  "for",    "posedge",   "negedge", "or",
    "parameter", "localparam", "genvar", "generate", "endgenerate",
    "function", "endfunction", "task", "endtask",
};

class Parser {
  public:
    explicit Parser(std::string_view src) : toks_(lex(src)) {}

    SourceUnit run() {
        SourceUnit unit;
        while (!at_end()) {
            expect_kw("module");
            unit.modules.push_back(parse_module());
        }
        return unit;
    }

  private:
    // ---- token helpers ----------------------------------------------------
    [[nodiscard]] const Token& cur() const { return toks_[pos_]; }
    [[nodiscard]] const Token& peek(size_t ahead = 1) const {
        const size_t i = pos_ + ahead;
        return i < toks_.size() ? toks_[i] : toks_.back();
    }
    [[nodiscard]] bool at_end() const { return cur().kind == Tok::End; }
    Token take() { return toks_[pos_++]; }

    [[nodiscard]] bool is_kw(const std::string& kw) const {
        return cur().kind == Tok::Ident && cur().text == kw;
    }
    bool accept_kw(const std::string& kw) {
        if (!is_kw(kw)) return false;
        ++pos_;
        return true;
    }
    void expect_kw(const std::string& kw) {
        if (!accept_kw(kw)) {
            throw ParseError(cur().loc, "expected '" + kw + "'");
        }
    }
    bool accept(Tok k) {
        if (cur().kind != k) return false;
        ++pos_;
        return true;
    }
    Token expect(Tok k, const char* what) {
        if (cur().kind != k) {
            throw ParseError(cur().loc,
                             std::string("expected ") + what);
        }
        return take();
    }
    std::string expect_ident() {
        if (cur().kind != Tok::Ident || kKeywords.count(cur().text) != 0) {
            throw ParseError(cur().loc, "expected identifier");
        }
        return take().text;
    }

    // ---- module -------------------------------------------------------------
    ModuleAst parse_module() {
        ModuleAst m;
        m.loc = cur().loc;
        m.name = expect_ident();
        if (accept(Tok::Hash)) parse_param_port_list(m);
        if (accept(Tok::LParen)) {
            if (!accept(Tok::RParen)) {
                parse_port_list(m);
                expect(Tok::RParen, "')'");
            }
        }
        expect(Tok::Semi, "';'");
        while (!accept_kw("endmodule")) {
            if (at_end()) throw ParseError(cur().loc, "missing endmodule");
            parse_item(m);
        }
        return m;
    }

    void parse_param_port_list(ModuleAst& m) {
        expect(Tok::LParen, "'('");
        do {
            expect_kw("parameter");
            ParamDecl p;
            p.loc = cur().loc;
            skip_optional_range();
            p.name = expect_ident();
            expect(Tok::Assign, "'='");
            p.value = parse_expr();
            m.params.push_back(std::move(p));
        } while (accept(Tok::Comma));
        expect(Tok::RParen, "')'");
    }

    void skip_optional_range() {
        if (cur().kind == Tok::LBracket) {
            // parameter [width-1:0] NAME — range on parameters is ignored.
            while (cur().kind != Tok::RBracket) {
                if (at_end()) throw ParseError(cur().loc, "unclosed '['");
                ++pos_;
            }
            ++pos_;
        }
    }

    void parse_port_list(ModuleAst& m) {
        // ANSI-style port declarations only.
        Dir dir = Dir::Input;
        bool is_reg = false;
        PExprPtr msb, lsb;
        bool have_dir = false;
        do {
            if (is_kw("input") || is_kw("output")) {
                dir = take().text == "input" ? Dir::Input : Dir::Output;
                is_reg = false;
                msb.reset();
                lsb.reset();
                have_dir = true;
                if (accept_kw("wire")) {
                } else if (accept_kw("reg")) {
                    is_reg = true;
                }
                if (cur().kind == Tok::LBracket) parse_range(msb, lsb);
            }
            if (!have_dir) {
                throw ParseError(cur().loc,
                                 "expected 'input' or 'output' (ANSI ports)");
            }
            PortDecl p;
            p.loc = cur().loc;
            p.name = expect_ident();
            p.dir = dir;
            p.is_reg = is_reg;
            if (msb) {
                p.msb = clone_expr(*msb);
                p.lsb = clone_expr(*lsb);
            }
            m.ports.push_back(std::move(p));
        } while (accept(Tok::Comma));
    }

    void parse_range(PExprPtr& msb, PExprPtr& lsb) {
        expect(Tok::LBracket, "'['");
        msb = parse_expr();
        expect(Tok::Colon, "':'");
        lsb = parse_expr();
        expect(Tok::RBracket, "']'");
    }

    // ---- items --------------------------------------------------------------
    void parse_item(ModuleAst& m) {
        if (is_kw("wire") || is_kw("reg") || is_kw("integer")) {
            parse_net_decl(m);
        } else if (is_kw("parameter") || is_kw("localparam")) {
            parse_param_decl(m);
        } else if (accept_kw("assign")) {
            parse_assign(m);
        } else if (accept_kw("always")) {
            parse_always(m);
        } else if (accept_kw("initial")) {
            InitialItem init;
            init.loc = cur().loc;
            init.body = parse_stmt();
            m.initials.push_back(std::move(init));
        } else if (is_kw("function") || is_kw("task") || is_kw("generate")) {
            throw ParseError(cur().loc,
                             "'" + cur().text +
                                 "' is outside the supported subset "
                                 "(rewrite with always/for)");
        } else if (cur().kind == Tok::Ident) {
            parse_instance(m);
        } else {
            throw ParseError(cur().loc, "unexpected token in module body");
        }
    }

    void parse_net_decl(ModuleAst& m) {
        NetDecl d;
        d.loc = cur().loc;
        const std::string kw = take().text;
        d.kind = kw == "wire"  ? NetDecl::Kind::Wire
                 : kw == "reg" ? NetDecl::Kind::Reg
                               : NetDecl::Kind::Integer;
        if (cur().kind == Tok::LBracket) parse_range(d.msb, d.lsb);
        d.names.push_back(expect_ident());
        if (cur().kind == Tok::LBracket) {
            // Array dimension: reg [7:0] mem [0:255];
            PExprPtr lo, hi;
            parse_range(lo, hi);
            d.arr_lo = std::move(lo);
            d.arr_hi = std::move(hi);
            expect(Tok::Semi, "';'");
            m.nets.push_back(std::move(d));
            return;
        }
        if (accept(Tok::Assign)) {
            // wire x = expr;  (single declarator only)
            d.init = parse_expr();
            expect(Tok::Semi, "';'");
            m.nets.push_back(std::move(d));
            return;
        }
        while (accept(Tok::Comma)) d.names.push_back(expect_ident());
        expect(Tok::Semi, "';'");
        m.nets.push_back(std::move(d));
    }

    void parse_param_decl(ModuleAst& m) {
        const bool local = take().text == "localparam";
        do {
            ParamDecl p;
            p.loc = cur().loc;
            p.is_local = local;
            skip_optional_range();
            p.name = expect_ident();
            expect(Tok::Assign, "'='");
            p.value = parse_expr();
            m.params.push_back(std::move(p));
        } while (accept(Tok::Comma));
        expect(Tok::Semi, "';'");
    }

    void parse_assign(ModuleAst& m) {
        AssignItem a;
        a.loc = cur().loc;
        if (accept(Tok::LBrace)) {
            do {
                a.lhs_names.push_back(expect_ident());
            } while (accept(Tok::Comma));
            expect(Tok::RBrace, "'}'");
        } else {
            a.lhs_names.push_back(expect_ident());
        }
        expect(Tok::Assign, "'='");
        a.rhs = parse_expr();
        expect(Tok::Semi, "';'");
        m.assigns.push_back(std::move(a));
    }

    void parse_always(ModuleAst& m) {
        AlwaysItem a;
        a.loc = cur().loc;
        expect(Tok::At, "'@'");
        expect(Tok::LParen, "'('");
        if (accept(Tok::Star)) {
            a.is_comb = true;
        } else if (is_kw("posedge") || is_kw("negedge")) {
            do {
                PEdge e;
                e.negedge = take().text == "negedge";
                e.signal = expect_ident();
                a.edges.push_back(std::move(e));
            } while (accept_kw("or") || accept(Tok::Comma));
        } else {
            // Level-sensitive list: treated as @(*) — the elaborator uses
            // the full read set (standard synthesizable interpretation).
            a.is_comb = true;
            do {
                (void)expect_ident();
            } while (accept_kw("or") || accept(Tok::Comma));
        }
        expect(Tok::RParen, "')'");
        a.body = parse_stmt();
        m.always_blocks.push_back(std::move(a));
    }

    void parse_instance(ModuleAst& m) {
        InstanceItem inst;
        inst.loc = cur().loc;
        inst.module_name = expect_ident();
        if (accept(Tok::Hash)) {
            expect(Tok::LParen, "'('");
            do {
                expect(Tok::Dot, "'.'");
                std::string pname = expect_ident();
                expect(Tok::LParen, "'('");
                PExprPtr v = parse_expr();
                expect(Tok::RParen, "')'");
                inst.param_overrides.emplace_back(std::move(pname),
                                                  std::move(v));
            } while (accept(Tok::Comma));
            expect(Tok::RParen, "')'");
        }
        inst.inst_name = expect_ident();
        expect(Tok::LParen, "'('");
        if (!accept(Tok::RParen)) {
            do {
                expect(Tok::Dot, "'.'");
                PortConn conn;
                conn.port = expect_ident();
                expect(Tok::LParen, "'('");
                if (cur().kind != Tok::RParen) conn.expr = parse_expr();
                expect(Tok::RParen, "')'");
                inst.conns.push_back(std::move(conn));
            } while (accept(Tok::Comma));
            expect(Tok::RParen, "')'");
        }
        expect(Tok::Semi, "';'");
        m.instances.push_back(std::move(inst));
    }

    // ---- statements ----------------------------------------------------------
    PStmtPtr parse_stmt() {
        auto s = std::make_unique<PStmt>();
        s->loc = cur().loc;
        if (accept_kw("begin")) {
            s->kind = PStmt::Kind::Block;
            while (!accept_kw("end")) {
                if (at_end()) throw ParseError(s->loc, "missing 'end'");
                s->stmts.push_back(parse_stmt());
            }
            return s;
        }
        if (accept_kw("if")) {
            s->kind = PStmt::Kind::If;
            expect(Tok::LParen, "'('");
            s->cond = parse_expr();
            expect(Tok::RParen, "')'");
            s->then_stmt = parse_stmt();
            if (accept_kw("else")) s->else_stmt = parse_stmt();
            return s;
        }
        if (is_kw("case") || is_kw("casez") || is_kw("casex")) {
            if (cur().text != "case") {
                throw ParseError(cur().loc,
                                 "'" + cur().text +
                                     "' unsupported (2-state subset); "
                                     "use 'case'");
            }
            take();
            s->kind = PStmt::Kind::Case;
            expect(Tok::LParen, "'('");
            s->subject = parse_expr();
            expect(Tok::RParen, "')'");
            while (!accept_kw("endcase")) {
                if (at_end()) throw ParseError(s->loc, "missing 'endcase'");
                PCaseItem item;
                if (accept_kw("default")) {
                    accept(Tok::Colon);
                } else {
                    do {
                        item.labels.push_back(parse_expr());
                    } while (accept(Tok::Comma));
                    expect(Tok::Colon, "':'");
                }
                item.body = parse_stmt();
                s->items.push_back(std::move(item));
            }
            return s;
        }
        if (accept_kw("for")) {
            s->kind = PStmt::Kind::For;
            expect(Tok::LParen, "'('");
            s->loop_var = expect_ident();
            expect(Tok::Assign, "'='");
            s->loop_init = parse_expr();
            expect(Tok::Semi, "';'");
            s->cond = parse_expr();
            expect(Tok::Semi, "';'");
            const std::string update_var = expect_ident();
            if (update_var != s->loop_var) {
                throw ParseError(s->loc,
                                 "for-loop update must assign the loop "
                                 "variable");
            }
            expect(Tok::Assign, "'='");
            s->loop_update = parse_expr();
            expect(Tok::RParen, "')'");
            s->body = parse_stmt();
            return s;
        }
        if (cur().kind == Tok::SystemName) {
            // $display and friends: parsed and discarded (simulation-only).
            take();
            if (accept(Tok::LParen)) {
                int depth = 1;
                while (depth > 0) {
                    if (at_end()) {
                        throw ParseError(s->loc, "unclosed system call");
                    }
                    if (cur().kind == Tok::LParen) ++depth;
                    if (cur().kind == Tok::RParen) --depth;
                    ++pos_;
                }
            }
            expect(Tok::Semi, "';'");
            s->kind = PStmt::Kind::Null;
            return s;
        }
        if (accept(Tok::Semi)) {
            s->kind = PStmt::Kind::Null;
            return s;
        }
        // Assignment.
        s->kind = PStmt::Kind::Assign;
        s->lhs.loc = cur().loc;
        s->lhs.name = expect_ident();
        if (accept(Tok::LBracket)) {
            PExprPtr first = parse_expr();
            if (accept(Tok::Colon)) {
                s->lhs.msb = std::move(first);
                s->lhs.lsb = parse_expr();
            } else {
                s->lhs.index = std::move(first);
            }
            expect(Tok::RBracket, "']'");
        }
        if (accept(Tok::Assign)) {
            s->nonblocking = false;
        } else if (accept(Tok::NonBlocking)) {
            s->nonblocking = true;
        } else {
            throw ParseError(cur().loc, "expected '=' or '<='");
        }
        s->rhs = parse_expr();
        expect(Tok::Semi, "';'");
        return s;
    }

    // ---- expressions -----------------------------------------------------------
    // Precedence climbing, lowest first: ?: || && | ^ & ==/!= relational
    // shifts additive multiplicative unary primary.
    PExprPtr parse_expr() { return parse_ternary(); }

    PExprPtr parse_ternary() {
        PExprPtr cond = parse_lor();
        if (!accept(Tok::Question)) return cond;
        auto e = std::make_unique<PExpr>();
        e->kind = PExpr::Kind::Ternary;
        e->loc = cond->loc;
        e->args.push_back(std::move(cond));
        e->args.push_back(parse_expr());
        expect(Tok::Colon, "':'");
        e->args.push_back(parse_expr());
        return e;
    }

    PExprPtr binary(PBinOp op, PExprPtr a, PExprPtr b) {
        auto e = std::make_unique<PExpr>();
        e->kind = PExpr::Kind::Binary;
        e->bin_op = op;
        e->loc = a->loc;
        e->args.push_back(std::move(a));
        e->args.push_back(std::move(b));
        return e;
    }

    PExprPtr parse_lor() {
        PExprPtr a = parse_land();
        while (accept(Tok::PipePipe)) {
            a = binary(PBinOp::LOr, std::move(a), parse_land());
        }
        return a;
    }
    PExprPtr parse_land() {
        PExprPtr a = parse_bor();
        while (accept(Tok::AmpAmp)) {
            a = binary(PBinOp::LAnd, std::move(a), parse_bor());
        }
        return a;
    }
    PExprPtr parse_bor() {
        PExprPtr a = parse_bxor();
        while (cur().kind == Tok::Pipe) {
            take();
            a = binary(PBinOp::Or, std::move(a), parse_bxor());
        }
        return a;
    }
    PExprPtr parse_bxor() {
        PExprPtr a = parse_band();
        while (cur().kind == Tok::Caret) {
            take();
            a = binary(PBinOp::Xor, std::move(a), parse_band());
        }
        return a;
    }
    PExprPtr parse_band() {
        PExprPtr a = parse_equality();
        while (cur().kind == Tok::Amp) {
            take();
            a = binary(PBinOp::And, std::move(a), parse_equality());
        }
        return a;
    }
    PExprPtr parse_equality() {
        PExprPtr a = parse_relational();
        for (;;) {
            if (accept(Tok::EqEq)) {
                a = binary(PBinOp::Eq, std::move(a), parse_relational());
            } else if (accept(Tok::BangEq)) {
                a = binary(PBinOp::Ne, std::move(a), parse_relational());
            } else {
                return a;
            }
        }
    }
    PExprPtr parse_relational() {
        PExprPtr a = parse_shift();
        for (;;) {
            if (accept(Tok::Lt)) {
                a = binary(PBinOp::Lt, std::move(a), parse_shift());
            } else if (accept(Tok::NonBlocking)) {
                // '<=' in expression position is less-or-equal.
                a = binary(PBinOp::Le, std::move(a), parse_shift());
            } else if (accept(Tok::Gt)) {
                a = binary(PBinOp::Gt, std::move(a), parse_shift());
            } else if (accept(Tok::GtEq)) {
                a = binary(PBinOp::Ge, std::move(a), parse_shift());
            } else {
                return a;
            }
        }
    }
    PExprPtr parse_shift() {
        PExprPtr a = parse_additive();
        for (;;) {
            if (accept(Tok::Shl)) {
                a = binary(PBinOp::Shl, std::move(a), parse_additive());
            } else if (accept(Tok::Shr)) {
                a = binary(PBinOp::Shr, std::move(a), parse_additive());
            } else {
                return a;
            }
        }
    }
    PExprPtr parse_additive() {
        PExprPtr a = parse_multiplicative();
        for (;;) {
            if (accept(Tok::Plus)) {
                a = binary(PBinOp::Add, std::move(a), parse_multiplicative());
            } else if (accept(Tok::Minus)) {
                a = binary(PBinOp::Sub, std::move(a), parse_multiplicative());
            } else {
                return a;
            }
        }
    }
    PExprPtr parse_multiplicative() {
        PExprPtr a = parse_unary();
        for (;;) {
            if (accept(Tok::Star)) {
                a = binary(PBinOp::Mul, std::move(a), parse_unary());
            } else if (accept(Tok::Slash)) {
                a = binary(PBinOp::Div, std::move(a), parse_unary());
            } else if (accept(Tok::Percent)) {
                a = binary(PBinOp::Mod, std::move(a), parse_unary());
            } else {
                return a;
            }
        }
    }

    PExprPtr unary(PUnOp op, PExprPtr a) {
        auto e = std::make_unique<PExpr>();
        e->kind = PExpr::Kind::Unary;
        e->un_op = op;
        e->loc = a->loc;
        e->args.push_back(std::move(a));
        return e;
    }

    PExprPtr parse_unary() {
        switch (cur().kind) {
            case Tok::Plus: take(); return parse_unary();
            case Tok::Minus: take(); return unary(PUnOp::Minus, parse_unary());
            case Tok::Tilde: take(); return unary(PUnOp::Not, parse_unary());
            case Tok::Bang: take(); return unary(PUnOp::LNot, parse_unary());
            case Tok::Amp: take(); return unary(PUnOp::RedAnd, parse_unary());
            case Tok::Pipe: take(); return unary(PUnOp::RedOr, parse_unary());
            case Tok::Caret:
                take();
                return unary(PUnOp::RedXor, parse_unary());
            default: return parse_primary();
        }
    }

    PExprPtr parse_primary() {
        auto e = std::make_unique<PExpr>();
        e->loc = cur().loc;
        if (cur().kind == Tok::Number) {
            const Token t = take();
            e->kind = PExpr::Kind::Number;
            e->value = t.value;
            e->width = t.width;
            e->sized = t.sized;
            return e;
        }
        if (accept(Tok::LParen)) {
            PExprPtr inner = parse_expr();
            expect(Tok::RParen, "')'");
            return inner;
        }
        if (accept(Tok::LBrace)) {
            // Concat or replication.
            PExprPtr first = parse_expr();
            if (cur().kind == Tok::LBrace) {
                // {N{expr}}
                take();
                PExprPtr repl = parse_expr();
                expect(Tok::RBrace, "'}'");
                expect(Tok::RBrace, "'}'");
                if (first->kind != PExpr::Kind::Number) {
                    throw ParseError(e->loc,
                                     "replication count must be a literal");
                }
                e->kind = PExpr::Kind::Repl;
                e->value = first->value;
                e->args.push_back(std::move(repl));
                return e;
            }
            e->kind = PExpr::Kind::Concat;
            e->args.push_back(std::move(first));
            while (accept(Tok::Comma)) e->args.push_back(parse_expr());
            expect(Tok::RBrace, "'}'");
            return e;
        }
        if (cur().kind == Tok::Ident) {
            e->name = expect_ident();
            e->kind = PExpr::Kind::Ident;
            if (accept(Tok::LBracket)) {
                PExprPtr first = parse_expr();
                if (accept(Tok::Colon)) {
                    e->kind = PExpr::Kind::Slice;
                    e->args.push_back(std::move(first));
                    e->args.push_back(parse_expr());
                } else {
                    e->kind = PExpr::Kind::Index;
                    e->args.push_back(std::move(first));
                }
                expect(Tok::RBracket, "']'");
            }
            return e;
        }
        throw ParseError(cur().loc, "expected expression");
    }

    // Deep clone (used for shared port ranges).
    static PExprPtr clone_expr(const PExpr& src) {
        auto e = std::make_unique<PExpr>();
        e->kind = src.kind;
        e->loc = src.loc;
        e->value = src.value;
        e->width = src.width;
        e->sized = src.sized;
        e->name = src.name;
        e->un_op = src.un_op;
        e->bin_op = src.bin_op;
        for (const auto& a : src.args) e->args.push_back(clone_expr(*a));
        return e;
    }

    std::vector<Token> toks_;
    size_t pos_ = 0;
};

}  // namespace

SourceUnit parse(std::string_view source) { return Parser(source).run(); }

}  // namespace eraser::fe
