#include "frontend/compile.h"

#include <fstream>
#include <sstream>

#include "frontend/elab.h"
#include "frontend/parser.h"
#include "util/diagnostics.h"

namespace eraser::frontend {

std::unique_ptr<rtl::Design> compile(std::string_view source,
                                     const std::string& top) {
    const fe::SourceUnit unit = fe::parse(source);
    return fe::elaborate(unit, top);
}

std::unique_ptr<rtl::Design> compile_file(const std::string& path,
                                          const std::string& top) {
    std::ifstream in(path);
    if (!in) throw EraserError("cannot open file '" + path + "'");
    std::ostringstream buf;
    buf << in.rdbuf();
    return compile(buf.str(), top);
}

}  // namespace eraser::frontend
