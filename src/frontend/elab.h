// Elaborator: resolves a parsed SourceUnit into an rtl::Design —
// parameter folding, width inference (with Verilog-style context widening),
// for-loop unrolling, hierarchy flattening (dotted instance prefixes), and
// lowering of continuous assignments into single-operation RTL nodes.
#pragma once

#include <memory>
#include <string>

#include "frontend/ast.h"
#include "rtl/design.h"

namespace eraser::fe {

/// Elaborates `top` (and the module tree below it) into a finalized Design.
/// Throws ElabError on semantic problems.
[[nodiscard]] std::unique_ptr<rtl::Design> elaborate(const SourceUnit& unit,
                                                     const std::string& top);

}  // namespace eraser::fe
