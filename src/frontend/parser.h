// Recursive-descent parser for the Verilog subset. See docs/ and README for
// the precise language boundary; anything outside raises ParseError with a
// source location.
#pragma once

#include <string_view>

#include "frontend/ast.h"

namespace eraser::fe {

/// Parses a full source buffer into modules.
[[nodiscard]] SourceUnit parse(std::string_view source);

}  // namespace eraser::fe
