// Token stream definitions for the Verilog-2005 synthesizable subset.
#pragma once

#include <cstdint>
#include <string>

#include "util/diagnostics.h"

namespace eraser::fe {

enum class Tok : uint8_t {
    End,
    Ident,        // identifiers and keywords (keyword check by text)
    Number,       // literal; value/width pre-decoded
    SystemName,   // $display etc.
    // punctuation / operators
    LParen, RParen, LBracket, RBracket, LBrace, RBrace,
    Semi, Colon, Comma, Dot, Hash, At, Question,
    Assign,       // =
    NonBlocking,  // <=  (context-dependent: also less-equal; parser decides)
    Plus, Minus, Star, Slash, Percent,
    Amp, Pipe, Caret, Tilde, Bang,
    AmpAmp, PipePipe,
    EqEq, BangEq, Lt, Gt, GtEq,   // note: <= is Tok::NonBlocking
    Shl, Shr,
};

struct Token {
    Tok kind = Tok::End;
    std::string text;       // identifier / system name text
    uint64_t value = 0;     // Number: decoded bits
    unsigned width = 32;    // Number: decoded width
    bool sized = false;     // Number: had an explicit size prefix
    SourceLoc loc;
};

}  // namespace eraser::fe
