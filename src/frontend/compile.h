// One-call front end: Verilog source -> finalized rtl::Design.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "rtl/design.h"

namespace eraser::frontend {

/// Compiles Verilog source text and elaborates module `top`.
[[nodiscard]] std::unique_ptr<rtl::Design> compile(std::string_view source,
                                                   const std::string& top);

/// Reads `path` and compiles it.
[[nodiscard]] std::unique_ptr<rtl::Design> compile_file(
    const std::string& path, const std::string& top);

}  // namespace eraser::frontend
