// APB-style register-file peripheral: req/wr/addr/wdata command interface,
// two-phase (setup/access) FSM, four mapped 32-bit registers at byte
// addresses 0x0/0x4/0x8/0xC, decode error on anything else.
module apb(input clk, input rstn,
           input req, input wr,
           input [7:0] addr, input [31:0] wdata,
           output reg done,
           output reg [31:0] rdata,
           output reg slverr,
           output reg [15:0] xact_count,
           output reg [15:0] err_count,
           output [31:0] status);

  localparam IDLE = 2'd0, SETUP = 2'd1, ACCESS = 2'd2;

  reg [1:0] state;
  reg lat_wr;
  reg [7:0] lat_addr;
  reg [31:0] lat_wdata;
  reg [31:0] reg0, reg1, reg2, reg3;

  wire mapped = (lat_addr[7:4] == 4'd0) && (lat_addr[1:0] == 2'd0);
  wire [1:0] sel = lat_addr[3:2];

  assign status = {err_count, xact_count};

  always @(posedge clk) begin
    if (!rstn) begin
      state <= IDLE;
      done <= 1'b0;
      rdata <= 32'd0;
      slverr <= 1'b0;
      lat_wr <= 1'b0;
      lat_addr <= 8'd0;
      lat_wdata <= 32'd0;
      reg0 <= 32'd0;
      reg1 <= 32'd0;
      reg2 <= 32'd0;
      reg3 <= 32'd0;
      xact_count <= 16'd0;
      err_count <= 16'd0;
    end else begin
      case (state)
        IDLE: begin
          done <= 1'b0;
          if (req) begin
            lat_wr <= wr;
            lat_addr <= addr;
            lat_wdata <= wdata;
            state <= SETUP;
          end
        end
        SETUP: state <= ACCESS;
        ACCESS: begin
          slverr <= !mapped;
          if (mapped) begin
            if (lat_wr) begin
              case (sel)
                2'd0: reg0 <= lat_wdata;
                2'd1: reg1 <= lat_wdata;
                2'd2: reg2 <= lat_wdata;
                2'd3: reg3 <= lat_wdata;
              endcase
            end else begin
              case (sel)
                2'd0: rdata <= reg0;
                2'd1: rdata <= reg1;
                2'd2: rdata <= reg2;
                2'd3: rdata <= reg3;
              endcase
            end
          end else begin
            rdata <= 32'hDEADBEEF;
            err_count <= err_count + 16'd1;
          end
          done <= 1'b1;
          xact_count <= xact_count + 16'd1;
          state <= IDLE;
        end
        default: state <= IDLE;
      endcase
    end
  end

endmodule
