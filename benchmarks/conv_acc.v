// Convolution accelerator: a 9-tap (3x3) kernel is loaded into a small
// memory, then pixels stream in one per cycle; once the 9-pixel window is
// warm the MAC pipeline emits sum(window[i] * kernel[i]) + bias each cycle.
module conv_acc(input clk, input rst,
                input kernel_we, input [3:0] kernel_addr,
                input [7:0] kernel_data,
                input pixel_valid, input [7:0] pixel,
                input [7:0] bias,
                output reg out_valid,
                output reg [19:0] out_data,
                output reg [15:0] pixel_count,
                output reg [7:0] out_sat,
                output reg [19:0] peak,
                output reg [31:0] checksum);

  reg [7:0] kernel [0:8];

  // 9-deep pixel window (p0 newest).
  reg [7:0] p0, p1, p2, p3, p4, p5, p6, p7, p8;
  reg [3:0] warm;

  reg [19:0] mac;
  always @(*) begin
    mac = {12'd0, bias};
    mac = mac + p0 * kernel[0];
    mac = mac + p1 * kernel[1];
    mac = mac + p2 * kernel[2];
    mac = mac + p3 * kernel[3];
    mac = mac + p4 * kernel[4];
    mac = mac + p5 * kernel[5];
    mac = mac + p6 * kernel[6];
    mac = mac + p7 * kernel[7];
    mac = mac + p8 * kernel[8];
  end

  always @(posedge clk) begin
    if (rst) begin
      p0 <= 8'd0; p1 <= 8'd0; p2 <= 8'd0; p3 <= 8'd0; p4 <= 8'd0;
      p5 <= 8'd0; p6 <= 8'd0; p7 <= 8'd0; p8 <= 8'd0;
      warm <= 4'd0;
      out_valid <= 1'b0;
      out_data <= 20'd0;
      pixel_count <= 16'd0;
      out_sat <= 8'd0;
      peak <= 20'd0;
      checksum <= 32'd0;
    end else begin
      if (kernel_we && kernel_addr < 4'd9) begin
        kernel[kernel_addr] <= kernel_data;
      end
      if (pixel_valid) begin
        p0 <= pixel;
        p1 <= p0; p2 <= p1; p3 <= p2; p4 <= p3;
        p5 <= p4; p6 <= p5; p7 <= p6; p8 <= p7;
        if (warm < 4'd9) warm <= warm + 4'd1;
        pixel_count <= pixel_count + 16'd1;
        if (warm >= 4'd8) begin
          out_valid <= 1'b1;
          out_data <= mac;
          // 8-bit saturated view, peak tracking, and a rolling checksum.
          out_sat <= (mac > 20'd255) ? 8'hFF : mac[7:0];
          if (mac > peak) peak <= mac;
          checksum <= {checksum[30:0], checksum[31]} ^ {12'd0, mac};
        end else begin
          out_valid <= 1'b0;
        end
      end else begin
        out_valid <= 1'b0;
      end
    end
  end

endmodule
