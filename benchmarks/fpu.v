// FPU benchmark: IEEE-754 single-precision add / multiply, 3-stage pipeline
// (capture -> compute -> output). 2-state simplifications: denormals are
// flushed to zero, results truncate toward zero (all directed test vectors
// are exact), overflow saturates to infinity encoding.
module fpu(input clk, input rst,
           input valid_in, input op_mul,
           input [31:0] a, input [31:0] b,
           output reg [31:0] y,
           output reg valid_out);

  // ---- stage 1: capture -------------------------------------------------
  reg s1_valid, s1_mul;
  reg [31:0] s1_a, s1_b;

  // ---- unpack (combinational, from stage-1 registers) -------------------
  wire sa = s1_a[31];
  wire sb = s1_b[31];
  wire [7:0] ea = s1_a[30:23];
  wire [7:0] eb = s1_b[30:23];
  wire [22:0] fa = s1_a[22:0];
  wire [22:0] fb = s1_b[22:0];
  wire a_zero = (ea == 8'd0);
  wire b_zero = (eb == 8'd0);
  wire [23:0] ma = {1'b1, fa};
  wire [23:0] mb = {1'b1, fb};

  // ---- multiply path ----------------------------------------------------
  reg [31:0] mul_y;
  reg [47:0] prod;
  reg [9:0] pexp;
  reg [22:0] pman;
  always @(*) begin
    prod = ma * mb;
    pexp = {2'b00, ea} + {2'b00, eb} - 10'd127;
    if (prod[47]) begin
      pman = prod[46:24];
      pexp = pexp + 10'd1;
    end else begin
      pman = prod[45:23];
    end
    if (a_zero || b_zero) begin
      mul_y = 32'd0;
    end else if (pexp[9] || pexp == 10'd0) begin
      mul_y = 32'd0;                       // underflow -> zero
    end else if (pexp[8]) begin
      mul_y = {sa ^ sb, 8'hFF, 23'd0};     // overflow -> infinity
    end else begin
      mul_y = {sa ^ sb, pexp[7:0], pman};
    end
  end

  // ---- add path ---------------------------------------------------------
  reg [31:0] add_y;
  reg s_big, s_small;
  reg [7:0] e_big, e_small;
  reg [22:0] f_big, f_small;
  reg [7:0] d;
  reg [26:0] m_big, m_small, norm;
  reg [27:0] sum28;
  reg [9:0] aexp;
  integer i;
  always @(*) begin
    // Order operands by magnitude so the subtraction below cannot borrow.
    if ({ea, fa} >= {eb, fb}) begin
      s_big = sa;   e_big = ea;   f_big = fa;
      s_small = sb; e_small = eb; f_small = fb;
    end else begin
      s_big = sb;   e_big = eb;   f_big = fb;
      s_small = sa; e_small = ea; f_small = fa;
    end
    d = e_big - e_small;
    m_big = {1'b1, f_big, 3'b000};
    m_small = {1'b1, f_small, 3'b000};
    if (d > 8'd26) m_small = 27'd0;
    else m_small = m_small >> d;

    if (s_big == s_small) sum28 = {1'b0, m_big} + {1'b0, m_small};
    else sum28 = {1'b0, m_big} - {1'b0, m_small};

    aexp = {2'b00, e_big};
    norm = 27'd0;
    if (sum28[27]) begin
      norm = sum28[27:1];
      aexp = aexp + 10'd1;
    end else begin
      norm = sum28[26:0];
      // Left-normalize after cancellation (at most 26 shifts).
      for (i = 0; i < 26; i = i + 1) begin
        if (!norm[26] && norm != 27'd0) begin
          norm = norm << 1;
          aexp = aexp - 10'd1;
        end
      end
    end

    if (a_zero && b_zero) add_y = 32'd0;
    else if (a_zero) add_y = s1_b;
    else if (b_zero) add_y = s1_a;
    else if (sum28 == 28'd0) add_y = 32'd0;          // exact cancellation
    else if (aexp[9] || aexp == 10'd0) add_y = 32'd0; // underflow
    else if (aexp[8]) add_y = {s_big, 8'hFF, 23'd0};  // overflow
    else add_y = {s_big, aexp[7:0], norm[25:3]};
  end

  // ---- stage 2: compute, stage 3: output --------------------------------
  reg s2_valid;
  reg [31:0] s2_y;

  always @(posedge clk) begin
    if (rst) begin
      s1_valid <= 1'b0; s1_mul <= 1'b0;
      s1_a <= 32'd0; s1_b <= 32'd0;
      s2_valid <= 1'b0; s2_y <= 32'd0;
      valid_out <= 1'b0; y <= 32'd0;
    end else begin
      s1_valid <= valid_in;
      s1_mul <= op_mul;
      s1_a <= a;
      s1_b <= b;

      s2_valid <= s1_valid;
      s2_y <= s1_mul ? mul_y : add_y;

      valid_out <= s2_valid;
      y <= s2_y;
    end
  end

endmodule
