// ALU benchmark: 64-bit combinational ALU with an accumulator register and
// status flags. op=0 add, 1 sub, 2 and, 3 or, 4 xor, 5 shl, 6 shr, 7 mul,
// 8 slt (unsigned), 9 pass-b; anything else copies a.
module alu(input clk, input rst,
           input [3:0] op,
           input [63:0] a, input [63:0] b,
           input acc_en,
           output reg [63:0] result,
           output reg [63:0] acc,
           output zero, output parity, output reg carry,
           output reg [15:0] op_count,
           output reg [63:0] max_seen,
           output reg [63:0] min_seen,
           output reg [15:0] zero_count,
           output reg sticky_carry,
           output [63:0] acc_mix,
           output msb);

  wire [5:0] shamt = b[5:0];
  wire [63:0] sum = a + b;
  wire [63:0] diff = a - b;

  always @(*) begin
    carry = 1'b0;
    case (op)
      4'd0: begin result = sum; carry = (sum < a) && (b != 64'd0); end
      4'd1: begin result = diff; carry = (a < b); end
      4'd2: result = a & b;
      4'd3: result = a | b;
      4'd4: result = a ^ b;
      4'd5: result = a << shamt;
      4'd6: result = a >> shamt;
      4'd7: result = a * b;
      4'd8: result = (a < b) ? 64'd1 : 64'd0;
      4'd9: result = b;
      4'd10: result = ~(a & b);
      4'd11: result = ~(a | b);
      4'd12: result = (a < b) ? a : b;
      4'd13: result = (a < b) ? b : a;
      4'd14: result = (a < b) ? (b - a) : (a - b);
      default: result = a;
    endcase
  end

  assign zero = (result == 64'd0);
  assign parity = ^result;

  assign acc_mix = acc ^ {result[31:0], result[63:32]};
  assign msb = result[63];

  always @(posedge clk) begin
    if (rst) begin
      acc <= 64'd0;
      op_count <= 16'd0;
    end else begin
      if (acc_en) begin
        acc <= acc + result;
        op_count <= op_count + 16'd1;
      end
    end
  end

  // Running min/max/zero statistics over the accumulated results.
  always @(posedge clk) begin
    if (rst) begin
      max_seen <= 64'd0;
      min_seen <= 64'hFFFFFFFFFFFFFFFF;
      zero_count <= 16'd0;
      sticky_carry <= 1'b0;
    end else if (acc_en) begin
      if (result > max_seen) max_seen <= result;
      if (result < min_seen) min_seen <= result;
      if (zero) zero_count <= zero_count + 16'd1;
      if (carry) sticky_carry <= 1'b1;
    end
  end

endmodule
