// picorv32-style RV32I subset core: small-area microcoded flavor — a five
// state FSM (FETCH, DECODE, EXECUTE, MEMORY, WRITEBACK) with a bit-serial
// shifter (one shift position per cycle), trading cycles for area exactly
// like the original. Same ISA subset and test program as sodor.v.
module picorv32(input clk, input rst,
                output reg [31:0] dbg_x10,
                output reg [31:0] dbg_pc,
                output reg [31:0] retired);

  localparam FETCH = 3'd0, DECODE = 3'd1, EXEC = 3'd2, SHIFT = 3'd3,
             MEM = 3'd4, WB = 3'd5;

  reg [31:0] imem [0:63];
  reg [31:0] dmem [0:127];
  reg [31:0] rf [0:31];

  reg [2:0] state;
  reg [31:0] pc;
  reg [31:0] ir;

  // Registered operands (loaded in DECODE).
  reg [31:0] op1, op2;
  reg [31:0] imm_r;

  // Serial shifter state.
  reg [31:0] shreg;
  reg [4:0] shcnt;
  reg sh_left;

  // Write-back / memory registers.
  reg [31:0] wb_r, npc_r, addr_r, store_r;
  reg [4:0] wb_rd;
  reg wb_we, do_load, do_store;

  // ---- decode fields ----------------------------------------------------
  wire [6:0] opcode = ir[6:0];
  wire [4:0] rd = ir[11:7];
  wire [2:0] f3 = ir[14:12];
  wire [4:0] rs1 = ir[19:15];
  wire [4:0] rs2 = ir[24:20];
  wire [6:0] f7 = ir[31:25];

  wire [31:0] imm_i = {{20{ir[31]}}, ir[31:20]};
  wire [31:0] imm_s = {{20{ir[31]}}, ir[31:25], ir[11:7]};
  wire [31:0] imm_b = {{19{ir[31]}}, ir[31], ir[7], ir[30:25], ir[11:8],
                       1'b0};
  wire [31:0] imm_u = {ir[31:12], 12'd0};
  wire [31:0] imm_j = {{11{ir[31]}}, ir[31], ir[19:12], ir[20], ir[30:21],
                       1'b0};

  wire is_imm_op = (opcode == 7'h13);
  wire is_shift = (opcode == 7'h13) && (f3 == 3'd1 || f3 == 3'd5);

  wire [31:0] alu_b = is_imm_op ? imm_r : op2;
  wire lt_signed = (op1[31] != alu_b[31]) ? op1[31] : (op1 < alu_b);

  always @(posedge clk) begin
    if (rst) begin
      state <= FETCH;
      pc <= 32'd0;
      ir <= 32'd0;
      op1 <= 32'd0; op2 <= 32'd0; imm_r <= 32'd0;
      shreg <= 32'd0; shcnt <= 5'd0; sh_left <= 1'b0;
      wb_r <= 32'd0; npc_r <= 32'd0; addr_r <= 32'd0; store_r <= 32'd0;
      wb_rd <= 5'd0; wb_we <= 1'b0; do_load <= 1'b0; do_store <= 1'b0;
      dbg_x10 <= 32'd0;
      dbg_pc <= 32'd0;
      retired <= 32'd0;
    end else begin
      case (state)
        FETCH: begin
          ir <= imem[pc[7:2]];
          state <= DECODE;
        end
        DECODE: begin
          op1 <= (rs1 == 5'd0) ? 32'd0 : rf[rs1];
          op2 <= (rs2 == 5'd0) ? 32'd0 : rf[rs2];
          imm_r <= (opcode == 7'h23) ? imm_s : imm_i;
          state <= EXEC;
        end
        EXEC: begin
          wb_rd <= rd;
          wb_we <= 1'b0;
          do_load <= 1'b0;
          do_store <= 1'b0;
          npc_r <= pc + 32'd4;
          state <= WB;
          case (opcode)
            7'h13: begin
              if (is_shift) begin
                // Bit-serial shift: one position per cycle in SHIFT.
                shreg <= op1;
                shcnt <= imm_r[4:0];
                sh_left <= (f3 == 3'd1);
                state <= SHIFT;
              end else begin
                wb_we <= 1'b1;
                case (f3)
                  3'd0: wb_r <= op1 + imm_r;
                  3'd4: wb_r <= op1 ^ imm_r;
                  3'd6: wb_r <= op1 | imm_r;
                  3'd7: wb_r <= op1 & imm_r;
                  default: wb_r <= op1;
                endcase
              end
            end
            7'h33: begin
              wb_we <= 1'b1;
              case (f3)
                3'd0: wb_r <= f7[5] ? (op1 - op2) : (op1 + op2);
                3'd2: wb_r <= lt_signed ? 32'd1 : 32'd0;
                3'd3: wb_r <= (op1 < op2) ? 32'd1 : 32'd0;
                3'd4: wb_r <= op1 ^ op2;
                3'd6: wb_r <= op1 | op2;
                3'd7: wb_r <= op1 & op2;
                default: wb_r <= op1;
              endcase
            end
            7'h37: begin wb_we <= 1'b1; wb_r <= imm_u; end
            7'h03: begin
              addr_r <= op1 + imm_r;
              do_load <= 1'b1;
              state <= MEM;
            end
            7'h23: begin
              addr_r <= op1 + imm_r;
              store_r <= op2;
              do_store <= 1'b1;
              state <= MEM;
            end
            7'h63: begin
              case (f3)
                3'd0: if (op1 == op2) npc_r <= pc + imm_b;
                3'd1: if (op1 != op2) npc_r <= pc + imm_b;
                3'd4: if (lt_signed) npc_r <= pc + imm_b;
                3'd6: if (op1 < op2) npc_r <= pc + imm_b;
                default: npc_r <= pc + 32'd4;
              endcase
            end
            7'h6F: begin
              wb_we <= 1'b1;
              wb_r <= pc + 32'd4;
              npc_r <= pc + imm_j;
            end
            default: npc_r <= pc + 32'd4;
          endcase
        end
        SHIFT: begin
          if (shcnt == 5'd0) begin
            wb_r <= shreg;
            wb_we <= 1'b1;
            state <= WB;
          end else begin
            shreg <= sh_left ? (shreg << 1) : (shreg >> 1);
            shcnt <= shcnt - 5'd1;
          end
        end
        MEM: begin
          if (do_load) begin
            wb_r <= dmem[addr_r[8:2]];
            wb_we <= 1'b1;
          end
          if (do_store) dmem[addr_r[8:2]] <= store_r;
          state <= WB;
        end
        WB: begin
          if (wb_we && wb_rd != 5'd0) rf[wb_rd] <= wb_r;
          pc <= npc_r;
          retired <= retired + 32'd1;
          dbg_x10 <= (wb_we && wb_rd == 5'd10) ? wb_r : rf[10];
          dbg_pc <= npc_r;
          state <= FETCH;
        end
        default: state <= FETCH;
      endcase
    end
  end

endmodule
