// Sodor-style single-cycle RV32I subset core: fetch, decode, execute, and
// write-back all in one clock. Supports the instructions emitted by
// suite/asm.h: addi/xori/ori/andi/slli/srli, add/sub/xor/or/and/slt,
// lui, lw/sw, beq/bne/blt, jal. Unknown opcodes retire as nops.
module sodor(input clk, input rst,
             output reg [31:0] dbg_x10,
             output reg [31:0] dbg_pc,
             output reg [31:0] retired);

  reg [31:0] imem [0:63];
  reg [31:0] dmem [0:127];
  reg [31:0] rf [0:31];

  reg [31:0] pc;

  // ---- fetch + decode ---------------------------------------------------
  reg [31:0] instr;
  always @(*) instr = imem[pc[7:2]];

  wire [6:0] opcode = instr[6:0];
  wire [4:0] rd = instr[11:7];
  wire [2:0] f3 = instr[14:12];
  wire [4:0] rs1 = instr[19:15];
  wire [4:0] rs2 = instr[24:20];
  wire [6:0] f7 = instr[31:25];

  wire [31:0] imm_i = {{20{instr[31]}}, instr[31:20]};
  wire [31:0] imm_s = {{20{instr[31]}}, instr[31:25], instr[11:7]};
  wire [31:0] imm_b = {{19{instr[31]}}, instr[31], instr[7], instr[30:25],
                       instr[11:8], 1'b0};
  wire [31:0] imm_u = {instr[31:12], 12'd0};
  wire [31:0] imm_j = {{11{instr[31]}}, instr[31], instr[19:12], instr[20],
                       instr[30:21], 1'b0};

  reg [31:0] r1, r2;
  always @(*) r1 = (rs1 == 5'd0) ? 32'd0 : rf[rs1];
  always @(*) r2 = (rs2 == 5'd0) ? 32'd0 : rf[rs2];

  wire lt_signed = (r1[31] != r2[31]) ? r1[31] : (r1 < r2);

  // ---- execute ----------------------------------------------------------
  reg [31:0] wb_val, next_pc, mem_addr;
  reg wb_en, mem_we;
  reg [31:0] load_val;
  always @(*) begin
    mem_addr = r1 + ((opcode == 7'h23) ? imm_s : imm_i);
    load_val = dmem[mem_addr[8:2]];
  end

  always @(*) begin
    wb_val = 32'd0;
    wb_en = 1'b0;
    mem_we = 1'b0;
    next_pc = pc + 32'd4;
    case (opcode)
      7'h13: begin   // OP-IMM
        wb_en = 1'b1;
        case (f3)
          3'd0: wb_val = r1 + imm_i;
          3'd1: wb_val = r1 << imm_i[4:0];
          3'd4: wb_val = r1 ^ imm_i;
          3'd5: wb_val = r1 >> imm_i[4:0];
          3'd6: wb_val = r1 | imm_i;
          3'd7: wb_val = r1 & imm_i;
          default: wb_val = r1;
        endcase
      end
      7'h33: begin   // OP
        wb_en = 1'b1;
        case (f3)
          3'd0: wb_val = f7[5] ? (r1 - r2) : (r1 + r2);
          3'd2: wb_val = lt_signed ? 32'd1 : 32'd0;
          3'd3: wb_val = (r1 < r2) ? 32'd1 : 32'd0;
          3'd4: wb_val = r1 ^ r2;
          3'd6: wb_val = r1 | r2;
          3'd7: wb_val = r1 & r2;
          default: wb_val = r1;
        endcase
      end
      7'h37: begin   // LUI
        wb_en = 1'b1;
        wb_val = imm_u;
      end
      7'h03: begin   // LW
        wb_en = 1'b1;
        wb_val = load_val;
      end
      7'h23: mem_we = 1'b1;   // SW
      7'h63: begin   // branches
        case (f3)
          3'd0: if (r1 == r2) next_pc = pc + imm_b;
          3'd1: if (r1 != r2) next_pc = pc + imm_b;
          3'd4: if (lt_signed) next_pc = pc + imm_b;
          3'd6: if (r1 < r2) next_pc = pc + imm_b;
          default: next_pc = pc + 32'd4;
        endcase
      end
      7'h6F: begin   // JAL
        wb_en = 1'b1;
        wb_val = pc + 32'd4;
        next_pc = pc + imm_j;
      end
      default: next_pc = pc + 32'd4;
    endcase
  end

  // ---- write-back -------------------------------------------------------
  always @(posedge clk) begin
    if (rst) begin
      pc <= 32'd0;
      dbg_x10 <= 32'd0;
      dbg_pc <= 32'd0;
      retired <= 32'd0;
    end else begin
      if (wb_en && rd != 5'd0) rf[rd] <= wb_val;
      if (mem_we) dmem[mem_addr[8:2]] <= r2;
      pc <= next_pc;
      dbg_x10 <= (wb_en && rd == 5'd10) ? wb_val : rf[10];
      dbg_pc <= pc;
      retired <= retired + 32'd1;
    end
  end

endmodule
