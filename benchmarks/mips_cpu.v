// MIPS-I subset core: single-cycle datapath with classic MIPS branch
// arithmetic — a taken branch at word W redirects to W + 1 + offset (the
// offset counts from the delay-slot position), and the shadow instructions
// behind a taken branch/jump are never executed (the suite's test program
// pads those slots with nops). Supports the suite/asm.h encoders: addu,
// subu, and, or, xor, sltu, addiu/andi/ori/lui, lw/sw, beq/bne, j.
module mips_cpu(input clk, input rst,
                output reg [31:0] dbg_v0,
                output reg [31:0] dbg_pc,
                output reg [31:0] retired);

  reg [31:0] imem [0:63];
  reg [31:0] dmem [0:63];
  reg [31:0] rf [0:31];

  reg [31:0] pc;   // word-indexed program counter

  reg [31:0] instr;
  always @(*) instr = imem[pc[5:0]];

  wire [5:0] op = instr[31:26];
  wire [4:0] rs = instr[25:21];
  wire [4:0] rt = instr[20:16];
  wire [4:0] rdf = instr[15:11];
  wire [5:0] funct = instr[5:0];
  wire [31:0] imm_se = {{16{instr[15]}}, instr[15:0]};
  wire [31:0] imm_ze = {16'd0, instr[15:0]};
  wire [25:0] jtarget = instr[25:0];

  reg [31:0] vs, vt;
  always @(*) vs = (rs == 5'd0) ? 32'd0 : rf[rs];
  always @(*) vt = (rt == 5'd0) ? 32'd0 : rf[rt];

  wire [31:0] mem_addr = vs + imm_se;   // byte address

  reg [31:0] wb_val, next_pc;
  reg [4:0] wb_rd;
  reg wb_en, mem_we;
  reg [31:0] load_val;
  always @(*) load_val = dmem[mem_addr[7:2]];

  always @(*) begin
    wb_val = 32'd0;
    wb_rd = 5'd0;
    wb_en = 1'b0;
    mem_we = 1'b0;
    next_pc = pc + 32'd1;
    case (op)
      6'h00: begin   // R-type
        wb_rd = rdf;
        wb_en = 1'b1;
        case (funct)
          6'h21: wb_val = vs + vt;               // addu
          6'h23: wb_val = vs - vt;               // subu
          6'h24: wb_val = vs & vt;               // and
          6'h25: wb_val = vs | vt;               // or
          6'h26: wb_val = vs ^ vt;               // xor
          6'h2B: wb_val = (vs < vt) ? 32'd1 : 32'd0;   // sltu
          default: begin wb_en = 1'b0; wb_val = 32'd0; end   // incl. nop
        endcase
      end
      6'h09: begin wb_rd = rt; wb_en = 1'b1; wb_val = vs + imm_se; end
      6'h0C: begin wb_rd = rt; wb_en = 1'b1; wb_val = vs & imm_ze; end
      6'h0D: begin wb_rd = rt; wb_en = 1'b1; wb_val = vs | imm_ze; end
      6'h0F: begin wb_rd = rt; wb_en = 1'b1; wb_val = {instr[15:0], 16'd0}; end
      6'h23: begin wb_rd = rt; wb_en = 1'b1; wb_val = load_val; end   // lw
      6'h2B: mem_we = 1'b1;   // sw
      6'h04: if (vs == vt) next_pc = pc + 32'd1 + imm_se;   // beq
      6'h05: if (vs != vt) next_pc = pc + 32'd1 + imm_se;   // bne
      6'h02: next_pc = {6'd0, jtarget};   // j
      default: next_pc = pc + 32'd1;
    endcase
  end

  always @(posedge clk) begin
    if (rst) begin
      pc <= 32'd0;
      dbg_v0 <= 32'd0;
      dbg_pc <= 32'd0;
      retired <= 32'd0;
    end else begin
      if (wb_en && wb_rd != 5'd0) rf[wb_rd] <= wb_val;
      if (mem_we) dmem[mem_addr[7:2]] <= vt;
      pc <= next_pc;
      retired <= retired + 32'd1;
      dbg_v0 <= (wb_en && wb_rd == 5'd2) ? wb_val : rf[2];
      dbg_pc <= pc;
    end
  end

endmodule
