// SHA-256 core, hand-written FSM style ("hv" = hardware verilog): one
// compression round per cycle over a 16-word sliding message window, round
// constants selected by a case table. Interface: load the 512-bit block a
// word at a time through block_we/addr/data, pulse `init` (first block) or
// `next` (chained block), poll `done`, read digest0..7.
module sha256_hv(input clk, input rst,
                 input init, input next,
                 input block_we, input [3:0] block_addr,
                 input [31:0] block_data,
                 output done,
                 output [31:0] digest0, output [31:0] digest1,
                 output [31:0] digest2, output [31:0] digest3,
                 output [31:0] digest4, output [31:0] digest5,
                 output [31:0] digest6, output [31:0] digest7);

  localparam IDLE = 2'd0, ROUNDS = 2'd1, DIGEST = 2'd2;

  reg [31:0] block_mem [0:15];

  reg [1:0] state;
  reg [6:0] t;
  reg done_r;

  // Working variables and hash state.
  reg [31:0] a, b, c, d, e, f, g, h;
  reg [31:0] h0, h1, h2, h3, h4, h5, h6, h7;

  // 16-word sliding window: w0 = W[t-16] ... w15 = W[t-1].
  reg [31:0] w0, w1, w2, w3, w4, w5, w6, w7;
  reg [31:0] w8, w9, w10, w11, w12, w13, w14, w15;

  // ---- round constant ---------------------------------------------------
  reg [31:0] kt;
  always @(*) begin
    case (t[5:0])
      6'd0:  kt = 32'h428a2f98; 6'd1:  kt = 32'h71374491;
      6'd2:  kt = 32'hb5c0fbcf; 6'd3:  kt = 32'he9b5dba5;
      6'd4:  kt = 32'h3956c25b; 6'd5:  kt = 32'h59f111f1;
      6'd6:  kt = 32'h923f82a4; 6'd7:  kt = 32'hab1c5ed5;
      6'd8:  kt = 32'hd807aa98; 6'd9:  kt = 32'h12835b01;
      6'd10: kt = 32'h243185be; 6'd11: kt = 32'h550c7dc3;
      6'd12: kt = 32'h72be5d74; 6'd13: kt = 32'h80deb1fe;
      6'd14: kt = 32'h9bdc06a7; 6'd15: kt = 32'hc19bf174;
      6'd16: kt = 32'he49b69c1; 6'd17: kt = 32'hefbe4786;
      6'd18: kt = 32'h0fc19dc6; 6'd19: kt = 32'h240ca1cc;
      6'd20: kt = 32'h2de92c6f; 6'd21: kt = 32'h4a7484aa;
      6'd22: kt = 32'h5cb0a9dc; 6'd23: kt = 32'h76f988da;
      6'd24: kt = 32'h983e5152; 6'd25: kt = 32'ha831c66d;
      6'd26: kt = 32'hb00327c8; 6'd27: kt = 32'hbf597fc7;
      6'd28: kt = 32'hc6e00bf3; 6'd29: kt = 32'hd5a79147;
      6'd30: kt = 32'h06ca6351; 6'd31: kt = 32'h14292967;
      6'd32: kt = 32'h27b70a85; 6'd33: kt = 32'h2e1b2138;
      6'd34: kt = 32'h4d2c6dfc; 6'd35: kt = 32'h53380d13;
      6'd36: kt = 32'h650a7354; 6'd37: kt = 32'h766a0abb;
      6'd38: kt = 32'h81c2c92e; 6'd39: kt = 32'h92722c85;
      6'd40: kt = 32'ha2bfe8a1; 6'd41: kt = 32'ha81a664b;
      6'd42: kt = 32'hc24b8b70; 6'd43: kt = 32'hc76c51a3;
      6'd44: kt = 32'hd192e819; 6'd45: kt = 32'hd6990624;
      6'd46: kt = 32'hf40e3585; 6'd47: kt = 32'h106aa070;
      6'd48: kt = 32'h19a4c116; 6'd49: kt = 32'h1e376c08;
      6'd50: kt = 32'h2748774c; 6'd51: kt = 32'h34b0bcb5;
      6'd52: kt = 32'h391c0cb3; 6'd53: kt = 32'h4ed8aa4a;
      6'd54: kt = 32'h5b9cca4f; 6'd55: kt = 32'h682e6ff3;
      6'd56: kt = 32'h748f82ee; 6'd57: kt = 32'h78a5636f;
      6'd58: kt = 32'h84c87814; 6'd59: kt = 32'h8cc70208;
      6'd60: kt = 32'h90befffa; 6'd61: kt = 32'ha4506ceb;
      6'd62: kt = 32'hbef9a3f7; 6'd63: kt = 32'hc67178f2;
      default: kt = 32'd0;
    endcase
  end

  // ---- message schedule -------------------------------------------------
  wire [31:0] s0 = {w1[6:0], w1[31:7]} ^ {w1[17:0], w1[31:18]} ^ (w1 >> 3);
  wire [31:0] s1 = {w14[16:0], w14[31:17]} ^ {w14[18:0], w14[31:19]} ^
                   (w14 >> 10);
  reg [31:0] wt;
  always @(*) begin
    if (t < 7'd16) wt = block_mem[t[3:0]];
    else wt = s1 + w9 + s0 + w0;
  end

  // ---- compression round ------------------------------------------------
  wire [31:0] big_s1 = {e[5:0], e[31:6]} ^ {e[10:0], e[31:11]} ^
                       {e[24:0], e[31:25]};
  wire [31:0] ch = (e & f) ^ (~e & g);
  wire [31:0] temp1 = h + big_s1 + ch + kt + wt;
  wire [31:0] big_s0 = {a[1:0], a[31:2]} ^ {a[12:0], a[31:13]} ^
                       {a[21:0], a[31:22]};
  wire [31:0] maj = (a & b) ^ (a & c) ^ (b & c);
  wire [31:0] temp2 = big_s0 + maj;

  always @(posedge clk) begin
    if (rst) begin
      state <= IDLE;
      t <= 7'd0;
      done_r <= 1'b0;
      a <= 32'd0; b <= 32'd0; c <= 32'd0; d <= 32'd0;
      e <= 32'd0; f <= 32'd0; g <= 32'd0; h <= 32'd0;
      h0 <= 32'd0; h1 <= 32'd0; h2 <= 32'd0; h3 <= 32'd0;
      h4 <= 32'd0; h5 <= 32'd0; h6 <= 32'd0; h7 <= 32'd0;
      w0 <= 32'd0; w1 <= 32'd0; w2 <= 32'd0; w3 <= 32'd0;
      w4 <= 32'd0; w5 <= 32'd0; w6 <= 32'd0; w7 <= 32'd0;
      w8 <= 32'd0; w9 <= 32'd0; w10 <= 32'd0; w11 <= 32'd0;
      w12 <= 32'd0; w13 <= 32'd0; w14 <= 32'd0; w15 <= 32'd0;
    end else begin
      if (block_we) block_mem[block_addr] <= block_data;

      case (state)
        IDLE: begin
          if (init || next) begin
            if (init) begin
              h0 <= 32'h6a09e667; h1 <= 32'hbb67ae85;
              h2 <= 32'h3c6ef372; h3 <= 32'ha54ff53a;
              h4 <= 32'h510e527f; h5 <= 32'h9b05688c;
              h6 <= 32'h1f83d9ab; h7 <= 32'h5be0cd19;
              a <= 32'h6a09e667; b <= 32'hbb67ae85;
              c <= 32'h3c6ef372; d <= 32'ha54ff53a;
              e <= 32'h510e527f; f <= 32'h9b05688c;
              g <= 32'h1f83d9ab; h <= 32'h5be0cd19;
            end else begin
              a <= h0; b <= h1; c <= h2; d <= h3;
              e <= h4; f <= h5; g <= h6; h <= h7;
            end
            t <= 7'd0;
            done_r <= 1'b0;
            state <= ROUNDS;
          end
        end
        ROUNDS: begin
          h <= g; g <= f; f <= e; e <= d + temp1;
          d <= c; c <= b; b <= a; a <= temp1 + temp2;
          w0 <= w1; w1 <= w2; w2 <= w3; w3 <= w4;
          w4 <= w5; w5 <= w6; w6 <= w7; w7 <= w8;
          w8 <= w9; w9 <= w10; w10 <= w11; w11 <= w12;
          w12 <= w13; w13 <= w14; w14 <= w15; w15 <= wt;
          if (t == 7'd63) state <= DIGEST;
          t <= t + 7'd1;
        end
        DIGEST: begin
          h0 <= h0 + a; h1 <= h1 + b; h2 <= h2 + c; h3 <= h3 + d;
          h4 <= h4 + e; h5 <= h5 + f; h6 <= h6 + g; h7 <= h7 + h;
          done_r <= 1'b1;
          state <= IDLE;
        end
        default: state <= IDLE;
      endcase
    end
  end

  assign done = done_r;
  assign digest0 = h0;
  assign digest1 = h1;
  assign digest2 = h2;
  assign digest3 = h3;
  assign digest4 = h4;
  assign digest5 = h5;
  assign digest6 = h6;
  assign digest7 = h7;

endmodule
