// riscv-mini-style multicycle RV32I subset core: a three-state FSM
// (FETCH -> EXECUTE -> WRITEBACK) with a registered instruction word and a
// registered write-back value. Same ISA subset as sodor.v, one third the
// instruction throughput — the point of the benchmark is a different
// control structure over the same program.
module riscv_mini(input clk, input rst,
                  output reg [31:0] dbg_x10,
                  output reg [31:0] dbg_pc,
                  output reg [31:0] retired);

  localparam FETCH = 2'd0, EXEC = 2'd1, WB = 2'd2;

  reg [31:0] imem [0:63];
  reg [31:0] dmem [0:127];
  reg [31:0] rf [0:31];

  reg [1:0] state;
  reg [31:0] pc;
  reg [31:0] ir;          // registered instruction
  reg [31:0] wb_r;        // registered write-back value
  reg [4:0] wb_rd;
  reg wb_we;
  reg [31:0] npc_r;

  // ---- decode (from the registered instruction) -------------------------
  wire [6:0] opcode = ir[6:0];
  wire [4:0] rd = ir[11:7];
  wire [2:0] f3 = ir[14:12];
  wire [4:0] rs1 = ir[19:15];
  wire [4:0] rs2 = ir[24:20];
  wire [6:0] f7 = ir[31:25];

  wire [31:0] imm_i = {{20{ir[31]}}, ir[31:20]};
  wire [31:0] imm_s = {{20{ir[31]}}, ir[31:25], ir[11:7]};
  wire [31:0] imm_b = {{19{ir[31]}}, ir[31], ir[7], ir[30:25], ir[11:8],
                       1'b0};
  wire [31:0] imm_u = {ir[31:12], 12'd0};
  wire [31:0] imm_j = {{11{ir[31]}}, ir[31], ir[19:12], ir[20], ir[30:21],
                       1'b0};

  reg [31:0] r1, r2;
  always @(*) r1 = (rs1 == 5'd0) ? 32'd0 : rf[rs1];
  always @(*) r2 = (rs2 == 5'd0) ? 32'd0 : rf[rs2];

  wire lt_signed = (r1[31] != r2[31]) ? r1[31] : (r1 < r2);

  reg [31:0] ex_val, ex_npc, mem_addr;
  reg ex_we, ex_store;
  reg [31:0] load_val;
  always @(*) begin
    mem_addr = r1 + ((opcode == 7'h23) ? imm_s : imm_i);
    load_val = dmem[mem_addr[8:2]];
  end

  always @(*) begin
    ex_val = 32'd0;
    ex_we = 1'b0;
    ex_store = 1'b0;
    ex_npc = pc + 32'd4;
    case (opcode)
      7'h13: begin
        ex_we = 1'b1;
        case (f3)
          3'd0: ex_val = r1 + imm_i;
          3'd1: ex_val = r1 << imm_i[4:0];
          3'd4: ex_val = r1 ^ imm_i;
          3'd5: ex_val = r1 >> imm_i[4:0];
          3'd6: ex_val = r1 | imm_i;
          3'd7: ex_val = r1 & imm_i;
          default: ex_val = r1;
        endcase
      end
      7'h33: begin
        ex_we = 1'b1;
        case (f3)
          3'd0: ex_val = f7[5] ? (r1 - r2) : (r1 + r2);
          3'd2: ex_val = lt_signed ? 32'd1 : 32'd0;
          3'd3: ex_val = (r1 < r2) ? 32'd1 : 32'd0;
          3'd4: ex_val = r1 ^ r2;
          3'd6: ex_val = r1 | r2;
          3'd7: ex_val = r1 & r2;
          default: ex_val = r1;
        endcase
      end
      7'h37: begin ex_we = 1'b1; ex_val = imm_u; end
      7'h03: begin ex_we = 1'b1; ex_val = load_val; end
      7'h23: ex_store = 1'b1;
      7'h63: begin
        case (f3)
          3'd0: if (r1 == r2) ex_npc = pc + imm_b;
          3'd1: if (r1 != r2) ex_npc = pc + imm_b;
          3'd4: if (lt_signed) ex_npc = pc + imm_b;
          3'd6: if (r1 < r2) ex_npc = pc + imm_b;
          default: ex_npc = pc + 32'd4;
        endcase
      end
      7'h6F: begin
        ex_we = 1'b1;
        ex_val = pc + 32'd4;
        ex_npc = pc + imm_j;
      end
      default: ex_npc = pc + 32'd4;
    endcase
  end

  // ---- FSM --------------------------------------------------------------
  always @(posedge clk) begin
    if (rst) begin
      state <= FETCH;
      pc <= 32'd0;
      ir <= 32'd0;
      wb_r <= 32'd0;
      wb_rd <= 5'd0;
      wb_we <= 1'b0;
      npc_r <= 32'd0;
      dbg_x10 <= 32'd0;
      dbg_pc <= 32'd0;
      retired <= 32'd0;
    end else begin
      case (state)
        FETCH: begin
          ir <= imem[pc[7:2]];
          state <= EXEC;
        end
        EXEC: begin
          wb_r <= ex_val;
          wb_rd <= rd;
          wb_we <= ex_we;
          npc_r <= ex_npc;
          if (ex_store) dmem[mem_addr[8:2]] <= r2;
          state <= WB;
        end
        WB: begin
          if (wb_we && wb_rd != 5'd0) rf[wb_rd] <= wb_r;
          pc <= npc_r;
          retired <= retired + 32'd1;
          dbg_x10 <= (wb_we && wb_rd == 5'd10) ? wb_r : rf[10];
          dbg_pc <= npc_r;
          state <= FETCH;
        end
        default: state <= FETCH;
      endcase
    end
  end

endmodule
