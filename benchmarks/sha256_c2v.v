// SHA-256 core, compiler-generated style ("c2v" = chisel-to-verilog): the
// same function as sha256_hv.v with a structurally different netlist —
// round constants in a ROM array written by an initial block, the message
// schedule kept in a circular 16-entry memory addressed modulo 16, and the
// round datapath flattened into named intermediate wires. Functionally
// bit-identical to sha256_hv (property-tested).
module sha256_c2v(input clk, input rst,
                  input init, input next,
                  input block_we, input [3:0] block_addr,
                  input [31:0] block_data,
                  output done,
                  output [31:0] digest0, output [31:0] digest1,
                  output [31:0] digest2, output [31:0] digest3,
                  output [31:0] digest4, output [31:0] digest5,
                  output [31:0] digest6, output [31:0] digest7);

  reg [31:0] block_mem [0:15];
  reg [31:0] k_rom [0:63];
  reg [31:0] w_mem [0:15];

  initial begin
    k_rom[0]  = 32'h428a2f98; k_rom[1]  = 32'h71374491;
    k_rom[2]  = 32'hb5c0fbcf; k_rom[3]  = 32'he9b5dba5;
    k_rom[4]  = 32'h3956c25b; k_rom[5]  = 32'h59f111f1;
    k_rom[6]  = 32'h923f82a4; k_rom[7]  = 32'hab1c5ed5;
    k_rom[8]  = 32'hd807aa98; k_rom[9]  = 32'h12835b01;
    k_rom[10] = 32'h243185be; k_rom[11] = 32'h550c7dc3;
    k_rom[12] = 32'h72be5d74; k_rom[13] = 32'h80deb1fe;
    k_rom[14] = 32'h9bdc06a7; k_rom[15] = 32'hc19bf174;
    k_rom[16] = 32'he49b69c1; k_rom[17] = 32'hefbe4786;
    k_rom[18] = 32'h0fc19dc6; k_rom[19] = 32'h240ca1cc;
    k_rom[20] = 32'h2de92c6f; k_rom[21] = 32'h4a7484aa;
    k_rom[22] = 32'h5cb0a9dc; k_rom[23] = 32'h76f988da;
    k_rom[24] = 32'h983e5152; k_rom[25] = 32'ha831c66d;
    k_rom[26] = 32'hb00327c8; k_rom[27] = 32'hbf597fc7;
    k_rom[28] = 32'hc6e00bf3; k_rom[29] = 32'hd5a79147;
    k_rom[30] = 32'h06ca6351; k_rom[31] = 32'h14292967;
    k_rom[32] = 32'h27b70a85; k_rom[33] = 32'h2e1b2138;
    k_rom[34] = 32'h4d2c6dfc; k_rom[35] = 32'h53380d13;
    k_rom[36] = 32'h650a7354; k_rom[37] = 32'h766a0abb;
    k_rom[38] = 32'h81c2c92e; k_rom[39] = 32'h92722c85;
    k_rom[40] = 32'ha2bfe8a1; k_rom[41] = 32'ha81a664b;
    k_rom[42] = 32'hc24b8b70; k_rom[43] = 32'hc76c51a3;
    k_rom[44] = 32'hd192e819; k_rom[45] = 32'hd6990624;
    k_rom[46] = 32'hf40e3585; k_rom[47] = 32'h106aa070;
    k_rom[48] = 32'h19a4c116; k_rom[49] = 32'h1e376c08;
    k_rom[50] = 32'h2748774c; k_rom[51] = 32'h34b0bcb5;
    k_rom[52] = 32'h391c0cb3; k_rom[53] = 32'h4ed8aa4a;
    k_rom[54] = 32'h5b9cca4f; k_rom[55] = 32'h682e6ff3;
    k_rom[56] = 32'h748f82ee; k_rom[57] = 32'h78a5636f;
    k_rom[58] = 32'h84c87814; k_rom[59] = 32'h8cc70208;
    k_rom[60] = 32'h90befffa; k_rom[61] = 32'ha4506ceb;
    k_rom[62] = 32'hbef9a3f7; k_rom[63] = 32'hc67178f2;
  end

  reg busy;
  reg finalize;
  reg done_q;
  reg [6:0] round;

  reg [31:0] state_a, state_b, state_c, state_d;
  reg [31:0] state_e, state_f, state_g, state_h;
  reg [31:0] hash_0, hash_1, hash_2, hash_3;
  reg [31:0] hash_4, hash_5, hash_6, hash_7;

  // ---- message schedule (circular buffer, flattened wires) --------------
  wire [3:0] _T_idx_m16 = round[3:0];
  wire [3:0] _T_idx_m15 = round[3:0] + 4'd1;
  wire [3:0] _T_idx_m7 = round[3:0] + 4'd9;
  wire [3:0] _T_idx_m2 = round[3:0] + 4'd14;

  reg [31:0] _T_w_m16, _T_w_m15, _T_w_m7, _T_w_m2, _T_block_w, _T_kt;
  always @(*) begin
    _T_w_m16 = w_mem[_T_idx_m16];
    _T_w_m15 = w_mem[_T_idx_m15];
    _T_w_m7 = w_mem[_T_idx_m7];
    _T_w_m2 = w_mem[_T_idx_m2];
    _T_block_w = block_mem[round[3:0]];
    _T_kt = k_rom[round[5:0]];
  end

  wire [31:0] _T_s0_r7 = {_T_w_m15[6:0], _T_w_m15[31:7]};
  wire [31:0] _T_s0_r18 = {_T_w_m15[17:0], _T_w_m15[31:18]};
  wire [31:0] _T_s0_s3 = _T_w_m15 >> 3;
  wire [31:0] _T_s0 = _T_s0_r7 ^ _T_s0_r18 ^ _T_s0_s3;

  wire [31:0] _T_s1_r17 = {_T_w_m2[16:0], _T_w_m2[31:17]};
  wire [31:0] _T_s1_r19 = {_T_w_m2[18:0], _T_w_m2[31:19]};
  wire [31:0] _T_s1_s10 = _T_w_m2 >> 10;
  wire [31:0] _T_s1 = _T_s1_r17 ^ _T_s1_r19 ^ _T_s1_s10;

  wire [31:0] _T_w_next = _T_s1 + _T_w_m7 + _T_s0 + _T_w_m16;
  wire [31:0] _T_wt = (round < 7'd16) ? _T_block_w : _T_w_next;

  // ---- compression round (flattened wires) ------------------------------
  wire [31:0] _T_e_r6 = {state_e[5:0], state_e[31:6]};
  wire [31:0] _T_e_r11 = {state_e[10:0], state_e[31:11]};
  wire [31:0] _T_e_r25 = {state_e[24:0], state_e[31:25]};
  wire [31:0] _T_big_s1 = _T_e_r6 ^ _T_e_r11 ^ _T_e_r25;

  wire [31:0] _T_ch = (state_e & state_f) ^ (~state_e & state_g);
  wire [31:0] _T_t1_0 = state_h + _T_big_s1;
  wire [31:0] _T_t1_1 = _T_t1_0 + _T_ch;
  wire [31:0] _T_t1_2 = _T_t1_1 + _T_kt;
  wire [31:0] _T_temp1 = _T_t1_2 + _T_wt;

  wire [31:0] _T_a_r2 = {state_a[1:0], state_a[31:2]};
  wire [31:0] _T_a_r13 = {state_a[12:0], state_a[31:13]};
  wire [31:0] _T_a_r22 = {state_a[21:0], state_a[31:22]};
  wire [31:0] _T_big_s0 = _T_a_r2 ^ _T_a_r13 ^ _T_a_r22;

  wire [31:0] _T_maj = (state_a & state_b) ^ (state_a & state_c) ^
                       (state_b & state_c);
  wire [31:0] _T_temp2 = _T_big_s0 + _T_maj;

  wire [31:0] _T_next_e = state_d + _T_temp1;
  wire [31:0] _T_next_a = _T_temp1 + _T_temp2;

  wire _T_start = init | next;
  wire _T_last_round = (round == 7'd63);

  always @(posedge clk) begin
    if (rst) begin
      busy <= 1'b0;
      finalize <= 1'b0;
      done_q <= 1'b0;
      round <= 7'd0;
      state_a <= 32'd0; state_b <= 32'd0; state_c <= 32'd0;
      state_d <= 32'd0; state_e <= 32'd0; state_f <= 32'd0;
      state_g <= 32'd0; state_h <= 32'd0;
      hash_0 <= 32'd0; hash_1 <= 32'd0; hash_2 <= 32'd0; hash_3 <= 32'd0;
      hash_4 <= 32'd0; hash_5 <= 32'd0; hash_6 <= 32'd0; hash_7 <= 32'd0;
    end else begin
      if (block_we) block_mem[block_addr] <= block_data;

      if (!busy && !finalize && _T_start) begin
        if (init) begin
          hash_0 <= 32'h6a09e667; hash_1 <= 32'hbb67ae85;
          hash_2 <= 32'h3c6ef372; hash_3 <= 32'ha54ff53a;
          hash_4 <= 32'h510e527f; hash_5 <= 32'h9b05688c;
          hash_6 <= 32'h1f83d9ab; hash_7 <= 32'h5be0cd19;
          state_a <= 32'h6a09e667; state_b <= 32'hbb67ae85;
          state_c <= 32'h3c6ef372; state_d <= 32'ha54ff53a;
          state_e <= 32'h510e527f; state_f <= 32'h9b05688c;
          state_g <= 32'h1f83d9ab; state_h <= 32'h5be0cd19;
        end else begin
          state_a <= hash_0; state_b <= hash_1;
          state_c <= hash_2; state_d <= hash_3;
          state_e <= hash_4; state_f <= hash_5;
          state_g <= hash_6; state_h <= hash_7;
        end
        round <= 7'd0;
        done_q <= 1'b0;
        busy <= 1'b1;
      end

      if (busy) begin
        state_h <= state_g;
        state_g <= state_f;
        state_f <= state_e;
        state_e <= _T_next_e;
        state_d <= state_c;
        state_c <= state_b;
        state_b <= state_a;
        state_a <= _T_next_a;
        w_mem[round[3:0]] <= _T_wt;
        round <= round + 7'd1;
        if (_T_last_round) begin
          busy <= 1'b0;
          finalize <= 1'b1;
        end
      end

      if (finalize) begin
        hash_0 <= hash_0 + state_a;
        hash_1 <= hash_1 + state_b;
        hash_2 <= hash_2 + state_c;
        hash_3 <= hash_3 + state_d;
        hash_4 <= hash_4 + state_e;
        hash_5 <= hash_5 + state_f;
        hash_6 <= hash_6 + state_g;
        hash_7 <= hash_7 + state_h;
        finalize <= 1'b0;
        done_q <= 1'b1;
      end
    end
  end

  assign done = done_q;
  assign digest0 = hash_0;
  assign digest1 = hash_1;
  assign digest2 = hash_2;
  assign digest3 = hash_3;
  assign digest4 = hash_4;
  assign digest5 = hash_5;
  assign digest6 = hash_6;
  assign digest7 = hash_7;

endmodule
