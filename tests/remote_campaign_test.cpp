// Distributed campaign fabric (eraser/remote.h) contract:
//
//  * wire framing survives roundtrips and refuses corruption (CRC, bounds,
//    deadlines, version skew) with WireError, never silent damage;
//  * a distributed campaign over in-process workers is bit-identical to
//    the single-process engine across Word/Off batching and every
//    RedundancyMode, on >= 3 suite circuits;
//  * every worker failure mode — death mid-unit, garbage reply, duplicated
//    reply frame, stalled reply past the deadline — abandons the
//    *connection* and re-dispatches the claimed unit, with bit-identical
//    final verdicts;
//  * the link lifecycle self-heals: a killed worker process respawned by
//    the WorkerSupervisor is reconnected and finishes the campaign; a
//    wedged worker is caught by the heartbeat deadline long before
//    unit_timeout_ms; a flapper is quarantined and eventually ejected; a
//    fully-down fleet never blocks the local pool's forward progress;
//  * a seeded chaos soak (corruption, stalls, drops, SIGKILL + respawn)
//    completes bit-identically while exercising reconnect + quarantine;
//  * design skew (structural hash mismatch) refuses the worker at
//    handshake; the campaign falls back to local execution, still correct;
//  * StimulusSpec kinds must be registered at submit time (SimError).
//
// Workers here are in-process serve_connection threads over loopback
// sockets — the exact framing/protocol path tools/eraser_worker ships, in
// a form tests can inject faults into (WorkerHooks) and tear down
// deterministically. Forcing units onto workers is done by pinning the
// Session's single pool thread with a gated campaign: while the gate
// holds, remote links are the only executors making progress.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "eraser/eraser.h"
#include "eraser/remote.h"
#include "eraser/supervisor.h"
#include "suite/suite.h"
#include "util/diagnostics.h"
#include "util/wire.h"

namespace eraser {
namespace {

using core::CampaignOptions;
using core::FaultBatching;
using core::RedundancyMode;

std::vector<fault::Fault> ci_faults(const rtl::Design& design,
                                    uint32_t sample = 60) {
    fault::FaultGenOptions fopts;
    fopts.sample_max = sample;
    fopts.sample_seed = 42;
    return fault::generate_faults(design, fopts);
}

/// Blocks initialize() until released — pins the Session's pool thread so
/// a remote-eligible campaign can only progress on worker links.
class GateStimulus final : public sim::Stimulus {
  public:
    GateStimulus(std::unique_ptr<sim::Stimulus> inner,
                 std::atomic<bool>& release)
        : inner_(std::move(inner)), release_(&release) {}
    void bind(const rtl::Design& design) override { inner_->bind(design); }
    [[nodiscard]] std::string clock_name() const override {
        return inner_->clock_name();
    }
    [[nodiscard]] uint32_t num_cycles() const override {
        return inner_->num_cycles();
    }
    void initialize(sim::DriveHandle& h) override {
        while (!release_->load(std::memory_order_acquire)) {
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        inner_->initialize(h);
    }
    void apply(uint32_t cycle, sim::DriveHandle& h) override {
        inner_->apply(cycle, h);
    }

  private:
    std::unique_ptr<sim::Stimulus> inner_;
    std::atomic<bool>* release_;
};

/// In-process worker: accept loop + serve_connection on a loopback port,
/// with fault-injection hooks. Stop AFTER the client Session is gone (the
/// scheduler's goodbye unblocks the serve loop).
class TestWorker {
  public:
    explicit TestWorker(core::WorkerHooks hooks = {}) : hooks_(hooks) {
        listener_ = util::listen_loopback(port_);
        thread_ = std::thread([this] { accept_loop(); });
    }
    ~TestWorker() { stop(); }
    [[nodiscard]] uint16_t port() const { return port_; }
    [[nodiscard]] uint64_t units_served() const { return units_.load(); }

    void stop() {
        stop_.store(true, std::memory_order_release);
        if (thread_.joinable()) thread_.join();
    }

  private:
    void accept_loop() {
        while (!stop_.load(std::memory_order_acquire)) {
            try {
                util::UniqueFd fd =
                    util::accept_connection(listener_.get(), 50);
                util::WireConn conn(std::move(fd));
                units_.fetch_add(
                    core::serve_connection(conn, cache_, hooks_));
            } catch (const util::WireError&) {
                // Accept timeout (poll for stop_) or a vanished client —
                // both only end this connection attempt.
            }
        }
    }

    uint16_t port_ = 0;
    util::UniqueFd listener_;
    core::WorkerHooks hooks_;
    core::WorkerDesignCache cache_;
    std::atomic<uint64_t> units_{0};
    std::atomic<bool> stop_{false};
    std::thread thread_;
};

void register_suite_stimuli() { suite::register_remote_stimuli(); }

// --- wire layer -------------------------------------------------------------

TEST(Wire, WriterReaderRoundtripAndBounds) {
    util::WireWriter w;
    w.u8(0xAB);
    w.u32(0xDEADBEEF);
    w.u64(0x0123456789ABCDEFULL);
    w.f64(3.25);
    w.varint(300);
    w.str("hello wire");
    const std::vector<uint64_t> words = {1, 2, 0xFFFFFFFFFFFFFFFFULL};
    w.words(words);

    util::WireReader r(w.bytes());
    EXPECT_EQ(r.u8(), 0xAB);
    EXPECT_EQ(r.u32(), 0xDEADBEEFu);
    EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
    EXPECT_DOUBLE_EQ(r.f64(), 3.25);
    EXPECT_EQ(r.varint(), 300u);
    EXPECT_EQ(r.str(), "hello wire");
    EXPECT_EQ(r.words(), words);
    EXPECT_NO_THROW(r.expect_end());
    EXPECT_THROW((void)r.u8(), util::WireError);   // over-read
}

TEST(Wire, FrameRoundtripOverSocketPair) {
    util::SocketPair pair = util::socket_pair();
    util::WireConn a(std::move(pair.a));
    util::WireConn b(std::move(pair.b));

    const std::vector<uint8_t> payload = {1, 2, 3, 250, 251, 252};
    a.send_frame(payload);
    std::vector<uint8_t> got;
    ASSERT_TRUE(b.recv_frame(got, 1000));
    EXPECT_EQ(got, payload);

    a.close();   // clean EOF at a frame boundary
    EXPECT_FALSE(b.recv_frame(got, 1000));
}

TEST(Wire, CorruptCrcIsRefused) {
    util::SocketPair pair = util::socket_pair();
    util::WireConn reader(std::move(pair.a));

    // Hand-build a frame with a wrong CRC trailer: varint(3) | 3 bytes |
    // 4 garbage CRC bytes.
    const uint8_t raw[] = {3, 0x10, 0x20, 0x30, 0xAA, 0xBB, 0xCC, 0xDD};
    ASSERT_EQ(send(pair.b.get(), raw, sizeof(raw), 0),
              static_cast<ssize_t>(sizeof(raw)));
    std::vector<uint8_t> got;
    EXPECT_THROW((void)reader.recv_frame(got, 1000), util::WireError);
}

TEST(Wire, OversizedFrameLengthIsRefusedBeforeAllocation) {
    util::SocketPair pair = util::socket_pair();
    util::WireConn reader(std::move(pair.a));

    // varint(2^62): far beyond kMaxFrameBytes.
    const uint8_t raw[] = {0x80, 0x80, 0x80, 0x80, 0x80,
                           0x80, 0x80, 0x80, 0x40};
    ASSERT_EQ(send(pair.b.get(), raw, sizeof(raw), 0),
              static_cast<ssize_t>(sizeof(raw)));
    std::vector<uint8_t> got;
    EXPECT_THROW((void)reader.recv_frame(got, 1000), util::WireError);
}

TEST(Wire, ReceiveDeadlineFires) {
    util::SocketPair pair = util::socket_pair();
    util::WireConn reader(std::move(pair.a));
    std::vector<uint8_t> got;
    EXPECT_THROW((void)reader.recv_frame(got, 30), util::WireError);
}

TEST(Wire, MidFrameEofIsAnErrorNotACleanClose) {
    util::SocketPair pair = util::socket_pair();
    util::WireConn reader(std::move(pair.a));
    const uint8_t raw[] = {200, 0x01};   // promises 200 bytes, delivers 1
    ASSERT_EQ(send(pair.b.get(), raw, sizeof(raw), 0),
              static_cast<ssize_t>(sizeof(raw)));
    pair.b.reset();
    std::vector<uint8_t> got;
    EXPECT_THROW((void)reader.recv_frame(got, 1000), util::WireError);
}

// --- protocol handshake -----------------------------------------------------

TEST(RemoteProtocol, VersionSkewIsRefusedAtHello) {
    util::SocketPair pair = util::socket_pair();
    core::WorkerDesignCache cache;
    std::thread server([fd = std::move(pair.a), &cache]() mutable {
        util::WireConn conn(std::move(fd));
        EXPECT_EQ(core::serve_connection(conn, cache), 0u);
    });

    util::WireConn client(std::move(pair.b));
    util::WireWriter hello;
    hello.u8(static_cast<uint8_t>(core::MsgType::Hello));
    hello.u32(core::kWireSchemaVersion + 7);
    client.send_frame(hello.bytes());

    std::vector<uint8_t> reply;
    ASSERT_TRUE(client.recv_frame(reply, 2000));
    util::WireReader r(reply);
    EXPECT_EQ(static_cast<core::MsgType>(r.u8()), core::MsgType::Error);
    EXPECT_NE(r.str().find("version"), std::string::npos);
    client.close();
    server.join();
}

TEST(RemoteProtocol, DesignStructuralHashMismatchRefusesWorker) {
    register_suite_stimuli();
    const suite::Benchmark& alu = suite::find_benchmark("alu");
    const suite::Benchmark& apb = suite::find_benchmark("apb");
    auto design = suite::load_design(alu);
    const auto faults = ci_faults(*design);

    TestWorker worker;
    core::CampaignResult local;
    {
        core::Session session(*design, {.num_threads = 2});
        local = session
                    .submit(faults, suite::remote_stimulus(alu,
                                                           alu.test_cycles))
                    .wait();
    }

    // The Session simulates the ALU but ships the APB source: the worker
    // compiles it fine, the structural hashes disagree, the handshake must
    // fail — and the campaign must complete locally regardless. The link
    // lifecycle keeps probing (the mismatch is permanent, so every probe
    // fails the same way); tight backoff knobs keep that spinning cheap.
    core::SessionOptions sopts;
    sopts.num_threads = 2;
    sopts.scheduler.remote.workers = {worker.port()};
    sopts.scheduler.remote.design = suite::design_spec(apb);
    sopts.scheduler.remote.reconnect_base_ms = 5;
    sopts.scheduler.remote.reconnect_max_ms = 20;
    sopts.scheduler.remote.quarantine_cooldown_ms = 20;
    core::Session session(*design, sopts);
    const auto result =
        session.submit(faults, suite::remote_stimulus(alu, alu.test_cycles))
            .wait();
    EXPECT_EQ(result.detected, local.detected);
    // The handshake runs on the dispatcher thread, concurrently with the
    // (local) campaign — poll for the refusal rather than racing it.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (session.scheduler().stats().remote.handshake_failures == 0) {
        ASSERT_LT(std::chrono::steady_clock::now(), deadline)
            << "design-hash mismatch never refused the worker";
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const auto remote = session.scheduler().stats().remote;
    EXPECT_EQ(remote.workers_connected, 0u);
    EXPECT_GE(remote.handshake_failures, 1u);
    EXPECT_EQ(remote.units_completed, 0u);
    ASSERT_EQ(remote.workers.size(), 1u);
    EXPECT_EQ(remote.workers[0].port, worker.port());
    EXPECT_GE(remote.workers[0].handshake_failures, 1u);
}

TEST(RemoteProtocol, UnregisteredStimulusKindThrowsAtSubmit) {
    const suite::Benchmark& b = suite::find_benchmark("alu");
    auto design = suite::load_design(b);
    const auto faults = ci_faults(*design);
    core::Session session(*design, {.num_threads = 1});
    core::StimulusSpec bogus{"no-such-kind", {}};
    EXPECT_THROW((void)session.submit(faults, bogus), SimError);
}

// --- distributed determinism ------------------------------------------------

// The acceptance criterion: a campaign spread over two worker processes
// (every unit shipped, local pool pinned) is bit-identical to the
// single-process engine, across Word/Off batching and every
// RedundancyMode, on three suite circuits.
TEST(RemoteCampaign, DistributedMatchesLocalAcrossModesAndBatching) {
    register_suite_stimuli();
    for (const char* name : {"alu", "apb", "sha256_hv"}) {
        const suite::Benchmark& b = suite::find_benchmark(name);
        auto design = suite::load_design(b);
        const auto faults = ci_faults(*design);
        ASSERT_FALSE(faults.empty()) << name;
        auto compiled = core::CompiledDesign::build(*design);
        const core::StimulusSpec stim =
            suite::remote_stimulus(b, b.test_cycles);

        // Local reference (blocking path, one engine).
        core::Session ref_session(compiled, {.num_threads = 1});
        auto ref_stim = suite::make_stimulus(b, b.test_cycles);
        const auto ref = ref_session.run(faults, *ref_stim, {});

        TestWorker w1, w2;
        for (const auto batching :
             {FaultBatching::Word, FaultBatching::Off}) {
            for (const auto mode :
                 {RedundancyMode::None, RedundancyMode::Explicit,
                  RedundancyMode::Full}) {
                core::SessionOptions sopts;
                sopts.num_threads = 1;
                sopts.scheduler.remote.workers = {w1.port(), w2.port()};
                sopts.scheduler.remote.design = suite::design_spec(b);
                // With the pool pinned, the placement gate must never
                // refuse a unit (nothing else could run it): keep the cost
                // model unlearned so predicted wall stays 0.
                sopts.scheduler.learn_costs = false;
                core::Session session(compiled, sopts);

                // Pin the pool thread so every unit must go remote.
                std::atomic<bool> release{false};
                auto gate_factory = [&]() -> std::unique_ptr<sim::Stimulus> {
                    return std::make_unique<GateStimulus>(
                        suite::make_stimulus(b, b.test_cycles), release);
                };
                CampaignOptions gate_opts;
                gate_opts.num_shards = 1;
                auto gate = session.submit(faults, gate_factory, gate_opts);

                CampaignOptions opts;
                opts.engine.batching = batching;
                opts.engine.mode = mode;
                opts.num_shards = 4;
                const auto result = session.submit(faults, stim, opts).wait();
                release.store(true, std::memory_order_release);
                (void)gate.wait();

                EXPECT_EQ(result.detected, ref.detected)
                    << name << " batching=" << static_cast<int>(batching)
                    << " mode=" << static_cast<int>(mode);
                EXPECT_EQ(result.num_detected, ref.num_detected);
                EXPECT_FALSE(result.canceled);

                const auto remote = session.scheduler().stats().remote;
                EXPECT_EQ(remote.units_completed, 4u)
                    << "pinned pool: every unit must have run remotely";
                EXPECT_EQ(remote.units_redispatched, 0u);
                // Provenance: remote shards are marked, with the shipping
                // overhead recorded.
                uint32_t remote_shards = 0;
                for (const auto& sb : result.stats.shards) {
                    if (sb.remote) {
                        ++remote_shards;
                        EXPECT_GE(sb.rtt_seconds, 0.0);
                    }
                }
                EXPECT_EQ(remote_shards, 4u);
            }
        }
    }
}

// --- failure injection ------------------------------------------------------

namespace {

/// Shared body of the failure-injection tests: one faulty worker, pinned
/// local pool, poll the fleet counters until the failure re-dispatched a
/// unit, then release the pool and require bit-identical verdicts.
void run_failure_injection(const core::WorkerHooks& hooks,
                           int unit_timeout_ms = 0) {
    register_suite_stimuli();
    const suite::Benchmark& b = suite::find_benchmark("alu");
    auto design = suite::load_design(b);
    const auto faults = ci_faults(*design);
    auto compiled = core::CompiledDesign::build(*design);
    const core::StimulusSpec stim = suite::remote_stimulus(b, b.test_cycles);

    core::Session ref_session(compiled, {.num_threads = 1});
    auto ref_stim = suite::make_stimulus(b, b.test_cycles);
    const auto ref = ref_session.run(faults, *ref_stim, {});

    TestWorker worker(hooks);
    core::SessionOptions sopts;
    sopts.num_threads = 1;
    sopts.scheduler.remote.workers = {worker.port()};
    sopts.scheduler.remote.design = suite::design_spec(b);
    sopts.scheduler.learn_costs = false;   // see determinism test: no gate
    if (unit_timeout_ms > 0) {
        sopts.scheduler.remote.unit_timeout_ms = unit_timeout_ms;
    }
    core::Session session(compiled, sopts);

    std::atomic<bool> release{false};
    auto gate_factory = [&]() -> std::unique_ptr<sim::Stimulus> {
        return std::make_unique<GateStimulus>(
            suite::make_stimulus(b, b.test_cycles), release);
    };
    CampaignOptions gate_opts;
    gate_opts.num_shards = 1;
    auto gate = session.submit(faults, gate_factory, gate_opts);

    CampaignOptions opts;
    opts.num_shards = 3;
    auto handle = session.submit(faults, stim, opts);

    // The pinned pool makes the faulty worker the only executor: it MUST
    // hit its injected failure. Wait for the re-dispatch before releasing
    // the pool thread to mop up the requeued units.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (session.scheduler().stats().remote.units_redispatched == 0) {
        ASSERT_LT(std::chrono::steady_clock::now(), deadline)
            << "worker failure never re-dispatched a unit";
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    release.store(true, std::memory_order_release);
    const auto result = handle.wait();
    (void)gate.wait();

    EXPECT_EQ(result.detected, ref.detected)
        << "re-dispatched units changed verdicts";
    EXPECT_EQ(result.num_detected, ref.num_detected);
    EXPECT_FALSE(result.canceled);
    const auto remote = session.scheduler().stats().remote;
    EXPECT_GE(remote.units_redispatched, 1u);
    // The link lifecycle heals the slot (reconnect, or quarantine then
    // reconnect), so the slot is not "lost" — but the established link that
    // carried the injected failure must be counted as lost at least once.
    EXPECT_GE(remote.links_lost, 1u);
}

}  // namespace

TEST(RemoteFailure, WorkerDeathMidCampaignRedispatchesBitIdentical) {
    core::WorkerHooks hooks;
    hooks.die_before_result_unit = 2;   // die with units in flight
    run_failure_injection(hooks);
}

TEST(RemoteFailure, GarbageResultFrameRedispatchesBitIdentical) {
    core::WorkerHooks hooks;
    hooks.garbage_result_unit = 1;
    run_failure_injection(hooks);
}

TEST(RemoteFailure, DuplicateResultFrameIsRejectedNotDoubleMerged) {
    core::WorkerHooks hooks;
    hooks.duplicate_result_unit = 1;   // poisons the NEXT unit's reply
    run_failure_injection(hooks);
}

TEST(RemoteFailure, StalledWorkerHitsDeadlineAndRedispatches) {
    core::WorkerHooks hooks;
    hooks.stall_before_result_unit = 1;
    hooks.stall_ms = 2000;
    run_failure_injection(hooks, /*unit_timeout_ms=*/100);
}

// --- self-healing fleet -----------------------------------------------------

namespace {

/// Per-test fixture state shared by the fleet-health tests: one circuit,
/// its blocking-path reference verdicts, and a gate for pinning the pool.
struct FleetTestRig {
    explicit FleetTestRig(const char* circuit)
        : bench(suite::find_benchmark(circuit)),
          design(suite::load_design(bench)),
          faults(ci_faults(*design)),
          compiled(core::CompiledDesign::build(*design)),
          stim(suite::remote_stimulus(bench, bench.test_cycles)) {
        register_suite_stimuli();
        core::Session ref_session(compiled, {.num_threads = 1});
        auto ref_stim = suite::make_stimulus(bench, bench.test_cycles);
        ref = ref_session.run(faults, *ref_stim, {});
    }

    [[nodiscard]] core::StimulusFactory gate_factory() {
        return [this]() -> std::unique_ptr<sim::Stimulus> {
            return std::make_unique<GateStimulus>(
                suite::make_stimulus(bench, bench.test_cycles), release);
        };
    }

    const suite::Benchmark& bench;
    std::unique_ptr<rtl::Design> design;
    std::vector<fault::Fault> faults;
    std::shared_ptr<const core::CompiledDesign> compiled;
    core::StimulusSpec stim;
    core::CampaignResult ref;
    std::atomic<bool> release{false};
};

}  // namespace

// A SIGKILLed worker process is respawned by the supervisor on the same
// port, and the scheduler's link lifecycle reconnects to it. With the
// local pool pinned the respawned worker is the ONLY executor, so the
// campaign can complete at all only through the reconnect — and it must
// still be bit-identical.
TEST(RemoteFleet, SupervisorRespawnReconnectsAndFinishesBitIdentical) {
    FleetTestRig rig("alu");

    core::SupervisorOptions supo;
    supo.binary = ERASER_WORKER_BIN;
    supo.workers = 1;
    core::WorkerSupervisor sup(supo);
    ASSERT_NO_THROW(sup.start());

    core::SessionOptions sopts;
    sopts.num_threads = 1;
    sopts.scheduler.remote.workers = sup.ports();
    sopts.scheduler.remote.design = suite::design_spec(rig.bench);
    sopts.scheduler.remote.reconnect_base_ms = 10;
    sopts.scheduler.remote.reconnect_max_ms = 100;
    sopts.scheduler.learn_costs = false;   // see determinism test: no gate
    core::Session session(rig.compiled, sopts);

    CampaignOptions gate_opts;
    gate_opts.num_shards = 1;
    auto gate = session.submit(rig.faults, rig.gate_factory(), gate_opts);

    CampaignOptions opts;
    opts.num_shards = 8;
    std::atomic<bool> killed{false};
    core::ShardObserver observer = [&](const core::ShardEvent& e) {
        if (!e.terminal && !killed.exchange(true)) sup.kill_worker(0);
    };
    auto handle = session.submit(rig.faults, rig.stim, opts, observer);
    const auto result = handle.wait();   // finishes only via the reconnect
    rig.release.store(true, std::memory_order_release);
    (void)gate.wait();

    EXPECT_EQ(result.detected, rig.ref.detected);
    EXPECT_EQ(result.num_detected, rig.ref.num_detected);
    EXPECT_TRUE(killed.load());
    EXPECT_GE(sup.respawns(), 1u);
    const auto remote = session.scheduler().stats().remote;
    EXPECT_GE(remote.links_lost, 1u);
    EXPECT_GE(remote.reconnects, 1u);
    EXPECT_GE(remote.units_redispatched, 1u);
    EXPECT_EQ(remote.units_completed, 8u)
        << "pinned pool: every unit (incl. re-dispatches) must run remotely";
}

// A worker that wedges silently mid-unit is detected by the heartbeat
// deadline (~heartbeat_timeout_ms), not by waiting out unit_timeout_ms.
TEST(RemoteFleet, HeartbeatDetectsWedgedWorkerBeforeUnitTimeout) {
    FleetTestRig rig("alu");

    core::WorkerHooks hooks;
    hooks.stall_before_result_unit = 1;   // wedge on every connection's
    hooks.stall_ms = 3000;                // first unit, before heartbeats
    TestWorker worker(hooks);

    core::SessionOptions sopts;
    sopts.num_threads = 1;
    sopts.scheduler.remote.workers = {worker.port()};
    sopts.scheduler.remote.design = suite::design_spec(rig.bench);
    sopts.scheduler.remote.unit_timeout_ms = 60000;   // would take a minute
    sopts.scheduler.remote.heartbeat_interval_ms = 100;
    sopts.scheduler.remote.heartbeat_timeout_ms = 250;
    sopts.scheduler.remote.reconnect_base_ms = 10;
    sopts.scheduler.remote.reconnect_max_ms = 50;
    sopts.scheduler.remote.quarantine_cooldown_ms = 50;
    sopts.scheduler.learn_costs = false;
    core::Session session(rig.compiled, sopts);

    CampaignOptions gate_opts;
    gate_opts.num_shards = 1;
    auto gate = session.submit(rig.faults, rig.gate_factory(), gate_opts);

    CampaignOptions opts;
    opts.num_shards = 3;
    const auto start = std::chrono::steady_clock::now();
    auto handle = session.submit(rig.faults, rig.stim, opts);

    const auto deadline = start + std::chrono::seconds(30);
    while (session.scheduler().stats().remote.units_redispatched == 0) {
        ASSERT_LT(std::chrono::steady_clock::now(), deadline)
            << "wedged worker never detected";
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const auto detect_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start)
            .count();
    // Nominal detection is ~250ms (heartbeat_timeout_ms); anything under
    // the 3s stall proves the heartbeat fired, not the stall ending or the
    // 60s unit timeout. 2s leaves slack for a loaded CI host.
    EXPECT_LT(detect_ms, 2000)
        << "re-dispatch came too late to be heartbeat-driven";

    rig.release.store(true, std::memory_order_release);
    const auto result = handle.wait();
    (void)gate.wait();
    EXPECT_EQ(result.detected, rig.ref.detected);
    EXPECT_EQ(result.num_detected, rig.ref.num_detected);
    EXPECT_GE(session.scheduler().stats().remote.links_lost, 1u);
}

// A worker that dies on the first unit of every connection trips the
// failure-rate window (threshold 2) into quarantine, and the second
// quarantine (max_quarantines = 2) ejects it permanently. The campaign
// still completes bit-identically on the local pool.
TEST(RemoteFleet, FlapperIsQuarantinedThenEjected) {
    FleetTestRig rig("alu");

    core::WorkerHooks hooks;
    hooks.die_before_result_unit = 1;   // flap on every connection
    TestWorker worker(hooks);

    core::SessionOptions sopts;
    sopts.num_threads = 1;
    sopts.scheduler.remote.workers = {worker.port()};
    sopts.scheduler.remote.design = suite::design_spec(rig.bench);
    sopts.scheduler.remote.reconnect_base_ms = 5;
    sopts.scheduler.remote.reconnect_max_ms = 20;
    sopts.scheduler.remote.failure_threshold = 2;
    sopts.scheduler.remote.failure_window_ms = 60000;
    sopts.scheduler.remote.quarantine_cooldown_ms = 20;
    sopts.scheduler.remote.max_quarantines = 2;
    sopts.scheduler.learn_costs = false;
    core::Session session(rig.compiled, sopts);

    CampaignOptions gate_opts;
    gate_opts.num_shards = 1;
    auto gate = session.submit(rig.faults, rig.gate_factory(), gate_opts);

    CampaignOptions opts;
    opts.num_shards = 3;
    auto handle = session.submit(rig.faults, rig.stim, opts);

    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (session.scheduler().stats().remote.workers_ejected == 0) {
        ASSERT_LT(std::chrono::steady_clock::now(), deadline)
            << "flapper never ejected";
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    rig.release.store(true, std::memory_order_release);
    const auto result = handle.wait();
    (void)gate.wait();

    EXPECT_EQ(result.detected, rig.ref.detected);
    EXPECT_EQ(result.num_detected, rig.ref.num_detected);
    const auto remote = session.scheduler().stats().remote;
    // 2 failures -> quarantine #1, 2 more -> quarantine #2 -> ejection:
    // exactly 4 lost links and 2 quarantines, deterministically.
    EXPECT_EQ(remote.workers_ejected, 1u);
    EXPECT_EQ(remote.quarantines, 2u);
    EXPECT_EQ(remote.links_lost, 4u);
    EXPECT_EQ(remote.units_completed, 0u);
    ASSERT_EQ(remote.workers.size(), 1u);
    EXPECT_TRUE(remote.workers[0].ejected);
    EXPECT_EQ(remote.workers[0].state, core::LinkState::Down);
}

// With every configured worker unreachable the fleet goes (and stays)
// fully Down — and the campaign still completes on the local pool, because
// every shard gets a local ticket at admission regardless of fleet state.
TEST(RemoteFleet, WholeFleetDownFallsBackToLocalPool) {
    FleetTestRig rig("alu");

    // Reserve an ephemeral port, then close the listener: connecting to it
    // is refused, so every handshake attempt fails.
    uint16_t dead_port = 0;
    { auto listener = util::listen_loopback(dead_port); }

    core::SessionOptions sopts;
    sopts.num_threads = 2;
    sopts.scheduler.remote.workers = {dead_port};
    sopts.scheduler.remote.design = suite::design_spec(rig.bench);
    sopts.scheduler.remote.connect_timeout_ms = 50;
    sopts.scheduler.remote.reconnect_base_ms = 5;
    sopts.scheduler.remote.reconnect_max_ms = 20;
    sopts.scheduler.remote.quarantine_cooldown_ms = 20;
    core::Session session(rig.compiled, sopts);

    const auto result = session.submit(rig.faults, rig.stim, {}).wait();
    EXPECT_EQ(result.detected, rig.ref.detected);
    EXPECT_EQ(result.num_detected, rig.ref.num_detected);

    // Default lifecycle knobs: 3 failures per quarantine, 3 quarantines to
    // ejection — poll until the dead fleet is fully written off.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (session.scheduler().stats().remote.workers_ejected == 0) {
        ASSERT_LT(std::chrono::steady_clock::now(), deadline)
            << "unreachable worker never ejected";
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const auto remote = session.scheduler().stats().remote;
    EXPECT_EQ(remote.workers_connected, 0u);
    EXPECT_GE(remote.handshake_failures, 1u);
    EXPECT_EQ(remote.units_completed, 0u);
    EXPECT_EQ(remote.links_lost, 0u);   // nothing ever handshook
}

// --- seeded chaos soak -------------------------------------------------------

// The PR's acceptance soak: >= 2 circuits x Word/Off batching over a mixed
// fleet — two in-process workers under seeded probabilistic chaos
// (connection kills, silent stalls, CRC corruption, dropped results,
// slow-but-alive delays) plus one real supervised worker process that is
// SIGKILLed and respawned mid-soak. Every campaign must stay bit-identical
// to the blocking reference, and the fleet must demonstrably self-heal:
// at least one re-dispatch, one reconnect, and one quarantine.
TEST(RemoteChaos, SeededChaosSoakSelfHealsBitIdentical) {
    register_suite_stimuli();

    core::WorkerHooks chaos_a;
    chaos_a.chaos.seed = 0xC0FFEE;
    chaos_a.chaos.kill_pct = 15;
    chaos_a.chaos.stall_pct = 12;
    chaos_a.chaos.stall_ms = 600;    // > heartbeat_timeout_ms: counts dead
    chaos_a.chaos.corrupt_pct = 12;
    chaos_a.chaos.drop_pct = 12;
    chaos_a.chaos.delay_pct = 15;
    chaos_a.chaos.delay_ms = 400;    // > timeout, but heartbeats cover it
    core::WorkerHooks chaos_b = chaos_a;
    chaos_b.chaos.seed = 0xB10C4DE;
    chaos_b.chaos.kill_pct = 20;
    chaos_b.chaos.corrupt_pct = 15;
    TestWorker w1(chaos_a), w2(chaos_b);

    core::SupervisorOptions supo;
    supo.binary = ERASER_WORKER_BIN;
    supo.workers = 1;
    supo.restart_budget = 10;
    core::WorkerSupervisor sup(supo);
    ASSERT_NO_THROW(sup.start());

    std::atomic<bool> killed{false};
    uint32_t reconnects = 0, quarantines = 0;
    uint64_t redispatched = 0;

    // One Session (and thus one fleet of link slots) per circuit: the
    // failure-rate windows accumulate across the circuit's campaigns, the
    // way a long-lived production session would see a flaky fleet.
    for (const char* name : {"alu", "apb"}) {
        const suite::Benchmark& b = suite::find_benchmark(name);
        auto design = suite::load_design(b);
        const auto faults = ci_faults(*design);
        auto compiled = core::CompiledDesign::build(*design);
        core::Session ref_session(compiled, {.num_threads = 1});
        auto ref_stim = suite::make_stimulus(b, b.test_cycles);
        const auto ref = ref_session.run(faults, *ref_stim, {});
        const core::StimulusSpec stim =
            suite::remote_stimulus(b, b.test_cycles);

        core::SessionOptions sopts;
        sopts.num_threads = 2;   // unpinned: local pool guarantees progress
        sopts.scheduler.remote.workers = {w1.port(), w2.port(),
                                          sup.ports()[0]};
        sopts.scheduler.remote.design = suite::design_spec(b);
        sopts.scheduler.remote.heartbeat_interval_ms = 100;
        sopts.scheduler.remote.heartbeat_timeout_ms = 300;
        sopts.scheduler.remote.unit_timeout_ms = 30000;
        sopts.scheduler.remote.reconnect_base_ms = 10;
        sopts.scheduler.remote.reconnect_max_ms = 100;
        sopts.scheduler.remote.failure_threshold = 2;
        sopts.scheduler.remote.failure_window_ms = 60000;
        sopts.scheduler.remote.quarantine_cooldown_ms = 50;
        sopts.scheduler.remote.max_quarantines = 0;   // heal forever
        sopts.scheduler.learn_costs = false;
        core::Session session(compiled, sopts);

        const auto run_campaign = [&](FaultBatching batching) {
            core::ShardObserver observer = [&](const core::ShardEvent& e) {
                if (!e.terminal && !killed.exchange(true)) {
                    sup.kill_worker(0);
                }
            };
            CampaignOptions opts;
            opts.engine.batching = batching;
            opts.num_shards = 12;
            const auto result =
                session.submit(faults, stim, opts, observer).wait();
            EXPECT_EQ(result.detected, ref.detected)
                << b.name << " batching=" << static_cast<int>(batching);
            EXPECT_EQ(result.num_detected, ref.num_detected);
            EXPECT_FALSE(result.canceled);
        };

        run_campaign(FaultBatching::Word);
        run_campaign(FaultBatching::Off);

        // The chaos schedule is seeded but the dispatch interleaving is
        // not: if this circuit's rounds happened to dodge a reconnect or a
        // quarantine so far, keep soaking (bounded) until both landed.
        const auto deadline =
            std::chrono::steady_clock::now() + std::chrono::seconds(90);
        auto fleet = session.scheduler().stats().remote;
        while ((reconnects + fleet.reconnects == 0 ||
                quarantines + fleet.quarantines == 0 ||
                redispatched + fleet.units_redispatched == 0) &&
               std::chrono::steady_clock::now() < deadline) {
            run_campaign(FaultBatching::Word);
            fleet = session.scheduler().stats().remote;
        }
        reconnects += fleet.reconnects;
        quarantines += fleet.quarantines;
        redispatched += fleet.units_redispatched;
    }

    EXPECT_GE(redispatched, 1u) << "chaos never re-dispatched a unit";
    EXPECT_GE(reconnects, 1u) << "fleet never healed a link";
    EXPECT_GE(quarantines, 1u) << "failure-rate window never tripped";
    EXPECT_TRUE(killed.load());
    EXPECT_GE(sup.respawns(), 1u);
}

// --- warm-start placement ----------------------------------------------------

// The persisted shipping-overhead EWMA must drive a fresh Session's FIRST
// placement decision. Phase 1 learns a cost model (so predicted unit walls
// are nonzero) and persists a large overhead for the worker's port through
// the verdict-cache store file. Phase 2 opens a brand-new cache + Session
// against that store: the placement gate must refuse to ship every unit —
// predicted wall (milliseconds) is far below the persisted 123s overhead —
// before the worker has ever served a unit in this process. Without the
// warm start the link's EWMA would be 0.0 ("unknown") and the pinned pool
// would force every unit remote, so units_completed == 0 distinguishes the
// two unambiguously.
TEST(WarmStart, PersistedOverheadEwmaGatesFirstPlacement) {
    FleetTestRig rig("alu");
    const std::string store =
        ::testing::TempDir() + "overhead_warm.store";
    std::remove(store.c_str());
    TestWorker worker;

    core::VerdictCacheOptions vopts;
    vopts.store_path = store;
    {
        // Local-only warm-up: learn the cost model, then persist a
        // prohibitive overhead for the worker as a prior fleet's EWMA.
        auto cache = std::make_shared<core::VerdictCache>(vopts);
        core::SessionOptions sopts;
        sopts.num_threads = 2;
        sopts.scheduler.verdict_cache = cache;
        core::Session session(rig.compiled, sopts);
        CampaignOptions copts;
        copts.num_shards = 4;
        const auto r = session.submit(rig.faults, rig.stim, copts).wait();
        EXPECT_EQ(r.detected, rig.ref.detected);
        cache->store_worker_overhead(worker.port(), 123.0);
    }   // Session stores the learned CostModel; cache flushes the file.

    auto cache = std::make_shared<core::VerdictCache>(vopts);
    ASSERT_TRUE(cache->stats().warm);
    ASSERT_DOUBLE_EQ(cache->worker_overhead(worker.port()), 123.0);

    core::SessionOptions sopts;
    sopts.num_threads = 1;
    sopts.scheduler.verdict_cache = cache;
    sopts.scheduler.remote.workers = {worker.port()};
    sopts.scheduler.remote.design = suite::design_spec(rig.bench);
    core::Session session(rig.compiled, sopts);
    EXPECT_GT(session.scheduler().cost_model().predict_seconds(1000), 0.0)
        << "warm cost model is a precondition for the placement gate";

    // Pin the pool so the gate is the only thing keeping units local, and
    // submit a stimulus the cache has NOT seen (different cycle count) so
    // every unit actually needs placing rather than being served as a hit.
    CampaignOptions gate_opts;
    gate_opts.num_shards = 1;
    auto gate = session.submit(rig.faults, rig.gate_factory(), gate_opts);
    const core::StimulusSpec fresh_stim =
        suite::remote_stimulus(rig.bench, rig.bench.test_cycles + 1);
    CampaignOptions opts;
    opts.num_shards = 3;
    auto handle = session.submit(rig.faults, fresh_stim, opts);

    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (session.scheduler().stats().remote.units_skipped_cost == 0) {
        ASSERT_LT(std::chrono::steady_clock::now(), deadline)
            << "placement gate never evaluated (worker link down?)";
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const auto remote = session.scheduler().stats().remote;
    ASSERT_EQ(remote.workers.size(), 1u);
    EXPECT_DOUBLE_EQ(remote.workers[0].overhead_ewma_seconds, 123.0)
        << "link must start from the persisted EWMA, not 0.0";
    EXPECT_EQ(remote.units_completed, 0u)
        << "gate must refuse shipping before the worker ever serves";

    rig.release.store(true, std::memory_order_release);
    const auto result = handle.wait();
    (void)gate.wait();
    EXPECT_FALSE(result.canceled);
    EXPECT_EQ(session.scheduler().stats().remote.units_completed, 0u);
    EXPECT_EQ(worker.units_served(), 0u);
    std::remove(store.c_str());
}

// --- graceful fleet teardown -------------------------------------------------

// stop_fleet() must take every worker down via SIGTERM (the workers' signal
// handler path, not the SIGKILL escalation): after it returns within the
// deadline, every slot reports pid -1 and a later stop() is a no-op.
TEST(RemoteFleet, StopFleetTerminatesWorkersGracefully) {
    core::SupervisorOptions supo;
    supo.binary = ERASER_WORKER_BIN;
    supo.workers = 2;
    core::WorkerSupervisor sup(supo);
    ASSERT_NO_THROW(sup.start());
    ASSERT_GT(sup.pid(0), 0);
    ASSERT_GT(sup.pid(1), 0);

    // Idle workers poll their accept loop every ~200ms, so a 5s deadline
    // leaves a wide margin before the SIGKILL escalation would fire.
    sup.stop_fleet(5000);
    EXPECT_EQ(sup.pid(0), -1);
    EXPECT_EQ(sup.pid(1), -1);
    EXPECT_EQ(sup.respawns(), 0u)
        << "the monitor must stop before the SIGTERM sweep";

    sup.stop();   // idempotent after stop_fleet
    EXPECT_EQ(sup.pid(0), -1);
}

}  // namespace
}  // namespace eraser
