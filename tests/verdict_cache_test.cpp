// Verdict cache (eraser/verdict_cache.h) contract:
//
//  * the canonical codec (eraser/canonical.h) roundtrips faults and is
//    what both the wire layer and the cache key hash — DesignSpec::hash()
//    delegates to it;
//  * key sensitivity: an RTL edit, a stimulus seed/cycle change, and any
//    verdict-relevant engine-config change (batching, redundancy mode,
//    interpreter, audit) each move the context key and force cold misses;
//    time_phases does NOT (instrumentation-only);
//  * a campaign resubmitted against a warm cache — same process, or a
//    fresh Session loading the persisted store file — yields bit-identical
//    detection bitmaps to the cache-disabled run, across Word and Off
//    batching, with every fault served from the cache (the >= 90%
//    acceptance criterion, met at 100% because addressing is per fault);
//  * two concurrent Sessions share one cache safely (the "cache" +
//    "concurrency" ctest labels put this under TSan);
//  * a missing store file is a plain cold start; corrupted, truncated, and
//    version-skewed files degrade to cold with load_failures counted —
//    never an exception;
//  * the size cap evicts LRU and never serves evicted entries;
//  * the warm-start side tables persist the learned CostModel across
//    Sessions (a fresh Session's scheduler starts calibrated).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "eraser/eraser.h"
#include "frontend/compile.h"
#include "suite/suite.h"
#include "util/diagnostics.h"
#include "util/wire.h"

namespace eraser {
namespace {

using core::CampaignOptions;
using core::CampaignResult;
using core::EngineOptions;
using core::FaultBatching;
using core::RedundancyMode;
using core::VerdictCache;
using core::VerdictCacheOptions;

std::vector<fault::Fault> ci_faults(const rtl::Design& design,
                                    uint32_t sample = 60) {
    fault::FaultGenOptions fopts;
    fopts.sample_max = sample;
    fopts.sample_seed = 42;
    return fault::generate_faults(design, fopts);
}

std::string temp_store(const char* name) {
    return ::testing::TempDir() + name;
}

// Two structurally distinct toy designs for key-sensitivity tests.
constexpr const char* kXorSrc = R"(
module toy(input clk, input a, input b, output reg q);
  always @(posedge clk) q <= a ^ b;
endmodule
)";
constexpr const char* kAndSrc = R"(
module toy(input clk, input a, input b, output reg q);
  always @(posedge clk) q <= a & b;
endmodule
)";

// --- canonical codec --------------------------------------------------------

TEST(Canonical, FaultCodecRoundtrips) {
    const std::vector<fault::Fault> faults = {
        {3, 0, false}, {3, 63, true}, {70000, 17, false}};
    util::WireWriter w;
    for (const auto& f : faults) core::canonical::put_fault(w, f);
    util::WireReader r(w.bytes());
    for (const auto& f : faults) {
        const fault::Fault got = core::canonical::get_fault(r);
        EXPECT_EQ(got.sig, f.sig);
        EXPECT_EQ(got.bit, f.bit);
        EXPECT_EQ(got.stuck_one, f.stuck_one);
    }
    EXPECT_NO_THROW(r.expect_end());
}

TEST(Canonical, FaultAndPlaneHashSensitivity) {
    const fault::Fault base{5, 3, false};
    const uint64_t seed = 0x1234;
    const uint64_t h = core::canonical::fault_hash(base, seed);
    EXPECT_NE(h, core::canonical::fault_hash({6, 3, false}, seed));
    EXPECT_NE(h, core::canonical::fault_hash({5, 4, false}, seed));
    EXPECT_NE(h, core::canonical::fault_hash({5, 3, true}, seed));
    EXPECT_NE(h, core::canonical::fault_hash(base, seed + 1));

    // The plane hash ignores the bit index (lane = bit) but not the
    // signal, polarity, or seed.
    const uint64_t p = core::canonical::plane_hash(5, false, seed);
    EXPECT_EQ(p, core::canonical::plane_hash(5, false, seed));
    EXPECT_NE(p, core::canonical::plane_hash(6, false, seed));
    EXPECT_NE(p, core::canonical::plane_hash(5, true, seed));
    EXPECT_NE(p, core::canonical::plane_hash(5, false, seed + 1));
}

TEST(Canonical, DesignSpecHashDelegation) {
    const core::DesignSpec a{kXorSrc, "toy"};
    EXPECT_EQ(a.hash(), core::canonical::design_spec_hash(kXorSrc, "toy"));
    EXPECT_NE(a.hash(), core::canonical::design_spec_hash(kAndSrc, "toy"));
    EXPECT_NE(a.hash(), core::canonical::design_spec_hash(kXorSrc, "top"));
}

// --- key sensitivity --------------------------------------------------------

TEST(VerdictCacheKey, DesignEditMovesTheContext) {
    suite::register_remote_stimuli();
    auto xor_design = frontend::compile(kXorSrc, "toy");
    auto and_design = frontend::compile(kAndSrc, "toy");
    const auto xor_c = core::CompiledDesign::build(*xor_design);
    const auto and_c = core::CompiledDesign::build(*and_design);
    ASSERT_NE(xor_c->design_hash(), and_c->design_hash());

    suite::RandomStimulus::Config cfg;
    const core::StimulusSpec stim = suite::remote_stimulus(cfg);
    const EngineOptions engine;
    const uint64_t ctx_xor =
        VerdictCache::context_key(xor_c->design_hash(), stim, engine);
    const uint64_t ctx_and =
        VerdictCache::context_key(and_c->design_hash(), stim, engine);
    EXPECT_NE(ctx_xor, ctx_and);

    // Verdicts cached under one design are invisible under the other.
    VerdictCache cache;
    const auto faults = ci_faults(*xor_design);
    ASSERT_FALSE(faults.empty());
    cache.insert(ctx_xor, faults,
                 std::vector<bool>(faults.size(), true));
    EXPECT_EQ(cache.lookup(ctx_xor, faults).hits, faults.size());
    EXPECT_EQ(cache.lookup(ctx_and, faults).hits, 0u);
}

TEST(VerdictCacheKey, StimulusChangeMovesTheContext) {
    suite::register_remote_stimuli();
    suite::RandomStimulus::Config cfg;
    cfg.seed = 1;
    suite::RandomStimulus::Config reseeded = cfg;
    reseeded.seed = 2;
    suite::RandomStimulus::Config longer = cfg;
    longer.cycles = cfg.cycles + 1;

    const EngineOptions engine;
    const uint64_t base = VerdictCache::context_key(
        0xD15EA5E, suite::remote_stimulus(cfg), engine);
    EXPECT_EQ(base, VerdictCache::context_key(
                        0xD15EA5E, suite::remote_stimulus(cfg), engine));
    EXPECT_NE(base, VerdictCache::context_key(
                        0xD15EA5E, suite::remote_stimulus(reseeded), engine));
    EXPECT_NE(base, VerdictCache::context_key(
                        0xD15EA5E, suite::remote_stimulus(longer), engine));
}

TEST(VerdictCacheKey, EngineConfigMovesTheContextExceptInstrumentation) {
    suite::register_remote_stimuli();
    const core::StimulusSpec stim =
        suite::remote_stimulus(suite::RandomStimulus::Config{});
    const uint64_t dh = 0xFEED;

    EngineOptions base;
    const uint64_t k = VerdictCache::context_key(dh, stim, base);

    EngineOptions off = base;
    off.batching = FaultBatching::Off;
    EXPECT_NE(k, VerdictCache::context_key(dh, stim, off));

    EngineOptions none = base;
    none.mode = RedundancyMode::None;
    EXPECT_NE(k, VerdictCache::context_key(dh, stim, none));

    EngineOptions tree = base;
    tree.interp = sim::InterpMode::Tree;
    EXPECT_NE(k, VerdictCache::context_key(dh, stim, tree));

    EngineOptions audit = base;
    audit.audit = true;
    EXPECT_NE(k, VerdictCache::context_key(dh, stim, audit));

    // time_phases toggles instrumentation, never a verdict bit: the same
    // cached verdicts must keep serving.
    EngineOptions timed = base;
    timed.time_phases = true;
    EXPECT_EQ(k, VerdictCache::context_key(dh, stim, timed));
}

// --- end-to-end: cold / warm / disabled -------------------------------------

// The acceptance criterion: resubmitting an identical campaign against the
// persisted store serves >= 90% of faults from cache (here: all of them)
// with bit-identical bitmaps — across Word and Off batching.
TEST(VerdictCacheCampaign, ColdWarmDisabledBitIdentical) {
    suite::register_remote_stimuli();
    const suite::Benchmark& b = suite::find_benchmark("alu");
    auto design = suite::load_design(b);
    const auto faults = ci_faults(*design);
    ASSERT_FALSE(faults.empty());
    auto compiled = core::CompiledDesign::build(*design);
    const core::StimulusSpec stim = suite::remote_stimulus(b, b.test_cycles);

    for (const auto batching : {FaultBatching::Word, FaultBatching::Off}) {
        CampaignOptions copts;
        copts.engine.batching = batching;
        copts.num_shards = 4;

        const auto run_once = [&](std::shared_ptr<VerdictCache> cache) {
            core::SessionOptions sopts;
            sopts.num_threads = 2;
            sopts.scheduler.verdict_cache = std::move(cache);
            core::Session session(compiled, sopts);
            return session.submit(faults, stim, copts).wait();
        };

        const CampaignResult disabled = run_once(nullptr);
        EXPECT_EQ(disabled.cache_hits, 0u);

        const std::string path = temp_store("cold_warm.store");
        std::remove(path.c_str());
        VerdictCacheOptions vopts;
        vopts.store_path = path;

        // Cold: every fault misses, the store is populated + flushed.
        auto cold_cache = std::make_shared<VerdictCache>(vopts);
        const CampaignResult cold = run_once(cold_cache);
        EXPECT_EQ(cold.cache_hits, 0u);
        EXPECT_EQ(cold.detected, disabled.detected);
        const auto cold_stats = cold_cache->stats();
        EXPECT_FALSE(cold_stats.warm);
        EXPECT_EQ(cold_stats.insertions, faults.size());
        EXPECT_EQ(cold_stats.entries, faults.size());
        ASSERT_TRUE(cold_cache->flush());
        cold_cache.reset();

        // Same-process warm repeat on the in-memory cache.
        auto reload = std::make_shared<VerdictCache>(vopts);
        EXPECT_TRUE(reload->stats().warm);
        const CampaignResult warm = run_once(reload);
        EXPECT_EQ(warm.cache_hits, faults.size())
            << "warm repeat must serve every fault from the store";
        EXPECT_EQ(warm.detected, disabled.detected);
        EXPECT_EQ(warm.num_detected, disabled.num_detected);
        EXPECT_EQ(warm.num_shards, 0u)
            << "an all-hit campaign must dispatch nothing";
        // Cached shards never ran: no engine counters.
        EXPECT_EQ(warm.stats.shards.size(), 0u);
        EXPECT_DOUBLE_EQ(reload->stats().hit_ratio(), 1.0);
        std::remove(path.c_str());
    }
}

// A shared cache under concurrent Sessions: first-comers miss and insert,
// late-comers hit — and every bitmap stays bit-identical.
TEST(VerdictCacheConcurrency, TwoSessionsShareOneCache) {
    suite::register_remote_stimuli();
    const suite::Benchmark& b = suite::find_benchmark("apb");
    auto design = suite::load_design(b);
    const auto faults = ci_faults(*design);
    auto compiled = core::CompiledDesign::build(*design);
    const core::StimulusSpec stim = suite::remote_stimulus(b, b.test_cycles);

    core::Session ref_session(compiled, {.num_threads = 2});
    const CampaignResult ref = ref_session.submit(faults, stim, {}).wait();

    auto cache = std::make_shared<VerdictCache>();
    std::vector<CampaignResult> results(4);
    {
        std::vector<std::thread> threads;
        for (auto& slot : results) {
            threads.emplace_back([&, out = &slot] {
                core::SessionOptions sopts;
                sopts.num_threads = 2;
                sopts.scheduler.verdict_cache = cache;
                core::Session session(compiled, sopts);
                CampaignOptions copts;
                copts.num_shards = 3;
                *out = session.submit(faults, stim, copts).wait();
            });
        }
        for (auto& t : threads) t.join();
    }
    for (const auto& r : results) {
        EXPECT_EQ(r.detected, ref.detected);
        EXPECT_FALSE(r.canceled);
    }
    const auto stats = cache->stats();
    EXPECT_EQ(stats.entries, faults.size());
    EXPECT_GE(stats.insertions, faults.size());
    // A sequential rerun is now fully warm.
    core::SessionOptions sopts;
    sopts.num_threads = 2;
    sopts.scheduler.verdict_cache = cache;
    core::Session session(compiled, sopts);
    const CampaignResult warm = session.submit(faults, stim, {}).wait();
    EXPECT_EQ(warm.cache_hits, faults.size());
    EXPECT_EQ(warm.detected, ref.detected);
}

// --- store file robustness --------------------------------------------------

namespace {

/// Synthetic population for store tests: `n` single-bit signals, verdict =
/// odd signal id.
std::vector<fault::Fault> synthetic_faults(uint32_t n) {
    std::vector<fault::Fault> faults;
    for (uint32_t i = 0; i < n; ++i) {
        faults.push_back({i, i % 64, false});
    }
    return faults;
}

std::vector<bool> synthetic_verdicts(const std::vector<fault::Fault>& fs) {
    std::vector<bool> v;
    v.reserve(fs.size());
    for (const auto& f : fs) v.push_back(f.sig % 2 == 1);
    return v;
}

std::vector<uint8_t> read_file(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(in),
            std::istreambuf_iterator<char>()};
}

void write_file(const std::string& path, const std::vector<uint8_t>& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
}

}  // namespace

TEST(VerdictCacheStore, SaveLoadRoundtripsVerdictsAndSideTables) {
    const std::string path = temp_store("roundtrip.store");
    std::remove(path.c_str());
    const auto faults = synthetic_faults(200);
    const auto verdicts = synthetic_verdicts(faults);
    const uint64_t ctx = 0xABCDEF;

    {
        VerdictCache cache;
        cache.insert(ctx, faults, verdicts);
        core::CostModelSnapshot snap;
        snap.cost = {1.0, 2.0, 3.0};
        snap.defer = {0.1, 0.2, 0.3};
        snap.unit_scale = 4.5;
        snap.observations = 7;
        cache.store_cost_model(0x1111, snap);
        cache.store_worker_overhead(9001, 0.125);
        ASSERT_TRUE(cache.save(path));
    }

    VerdictCache loaded;
    EXPECT_FALSE(loaded.stats().warm);
    ASSERT_TRUE(loaded.load(path));
    const auto stats = loaded.stats();
    EXPECT_TRUE(stats.warm);
    EXPECT_EQ(stats.entries, faults.size());
    EXPECT_EQ(stats.load_failures, 0u);

    auto part = loaded.lookup(ctx, faults);
    EXPECT_EQ(part.hits, faults.size());
    for (size_t i = 0; i < faults.size(); ++i) {
        ASSERT_TRUE(part.hit[i]);
        EXPECT_EQ(part.verdict[i], verdicts[i]) << i;
    }
    const auto snap = loaded.find_cost_model(0x1111);
    ASSERT_TRUE(snap.has_value());
    EXPECT_EQ(snap->cost, (std::vector<double>{1.0, 2.0, 3.0}));
    EXPECT_EQ(snap->defer, (std::vector<double>{0.1, 0.2, 0.3}));
    EXPECT_DOUBLE_EQ(snap->unit_scale, 4.5);
    EXPECT_EQ(snap->observations, 7u);
    EXPECT_FALSE(loaded.find_cost_model(0x2222).has_value());
    EXPECT_DOUBLE_EQ(loaded.worker_overhead(9001), 0.125);
    EXPECT_DOUBLE_EQ(loaded.worker_overhead(9002), 0.0);
    std::remove(path.c_str());
}

TEST(VerdictCacheStore, MissingFileIsAPlainColdStart) {
    const std::string missing = temp_store("nonexistent.store");
    const std::string missing2 = temp_store("nonexistent2.store");
    std::remove(missing.c_str());
    std::remove(missing2.c_str());   // a prior run's destructor flush

    VerdictCache cache;
    EXPECT_FALSE(cache.load(missing));
    const auto stats = cache.stats();
    EXPECT_FALSE(stats.warm);
    EXPECT_EQ(stats.load_failures, 0u);   // absence is not corruption

    {
        // Constructing against a missing store_path is equally quiet.
        VerdictCacheOptions vopts;
        vopts.store_path = missing2;
        VerdictCache fresh(vopts);
        EXPECT_FALSE(fresh.stats().warm);
        EXPECT_EQ(fresh.stats().load_failures, 0u);
    }
    std::remove(missing2.c_str());
}

TEST(VerdictCacheStore, CorruptTruncatedAndSkewedFilesDegradeToCold) {
    const std::string path = temp_store("damage.store");
    const auto faults = synthetic_faults(100);
    {
        VerdictCache cache;
        cache.insert(0xC0, faults, synthetic_verdicts(faults));
        ASSERT_TRUE(cache.save(path));
    }
    const std::vector<uint8_t> good = read_file(path);
    ASSERT_GT(good.size(), 16u);

    const auto expect_cold = [&](const char* what) {
        VerdictCache cache;
        EXPECT_FALSE(cache.load(path)) << what;
        const auto stats = cache.stats();
        EXPECT_FALSE(stats.warm) << what;
        EXPECT_EQ(stats.entries, 0u) << what;
        EXPECT_EQ(stats.load_failures, 1u) << what;
        // A damaged load never half-populates: everything misses.
        EXPECT_EQ(cache.lookup(0xC0, faults).hits, 0u) << what;
    };

    // Corruption: flip a byte in the middle (inside the blocks frame).
    auto corrupt = good;
    corrupt[good.size() / 2] ^= 0xFF;
    write_file(path, corrupt);
    expect_cold("flipped byte");

    // Truncation: drop the tail.
    write_file(path, {good.begin(), good.begin() + good.size() / 2});
    expect_cold("truncated file");

    // Version skew: a well-formed header frame with a future version.
    std::vector<uint8_t> skewed;
    {
        util::WireWriter header;
        header.u32(0x43535245);   // kStoreMagic
        header.u32(core::kVerdictStoreVersion + 1);
        util::append_frame(skewed, header.bytes());
    }
    write_file(path, skewed);
    expect_cold("version skew");

    // Garbage magic.
    std::vector<uint8_t> garbage;
    {
        util::WireWriter header;
        header.u32(0xBADBAD);
        header.u32(core::kVerdictStoreVersion);
        util::append_frame(garbage, header.bytes());
    }
    write_file(path, garbage);
    expect_cold("bad magic");

    // And the intact file still loads after all that.
    write_file(path, good);
    VerdictCache cache;
    EXPECT_TRUE(cache.load(path));
    EXPECT_EQ(cache.lookup(0xC0, faults).hits, faults.size());
    std::remove(path.c_str());
}

// --- size cap / LRU ----------------------------------------------------------

TEST(VerdictCacheEviction, SizeCapEvictsOldestNeverLies) {
    VerdictCacheOptions vopts;
    vopts.max_bytes = 0;   // minimal: one block per bucket before evicting
    VerdictCache cache(vopts);

    // Far more planes than the budget holds.
    const auto faults = synthetic_faults(2000);
    const auto verdicts = synthetic_verdicts(faults);
    cache.insert(0xE0, faults, verdicts);
    const auto stats = cache.stats();
    EXPECT_GT(stats.evictions, 0u);
    EXPECT_LT(stats.entries, faults.size());
    EXPECT_LE(stats.units, 2u * 64u);   // ~budget (1/bucket) + headroom

    // Whatever survived answers correctly; the rest misses — never a
    // wrong verdict.
    auto part = cache.lookup(0xE0, faults);
    EXPECT_LT(part.hits, faults.size());
    for (size_t i = 0; i < faults.size(); ++i) {
        if (part.hit[i]) {
            EXPECT_EQ(part.verdict[i], verdicts[i]) << i;
        }
    }

    // The most recently inserted block is the one guaranteed resident.
    const std::vector<fault::Fault> last = {faults.back()};
    EXPECT_EQ(cache.lookup(0xE0, last).hits, 1u);
}

TEST(VerdictCacheEviction, MismatchedBitmapIsRefused) {
    VerdictCache cache;
    const auto faults = synthetic_faults(4);
    EXPECT_THROW(cache.insert(0x1, faults, std::vector<bool>(3, false)),
                 SimError);
}

// --- warm-start side tables end to end ---------------------------------------

// A Session that learned per-signal costs persists them through the shared
// cache; a fresh Session over the same design starts calibrated instead of
// relearning from scratch.
TEST(WarmStart, CostModelPersistsAcrossSessions) {
    suite::register_remote_stimuli();
    const suite::Benchmark& b = suite::find_benchmark("alu");
    auto design = suite::load_design(b);
    const auto faults = ci_faults(*design);
    auto compiled = core::CompiledDesign::build(*design);
    const core::StimulusSpec stim = suite::remote_stimulus(b, b.test_cycles);

    const std::string path = temp_store("warm_cost.store");
    std::remove(path.c_str());
    VerdictCacheOptions vopts;
    vopts.store_path = path;

    uint64_t learned = 0;
    {
        auto cache = std::make_shared<VerdictCache>(vopts);
        core::SessionOptions sopts;
        sopts.num_threads = 2;
        sopts.scheduler.verdict_cache = cache;
        core::Session session(compiled, sopts);
        CampaignOptions copts;
        copts.num_shards = 4;
        (void)session.submit(faults, stim, copts).wait();
        // wait() returns at result publication; the last shard's cost
        // feedback may still be in flight, so this is a lower bound.
        learned = session.scheduler().cost_model().observations();
        EXPECT_GT(learned, 0u);
    }   // Session stores the snapshot into the cache; cache flushes.

    // A brand-new cache + Session: the persisted store seeds the model
    // before any campaign runs.
    auto cache = std::make_shared<VerdictCache>(vopts);
    ASSERT_TRUE(cache->stats().warm);
    const auto snap = cache->find_cost_model(compiled->design_hash());
    ASSERT_TRUE(snap.has_value());
    EXPECT_GE(snap->observations, learned);
    learned = snap->observations;

    core::SessionOptions sopts;
    sopts.num_threads = 2;
    sopts.scheduler.verdict_cache = cache;
    core::Session session(compiled, sopts);
    EXPECT_EQ(session.scheduler().cost_model().observations(), learned)
        << "fresh Session must start from the persisted cost model";
    EXPECT_GT(session.scheduler().cost_model().predict_seconds(1000), 0.0)
        << "restored scale must calibrate predictions immediately";
    std::remove(path.c_str());
}

TEST(WarmStart, CostModelRestoreRefusesBadSnapshots) {
    suite::register_remote_stimuli();
    auto design = frontend::compile(kXorSrc, "toy");
    auto compiled = core::CompiledDesign::build(*design);
    core::CostModel model(*compiled, 0.25);

    core::CostModelSnapshot empty;   // zero observations
    EXPECT_FALSE(model.restore(empty));

    core::CostModelSnapshot mismatched;
    mismatched.cost = {1.0};   // wrong table size for this design
    mismatched.defer = {0.0};
    mismatched.unit_scale = 1.0;
    mismatched.observations = 3;
    EXPECT_FALSE(model.restore(mismatched));
    EXPECT_EQ(model.observations(), 0u);
}

}  // namespace
}  // namespace eraser
