// Unit tests for Value and operator evaluation.
#include <gtest/gtest.h>

#include "rtl/ops.h"
#include "rtl/value.h"

namespace eraser::rtl {
namespace {

TEST(Value, MasksToWidth) {
    EXPECT_EQ(Value(0x1FF, 8).bits(), 0xFFu);
    EXPECT_EQ(Value(0x1FF, 9).bits(), 0x1FFu);
    EXPECT_EQ(Value(~uint64_t{0}, 64).bits(), ~uint64_t{0});
    EXPECT_EQ(Value(5, 1).bits(), 1u);
}

TEST(Value, MaskHelper) {
    EXPECT_EQ(Value::mask(1), 1u);
    EXPECT_EQ(Value::mask(8), 0xFFu);
    EXPECT_EQ(Value::mask(64), ~uint64_t{0});
}

TEST(Value, ResizeTruncatesAndExtends) {
    EXPECT_EQ(Value(0xABCD, 16).resized(8).bits(), 0xCDu);
    EXPECT_EQ(Value(0xCD, 8).resized(16).bits(), 0xCDu);
}

TEST(Value, WithBitsReplacesField) {
    const Value v(0b11110000, 8);
    EXPECT_EQ(v.with_bits(0, 4, 0b1010).bits(), 0b11111010u);
    EXPECT_EQ(v.with_bits(4, 4, 0b0101).bits(), 0b01010000u);
    EXPECT_EQ(v.with_bits(3, 2, 0b11).bits(), 0b11111000u);
}

TEST(Value, EqualityIncludesWidth) {
    EXPECT_EQ(Value(3, 4), Value(3, 4));
    EXPECT_NE(Value(3, 4), Value(3, 5));
    EXPECT_NE(Value(3, 4), Value(2, 4));
}

struct BinCase {
    Op op;
    uint64_t a, b;
    unsigned w;
    uint64_t expect;
};

class BinaryOpTest : public ::testing::TestWithParam<BinCase> {};

TEST_P(BinaryOpTest, Evaluates) {
    const BinCase& c = GetParam();
    const Value ops[2] = {Value(c.a, c.w), Value(c.b, c.w)};
    const unsigned out_w = op_arity(c.op) == 2 &&
                                   (c.op == Op::Eq || c.op == Op::Ne ||
                                    c.op == Op::Lt || c.op == Op::Le ||
                                    c.op == Op::Gt || c.op == Op::Ge ||
                                    c.op == Op::LAnd || c.op == Op::LOr)
                               ? 1
                               : c.w;
    EXPECT_EQ(eval_op(c.op, ops, out_w).bits(), c.expect)
        << op_name(c.op) << "(" << c.a << ", " << c.b << ")";
}

INSTANTIATE_TEST_SUITE_P(
    Arithmetic, BinaryOpTest,
    ::testing::Values(
        BinCase{Op::Add, 200, 100, 8, 44},          // wraps mod 256
        BinCase{Op::Add, 7, 8, 32, 15},
        BinCase{Op::Sub, 5, 7, 8, 254},             // borrow wraps
        BinCase{Op::Mul, 16, 16, 8, 0},             // overflow masked
        BinCase{Op::Mul, 7, 6, 16, 42},
        BinCase{Op::Div, 42, 5, 8, 8},
        BinCase{Op::Div, 42, 0, 8, 255},            // div-by-0 → all ones
        BinCase{Op::Mod, 42, 5, 8, 2},
        BinCase{Op::Mod, 42, 0, 8, 42}));           // mod-by-0 → dividend

INSTANTIATE_TEST_SUITE_P(
    Bitwise, BinaryOpTest,
    ::testing::Values(BinCase{Op::And, 0b1100, 0b1010, 4, 0b1000},
                      BinCase{Op::Or, 0b1100, 0b1010, 4, 0b1110},
                      BinCase{Op::Xor, 0b1100, 0b1010, 4, 0b0110},
                      BinCase{Op::Shl, 0b0011, 2, 4, 0b1100},
                      BinCase{Op::Shl, 1, 70, 8, 0},   // oversize shift
                      BinCase{Op::Shr, 0b1100, 2, 4, 0b0011},
                      BinCase{Op::Shr, 0xFF, 65, 8, 0}));

INSTANTIATE_TEST_SUITE_P(
    Compare, BinaryOpTest,
    ::testing::Values(BinCase{Op::Eq, 5, 5, 8, 1}, BinCase{Op::Eq, 5, 6, 8, 0},
                      BinCase{Op::Ne, 5, 6, 8, 1}, BinCase{Op::Lt, 5, 6, 8, 1},
                      BinCase{Op::Lt, 6, 5, 8, 0}, BinCase{Op::Le, 5, 5, 8, 1},
                      BinCase{Op::Gt, 6, 5, 8, 1}, BinCase{Op::Ge, 4, 5, 8, 0},
                      BinCase{Op::LAnd, 3, 4, 8, 1},
                      BinCase{Op::LAnd, 3, 0, 8, 0},
                      BinCase{Op::LOr, 0, 0, 8, 0},
                      BinCase{Op::LOr, 0, 9, 8, 1}));

TEST(UnaryOps, Evaluate) {
    const Value v(0b1010, 4);
    EXPECT_EQ(eval_op(Op::Not, {&v, 1}, 4).bits(), 0b0101u);
    EXPECT_EQ(eval_op(Op::Neg, {&v, 1}, 4).bits(), 0b0110u);
    EXPECT_EQ(eval_op(Op::LNot, {&v, 1}, 1).bits(), 0u);
    EXPECT_EQ(eval_op(Op::RedOr, {&v, 1}, 1).bits(), 1u);
    EXPECT_EQ(eval_op(Op::RedAnd, {&v, 1}, 1).bits(), 0u);
    EXPECT_EQ(eval_op(Op::RedXor, {&v, 1}, 1).bits(), 0u);

    const Value ones(0xF, 4);
    EXPECT_EQ(eval_op(Op::RedAnd, {&ones, 1}, 1).bits(), 1u);
    const Value three(0b0011, 4);
    EXPECT_EQ(eval_op(Op::RedXor, {&three, 1}, 1).bits(), 0u);
    const Value one(0b0001, 4);
    EXPECT_EQ(eval_op(Op::RedXor, {&one, 1}, 1).bits(), 1u);
}

TEST(MuxOp, SelectsBySelector) {
    const Value sel1(1, 1), sel0(0, 1), a(0xAA, 8), b(0x55, 8);
    {
        const Value ops[3] = {sel1, a, b};
        EXPECT_EQ(eval_op(Op::Mux, ops, 8).bits(), 0xAAu);
    }
    {
        const Value ops[3] = {sel0, a, b};
        EXPECT_EQ(eval_op(Op::Mux, ops, 8).bits(), 0x55u);
    }
}

TEST(ConcatOp, MsbFirst) {
    const Value parts[3] = {Value(0xA, 4), Value(0xB, 4), Value(0xC, 4)};
    EXPECT_EQ(eval_op(Op::Concat, parts, 12).bits(), 0xABCu);
}

TEST(SliceOp, ExtractsField) {
    const Value v(0xABCD, 16);
    EXPECT_EQ(eval_op(Op::Slice, {&v, 1}, 4, 4).bits(), 0xCu);
    EXPECT_EQ(eval_op(Op::Slice, {&v, 1}, 8, 8).bits(), 0xABu);
}

TEST(IndexOp, DynamicBitSelect) {
    const Value vec(0b1000, 4);
    {
        const Value ops[2] = {vec, Value(3, 4)};
        EXPECT_EQ(eval_op(Op::Index, ops, 1).bits(), 1u);
    }
    {
        const Value ops[2] = {vec, Value(2, 4)};
        EXPECT_EQ(eval_op(Op::Index, ops, 1).bits(), 0u);
    }
    {   // out-of-range index reads 0 (2-state convention)
        const Value ops[2] = {vec, Value(9, 4)};
        EXPECT_EQ(eval_op(Op::Index, ops, 1).bits(), 0u);
    }
}

}  // namespace
}  // namespace eraser::rtl
